// Root-level tests for the hot-path work: the parallel driver must
// produce exactly the serial engine's plans, and incremental move
// collection must be invisible in the relational model's results.
package repro

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relopt"
)

// TestParallelOptimizeMatchesSerial: the worker-pool driver returns, for
// every query, a plan with exactly the cost the serial engine finds —
// parallelism is across queries only and must not perturb the search.
func TestParallelOptimizeMatchesSerial(t *testing.T) {
	src := datagen.New(41)
	cat := src.Catalog(6)
	model := relopt.New(cat, relopt.DefaultConfig())

	var queries []datagen.Query
	for n := 2; n <= 6; n++ {
		for q := 0; q < 4; q++ {
			queries = append(queries, src.SelectJoinQuery(cat, n, datagen.ShapeRandom))
		}
	}

	serial := make([]float64, len(queries))
	for i, q := range queries {
		opt := core.NewOptimizer(model, nil)
		root := opt.InsertQuery(q.Root)
		plan, err := opt.Optimize(root, relopt.SortedOn(q.OrderBy))
		if err != nil || plan == nil {
			t.Fatalf("serial optimize %d: %v", i, err)
		}
		serial[i] = plan.Cost.(relopt.Cost).Total()
	}

	for _, workers := range []int{1, 4} {
		jobs := make([]core.ParallelJob, len(queries))
		for i := range jobs {
			q := queries[i]
			jobs[i] = core.ParallelJob{
				Model:    model,
				Build:    func(o *core.Optimizer) core.GroupID { return o.InsertQuery(q.Root) },
				Required: relopt.SortedOn(q.OrderBy),
			}
		}
		results := core.ParallelOptimize(jobs, workers)
		if len(results) != len(jobs) {
			t.Fatalf("workers=%d: %d results for %d jobs", workers, len(results), len(jobs))
		}
		for i, r := range results {
			if r.Err != nil || r.Plan == nil {
				t.Fatalf("workers=%d query %d: plan=%v err=%v", workers, i, r.Plan, r.Err)
			}
			if got := r.Plan.Cost.(relopt.Cost).Total(); got != serial[i] {
				t.Errorf("workers=%d query %d: parallel cost %v != serial %v", workers, i, got, serial[i])
			}
			if r.Stats.GoalsOptimized == 0 {
				t.Errorf("workers=%d query %d: empty stats", workers, i)
			}
		}
	}
}

// TestParallelOptimizeCoalescesDuplicates: a batch of 50 tree-form jobs
// over 5 unique query shapes optimizes each shape exactly once; the
// other 45 results are shared copies marked Stats.Coalesced, with costs
// identical to their primaries. Run under -race this also proves the
// dedup pass and result fan-out are thread-safe.
func TestParallelOptimizeCoalescesDuplicates(t *testing.T) {
	src := datagen.New(53)
	cat := src.Catalog(5)
	model := relopt.New(cat, relopt.DefaultConfig())

	const shapes = 5
	const copies = 10
	queries := make([]datagen.Query, shapes)
	for s := range queries {
		queries[s] = src.SelectJoinQuery(cat, 2+s%4, datagen.ShapeRandom)
	}

	jobs := make([]core.ParallelJob, 0, shapes*copies)
	for c := 0; c < copies; c++ {
		for s := 0; s < shapes; s++ {
			jobs = append(jobs, core.ParallelJob{
				Model:    model,
				Tree:     queries[s].Root,
				Required: relopt.SortedOn(queries[s].OrderBy),
			})
		}
	}

	results := core.ParallelOptimize(jobs, 8)
	if len(results) != shapes*copies {
		t.Fatalf("%d results for %d jobs", len(results), shapes*copies)
	}
	coalesced := 0
	shapeCost := map[int]float64{}
	for i, r := range results {
		if r.Err != nil || r.Plan == nil {
			t.Fatalf("job %d: plan=%v err=%v", i, r.Plan, r.Err)
		}
		if r.Stats.Coalesced {
			coalesced++
		}
		s := i % shapes
		cost := r.Plan.Cost.(relopt.Cost).Total()
		if want, ok := shapeCost[s]; ok {
			if cost != want {
				t.Errorf("job %d: coalesced cost %v != shape cost %v", i, cost, want)
			}
		} else {
			shapeCost[s] = cost
		}
	}
	want := shapes * (copies - 1)
	if coalesced != want {
		t.Fatalf("coalesced %d of %d jobs, want exactly %d", coalesced, len(jobs), want)
	}
}

// TestRelOptIncrementalMatchesFromScratch: on the relational model —
// multi-level rules, enforcers, partitioning — incremental move
// collection finds exactly the plans of from-scratch re-matching, with
// fewer implementation-rule match attempts.
func TestRelOptIncrementalMatchesFromScratch(t *testing.T) {
	src := datagen.New(97)
	cat := src.Catalog(6)
	model := relopt.New(cat, relopt.DefaultConfig())

	var incMatches, scrMatches int
	for n := 2; n <= 6; n++ {
		for q := 0; q < 5; q++ {
			query := src.SelectJoinQuery(cat, n, datagen.ShapeRandom)
			name := fmt.Sprintf("rels=%d q=%d", n, q)

			inc := core.NewOptimizer(model, nil)
			pi, err := inc.Optimize(inc.InsertQuery(query.Root), relopt.SortedOn(query.OrderBy))
			if err != nil || pi == nil {
				t.Fatalf("%s incremental: %v", name, err)
			}
			scr := core.NewOptimizer(model, &core.Options{Search: core.SearchOptions{NoIncremental: true}})
			ps, err := scr.Optimize(scr.InsertQuery(query.Root), relopt.SortedOn(query.OrderBy))
			if err != nil || ps == nil {
				t.Fatalf("%s from-scratch: %v", name, err)
			}
			ci := pi.Cost.(relopt.Cost).Total()
			cs := ps.Cost.(relopt.Cost).Total()
			if ci != cs {
				t.Errorf("%s: incremental cost %v != from-scratch %v", name, ci, cs)
			}
			if inc.Stats().ConsistencyViolations != 0 || scr.Stats().ConsistencyViolations != 0 {
				t.Errorf("%s: consistency violations", name)
			}
			incMatches += inc.Stats().MatchCalls
			scrMatches += scr.Stats().MatchCalls
		}
	}
	if incMatches >= scrMatches {
		t.Fatalf("incremental match calls %d not below from-scratch %d", incMatches, scrMatches)
	}
	t.Logf("match calls: incremental=%d from-scratch=%d (%.1f%%)",
		incMatches, scrMatches, 100*float64(incMatches)/float64(scrMatches))
}

// TestParallelOptimizeBudgetIsolation: budgets are per job, not per
// pool. One job with a one-step budget must degrade (or fail) alone;
// its unbudgeted siblings must all complete with optimal plans, whether
// or not they share the pool's workers with the starved job.
func TestParallelOptimizeBudgetIsolation(t *testing.T) {
	src := datagen.New(47)
	cat := src.Catalog(5)
	model := relopt.New(cat, relopt.DefaultConfig())

	var queries []datagen.Query
	for q := 0; q < 6; q++ {
		queries = append(queries, src.SelectJoinQuery(cat, 4, datagen.ShapeRandom))
	}

	serial := make([]float64, len(queries))
	for i, q := range queries {
		opt := core.NewOptimizer(model, nil)
		plan, err := opt.Optimize(opt.InsertQuery(q.Root), relopt.SortedOn(q.OrderBy))
		if err != nil || plan == nil {
			t.Fatalf("serial optimize %d: %v", i, err)
		}
		serial[i] = plan.Cost.(relopt.Cost).Total()
	}

	starved := &core.Options{}
	starved.Budget.MaxSteps = 1
	for _, workers := range []int{1, 4} {
		jobs := make([]core.ParallelJob, len(queries))
		for i := range jobs {
			q := queries[i]
			jobs[i] = core.ParallelJob{
				Model:    model,
				Tree:     q.Root,
				Required: relopt.SortedOn(q.OrderBy),
			}
		}
		jobs[0].Options = starved
		results := core.ParallelOptimize(jobs, workers)
		if !errors.Is(results[0].Err, core.ErrBudget) {
			t.Errorf("workers=%d: starved job err = %v, want ErrBudget", workers, results[0].Err)
		}
		for i := 1; i < len(results); i++ {
			r := results[i]
			if r.Err != nil || r.Plan == nil {
				t.Fatalf("workers=%d sibling %d: plan=%v err=%v — sibling caught the starved job's budget",
					workers, i, r.Plan, r.Err)
			}
			if got := r.Plan.Cost.(relopt.Cost).Total(); got != serial[i] {
				t.Errorf("workers=%d sibling %d: cost %v != serial %v", workers, i, got, serial[i])
			}
		}
	}
}

// TestSharedMemoBatchMatchesIndependent: a ShareMemo batch over
// overlapping relational queries returns, per query, exactly the
// independently optimized cost, and reports the sharing it found.
func TestSharedMemoBatchMatchesIndependent(t *testing.T) {
	src := datagen.New(53)
	cat := src.Catalog(4)
	model := relopt.New(cat, relopt.DefaultConfig())

	var queries []datagen.Query
	for q := 0; q < 4; q++ {
		queries = append(queries, src.SelectJoinQuery(cat, 3, datagen.ShapeChain))
	}
	// Duplicate one query verbatim so at least two roots collapse.
	queries = append(queries, queries[0])

	serial := make([]float64, len(queries))
	for i, q := range queries {
		opt := core.NewOptimizer(model, nil)
		plan, err := opt.Optimize(opt.InsertQuery(q.Root), relopt.SortedOn(q.OrderBy))
		if err != nil || plan == nil {
			t.Fatalf("serial optimize %d: %v", i, err)
		}
		serial[i] = plan.Cost.(relopt.Cost).Total()
	}

	for _, workers := range []int{0, 4} {
		opts := &core.Options{}
		opts.Search.ShareMemo = true
		opts.Search.Workers = workers
		jobs := make([]core.ParallelJob, len(queries))
		for i := range jobs {
			q := queries[i]
			jobs[i] = core.ParallelJob{
				Model:    model,
				Options:  opts,
				Tree:     q.Root,
				Required: relopt.SortedOn(q.OrderBy),
			}
		}
		results := core.ParallelOptimize(jobs, 1)
		for i, r := range results {
			if r.Err != nil || r.Plan == nil {
				t.Fatalf("workers=%d query %d: plan=%v err=%v", workers, i, r.Plan, r.Err)
			}
			if got := r.Plan.Cost.(relopt.Cost).Total(); got != serial[i] {
				t.Errorf("workers=%d query %d: shared-memo cost %v != serial %v", workers, i, got, serial[i])
			}
			if r.Stats.SharedGroups == 0 {
				t.Errorf("workers=%d query %d: batch with a duplicate query reports no shared groups", workers, i)
			}
		}
	}
}
