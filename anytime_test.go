// Root-level tests for anytime optimization on the relational model: a
// canceled or budget-stopped search must degrade to a complete,
// consistency-checked plan with a typed budget error — never a bare nil
// — and budgets that are never hit must be invisible in the results.
package repro

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relopt"
)

// checkDegraded asserts the anytime contract on a budget-stopped result.
func checkDegraded(t *testing.T, name string, plan *core.Plan, err error, required core.PhysProps) {
	t.Helper()
	if !errors.Is(err, core.ErrBudget) {
		t.Fatalf("%s: err = %v, want a budget error", name, err)
	}
	if plan == nil {
		t.Fatalf("%s: budget-stopped optimization returned bare nil plan", name)
	}
	if required != nil && (plan.Delivered == nil || !plan.Delivered.Covers(required)) {
		t.Fatalf("%s: degraded plan delivers %v, required %v", name, plan.Delivered, required)
	}
	plan.Walk(func(p *core.Plan) {
		if p.Op == nil || p.Cost == nil {
			t.Fatalf("%s: degraded plan is incomplete: %s", name, plan.Format())
		}
	})
}

// TestAnytimeCancellation: canceling an 8-relation optimization — before
// it starts or mid-search — returns promptly with a complete plan and
// ErrCanceled, never a bare nil.
func TestAnytimeCancellation(t *testing.T) {
	src := datagen.New(7)
	cat := src.Catalog(8)
	model := relopt.New(cat, relopt.DefaultConfig())
	query := src.SelectJoinQuery(cat, 8, datagen.ShapeRandom)
	required := relopt.SortedOn(query.OrderBy)

	// Pre-canceled context: the stop arrives before the first move.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := core.NewOptimizer(model, nil)
	start := time.Now()
	plan, err := opt.OptimizeCtx(ctx, opt.InsertQuery(query.Root), required)
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Errorf("pre-canceled optimization took %v, want <50ms", d)
	}
	checkDegraded(t, "pre-canceled", plan, err, required)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled: err = %v, want to match context.Canceled", err)
	}
	if sr := opt.Stats().StopReason; sr == nil || !errors.Is(sr, core.ErrBudget) {
		t.Errorf("pre-canceled: StopReason = %v", sr)
	}
	if !opt.Stats().AnytimeFallback {
		t.Error("pre-canceled: AnytimeFallback not recorded")
	}

	// Mid-search cancellation: the cancel fires from a tracer callback —
	// synchronously, deep inside the search — so it deterministically
	// lands mid-flight, and the search must notice it within 50ms.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	tr := &cancelAfterTracer{n: 500, cancel: cancel2}
	opt2 := core.NewOptimizer(model, &core.Options{
		Search: core.SearchOptions{NoPruning: true},
		Trace:  core.TraceOptions{Tracer: tr},
	})
	root := opt2.InsertQuery(query.Root)
	plan2, err2 := opt2.OptimizeCtx(ctx2, root, required)
	returned := time.Now()
	if err2 == nil {
		if tr.seen >= tr.n {
			t.Fatal("mid-search cancel was ignored")
		}
		t.Skipf("search emitted only %d trace events; mid-search cancel has no room", tr.seen)
	}
	checkDegraded(t, "mid-search", plan2, err2, required)
	if !errors.Is(err2, context.Canceled) {
		t.Errorf("mid-search: err = %v, want to match context.Canceled", err2)
	}
	if d := returned.Sub(tr.canceledAt); d > 50*time.Millisecond {
		t.Errorf("mid-search cancel honored after %v, want <50ms", d)
	}
}

// cancelAfterTracer cancels a context from the nth trace event — a
// synchronous hook inside the innermost search loops, guaranteeing the
// cancellation arrives while the search is running.
type cancelAfterTracer struct {
	n          int
	seen       int
	cancel     context.CancelFunc
	canceledAt time.Time
}

func (c *cancelAfterTracer) Trace(core.TraceEvent) {
	c.seen++
	if c.seen == c.n {
		c.canceledAt = time.Now()
		c.cancel()
	}
}

// TestAnytimeStepBudget: guided searches stopped by shrinking step
// budgets still return complete plans that cost no more than the
// materialized seed floor and no less than the true optimum.
func TestAnytimeStepBudget(t *testing.T) {
	src := datagen.New(113)
	cat := src.Catalog(6)
	model := relopt.New(cat, relopt.DefaultConfig())

	for q := 0; q < 4; q++ {
		query := src.SelectJoinQuery(cat, 6, datagen.ShapeRandom)
		required := relopt.SortedOn(query.OrderBy)

		ref := core.NewOptimizer(model, nil)
		optPlan, err := ref.Optimize(ref.InsertQuery(query.Root), required)
		if err != nil || optPlan == nil {
			t.Fatalf("q=%d reference: %v", q, err)
		}
		optimal := optPlan.Cost.(relopt.Cost).Total()

		for _, steps := range []int{5, 50, 500} {
			name := fmt.Sprintf("q=%d steps=%d", q, steps)
			o := core.NewOptimizer(model, &core.Options{
				Guidance: core.GuidanceOptions{SeedPlanner: model.SeedPlanner()},
				Budget:   core.Budget{MaxSteps: steps},
			})
			plan, err := o.Optimize(o.InsertQuery(query.Root), required)
			if err == nil {
				// The budget was never hit: the result must be optimal.
				if got := plan.Cost.(relopt.Cost).Total(); got != optimal {
					t.Errorf("%s: completed cost %v != optimal %v", name, got, optimal)
				}
				continue
			}
			if !errors.Is(err, core.ErrStepBudget) {
				t.Fatalf("%s: err = %v, want ErrStepBudget", name, err)
			}
			checkDegraded(t, name, plan, err, required)
			got := plan.Cost.(relopt.Cost).Total()
			if got < optimal {
				t.Errorf("%s: degraded cost %v below optimum %v", name, got, optimal)
			}
			st := o.Stats()
			if floor, ok := st.SeedFloorCost.(relopt.Cost); ok && got > floor.Total() {
				t.Errorf("%s: degraded cost %v above the seed floor %v", name, got, floor.Total())
			}
			if st.StopReason == nil {
				t.Errorf("%s: StopReason not set", name)
			}
		}
	}
}

// TestBudgetsNeverHitIdentical: a run under generous budgets and a
// cancelable context that never fires is indistinguishable from the
// classic engine — identical plan costs and identical search counters.
func TestBudgetsNeverHitIdentical(t *testing.T) {
	src := datagen.New(59)
	cat := src.Catalog(6)
	model := relopt.New(cat, relopt.DefaultConfig())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	generous := core.Budget{Timeout: time.Hour, MaxSteps: 1 << 30, MaxMemoBytes: 1 << 40}

	for n := 2; n <= 6; n++ {
		for q := 0; q < 3; q++ {
			query := src.SelectJoinQuery(cat, n, datagen.ShapeRandom)
			required := relopt.SortedOn(query.OrderBy)
			name := fmt.Sprintf("rels=%d q=%d", n, q)

			plain := core.NewOptimizer(model, nil)
			pp, err := plain.Optimize(plain.InsertQuery(query.Root), required)
			if err != nil || pp == nil {
				t.Fatalf("%s plain: %v", name, err)
			}

			budgeted := core.NewOptimizer(model, &core.Options{Budget: generous})
			pb, err := budgeted.OptimizeCtx(ctx, budgeted.InsertQuery(query.Root), required)
			if err != nil || pb == nil {
				t.Fatalf("%s budgeted: %v", name, err)
			}

			if cp, cb := pp.Cost.(relopt.Cost).Total(), pb.Cost.(relopt.Cost).Total(); cp != cb {
				t.Errorf("%s: budgeted cost %v != plain %v", name, cb, cp)
			}
			ps, bs := plain.Stats(), budgeted.Stats()
			if ps.MatchCalls != bs.MatchCalls || ps.GoalsOptimized != bs.GoalsOptimized ||
				ps.Steps() != bs.Steps() || ps.Exprs != bs.Exprs {
				t.Errorf("%s: search counters diverge under an unhit budget:\nplain:    match=%d goals=%d steps=%d exprs=%d\nbudgeted: match=%d goals=%d steps=%d exprs=%d",
					name, ps.MatchCalls, ps.GoalsOptimized, ps.Steps(), ps.Exprs,
					bs.MatchCalls, bs.GoalsOptimized, bs.Steps(), bs.Exprs)
			}
			if bs.StopReason != nil || bs.AnytimeFallback {
				t.Errorf("%s: unhit budget recorded a stop: %v", name, bs.StopReason)
			}
		}
	}
}

// TestParallelPoolCancellation: canceling the pool context stops every
// unfinished job; each job still yields a complete plan, finished jobs
// report no error, stopped jobs report a budget error. Run under -race
// this also exercises the pool's cancellation paths for data races.
func TestParallelPoolCancellation(t *testing.T) {
	src := datagen.New(31)
	cat := src.Catalog(7)
	model := relopt.New(cat, relopt.DefaultConfig())

	var queries []datagen.Query
	for i := 0; i < 24; i++ {
		queries = append(queries, src.SelectJoinQuery(cat, 7, datagen.ShapeRandom))
	}
	jobs := make([]core.ParallelJob, len(queries))
	for i := range jobs {
		q := queries[i]
		jobs[i] = core.ParallelJob{
			Model:    model,
			Build:    func(o *core.Optimizer) core.GroupID { return o.InsertQuery(q.Root) },
			Required: relopt.SortedOn(q.OrderBy),
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	results := core.ParallelOptimizeCtx(ctx, jobs, 4)

	var stopped int
	for i, r := range results {
		required := relopt.SortedOn(queries[i].OrderBy)
		if r.Err != nil {
			stopped++
			checkDegraded(t, fmt.Sprintf("job %d", i), r.Plan, r.Err, required)
			if r.Stats.StopReason == nil {
				t.Errorf("job %d: stopped without a StopReason", i)
			}
		} else if r.Plan == nil {
			t.Errorf("job %d: completed with no plan", i)
		}
	}
	t.Logf("pool cancel: %d/%d jobs stopped", stopped, len(results))
}
