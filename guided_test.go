// Root-level A/B tests for guided branch-and-bound: seeding the search
// with a greedy plan's cost must be invisible in the plans found —
// byte-identical costs to unguided exhaustive search — while cutting
// the work the search performs.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relopt"
)

// TestGuidedMatchesUnguided: across randomized select-join queries at
// 2-8 relations, guided search returns exactly the unguided optimum,
// and in aggregate performs fewer rule-match calls.
func TestGuidedMatchesUnguided(t *testing.T) {
	src := datagen.New(73)
	cat := src.Catalog(8)
	model := relopt.New(cat, relopt.DefaultConfig())

	var guidedMatches, plainMatches int
	for n := 2; n <= 8; n++ {
		perLevel := 4
		if n >= 7 {
			perLevel = 2
		}
		for q := 0; q < perLevel; q++ {
			query := src.SelectJoinQuery(cat, n, datagen.ShapeRandom)
			name := fmt.Sprintf("rels=%d q=%d", n, q)
			required := relopt.SortedOn(query.OrderBy)

			plain := core.NewOptimizer(model, nil)
			pp, err := plain.Optimize(plain.InsertQuery(query.Root), required)
			if err != nil || pp == nil {
				t.Fatalf("%s unguided: plan=%v err=%v", name, pp, err)
			}

			guided := core.NewOptimizer(model, &core.Options{
				Guidance: core.GuidanceOptions{SeedPlanner: model.SeedPlanner()},
			})
			pg, err := guided.Optimize(guided.InsertQuery(query.Root), required)
			if err != nil || pg == nil {
				t.Fatalf("%s guided: plan=%v err=%v", name, pg, err)
			}

			cu := pp.Cost.(relopt.Cost).Total()
			cg := pg.Cost.(relopt.Cost).Total()
			if cg != cu {
				t.Errorf("%s: guided cost %v != unguided %v", name, cg, cu)
			}
			gs := guided.Stats()
			if gs.SeedCost == nil {
				t.Errorf("%s: seed planner declined on an in-scope query", name)
			} else if sc := gs.SeedCost.(relopt.Cost).Total(); sc < cu {
				t.Errorf("%s: seed cost %v below optimum %v — seed not achievable", name, sc, cu)
			}
			if gs.LimitStages != 1 {
				t.Errorf("%s: LimitStages = %d, want 1 (achievable seed)", name, gs.LimitStages)
			}
			if gs.ConsistencyViolations != 0 || plain.Stats().ConsistencyViolations != 0 {
				t.Errorf("%s: consistency violations", name)
			}
			guidedMatches += gs.MatchCalls
			plainMatches += plain.Stats().MatchCalls
		}
	}
	if guidedMatches > plainMatches {
		t.Fatalf("guided match calls %d above unguided %d — the bound added work", guidedMatches, plainMatches)
	}
	t.Logf("match calls: guided=%d unguided=%d (%.1f%%)",
		guidedMatches, plainMatches, 100*float64(guidedMatches)/float64(plainMatches))
}

// TestGuidedParallelMatchesSerial: guidance composes with the parallel
// driver — the shared Options value (and the one SeedPlanner closure in
// it) is used concurrently by every worker, and the plans still match
// serial unguided search exactly.
func TestGuidedParallelMatchesSerial(t *testing.T) {
	src := datagen.New(29)
	cat := src.Catalog(7)
	model := relopt.New(cat, relopt.DefaultConfig())

	var queries []datagen.Query
	for n := 2; n <= 7; n++ {
		for q := 0; q < 3; q++ {
			queries = append(queries, src.SelectJoinQuery(cat, n, datagen.ShapeRandom))
		}
	}

	serial := make([]float64, len(queries))
	for i, q := range queries {
		opt := core.NewOptimizer(model, nil)
		plan, err := opt.Optimize(opt.InsertQuery(q.Root), relopt.SortedOn(q.OrderBy))
		if err != nil || plan == nil {
			t.Fatalf("serial optimize %d: %v", i, err)
		}
		serial[i] = plan.Cost.(relopt.Cost).Total()
	}

	guidedOpts := &core.Options{Guidance: core.GuidanceOptions{SeedPlanner: model.SeedPlanner()}}
	for _, workers := range []int{1, 4} {
		jobs := make([]core.ParallelJob, len(queries))
		for i := range jobs {
			q := queries[i]
			jobs[i] = core.ParallelJob{
				Model:    model,
				Options:  guidedOpts,
				Build:    func(o *core.Optimizer) core.GroupID { return o.InsertQuery(q.Root) },
				Required: relopt.SortedOn(q.OrderBy),
			}
		}
		results := core.ParallelOptimize(jobs, workers)
		for i, r := range results {
			if r.Err != nil || r.Plan == nil {
				t.Fatalf("workers=%d query %d: plan=%v err=%v", workers, i, r.Plan, r.Err)
			}
			if got := r.Plan.Cost.(relopt.Cost).Total(); got != serial[i] {
				t.Errorf("workers=%d query %d: guided parallel cost %v != serial unguided %v",
					workers, i, got, serial[i])
			}
		}
	}
}
