// Package repro's root benchmarks regenerate the measured quantities of
// the paper's evaluation as Go benchmarks:
//
//   - BenchmarkFig4Volcano / BenchmarkFig4Exodus — the solid lines of
//     Figure 4 (optimization time per query, 2-8 input relations);
//     the dashed lines (estimated plan cost) are reported as custom
//     metrics plan-cost and memo-bytes.
//   - BenchmarkAblation* — search-engine mechanism ablations (pruning,
//     failure memoization, property-directed search vs glue).
//   - BenchmarkAltProps — alternative input property combinations.
//   - BenchmarkOODB* — the object model's pointer-chase/assembly plans.
//   - BenchmarkExec* — the Volcano iterator engine executing plans.
//   - BenchmarkMemo* — search-engine micro-benchmarks.
//
// Run everything with: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/exodus"
	"repro/internal/fig4"
	"repro/internal/gen"
	"repro/internal/oodb"
	"repro/internal/rel"
	"repro/internal/relopt"
	"repro/internal/sqlish"
)

// workload pre-generates queries so benchmark loops measure
// optimization alone.
func workload(b *testing.B, n, count int) (*rel.Catalog, []datagen.Query) {
	b.Helper()
	src := datagen.New(1993)
	cat := src.Catalog(8)
	queries := make([]datagen.Query, count)
	for i := range queries {
		queries[i] = src.SelectJoinQuery(cat, n, datagen.ShapeRandom)
	}
	return cat, queries
}

// benchmarkFig4Volcano measures Volcano optimization time per query at
// each complexity level of Figure 4, with or without the greedy seed
// planner guiding branch-and-bound.
func benchmarkFig4Volcano(b *testing.B, guided bool) {
	for n := 2; n <= 8; n++ {
		b.Run(fmt.Sprintf("rels=%d", n), func(b *testing.B) {
			cat, queries := workload(b, n, 32)
			// The model is immutable after construction; building it is
			// generator output, not per-query optimization work, so it
			// stays outside the measured region.
			model := relopt.New(cat, relopt.DefaultConfig())
			var opts *core.Options
			if guided {
				opts = &core.Options{Guidance: core.GuidanceOptions{SeedPlanner: model.SeedPlanner()}}
			}
			var cost float64
			var mem int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				opt := core.NewOptimizer(model, opts)
				root := opt.InsertQuery(q.Root)
				plan, err := opt.Optimize(root, relopt.SortedOn(q.OrderBy))
				if err != nil || plan == nil {
					b.Fatalf("optimize: %v", err)
				}
				cost += plan.Cost.(relopt.Cost).Total()
				mem += opt.Stats().PeakMemoBytes
			}
			b.ReportMetric(cost/float64(b.N), "plan-cost")
			b.ReportMetric(float64(mem)/float64(b.N), "memo-bytes")
		})
	}
}

// BenchmarkFig4Volcano is the production configuration: guided
// branch-and-bound seeded by the greedy join-ordering planner (the seed
// planning time is inside the measured region — it is part of each
// query's optimization).
func BenchmarkFig4Volcano(b *testing.B) { benchmarkFig4Volcano(b, true) }

// BenchmarkFig4VolcanoUnguided is the cold-start A/B counterpart: plain
// exhaustive search with no seed plan.
func BenchmarkFig4VolcanoUnguided(b *testing.B) { benchmarkFig4Volcano(b, false) }

// BenchmarkFig4VolcanoParallel measures batch throughput of the
// shared-nothing worker-pool driver on the Figure-4 workload, at pool
// sizes 1 and GOMAXPROCS. Each iteration optimizes the whole 32-query
// batch; the queries/s metric is the figure of merit, and on a
// multi-core machine the GOMAXPROCS pool should approach a linear
// multiple of the single-worker number.
func BenchmarkFig4VolcanoParallel(b *testing.B) {
	const rels = 6
	poolSizes := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		poolSizes = append(poolSizes, p)
	}
	for _, workers := range poolSizes {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cat, queries := workload(b, rels, 32)
			model := relopt.New(cat, relopt.DefaultConfig())
			jobs := make([]core.ParallelJob, len(queries))
			for i := range jobs {
				q := queries[i]
				jobs[i] = core.ParallelJob{
					Model:    model,
					Build:    func(o *core.Optimizer) core.GroupID { return o.InsertQuery(q.Root) },
					Required: relopt.SortedOn(q.OrderBy),
				}
			}
			var cost float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results := core.ParallelOptimize(jobs, workers)
				for _, r := range results {
					if r.Err != nil || r.Plan == nil {
						b.Fatalf("optimize: %v", r.Err)
					}
					cost += r.Plan.Cost.(relopt.Cost).Total()
				}
			}
			b.StopTimer()
			n := float64(b.N * len(jobs))
			b.ReportMetric(cost/n, "plan-cost")
			if e := b.Elapsed(); e > 0 {
				b.ReportMetric(n/e.Seconds(), "queries/s")
			}
		})
	}
}

// BenchmarkFig4Exodus measures the EXODUS-style baseline on the same
// workload; the growing gap to BenchmarkFig4Volcano is Figure 4's upper
// solid line.
func BenchmarkFig4Exodus(b *testing.B) {
	for n := 2; n <= 8; n++ {
		b.Run(fmt.Sprintf("rels=%d", n), func(b *testing.B) {
			cat, queries := workload(b, n, 32)
			var cost float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				opt := exodus.New(cat, exodus.Config{Timeout: time.Minute})
				_, c, err := opt.Optimize(q.Root, q.OrderBy)
				if err != nil {
					b.Fatalf("optimize: %v", err)
				}
				cost += c.Total()
			}
			b.ReportMetric(cost/float64(b.N), "plan-cost")
		})
	}
}

// benchmarkAblation measures one engine configuration at a fixed
// complexity level.
func benchmarkAblation(b *testing.B, opts core.Options) {
	const rels = 6
	cat, queries := workload(b, rels, 32)
	model := relopt.New(cat, relopt.DefaultConfig())
	var cost float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		o := opts
		opt := core.NewOptimizer(model, &o)
		root := opt.InsertQuery(q.Root)
		plan, err := opt.Optimize(root, relopt.SortedOn(q.OrderBy))
		if err != nil || plan == nil {
			b.Fatalf("optimize: %v", err)
		}
		cost += plan.Cost.(relopt.Cost).Total()
	}
	b.ReportMetric(cost/float64(b.N), "plan-cost")
}

// BenchmarkAblationDefault is the reference configuration (6 relations).
func BenchmarkAblationDefault(b *testing.B) { benchmarkAblation(b, core.Options{}) }

// BenchmarkAblationNoPruning disables branch-and-bound.
func BenchmarkAblationNoPruning(b *testing.B) {
	benchmarkAblation(b, core.Options{Search: core.SearchOptions{NoPruning: true}})
}

// BenchmarkAblationNoFailureMemo disables memoized failures.
func BenchmarkAblationNoFailureMemo(b *testing.B) {
	benchmarkAblation(b, core.Options{Search: core.SearchOptions{NoFailureMemo: true}})
}

// BenchmarkAblationGlueMode uses the Starburst-style strategy.
func BenchmarkAblationGlueMode(b *testing.B) {
	benchmarkAblation(b, core.Options{Search: core.SearchOptions{GlueMode: true}})
}

// BenchmarkAltProps runs the alternative-input-combinations experiment.
func BenchmarkAltProps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := fig4.RunAltProps()
		if len(points) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkOODBOptimize measures optimization of path-expression
// queries in the object model.
func BenchmarkOODBOptimize(b *testing.B) {
	cat := oodb.NewCatalog()
	company := cat.AddClass("Company", 10, 400)
	division := cat.AddClass("Division", 100, 300)
	dept := cat.AddClass("Dept", 1000, 200)
	emp := cat.AddClass("Emp", 10000, 150)
	cat.AddScalar(emp, "age", 50)
	cat.AddRef(emp, "dept", dept)
	cat.AddRef(dept, "division", division)
	cat.AddRef(division, "company", company)
	model := oodb.New(cat, oodb.DefaultParams())
	build := func() *core.ExprTree {
		t := core.Node(&oodb.GetSet{Cls: emp})
		for _, s := range []string{"dept", "division", "company"} {
			t = core.Node(&oodb.Materialize{Attr: s}, t)
		}
		return t
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := core.NewOptimizer(model, nil)
		root := opt.InsertQuery(build())
		if plan, err := opt.Optimize(root, nil); err != nil || plan == nil {
			b.Fatalf("optimize: %v", err)
		}
	}
}

// BenchmarkExecJoinPlan measures end-to-end execution of an optimized
// two-way join on the iterator engine.
func BenchmarkExecJoinPlan(b *testing.B) {
	src := datagen.New(5)
	cat := src.Catalog(2)
	db := exec.FromData(cat, src.Rows(cat))
	q := src.SelectJoinQuery(cat, 2, datagen.ShapeChain)
	model := relopt.New(cat, relopt.DefaultConfig())
	opt := core.NewOptimizer(model, nil)
	root := opt.InsertQuery(q.Root)
	plan, err := opt.Optimize(root, relopt.SortedOn(q.OrderBy))
	if err != nil || plan == nil {
		b.Fatalf("optimize: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, err := exec.Run(db, plan)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkExecParallelPlan measures gathered partition-parallel
// execution with the exchange operator.
func BenchmarkExecParallelPlan(b *testing.B) {
	src := datagen.New(6)
	cat := src.Catalog(2)
	db := exec.FromData(cat, src.Rows(cat))
	q := src.SelectJoinQuery(cat, 2, datagen.ShapeChain)
	cfg := relopt.DefaultConfig()
	cfg.Parallel = true
	cfg.Degree = 4
	model := relopt.New(cat, cfg)
	opt := core.NewOptimizer(model, nil)
	root := opt.InsertQuery(q.Root)
	plan, err := opt.Optimize(root, relopt.HashPartitioned(q.Joins[0][0], 4))
	if err != nil || plan == nil {
		b.Fatalf("optimize: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exec.Run(db, plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemoInsert measures raw memo insertion (hash table of
// expressions and equivalence classes).
func BenchmarkMemoInsert(b *testing.B) {
	src := datagen.New(7)
	cat := src.Catalog(8)
	q := src.SelectJoinQuery(cat, 8, datagen.ShapeRandom)
	model := relopt.New(cat, relopt.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := core.NewOptimizer(model, nil)
		opt.InsertQuery(q.Root)
	}
}

// BenchmarkMemoExplore measures pure logical exploration to rule
// fixpoint (no cost analysis) of an 8-relation query.
func BenchmarkMemoExplore(b *testing.B) {
	src := datagen.New(8)
	cat := src.Catalog(8)
	q := src.SelectJoinQuery(cat, 8, datagen.ShapeRandom)
	model := relopt.New(cat, relopt.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := core.NewOptimizer(model, nil)
		root := opt.InsertQuery(q.Root)
		if err := opt.Explore(root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicOptimize measures dynamic-plan generation (four
// selectivity buckets) for a parameterized join query.
func BenchmarkDynamicOptimize(b *testing.B) {
	src := datagen.New(77)
	cat := src.Catalog(2)
	st := mustParse(b, cat,
		"SELECT R1.id, R1.jb, R2.v FROM R1, R2 WHERE R1.jb = R2.jb AND R1.v < $1 ORDER BY R1.jb")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := relopt.OptimizeDynamic(cat, relopt.DefaultConfig(), st.Tree, st.Required, nil)
		if err != nil || res.Plan == nil {
			b.Fatalf("dynamic optimize: %v", err)
		}
	}
}

// BenchmarkGenerate measures the optimizer generator end to end:
// parsing a model specification and emitting formatted Go source.
func BenchmarkGenerate(b *testing.B) {
	src, err := os.ReadFile("internal/gen/testdata/minirel.model")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec, err := gen.Parse(string(src))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gen.Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecExternalSort measures the external sort (run formation +
// single-level merge) over 100k rows.
func BenchmarkExecExternalSort(b *testing.B) {
	cat := rel.NewCatalog()
	tab := cat.AddTable("t", 100000, 16)
	c1 := cat.AddColumn(tab, "a", 100000, 1, 100000)
	cat.AddColumn(tab, "b", 100, 1, 100)
	rows := make([]exec.Row, 100000)
	for i := range rows {
		rows[i] = exec.Row{int64((i * 2654435761) % 100000), int64(i % 100)}
	}
	table := &exec.Table{Name: "t", Schema: exec.NewSchema(tab.Columns), Rows: rows}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := exec.NewSort(exec.NewTableScan(table), table.Schema, []relopt.OrderCol{{Col: c1}})
		out, err := exec.Collect(s)
		if err != nil || len(out) != len(rows) {
			b.Fatalf("sort: %v (%d rows)", err, len(out))
		}
	}
}

// mustParse parses SQL for benchmarks.
func mustParse(b *testing.B, cat *rel.Catalog, sql string) *sqlish.Statement {
	b.Helper()
	st, err := sqlish.Parse(cat, sql)
	if err != nil {
		b.Fatal(err)
	}
	return st
}
