// The interesting_orders example shows the machinery the paper credits
// for Volcano's plan quality: physical properties driving the search.
// The same three-way join is optimized (1) with no requirement, (2) with
// an ORDER BY, and (3) with the ORDER BY but the Starburst-style "glue"
// strategy that optimizes first and patches enforcers on afterwards.
// Property-directed search sorts small inputs early and rides merge-join
// order upward; glue pays for a full sort of the final result.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relopt"
	"repro/internal/sqlish"
)

func main() {
	src := datagen.New(42)
	cat := src.Catalog(4)

	// A fan-out join: the low-distinct join column makes the output far
	// larger than either input, so sorting the inputs early (and riding
	// the merge-join order) beats sorting the result.
	sql := `SELECT R1.id, R1.jb, R2.v
	        FROM R1, R2
	        WHERE R1.jb = R2.jb`
	ordered := sql + " ORDER BY R1.jb"

	show := func(title, q string, opts *core.Options) float64 {
		st, err := sqlish.Parse(cat, q)
		if err != nil {
			log.Fatal(err)
		}
		opt := core.NewOptimizer(relopt.New(cat, relopt.DefaultConfig()), opts)
		root := opt.InsertQuery(st.Tree)
		plan, err := opt.Optimize(root, st.Required)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s\n", title)
		fmt.Print(plan.Format())
		cost := plan.Cost.(relopt.Cost).Total()
		fmt.Printf("   estimated cost %.1f\n\n", cost)
		return cost
	}

	show("no required properties", sql, nil)
	directed := show("ORDER BY R1.jb — property-directed search", ordered, nil)
	glued := show("ORDER BY R1.jb — Starburst-style glue (ablation)", ordered,
		&core.Options{Search: core.SearchOptions{GlueMode: true}})

	fmt.Printf("property-directed search wins by %.1f%%: it considers which\n",
		100*(glued-directed)/glued)
	fmt.Println("properties can be enforced where, instead of gluing a sort on top.")
}
