// The generated example runs the paper's Figure-1 paradigm end to end:
// the optimizer in internal/gen/minirel was *generated* by volcano-gen
// from internal/gen/testdata/minirel.model, and is linked here with the
// implementor-supplied support code (cost functions, applicability
// functions, condition code) and the model-independent search engine.
// The same query is optimized by the generated optimizer and by the
// hand-maintained internal/relopt configuration; their plans price
// identically.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gen/minirel"
	"repro/internal/relopt"
)

func main() {
	src := datagen.New(8)
	cat := src.Catalog(4)
	q := src.SelectJoinQuery(cat, 4, datagen.ShapeRandom)

	// The generated optimizer: wiring from the model specification,
	// decisions from the support code.
	generated := core.NewOptimizer(minirel.New(minirel.NewSupport(cat)), nil)
	gRoot := generated.InsertQuery(q.Root)
	gPlan, err := generated.Optimize(gRoot, relopt.SortedOn(q.OrderBy))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== plan from the GENERATED optimizer (gen/minirel)")
	fmt.Print(gPlan.Format())

	// The hand-maintained optimizer for the same model.
	hand := core.NewOptimizer(relopt.New(cat, relopt.DefaultConfig()), nil)
	hRoot := hand.InsertQuery(q.Root)
	hPlan, err := hand.Optimize(hRoot, relopt.SortedOn(q.OrderBy))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== plan from the HAND-WRITTEN optimizer (internal/relopt)")
	fmt.Print(hPlan.Format())

	fmt.Printf("\ngenerated cost %s vs hand-written %s — identical pricing: %v\n",
		gPlan.Cost, hPlan.Cost,
		gPlan.Cost.(relopt.Cost).Total() == hPlan.Cost.(relopt.Cost).Total())
	fmt.Println("\nregenerate the optimizer with:")
	fmt.Println("  go run ./cmd/volcano-gen -spec internal/gen/testdata/minirel.model -o internal/gen/minirel/minirel.go")
}
