// The dynamic_plans example demonstrates the requirement the paper
// states for the Volcano optimizer generator: "flexible cost models
// that permit generating dynamic plans for incompletely specified
// queries." The query's constant is a runtime parameter ($1); the
// optimizer cannot know its selectivity, so it optimizes under several
// selectivity assumptions and emits a choose-plan operator. At
// execution, the bound value selects the alternative.
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/relopt"
	"repro/internal/sqlish"
)

func main() {
	src := datagen.New(77)
	cat := src.Catalog(2)
	db := exec.FromData(cat, src.Rows(cat))

	sql := `SELECT R1.id, R1.jb, R2.v
	        FROM R1, R2
	        WHERE R1.jb = R2.jb AND R1.v < $1
	        ORDER BY R1.jb`
	st, err := sqlish.Parse(cat, sql)
	if err != nil {
		log.Fatal(err)
	}

	res, err := relopt.OptimizeDynamic(cat, relopt.DefaultConfig(), st.Tree, st.Required, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic plan with %d alternatives (selectivity buckets %v):\n\n",
		res.Alternatives, res.Buckets)
	fmt.Print(res.Plan.Format())

	if cp, ok := res.Plan.Op.(*relopt.ChoosePlan); ok {
		fmt.Println("\nruntime choices:")
		for _, v := range []int64{10, 300, 900} {
			idx := cp.ChooseAlternative(v)
			rows, _, err := exec.RunParams(db, res.Plan, []int64{v})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  $1 = %3d → alternative %d (%s at root), %d rows\n",
				v, idx, res.Plan.Inputs[idx].Op.Name(), len(rows))
		}
	}
}
