// The quickstart example builds a small company database, optimizes an
// SQL query with a Volcano-generated optimizer, executes the chosen
// plan on the iterator engine, and prints the result. It is the minimal
// end-to-end tour of the public pieces: catalog → query → optimizer →
// plan → execution.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/internal/relopt"
	"repro/internal/sqlish"
)

func main() {
	// 1. Describe the data: tables, columns, statistics. The optimizer
	// sees only this catalog; the executor sees the rows.
	cat := rel.NewCatalog()
	emp := cat.AddTable("emp", 5000, 100)
	empID := cat.AddColumn(emp, "id", 5000, 1, 5000)
	empDept := cat.AddColumn(emp, "dept", 200, 1, 200)
	empAge := cat.AddColumn(emp, "age", 45, 21, 65)
	dept := cat.AddTable("dept", 200, 100)
	deptID := cat.AddColumn(dept, "id", 200, 1, 200)
	deptBudget := cat.AddColumn(dept, "budget", 50, 1, 50)

	db := exec.NewDB()
	db.Add(makeEmp(cat, empID, empDept, empAge))
	db.Add(makeDept(cat, deptID, deptBudget))

	// 2. Parse a query into the logical algebra. ORDER BY becomes the
	// required physical property vector.
	sql := `SELECT emp.id, emp.dept, dept.budget
	        FROM emp, dept
	        WHERE emp.dept = dept.id AND emp.age > 40
	        ORDER BY emp.dept`
	st, err := sqlish.Parse(cat, sql)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Optimize: the generated relational optimizer maps the logical
	// expression to the cheapest physical plan that delivers the
	// requested sort order.
	model := relopt.New(cat, relopt.DefaultConfig())
	opt := core.NewOptimizer(model, nil)
	root := opt.InsertQuery(st.Tree)
	plan, err := opt.Optimize(root, st.Required)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("chosen plan:")
	fmt.Print(plan.Format())
	fmt.Printf("search effort: %d classes, %d expressions, %d goals\n\n",
		opt.Stats().Groups, opt.Stats().Exprs, opt.Stats().GoalsOptimized)

	// 4. Execute the plan with the Volcano iterator engine.
	rows, _, err := exec.Run(db, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d rows; first five:\n", len(rows))
	for i, r := range rows {
		if i == 5 {
			break
		}
		fmt.Printf("  emp %4d  dept %3d  budget %2d\n", r[0], r[1], r[2])
	}
}

func makeEmp(cat *rel.Catalog, id, dept, age rel.ColID) *exec.Table {
	t := cat.Table("emp")
	rng := rand.New(rand.NewSource(7))
	tab := &exec.Table{Name: t.Name, Schema: exec.NewSchema(t.Columns)}
	for i := int64(1); i <= t.Rows; i++ {
		tab.Rows = append(tab.Rows, exec.Row{i, 1 + rng.Int63n(200), 21 + rng.Int63n(45)})
	}
	return tab
}

func makeDept(cat *rel.Catalog, id, budget rel.ColID) *exec.Table {
	t := cat.Table("dept")
	rng := rand.New(rand.NewSource(8))
	tab := &exec.Table{Name: t.Name, Schema: exec.NewSchema(t.Columns)}
	for i := int64(1); i <= t.Rows; i++ {
		tab.Rows = append(tab.Rows, exec.Row{i, 1 + rng.Int63n(50)})
	}
	return tab
}
