// The parallel example extends the relational model with the
// partitioning physical property and Volcano's exchange operator as its
// enforcer: requesting a hash-partitioned result makes the optimizer
// place exchange operators and choose partition-wise join algorithms,
// and the execution engine runs the partitions in parallel goroutines.
// The same query is executed serially and partitioned, verifying both
// produce the same rows.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/relopt"
	"repro/internal/sqlish"
)

func main() {
	src := datagen.New(11)
	cat := src.Catalog(3)
	db := exec.FromData(cat, src.Rows(cat))

	sql := `SELECT R1.id, R1.ja, R2.v
	        FROM R1, R2
	        WHERE R1.ja = R2.ja AND R2.v < 500`
	st, err := sqlish.Parse(cat, sql)
	if err != nil {
		log.Fatal(err)
	}
	joinCol := cat.ColumnID("R1", "ja")

	// Serial plan.
	serialOpt := core.NewOptimizer(relopt.New(cat, relopt.DefaultConfig()), nil)
	serialPlan, err := serialOpt.Optimize(serialOpt.InsertQuery(st.Tree), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== serial plan")
	fmt.Print(serialPlan.Format())

	// Parallel plan: require the result hash-partitioned on the join
	// column across 4 partitions. The exchange enforcer establishes the
	// partitioning; the join runs partition-wise.
	cfg := relopt.DefaultConfig()
	cfg.Parallel = true
	cfg.Degree = 4
	parOpt := core.NewOptimizer(relopt.New(cat, cfg), nil)
	parPlan, err := parOpt.Optimize(parOpt.InsertQuery(st.Tree),
		relopt.HashPartitioned(joinCol, 4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== partitioned plan (hash(R1.ja) x 4)")
	fmt.Print(parPlan.Format())

	// Execute both; the gather operator merges the partition streams
	// produced by parallel goroutines.
	serialRows, ss, err := exec.Run(db, serialPlan)
	if err != nil {
		log.Fatal(err)
	}
	parRows, ps, err := exec.Run(db, parPlan)
	if err != nil {
		log.Fatal(err)
	}
	same := exec.Fingerprint(exec.Canonical(serialRows, ss)) ==
		exec.Fingerprint(exec.Canonical(parRows, ps))
	fmt.Printf("\nserial: %d rows, parallel: %d rows, identical multisets: %v\n",
		len(serialRows), len(parRows), same)

	// Show the partition balance.
	counts := map[int64]int{}
	pos := ps.Pos(joinCol)
	for _, r := range parRows {
		counts[r[pos]%4]++
	}
	keys := make([]int64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fmt.Printf("  partition %d: %d rows\n", k, counts[k])
	}
}
