// The oodb example demonstrates the extensibility the paper claims for
// the optimizer generator: a second data model — class extents, the
// Open OODB MATERIALIZE scope operator for path expressions, and
// "assembledness" as a physical property enforced by the assembly
// operator — optimized by the unchanged search engine. Sweeping the
// path length shows the optimizer switching from pointer chasing to
// assembly exactly where the costs cross over.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/oodb"
)

func main() {
	cat := oodb.NewCatalog()
	company := cat.AddClass("Company", 10, 400)
	division := cat.AddClass("Division", 100, 300)
	dept := cat.AddClass("Dept", 1000, 200)
	emp := cat.AddClass("Emp", 10000, 150)
	cat.AddScalar(emp, "age", 50)
	cat.AddRef(emp, "dept", dept)
	cat.AddRef(dept, "division", division)
	cat.AddRef(division, "company", company)

	model := oodb.New(cat, oodb.DefaultParams())
	steps := []string{"dept", "division", "company"}

	fmt.Println("path expression emp.dept.division.company, one step at a time:")
	for k := 1; k <= len(steps); k++ {
		tree := core.Node(&oodb.GetSet{Cls: emp})
		for _, s := range steps[:k] {
			tree = core.Node(&oodb.Materialize{Attr: s}, tree)
		}
		opt := core.NewOptimizer(model, nil)
		root := opt.InsertQuery(tree)
		plan, err := opt.Optimize(root, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== path length %d (emp.%s)\n", k, pathName(steps[:k]))
		fmt.Print(plan.Format())
	}

	// A selective predicate shrinks the object set before the path; the
	// optimizer assembles only survivors.
	fmt.Println("\n== with a selective filter (age = 30) before a 3-step path")
	tree := core.Node(&oodb.Select{Attr: "age", Op: oodb.CmpEQ, Val: 30},
		core.Node(&oodb.GetSet{Cls: emp}))
	for _, s := range steps {
		tree = core.Node(&oodb.Materialize{Attr: s}, tree)
	}
	opt := core.NewOptimizer(model, nil)
	root := opt.InsertQuery(tree)
	plan, err := opt.Optimize(root, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Format())

	// Execute the assembled plan on a real object graph and count
	// dereferences: the assembly operator touches each object once.
	st := populate(cat)
	st.Fetches = 0
	rows, err := oodb.Execute(st, cat, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted: %d result paths, %d object dereferences\n", len(rows), st.Fetches)
}

// populate fills extents with a reference-complete object graph.
func populate(cat *oodb.Catalog) *oodb.Store {
	rng := rand.New(rand.NewSource(9))
	st := oodb.NewStore()
	company := cat.Class("Company")
	division := cat.Class("Division")
	dept := cat.Class("Dept")
	emp := cat.Class("Emp")
	for i := int64(1); i <= company.Objects; i++ {
		st.Put(company, &oodb.Object{OID: i})
	}
	for i := int64(1); i <= division.Objects; i++ {
		st.Put(division, &oodb.Object{OID: i, Refs: map[string]int64{"company": 1 + rng.Int63n(company.Objects)}})
	}
	for i := int64(1); i <= dept.Objects; i++ {
		st.Put(dept, &oodb.Object{OID: i, Refs: map[string]int64{"division": 1 + rng.Int63n(division.Objects)}})
	}
	for i := int64(1); i <= emp.Objects; i++ {
		st.Put(emp, &oodb.Object{
			OID:     i,
			Scalars: map[string]int64{"age": 18 + rng.Int63n(50)},
			Refs:    map[string]int64{"dept": 1 + rng.Int63n(dept.Objects)},
		})
	}
	return st
}

func pathName(steps []string) string {
	out := steps[0]
	for _, s := range steps[1:] {
		out += "." + s
	}
	return out
}
