GO ?= go

.PHONY: build test test-race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The headline numbers: Figure-4 optimization time (serial and parallel
# batch throughput) plus the search-engine micro-benchmarks.
bench:
	$(GO) test -run NONE -bench 'BenchmarkFig4Volcano|BenchmarkFig4VolcanoParallel' -benchmem .
	$(GO) test -run NONE -bench 'BenchmarkCollectMoves|BenchmarkWinnerLookup' -benchmem ./internal/core/
