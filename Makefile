GO ?= go

.PHONY: build test test-race vet bench bench-guided

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The headline numbers: Figure-4 optimization time (serial and parallel
# batch throughput) plus the search-engine micro-benchmarks.
bench:
	$(GO) test -run NONE -bench 'BenchmarkFig4Volcano|BenchmarkFig4VolcanoParallel' -benchmem .
	$(GO) test -run NONE -bench 'BenchmarkCollectMoves|BenchmarkWinnerLookup' -benchmem ./internal/core/

# Guided branch-and-bound A/B: the guided/unguided benchmark pair and
# the fig4guided cost-identity experiment (plan costs must match).
bench-guided:
	$(GO) test -run NONE -bench 'BenchmarkFig4Volcano$$|BenchmarkFig4VolcanoUnguided' -benchmem .
	$(GO) run ./cmd/volcano-bench -experiment fig4guided -json ""
