GO ?= go

.PHONY: build test test-race test-race-core vet staticcheck bench bench-guided bench-anytime bench-cache bench-spar bench-e2e bench-col bench-mqo bench-mcts bench-serve profile fuzz-fingerprint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# The search engine under the race detector: the intra-query parallel
# A/B determinism suites live in core and the generated-model packages.
test-race-core:
	$(GO) test -race ./internal/core/... ./internal/gen/... ./internal/relopt/

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is available (CI installs it; the
# local toolchain need not have it).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# The headline numbers: Figure-4 optimization time (serial and parallel
# batch throughput) plus the search-engine micro-benchmarks.
bench:
	$(GO) test -run NONE -bench 'BenchmarkFig4Volcano|BenchmarkFig4VolcanoParallel' -benchmem .
	$(GO) test -run NONE -bench 'BenchmarkCollectMoves|BenchmarkWinnerLookup' -benchmem ./internal/core/

# Guided branch-and-bound A/B: the guided/unguided benchmark pair and
# the fig4guided cost-identity experiment (plan costs must match).
bench-guided:
	$(GO) test -run NONE -bench 'BenchmarkFig4Volcano$$|BenchmarkFig4VolcanoUnguided' -benchmem .
	$(GO) run ./cmd/volcano-bench -experiment fig4guided -json ""

# Anytime smoke: 8-relation Figure-4 queries under shrinking wall-clock
# and step budgets must still return complete plans delivering the
# required properties and costing no more than the seed floor
# (volcano-bench exits non-zero on any contract violation).
bench-anytime:
	$(GO) run ./cmd/volcano-bench -experiment anytime -queries 8 -json ""

# Plan-cache serving: warm verified hits against cold optimization, with
# the cache micro-benchmarks. volcano-bench exits non-zero if any served
# plan's cost differs from a fresh optimization's.
bench-cache:
	$(GO) run ./cmd/volcano-bench -experiment fig4cache -json ""
	$(GO) test -run NONE -bench 'BenchmarkCache' -benchmem ./internal/plancache/

# Intra-query parallel search A/B: the hardest Figure-4 queries,
# sequential vs Workers in {2,4,8}. volcano-bench exits non-zero if any
# parallel plan cost diverges from the sequential optimum.
bench-spar:
	$(GO) run ./cmd/volcano-bench -experiment fig4spar -json ""

# End-to-end optimize-and-execute A/B over ~10⁶-row generated tables:
# the row-at-a-time engine vs batched vs columnar vs batched behind a
# parallel exchange at degrees 2/4/8. Every engine's result multiset is
# gated against the row baseline; volcano-bench exits non-zero on a
# mismatch. Override ROWS for other scales (e.g. ROWS=10000000).
ROWS ?= 1000000
bench-e2e:
	$(GO) run ./cmd/volcano-bench -experiment e2e -rows $(ROWS) -json ""

# Columnar e2e smoke: the same row vs batch vs columnar A/B at 10⁵
# rows — quick enough for CI, still large enough that the vectorized
# kernels dominate the wall time. Exits non-zero on any
# result-fingerprint mismatch across the engines and exchange degrees.
COL_ROWS ?= 100000
bench-col:
	$(GO) run ./cmd/volcano-bench -experiment e2e -rows $(COL_ROWS) -json ""

# Multi-query optimization over one shared memo: an overlapping batch
# optimized independently, shared-nothing (every plan cost must be
# byte-identical to independent optimization — volcano-bench exits
# non-zero otherwise), and over one shared memo with the cost-based
# Materialize/Reuse post-pass (every executed result multiset gated
# against independent execution). Override ROWS for other scales.
bench-mqo:
	$(GO) run ./cmd/volcano-bench -experiment fig4mqo -rows $(ROWS) -json ""

# Stochastic-policy smoke: MCTS and iterative widening vs guided
# branch-and-bound on a small fixed-seed grid. volcano-bench exits
# non-zero if any plan violates the anytime contract or a stochastic
# policy's mean cost exceeds 1.5x guided B&B.
bench-mcts:
	$(GO) run ./cmd/volcano-bench -experiment fig4mcts -seed 7 -queries 4 \
		-mcts-levels 8,10 -mcts-steps 300,1000 -json ""

# Serving tier under open-loop load: an in-process volcano-serve daemon
# measured unloaded, then at ~2× its estimated capacity. Every completed
# response is gated against reference row fingerprints collected before
# any load; volcano-bench exits non-zero on a mismatch. Override
# SERVE_ROWS / SERVE_DURATION for other scales.
SERVE_ROWS ?= 5000
SERVE_DURATION ?= 3s
bench-serve:
	$(GO) run ./cmd/volcano-bench -experiment serve \
		-serve-rows $(SERVE_ROWS) -serve-duration $(SERVE_DURATION) -json ""

# CPU and heap profiles of the Figure-4 hot path (serial fig4 by
# default; override EXPERIMENT=fig4spar etc. to profile another).
EXPERIMENT ?= fig4
profile:
	$(GO) run ./cmd/volcano-bench -experiment $(EXPERIMENT) -json "" \
		-cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof; inspect with: $(GO) tool pprof cpu.pprof"

# Short fingerprint-soundness fuzz over the checked-in seed corpus.
fuzz-fingerprint:
	$(GO) test -run '^$$' -fuzz FuzzFingerprint -fuzztime 20s ./internal/core/
