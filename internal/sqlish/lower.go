package sqlish

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// Statement is a lowered query: the logical expression tree for the
// optimizer plus the physical property vector the user requested
// (ORDER BY).
type Statement struct {
	// Tree is the logical algebra expression.
	Tree *core.ExprTree
	// Required is the requested physical property vector; relopt.Any
	// when the query imposes none. It is never nil, so it can be
	// passed to the optimizer directly.
	Required *relopt.PhysProps
}

// Parse lexes, parses, and lowers one statement against the catalog.
func Parse(cat *rel.Catalog, sql string) (*Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	q, err := parseQuery(toks)
	if err != nil {
		return nil, err
	}
	left, lcols, lorder, err := lowerSelect(cat, q.left)
	if err != nil {
		return nil, err
	}
	if q.right == nil {
		if lorder == nil {
			lorder = relopt.Any
		}
		return &Statement{Tree: left, Required: lorder}, nil
	}
	right, rcols, rorder, err := lowerSelect(cat, q.right)
	if err != nil {
		return nil, err
	}
	if len(lcols) != len(rcols) {
		return nil, fmt.Errorf("sqlish: %s sides have %d and %d columns", q.setOp, len(lcols), len(rcols))
	}
	for i := range lcols {
		if lcols[i] != rcols[i] {
			return nil, fmt.Errorf("sqlish: %s sides must produce the same columns", q.setOp)
		}
	}
	required := lorder
	if rorder != nil {
		required = rorder
	}
	if required == nil {
		required = relopt.Any
	}
	var setOp core.LogicalOp = &rel.Intersect{}
	if q.setOp == "UNION" {
		setOp = &rel.Union{}
	}
	return &Statement{
		Tree:     core.Node(setOp, left, right),
		Required: required,
	}, nil
}

// lowerer carries resolution state for one SELECT block.
type lowerer struct {
	cat    *rel.Catalog
	tables []*rel.Table
}

// lowerSelect lowers one block and reports its output columns and
// requested order.
func lowerSelect(cat *rel.Catalog, s *selectStmt) (*core.ExprTree, []rel.ColID, *relopt.PhysProps, error) {
	lo := &lowerer{cat: cat}
	for _, name := range s.tables {
		t := cat.Table(name)
		if t == nil {
			return nil, nil, nil, fmt.Errorf("sqlish: unknown table %q", name)
		}
		lo.tables = append(lo.tables, t)
	}

	// Classify conditions into per-table selections and join edges.
	type edge struct {
		a, b rel.ColID // a in owner(a), b in owner(b)
	}
	selections := make(map[string][]rel.Pred)
	var edges []edge
	var residual []rel.Pred
	for _, c := range s.where {
		lc, err := lo.resolve(c.leftTable, c.leftCol)
		if err != nil {
			return nil, nil, nil, err
		}
		op := cmpOp(c.op)
		if c.rightCol == "" {
			owner := cat.Column(lc).Table
			selections[owner] = append(selections[owner],
				rel.Pred{Col: lc, Op: op, Val: c.value, Param: c.param})
			continue
		}
		rc, err := lo.resolve(c.rightTable, c.rightCol)
		if err != nil {
			return nil, nil, nil, err
		}
		lOwner, rOwner := cat.Column(lc).Table, cat.Column(rc).Table
		switch {
		case lOwner == rOwner:
			selections[lOwner] = append(selections[lOwner],
				rel.Pred{Col: lc, Op: op, OtherCol: rc})
		case op == rel.CmpEQ:
			edges = append(edges, edge{a: lc, b: rc})
		default:
			residual = append(residual, rel.Pred{Col: lc, Op: op, OtherCol: rc})
		}
	}

	// Per-table scan with stacked selections.
	sub := make(map[string]*core.ExprTree, len(lo.tables))
	for _, t := range lo.tables {
		tree := core.Node(&rel.Get{Tab: t})
		for _, p := range selections[t.Name] {
			tree = core.Node(&rel.Select{Pred: p}, tree)
		}
		sub[t.Name] = tree
	}

	// Connect the tables along join edges, FROM order first.
	if len(lo.tables) == 0 {
		return nil, nil, nil, fmt.Errorf("sqlish: no tables")
	}
	joined := map[string]bool{lo.tables[0].Name: true}
	tree := sub[lo.tables[0].Name]
	used := make([]bool, len(edges))
	for len(joined) < len(lo.tables) {
		progress := false
		for i, e := range edges {
			if used[i] {
				continue
			}
			aT, bT := cat.Column(e.a).Table, cat.Column(e.b).Table
			var inner string
			switch {
			case joined[aT] && joined[bT]:
				// Both sides already connected: a residual filter.
				used[i] = true
				residual = append(residual, rel.Pred{Col: e.a, Op: rel.CmpEQ, OtherCol: e.b})
				progress = true
				continue
			case joined[aT]:
				inner = bT
			case joined[bT]:
				inner = aT
			default:
				continue
			}
			used[i] = true
			tree = core.Node(rel.NewJoin(e.a, e.b), tree, sub[inner])
			joined[inner] = true
			progress = true
		}
		if !progress {
			return nil, nil, nil, fmt.Errorf("sqlish: missing join predicate (cartesian products are not supported)")
		}
	}
	for i, e := range edges {
		if !used[i] {
			residual = append(residual, rel.Pred{Col: e.a, Op: rel.CmpEQ, OtherCol: e.b})
		}
	}
	for _, p := range residual {
		tree = core.Node(&rel.Select{Pred: p}, tree)
	}

	// Aggregation and projection.
	outCols, tree, err := lo.project(s, tree)
	if err != nil {
		return nil, nil, nil, err
	}

	// ORDER BY becomes the required physical property vector.
	var required *relopt.PhysProps
	if len(s.orderBy) > 0 {
		required = &relopt.PhysProps{}
		for _, item := range s.orderBy {
			oc, err := lo.resolve(item.table, item.col)
			if err != nil {
				return nil, nil, nil, err
			}
			if len(outCols) > 0 && !containsCol(outCols, oc) {
				return nil, nil, nil, fmt.Errorf("sqlish: ORDER BY column %s not in output",
					lo.cat.Column(oc).Qualified())
			}
			required.Sort = append(required.Sort, relopt.OrderCol{Col: oc, Desc: item.desc})
		}
	}
	return tree, outCols, required, nil
}

// project applies GROUP BY and the select list.
func (lo *lowerer) project(s *selectStmt, tree *core.ExprTree) ([]rel.ColID, *core.ExprTree, error) {
	var aggs []rel.Agg
	var plainCols []rel.ColID
	star := false
	for _, item := range s.items {
		switch {
		case item.star:
			star = true
		case item.agg != "":
			a := rel.Agg{Fn: aggFn(item.agg)}
			if item.col != "" {
				c, err := lo.resolve(item.table, item.col)
				if err != nil {
					return nil, nil, err
				}
				a.Col = c
			}
			aggs = append(aggs, a)
		default:
			c, err := lo.resolve(item.table, item.col)
			if err != nil {
				return nil, nil, err
			}
			plainCols = append(plainCols, c)
		}
	}

	if len(s.groupBy) > 0 || len(aggs) > 0 {
		var groupCols []rel.ColID
		for _, g := range s.groupBy {
			c, err := lo.resolve(g[0], g[1])
			if err != nil {
				return nil, nil, err
			}
			groupCols = append(groupCols, c)
		}
		for _, c := range plainCols {
			if !containsCol(groupCols, c) {
				return nil, nil, fmt.Errorf("sqlish: column %s must appear in GROUP BY",
					lo.cat.Column(c).Qualified())
			}
		}
		if star {
			return nil, nil, fmt.Errorf("sqlish: SELECT * cannot be combined with GROUP BY")
		}
		gb := &rel.GroupBy{GroupCols: groupCols, Aggs: aggs}
		return groupCols, core.Node(gb, tree), nil
	}

	if star || len(plainCols) == 0 {
		if s.distinct {
			return nil, nil, fmt.Errorf("sqlish: SELECT DISTINCT requires an explicit column list")
		}
		return nil, tree, nil // all columns
	}
	if s.distinct {
		// DISTINCT is grouping on the output columns with no
		// aggregates; the optimizer chooses sort- or hash-based
		// duplicate elimination.
		gb := &rel.GroupBy{GroupCols: plainCols}
		return plainCols, core.Node(gb, tree), nil
	}
	return plainCols, core.Node(&rel.Project{Cols: plainCols}, tree), nil
}

// resolve maps a (possibly unqualified) column reference to a ColID,
// searching only the FROM tables.
func (lo *lowerer) resolve(table, col string) (rel.ColID, error) {
	if table != "" {
		id := lo.cat.ColumnID(table, col)
		if id == rel.InvalidCol {
			return 0, fmt.Errorf("sqlish: unknown column %s.%s", table, col)
		}
		inFrom := false
		for _, t := range lo.tables {
			if t.Name == table {
				inFrom = true
			}
		}
		if !inFrom {
			return 0, fmt.Errorf("sqlish: table %q not in FROM", table)
		}
		return id, nil
	}
	found := rel.InvalidCol
	for _, t := range lo.tables {
		if id := lo.cat.ColumnID(t.Name, col); id != rel.InvalidCol {
			if found != rel.InvalidCol {
				return 0, fmt.Errorf("sqlish: ambiguous column %q", col)
			}
			found = id
		}
	}
	if found == rel.InvalidCol {
		return 0, fmt.Errorf("sqlish: unknown column %q", col)
	}
	return found, nil
}

func containsCol(cols []rel.ColID, c rel.ColID) bool {
	for _, x := range cols {
		if x == c {
			return true
		}
	}
	return false
}

func cmpOp(s string) rel.CmpOp {
	switch s {
	case "=":
		return rel.CmpEQ
	case "<>":
		return rel.CmpNE
	case "<":
		return rel.CmpLT
	case "<=":
		return rel.CmpLE
	case ">":
		return rel.CmpGT
	case ">=":
		return rel.CmpGE
	}
	panic("sqlish: bad comparison " + s)
}

func aggFn(s string) rel.AggFn {
	switch s {
	case "COUNT":
		return rel.AggCount
	case "SUM":
		return rel.AggSum
	case "MIN":
		return rel.AggMin
	case "MAX":
		return rel.AggMax
	}
	panic("sqlish: bad aggregate " + s)
}
