package sqlish_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/internal/relopt"
	"repro/internal/sqlish"
)

// fixture: emp(id,dept,age), dept(id,head) with data.
func fixture(t *testing.T) (*rel.Catalog, *exec.DB) {
	t.Helper()
	cat := rel.NewCatalog()
	emp := cat.AddTable("emp", 60, 100)
	cat.AddColumn(emp, "id", 60, 1, 60)
	cat.AddColumn(emp, "dept", 10, 1, 10)
	cat.AddColumn(emp, "age", 40, 20, 59)
	dept := cat.AddTable("dept", 10, 100)
	cat.AddColumn(dept, "id", 10, 1, 10)
	cat.AddColumn(dept, "head", 10, 1, 10)
	s := datagen.New(5)
	return cat, exec.FromData(cat, s.Rows(cat))
}

func mustParse(t *testing.T, cat *rel.Catalog, sql string) *sqlish.Statement {
	t.Helper()
	st, err := sqlish.Parse(cat, sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

// runSQL optimizes and executes a statement.
func runSQL(t *testing.T, cat *rel.Catalog, db *exec.DB, sql string) ([]exec.Row, *exec.Schema, *core.Plan) {
	t.Helper()
	st := mustParse(t, cat, sql)
	model := relopt.New(cat, relopt.DefaultConfig())
	opt := core.NewOptimizer(model, nil)
	root := opt.InsertQuery(st.Tree)
	var required core.PhysProps
	if st.Required != nil {
		required = st.Required
	}
	plan, err := opt.Optimize(root, required)
	if err != nil {
		t.Fatalf("optimize %q: %v", sql, err)
	}
	rows, schema, err := exec.Run(db, plan)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return rows, schema, plan
}

func TestSelectStar(t *testing.T) {
	cat, db := fixture(t)
	rows, schema, _ := runSQL(t, cat, db, "SELECT * FROM emp")
	if len(rows) != 60 || schema.Width() != 3 {
		t.Fatalf("rows=%d width=%d, want 60x3", len(rows), schema.Width())
	}
}

func TestWhereFilter(t *testing.T) {
	cat, db := fixture(t)
	rows, schema, _ := runSQL(t, cat, db, "SELECT id FROM emp WHERE age >= 40")
	agePos := -1
	_ = agePos
	if schema.Width() != 1 {
		t.Fatalf("width=%d, want 1", schema.Width())
	}
	all, _, _ := runSQL(t, cat, db, "SELECT id FROM emp")
	if len(rows) == 0 || len(rows) >= len(all) {
		t.Fatalf("filter returned %d of %d rows", len(rows), len(all))
	}
}

func TestJoinWithOrderBy(t *testing.T) {
	cat, db := fixture(t)
	sql := "SELECT emp.id, emp.dept, dept.head FROM emp, dept WHERE emp.dept = dept.id ORDER BY emp.dept"
	rows, schema, plan := runSQL(t, cat, db, sql)
	if len(rows) == 0 {
		t.Fatal("join returned no rows")
	}
	deptCol := cat.ColumnID("emp", "dept")
	if !exec.SortedBy(rows, []int{schema.Pos(deptCol)}) {
		t.Fatalf("not sorted by emp.dept:\n%s", plan.Format())
	}
	if !plan.Delivered.Covers(relopt.SortedOn(deptCol)) {
		t.Fatal("plan does not deliver the requested order")
	}
}

func TestGroupByAggregates(t *testing.T) {
	cat, db := fixture(t)
	rows, schema, _ := runSQL(t, cat, db,
		"SELECT dept, COUNT(*), MIN(age), MAX(age), SUM(age) FROM emp GROUP BY dept")
	if schema.Width() != 5 {
		t.Fatalf("width=%d, want 5", schema.Width())
	}
	var total int64
	for _, r := range rows {
		total += r[1]
		if r[2] > r[3] {
			t.Fatalf("min %d > max %d", r[2], r[3])
		}
	}
	if total != 60 {
		t.Fatalf("counts sum to %d, want 60", total)
	}
}

func TestGlobalAggregate(t *testing.T) {
	cat, db := fixture(t)
	rows, _, _ := runSQL(t, cat, db, "SELECT COUNT(*) FROM emp")
	if len(rows) != 1 || rows[0][0] != 60 {
		t.Fatalf("rows=%v, want one row [60]", rows)
	}
}

func TestIntersect(t *testing.T) {
	cat, db := fixture(t)
	sql := "SELECT id FROM emp WHERE age < 45 INTERSECT SELECT id FROM emp WHERE age > 30"
	rows, _, _ := runSQL(t, cat, db, sql)
	both, _, _ := runSQL(t, cat, db, "SELECT id FROM emp WHERE age < 45 AND age > 30")
	if exec.Fingerprint(rows) != exec.Fingerprint(both) {
		t.Fatalf("intersect %d rows != conjunction %d rows", len(rows), len(both))
	}
}

func TestParseErrors(t *testing.T) {
	cat, _ := fixture(t)
	for _, sql := range []string{
		"",
		"SELECT",
		"SELECT * FROM nosuch",
		"SELECT nosuch FROM emp",
		"SELECT id FROM emp, dept", // cartesian product
		"SELECT id FROM emp WHERE",
		"SELECT id FROM emp ORDER BY head", // not in output
		"SELECT age FROM emp GROUP BY dept",
		"SELECT id FROM emp WHERE age ! 3",
		"SELECT SUM(*) FROM emp",
		"SELECT id FROM emp INTERSECT SELECT id, age FROM emp",
		"SELECT id FROM emp trailing",
	} {
		if _, err := sqlish.Parse(cat, sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	cat, _ := fixture(t)
	_, err := sqlish.Parse(cat, "SELECT id FROM emp, dept WHERE emp.dept = dept.id")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v, want ambiguous column", err)
	}
}

func TestRedundantJoinPredicateBecomesFilter(t *testing.T) {
	cat, db := fixture(t)
	// Second equality between the same tables becomes a residual filter.
	sql := "SELECT emp.id FROM emp, dept WHERE emp.dept = dept.id AND emp.dept = dept.head"
	rows, _, _ := runSQL(t, cat, db, sql)
	st := mustParse(t, cat, sql)
	ref, refSchema, err := exec.Reference(db, st.Tree)
	if err != nil {
		t.Fatal(err)
	}
	_ = refSchema
	if len(rows) != len(ref) {
		t.Fatalf("rows=%d, reference=%d", len(rows), len(ref))
	}
}

func TestOrderByMultipleColumns(t *testing.T) {
	cat, db := fixture(t)
	sql := "SELECT dept, age, id FROM emp ORDER BY dept, age DESC"
	rows, schema, plan := runSQL(t, cat, db, sql)
	if len(rows) != 60 {
		t.Fatalf("rows = %d", len(rows))
	}
	deptPos := schema.Pos(cat.ColumnID("emp", "dept"))
	agePos := schema.Pos(cat.ColumnID("emp", "age"))
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a[deptPos] > b[deptPos] {
			t.Fatalf("not sorted by dept:\n%s", plan.Format())
		}
		if a[deptPos] == b[deptPos] && a[agePos] < b[agePos] {
			t.Fatalf("ties not sorted by age desc:\n%s", plan.Format())
		}
	}
}

func TestSelectDistinct(t *testing.T) {
	cat, db := fixture(t)
	rows, _, plan := runSQL(t, cat, db, "SELECT DISTINCT dept FROM emp ORDER BY dept")
	if len(rows) == 0 || len(rows) > 10 {
		t.Fatalf("distinct depts = %d, want 1..10", len(rows))
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		if seen[r[0]] {
			t.Fatalf("duplicate value %d in DISTINCT output:\n%s", r[0], plan.Format())
		}
		seen[r[0]] = true
	}
	if !exec.SortedBy(rows, []int{0}) {
		t.Fatal("DISTINCT ... ORDER BY not sorted")
	}
	if _, err := sqlish.Parse(cat, "SELECT DISTINCT * FROM emp"); err == nil {
		t.Fatal("DISTINCT * accepted")
	}
}

func TestUnion(t *testing.T) {
	cat, db := fixture(t)
	sql := "SELECT id FROM emp WHERE age < 30 UNION SELECT id FROM emp WHERE age > 50 ORDER BY id"
	rows, schema, plan := runSQL(t, cat, db, sql)
	st := mustParse(t, cat, sql)
	want, _, err := exec.Reference(db, st.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Fingerprint(rows) != exec.Fingerprint(want) {
		t.Fatalf("union %d rows != reference %d rows\n%s", len(rows), len(want), plan.Format())
	}
	if !exec.SortedBy(rows, []int{schema.Pos(cat.ColumnID("emp", "id"))}) {
		t.Fatalf("UNION ... ORDER BY not sorted:\n%s", plan.Format())
	}
	// No duplicates (set semantics).
	seen := map[int64]bool{}
	for _, r := range rows {
		if seen[r[0]] {
			t.Fatal("duplicate in UNION output")
		}
		seen[r[0]] = true
	}
}
