// Package sqlish parses a small SQL-like query language into the
// relational logical algebra of internal/rel, producing the expression
// tree and required physical property vector that a generated optimizer
// consumes. The dialect covers exactly what the examples and experiments
// need:
//
//	SELECT * | col[, col...] | agg(col)[, ...]
//	FROM table[, table...]
//	[WHERE pred [AND pred...]]
//	[GROUP BY col[, col...]]
//	[ORDER BY col [DESC]]
//	[INTERSECT SELECT ...]
//
// Predicates compare a column with an integer constant or with another
// column; equality predicates across tables become joins.
package sqlish

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokSymbol // ( ) , . * = < > <= >= <>
	tokKeyword
	tokParam // $1, $2, ... — runtime parameters
)

// keywords of the dialect, uppercase.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"GROUP": true, "BY": true, "ORDER": true, "DESC": true, "ASC": true,
	"INTERSECT": true, "UNION": true, "DISTINCT": true, "COUNT": true, "SUM": true, "MIN": true, "MAX": true,
}

// token is one lexed unit.
type token struct {
	kind tokKind
	text string // keywords uppercased; symbols verbatim
	pos  int
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) ||
				unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		case unicode.IsDigit(c):
			start := i
			for i < len(input) && unicode.IsDigit(rune(input[i])) {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '$':
			start := i
			i++
			for i < len(input) && unicode.IsDigit(rune(input[i])) {
				i++
			}
			if i == start+1 {
				return nil, fmt.Errorf("sqlish: bare $ at offset %d", start)
			}
			toks = append(toks, token{kind: tokParam, text: input[start+1 : i], pos: start})
		case strings.ContainsRune("(),.*=", c):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c == '<' || c == '>':
			start := i
			i++
			if i < len(input) && (input[i] == '=' || (c == '<' && input[i] == '>')) {
				i++
			}
			toks = append(toks, token{kind: tokSymbol, text: input[start:i], pos: start})
		default:
			return nil, fmt.Errorf("sqlish: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}
