package sqlish

import (
	"fmt"
	"strconv"
)

// ast types for one SELECT block.

// selectItem is one output column or aggregate.
type selectItem struct {
	star  bool
	agg   string // "", "COUNT", "SUM", "MIN", "MAX"
	table string // optional qualifier
	col   string // empty for COUNT(*)
}

// condition is one WHERE conjunct.
type condition struct {
	leftTable, leftCol   string
	op                   string
	rightTable, rightCol string // column RHS when rightCol != ""
	value                int64  // constant RHS otherwise
	param                int    // 1-based runtime parameter index, 0 if none
}

// selectStmt is one parsed SELECT block.
type selectStmt struct {
	distinct bool
	items    []selectItem
	tables   []string
	where    []condition
	groupBy  [][2]string // (table, col)
	orderBy  []orderItem
}

type orderItem struct {
	table, col string
	desc       bool
}

// query is a SELECT, optionally combined with another by a set
// operation.
type query struct {
	left  *selectStmt
	setOp string      // "INTERSECT" or "UNION" when right is set
	right *selectStmt // non-nil for a set operation
}

// parser walks the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("sqlish: expected %s at offset %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectSymbol(s string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != s {
		return fmt.Errorf("sqlish: expected %q at offset %d, got %q", s, t.pos, t.text)
	}
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptSymbol(s string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == s {
		p.pos++
		return true
	}
	return false
}

// parseQuery parses the whole statement.
func parseQuery(toks []token) (*query, error) {
	p := &parser{toks: toks}
	left, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	q := &query{left: left}
	for _, op := range []string{"INTERSECT", "UNION"} {
		if p.acceptKeyword(op) {
			right, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			q.setOp = op
			q.right = right
			break
		}
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sqlish: trailing input at offset %d: %q", p.peek().pos, p.peek().text)
	}
	return q, nil
}

func (p *parser) parseSelect() (*selectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &selectStmt{}
	s.distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.items = append(s.items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("sqlish: expected table name at offset %d", t.pos)
		}
		s.tables = append(s.tables, t.text)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		for {
			cond, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			s.where = append(s.where, cond)
			if !p.acceptKeyword("AND") {
				break
			}
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			tb, col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			s.groupBy = append(s.groupBy, [2]string{tb, col})
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			tb, col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			item := orderItem{table: tb, col: col}
			if p.acceptKeyword("DESC") {
				item.desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.orderBy = append(s.orderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	return s, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	t := p.peek()
	if t.kind == tokSymbol && t.text == "*" {
		p.pos++
		return selectItem{star: true}, nil
	}
	if t.kind == tokKeyword && (t.text == "COUNT" || t.text == "SUM" || t.text == "MIN" || t.text == "MAX") {
		p.pos++
		if err := p.expectSymbol("("); err != nil {
			return selectItem{}, err
		}
		item := selectItem{agg: t.text}
		if p.acceptSymbol("*") {
			if t.text != "COUNT" {
				return selectItem{}, fmt.Errorf("sqlish: %s(*) is not supported", t.text)
			}
		} else {
			tb, col, err := p.parseColumnRef()
			if err != nil {
				return selectItem{}, err
			}
			item.table, item.col = tb, col
		}
		if err := p.expectSymbol(")"); err != nil {
			return selectItem{}, err
		}
		return item, nil
	}
	tb, col, err := p.parseColumnRef()
	if err != nil {
		return selectItem{}, err
	}
	return selectItem{table: tb, col: col}, nil
}

// parseColumnRef parses "col" or "table.col".
func (p *parser) parseColumnRef() (table, col string, err error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", "", fmt.Errorf("sqlish: expected column at offset %d, got %q", t.pos, t.text)
	}
	if p.acceptSymbol(".") {
		c := p.next()
		if c.kind != tokIdent {
			return "", "", fmt.Errorf("sqlish: expected column after %q. at offset %d", t.text, c.pos)
		}
		return t.text, c.text, nil
	}
	return "", t.text, nil
}

func (p *parser) parseCondition() (condition, error) {
	lt, lc, err := p.parseColumnRef()
	if err != nil {
		return condition{}, err
	}
	op := p.next()
	if op.kind != tokSymbol || !validCmp(op.text) {
		return condition{}, fmt.Errorf("sqlish: expected comparison at offset %d, got %q", op.pos, op.text)
	}
	cond := condition{leftTable: lt, leftCol: lc, op: op.text}
	rhs := p.peek()
	switch rhs.kind {
	case tokNumber:
		p.pos++
		v, err := strconv.ParseInt(rhs.text, 10, 64)
		if err != nil {
			return condition{}, fmt.Errorf("sqlish: bad number %q", rhs.text)
		}
		cond.value = v
	case tokParam:
		p.pos++
		n, err := strconv.Atoi(rhs.text)
		if err != nil || n < 1 {
			return condition{}, fmt.Errorf("sqlish: bad parameter $%s", rhs.text)
		}
		cond.param = n
	case tokIdent:
		rt, rc, err := p.parseColumnRef()
		if err != nil {
			return condition{}, err
		}
		cond.rightTable, cond.rightCol = rt, rc
	default:
		return condition{}, fmt.Errorf("sqlish: expected constant or column at offset %d", rhs.pos)
	}
	return cond, nil
}

func validCmp(s string) bool {
	switch s {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}
