package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/vdb"
)

// openDemo builds a small in-memory database with the plan cache on.
func openDemo(t *testing.T, n int) *vdb.DB {
	t.Helper()
	src := datagen.New(7)
	cat := src.Catalog(n)
	return vdb.Open(cat, src.Rows(cat), &vdb.Options{Guided: true, CacheBytes: 1 << 20})
}

func postJSON(t *testing.T, ts *httptest.Server, path string, req Request) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read %s response: %v", path, err)
	}
	return resp, buf.Bytes()
}

func TestEndpoints(t *testing.T) {
	db := openDemo(t, 4)
	s := New(db, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const sql = "SELECT R1.id FROM R1, R2 WHERE R1.ja = R2.id ORDER BY R1.id"

	resp, body := postJSON(t, ts, "/query", Request{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query status %d: %s", resp.StatusCode, body)
	}
	var qr Result
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) == 0 || len(qr.Columns) != 1 || qr.Cost <= 0 {
		t.Fatalf("/query envelope: rows=%d cols=%v cost=%v", len(qr.Rows), qr.Columns, qr.Cost)
	}

	// Same statement again: the plan cache serves it.
	resp, body = postJSON(t, ts, "/query", Request{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query (cached) status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Cached {
		t.Errorf("second identical query not served from plan cache")
	}

	resp, body = postJSON(t, ts, "/explain", Request{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/explain status %d: %s", resp.StatusCode, body)
	}
	var er Result
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Plan == "" || er.Rows != nil {
		t.Fatalf("/explain envelope: plan=%q rows=%v", er.Plan, er.Rows)
	}

	resp, body = postJSON(t, ts, "/prepare", Request{SQL: "SELECT R1.id FROM R1 WHERE R1.v < $1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/prepare status %d: %s", resp.StatusCode, body)
	}
	var pr Result
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.NParams != 1 || pr.Plan == "" {
		t.Fatalf("/prepare envelope: nparams=%d plan=%q", pr.NParams, pr.Plan)
	}

	resp, body = postJSON(t, ts, "/query", Request{
		SQL: "SELECT R1.id FROM R1 WHERE R1.v < $1", Params: []int64{5},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query with params status %d: %s", resp.StatusCode, body)
	}

	resp, body = postJSON(t, ts, "/batch", Request{Statements: []string{
		"SELECT R1.id FROM R1, R2 WHERE R1.ja = R2.id",
		"SELECT R1.v FROM R1, R2 WHERE R1.ja = R2.id",
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/batch status %d: %s", resp.StatusCode, body)
	}
	var br BatchResult
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 {
		t.Fatalf("/batch results: %d", len(br.Results))
	}
	for i, r := range br.Results {
		if r.Cached {
			t.Errorf("batch result %d claims a plan-cache hit; batches bypass the cache", i)
		}
	}

	resp, body = postJSON(t, ts, "/query", Request{SQL: "SELEKT nonsense"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad SQL status %d: %s", resp.StatusCode, body)
	}

	// Metrics reflect the traffic above.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap struct {
		Search struct {
			Optimizations int64 `json:"optimizations"`
			CacheHits     int64 `json:"cache_hits"`
		} `json:"search"`
		Serve struct {
			Admitted int64 `json:"admitted"`
			Errors   int64 `json:"errors"`
		} `json:"serve"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Search.Optimizations < 4 || snap.Search.CacheHits < 1 {
		t.Errorf("metrics search section: %+v", snap.Search)
	}
	if snap.Serve.Admitted < 6 || snap.Serve.Errors != 1 {
		t.Errorf("metrics serve section: %+v", snap.Serve)
	}
}

// TestOverloadContract: with the tier's only slot held, every further
// request is either a complete 200 (possibly on a degraded plan) or a
// 503 with Retry-After — never a partial result, never an unbounded
// wait. One request parks on the onAdmitted seam to hold capacity (a
// single-core machine never overlaps CPU-bound optimizations, so real
// contention cannot be provoked portably).
func TestOverloadContract(t *testing.T) {
	db := openDemo(t, 5)
	s := New(db, &Config{
		MaxConcurrent: 1,
		QueueTimeout:  time.Millisecond,
	})
	gate := make(chan struct{})
	var holder atomic.Bool
	s.onAdmitted = func() {
		if holder.CompareAndSwap(false, true) {
			<-gate
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const sql = "SELECT R1.id FROM R1, R2 WHERE R1.ja = R2.id"
	ref, err := db.QueryCtx(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	db.PlanCache().Invalidate()

	// The holder takes the slot and parks.
	holderDone := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(Request{SQL: sql})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			holderDone <- -1
			return
		}
		defer resp.Body.Close()
		var r Result
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			holderDone <- -1
			return
		}
		holderDone <- len(r.Rows)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// Every request while the slot is held must shed: bounded wait,
	// 503, Retry-After, a decodable error body — nothing partial.
	var wg sync.WaitGroup
	var shed503 atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(Request{SQL: sql})
			start := time.Now()
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			defer resp.Body.Close()
			if wait := time.Since(start); wait > 2*time.Second {
				t.Errorf("shed request waited %v; the queue must be bounded", wait)
			}
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("status %d while capacity held, want 503", resp.StatusCode)
				return
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Errorf("503 without Retry-After")
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Errorf("503 body not a complete error payload: %v", err)
			}
			shed503.Add(1)
		}()
	}
	wg.Wait()

	// Capacity freed: the parked request completes with the full,
	// correct row set, and new requests are admitted again.
	close(gate)
	if rows := <-holderDone; rows != len(ref.Rows) {
		t.Errorf("holder returned %d rows, want %d", rows, len(ref.Rows))
	}
	resp, body := postJSON(t, ts, "/query", Request{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-drain status %d: %s", resp.StatusCode, body)
	}

	snap := s.Metrics()
	if snap.Serve.Shed != shed503.Load() {
		t.Errorf("shed counter %d, 503 responses %d", snap.Serve.Shed, shed503.Load())
	}
	if snap.Serve.Inflight != 0 {
		t.Errorf("inflight %d after drain", snap.Serve.Inflight)
	}
	t.Logf("overload: %d shed while capacity held, holder completed intact", shed503.Load())
}

// TestClientDisconnect: canceling the client context mid-request tears
// the statement down cleanly — the server accounts a cancellation and
// leaks no goroutines.
func TestClientDisconnect(t *testing.T) {
	db := openDemo(t, 8)
	s := New(db, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		body, _ := json.Marshal(Request{
			// A 8-relation chain is slow enough to optimize that the
			// cancel lands mid-request.
			SQL: fmt.Sprintf("SELECT R1.id FROM R1, R2, R3, R4, R5, R6, R7, R8 "+
				"WHERE R1.ja = R2.id AND R2.ja = R3.id AND R3.ja = R4.id AND R4.ja = R5.id "+
				"AND R5.ja = R6.id AND R6.ja = R7.id AND R7.ja = R8.id AND R1.v < %d", i+1),
		})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/query", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		cancel()
	}

	// Let teardown finish, then compare goroutine counts; -race makes
	// any cross-goroutine misuse fail loudly as well. Idle client
	// transport connections each hold two goroutines — drop them so the
	// count reflects the server side.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines grew from %d to %d after canceled requests", before, n)
	}

	// The client's Do returns as soon as its context cancels, but the
	// server-side handler drains on its own schedule (slow under
	// -race), and the goroutine comparison above has +2 slack that can
	// hide one still-finishing handler — so poll inflight down to zero
	// rather than reading it once.
	var snap *metrics.Snapshot
	deadline = time.Now().Add(5 * time.Second)
	for {
		snap = s.Metrics()
		if snap.Serve.Inflight == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.Serve.Canceled == 0 {
		t.Logf("note: cancellations completed before the cancel landed (fast machine); canceled=0")
	}
	if snap.Serve.Inflight != 0 {
		t.Errorf("inflight %d after cancellations", snap.Serve.Inflight)
	}
}

// TestPerEndpointDegradedTiers: each endpoint degrades onto its own
// budget tier. With every admit under pressure (degradeAt=1), a
// one-step tier on /explain and /prepare forces budget-stopped
// (Degraded) plans there, while the same statement through /query —
// whose tier is effectively unbounded — optimizes fully.
func TestPerEndpointDegradedTiers(t *testing.T) {
	db := openDemo(t, 8)
	s := New(db, &Config{
		MaxConcurrent:  2,
		DegradeFrac:    0.01, // degradeAt=1: every admit is "under pressure"
		DegradedBudget: core.Budget{MaxSteps: 10_000_000},
		DegradedBudgets: map[string]core.Budget{
			"/explain": {MaxSteps: 1},
			"/prepare": {MaxSteps: 1},
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sql := "SELECT R1.id FROM R1, R2, R3, R4, R5, R6, R7, R8 " +
		"WHERE R1.ja = R2.id AND R2.ja = R3.id AND R3.ja = R4.id AND R4.ja = R5.id " +
		"AND R5.ja = R6.id AND R6.ja = R7.id AND R7.ja = R8.id"

	// /explain first: a degraded plan is never cached, so it cannot be
	// served from (or pollute) the cache the later /query fills.
	resp, body := postJSON(t, ts, "/explain", Request{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/explain status %d: %s", resp.StatusCode, body)
	}
	var er Result
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Degraded || er.Plan == "" {
		t.Errorf("/explain on a 1-step tier: degraded=%v plan=%q, want a degraded plan", er.Degraded, er.Plan)
	}

	// A non-parameterized prepare: dynamic-plan preparation ($n
	// statements) deliberately ignores budgets, so only the static
	// path shows the tier.
	resp, body = postJSON(t, ts, "/prepare", Request{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/prepare status %d: %s", resp.StatusCode, body)
	}
	var pr Result
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Degraded {
		t.Errorf("/prepare on a 1-step tier: degraded=%v, want true", pr.Degraded)
	}

	resp, body = postJSON(t, ts, "/query", Request{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query status %d: %s", resp.StatusCode, body)
	}
	var qr Result
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Degraded {
		t.Errorf("/query on the roomy tier degraded (%s); tiers did not separate", qr.StopReason)
	}

	snap := s.Metrics()
	if snap.Serve.DegradedAdmits < 3 {
		t.Errorf("degradeAt=1 but only %d degraded admits recorded", snap.Serve.DegradedAdmits)
	}
}

// TestDegradedTierDefaults: the zero config tiers /explain and
// /prepare at half the general degraded budget.
func TestDegradedTierDefaults(t *testing.T) {
	cfg := New(openDemo(t, 2), nil).Config()
	want := core.Budget{
		Timeout:  cfg.DegradedBudget.Timeout / 2,
		MaxSteps: cfg.DegradedBudget.MaxSteps / 2,
	}
	for _, path := range []string{"/explain", "/prepare"} {
		if got := cfg.DegradedBudgets[path]; got != want {
			t.Errorf("%s default tier %+v, want %+v", path, got, want)
		}
	}
	if _, ok := cfg.DegradedBudgets["/query"]; ok {
		t.Errorf("/query should ride the general DegradedBudget, not its own tier")
	}
}

// TestDegradedBudgetMapsToResult: a server with a degrade threshold of
// zero runs everything on the clamped budget; a hard statement then
// reports Degraded on the wire while still returning correct rows.
func TestDegradedBudgetMapsToResult(t *testing.T) {
	db := openDemo(t, 8)
	s := New(db, &Config{
		MaxConcurrent: 2,
		DegradeFrac:   0.01, // degradeAt=1: every admit is "under pressure"
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sql := "SELECT R1.id FROM R1, R2, R3, R4, R5, R6, R7, R8 " +
		"WHERE R1.ja = R2.id AND R2.ja = R3.id AND R3.ja = R4.id AND R4.ja = R5.id " +
		"AND R5.ja = R6.id AND R6.ja = R7.id AND R7.ja = R8.id"
	ref, err := db.QueryCtx(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	db.PlanCache().Invalidate()

	resp, body := postJSON(t, ts, "/query", Request{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var r Result
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(ref.Rows) {
		t.Errorf("degraded run returned %d rows, full run %d", len(r.Rows), len(ref.Rows))
	}
	snap := s.Metrics()
	if snap.Serve.DegradedAdmits == 0 {
		t.Errorf("degradeAt=1 but no degraded admits recorded")
	}
	if r.Degraded {
		if r.StopReason == "" {
			t.Errorf("degraded result without stop_reason")
		}
		t.Logf("degraded as expected: %s", r.StopReason)
	} else {
		t.Logf("note: clamped budget sufficed for full optimization on this machine")
	}
}
