// Package serve is the network serving tier over vdb: an HTTP/JSON
// daemon exposing prepare, explain, query, and batch endpoints with
// per-request deadlines, semaphore-based admission control, and
// overload degradation. Under pressure it does not queue unboundedly —
// it first degrades admitted requests onto a clamped optimization
// budget (riding vdb's anytime ladder down toward seed-floor plans,
// which still produce exact results), and once saturated it fast-fails
// with 503 + Retry-After, keeping admitted-request latency bounded.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/relopt"
	"repro/internal/vdb"
)

// StatusClientClosedRequest is the response code recorded when the
// client went away mid-request (nginx's 499 convention). The client is
// gone, so the code is for logs and metrics, not for the wire.
const StatusClientClosedRequest = 499

// Config tunes a Server. The zero value is completed with defaults.
type Config struct {
	// MaxConcurrent caps requests executing at once; further requests
	// wait at most QueueTimeout for a slot before being shed with 503.
	// Default 4×GOMAXPROCS.
	MaxConcurrent int
	// QueueTimeout bounds how long an arriving request may wait for a
	// slot — the only queue in the tier, bounded in time so backlog
	// cannot grow without bound. Default 25ms.
	QueueTimeout time.Duration
	// DegradeFrac is the inflight fraction of MaxConcurrent at which
	// admitted requests switch to DegradedBudget. Default 0.75.
	DegradeFrac float64
	// DegradedBudget is the clamped optimization budget degraded admits
	// run under; the search stops early and serves the best (possibly
	// seed-floor) plan found, still producing exact results. Default
	// {Timeout: 2ms, MaxSteps: 5000}.
	DegradedBudget core.Budget
	// DegradedBudgets overrides the degraded tier per endpoint path
	// (e.g. "/explain"); endpoints without an entry fall back to
	// DegradedBudget. By default /explain and /prepare — plan-only
	// endpoints where a seed-floor plan is a complete answer — are
	// tiered at half the /query budget, so under pressure the tier
	// sheds optimization effort first where no rows depend on it.
	DegradedBudgets map[string]core.Budget
	// DegradedPolicy, when not core.PolicyExhaustive, switches
	// degraded admits onto a budgeted stochastic search policy
	// (core.PolicyMCTS or core.PolicyWidening) alongside the clamped
	// budget: instead of an exhaustive search truncated mid-descent,
	// the degraded tier runs a policy built to spend a small budget
	// well on large queries. Policy-optimized plans bypass the plan
	// cache (see vdb.WithSearchPolicy), so the degraded tier never
	// pollutes full-budget serving. Default PolicyExhaustive (off).
	DegradedPolicy core.SearchPolicy
	// DefaultTimeout is the per-request deadline when the client sends
	// none; MaxTimeout clamps client-requested deadlines. Defaults 2s
	// and 30s.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetryAfter is the hint attached to 503 responses. Default 1s.
	RetryAfter time.Duration
}

func (c *Config) withDefaults() Config {
	out := Config{}
	if c != nil {
		out = *c
	}
	if out.MaxConcurrent <= 0 {
		out.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if out.QueueTimeout <= 0 {
		out.QueueTimeout = 25 * time.Millisecond
	}
	if out.DegradeFrac <= 0 || out.DegradeFrac > 1 {
		out.DegradeFrac = 0.75
	}
	if out.DegradedBudget == (core.Budget{}) {
		out.DegradedBudget = core.Budget{Timeout: 2 * time.Millisecond, MaxSteps: 5000}
	}
	// Copy the per-endpoint overrides (so the caller's map is never
	// aliased) and fill the default tighter tiers for the plan-only
	// endpoints.
	budgets := make(map[string]core.Budget, len(out.DegradedBudgets)+2)
	for path, b := range out.DegradedBudgets {
		budgets[path] = b
	}
	for _, path := range []string{"/explain", "/prepare"} {
		if _, ok := budgets[path]; !ok {
			budgets[path] = core.Budget{
				Timeout:  out.DegradedBudget.Timeout / 2,
				MaxSteps: out.DegradedBudget.MaxSteps / 2,
			}
		}
	}
	out.DegradedBudgets = budgets
	if out.DefaultTimeout <= 0 {
		out.DefaultTimeout = 2 * time.Second
	}
	if out.MaxTimeout <= 0 {
		out.MaxTimeout = 30 * time.Second
	}
	if out.RetryAfter <= 0 {
		out.RetryAfter = time.Second
	}
	return out
}

// Request is the wire request accepted by every POST endpoint. /query,
// /explain, and /prepare read SQL (and Params for /query); /batch
// reads Statements.
type Request struct {
	SQL        string   `json:"sql,omitempty"`
	Statements []string `json:"statements,omitempty"`
	Params     []int64  `json:"params,omitempty"`
	// TimeoutMS requests a per-request deadline in milliseconds,
	// clamped to the server's MaxTimeout; 0 means DefaultTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Result is the wire projection of vdb.Result. Rows appear only for
// executed statements, Plan only for explain/prepare responses.
type Result struct {
	Rows    [][]int64 `json:"rows,omitempty"`
	Columns []string  `json:"columns,omitempty"`
	Plan    string    `json:"plan,omitempty"`
	Cost    float64   `json:"cost"`

	Degraded   bool   `json:"degraded"`
	StopReason string `json:"stop_reason,omitempty"`
	Cached     bool   `json:"cached"`
	Coalesced  bool   `json:"coalesced"`
	Dynamic    bool   `json:"dynamic"`
	NParams    int    `json:"nparams"`

	OptimizeUS int64 `json:"optimize_us"`
	ExecUS     int64 `json:"exec_us"`
}

// BatchResult is the wire response of /batch.
type BatchResult struct {
	Results []*Result `json:"results"`
	Spools  int       `json:"spools"`
}

// errorBody is the JSON payload of every non-200 response.
type errorBody struct {
	Error string `json:"error"`
}

// toWire projects a vdb.Result; withPlan additionally renders the plan
// (explain responses carry PlanText already, prepare renders here).
func toWire(res *vdb.Result, withPlan bool) *Result {
	out := &Result{
		Columns:    res.Columns,
		Degraded:   res.Degraded,
		Cached:     res.Cached,
		Coalesced:  res.Coalesced,
		Dynamic:    res.Dynamic,
		NParams:    res.NParams,
		OptimizeUS: res.OptimizeTime.Microseconds(),
		ExecUS:     res.ExecTime.Microseconds(),
	}
	if res.StopReason != nil {
		out.StopReason = res.StopReason.Error()
	}
	if c, ok := res.Cost.(relopt.Cost); ok {
		out.Cost = c.Total()
	}
	if res.Rows != nil {
		out.Rows = make([][]int64, len(res.Rows))
		for i, r := range res.Rows {
			out.Rows[i] = r
		}
	}
	switch {
	case res.PlanText != "":
		out.Plan = res.PlanText
	case withPlan && res.Plan != nil:
		out.Plan = res.Plan.Format()
	}
	return out
}

// epStats is one endpoint's cumulative serving record.
type epStats struct {
	requests  atomic.Int64
	errors    atomic.Int64
	degraded  atomic.Int64
	cacheHits atomic.Int64
	lat       metrics.Histogram
}

// Server serves one vdb.DB over HTTP.
type Server struct {
	db  *vdb.DB
	cfg Config
	adm *admission
	mux *http.ServeMux

	canceled atomic.Int64
	errors   atomic.Int64
	eps      map[string]*epStats

	mu     sync.Mutex
	search *metrics.Search

	// onAdmitted, when set, runs after a request takes its admission
	// slot and before its statement starts. It is a test seam: overload
	// tests park one request here to hold the tier's capacity without
	// depending on CPU-bound work overlapping (which a single-core
	// machine never shows).
	onAdmitted func()

	httpSrv *http.Server
}

// New builds a Server over db.
func New(db *vdb.DB, cfg *Config) *Server {
	c := cfg.withDefaults()
	degradeAt := int(c.DegradeFrac * float64(c.MaxConcurrent))
	if degradeAt < 1 {
		degradeAt = 1
	}
	s := &Server{
		db:     db,
		cfg:    c,
		adm:    newAdmission(c.MaxConcurrent, degradeAt, c.QueueTimeout),
		mux:    http.NewServeMux(),
		eps:    map[string]*epStats{},
		search: &metrics.Search{},
	}
	s.endpoint("/query", s.query)
	s.endpoint("/explain", s.explain)
	s.endpoint("/prepare", s.prepare)
	s.endpoint("/batch", s.batch)
	s.mux.HandleFunc("/metrics", s.metricsHandler)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// Handler exposes the routing mux (for tests and in-process harnesses).
func (s *Server) Handler() http.Handler { return s.mux }

// Config exposes the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops accepting new connections and waits for in-flight
// requests to drain, bounded by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Shutdown(ctx)
}

// handlerFn runs one admitted request under a context that carries the
// request deadline and the (possibly degraded) optimization budget. It
// returns the wire body plus the vdb envelope for accounting.
type handlerFn func(ctx context.Context, req *Request) (any, *vdb.Result, error)

// endpoint installs the shared request plumbing around fn: decode,
// admission, deadline + budget mapping, error classification, and
// per-endpoint accounting.
func (s *Server) endpoint(path string, fn handlerFn) {
	ep := &epStats{}
	s.eps[path] = ep
	degradedBudget := s.cfg.DegradedBudget
	if b, ok := s.cfg.DegradedBudgets[path]; ok {
		degradedBudget = b
	}
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
			return
		}
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
			return
		}

		start := time.Now()
		ep.requests.Add(1)
		defer func() { ep.lat.Observe(time.Since(start)) }()

		degraded, ok := s.adm.admit(r.Context())
		if !ok {
			if r.Context().Err() != nil {
				s.canceled.Add(1)
				return // client gone while queued; nothing to write
			}
			w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "overloaded, request shed"})
			return
		}
		defer s.adm.release()
		if s.onAdmitted != nil {
			s.onAdmitted()
		}

		d := s.cfg.DefaultTimeout
		if req.TimeoutMS > 0 {
			d = time.Duration(req.TimeoutMS) * time.Millisecond
			if d > s.cfg.MaxTimeout {
				d = s.cfg.MaxTimeout
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		budget := core.Budget{Timeout: d / 2}
		if degraded {
			budget = degradedBudget
			if s.cfg.DegradedPolicy != core.PolicyExhaustive {
				ctx = vdb.WithSearchPolicy(ctx, s.cfg.DegradedPolicy)
			}
		}
		ctx = vdb.WithBudget(ctx, budget)

		body, res, err := fn(ctx, &req)
		if err != nil {
			status := classify(r.Context(), ctx, err)
			switch status {
			case StatusClientClosedRequest:
				s.canceled.Add(1)
				return // client gone; response would go nowhere
			default:
				ep.errors.Add(1)
				s.errors.Add(1)
			}
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		if res != nil {
			s.record(res)
			if res.Degraded {
				ep.degraded.Add(1)
			}
			if res.Cached {
				ep.cacheHits.Add(1)
			}
		}
		writeJSON(w, http.StatusOK, body)
	})
}

// classify maps a statement error to an HTTP status: client gone →
// 499, request deadline → 504, client-side statement errors (parse,
// unsupported shapes — tagged "sqlish:"/"vdb:") → 400, else 500.
func classify(reqCtx, ctx context.Context, err error) int {
	if reqCtx.Err() != nil {
		return StatusClientClosedRequest
	}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	msg := err.Error()
	if strings.HasPrefix(msg, "sqlish:") || strings.HasPrefix(msg, "vdb:") {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// query executes req.SQL (with Params when present) and returns the
// full row set — rows are buffered before any byte is written, so a
// response is always complete or absent, never partial.
func (s *Server) query(ctx context.Context, req *Request) (any, *vdb.Result, error) {
	var res *vdb.Result
	var err error
	if len(req.Params) > 0 {
		res, err = s.db.QueryParamsCtx(ctx, req.SQL, req.Params...)
	} else {
		res, err = s.db.QueryCtx(ctx, req.SQL)
	}
	if err != nil {
		return nil, nil, err
	}
	return toWire(res, false), res, nil
}

func (s *Server) explain(ctx context.Context, req *Request) (any, *vdb.Result, error) {
	res, err := s.db.ExplainCtx(ctx, req.SQL)
	if err != nil {
		return nil, nil, err
	}
	return toWire(res, true), res, nil
}

func (s *Server) prepare(ctx context.Context, req *Request) (any, *vdb.Result, error) {
	stmt, err := s.db.PrepareCtx(ctx, req.SQL)
	if err != nil {
		return nil, nil, err
	}
	res := stmt.Result()
	return toWire(res, true), res, nil
}

func (s *Server) batch(ctx context.Context, req *Request) (any, *vdb.Result, error) {
	out, err := s.db.QueryBatchCtx(ctx, req.Statements)
	if err != nil {
		return nil, nil, err
	}
	body := &BatchResult{Spools: out.Spools, Results: make([]*Result, len(out.Results))}
	for i, r := range out.Results {
		body.Results[i] = toWire(r, false)
	}
	// The batch shares one optimization, and every Result carries the
	// same Stats; handing one representative back to the endpoint
	// plumbing records the shared counters exactly once.
	var rep *vdb.Result
	if len(out.Results) > 0 {
		rep = out.Results[0]
	}
	return body, rep, nil
}

// record folds one served statement into the cumulative search
// section. Cache-hit and coalesced results carry the *original*
// optimization's counters in Stats; replaying those would double-count
// the search effort, so only the serving outcome is recorded for them.
func (s *Server) record(res *vdb.Result) {
	switch {
	case res.Cached:
		s.mergeSearch(&metrics.Search{Optimizations: 1, CacheHits: 1})
	case res.Coalesced:
		s.mergeSearch(&metrics.Search{Optimizations: 1, Coalesced: 1})
	default:
		s.mergeSearch(metrics.FromStats(res.Stats))
	}
}

func (s *Server) mergeSearch(rec *metrics.Search) {
	s.mu.Lock()
	s.search.Merge(rec)
	s.mu.Unlock()
}

// Metrics assembles the one-snapshot view /metrics serves: cumulative
// search counters, plan-cache counters, executor counters, and the
// admission/latency section.
func (s *Server) Metrics() *metrics.Snapshot {
	s.mu.Lock()
	search := *s.search
	s.mu.Unlock()
	execCounters := s.db.ExecCounters()
	snap := &metrics.Snapshot{
		Search: &search,
		Exec:   &execCounters,
		Serve: &metrics.Serve{
			Capacity:       s.adm.capacity,
			Inflight:       s.adm.inflight.Load(),
			Admitted:       s.adm.admitted.Load(),
			DegradedAdmits: s.adm.degradedAdmits.Load(),
			Shed:           s.adm.shed.Load(),
			Canceled:       s.canceled.Load(),
			Errors:         s.errors.Load(),
			Endpoints:      map[string]*metrics.Endpoint{},
		},
	}
	if c := s.db.PlanCache(); c != nil {
		counters := c.Counters()
		snap.Cache = &counters
	}
	for path, ep := range s.eps {
		snap.Serve.Endpoints[path] = &metrics.Endpoint{
			Requests:  ep.requests.Load(),
			Errors:    ep.errors.Load(),
			Degraded:  ep.degraded.Load(),
			CacheHits: ep.cacheHits.Load(),
			Latency:   ep.lat.Summary(),
		}
	}
	return snap
}

func (s *Server) metricsHandler(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}
