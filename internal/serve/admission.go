package serve

import (
	"context"
	"sync/atomic"
	"time"
)

// admission is the daemon's semaphore-based admission controller. It
// enforces the overload contract: the daemon never queues unboundedly.
// A request either
//
//  1. takes a slot immediately (normal admission),
//  2. takes a slot after a bounded wait, or while the tier is already
//     running hot, and is marked degraded — the handler clamps its
//     optimization budget so it rides the anytime ladder down to
//     seed-floor plans instead of holding the slot for a full search,
//  3. or finds no slot within queueTimeout and is shed (503 +
//     Retry-After) — the queue is the semaphore's wait list, bounded
//     in *time*, so latency of admitted work stays bounded by the
//     request deadline instead of growing with the backlog.
type admission struct {
	slots        chan struct{}
	capacity     int
	degradeAt    int64 // inflight at or beyond this marks admits degraded
	queueTimeout time.Duration

	inflight       atomic.Int64
	admitted       atomic.Int64
	degradedAdmits atomic.Int64
	shed           atomic.Int64
}

func newAdmission(capacity, degradeAt int, queueTimeout time.Duration) *admission {
	return &admission{
		slots:        make(chan struct{}, capacity),
		capacity:     capacity,
		degradeAt:    int64(degradeAt),
		queueTimeout: queueTimeout,
	}
}

// admit tries to obtain a slot. ok reports admission; degraded reports
// that the admit happened under pressure (the tier was contended or
// running at degradeAt or more concurrent requests) and should run on
// a clamped optimization budget. A false ok means the request was
// shed — either no slot freed within queueTimeout or the caller's
// context ended while queued.
func (a *admission) admit(ctx context.Context) (degraded, ok bool) {
	waited := false
	select {
	case a.slots <- struct{}{}:
	default:
		waited = true
		t := time.NewTimer(a.queueTimeout)
		select {
		case a.slots <- struct{}{}:
			t.Stop()
		case <-t.C:
			a.shed.Add(1)
			return false, false
		case <-ctx.Done():
			t.Stop()
			a.shed.Add(1)
			return false, false
		}
	}
	n := a.inflight.Add(1)
	a.admitted.Add(1)
	degraded = waited || n >= a.degradeAt
	if degraded {
		a.degradedAdmits.Add(1)
	}
	return degraded, true
}

// release returns a slot.
func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.slots
}
