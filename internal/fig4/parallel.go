package fig4

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// SweepPoint is one complexity level of a parallel throughput sweep.
type SweepPoint struct {
	// Relations is the number of input relations (joins + 1).
	Relations int `json:"relations"`
	// Queries is the number of queries optimized at this level.
	Queries int `json:"queries"`
	// WallMS is the wall-clock time for the whole batch.
	WallMS float64 `json:"wall_ms"`
	// QueriesPerSecond is the batch throughput.
	QueriesPerSecond float64 `json:"queries_per_second"`
	// MeanCost is the mean estimated plan cost, for cross-checking
	// against the serial experiment (parallelism must not change plans).
	MeanCost float64 `json:"mean_plan_cost"`
}

// Sweep is the result of RunVolcanoSweep: per-level batch throughput of
// the worker-pool driver, plus totals.
type Sweep struct {
	// Seed is the datagen seed the workload was generated from, so a
	// recorded run can be reproduced bit-for-bit with -seed.
	Seed int64 `json:"seed"`
	// Workers is the pool size used.
	Workers int `json:"workers"`
	// WallMS is the total wall-clock time across levels.
	WallMS float64 `json:"wall_ms"`
	// QueriesPerSecond is the overall throughput.
	QueriesPerSecond float64 `json:"queries_per_second"`
	// Points holds one entry per complexity level.
	Points []SweepPoint `json:"points"`
}

// RunVolcanoSweep optimizes the Figure-4 Volcano workload through
// core.ParallelOptimize with the given pool size (0 means GOMAXPROCS) and
// reports batch throughput per complexity level. The query stream and
// model match Run, so plan costs can be compared directly; the jobs share
// the (read-only) model and nothing else.
func RunVolcanoSweep(cfg Config, workers int) Sweep {
	cfg = cfg.Defaults()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	src := datagen.New(cfg.Seed)
	cat := src.Catalog(cfg.MaxRelations)
	model := relopt.New(cat, relopt.DefaultConfig())

	sweep := Sweep{Seed: cfg.Seed, Workers: workers}
	totalQueries := 0
	for n := cfg.MinRelations; n <= cfg.MaxRelations; n++ {
		queries := make([]datagen.Query, cfg.QueriesPerLevel)
		for q := range queries {
			queries[q] = src.SelectJoinQuery(cat, n, cfg.Shape)
		}
		jobs := make([]core.ParallelJob, len(queries))
		for i := range jobs {
			query := queries[i]
			var required core.PhysProps
			if query.OrderBy != rel.InvalidCol {
				required = relopt.SortedOn(query.OrderBy)
			}
			jobs[i] = core.ParallelJob{
				Model:    model,
				Build:    func(o *core.Optimizer) core.GroupID { return o.InsertQuery(query.Root) },
				Required: required,
			}
		}

		start := time.Now()
		results := core.ParallelOptimize(jobs, workers)
		wall := time.Since(start)

		pt := SweepPoint{Relations: n, Queries: len(jobs)}
		var cost float64
		for i, r := range results {
			if r.Err != nil {
				panic(fmt.Sprintf("fig4: parallel volcano failed on %d relations: %v", n, r.Err))
			}
			if r.Plan == nil {
				panic(fmt.Sprintf("fig4: parallel volcano produced no plan for query %d at %d relations", i, n))
			}
			cost += r.Plan.Cost.(relopt.Cost).Total()
		}
		pt.WallMS = float64(wall.Nanoseconds()) / 1e6
		if wall > 0 {
			pt.QueriesPerSecond = float64(len(jobs)) / wall.Seconds()
		}
		if len(jobs) > 0 {
			pt.MeanCost = cost / float64(len(jobs))
		}
		sweep.WallMS += pt.WallMS
		totalQueries += len(jobs)
		sweep.Points = append(sweep.Points, pt)
	}
	if sweep.WallMS > 0 {
		sweep.QueriesPerSecond = float64(totalQueries) / (sweep.WallMS / 1e3)
	}
	return sweep
}

// FormatSweep renders a sweep as a small table.
func FormatSweep(s Sweep) string {
	out := fmt.Sprintf("Parallel Volcano sweep — workers=%d, total %.1f ms, %.1f queries/s\n",
		s.Workers, s.WallMS, s.QueriesPerSecond)
	out += fmt.Sprintf("%-5s %8s %12s %12s %14s\n", "rels", "queries", "wall-ms", "queries/s", "mean-cost")
	for _, p := range s.Points {
		out += fmt.Sprintf("%-5d %8d %12.3f %12.1f %14.1f\n",
			p.Relations, p.Queries, p.WallMS, p.QueriesPerSecond, p.MeanCost)
	}
	return out
}
