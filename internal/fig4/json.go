package fig4

import (
	"encoding/json"
	"os"
	"sort"
)

// BenchReport is the machine-readable form of a Figure-4 run, written as
// BENCH_fig4.json so regressions can be tracked across commits without
// scraping the human-readable tables.
type BenchReport struct {
	// Config echoes the experiment parameters.
	Config BenchConfig `json:"config"`
	// Points holds one entry per complexity level.
	Points []BenchPoint `json:"points"`
	// Parallel holds the worker-pool throughput sweep, when run.
	Parallel *Sweep `json:"parallel,omitempty"`
	// Cache holds the plan-cache serving measurements, when run.
	Cache *CacheResult `json:"cache,omitempty"`
	// Spar holds the intra-query parallel search A/B, when run.
	Spar *SparResult `json:"spar,omitempty"`
	// E2E holds the end-to-end optimize-and-execute engine A/B, when run.
	E2E *E2EResult `json:"e2e,omitempty"`
	// MQO holds the shared-memo multi-query optimization A/B, when run.
	MQO *MQOResult `json:"mqo,omitempty"`
	// Serve holds the serving-tier load measurements, when run.
	Serve *ServeResult `json:"serve,omitempty"`
	// Quality holds the stochastic-policy frontier sweep, when run.
	Quality *QualityResult `json:"quality,omitempty"`
}

// BenchConfig is the subset of Config that shapes the measurements.
type BenchConfig struct {
	Seed            int64  `json:"seed"`
	QueriesPerLevel int    `json:"queries_per_level"`
	MinRelations    int    `json:"min_relations"`
	MaxRelations    int    `json:"max_relations"`
	Shape           string `json:"shape"`
}

// BenchPoint is one complexity level in the report.
type BenchPoint struct {
	Relations        int     `json:"relations"`
	Queries          int     `json:"queries"`
	VolcanoMS        float64 `json:"volcano_ms"`
	VolcanoStdDevMS  float64 `json:"volcano_stddev_ms"`
	VolcanoCost      float64 `json:"volcano_plan_cost"`
	VolcanoMemBytes  int     `json:"volcano_memo_bytes"`
	VolcanoGoals     float64 `json:"volcano_goals_optimized"`
	VolcanoMatches   float64 `json:"volcano_match_calls"`
	VolcanoReused    float64 `json:"volcano_moves_reused"`
	VolcanoSeedCost  float64 `json:"volcano_seed_cost,omitempty"`
	VolcanoStages    float64 `json:"volcano_limit_stages,omitempty"`
	VolcanoPruned    float64 `json:"volcano_goals_pruned,omitempty"`
	VolcanoSkipped   float64 `json:"volcano_moves_skipped,omitempty"`
	ExodusMS         float64 `json:"exodus_ms"`
	ExodusStdDevMS   float64 `json:"exodus_stddev_ms"`
	ExodusCost       float64 `json:"exodus_plan_cost"`
	ExodusMemBytes   int     `json:"exodus_memo_bytes"`
	ExodusCompleted  int     `json:"exodus_completed"`
	PlanQualityRatio float64 `json:"plan_quality_ratio"`
}

// NewBenchReport assembles a report from an experiment's inputs and
// outputs. sweep may be nil when the parallel sweep was not run.
func NewBenchReport(cfg Config, points []Point, sweep *Sweep) BenchReport {
	cfg = cfg.Defaults()
	rep := BenchReport{
		Config: BenchConfig{
			Seed:            cfg.Seed,
			QueriesPerLevel: cfg.QueriesPerLevel,
			MinRelations:    cfg.MinRelations,
			MaxRelations:    cfg.MaxRelations,
			Shape:           cfg.Shape.String(),
		},
		Parallel: sweep,
	}
	for _, p := range points {
		rep.Points = append(rep.Points, BenchPoint{
			Relations:        p.Relations,
			Queries:          p.Queries,
			VolcanoMS:        p.VolcanoMS,
			VolcanoStdDevMS:  p.VolcanoStdDevMS,
			VolcanoCost:      p.VolcanoCost,
			VolcanoMemBytes:  p.VolcanoMemBytes,
			VolcanoGoals:     p.VolcanoGoals,
			VolcanoMatches:   p.VolcanoMatchCalls,
			VolcanoReused:    p.VolcanoMovesReused,
			VolcanoSeedCost:  p.VolcanoSeedCost,
			VolcanoStages:    p.VolcanoLimitStages,
			VolcanoPruned:    p.VolcanoGoalsPruned,
			VolcanoSkipped:   p.VolcanoMovesSkipped,
			ExodusMS:         p.ExodusMS,
			ExodusStdDevMS:   p.ExodusStdDevMS,
			ExodusCost:       p.ExodusCost,
			ExodusMemBytes:   p.ExodusMemBytes,
			ExodusCompleted:  p.ExodusCompleted,
			PlanQualityRatio: p.QualityRatio,
		})
	}
	return rep
}

// MergeBenchPoints folds freshly measured per-level points into an
// existing report's points, keyed by the number of relations: a rerun
// level replaces its old entry, new levels extend the curve, and levels
// the rerun did not cover are preserved. This lets a sweep extension
// (say, 9-10 relations) merge into BENCH_fig4.json without repeating
// the cheap levels.
func MergeBenchPoints(old, fresh []BenchPoint) []BenchPoint {
	merged := append([]BenchPoint(nil), old...)
	for _, p := range fresh {
		replaced := false
		for i := range merged {
			if merged[i].Relations == p.Relations {
				merged[i] = p
				replaced = true
				break
			}
		}
		if !replaced {
			merged = append(merged, p)
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Relations < merged[j].Relations })
	return merged
}

// ReadBenchJSON loads a previously written report, so a run of one
// experiment can preserve the sections of experiments it did not rerun.
func ReadBenchJSON(path string) (BenchReport, error) {
	var rep BenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(data, &rep)
	return rep, err
}

// WriteBenchJSON writes the report to path, indented for diffing.
func WriteBenchJSON(path string, rep BenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
