// Package fig4 reproduces the evaluation of the Volcano paper: Figure 4,
// "Exhaustive Optimization Performance", compares optimizers generated
// by the Volcano and EXODUS optimizer generators on relational
// select-join queries with 1 to 7 binary joins (2 to 8 input relations),
// 50 queries per complexity level, reporting average optimization time
// (the figure's solid lines) and average estimated execution time of the
// produced plans (the dashed lines). It also hosts the ablation
// experiments for the search-engine mechanisms the paper credits:
// branch-and-bound pruning, failure memoization, and property-directed
// search versus Starburst-style glue.
package fig4

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exodus"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// Config parameterizes an experiment run. The zero value is completed
// by Defaults to the paper's setup.
type Config struct {
	// Seed makes runs reproducible.
	Seed int64
	// QueriesPerLevel is the number of random queries per complexity
	// level; the paper used 50.
	QueriesPerLevel int
	// MinRelations and MaxRelations bound the query sizes; the paper
	// used 2 to 8 input relations.
	MinRelations, MaxRelations int
	// Shape is the join-graph topology of generated queries.
	Shape datagen.Shape
	// ExodusMaxNodes bounds the baseline's MESH (memory aborts).
	ExodusMaxNodes int
	// ExodusTimeout bounds the baseline's per-query time.
	ExodusTimeout time.Duration
	// Unguided disables the greedy seed planner on the Volcano side.
	// The default (guided) is the engine's production configuration;
	// guidance never changes plan costs, only search effort — the
	// fig4guided experiment verifies exactly that.
	Unguided bool
}

// Defaults fills unset fields with the paper's parameters.
func (c Config) Defaults() Config {
	if c.QueriesPerLevel == 0 {
		c.QueriesPerLevel = 50
	}
	if c.MinRelations == 0 {
		c.MinRelations = 2
	}
	if c.MaxRelations == 0 {
		c.MaxRelations = 8
	}
	if c.ExodusMaxNodes == 0 {
		c.ExodusMaxNodes = 1 << 20
	}
	if c.ExodusTimeout == 0 {
		c.ExodusTimeout = 30 * time.Second
	}
	return c
}

// Point is one complexity level of Figure 4.
type Point struct {
	// Relations is the number of input relations (joins + 1).
	Relations int
	// Queries is the number of queries attempted.
	Queries int
	// VolcanoMS and ExodusMS are mean optimization times in
	// milliseconds, over queries both engines completed.
	VolcanoMS, ExodusMS float64
	// VolcanoCost and ExodusCost are mean estimated plan execution
	// costs (same cost model), over queries both engines completed.
	VolcanoCost, ExodusCost float64
	// QualityRatio is the mean of per-query ExodusCost/VolcanoCost.
	QualityRatio float64
	// ExodusCompleted counts baseline runs that finished within the
	// node and time budgets; the paper plots only completed runs.
	ExodusCompleted int
	// VolcanoMemBytes and ExodusMemBytes are mean working-set
	// estimates.
	VolcanoMemBytes, ExodusMemBytes int
	// VolcanoStdDevMS and ExodusStdDevMS are the optimization-time
	// standard deviations; the paper notes the EXODUS measurements
	// were "quite volatile".
	VolcanoStdDevMS, ExodusStdDevMS float64
	// VolcanoGoals, VolcanoMatchCalls, and VolcanoMovesReused are mean
	// search-effort counters: goals optimized, implementation-rule match
	// attempts, and moves replayed from the move cache per query. The
	// match-call mean quantifies the rule-matching work the incremental
	// move collection avoids.
	VolcanoGoals, VolcanoMatchCalls, VolcanoMovesReused float64
	// VolcanoSeedCost is the mean greedy-seed cost (guided runs only;
	// zero when Unguided). VolcanoLimitStages, VolcanoGoalsPruned, and
	// VolcanoMovesSkipped are the guided-search telemetry means: limit
	// stages used, goals refuted by the bound, and moves abandoned
	// before their inputs were optimized.
	VolcanoSeedCost                                             float64
	VolcanoLimitStages, VolcanoGoalsPruned, VolcanoMovesSkipped float64
}

// Run executes the Figure-4 experiment and returns one point per
// complexity level.
func Run(cfg Config) []Point {
	cfg = cfg.Defaults()
	src := datagen.New(cfg.Seed)
	cat := src.Catalog(cfg.MaxRelations)

	// The production configuration seeds the search with the greedy
	// join-ordering planner; the planner closure is shared across
	// queries (it is stateless beyond catalog statistics).
	var volOpts *core.Options
	if !cfg.Unguided {
		volOpts = &core.Options{
			Guidance: core.GuidanceOptions{
				SeedPlanner: relopt.New(cat, relopt.DefaultConfig()).SeedPlanner(),
			},
		}
	}

	var points []Point
	for n := cfg.MinRelations; n <= cfg.MaxRelations; n++ {
		pt := Point{Relations: n, Queries: cfg.QueriesPerLevel}
		var volCost, exoCost, ratio float64
		var volSamples, exoSamples []float64
		var volMem, exoMem, completed int
		var volGoals, volMatches, volReused int
		var volSeed, volStages, volPruned, volSkipped float64
		for q := 0; q < cfg.QueriesPerLevel; q++ {
			query := src.SelectJoinQuery(cat, n, cfg.Shape)

			// Volcano completes every test query (the paper: exhaustive
			// search "for all test queries" within 1 MB), so its means
			// cover the whole level even when the baseline aborts.
			vms, vcost, vstats, err := MeasureVolcano(cat, query, volOpts)
			if err != nil {
				panic(fmt.Sprintf("fig4: volcano failed on %d relations: %v", n, err))
			}
			volSamples = append(volSamples, vms)
			volCost += vcost
			volMem += vstats.PeakMemoBytes
			volGoals += vstats.GoalsOptimized
			volMatches += vstats.MatchCalls
			volReused += vstats.MovesReused
			if sc, ok := vstats.SeedCost.(relopt.Cost); ok {
				volSeed += sc.Total()
			}
			volStages += float64(vstats.LimitStages)
			volPruned += float64(vstats.GoalsPruned)
			volSkipped += float64(vstats.MovesSkipped)

			ems, ecost, estats, err := MeasureExodus(cat, query, cfg)
			if err != nil {
				continue // aborted baseline run: excluded, as in the paper
			}
			completed++
			exoSamples = append(exoSamples, ems)
			exoCost += ecost
			ratio += ecost / vcost
			exoMem += estats.MemoryBytes
		}
		if nq := len(volSamples); nq > 0 {
			f := float64(nq)
			pt.VolcanoMS, pt.VolcanoStdDevMS = meanStdDev(volSamples)
			pt.VolcanoCost = volCost / f
			pt.VolcanoMemBytes = volMem / nq
			pt.VolcanoGoals = float64(volGoals) / f
			pt.VolcanoMatchCalls = float64(volMatches) / f
			pt.VolcanoMovesReused = float64(volReused) / f
			pt.VolcanoSeedCost = volSeed / f
			pt.VolcanoLimitStages = volStages / f
			pt.VolcanoGoalsPruned = volPruned / f
			pt.VolcanoMovesSkipped = volSkipped / f
		}
		if completed > 0 {
			f := float64(completed)
			pt.ExodusMS, pt.ExodusStdDevMS = meanStdDev(exoSamples)
			pt.ExodusCost = exoCost / f
			pt.QualityRatio = ratio / f
			pt.ExodusMemBytes = exoMem / completed
		}
		pt.ExodusCompleted = completed
		points = append(points, pt)
	}
	return points
}

// meanStdDev reduces samples to their mean and standard deviation.
func meanStdDev(samples []float64) (mean, sd float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	for _, s := range samples {
		sd += (s - mean) * (s - mean)
	}
	return mean, math.Sqrt(sd / float64(len(samples)))
}

// MeasureVolcano optimizes one query with a Volcano-generated optimizer
// and returns wall milliseconds, estimated plan cost, and search stats.
// The query's ORDER BY column becomes the required physical property
// vector of the optimization goal.
func MeasureVolcano(cat *rel.Catalog, query datagen.Query, opts *core.Options) (float64, float64, core.Stats, error) {
	model := relopt.New(cat, relopt.DefaultConfig())
	opt := core.NewOptimizer(model, opts)
	root := opt.InsertQuery(query.Root)
	var required core.PhysProps
	if query.OrderBy != rel.InvalidCol {
		required = relopt.SortedOn(query.OrderBy)
	}
	start := time.Now()
	plan, err := opt.Optimize(root, required)
	elapsed := time.Since(start)
	if err != nil {
		return 0, 0, *opt.Stats(), err
	}
	if plan == nil {
		return 0, 0, *opt.Stats(), fmt.Errorf("fig4: no plan")
	}
	return float64(elapsed.Nanoseconds()) / 1e6, plan.Cost.(relopt.Cost).Total(), *opt.Stats(), nil
}

// MeasureExodus optimizes one query with the EXODUS-style baseline,
// which glues a final sort on when the incidental output order misses
// the ORDER BY requirement.
func MeasureExodus(cat *rel.Catalog, query datagen.Query, cfg Config) (float64, float64, exodus.Stats, error) {
	opt := exodus.New(cat, exodus.Config{
		MaxNodes: cfg.ExodusMaxNodes,
		Timeout:  cfg.ExodusTimeout,
	})
	start := time.Now()
	_, cost, err := opt.Optimize(query.Root, query.OrderBy)
	elapsed := time.Since(start)
	if err != nil {
		return 0, 0, opt.Stats(), err
	}
	return float64(elapsed.Nanoseconds()) / 1e6, cost.Total(), opt.Stats(), nil
}

// Format renders the points as the two series of Figure 4 plus the
// repository's additional columns (quality ratio, memory, completion).
func Format(points []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — Exhaustive Optimization Performance (means over completed runs)\n")
	fmt.Fprintf(&b, "%-5s %12s %18s %8s %14s %14s %8s %8s %10s %10s\n",
		"rels", "volcano-ms", "exodus-ms (±sd)", "time-x",
		"volcano-cost", "exodus-cost", "plan-x", "done", "vol-mem", "exo-mem")
	for _, p := range points {
		timeRatio := 0.0
		if p.VolcanoMS > 0 {
			timeRatio = p.ExodusMS / p.VolcanoMS
		}
		exo := fmt.Sprintf("%.3f ±%.1f", p.ExodusMS, p.ExodusStdDevMS)
		fmt.Fprintf(&b, "%-5d %12.3f %18s %7.1fx %14.1f %14.1f %7.2fx %5d/%-2d %9dB %9dB\n",
			p.Relations, p.VolcanoMS, exo, timeRatio,
			p.VolcanoCost, p.ExodusCost, p.QualityRatio,
			p.ExodusCompleted, p.Queries, p.VolcanoMemBytes, p.ExodusMemBytes)
	}
	return b.String()
}
