package fig4

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relopt"
)

// TestPolicyAnytimeProperty is the anytime property test at scale: on
// randomized 10-12 relation queries under tight step budgets, every
// search configuration — guided branch-and-bound and both stochastic
// policies — must hand back a vetted complete plan (delivers the
// required properties, costs no more than the syntactic seed) whether
// or not the budget stopped it.
func TestPolicyAnytimeProperty(t *testing.T) {
	cfg := Config{Seed: 3, QueriesPerLevel: 4}.Defaults()
	src := datagen.New(cfg.Seed)
	cat := src.Catalog(12)
	model := relopt.New(cat, relopt.DefaultConfig())
	seedPlanner := model.SeedPlanner()

	for _, n := range []int{10, 12} {
		for q := 0; q < cfg.QueriesPerLevel; q++ {
			query := src.SelectJoinQuery(cat, n, cfg.Shape)
			for _, steps := range []int{40, 400} {
				for _, pol := range []core.SearchPolicy{core.PolicyExhaustive, core.PolicyMCTS, core.PolicyWidening} {
					opts := &core.Options{
						Guidance: core.GuidanceOptions{SeedPlanner: seedPlanner},
						Budget:   core.Budget{MaxSteps: steps},
					}
					if pol != core.PolicyExhaustive {
						opts.Search = core.SearchOptions{Policy: pol, RandSeed: cfg.Seed, Episodes: 8}
					}
					plan, stats, _, err := measureBudgeted(cat, model, query, opts)
					if err != nil && !errors.Is(err, core.ErrBudget) {
						t.Fatalf("n=%d q=%d steps=%d %v: unexpected error %v", n, q, steps, pol, err)
					}
					if !validAnytime(plan, query, stats) {
						t.Errorf("n=%d q=%d steps=%d %v: anytime contract violated (plan=%v, err=%v)",
							n, q, steps, pol, plan, err)
					}
					if got := stats.Steps(); got > steps {
						t.Errorf("n=%d q=%d steps=%d %v: pursued %d moves past the budget", n, q, steps, pol, got)
					}
				}
			}
		}
	}
}

// TestRunMCTSSmall exercises the experiment harness end to end on a
// tiny grid, checking the report's shape and gates.
func TestRunMCTSSmall(t *testing.T) {
	cfg := Config{Seed: 11, QueriesPerLevel: 2}
	res := RunMCTS(cfg, []int{8}, []int{300})
	if len(res.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(res.Points))
	}
	p := res.Points[0]
	if p.Relations != 8 || p.MaxSteps != 300 || p.Queries != 2 {
		t.Errorf("unexpected cell: %+v", p)
	}
	if res.VetFailures != 0 {
		t.Errorf("vet failures = %d, want 0", res.VetFailures)
	}
	if p.MCTSVsGuided <= 0 || p.WideningVsGuided <= 0 {
		t.Errorf("missing guided ratios: %+v", p)
	}
	// 8 relations with a completing budget: both policies should land
	// within the B&B gate used by make bench-mcts.
	if p.MCTSVsGuided > 1.5 || p.WideningVsGuided > 1.5 {
		t.Errorf("stochastic cost exceeds 1.5x guided: mcts %.3f widening %.3f", p.MCTSVsGuided, p.WideningVsGuided)
	}
	if res.Seed != 11 {
		t.Errorf("seed not recorded: %d", res.Seed)
	}
	if FormatMCTS(res) == "" {
		t.Error("empty rendering")
	}
}
