package fig4

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relopt"
)

// SparRow is one worker count's aggregate over a complexity level: the
// same queries re-optimized with the intra-query task engine, A/B'd
// against the sequential baseline run of the identical query stream.
type SparRow struct {
	// Workers is Options.Search.Workers for this row.
	Workers int `json:"workers"`
	// WallMS is the total optimization time over the level's queries.
	WallMS float64 `json:"wall_ms"`
	// Speedup is sequential wall time divided by this row's wall time.
	Speedup float64 `json:"speedup"`
	// CostMismatches counts queries whose parallel plan cost diverged
	// from the sequential plan cost. Correctness requires zero: the
	// task engine may pursue moves in a different order, but the memo
	// invariants guarantee the same optimum.
	CostMismatches int `json:"cost_mismatches"`
	// MeanTasksRun and MeanTasksParked are per-query task-engine
	// telemetry means: tasks executed and claim-subscription parks.
	MeanTasksRun    float64 `json:"mean_tasks_run"`
	MeanTasksParked float64 `json:"mean_tasks_parked"`
}

// SparLevel is one complexity level of the intra-query parallel A/B.
type SparLevel struct {
	// Relations is the number of input relations (joins + 1).
	Relations int `json:"relations"`
	// Queries is the number of queries at this level.
	Queries int `json:"queries"`
	// SequentialMS is the total sequential optimization time.
	SequentialMS float64 `json:"sequential_wall_ms"`
	// MeanCost is the mean sequential plan cost (the reference).
	MeanCost float64 `json:"mean_plan_cost"`
	// Rows holds one entry per worker count.
	Rows []SparRow `json:"rows"`
}

// SparResult is the outcome of RunSpar, serialized into BENCH_fig4.json
// as the "spar" section.
type SparResult struct {
	// Seed is the datagen seed the workload was generated from.
	Seed int64 `json:"seed"`
	// GOMAXPROCS records the hardware parallelism available to the
	// run; speedups are only meaningful relative to it.
	GOMAXPROCS int `json:"gomaxprocs"`
	// WorkerCounts echoes the sweep's Options.Search.Workers values.
	WorkerCounts []int `json:"worker_counts"`
	// Levels holds one entry per complexity level.
	Levels []SparLevel `json:"levels"`
	// CostMismatches is the total across all levels and worker counts.
	CostMismatches int `json:"cost_mismatches"`
}

// RunSpar A/B-tests intra-query parallel search against the sequential
// engine on the hardest Figure-4 queries (8+ input relations, or the
// largest configured level when the sweep tops out below 8). Each query
// is optimized once sequentially and once per worker count; plan costs
// must agree exactly up to floating-point tolerance, and wall-clock
// ratios report the speedup. workerCounts defaults to {2, 4, 8}.
func RunSpar(cfg Config, workerCounts []int) SparResult {
	cfg = cfg.Defaults()
	if len(workerCounts) == 0 {
		workerCounts = []int{2, 4, 8}
	}
	src := datagen.New(cfg.Seed)
	cat := src.Catalog(cfg.MaxRelations)

	// The production configuration (guided search) unless the caller
	// asked for the unguided engine; parallel search composes with both.
	base := &core.Options{}
	if !cfg.Unguided {
		base.Guidance.SeedPlanner = relopt.New(cat, relopt.DefaultConfig()).SeedPlanner()
	}

	lo := cfg.MinRelations
	if lo < 8 {
		lo = 8
	}
	if lo > cfg.MaxRelations {
		lo = cfg.MaxRelations
	}

	res := SparResult{Seed: cfg.Seed, GOMAXPROCS: runtime.GOMAXPROCS(0), WorkerCounts: workerCounts}
	for n := lo; n <= cfg.MaxRelations; n++ {
		queries := make([]datagen.Query, cfg.QueriesPerLevel)
		for q := range queries {
			queries[q] = src.SelectJoinQuery(cat, n, cfg.Shape)
		}

		lvl := SparLevel{Relations: n, Queries: len(queries)}
		seqCosts := make([]float64, len(queries))
		var costSum float64
		for q, query := range queries {
			ms, cost, _, err := MeasureVolcano(cat, query, base)
			if err != nil {
				panic(fmt.Sprintf("fig4: sequential volcano failed on %d relations: %v", n, err))
			}
			lvl.SequentialMS += ms
			seqCosts[q] = cost
			costSum += cost
		}
		if len(queries) > 0 {
			lvl.MeanCost = costSum / float64(len(queries))
		}

		for _, workers := range workerCounts {
			opts := *base
			opts.Search.Workers = workers
			row := SparRow{Workers: workers}
			var tasksRun, tasksParked int
			for q, query := range queries {
				ms, cost, stats, err := MeasureVolcano(cat, query, &opts)
				if err != nil {
					panic(fmt.Sprintf("fig4: parallel volcano (workers=%d) failed on %d relations: %v", workers, n, err))
				}
				row.WallMS += ms
				tasksRun += stats.TasksRun
				tasksParked += stats.TasksParked
				if math.Abs(cost-seqCosts[q]) > 1e-6*seqCosts[q] {
					row.CostMismatches++
				}
			}
			if row.WallMS > 0 {
				row.Speedup = lvl.SequentialMS / row.WallMS
			}
			if len(queries) > 0 {
				row.MeanTasksRun = float64(tasksRun) / float64(len(queries))
				row.MeanTasksParked = float64(tasksParked) / float64(len(queries))
			}
			res.CostMismatches += row.CostMismatches
			lvl.Rows = append(lvl.Rows, row)
		}
		res.Levels = append(res.Levels, lvl)
	}
	return res
}

// FormatSpar renders the A/B as one table per complexity level.
func FormatSpar(r SparResult) string {
	out := fmt.Sprintf("Intra-query parallel search A/B — GOMAXPROCS=%d\n", r.GOMAXPROCS)
	for _, lvl := range r.Levels {
		out += fmt.Sprintf("%d relations, %d queries — sequential %.1f ms (mean cost %.1f)\n",
			lvl.Relations, lvl.Queries, lvl.SequentialMS, lvl.MeanCost)
		out += fmt.Sprintf("  %-8s %10s %8s %10s %12s %10s\n",
			"workers", "wall-ms", "speedup", "mismatch", "tasks/query", "parks")
		for _, row := range lvl.Rows {
			out += fmt.Sprintf("  %-8d %10.1f %7.2fx %10d %12.1f %10.1f\n",
				row.Workers, row.WallMS, row.Speedup, row.CostMismatches,
				row.MeanTasksRun, row.MeanTasksParked)
		}
	}
	out += fmt.Sprintf("total cost mismatches: %d\n", r.CostMismatches)
	return out
}
