package fig4

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/plancache"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// CacheConfig parameterizes the plan-cache serving experiment.
type CacheConfig struct {
	// Seed makes runs reproducible.
	Seed int64
	// QueriesPerLevel is the number of random queries per complexity
	// level; default 20.
	QueriesPerLevel int
	// MinRelations and MaxRelations bound the query sizes; defaults 2
	// and 8.
	MinRelations, MaxRelations int
	// Shape is the join-graph topology of generated queries.
	Shape datagen.Shape
	// WarmIterations is the number of timed cache hits per query;
	// default 100.
	WarmIterations int
	// CacheBytes is the cache budget; 0 uses the cache default.
	CacheBytes int64
}

// cacheDefaults fills unset fields.
func (c CacheConfig) cacheDefaults() CacheConfig {
	if c.QueriesPerLevel == 0 {
		c.QueriesPerLevel = 20
	}
	if c.MinRelations == 0 {
		c.MinRelations = 2
	}
	if c.MaxRelations == 0 {
		c.MaxRelations = 8
	}
	if c.WarmIterations == 0 {
		c.WarmIterations = 100
	}
	return c
}

// CachePoint is one complexity level of the serving experiment.
type CachePoint struct {
	// Relations is the number of input relations.
	Relations int `json:"relations"`
	// Queries is the number of queries measured.
	Queries int `json:"queries"`
	// ColdMS is the mean optimization latency without the cache.
	ColdMS float64 `json:"cold_ms"`
	// WarmMS is the mean verified-hit latency (fingerprint plus lookup).
	WarmMS float64 `json:"warm_ms"`
	// Speedup is ColdMS / WarmMS.
	Speedup float64 `json:"speedup"`
	// Mismatches counts queries whose cache-served cost differed from a
	// fresh optimization's — always zero unless the cache is broken.
	Mismatches int `json:"mismatches"`
}

// CacheResult is the full outcome of the serving experiment.
type CacheResult struct {
	// Seed is the datagen seed the workload was generated from.
	Seed int64 `json:"seed"`
	// Points holds one entry per complexity level.
	Points []CachePoint `json:"points"`
	// Counters snapshots the cache at the end of the run.
	Counters plancache.Counters `json:"counters"`
	// Mismatches is the total cost-mismatch count across all levels.
	Mismatches int `json:"mismatches"`
}

// RunCache measures the plan-cache serving layer: for each generated
// query it times a cold optimization, inserts the result through the
// cache, and times repeated verified hits, asserting that the served
// cost equals the fresh cost. Cold latency is the directed-DP search;
// warm latency is fingerprint plus sharded-LRU lookup.
func RunCache(cfg CacheConfig) *CacheResult {
	cfg = cfg.cacheDefaults()
	src := datagen.New(cfg.Seed)
	cat := src.Catalog(cfg.MaxRelations)
	model := relopt.New(cat, relopt.DefaultConfig())
	cache := plancache.New(plancache.Options{MaxBytes: cfg.CacheBytes})

	res := &CacheResult{Seed: cfg.Seed}
	for n := cfg.MinRelations; n <= cfg.MaxRelations; n++ {
		pt := CachePoint{Relations: n, Queries: cfg.QueriesPerLevel}
		var coldSum, warmSum float64
		for q := 0; q < cfg.QueriesPerLevel; q++ {
			query := src.SelectJoinQuery(cat, n, cfg.Shape)
			var required core.PhysProps
			if query.OrderBy != rel.InvalidCol {
				required = relopt.SortedOn(query.OrderBy)
			}

			coldMS, coldCost, _, err := MeasureVolcano(cat, query, nil)
			if err != nil {
				panic(fmt.Sprintf("fig4: cache cold run failed on %d relations: %v", n, err))
			}
			coldSum += coldMS

			fp, canon := core.FingerprintQuery(model, query.Root, required)
			entry, _, err := cache.Do(fp, canon, func() (*plancache.Entry, error) {
				opt := core.NewOptimizer(model, nil)
				root := opt.InsertQuery(query.Root)
				plan, err := opt.Optimize(root, required)
				if err != nil {
					return nil, err
				}
				return &plancache.Entry{Plan: plan, Cost: plan.Cost, Stats: *opt.Stats()}, nil
			})
			if err != nil {
				panic(fmt.Sprintf("fig4: cache insert failed on %d relations: %v", n, err))
			}
			if entry.Cost.(relopt.Cost).Total() != coldCost {
				pt.Mismatches++
			}

			noCompute := func() (*plancache.Entry, error) {
				return nil, fmt.Errorf("fig4: warm lookup missed the cache")
			}
			start := time.Now()
			for i := 0; i < cfg.WarmIterations; i++ {
				wfp, wcanon := core.FingerprintQuery(model, query.Root, required)
				e, outcome, err := cache.Do(wfp, wcanon, noCompute)
				if err != nil || outcome != plancache.OutcomeHit {
					panic(fmt.Sprintf("fig4: warm lookup not a hit on %d relations: %v %v", n, outcome, err))
				}
				if e.Cost.(relopt.Cost).Total() != coldCost {
					pt.Mismatches++
				}
			}
			warmSum += float64(time.Since(start).Nanoseconds()) / 1e6 / float64(cfg.WarmIterations)
		}
		f := float64(cfg.QueriesPerLevel)
		pt.ColdMS = coldSum / f
		pt.WarmMS = warmSum / f
		if pt.WarmMS > 0 {
			pt.Speedup = pt.ColdMS / pt.WarmMS
		}
		res.Mismatches += pt.Mismatches
		res.Points = append(res.Points, pt)
	}
	res.Counters = cache.Counters()
	return res
}

// FormatCache renders the serving-experiment results.
func FormatCache(res *CacheResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Plan-cache serving: cold optimization vs verified cache hit\n")
	fmt.Fprintf(&b, "%-5s %10s %10s %10s %10s\n",
		"rels", "cold-ms", "warm-ms", "speedup", "mismatch")
	for _, p := range res.Points {
		fmt.Fprintf(&b, "%-5d %10.3f %10.5f %9.0fx %10d\n",
			p.Relations, p.ColdMS, p.WarmMS, p.Speedup, p.Mismatches)
	}
	c := res.Counters
	fmt.Fprintf(&b, "cache: %d hits, %d misses, %d coalesced, %d evictions, %d entries, %d bytes\n",
		c.CacheHits, c.CacheMisses, c.Coalesced, c.Evictions, c.Entries, c.CacheBytes)
	return b.String()
}
