package fig4

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// AltPropsPoint is one row of the alternative-input-combinations
// experiment: set intersection whose sort-based implementation accepts
// any shared input order (the paper's R sorted (A,B,C) / S sorted
// (B,A,C) example). With the alternatives enabled, the optimizer can
// pick the shared order that also satisfies the query's ORDER BY; with a
// single fixed order it must add another sort.
type AltPropsPoint struct {
	// OrderByCol is the 1-based index of the ORDER BY column in the
	// table schema.
	OrderByCol int
	// WithAlts is the plan cost with all shared orders offered.
	WithAlts float64
	// SingleOrder is the plan cost with only the schema order offered.
	SingleOrder float64
}

// RunAltProps builds σp(R) ∩ σq(R) over a three-column table and
// optimizes it for output ordered on each column in turn, under both
// configurations.
func RunAltProps() []AltPropsPoint {
	cat := rel.NewCatalog()
	r := cat.AddTable("R", 6000, 96)
	cols := []rel.ColID{
		cat.AddColumn(r, "a", 6000, 1, 6000),
		cat.AddColumn(r, "b", 500, 1, 500),
		cat.AddColumn(r, "c", 40, 1, 40),
	}
	// R is stored clustered on (a, b, c); only the full alternative
	// list lets merge-intersect exploit that order.
	r.Ordered = cols
	query := func() *core.ExprTree {
		left := core.Node(&rel.Select{Pred: rel.Pred{Col: cols[2], Op: rel.CmpLT, Val: 30}},
			core.Node(&rel.Get{Tab: r}))
		right := core.Node(&rel.Select{Pred: rel.Pred{Col: cols[1], Op: rel.CmpGT, Val: 100}},
			core.Node(&rel.Get{Tab: r}))
		return core.Node(&rel.Intersect{}, left, right)
	}

	optimizeCost := func(single bool, orderBy rel.ColID) float64 {
		cfg := relopt.DefaultConfig()
		cfg.SingleIntersectOrder = single
		// Pressure the hash work space so order-aware plans matter.
		cfg.Params.MemoryPages = 32
		opt := core.NewOptimizer(relopt.New(cat, cfg), nil)
		root := opt.InsertQuery(query())
		plan, err := opt.Optimize(root, relopt.SortedOn(orderBy))
		if err != nil || plan == nil {
			panic(fmt.Sprintf("fig4: altprops optimization failed: %v", err))
		}
		return plan.Cost.(relopt.Cost).Total()
	}

	var out []AltPropsPoint
	for i, c := range cols {
		out = append(out, AltPropsPoint{
			OrderByCol:  i + 1,
			WithAlts:    optimizeCost(false, c),
			SingleOrder: optimizeCost(true, c),
		})
	}
	return out
}

// FormatAltProps renders the experiment.
func FormatAltProps(points []AltPropsPoint) string {
	var b strings.Builder
	b.WriteString("Alternative input property combinations (sort-based intersection)\n")
	fmt.Fprintf(&b, "%-12s %14s %14s %8s\n", "order-by", "with-alts", "single-order", "ratio")
	for _, p := range points {
		ratio := p.SingleOrder / p.WithAlts
		fmt.Fprintf(&b, "column %-5d %14.1f %14.1f %7.2fx\n", p.OrderByCol, p.WithAlts, p.SingleOrder, ratio)
	}
	return b.String()
}
