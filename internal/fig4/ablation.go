package fig4

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
)

// Variant is one search-engine configuration under ablation.
type Variant struct {
	// Name labels the variant in reports.
	Name string
	// Options is the engine configuration.
	Options core.Options
}

// Variants returns the ablations of the mechanisms the paper credits for
// Volcano's efficiency: branch-and-bound pruning, memoized failures, and
// property-directed search (GlueMode reverts to the Starburst strategy
// of optimizing without properties and gluing enforcers on afterwards).
func Variants() []Variant {
	return []Variant{
		{Name: "default"},
		{Name: "no-pruning", Options: core.Options{Search: core.SearchOptions{NoPruning: true}}},
		{Name: "no-failure-memo", Options: core.Options{Search: core.SearchOptions{NoFailureMemo: true}}},
		{Name: "glue-mode", Options: core.Options{Search: core.SearchOptions{GlueMode: true}}},
	}
}

// AblationPoint aggregates one (variant, complexity) cell.
type AblationPoint struct {
	// Variant is the configuration name.
	Variant string
	// Relations is the number of input relations.
	Relations int
	// MeanMS is the mean optimization time in milliseconds.
	MeanMS float64
	// MeanCost is the mean estimated plan cost.
	MeanCost float64
	// MeanGoals is the mean number of optimization goals searched.
	MeanGoals float64
	// MeanPruned is the mean number of branch-and-bound prunes.
	MeanPruned float64
}

// RunAblation measures each engine variant over the Figure-4 workload.
func RunAblation(cfg Config) []AblationPoint {
	cfg = cfg.Defaults()
	var out []AblationPoint
	for _, v := range Variants() {
		src := datagen.New(cfg.Seed)
		cat := src.Catalog(cfg.MaxRelations)
		for n := cfg.MinRelations; n <= cfg.MaxRelations; n++ {
			pt := AblationPoint{Variant: v.Name, Relations: n}
			for q := 0; q < cfg.QueriesPerLevel; q++ {
				query := src.SelectJoinQuery(cat, n, cfg.Shape)
				opts := v.Options
				ms, cost, stats, err := MeasureVolcano(cat, query, &opts)
				if err != nil {
					panic(fmt.Sprintf("fig4: variant %s failed: %v", v.Name, err))
				}
				pt.MeanMS += ms
				pt.MeanCost += cost
				pt.MeanGoals += float64(stats.GoalsOptimized)
				pt.MeanPruned += float64(stats.Pruned)
			}
			f := float64(cfg.QueriesPerLevel)
			pt.MeanMS /= f
			pt.MeanCost /= f
			pt.MeanGoals /= f
			pt.MeanPruned /= f
			out = append(out, pt)
		}
	}
	return out
}

// FormatAblation renders ablation results grouped by variant.
func FormatAblation(points []AblationPoint) string {
	var b strings.Builder
	b.WriteString("Search-engine ablations over the Figure-4 workload\n")
	fmt.Fprintf(&b, "%-16s %-5s %10s %12s %10s %10s\n",
		"variant", "rels", "mean-ms", "mean-cost", "goals", "pruned")
	for _, p := range points {
		fmt.Fprintf(&b, "%-16s %-5d %10.3f %12.1f %10.1f %10.1f\n",
			p.Variant, p.Relations, p.MeanMS, p.MeanCost, p.MeanGoals, p.MeanPruned)
	}
	return b.String()
}
