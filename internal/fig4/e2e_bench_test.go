package fig4

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/relopt"
)

// benchRows keeps the Go benchmarks well under the experiment's default
// scale so `go test -bench` stays usable; volcano-bench -experiment e2e
// is the full-scale harness.
const benchRows = 1_000_000

func benchWorkload(b *testing.B, name string, opts exec.Options) {
	b.Helper()
	cfg := Config{}.Defaults()
	src := datagen.New(cfg.Seed)
	cat := src.ScaledCatalog(3, benchRows)
	db := exec.FromData(cat, src.Rows(cat))
	for _, w := range e2eWorkloads(cat) {
		if w.name != name {
			continue
		}
		plan, _, err := e2ePlan(cat, relopt.DefaultConfig(), w.tree, w.required)
		if err != nil {
			b.Fatalf("optimize: %v", err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := exec.RunOpts(nil, db, plan, nil, opts); err != nil {
				b.Fatalf("run: %v", err)
			}
		}
		return
	}
	b.Fatalf("unknown workload %q", name)
}

func BenchmarkJoin2Row(b *testing.B) {
	benchWorkload(b, "join2", exec.Options{BatchSize: 1, NoFusion: true})
}

func BenchmarkJoin2Batch(b *testing.B) {
	benchWorkload(b, "join2", exec.Options{})
}

func BenchmarkScanFilterRow(b *testing.B) {
	benchWorkload(b, "scan-filter", exec.Options{BatchSize: 1, NoFusion: true})
}

func BenchmarkScanFilterBatch(b *testing.B) {
	benchWorkload(b, "scan-filter", exec.Options{})
}

func BenchmarkGroupByRow(b *testing.B) {
	benchWorkload(b, "groupby", exec.Options{BatchSize: 1, NoFusion: true})
}

func BenchmarkGroupByBatch(b *testing.B) {
	benchWorkload(b, "groupby", exec.Options{})
}
