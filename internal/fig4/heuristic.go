package fig4

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
)

// HeuristicPoint is one cell of the move-selection experiment: the
// paper leaves "pursuing all moves or only a selected few" as a major
// heuristic in the optimizer implementor's hands (via MoveFilter here).
// Keeping only the most promising moves trades plan quality for
// optimization speed.
type HeuristicPoint struct {
	// TopMoves is the number of moves pursued per goal; 0 = all.
	TopMoves int
	// Relations is the query size.
	Relations int
	// MeanMS is the mean optimization time.
	MeanMS float64
	// MeanCost is the mean plan cost.
	MeanCost float64
	// Failed counts queries the restricted search could not plan.
	Failed int
}

// topMovesFilter keeps the k most promising moves (the list arrives
// promise-ordered); enforcer moves are always kept so property goals
// stay satisfiable.
func topMovesFilter(k int) func([]core.Move) []core.Move {
	return func(moves []core.Move) []core.Move {
		if k <= 0 || len(moves) <= k {
			return moves
		}
		out := make([]core.Move, 0, k+2)
		kept := 0
		for _, m := range moves {
			if m.Kind == core.MoveEnforcer {
				out = append(out, m)
				continue
			}
			if kept < k {
				out = append(out, m)
				kept++
			}
		}
		return out
	}
}

// RunHeuristic sweeps the number of moves pursued per goal over the
// Figure-4 workload.
func RunHeuristic(cfg Config) []HeuristicPoint {
	cfg = cfg.Defaults()
	var out []HeuristicPoint
	for _, k := range []int{1, 2, 0} {
		src := datagen.New(cfg.Seed)
		cat := src.Catalog(cfg.MaxRelations)
		for n := cfg.MinRelations; n <= cfg.MaxRelations; n++ {
			pt := HeuristicPoint{TopMoves: k, Relations: n}
			completed := 0
			for q := 0; q < cfg.QueriesPerLevel; q++ {
				query := src.SelectJoinQuery(cat, n, cfg.Shape)
				opts := &core.Options{}
				if k > 0 {
					// MoveFilter heuristics require the from-scratch
					// move path; Options.Validate rejects the filter
					// without NoIncremental.
					opts.Search.MoveFilter = topMovesFilter(k)
					opts.Search.NoIncremental = true
				}
				ms, cost, _, err := MeasureVolcano(cat, query, opts)
				if err != nil {
					pt.Failed++
					continue
				}
				completed++
				pt.MeanMS += ms
				pt.MeanCost += cost
			}
			if completed > 0 {
				pt.MeanMS /= float64(completed)
				pt.MeanCost /= float64(completed)
			}
			out = append(out, pt)
		}
	}
	return out
}

// FormatHeuristic renders the sweep.
func FormatHeuristic(points []HeuristicPoint) string {
	var b strings.Builder
	b.WriteString("Heuristic move selection (top-k moves per goal; 0 = exhaustive)\n")
	fmt.Fprintf(&b, "%-6s %-5s %10s %14s %8s\n", "top-k", "rels", "mean-ms", "mean-cost", "failed")
	for _, p := range points {
		k := fmt.Sprintf("%d", p.TopMoves)
		if p.TopMoves == 0 {
			k = "all"
		}
		fmt.Fprintf(&b, "%-6s %-5d %10.3f %14.1f %8d\n", k, p.Relations, p.MeanMS, p.MeanCost, p.Failed)
	}
	return b.String()
}
