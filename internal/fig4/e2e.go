package fig4

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// E2EEngine is one engine configuration's measurement on one workload.
type E2EEngine struct {
	// Engine names the configuration: "row", "batch", "columnar", or
	// "batch+exchange(d)".
	Engine string `json:"engine"`
	// WallMS is the execution wall time (plan build + drain).
	WallMS float64 `json:"wall_ms"`
	// RowsOut is the result cardinality.
	RowsOut int `json:"rows_out"`
	// SpeedupVsRow is the row engine's wall time divided by this one's.
	SpeedupVsRow float64 `json:"speedup_vs_row"`
	// SpeedupVsBatch is the batch engine's wall time divided by this
	// one's — the columnar engine's headline number.
	SpeedupVsBatch float64 `json:"speedup_vs_batch,omitempty"`
	// Match reports whether the result multiset equals the row engine's.
	Match bool `json:"match"`
	// Error records an engine that could not run (e.g. the parallel
	// model found no plan for the required partitioning).
	Error string `json:"error,omitempty"`
}

// E2EWorkload is one query's A/B across engine configurations.
type E2EWorkload struct {
	// Name identifies the workload shape.
	Name string `json:"name"`
	// OptimizeMS is the serial plan's optimization time.
	OptimizeMS float64 `json:"optimize_ms"`
	// Engines holds one entry per engine configuration.
	Engines []E2EEngine `json:"engines"`
}

// E2EResult is the outcome of RunE2E, serialized into BENCH_fig4.json as
// the "e2e" section.
type E2EResult struct {
	// GOMAXPROCS records the hardware parallelism available to the run;
	// exchange speedups beyond 1 require more than one CPU.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Seed is the datagen seed the tables were generated from, so a
	// recorded run can be reproduced bit-for-bit with -seed.
	Seed int64 `json:"seed"`
	// Rows is the target table cardinality.
	Rows int64 `json:"rows"`
	// BatchSize is the batched engines' rows per batch.
	BatchSize int `json:"batch_size"`
	// Workers is the exchange producer override (0 = degree).
	Workers int `json:"workers,omitempty"`
	// Degrees are the exchange degrees swept.
	Degrees []int `json:"degrees"`
	// Workloads holds one entry per query.
	Workloads []E2EWorkload `json:"workloads"`
	// Mismatches counts engine runs whose result multiset diverged from
	// the row engine's. Correctness requires zero.
	Mismatches int `json:"mismatches"`
}

// e2eWorkload is one benchmark query: a logical tree plus the required
// properties for serial runs and the partitioning column for parallel
// runs.
type e2eWorkload struct {
	name     string
	tree     *core.ExprTree
	required core.PhysProps // serial-engine requirement (nil or sort)
	partCol  rel.ColID      // partitioning column for exchange runs
}

// e2eWorkloads builds the benchmark queries over a 3-table scaled
// catalog: a selective scan, the headline 2-way join, a 3-way join with
// ORDER BY, and a grouping query.
func e2eWorkloads(cat *rel.Catalog) []e2eWorkload {
	get := func(name string) *rel.Get { return &rel.Get{Tab: cat.Table(name)} }
	col := func(tab, col string) rel.ColID { return cat.ColumnID(tab, col) }
	sel := func(tab string, lim int64) *core.ExprTree {
		return core.Node(&rel.Select{Pred: rel.Pred{Col: col(tab, "v"), Op: rel.CmpLT, Val: lim}},
			core.Node(get(tab)))
	}

	// R1 filtered by selectivity 0.5.
	scan := sel("R1", 500)

	// R1 ⋈ R2 on the moderate-duplication join column, both filtered.
	join2 := core.Node(rel.NewJoin(col("R1", "ja"), col("R2", "ja")),
		sel("R1", 300), sel("R2", 300))

	// (R1 ⋈ R2) ⋈ R3 on R2's key-like pairing against R3's unique key,
	// so the third join is 1:1 and the sort input stays bounded.
	join3 := core.Node(rel.NewJoin(col("R2", "jb"), col("R3", "id")),
		core.Node(rel.NewJoin(col("R1", "ja"), col("R2", "ja")),
			sel("R1", 300), sel("R2", 300)),
		sel("R3", 300))

	// COUNT and SUM(v) per join-column group over filtered R1.
	group := core.Node(&rel.GroupBy{
		GroupCols: []rel.ColID{col("R1", "ja")},
		Aggs:      []rel.Agg{{Fn: rel.AggCount}, {Fn: rel.AggSum, Col: col("R1", "v")}},
	}, sel("R1", 500))

	return []e2eWorkload{
		{name: "scan-filter", tree: scan, partCol: col("R1", "ja")},
		{name: "join2", tree: join2, partCol: col("R1", "ja")},
		{name: "join3-orderby", tree: join3, required: relopt.SortedOn(col("R1", "ja")), partCol: col("R1", "ja")},
		{name: "groupby", tree: group, partCol: col("R1", "ja")},
	}
}

// e2ePlan optimizes one workload tree under a model configuration.
func e2ePlan(cat *rel.Catalog, cfg relopt.Config, tree *core.ExprTree, required core.PhysProps) (*core.Plan, float64, error) {
	opt := core.NewOptimizer(relopt.New(cat, cfg), nil)
	root := opt.InsertQuery(tree)
	start := time.Now()
	plan, err := opt.Optimize(root, required)
	ms := float64(time.Since(start).Nanoseconds()) / 1e6
	if err != nil {
		return nil, ms, err
	}
	if plan == nil {
		return nil, ms, fmt.Errorf("fig4: no plan")
	}
	return plan, ms, nil
}

// e2eReps is how many times each engine runs per workload; the fastest
// wall time is kept per engine. Engines are interleaved round-robin
// across repetitions so a slow stretch of the machine (GC debt, a noisy
// co-tenant on shared hardware) taxes every engine instead of whichever
// one it happened to land on.
const e2eReps = 5

// e2eEngineRun is one engine configuration queued for measurement.
type e2eEngineRun struct {
	name string
	plan *core.Plan
	opts exec.Options

	wall float64
	n    int
	fp   string
	err  error
}

// run executes the engine once, folding the wall time into the minimum.
func (e *e2eEngineRun) run(db *exec.DB, rep int) {
	if e.err != nil {
		return
	}
	start := time.Now()
	rows, schema, err := exec.RunOpts(nil, db, e.plan, nil, e.opts)
	ms := float64(time.Since(start).Nanoseconds()) / 1e6
	if err != nil {
		e.err = err
		return
	}
	if rep == 0 || ms < e.wall {
		e.wall = ms
	}
	e.n = len(rows)
	e.fp = exec.Fingerprint(exec.Canonical(rows, schema))
}

// RunE2E optimizes and executes the end-to-end benchmark workloads over
// generated tables of about `rows` rows each, A/B-ing the row-at-a-time
// engine (batch size 1, fusion off), the batched engine, the columnar
// engine (vectorized kernels over per-column batches), and the batched
// engine behind a parallel exchange at each degree. Every engine's
// result multiset is gated against the row engine's. batchSize 0 means
// the default; workers 0 means one producer per partition; degrees
// defaults to {2, 4, 8}.
func RunE2E(cfg Config, rows int64, batchSize, workers int, degrees []int) E2EResult {
	cfg = cfg.Defaults()
	if len(degrees) == 0 {
		degrees = []int{2, 4, 8}
	}
	if rows <= 0 {
		rows = 1_000_000
	}
	src := datagen.New(cfg.Seed)
	cat := src.ScaledCatalog(3, rows)
	db := exec.FromData(cat, src.Rows(cat))

	res := E2EResult{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       cfg.Seed,
		Rows:       rows,
		BatchSize:  exec.DefaultBatchSize,
		Workers:    workers,
		Degrees:    degrees,
	}
	if batchSize > 0 {
		res.BatchSize = batchSize
	}

	for _, w := range e2eWorkloads(cat) {
		wl := E2EWorkload{Name: w.name}
		plan, optMS, err := e2ePlan(cat, relopt.DefaultConfig(), w.tree, w.required)
		if err != nil {
			panic(fmt.Sprintf("fig4: e2e optimize %s: %v", w.name, err))
		}
		wl.OptimizeMS = optMS

		// Row engine: batch size 1 and no fusion reproduce the seed
		// interpreter's one-call-one-row cost shape. Its result is the
		// baseline multiset every other engine must match. The columnar
		// engine swaps the hot operators for vectorized kernels over
		// per-column batches at the same batch size.
		engines := []*e2eEngineRun{
			{name: "row", plan: plan, opts: exec.Options{BatchSize: 1, NoFusion: true}},
			{name: "batch", plan: plan, opts: exec.Options{BatchSize: batchSize}},
			{name: "columnar", plan: plan, opts: exec.Options{BatchSize: batchSize, Columnar: true}},
		}
		for _, d := range degrees {
			name := fmt.Sprintf("batch+exchange(%d)", d)
			parCfg := relopt.DefaultConfig()
			parCfg.Parallel = true
			parCfg.Degree = d
			pplan, _, err := e2ePlan(cat, parCfg, w.tree, relopt.HashPartitioned(w.partCol, d))
			if err != nil {
				// The parallel model has no plan for this workload at
				// this degree; record and move on rather than fail the
				// experiment. This does not count as a mismatch.
				wl.Engines = append(wl.Engines, E2EEngine{Engine: name, Error: err.Error()})
				continue
			}
			engines = append(engines, &e2eEngineRun{name: name, plan: pplan,
				opts: exec.Options{BatchSize: batchSize, ExchangeWorkers: workers}})
		}

		for rep := 0; rep < e2eReps; rep++ {
			for _, e := range engines {
				e.run(db, rep)
			}
		}

		row, batch := engines[0], engines[1]
		if row.err != nil {
			panic(fmt.Sprintf("fig4: e2e row engine %s: %v", w.name, row.err))
		}
		parFailures := wl.Engines // plans the parallel model declined
		wl.Engines = []E2EEngine{{Engine: "row", WallMS: row.wall, RowsOut: row.n, SpeedupVsRow: 1, Match: true}}
		if batch.err == nil && row.wall > 0 {
			wl.Engines[0].SpeedupVsBatch = batch.wall / row.wall
		}
		for _, e := range engines[1:] {
			out := E2EEngine{Engine: e.name, WallMS: e.wall, RowsOut: e.n}
			switch {
			case e.err != nil:
				out.Error = e.err.Error()
				res.Mismatches++
			default:
				out.Match = e.fp == row.fp
				if !out.Match {
					res.Mismatches++
				}
				if e.wall > 0 {
					out.SpeedupVsRow = row.wall / e.wall
					if batch.err == nil {
						out.SpeedupVsBatch = batch.wall / e.wall
					}
				}
			}
			wl.Engines = append(wl.Engines, out)
		}
		wl.Engines = append(wl.Engines, parFailures...)
		res.Workloads = append(res.Workloads, wl)
	}
	return res
}

// FormatE2E renders the A/B as one table per workload.
func FormatE2E(r E2EResult) string {
	out := fmt.Sprintf("End-to-end execution A/B — ~%d rows/table, batch %d, GOMAXPROCS=%d\n",
		r.Rows, r.BatchSize, r.GOMAXPROCS)
	if r.GOMAXPROCS == 1 {
		out += "(single CPU: exchange degrees >1 cannot show wall-clock speedup here)\n"
	}
	for _, wl := range r.Workloads {
		out += fmt.Sprintf("%s — optimized in %.1f ms\n", wl.Name, wl.OptimizeMS)
		out += fmt.Sprintf("  %-20s %10s %10s %8s %9s %6s\n", "engine", "wall-ms", "rows", "vs-row", "vs-batch", "match")
		for _, e := range wl.Engines {
			if e.Error != "" {
				out += fmt.Sprintf("  %-20s %s\n", e.Engine, e.Error)
				continue
			}
			match := "ok"
			if !e.Match {
				match = "FAIL"
			}
			out += fmt.Sprintf("  %-20s %10.1f %10d %7.2fx %8.2fx %6s\n",
				e.Engine, e.WallMS, e.RowsOut, e.SpeedupVsRow, e.SpeedupVsBatch, match)
		}
	}
	out += fmt.Sprintf("result mismatches: %d\n", r.Mismatches)
	return out
}
