package fig4

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// SetOpsPoint is one row of the Section-5 set-operation experiment:
// "optimizing the union or intersection of N sets is very similar to
// optimizing a join of N relations; however, while join optimization
// uses exhaustive search …, union and intersection are optimized using
// query rewrite heuristics and commutativity only" (the Starburst
// critique). With INTERSECT/UNION commutativity *and* associativity in
// the rule set, the Volcano optimizer reorders N-way set operations
// cost-based; freezing the written order reproduces the heuristic
// treatment.
type SetOpsPoint struct {
	// N is the number of intersected subsets.
	N int
	// Reordered is the plan cost with full cost-based reordering.
	Reordered float64
	// Frozen is the plan cost with the written order kept.
	Frozen float64
}

// RunSetOps intersects N differently-filtered subsets of one relation,
// written deliberately with the least selective subset first, and
// optimizes with and without set-operation reordering.
func RunSetOps() []SetOpsPoint {
	cat := rel.NewCatalog()
	r := cat.AddTable("R", 6000, 96)
	a := cat.AddColumn(r, "a", 6000, 1, 6000)
	b := cat.AddColumn(r, "b", 1000, 1, 1000)
	cat.AddColumn(r, "c", 40, 1, 40)
	_ = a

	// Subsets of decreasing size: b < 1000 keeps ~everything,
	// b < 250 a quarter, b < 60 ~6%, b < 15 ~1.5%.
	cuts := []int64{1000, 250, 60, 15}
	subset := func(i int) *core.ExprTree {
		return core.Node(&rel.Select{Pred: rel.Pred{Col: b, Op: rel.CmpLT, Val: cuts[i]}},
			core.Node(&rel.Get{Tab: r}))
	}
	query := func(n int) *core.ExprTree {
		// Written worst-first: the largest subsets intersect first.
		tree := subset(0)
		for i := 1; i < n; i++ {
			tree = core.Node(&rel.Intersect{}, tree, subset(i))
		}
		return tree
	}

	cost := func(n int, frozen bool) float64 {
		cfg := relopt.DefaultConfig()
		cfg.NoSetReorder = frozen
		cfg.Params.MemoryPages = 16 // memory pressure makes order matter
		opt := core.NewOptimizer(relopt.New(cat, cfg), nil)
		root := opt.InsertQuery(query(n))
		plan, err := opt.Optimize(root, nil)
		if err != nil || plan == nil {
			panic(fmt.Sprintf("fig4: setops optimization failed: %v", err))
		}
		return plan.Cost.(relopt.Cost).Total()
	}

	var out []SetOpsPoint
	for n := 2; n <= len(cuts); n++ {
		out = append(out, SetOpsPoint{
			N:         n,
			Reordered: cost(n, false),
			Frozen:    cost(n, true),
		})
	}
	return out
}

// FormatSetOps renders the experiment.
func FormatSetOps(points []SetOpsPoint) string {
	var b strings.Builder
	b.WriteString("N-way intersection: cost-based reordering vs the written order (§5)\n")
	fmt.Fprintf(&b, "%-5s %14s %14s %8s\n", "N", "reordered", "written-order", "ratio")
	for _, p := range points {
		fmt.Fprintf(&b, "%-5d %14.1f %14.1f %7.2fx\n", p.N, p.Reordered, p.Frozen, p.Frozen/p.Reordered)
	}
	return b.String()
}
