package fig4

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// The anytime experiment exercises the engine's graceful degradation:
// the hardest Figure-4 queries are optimized under shrinking wall-clock
// (or step) budgets, and every budget-stopped search must still hand
// back a complete plan that satisfies the required properties and costs
// no more than the greedy seed. The experiment is the acceptance test
// for the anytime contract — Invalid must be zero at every budget.

// AnytimePoint is one budget level of the anytime experiment.
type AnytimePoint struct {
	// Timeout and MaxSteps are the per-query budget (at most one is set;
	// zero means that bound is off).
	Timeout  time.Duration
	MaxSteps int
	// Queries is the number of queries attempted.
	Queries int
	// Degraded counts searches the budget stopped before optimality was
	// proven; Completed counts searches that finished inside the budget.
	Degraded, Completed int
	// Invalid counts budget-stopped searches that violated the anytime
	// contract: no plan at all, a plan missing the required properties,
	// or a plan costing more than the greedy seed. Any non-zero value is
	// a bug.
	Invalid int
	// MeanCostRatio is the mean anytime-cost / optimal-cost over all
	// queries (1.0 = every budgeted run still found the optimum).
	MeanCostRatio float64
	// MeanSteps is the mean number of moves pursued before returning.
	MeanSteps float64
}

// RunAnytime measures graceful degradation on the hardest complexity
// level of the Figure-4 workload (cfg.MaxRelations input relations),
// guided by the greedy seed planner so a degradation floor exists. Each
// query is first optimized without a budget to establish the optimal
// cost, then once per entry of budgets.
func RunAnytime(cfg Config, budgets []core.Budget) []AnytimePoint {
	cfg = cfg.Defaults()
	src := datagen.New(cfg.Seed)
	cat := src.Catalog(cfg.MaxRelations)
	model := relopt.New(cat, relopt.DefaultConfig())

	queries := make([]datagen.Query, cfg.QueriesPerLevel)
	optimal := make([]float64, cfg.QueriesPerLevel)
	for q := range queries {
		queries[q] = src.SelectJoinQuery(cat, cfg.MaxRelations, cfg.Shape)
		_, cost, _, err := MeasureVolcano(cat, queries[q], nil)
		if err != nil {
			panic(fmt.Sprintf("fig4: unbudgeted run failed: %v", err))
		}
		optimal[q] = cost
	}

	var points []AnytimePoint
	for _, budget := range budgets {
		pt := AnytimePoint{
			Timeout:  budget.Timeout,
			MaxSteps: budget.MaxSteps,
			Queries:  len(queries),
		}
		var ratio, steps float64
		for q, query := range queries {
			opts := &core.Options{
				Guidance: core.GuidanceOptions{SeedPlanner: model.SeedPlanner()},
				Budget:   budget,
			}
			plan, stats, err := measureAnytime(cat, model, query, opts)
			steps += float64(stats.Steps())
			if err == nil {
				pt.Completed++
			} else if !errors.Is(err, core.ErrBudget) {
				panic(fmt.Sprintf("fig4: non-budget error on anytime run: %v", err))
			} else {
				pt.Degraded++
				if !validAnytime(plan, query, stats) {
					pt.Invalid++
					continue
				}
			}
			ratio += plan.Cost.(relopt.Cost).Total() / optimal[q]
		}
		if n := pt.Queries - pt.Invalid; n > 0 {
			pt.MeanCostRatio = ratio / float64(n)
		}
		pt.MeanSteps = steps / float64(pt.Queries)
		points = append(points, pt)
	}
	return points
}

// measureAnytime optimizes one query under the given options and returns
// the plan, the search stats, and the optimizer's error verbatim (a
// budget error may accompany a usable plan).
func measureAnytime(cat *rel.Catalog, model core.Model, query datagen.Query, opts *core.Options) (*core.Plan, core.Stats, error) {
	opt := core.NewOptimizer(model, opts)
	root := opt.InsertQuery(query.Root)
	var required core.PhysProps
	if query.OrderBy != rel.InvalidCol {
		required = relopt.SortedOn(query.OrderBy)
	}
	plan, err := opt.Optimize(root, required)
	return plan, *opt.Stats(), err
}

// validAnytime checks the anytime contract on a degraded result: a
// complete plan exists, it delivers the required properties, and when
// the seed planner materialized a floor plan the result costs no more
// than that floor.
func validAnytime(plan *core.Plan, query datagen.Query, stats core.Stats) bool {
	if plan == nil || plan.Cost == nil {
		return false
	}
	if query.OrderBy != rel.InvalidCol {
		required := relopt.SortedOn(query.OrderBy)
		if plan.Delivered == nil || !plan.Delivered.Covers(required) {
			return false
		}
	}
	complete := true
	plan.Walk(func(p *core.Plan) {
		if p.Op == nil || p.Cost == nil {
			complete = false
		}
	})
	if !complete {
		return false
	}
	if fc, ok := stats.SeedFloorCost.(relopt.Cost); ok {
		if plan.Cost.(relopt.Cost).Total() > fc.Total() {
			return false
		}
	}
	return true
}

// FormatAnytime renders the degradation table.
func FormatAnytime(points []AnytimePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Anytime optimization under budgets (degraded plans must stay valid)\n")
	fmt.Fprintf(&b, "%-14s %8s %9s %9s %8s %10s %10s\n",
		"budget", "queries", "completed", "degraded", "invalid", "cost-x", "steps")
	for _, p := range points {
		budget := "none"
		switch {
		case p.Timeout > 0 && p.MaxSteps > 0:
			budget = fmt.Sprintf("%v/%d", p.Timeout, p.MaxSteps)
		case p.Timeout > 0:
			budget = p.Timeout.String()
		case p.MaxSteps > 0:
			budget = fmt.Sprintf("%d steps", p.MaxSteps)
		}
		fmt.Fprintf(&b, "%-14s %8d %9d %9d %8d %9.3fx %10.0f\n",
			budget, p.Queries, p.Completed, p.Degraded, p.Invalid,
			p.MeanCostRatio, p.MeanSteps)
	}
	return b.String()
}
