package fig4

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// The fig4mqo experiment: multi-query optimization over one shared
// memo. A batch of overlapping queries is optimized three ways —
// independently (the baseline), through ParallelOptimizeCtx with
// sharing disabled (gated: every plan cost must be byte-identical to
// the baseline), and through one shared memo with the cost-based
// Materialize/Reuse post-pass. The shared batch's plans are executed
// in order against one spool store and each query's result multiset is
// gated against its independent execution.

// MQOQuery is one query of the batch in the report.
type MQOQuery struct {
	// Name identifies the workload shape.
	Name string `json:"name"`
	// Cost is the independently optimized plan cost.
	Cost float64 `json:"cost"`
	// SharedCost is the plan cost after the shared-memo batch and the
	// Materialize/Reuse rewrite (a Materialize carrier pays the spool
	// write; a Reuse consumer drops to a spool scan).
	SharedCost float64 `json:"shared_cost"`
	// CostMatch reports that the sharing-disabled batch reproduced the
	// independent cost exactly.
	CostMatch bool `json:"cost_match"`
	// Match reports that the shared batch's executed result multiset
	// equals the independent execution's.
	Match bool `json:"match"`
}

// MQOResult is the outcome of RunMQO, serialized into BENCH_fig4.json
// as the "mqo" section.
type MQOResult struct {
	// Seed is the datagen seed the workload was generated from.
	Seed int64 `json:"seed"`
	// GOMAXPROCS records the hardware parallelism available to the run.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Rows is the target table cardinality.
	Rows int64 `json:"rows"`
	// Queries holds one entry per batch statement.
	Queries []MQOQuery `json:"queries"`
	// CostMismatches counts sharing-disabled batch plans whose cost
	// diverged from independent optimization. Correctness requires zero.
	CostMismatches int `json:"cost_mismatches"`
	// Mismatches counts shared-batch executions whose result multiset
	// diverged from the independent execution. Correctness requires zero.
	Mismatches int `json:"mismatches"`
	// SharedGroups is the number of equivalence classes reached by more
	// than one root in the shared memo.
	SharedGroups int `json:"shared_groups"`
	// SharedWinners is the number of winner plan nodes shared by more
	// than one root plan.
	SharedWinners int `json:"shared_winners"`
	// Spools is the number of Materialize/Reuse pairs the post-pass
	// introduced.
	Spools int `json:"spools"`
	// IndependentMatchCalls / SharedMatchCalls compare rule-match work:
	// the sum over independent optimizations vs the one shared batch.
	IndependentMatchCalls int `json:"independent_match_calls"`
	SharedMatchCalls      int `json:"shared_match_calls"`
	// IndependentSteps / SharedSteps compare moves pursued.
	IndependentSteps int `json:"independent_steps"`
	SharedSteps      int `json:"shared_steps"`
	// IndependentOptMS / BatchOptMS compare optimization wall time: the
	// sum of independent runs vs the one shared batch.
	IndependentOptMS float64 `json:"independent_opt_ms"`
	BatchOptMS       float64 `json:"batch_opt_ms"`
	// IndependentTotalCost / SharedTotalCost compare the batch's total
	// planned execution cost without and with Materialize/Reuse.
	IndependentTotalCost float64 `json:"independent_total_cost"`
	SharedTotalCost      float64 `json:"shared_total_cost"`
}

// mqoWorkloads builds an overlapping batch over the 3-table scaled
// catalog. The first four queries share the filtered R1 ⋈ R2 join; the
// last two share only the filtered R1 scan — so the batch has both a
// materialization candidate with several consumers and sharing too
// cheap to ever win (a spooled scan never beats rescanning the table).
func mqoWorkloads(cat *rel.Catalog) []e2eWorkload {
	get := func(name string) *rel.Get { return &rel.Get{Tab: cat.Table(name)} }
	col := func(tab, col string) rel.ColID { return cat.ColumnID(tab, col) }
	sel := func(tab string, lim int64) *core.ExprTree {
		return core.Node(&rel.Select{Pred: rel.Pred{Col: col(tab, "v"), Op: rel.CmpLT, Val: lim}},
			core.Node(get(tab)))
	}
	join2 := func() *core.ExprTree {
		return core.Node(rel.NewJoin(col("R1", "ja"), col("R2", "ja")),
			sel("R1", 300), sel("R2", 300))
	}

	join3 := core.Node(rel.NewJoin(col("R2", "jb"), col("R3", "id")),
		join2(), sel("R3", 300))

	group2 := core.Node(&rel.GroupBy{
		GroupCols: []rel.ColID{col("R1", "ja")},
		Aggs:      []rel.Agg{{Fn: rel.AggCount}, {Fn: rel.AggSum, Col: col("R1", "v")}},
	}, join2())

	groupScan := core.Node(&rel.GroupBy{
		GroupCols: []rel.ColID{col("R1", "ja")},
		Aggs:      []rel.Agg{{Fn: rel.AggCount}, {Fn: rel.AggSum, Col: col("R1", "v")}},
	}, sel("R1", 500))

	return []e2eWorkload{
		{name: "join2", tree: join2()},
		{name: "join2-groupby", tree: group2},
		{name: "join3", tree: join3},
		{name: "join2-orderby", tree: join2(), required: relopt.SortedOn(col("R1", "ja"))},
		{name: "scan-filter", tree: sel("R1", 500)},
		{name: "scan-groupby", tree: groupScan},
	}
}

// mqoTotal collapses a plan cost for reporting.
func mqoTotal(p *core.Plan) float64 { return p.Cost.(relopt.Cost).Total() }

// RunMQO optimizes and executes the overlapping batch over generated
// tables of about `rows` rows each. searchWorkers sets the shared
// batch's task-engine workers (0 = one).
func RunMQO(cfg Config, rows int64, searchWorkers int) MQOResult {
	cfg = cfg.Defaults()
	if rows <= 0 {
		rows = 200_000
	}
	src := datagen.New(cfg.Seed)
	cat := src.ScaledCatalog(3, rows)
	db := exec.FromData(cat, src.Rows(cat))
	model := relopt.New(cat, relopt.DefaultConfig())
	workloads := mqoWorkloads(cat)

	res := MQOResult{Seed: cfg.Seed, GOMAXPROCS: runtime.GOMAXPROCS(0), Rows: rows}

	// Independent baseline: one fresh optimizer per query, then execute
	// each plan alone. Costs, counters, and result fingerprints are the
	// ground truth the two batch modes are gated against.
	type baseline struct {
		cost float64
		fp   string
		rows int
	}
	bases := make([]baseline, len(workloads))
	for i, w := range workloads {
		o := core.NewOptimizer(relopt.New(cat, relopt.DefaultConfig()), nil)
		root := o.InsertQuery(w.tree)
		start := time.Now()
		plan, err := o.Optimize(root, w.required)
		optMS := float64(time.Since(start).Nanoseconds()) / 1e6
		if err != nil || plan == nil {
			panic(fmt.Sprintf("fig4: mqo optimize %s: %v", w.name, err))
		}
		res.IndependentMatchCalls += o.Stats().MatchCalls
		res.IndependentSteps += o.Stats().Steps()
		res.IndependentOptMS += optMS
		res.IndependentTotalCost += mqoTotal(plan)
		out, schema, err := exec.Run(db, plan)
		if err != nil {
			panic(fmt.Sprintf("fig4: mqo execute %s: %v", w.name, err))
		}
		bases[i] = baseline{cost: mqoTotal(plan), fp: exec.Fingerprint(exec.Canonical(out, schema)), rows: len(out)}
		res.Queries = append(res.Queries, MQOQuery{Name: w.name, Cost: bases[i].cost})
	}

	// Sharing disabled: the batch runs ParallelOptimizeCtx's
	// shared-nothing pool; every plan cost must be byte-identical to
	// independent optimization.
	offOpts := &core.Options{}
	offJobs := make([]core.ParallelJob, len(workloads))
	for i, w := range workloads {
		offJobs[i] = core.ParallelJob{Model: model, Options: offOpts, Tree: w.tree, Required: w.required}
	}
	for i, r := range core.ParallelOptimizeCtx(context.Background(), offJobs, 1) {
		if r.Err != nil || r.Plan == nil {
			panic(fmt.Sprintf("fig4: mqo no-sharing batch %s: %v", workloads[i].name, r.Err))
		}
		res.Queries[i].CostMatch = mqoTotal(r.Plan) == bases[i].cost
		if !res.Queries[i].CostMatch {
			res.CostMismatches++
		}
	}

	// Sharing enabled: one shared memo, then the cost-based
	// Materialize/Reuse rewrite, then execution in batch order against
	// one spool store.
	onOpts := &core.Options{}
	onOpts.Search.ShareMemo = true
	onOpts.Search.Workers = searchWorkers
	onJobs := make([]core.ParallelJob, len(workloads))
	for i, w := range workloads {
		onJobs[i] = core.ParallelJob{Model: model, Options: onOpts, Tree: w.tree, Required: w.required}
	}
	start := time.Now()
	onResults := core.ParallelOptimizeCtx(context.Background(), onJobs, 1)
	res.BatchOptMS = float64(time.Since(start).Nanoseconds()) / 1e6
	plans := make([]*core.Plan, len(onResults))
	for i, r := range onResults {
		if r.Err != nil || r.Plan == nil {
			panic(fmt.Sprintf("fig4: mqo shared batch %s: %v", workloads[i].name, r.Err))
		}
		plans[i] = r.Plan
	}
	stats := onResults[0].Stats
	res.SharedGroups = stats.SharedGroups
	res.SharedWinners = stats.SharedWinners
	res.SharedMatchCalls = stats.MatchCalls
	res.SharedSteps = stats.Steps()

	plans, res.Spools = core.MaterializeSharedPlans(model, plans)
	spools := exec.NewSpoolStore()
	for i, p := range plans {
		res.Queries[i].SharedCost = mqoTotal(p)
		res.SharedTotalCost += mqoTotal(p)
		out, schema, err := exec.RunOpts(nil, db, p, nil, exec.Options{Spools: spools})
		if err != nil {
			panic(fmt.Sprintf("fig4: mqo execute shared %s: %v", workloads[i].name, err))
		}
		res.Queries[i].Match = exec.Fingerprint(exec.Canonical(out, schema)) == bases[i].fp
		if !res.Queries[i].Match {
			res.Mismatches++
		}
	}
	return res
}

// FormatMQO renders the experiment.
func FormatMQO(r MQOResult) string {
	out := fmt.Sprintf("Multi-query optimization over one shared memo — ~%d rows/table, GOMAXPROCS=%d\n",
		r.Rows, r.GOMAXPROCS)
	out += fmt.Sprintf("  %-16s %14s %14s %10s %6s\n", "query", "cost", "shared-cost", "cost-gate", "match")
	for _, q := range r.Queries {
		costGate := "ok"
		if !q.CostMatch {
			costGate = "FAIL"
		}
		match := "ok"
		if !q.Match {
			match = "FAIL"
		}
		out += fmt.Sprintf("  %-16s %14.1f %14.1f %10s %6s\n", q.Name, q.Cost, q.SharedCost, costGate, match)
	}
	out += fmt.Sprintf("shared groups: %d   shared winners: %d   spools materialized: %d\n",
		r.SharedGroups, r.SharedWinners, r.Spools)
	out += fmt.Sprintf("optimization work: match calls %d -> %d, steps %d -> %d (independent -> shared)\n",
		r.IndependentMatchCalls, r.SharedMatchCalls, r.IndependentSteps, r.SharedSteps)
	out += fmt.Sprintf("optimization wall: %.1f ms independent, %.1f ms batch\n",
		r.IndependentOptMS, r.BatchOptMS)
	out += fmt.Sprintf("total planned cost: %.1f -> %.1f\n", r.IndependentTotalCost, r.SharedTotalCost)
	out += fmt.Sprintf("cost mismatches (sharing disabled): %d   result mismatches: %d\n",
		r.CostMismatches, r.Mismatches)
	return out
}
