package fig4

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relopt"
)

// The fig4guided experiment A/B-tests guided branch-and-bound against
// plain exhaustive search on the Figure-4 workload: same queries, same
// cost model, one run seeded by the greedy join-ordering planner and one
// cold. Guidance must be invisible in the results — plan costs exactly
// equal at every level — while the telemetry shows what the seed bought:
// goals refuted by the bound before exploration, moves skipped, and how
// honest the greedy seed's cost estimate is against the true optimum.

// GuidedPoint is one complexity level of the guided-vs-exhaustive A/B.
type GuidedPoint struct {
	// Relations is the number of input relations.
	Relations int
	// Queries is the number of queries measured.
	Queries int
	// CostMismatches counts queries where the guided plan cost differed
	// from the exhaustive one; any non-zero value is a correctness bug.
	CostMismatches int
	// UnguidedMS and GuidedMS are mean optimization times.
	UnguidedMS, GuidedMS float64
	// UnguidedMatches and GuidedMatches are mean implementation-rule
	// match attempts per query.
	UnguidedMatches, GuidedMatches float64
	// SeedOverOptimum is the mean ratio of the greedy seed's cost to the
	// optimal plan cost (1.0 = the seed is already optimal).
	SeedOverOptimum float64
	// LimitStages is the mean number of limit stages per guided run; 1
	// means the inclusive seeded stage always sufficed.
	LimitStages float64
	// GoalsPruned and MovesSkipped are mean counts of goals refuted by
	// the bound (including floor refutations that skipped exploration
	// entirely) and moves abandoned before input optimization.
	GoalsPruned, MovesSkipped float64
}

// RunGuided executes the guided-vs-exhaustive A/B on the Figure-4
// workload and returns one point per complexity level.
func RunGuided(cfg Config) []GuidedPoint {
	cfg = cfg.Defaults()
	src := datagen.New(cfg.Seed)
	cat := src.Catalog(cfg.MaxRelations)
	model := relopt.New(cat, relopt.DefaultConfig())

	var points []GuidedPoint
	for n := cfg.MinRelations; n <= cfg.MaxRelations; n++ {
		pt := GuidedPoint{Relations: n, Queries: cfg.QueriesPerLevel}
		var uMS, gMS, uMatch, gMatch, seedRatio, stages, pruned, skipped float64
		for q := 0; q < cfg.QueriesPerLevel; q++ {
			query := src.SelectJoinQuery(cat, n, cfg.Shape)

			ums, ucost, ustats, err := MeasureVolcano(cat, query, nil)
			if err != nil {
				panic(fmt.Sprintf("fig4: exhaustive failed on %d relations: %v", n, err))
			}
			gms, gcost, gstats, err := MeasureVolcano(cat, query, &core.Options{
				Guidance: core.GuidanceOptions{SeedPlanner: model.SeedPlanner()},
			})
			if err != nil {
				panic(fmt.Sprintf("fig4: guided failed on %d relations: %v", n, err))
			}
			if gcost != ucost {
				pt.CostMismatches++
			}
			uMS += ums
			gMS += gms
			uMatch += float64(ustats.MatchCalls)
			gMatch += float64(gstats.MatchCalls)
			if sc, ok := gstats.SeedCost.(relopt.Cost); ok && ucost > 0 {
				seedRatio += sc.Total() / ucost
			}
			stages += float64(gstats.LimitStages)
			pruned += float64(gstats.GoalsPruned)
			skipped += float64(gstats.MovesSkipped)
		}
		f := float64(cfg.QueriesPerLevel)
		pt.UnguidedMS = uMS / f
		pt.GuidedMS = gMS / f
		pt.UnguidedMatches = uMatch / f
		pt.GuidedMatches = gMatch / f
		pt.SeedOverOptimum = seedRatio / f
		pt.LimitStages = stages / f
		pt.GoalsPruned = pruned / f
		pt.MovesSkipped = skipped / f
		points = append(points, pt)
	}
	return points
}

// FormatGuided renders the A/B table.
func FormatGuided(points []GuidedPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Guided branch-and-bound vs exhaustive search (plan costs must match)\n")
	fmt.Fprintf(&b, "%-5s %10s %10s %11s %11s %8s %7s %8s %8s %9s\n",
		"rels", "plain-ms", "guided-ms", "plain-match", "guided-match",
		"seed/opt", "stages", "pruned", "skipped", "mismatch")
	for _, p := range points {
		fmt.Fprintf(&b, "%-5d %10.3f %10.3f %11.1f %11.1f %7.2fx %7.2f %8.1f %8.1f %9d\n",
			p.Relations, p.UnguidedMS, p.GuidedMS,
			p.UnguidedMatches, p.GuidedMatches,
			p.SeedOverOptimum, p.LimitStages, p.GoalsPruned, p.MovesSkipped,
			p.CostMismatches)
	}
	return b.String()
}
