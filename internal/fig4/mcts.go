package fig4

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// The fig4mcts experiment maps the quality-vs-time frontier of the
// budgeted stochastic search policies (Options.Search.Policy) on join
// queries past the exhaustive sweet spot: 10-16 input relations under
// step budgets where proving optimality is out of reach. Each query is
// optimized three ways under the same step budget — guided
// branch-and-bound, MCTS, and iterative widening — and every returned
// plan is vetted against the anytime contract (complete, covers the
// required properties, costs no more than the seed floor). Ratios
// against the unbudgeted optimum are reported for levels small enough
// to compute it.

// optimalMaxRelations bounds the levels for which the unbudgeted
// optimum is computed; beyond it, exhaustive search is exactly what the
// experiment demonstrates we cannot afford.
const optimalMaxRelations = 10

// QualityResult is the fig4mcts section of the benchmark report.
type QualityResult struct {
	// Seed is the datagen seed the workload was generated from (also
	// the stochastic policies' RNG seed), so a recorded run can be
	// reproduced bit-for-bit with -seed.
	Seed int64 `json:"seed"`
	// QueriesPerLevel is the number of random queries per level.
	QueriesPerLevel int `json:"queries_per_level"`
	// OptimalMaxRelations is the largest level whose unbudgeted
	// optimum was computed for the *_vs_optimal ratios.
	OptimalMaxRelations int `json:"optimal_max_relations"`
	// Levels and Budgets echo the sweep grid.
	Levels  []int `json:"levels"`
	Budgets []int `json:"budgets"`
	// Points holds one entry per (level, budget) cell.
	Points []QualityPoint `json:"points"`
	// VetFailures totals anytime-contract violations across all cells.
	// Any non-zero value is a bug.
	VetFailures int `json:"vet_failures"`
}

// QualityPoint is one (relations, step budget) cell of the frontier.
type QualityPoint struct {
	Relations int `json:"relations"`
	MaxSteps  int `json:"max_steps"`
	Queries   int `json:"queries"`
	// Episodes is the per-query episode budget handed to the policies.
	Episodes int `json:"episodes"`
	// *Completed count runs that finished inside the step budget
	// (err == nil); the rest returned their anytime best.
	GuidedCompleted   int `json:"guided_completed"`
	MCTSCompleted     int `json:"mcts_completed"`
	WideningCompleted int `json:"widening_completed"`
	// *MS are mean wall milliseconds per query.
	GuidedMS   float64 `json:"guided_ms"`
	MCTSMS     float64 `json:"mcts_ms"`
	WideningMS float64 `json:"widening_ms"`
	// *VsSeed are mean plan-cost ratios against the greedy seed
	// estimate (usually well under 1.0 — how much the search improved
	// on its starting point — but the estimate prices a plan the greedy
	// planner never builds, so a cell can exceed 1.0 when the estimate
	// is unachievable and the search relaxed past it).
	GuidedVsSeed   float64 `json:"guided_vs_seed"`
	MCTSVsSeed     float64 `json:"mcts_vs_seed"`
	WideningVsSeed float64 `json:"widening_vs_seed"`
	// *VsGuided are mean per-query cost ratios against guided
	// branch-and-bound under the same budget (1.0 = parity).
	MCTSVsGuided     float64 `json:"mcts_vs_guided"`
	WideningVsGuided float64 `json:"widening_vs_guided"`
	// *VsOptimal are mean cost ratios against the unbudgeted optimum,
	// zero when Relations > OptimalMaxRelations.
	GuidedVsOptimal   float64 `json:"guided_vs_optimal,omitempty"`
	MCTSVsOptimal     float64 `json:"mcts_vs_optimal,omitempty"`
	WideningVsOptimal float64 `json:"widening_vs_optimal,omitempty"`
	// VetFailures counts anytime-contract violations in this cell.
	VetFailures int `json:"vet_failures"`
}

// RunMCTS executes the stochastic-policy frontier sweep. Nil levels or
// budgets select the default grid: 10-16 relations in steps of two,
// step budgets 300 to 10,000.
func RunMCTS(cfg Config, levels, budgets []int) *QualityResult {
	cfg = cfg.Defaults()
	if len(levels) == 0 {
		levels = []int{10, 12, 14, 16}
	}
	if len(budgets) == 0 {
		budgets = []int{300, 1000, 3000, 10000}
	}
	maxRels := levels[0]
	for _, n := range levels {
		if n > maxRels {
			maxRels = n
		}
	}
	src := datagen.New(cfg.Seed)
	cat := src.Catalog(maxRels)
	model := relopt.New(cat, relopt.DefaultConfig())
	seedPlanner := model.SeedPlanner()

	res := &QualityResult{
		Seed:                cfg.Seed,
		QueriesPerLevel:     cfg.QueriesPerLevel,
		OptimalMaxRelations: optimalMaxRelations,
		Levels:              levels,
		Budgets:             budgets,
	}

	for _, n := range levels {
		queries := make([]datagen.Query, cfg.QueriesPerLevel)
		for q := range queries {
			queries[q] = src.SelectJoinQuery(cat, n, cfg.Shape)
		}
		// The unbudgeted optimum, where exhaustive search still finishes.
		var optimal []float64
		if n <= optimalMaxRelations {
			optimal = make([]float64, len(queries))
			for q, query := range queries {
				_, cost, _, err := MeasureVolcano(cat, query, &core.Options{
					Guidance: core.GuidanceOptions{SeedPlanner: seedPlanner},
				})
				if err != nil {
					panic(fmt.Sprintf("fig4: unbudgeted run failed at %d relations: %v", n, err))
				}
				optimal[q] = cost
			}
		}

		for _, steps := range budgets {
			// One rollout pursues a handful of moves per join, so this
			// episode budget comfortably exceeds what the step budget can
			// pay for; the step budget is the binding constraint.
			episodes := 4
			if e := steps / (6 * n); e > episodes {
				episodes = e
			}
			pt := QualityPoint{Relations: n, MaxSteps: steps, Queries: len(queries), Episodes: episodes}
			var gSeed, mSeed, wSeed, mGuided, wGuided float64
			var gOpt, mOpt, wOpt float64
			var gMS, mMS, wMS float64
			rated := 0
			for q, query := range queries {
				guidedOpts := &core.Options{
					Guidance: core.GuidanceOptions{SeedPlanner: seedPlanner},
					Budget:   core.Budget{MaxSteps: steps},
				}
				gPlan, gStats, gms, gerr := measureBudgeted(cat, model, query, guidedOpts)
				policyOpts := func(pol core.SearchPolicy) *core.Options {
					return &core.Options{
						Guidance: core.GuidanceOptions{SeedPlanner: seedPlanner},
						Budget:   core.Budget{MaxSteps: steps},
						Search:   core.SearchOptions{Policy: pol, RandSeed: cfg.Seed, Episodes: episodes},
					}
				}
				mPlan, mStats, mms, merr := measureBudgeted(cat, model, query, policyOpts(core.PolicyMCTS))
				wPlan, wStats, wms, werr := measureBudgeted(cat, model, query, policyOpts(core.PolicyWidening))
				gMS += gms
				mMS += mms
				wMS += wms
				if gerr == nil {
					pt.GuidedCompleted++
				}
				if merr == nil {
					pt.MCTSCompleted++
				}
				if werr == nil {
					pt.WideningCompleted++
				}
				for _, r := range []struct {
					plan  *core.Plan
					stats core.Stats
				}{{gPlan, gStats}, {mPlan, mStats}, {wPlan, wStats}} {
					if !vetQuality(r.plan, query, r.stats) {
						pt.VetFailures++
					}
				}
				if gPlan == nil || mPlan == nil || wPlan == nil {
					continue // ratios are meaningless without a plan
				}
				rated++
				gCost := gPlan.Cost.(relopt.Cost).Total()
				mCost := mPlan.Cost.(relopt.Cost).Total()
				wCost := wPlan.Cost.(relopt.Cost).Total()
				if sc, ok := gStats.SeedCost.(relopt.Cost); ok && sc.Total() > 0 {
					gSeed += gCost / sc.Total()
					mSeed += mCost / sc.Total()
					wSeed += wCost / sc.Total()
				}
				mGuided += mCost / gCost
				wGuided += wCost / gCost
				if optimal != nil && optimal[q] > 0 {
					gOpt += gCost / optimal[q]
					mOpt += mCost / optimal[q]
					wOpt += wCost / optimal[q]
				}
			}
			pt.GuidedMS = gMS / float64(len(queries))
			pt.MCTSMS = mMS / float64(len(queries))
			pt.WideningMS = wMS / float64(len(queries))
			if rated > 0 {
				f := float64(rated)
				pt.GuidedVsSeed, pt.MCTSVsSeed, pt.WideningVsSeed = gSeed/f, mSeed/f, wSeed/f
				pt.MCTSVsGuided, pt.WideningVsGuided = mGuided/f, wGuided/f
				if optimal != nil {
					pt.GuidedVsOptimal, pt.MCTSVsOptimal, pt.WideningVsOptimal = gOpt/f, mOpt/f, wOpt/f
				}
			}
			res.VetFailures += pt.VetFailures
			res.Points = append(res.Points, pt)
		}
	}
	return res
}

// measureBudgeted optimizes one query under the given options and
// returns the plan, stats, wall milliseconds, and the optimizer's error
// verbatim (a budget error may accompany a usable plan).
func measureBudgeted(cat *rel.Catalog, model core.Model, query datagen.Query, opts *core.Options) (*core.Plan, core.Stats, float64, error) {
	opt := core.NewOptimizer(model, opts)
	root := opt.InsertQuery(query.Root)
	var required core.PhysProps
	if query.OrderBy != rel.InvalidCol {
		required = relopt.SortedOn(query.OrderBy)
	}
	start := time.Now()
	plan, err := opt.Optimize(root, required)
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, core.ErrBudget) {
		panic(fmt.Sprintf("fig4: non-budget error on budgeted run: %v", err))
	}
	return plan, *opt.Stats(), float64(elapsed.Nanoseconds()) / 1e6, err
}

// vetQuality checks the anytime contract: the plan is complete, covers
// the required properties, and costs no more than the materialized seed
// floor (the syntactic plan). The binding bound is the floor, not the
// greedy seed's SeedCost number: the greedy planner prices a plan it
// never builds, so its estimate can be unachievable, and both guided
// B&B and the stochastic policies relax past it in stages when it is.
func vetQuality(plan *core.Plan, query datagen.Query, stats core.Stats) bool {
	return validAnytime(plan, query, stats)
}

// FormatMCTS renders the frontier table.
func FormatMCTS(res *QualityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stochastic search policies vs guided B&B under step budgets (cost ratios, 1.00 = parity)\n")
	fmt.Fprintf(&b, "%-5s %7s %5s %9s %9s %9s %10s %10s %11s %12s %9s %9s %10s %8s\n",
		"rels", "steps", "eps", "guided-ms", "mcts-ms", "widen-ms",
		"mcts/seed", "widen/seed", "mcts/guided", "widen/guided",
		"mcts/opt", "widen/opt", "done g/m/w", "vet-fail")
	for _, p := range res.Points {
		opt := func(v float64) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.3f", v)
		}
		fmt.Fprintf(&b, "%-5d %7d %5d %9.1f %9.1f %9.1f %10.3f %10.3f %11.3f %12.3f %9s %9s %3d/%d/%-3d %8d\n",
			p.Relations, p.MaxSteps, p.Episodes,
			p.GuidedMS, p.MCTSMS, p.WideningMS,
			p.MCTSVsSeed, p.WideningVsSeed,
			p.MCTSVsGuided, p.WideningVsGuided,
			opt(p.MCTSVsOptimal), opt(p.WideningVsOptimal),
			p.GuidedCompleted, p.MCTSCompleted, p.WideningCompleted,
			p.VetFailures)
	}
	if res.VetFailures > 0 {
		fmt.Fprintf(&b, "ANYTIME CONTRACT VIOLATIONS: %d\n", res.VetFailures)
	}
	return b.String()
}
