package fig4

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// ShapePoint is one complexity level of the structural search-space
// ablation: the full bushy space versus the left-deep restriction
// ("no composite inner"), the structural boundary Starburst exposes as
// a parameter and Volcano leaves to implementation-rule condition code.
type ShapePoint struct {
	// Relations is the number of input relations.
	Relations int
	// BushyMS and LeftDeepMS are mean optimization times.
	BushyMS, LeftDeepMS float64
	// BushyCost and LeftDeepCost are mean plan costs.
	BushyCost, LeftDeepCost float64
}

// RunLeftDeep measures both configurations over the Figure-4 workload.
func RunLeftDeep(cfg Config) []ShapePoint {
	cfg = cfg.Defaults()
	src := datagen.New(cfg.Seed)
	cat := src.Catalog(cfg.MaxRelations)
	var out []ShapePoint
	for n := cfg.MinRelations; n <= cfg.MaxRelations; n++ {
		pt := ShapePoint{Relations: n}
		for q := 0; q < cfg.QueriesPerLevel; q++ {
			query := src.SelectJoinQuery(cat, n, cfg.Shape)
			bushyMS, bushyCost := measureCfg(cat, query, relopt.DefaultConfig())
			ld := relopt.DefaultConfig()
			ld.NoCompositeInner = true
			ldMS, ldCost := measureCfg(cat, query, ld)
			pt.BushyMS += bushyMS
			pt.LeftDeepMS += ldMS
			pt.BushyCost += bushyCost
			pt.LeftDeepCost += ldCost
		}
		f := float64(cfg.QueriesPerLevel)
		pt.BushyMS /= f
		pt.LeftDeepMS /= f
		pt.BushyCost /= f
		pt.LeftDeepCost /= f
		out = append(out, pt)
	}
	return out
}

// measureCfg optimizes one query under a model configuration.
func measureCfg(cat *rel.Catalog, query datagen.Query, cfg relopt.Config) (ms, cost float64) {
	opt := core.NewOptimizer(relopt.New(cat, cfg), nil)
	root := opt.InsertQuery(query.Root)
	start := time.Now()
	plan, err := opt.Optimize(root, relopt.SortedOn(query.OrderBy))
	elapsed := time.Since(start)
	if err != nil || plan == nil {
		panic(fmt.Sprintf("fig4: left-deep measurement failed: %v", err))
	}
	return float64(elapsed.Nanoseconds()) / 1e6, plan.Cost.(relopt.Cost).Total()
}

// FormatLeftDeep renders the structural ablation.
func FormatLeftDeep(points []ShapePoint) string {
	var b strings.Builder
	b.WriteString("Search-space structure: bushy trees vs left-deep (no composite inner)\n")
	fmt.Fprintf(&b, "%-5s %10s %12s %14s %14s %8s\n",
		"rels", "bushy-ms", "leftdeep-ms", "bushy-cost", "leftdeep-cost", "plan-x")
	for _, p := range points {
		fmt.Fprintf(&b, "%-5d %10.3f %12.3f %14.1f %14.1f %7.2fx\n",
			p.Relations, p.BushyMS, p.LeftDeepMS, p.BushyCost, p.LeftDeepCost,
			p.LeftDeepCost/p.BushyCost)
	}
	return b.String()
}
