package fig4

import (
	"math"
	"testing"

	"repro/internal/datagen"
)

// quick is a reduced experiment configuration for tests.
func quick() Config {
	return Config{
		Seed:            7,
		QueriesPerLevel: 5,
		MinRelations:    2,
		MaxRelations:    6,
		Shape:           datagen.ShapeRandom,
	}.Defaults()
}

// TestFigure4Shape checks the qualitative results the paper reports:
// the baseline never beats Volcano on time or plan quality; the time gap
// grows with query complexity; plan quality is (near-)equal for small
// queries and degrades for complex ones.
func TestFigure4Shape(t *testing.T) {
	points := Run(quick())
	t.Logf("\n%s", Format(points))

	if len(points) != 5 {
		t.Fatalf("points = %d, want 5", len(points))
	}
	for _, p := range points {
		if p.ExodusCompleted == 0 {
			t.Errorf("rels=%d: no completed baseline runs", p.Relations)
			continue
		}
		if p.QualityRatio < 1-1e-9 {
			t.Errorf("rels=%d: baseline plans cheaper than the DP optimum (ratio %.3f)",
				p.Relations, p.QualityRatio)
		}
	}
	small, large := points[0], points[len(points)-1]
	if large.ExodusMS/large.VolcanoMS <= small.ExodusMS/small.VolcanoMS {
		t.Errorf("time gap did not grow: %.1fx at %d rels vs %.1fx at %d rels",
			small.ExodusMS/small.VolcanoMS, small.Relations,
			large.ExodusMS/large.VolcanoMS, large.Relations)
	}
}

// TestAblationInvariants checks that disabling pruning or failure
// memoization never changes the plan (the optimum is unique in cost) but
// never reduces search effort, and that glue mode produces plans at
// least as expensive as property-directed search.
func TestAblationInvariants(t *testing.T) {
	cfg := quick()
	cfg.MaxRelations = 5
	points := RunAblation(cfg)
	t.Logf("\n%s", FormatAblation(points))

	byVariant := map[string]map[int]AblationPoint{}
	for _, p := range points {
		if byVariant[p.Variant] == nil {
			byVariant[p.Variant] = map[int]AblationPoint{}
		}
		byVariant[p.Variant][p.Relations] = p
	}
	for n := cfg.MinRelations; n <= cfg.MaxRelations; n++ {
		def := byVariant["default"][n]
		noPrune := byVariant["no-pruning"][n]
		noMemo := byVariant["no-failure-memo"][n]
		glue := byVariant["glue-mode"][n]

		if math.Abs(noPrune.MeanCost-def.MeanCost) > 1e-6*def.MeanCost {
			t.Errorf("rels=%d: no-pruning cost %.3f != default %.3f",
				n, noPrune.MeanCost, def.MeanCost)
		}
		if math.Abs(noMemo.MeanCost-def.MeanCost) > 1e-6*def.MeanCost {
			t.Errorf("rels=%d: no-failure-memo cost %.3f != default %.3f",
				n, noMemo.MeanCost, def.MeanCost)
		}
		if glue.MeanCost < def.MeanCost-1e-6*def.MeanCost {
			t.Errorf("rels=%d: glue-mode cost %.3f beats property-directed %.3f",
				n, glue.MeanCost, def.MeanCost)
		}
		if noPrune.MeanGoals < def.MeanGoals {
			t.Errorf("rels=%d: no-pruning searched fewer goals (%f < %f)",
				n, noPrune.MeanGoals, def.MeanGoals)
		}
	}
}

// TestMemoryClaim verifies the paper's report that the Volcano-generated
// optimizer performed exhaustive search for all test queries with less
// than 1 MB of work space.
func TestMemoryClaim(t *testing.T) {
	cfg := quick()
	points := Run(cfg)
	for _, p := range points {
		if p.VolcanoMemBytes >= 1<<20 {
			t.Errorf("rels=%d: volcano memo %d bytes, want < 1 MB", p.Relations, p.VolcanoMemBytes)
		}
	}
}

// TestAltProps checks the value of alternative input property
// combinations: with every shared order offered, an ORDER BY on a
// non-leading column is never more expensive than with the single fixed
// order, and strictly cheaper for at least one column.
func TestAltProps(t *testing.T) {
	points := RunAltProps()
	t.Logf("\n%s", FormatAltProps(points))
	strictly := false
	for _, p := range points {
		if p.WithAlts > p.SingleOrder+1e-9 {
			t.Errorf("order-by col %d: alternatives made the plan worse (%.1f > %.1f)",
				p.OrderByCol, p.WithAlts, p.SingleOrder)
		}
		if p.WithAlts < p.SingleOrder-1e-9 {
			strictly = true
		}
	}
	if !strictly {
		t.Error("alternatives never improved any plan")
	}
}

// TestLeftDeepRestriction: restricting the physical space to left-deep
// trees through implementation-rule condition code never produces a
// cheaper plan than the full bushy space, and the optimizer searches
// fewer physical alternatives.
func TestLeftDeepRestriction(t *testing.T) {
	cfg := quick()
	points := RunLeftDeep(cfg)
	t.Logf("\n%s", FormatLeftDeep(points))
	strictly := false
	for _, p := range points {
		if p.BushyCost > p.LeftDeepCost+1e-6*p.LeftDeepCost {
			t.Errorf("rels=%d: bushy plans worse than left-deep (%.1f > %.1f)",
				p.Relations, p.BushyCost, p.LeftDeepCost)
		}
		if p.BushyCost < p.LeftDeepCost-1e-6*p.LeftDeepCost {
			strictly = true
		}
	}
	if !strictly {
		t.Log("note: no query in this sample benefited from bushy shapes")
	}
}

// TestHeuristicTradeoff: restricting the moves pursued per goal must
// never yield a cheaper plan than exhaustive search, and the exhaustive
// configuration never fails.
func TestHeuristicTradeoff(t *testing.T) {
	cfg := quick()
	cfg.MaxRelations = 5
	points := RunHeuristic(cfg)
	t.Logf("\n%s", FormatHeuristic(points))
	exhaustive := map[int]HeuristicPoint{}
	for _, p := range points {
		if p.TopMoves == 0 {
			exhaustive[p.Relations] = p
			if p.Failed != 0 {
				t.Errorf("exhaustive search failed %d queries at %d relations", p.Failed, p.Relations)
			}
		}
	}
	for _, p := range points {
		if p.TopMoves == 0 || p.Failed > 0 {
			continue
		}
		ex := exhaustive[p.Relations]
		if p.MeanCost < ex.MeanCost-1e-6*ex.MeanCost {
			t.Errorf("top-%d at %d relations beat exhaustive search: %.1f < %.1f",
				p.TopMoves, p.Relations, p.MeanCost, ex.MeanCost)
		}
	}
}

// TestSetOpsReordering: cost-based N-way intersection never loses to the
// written order and wins strictly for some N.
func TestSetOpsReordering(t *testing.T) {
	points := RunSetOps()
	t.Logf("\n%s", FormatSetOps(points))
	strictly := false
	for _, p := range points {
		if p.Reordered > p.Frozen+1e-9 {
			t.Errorf("N=%d: reordering produced a worse plan (%.1f > %.1f)", p.N, p.Reordered, p.Frozen)
		}
		if p.Reordered < p.Frozen-1e-9 {
			strictly = true
		}
	}
	if !strictly {
		t.Error("reordering never improved any plan")
	}
}
