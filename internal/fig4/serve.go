package fig4

import (
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/load"
	"repro/internal/serve"
	"repro/internal/vdb"
)

// ServeConfig shapes the serving-tier experiment. Zero fields get
// defaults.
type ServeConfig struct {
	Seed   int64
	Tables int   // generated tables R1..Rn
	Rows   int64 // rows per table
	// CacheBytes is the daemon's plan-cache budget.
	CacheBytes int64
	// MaxConcurrent is the daemon's admission capacity (0 = serve
	// default).
	MaxConcurrent int
	// Statements is the workload mix size; Duration is the length of
	// each measured phase (unloaded, then loaded).
	Statements int
	Duration   time.Duration
}

func (c ServeConfig) defaults() ServeConfig {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Tables == 0 {
		c.Tables = 6
	}
	if c.Rows == 0 {
		c.Rows = 5000
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 4 << 20
	}
	if c.Statements == 0 {
		c.Statements = 16
	}
	if c.Duration == 0 {
		c.Duration = 3 * time.Second
	}
	return c
}

// ServeResult is the serving-tier experiment's report section: one
// open-loop run against an unloaded daemon and one at roughly twice
// the tier's measured capacity, both gated on reference row
// fingerprints collected before any load. Mismatches is the result
// gate: any non-zero value means a plan served under pressure
// (degraded, cached, or coalesced) returned different rows than the
// unloaded server.
type ServeResult struct {
	// Seed is the datagen seed the database was generated from.
	Seed          int64 `json:"seed"`
	Tables        int   `json:"tables"`
	Rows          int64 `json:"rows"`
	MaxConcurrent int   `json:"max_concurrent"`
	// UnloadedRPS / LoadedRPS are the offered (not achieved) rates.
	UnloadedRPS float64      `json:"unloaded_rps"`
	LoadedRPS   float64      `json:"loaded_rps"`
	Unloaded    *load.Report `json:"unloaded"`
	Loaded      *load.Report `json:"loaded"`
	// Mismatches sums both phases' result mismatches.
	Mismatches int64 `json:"mismatches"`
}

// RunServe starts an in-process volcano-serve daemon on a loopback
// port (the full HTTP path, not a handler shortcut), collects
// reference fingerprints for the workload, measures an unloaded
// open-loop run, estimates the tier's capacity from its mean service
// time, and then offers roughly twice that capacity to observe the
// overload ladder: degraded plans, plan-cache serving, and shedding —
// while the reference gate proves every completed response identical
// to the unloaded server's.
func RunServe(cfg ServeConfig) (ServeResult, error) {
	cfg = cfg.defaults()
	out := ServeResult{Seed: cfg.Seed, Tables: cfg.Tables, Rows: cfg.Rows}

	src := datagen.New(cfg.Seed)
	cat := src.ScaledCatalog(cfg.Tables, cfg.Rows)
	db := vdb.Open(cat, src.Rows(cat), &vdb.Options{
		Guided:     true,
		CacheBytes: cfg.CacheBytes,
	})
	s := serve.New(db, &serve.Config{MaxConcurrent: cfg.MaxConcurrent})
	out.MaxConcurrent = s.Config().MaxConcurrent

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return out, err
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		<-done
	}()
	base := "http://" + l.Addr().String()

	workload := load.ChainWorkload(cfg.Tables, cfg.Statements)
	ref, err := load.Collect(context.Background(), base, nil, workload)
	if err != nil {
		return out, err
	}

	// Phase 1: a light open-loop run far below capacity.
	out.UnloadedRPS = 50
	out.Unloaded, err = load.Run(context.Background(), load.Options{
		BaseURL:   base,
		Rate:      out.UnloadedRPS,
		Duration:  cfg.Duration,
		Workload:  workload,
		Reference: ref,
	})
	if err != nil {
		return out, err
	}

	// Phase 2: offer about twice the tier's capacity. Capacity is
	// slots divided by mean service time; the unloaded mean latency is
	// the service-time estimate (no queueing at 50 rps).
	meanUS := out.Unloaded.Latency.MeanUS
	if meanUS <= 0 {
		meanUS = 1000
	}
	capacity := float64(out.MaxConcurrent) / (meanUS / 1e6)
	out.LoadedRPS = 2 * capacity
	if out.LoadedRPS < 100 {
		out.LoadedRPS = 100
	}
	if out.LoadedRPS > 5000 {
		out.LoadedRPS = 5000
	}
	out.Loaded, err = load.Run(context.Background(), load.Options{
		BaseURL:   base,
		Rate:      out.LoadedRPS,
		Duration:  cfg.Duration,
		Workload:  workload,
		Reference: ref,
	})
	if err != nil {
		return out, err
	}

	out.Mismatches = out.Unloaded.Mismatches + out.Loaded.Mismatches
	return out, nil
}

// FormatServe renders the serving experiment's table.
func FormatServe(r ServeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving tier under open-loop load (%d tables × %d rows, %d slots)\n",
		r.Tables, r.Rows, r.MaxConcurrent)
	fmt.Fprintf(&b, "%-9s %9s %9s %9s %9s %9s %9s %9s %8s %8s\n",
		"phase", "offered", "ok", "shed", "p50µs", "p95µs", "p99µs", "maxµs", "degr%", "cache%")
	row := func(name string, rps float64, rep *load.Report) {
		if rep == nil {
			return
		}
		fmt.Fprintf(&b, "%-9s %9.0f %9d %9d %9d %9d %9d %9d %7.1f%% %7.1f%%\n",
			name, rps, rep.OK, rep.Shed,
			rep.Latency.P50US, rep.Latency.P95US, rep.Latency.P99US, rep.Latency.MaxUS,
			100*rep.DegradedRate, 100*rep.CacheHitRate)
	}
	row("unloaded", r.UnloadedRPS, r.Unloaded)
	row("loaded", r.LoadedRPS, r.Loaded)
	if r.Mismatches == 0 {
		fmt.Fprintf(&b, "result identity: every completed response matched the unloaded reference\n")
	} else {
		fmt.Fprintf(&b, "RESULT MISMATCHES: %d\n", r.Mismatches)
	}
	return b.String()
}
