package rel

import (
	"fmt"

	"repro/internal/core"
)

// ColStat is the optimizer's estimate for one column of an intermediate
// result.
type ColStat struct {
	// Distinct is the estimated number of distinct values.
	Distinct float64
	// Min and Max bound the estimated value domain.
	Min, Max int64
	// Width is the column's width in bytes.
	Width int
}

// Props are the logical properties of a relational intermediate result:
// schema, expected size, and per-column statistics. They are derived
// from the logical expression before any optimization and are therefore
// identical for every member of an equivalence class. Selectivity
// estimation is encapsulated here, in the model's logical property
// functions, as the paper prescribes.
type Props struct {
	// Cat is the catalog the properties were derived against.
	Cat *Catalog
	// Cols is the output schema, in column order.
	Cols []ColID
	// Rows is the estimated output cardinality.
	Rows float64
	// RowBytes is the estimated record width.
	RowBytes int
	// Tables is a bitset (by Table.Index) of the base relations that
	// contribute rows to this result.
	Tables uint64
	// Stats holds per-column estimates for every column in Cols.
	Stats map[ColID]ColStat
}

var _ core.LogicalProps = (*Props)(nil)

// String summarizes the properties.
func (p *Props) String() string {
	return fmt.Sprintf("rows=%.0f cols=%d width=%dB", p.Rows, len(p.Cols), p.RowBytes)
}

// HasCol reports whether the schema contains the column.
func (p *Props) HasCol(c ColID) bool {
	_, ok := p.Stats[c]
	return ok
}

// HasCols reports whether the schema contains every listed column.
func (p *Props) HasCols(cols []ColID) bool {
	for _, c := range cols {
		if !p.HasCol(c) {
			return false
		}
	}
	return true
}

// Pages returns the number of storage pages the result occupies at the
// given page size.
func (p *Props) Pages(pageBytes int) float64 {
	if pageBytes <= 0 || p.RowBytes <= 0 {
		return 0
	}
	rowsPerPage := float64(pageBytes / p.RowBytes)
	if rowsPerPage < 1 {
		rowsPerPage = 1
	}
	pages := p.Rows / rowsPerPage
	if pages < 1 && p.Rows > 0 {
		pages = 1
	}
	return pages
}

// clampDistinct caps every column's distinct count at the row estimate.
func (p *Props) clampDistinct() {
	for c, s := range p.Stats {
		if s.Distinct > p.Rows {
			s.Distinct = p.Rows
			if s.Distinct < 1 {
				s.Distinct = 1
			}
			p.Stats[c] = s
		}
	}
}

// DeriveProps computes the logical properties of an expression from its
// operator and the already-derived properties of its inputs. It is the
// model's property function for every logical operator.
func DeriveProps(cat *Catalog, op core.LogicalOp, inputs []core.LogicalProps) *Props {
	in := make([]*Props, len(inputs))
	for i, lp := range inputs {
		in[i] = lp.(*Props)
	}
	switch o := op.(type) {
	case *Get:
		return deriveGet(cat, o)
	case *Select:
		return deriveSelect(o, in[0])
	case *Join:
		return deriveJoin(o, in[0], in[1])
	case *Project:
		return deriveProject(o, in[0])
	case *Intersect:
		return deriveIntersect(in[0], in[1])
	case *Union:
		return deriveUnion(in[0], in[1])
	case *GroupBy:
		return deriveGroupBy(o, in[0])
	}
	panic(fmt.Sprintf("rel: unknown logical operator %T", op))
}

func deriveGet(cat *Catalog, g *Get) *Props {
	t := g.Tab
	p := &Props{
		Cat:      cat,
		Cols:     append([]ColID(nil), t.Columns...),
		Rows:     float64(t.Rows),
		RowBytes: t.RowBytes,
		Tables:   1 << uint(t.Index),
		Stats:    make(map[ColID]ColStat, len(t.Columns)),
	}
	width := t.RowBytes
	if len(t.Columns) > 0 {
		width = t.RowBytes / len(t.Columns)
	}
	for _, c := range t.Columns {
		m := cat.Column(c)
		p.Stats[c] = ColStat{Distinct: float64(m.Distinct), Min: m.Min, Max: m.Max, Width: width}
	}
	return p
}

// Selectivity estimates the fraction of rows satisfying a predicate
// against an input with the given properties, using the System R
// formulas: 1/distinct for equality with a constant, domain fractions
// for ranges, and 1/max(d1,d2) for column equality.
func Selectivity(pred Pred, in *Props) float64 {
	if pred.IsParam() {
		// Incompletely specified query: the constant binds at run
		// time, so the estimate is an assumption.
		if in.Cat != nil && in.Cat.ParamSelectivity > 0 {
			return in.Cat.ParamSelectivity
		}
		return 1.0 / 3
	}
	ls, ok := in.Stats[pred.Col]
	if !ok {
		return 0.1
	}
	if pred.IsColCol() {
		rs, ok := in.Stats[pred.OtherCol]
		if !ok {
			return 0.1
		}
		switch pred.Op {
		case CmpEQ:
			return 1 / maxf(ls.Distinct, rs.Distinct, 1)
		case CmpNE:
			return 1 - 1/maxf(ls.Distinct, rs.Distinct, 1)
		default:
			return 1.0 / 3
		}
	}
	switch pred.Op {
	case CmpEQ:
		return 1 / maxf(ls.Distinct, 1, 1)
	case CmpNE:
		return 1 - 1/maxf(ls.Distinct, 1, 1)
	default:
		return rangeFraction(pred.Op, pred.Val, ls.Min, ls.Max)
	}
}

// rangeFraction estimates the selectivity of a range comparison against
// a uniform integer domain [min, max].
func rangeFraction(op CmpOp, val, min, max int64) float64 {
	if max <= min {
		return 1.0 / 3 // unknown domain: System R default
	}
	span := float64(max - min)
	var frac float64
	switch op {
	case CmpLT:
		frac = float64(val-min) / span
	case CmpLE:
		frac = float64(val-min+1) / span
	case CmpGT:
		frac = float64(max-val) / span
	case CmpGE:
		frac = float64(max-val+1) / span
	default:
		frac = 1.0 / 3
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// ScalarSelectivity estimates the fraction of rows a column-constant
// comparison keeps, given the column's statistics. It is the
// selectivity formula behind Selectivity, exported so the choose-plan
// operator can re-estimate at run time once a parameter is bound.
func ScalarSelectivity(op CmpOp, val int64, st ColStat) float64 {
	switch op {
	case CmpEQ:
		return 1 / maxf(st.Distinct, 1, 1)
	case CmpNE:
		return 1 - 1/maxf(st.Distinct, 1, 1)
	default:
		return rangeFraction(op, val, st.Min, st.Max)
	}
}

func maxf(a, b, floor float64) float64 {
	m := a
	if b > m {
		m = b
	}
	if m < floor {
		m = floor
	}
	return m
}

func deriveSelect(s *Select, in *Props) *Props {
	sel := Selectivity(s.Pred, in)
	p := &Props{
		Cat:      in.Cat,
		Cols:     in.Cols,
		Rows:     in.Rows * sel,
		RowBytes: in.RowBytes,
		Tables:   in.Tables,
		Stats:    make(map[ColID]ColStat, len(in.Stats)),
	}
	for c, st := range in.Stats {
		p.Stats[c] = st
	}
	// Equality with a known constant pins the column to one value.
	if !s.Pred.IsColCol() && !s.Pred.IsParam() && s.Pred.Op == CmpEQ {
		if st, ok := p.Stats[s.Pred.Col]; ok {
			st.Distinct = 1
			st.Min, st.Max = s.Pred.Val, s.Pred.Val
			p.Stats[s.Pred.Col] = st
		}
	}
	p.clampDistinct()
	return p
}

func deriveJoin(j *Join, l, r *Props) *Props {
	ls, lok := l.Stats[j.A]
	rs, rok := r.Stats[j.B]
	if !lok || !rok {
		// The pair may sit the other way around relative to the
		// canonicalized argument order.
		ls, lok = l.Stats[j.B]
		rs, rok = r.Stats[j.A]
	}
	sel := 0.1
	if lok && rok {
		sel = 1 / maxf(ls.Distinct, rs.Distinct, 1)
	}
	p := &Props{
		Cat:      l.Cat,
		Cols:     append(append([]ColID(nil), l.Cols...), r.Cols...),
		Rows:     l.Rows * r.Rows * sel,
		RowBytes: l.RowBytes + r.RowBytes,
		Tables:   l.Tables | r.Tables,
		Stats:    make(map[ColID]ColStat, len(l.Stats)+len(r.Stats)),
	}
	for c, st := range l.Stats {
		p.Stats[c] = st
	}
	for c, st := range r.Stats {
		p.Stats[c] = st
	}
	// The equated columns share the smaller distinct count after the join.
	if lok && rok {
		d := ls.Distinct
		if rs.Distinct < d {
			d = rs.Distinct
		}
		for _, c := range []ColID{j.A, j.B} {
			if st, ok := p.Stats[c]; ok {
				st.Distinct = d
				p.Stats[c] = st
			}
		}
	}
	p.clampDistinct()
	return p
}

func deriveProject(pr *Project, in *Props) *Props {
	p := &Props{
		Cat:    in.Cat,
		Cols:   append([]ColID(nil), pr.Cols...),
		Rows:   in.Rows,
		Tables: in.Tables,
		Stats:  make(map[ColID]ColStat, len(pr.Cols)),
	}
	for _, c := range pr.Cols {
		st := in.Stats[c]
		p.Stats[c] = st
		p.RowBytes += st.Width
	}
	if p.RowBytes == 0 {
		p.RowBytes = 8
	}
	p.clampDistinct()
	return p
}

func deriveIntersect(l, r *Props) *Props {
	rows := l.Rows
	if r.Rows < rows {
		rows = r.Rows
	}
	p := &Props{
		Cat:      l.Cat,
		Cols:     l.Cols,
		Rows:     rows / 2, // heuristic: half the smaller input matches
		RowBytes: l.RowBytes,
		Tables:   l.Tables | r.Tables,
		Stats:    make(map[ColID]ColStat, len(l.Stats)),
	}
	for c, st := range l.Stats {
		p.Stats[c] = st
	}
	p.clampDistinct()
	return p
}

func deriveUnion(l, r *Props) *Props {
	overlap := l.Rows
	if r.Rows < overlap {
		overlap = r.Rows
	}
	p := &Props{
		Cat:      l.Cat,
		Cols:     l.Cols,
		Rows:     l.Rows + r.Rows - overlap/2, // overlap estimate matches intersection's
		RowBytes: l.RowBytes,
		Tables:   l.Tables | r.Tables,
		Stats:    make(map[ColID]ColStat, len(l.Stats)),
	}
	for c, st := range l.Stats {
		p.Stats[c] = st
	}
	p.clampDistinct()
	return p
}

func deriveGroupBy(g *GroupBy, in *Props) *Props {
	groups := 1.0
	for _, c := range g.GroupCols {
		if st, ok := in.Stats[c]; ok {
			groups *= maxf(st.Distinct, 1, 1)
		}
	}
	if groups > in.Rows {
		groups = in.Rows
	}
	if groups < 1 {
		groups = 1
	}
	p := &Props{
		Cat:    in.Cat,
		Cols:   append([]ColID(nil), g.GroupCols...),
		Rows:   groups,
		Tables: in.Tables,
		Stats:  make(map[ColID]ColStat, len(g.GroupCols)),
	}
	for _, c := range g.GroupCols {
		st := in.Stats[c]
		p.Stats[c] = st
		p.RowBytes += st.Width
	}
	// Aggregate outputs are appended as 8-byte values; they carry no
	// catalog columns of their own.
	p.RowBytes += 8 * len(g.Aggs)
	if p.RowBytes == 0 {
		p.RowBytes = 8
	}
	p.clampDistinct()
	return p
}
