package rel_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/rel"
)

// derive walks a logical tree, deriving properties bottom-up.
func derive(cat *rel.Catalog, t *core.ExprTree) *rel.Props {
	inputs := make([]core.LogicalProps, len(t.Children))
	for i, c := range t.Children {
		inputs[i] = derive(cat, c)
	}
	return rel.DeriveProps(cat, t.Op, inputs)
}

func TestDeriveGet(t *testing.T) {
	cat := demoCatalog(t)
	p := derive(cat, core.Node(&rel.Get{Tab: cat.Table("emp")}))
	if p.Rows != 1000 || p.RowBytes != 100 || len(p.Cols) != 2 {
		t.Fatalf("props = %+v", p)
	}
	if !p.HasCol(cat.ColumnID("emp", "id")) {
		t.Fatal("schema missing id")
	}
	if p.Tables != 1<<0 {
		t.Fatalf("tables bitset = %b", p.Tables)
	}
}

func TestDeriveSelectEquality(t *testing.T) {
	cat := demoCatalog(t)
	dept := cat.ColumnID("emp", "dept")
	tree := core.Node(&rel.Select{Pred: rel.Pred{Col: dept, Op: rel.CmpEQ, Val: 7}},
		core.Node(&rel.Get{Tab: cat.Table("emp")}))
	p := derive(cat, tree)
	if math.Abs(p.Rows-20) > 1e-9 { // 1000 / 50 distinct
		t.Fatalf("rows = %f, want 20", p.Rows)
	}
	if st := p.Stats[dept]; st.Distinct != 1 || st.Min != 7 || st.Max != 7 {
		t.Fatalf("pinned column stats = %+v", st)
	}
}

func TestDeriveSelectRange(t *testing.T) {
	cat := demoCatalog(t)
	dept := cat.ColumnID("emp", "dept")
	tree := core.Node(&rel.Select{Pred: rel.Pred{Col: dept, Op: rel.CmpLT, Val: 26}},
		core.Node(&rel.Get{Tab: cat.Table("emp")}))
	p := derive(cat, tree)
	want := 1000 * float64(26-1) / float64(50-1)
	if math.Abs(p.Rows-want) > 1e-6 {
		t.Fatalf("rows = %f, want %f", p.Rows, want)
	}
}

func TestDeriveJoin(t *testing.T) {
	cat := demoCatalog(t)
	empDept := cat.ColumnID("emp", "dept")
	deptID := cat.ColumnID("dept", "id")
	tree := core.Node(rel.NewJoin(empDept, deptID),
		core.Node(&rel.Get{Tab: cat.Table("emp")}),
		core.Node(&rel.Get{Tab: cat.Table("dept")}))
	p := derive(cat, tree)
	// 1000 * 50 / max(50, 50) = 1000.
	if math.Abs(p.Rows-1000) > 1e-9 {
		t.Fatalf("rows = %f, want 1000", p.Rows)
	}
	if len(p.Cols) != 3 || p.RowBytes != 180 {
		t.Fatalf("schema = %v width=%d", p.Cols, p.RowBytes)
	}
	if p.Tables != 0b11 {
		t.Fatalf("tables = %b", p.Tables)
	}
}

func TestDeriveProjectWidth(t *testing.T) {
	cat := demoCatalog(t)
	id := cat.ColumnID("emp", "id")
	tree := core.Node(&rel.Project{Cols: []rel.ColID{id}},
		core.Node(&rel.Get{Tab: cat.Table("emp")}))
	p := derive(cat, tree)
	if len(p.Cols) != 1 || p.Cols[0] != id {
		t.Fatalf("schema = %v", p.Cols)
	}
	if p.RowBytes != 50 { // 100 bytes over 2 columns
		t.Fatalf("width = %d, want 50", p.RowBytes)
	}
}

func TestDeriveGroupBy(t *testing.T) {
	cat := demoCatalog(t)
	dept := cat.ColumnID("emp", "dept")
	tree := core.Node(&rel.GroupBy{GroupCols: []rel.ColID{dept}, Aggs: []rel.Agg{{Fn: rel.AggCount}}},
		core.Node(&rel.Get{Tab: cat.Table("emp")}))
	p := derive(cat, tree)
	if p.Rows != 50 {
		t.Fatalf("groups = %f, want 50", p.Rows)
	}
}

func TestDeriveIntersect(t *testing.T) {
	cat := demoCatalog(t)
	get := func() *core.ExprTree { return core.Node(&rel.Get{Tab: cat.Table("dept")}) }
	p := derive(cat, core.Node(&rel.Intersect{}, get(), get()))
	if p.Rows != 25 { // half the smaller input
		t.Fatalf("rows = %f, want 25", p.Rows)
	}
}

func TestPages(t *testing.T) {
	cat := demoCatalog(t)
	p := derive(cat, core.Node(&rel.Get{Tab: cat.Table("emp")}))
	// 4096/100 = 40 rows per page; 1000/40 = 25 pages.
	if got := p.Pages(4096); math.Abs(got-25) > 1e-9 {
		t.Fatalf("pages = %f, want 25", got)
	}
	if got := p.Pages(0); got != 0 {
		t.Fatalf("pages with zero page size = %f", got)
	}
}

// randPred generates predicates over the emp.dept column domain.
type randPred rel.Pred

func (randPred) Generate(r *rand.Rand, _ int) reflect.Value {
	ops := []rel.CmpOp{rel.CmpEQ, rel.CmpNE, rel.CmpLT, rel.CmpLE, rel.CmpGT, rel.CmpGE}
	return reflect.ValueOf(randPred{
		Op:  ops[r.Intn(len(ops))],
		Val: int64(r.Intn(60)) - 5, // includes out-of-domain values
	})
}

// TestQuickSelectivityBounds: selectivity estimates always land in
// [0, 1], and derived row counts never go negative or exceed the input.
func TestQuickSelectivityBounds(t *testing.T) {
	cat := demoCatalog(t)
	dept := cat.ColumnID("emp", "dept")
	base := derive(cat, core.Node(&rel.Get{Tab: cat.Table("emp")}))
	check := func(rp randPred) bool {
		p := rel.Pred{Col: dept, Op: rp.Op, Val: rp.Val}
		sel := rel.Selectivity(p, base)
		if sel < 0 || sel > 1 {
			t.Logf("selectivity(%s) = %f", p, sel)
			return false
		}
		out := rel.DeriveProps(cat, &rel.Select{Pred: p}, []core.LogicalProps{base})
		if out.Rows < 0 || out.Rows > base.Rows+1e-9 {
			t.Logf("rows %f outside [0, %f]", out.Rows, base.Rows)
			return false
		}
		for _, st := range out.Stats {
			if st.Distinct > out.Rows+1 {
				t.Logf("distinct %f > rows %f", st.Distinct, out.Rows)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestOpIdentity: ArgsEqual/ArgsHash agree, and NewJoin canonicalizes.
func TestOpIdentity(t *testing.T) {
	cat := demoCatalog(t)
	a, b := cat.ColumnID("emp", "dept"), cat.ColumnID("dept", "id")
	j1, j2 := rel.NewJoin(a, b), rel.NewJoin(b, a)
	if !j1.ArgsEqual(j2) || j1.ArgsHash() != j2.ArgsHash() {
		t.Fatal("NewJoin does not canonicalize the pair")
	}
	s1 := &rel.Select{Pred: rel.Pred{Col: a, Op: rel.CmpEQ, Val: 1}}
	s2 := &rel.Select{Pred: rel.Pred{Col: a, Op: rel.CmpEQ, Val: 2}}
	if s1.ArgsEqual(s2) {
		t.Fatal("different selections compare equal")
	}
	g1 := &rel.Get{Tab: cat.Table("emp")}
	g2 := &rel.Get{Tab: cat.Table("dept")}
	if g1.ArgsEqual(g2) || g1.ArgsHash() == g2.ArgsHash() {
		t.Fatal("different scans conflate")
	}
	ops := []core.LogicalOp{g1, s1, j1,
		&rel.Project{Cols: []rel.ColID{a}},
		&rel.Intersect{},
		&rel.GroupBy{GroupCols: []rel.ColID{a}, Aggs: []rel.Agg{{Fn: rel.AggSum, Col: b}}},
	}
	for _, op := range ops {
		if op.Name() == "" || op.String() == "" {
			t.Errorf("%T has empty display name", op)
		}
		if !op.ArgsEqual(op) {
			t.Errorf("%T not equal to itself", op)
		}
	}
}
