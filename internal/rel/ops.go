package rel

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Operator kinds of the relational logical algebra. The optimizer
// generator translates operator names into these small integers so that
// pattern matching compares integers, never strings.
const (
	// KindGet scans a stored relation. Arity 0.
	KindGet core.OpKind = iota + 1
	// KindSelect filters rows by one predicate conjunct. Arity 1.
	KindSelect
	// KindJoin is an equi-join on one column pair. Arity 2.
	KindJoin
	// KindProject narrows the schema to a column list. Arity 1.
	KindProject
	// KindIntersect is set intersection of two inputs with identical
	// schemas. Arity 2.
	KindIntersect
	// KindGroupBy groups on a column list and computes aggregates.
	// Arity 1.
	KindGroupBy
	// KindUnion is set union of two inputs with identical schemas.
	// Arity 2.
	KindUnion
)

// Get is the logical scan of a stored relation.
type Get struct {
	// Tab is the catalog entry for the relation.
	Tab *Table
}

// Kind returns KindGet.
func (g *Get) Kind() core.OpKind { return KindGet }

// Arity returns 0: GET has no algebra inputs.
func (g *Get) Arity() int { return 0 }

// ArgsEqual reports whether other scans the same relation.
func (g *Get) ArgsEqual(other core.LogicalOp) bool {
	return g.Tab.Name == other.(*Get).Tab.Name
}

// ArgsHash hashes the relation name.
func (g *Get) ArgsHash() uint64 {
	h := fnvOffset
	for i := 0; i < len(g.Tab.Name); i++ {
		h = fnvMix(h, uint64(g.Tab.Name[i]))
	}
	return h
}

// Name returns "GET".
func (g *Get) Name() string { return "GET" }

// String renders the operator with its relation.
func (g *Get) String() string { return "GET(" + g.Tab.Name + ")" }

// Select filters its input by a single predicate conjunct; conjunctions
// are stacked SELECT operators.
type Select struct {
	// Pred is the filter conjunct.
	Pred Pred
}

// Kind returns KindSelect.
func (s *Select) Kind() core.OpKind { return KindSelect }

// Arity returns 1.
func (s *Select) Arity() int { return 1 }

// ArgsEqual reports whether other filters by the same conjunct.
func (s *Select) ArgsEqual(other core.LogicalOp) bool {
	return s.Pred == other.(*Select).Pred
}

// ArgsHash hashes the predicate.
func (s *Select) ArgsHash() uint64 { return s.Pred.hash() }

// Name returns "SELECT".
func (s *Select) Name() string { return "SELECT" }

// String renders the operator with its predicate.
func (s *Select) String() string { return "SELECT(" + s.Pred.String() + ")" }

// Join is an equi-join on one column pair. The pair is stored in
// canonical (smaller ID first) order so that commuted join expressions
// differ only in their input classes, letting the memo collapse
// duplicate derivations.
type Join struct {
	// A and B are the equated columns, A < B.
	A, B ColID
}

// NewJoin builds a Join with the column pair in canonical order.
func NewJoin(a, b ColID) *Join {
	if b < a {
		a, b = b, a
	}
	return &Join{A: a, B: b}
}

// Kind returns KindJoin.
func (j *Join) Kind() core.OpKind { return KindJoin }

// Arity returns 2.
func (j *Join) Arity() int { return 2 }

// ArgsEqual reports whether other joins on the same column pair.
func (j *Join) ArgsEqual(other core.LogicalOp) bool {
	o := other.(*Join)
	return j.A == o.A && j.B == o.B
}

// ArgsHash hashes the column pair.
func (j *Join) ArgsHash() uint64 {
	return fnvMix(fnvMix(fnvOffset, uint64(uint32(j.A))), uint64(uint32(j.B)))
}

// Name returns "JOIN".
func (j *Join) Name() string { return "JOIN" }

// String renders the operator with its predicate.
func (j *Join) String() string { return fmt.Sprintf("JOIN(c%d=c%d)", j.A, j.B) }

// Project narrows the schema to the listed columns, preserving order and
// without duplicate removal (the paper's join-followed-by-projection
// example relies on projection being foldable into a join procedure).
type Project struct {
	// Cols is the output column list.
	Cols []ColID
}

// Kind returns KindProject.
func (p *Project) Kind() core.OpKind { return KindProject }

// Arity returns 1.
func (p *Project) Arity() int { return 1 }

// ArgsEqual compares column lists elementwise.
func (p *Project) ArgsEqual(other core.LogicalOp) bool {
	o := other.(*Project)
	if len(p.Cols) != len(o.Cols) {
		return false
	}
	for i, c := range p.Cols {
		if c != o.Cols[i] {
			return false
		}
	}
	return true
}

// ArgsHash hashes the column list.
func (p *Project) ArgsHash() uint64 {
	h := fnvOffset
	for _, c := range p.Cols {
		h = fnvMix(h, uint64(uint32(c)))
	}
	return h
}

// Name returns "PROJECT".
func (p *Project) Name() string { return "PROJECT" }

// String renders the operator with its column list.
func (p *Project) String() string {
	var b strings.Builder
	b.WriteString("PROJECT(")
	for i, c := range p.Cols {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "c%d", c)
	}
	b.WriteByte(')')
	return b.String()
}

// Intersect is set intersection of two inputs with identical schemas.
// Its sort-based implementation accepts any sort order shared by both
// inputs — the paper's motivating example for alternative input
// property combinations.
type Intersect struct{}

// Kind returns KindIntersect.
func (*Intersect) Kind() core.OpKind { return KindIntersect }

// Arity returns 2.
func (*Intersect) Arity() int { return 2 }

// ArgsEqual is always true: INTERSECT carries no arguments.
func (*Intersect) ArgsEqual(core.LogicalOp) bool { return true }

// ArgsHash returns a fixed hash: INTERSECT carries no arguments.
func (*Intersect) ArgsHash() uint64 { return fnvOffset }

// Name returns "INTERSECT".
func (*Intersect) Name() string { return "INTERSECT" }

// String returns "INTERSECT".
func (*Intersect) String() string { return "INTERSECT" }

// Union is set union of two inputs with identical schemas. Like
// intersection, its sort-based implementation accepts any shared input
// order and delivers it — the Section 5 argument that set operations
// deserve the same cost-based, order-aware optimization as joins.
type Union struct{}

// Kind returns KindUnion.
func (*Union) Kind() core.OpKind { return KindUnion }

// Arity returns 2.
func (*Union) Arity() int { return 2 }

// ArgsEqual is always true: UNION carries no arguments.
func (*Union) ArgsEqual(core.LogicalOp) bool { return true }

// ArgsHash returns a fixed hash: UNION carries no arguments.
func (*Union) ArgsHash() uint64 { return fnvOffset ^ 0x55 }

// Name returns "UNION".
func (*Union) Name() string { return "UNION" }

// String returns "UNION".
func (*Union) String() string { return "UNION" }

// AggFn names an aggregate function.
type AggFn int8

// Aggregate functions.
const (
	AggCount AggFn = iota
	AggSum
	AggMin
	AggMax
)

// String renders the aggregate function name.
func (f AggFn) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return "?"
}

// Agg is one aggregate computation in a GROUPBY.
type Agg struct {
	// Fn is the aggregate function.
	Fn AggFn
	// Col is the argument column; ignored for COUNT.
	Col ColID
}

// GroupBy groups rows on a column list and computes aggregates. Its
// sort-based implementation requires input sorted on the grouping
// columns, giving the optimizer another source of interesting orders.
type GroupBy struct {
	// GroupCols are the grouping columns.
	GroupCols []ColID
	// Aggs are the aggregates computed per group.
	Aggs []Agg
}

// Kind returns KindGroupBy.
func (g *GroupBy) Kind() core.OpKind { return KindGroupBy }

// Arity returns 1.
func (g *GroupBy) Arity() int { return 1 }

// ArgsEqual compares grouping columns and aggregate lists.
func (g *GroupBy) ArgsEqual(other core.LogicalOp) bool {
	o := other.(*GroupBy)
	if len(g.GroupCols) != len(o.GroupCols) || len(g.Aggs) != len(o.Aggs) {
		return false
	}
	for i, c := range g.GroupCols {
		if c != o.GroupCols[i] {
			return false
		}
	}
	for i, a := range g.Aggs {
		if a != o.Aggs[i] {
			return false
		}
	}
	return true
}

// ArgsHash hashes grouping columns and aggregates.
func (g *GroupBy) ArgsHash() uint64 {
	h := fnvOffset
	for _, c := range g.GroupCols {
		h = fnvMix(h, uint64(uint32(c)))
	}
	for _, a := range g.Aggs {
		h = fnvMix(h, uint64(uint8(a.Fn)))
		h = fnvMix(h, uint64(uint32(a.Col)))
	}
	return h
}

// Name returns "GROUPBY".
func (g *GroupBy) Name() string { return "GROUPBY" }

// String renders the operator with grouping columns and aggregates.
func (g *GroupBy) String() string {
	var b strings.Builder
	b.WriteString("GROUPBY(")
	for i, c := range g.GroupCols {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "c%d", c)
	}
	for _, a := range g.Aggs {
		fmt.Fprintf(&b, ";%s(c%d)", a.Fn, a.Col)
	}
	b.WriteByte(')')
	return b.String()
}
