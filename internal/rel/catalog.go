// Package rel defines a relational data model for the Volcano optimizer
// generator: a catalog with table and column statistics, a logical
// algebra (GET, SELECT, JOIN, PROJECT, INTERSECT, GROUPBY), scalar
// predicates, and logical properties with selectivity estimation.
//
// The package is one *model input* to the generator framework in
// internal/core — the framework itself knows nothing about relations.
// The companion package internal/relopt supplies the rules, algorithms,
// and cost functions that turn this algebra into a working optimizer.
package rel

import "fmt"

// ColID identifies a column within one Catalog. IDs are dense and
// stable; the zero value is invalid.
type ColID int32

// InvalidCol is the zero ColID.
const InvalidCol ColID = 0

// ColumnMeta carries the statistics the optimizer's selectivity
// estimation uses, System R style: distinct-value count and value range.
type ColumnMeta struct {
	// Table and Name identify the column.
	Table, Name string
	// Distinct is the number of distinct values in the column.
	Distinct int64
	// Min and Max bound the column's integer domain.
	Min, Max int64
}

// Qualified returns the column's display name, e.g. "emp.dept".
func (c *ColumnMeta) Qualified() string { return c.Table + "." + c.Name }

// Table describes one stored relation.
type Table struct {
	// Name is the relation name.
	Name string
	// Index is the table's dense registration index, used for table
	// bitsets in logical properties.
	Index int
	// Rows is the relation's cardinality.
	Rows int64
	// RowBytes is the record width in bytes.
	RowBytes int
	// Columns lists the table's columns in declaration order.
	Columns []ColID
	// Ordered is the table's stored (clustered) sort order; empty for
	// unordered heaps. A file scan delivers this order for free.
	Ordered []ColID
}

// Catalog holds table and column metadata plus statistics. It is the
// data the model's logical property functions — which encapsulate
// selectivity estimation — consult.
type Catalog struct {
	tables  map[string]*Table
	names   []string
	columns []ColumnMeta // columns[i] belongs to ColID i+1

	// ParamSelectivity is the selectivity assumed for parameterized
	// predicates (runtime-bound constants); zero means the System R
	// default of 1/3. Dynamic-plan generation sweeps this assumption.
	ParamSelectivity float64

	// version counts schema and statistics changes. Plan caches mix it
	// into query fingerprints, so every registration (and every explicit
	// BumpVersion) orphans plans optimized against the old catalog.
	version uint64
}

// Version returns the catalog's current version token; it changes on
// every AddTable/AddColumn and every BumpVersion call.
func (c *Catalog) Version() uint64 { return c.version }

// BumpVersion advances the version token. Call it after mutating
// statistics in place (reloading data, refreshing row counts) so that
// cached plans optimized under the old statistics stop being served.
func (c *Catalog) BumpVersion() { c.version++ }

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// AddTable registers a table with the given cardinality and row width
// and returns it. Columns are added separately with AddColumn.
func (c *Catalog) AddTable(name string, rows int64, rowBytes int) *Table {
	if _, dup := c.tables[name]; dup {
		panic(fmt.Sprintf("rel: duplicate table %q", name))
	}
	t := &Table{Name: name, Index: len(c.names), Rows: rows, RowBytes: rowBytes}
	c.tables[name] = t
	c.names = append(c.names, name)
	c.version++
	return t
}

// AddColumn registers a column on a table and returns its ColID.
func (c *Catalog) AddColumn(t *Table, name string, distinct, min, max int64) ColID {
	if distinct < 1 {
		distinct = 1
	}
	c.columns = append(c.columns, ColumnMeta{
		Table: t.Name, Name: name, Distinct: distinct, Min: min, Max: max,
	})
	id := ColID(len(c.columns))
	t.Columns = append(t.Columns, id)
	c.version++
	return id
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table { return c.tables[name] }

// Tables returns the catalog's table names in registration order.
func (c *Catalog) Tables() []string { return c.names }

// Column returns the metadata for a column ID.
func (c *Catalog) Column(id ColID) *ColumnMeta {
	if id < 1 || int(id) > len(c.columns) {
		panic(fmt.Sprintf("rel: invalid column id %d", id))
	}
	return &c.columns[id-1]
}

// ColumnID looks up a column by table and name, returning InvalidCol if
// absent.
func (c *Catalog) ColumnID(table, name string) ColID {
	t := c.tables[table]
	if t == nil {
		return InvalidCol
	}
	for _, id := range t.Columns {
		if c.columns[id-1].Name == name {
			return id
		}
	}
	return InvalidCol
}

// ResolveColumn looks up a column by name alone, searching all tables.
// It returns InvalidCol when the name is absent or ambiguous.
func (c *Catalog) ResolveColumn(name string) ColID {
	found := InvalidCol
	for id := range c.columns {
		if c.columns[id].Name == name {
			if found != InvalidCol {
				return InvalidCol // ambiguous
			}
			found = ColID(id + 1)
		}
	}
	return found
}

// ColumnNames renders a column ID list for display, sorted input order
// preserved.
func (c *Catalog) ColumnNames(ids []ColID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = c.Column(id).Qualified()
	}
	return out
}

// TableOf returns the table owning the column.
func (c *Catalog) TableOf(id ColID) *Table { return c.tables[c.Column(id).Table] }
