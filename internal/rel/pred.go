package rel

import "fmt"

// CmpOp is a comparison operator in a selection predicate.
type CmpOp int8

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// String renders the operator in SQL syntax.
func (op CmpOp) String() string {
	switch op {
	case CmpEQ:
		return "="
	case CmpNE:
		return "<>"
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	}
	return "?"
}

// Eval applies the comparison to two integer values.
func (op CmpOp) Eval(a, b int64) bool {
	switch op {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	}
	return false
}

// Pred is a selection predicate: one conjunct comparing a column with a
// constant or with another column. Conjunctions are represented by
// stacked SELECT operators (or by slices of Pred in physical filters),
// keeping each operator a single algebraic unit for rule matching.
type Pred struct {
	// Col is the left-hand column.
	Col ColID
	// Op compares Col with the right-hand side.
	Op CmpOp
	// OtherCol, when non-zero, makes the predicate a column-column
	// comparison; Val is ignored.
	OtherCol ColID
	// Val is the constant right-hand side when OtherCol is zero.
	Val int64
	// Param, when non-zero, marks the constant as the 1-based index of
	// a runtime parameter: the query is incompletely specified at
	// optimization time, and Val is bound at execution. The optimizer
	// prices such predicates with an assumed selectivity (or a bucket
	// of assumptions, for dynamic plans).
	Param int
}

// IsParam reports whether the right-hand side is a runtime parameter.
func (p Pred) IsParam() bool { return p.Param != 0 && p.OtherCol == InvalidCol }

// IsColCol reports whether the predicate compares two columns.
func (p Pred) IsColCol() bool { return p.OtherCol != InvalidCol }

// Format renders the predicate using catalog names.
func (p Pred) Format(c *Catalog) string {
	if p.IsColCol() {
		return fmt.Sprintf("%s %s %s", c.Column(p.Col).Qualified(), p.Op, c.Column(p.OtherCol).Qualified())
	}
	return fmt.Sprintf("%s %s %d", c.Column(p.Col).Qualified(), p.Op, p.Val)
}

// String renders the predicate with raw column IDs (no catalog).
func (p Pred) String() string {
	if p.IsColCol() {
		return fmt.Sprintf("c%d %s c%d", p.Col, p.Op, p.OtherCol)
	}
	if p.IsParam() {
		return fmt.Sprintf("c%d %s $%d", p.Col, p.Op, p.Param)
	}
	return fmt.Sprintf("c%d %s %d", p.Col, p.Op, p.Val)
}

// hash mixes the predicate into an FNV-style accumulator.
func (p Pred) hash() uint64 {
	h := fnvOffset
	h = fnvMix(h, uint64(uint32(p.Col)))
	h = fnvMix(h, uint64(uint8(p.Op)))
	h = fnvMix(h, uint64(uint32(p.OtherCol)))
	h = fnvMix(h, uint64(p.Val))
	h = fnvMix(h, uint64(p.Param))
	return h
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnvMix folds one value into an FNV-1a style hash accumulator.
func fnvMix(h, v uint64) uint64 {
	h ^= v
	h *= fnvPrime
	return h
}
