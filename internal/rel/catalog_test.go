package rel_test

import (
	"strings"
	"testing"

	"repro/internal/rel"
)

func demoCatalog(t *testing.T) *rel.Catalog {
	t.Helper()
	cat := rel.NewCatalog()
	emp := cat.AddTable("emp", 1000, 100)
	cat.AddColumn(emp, "id", 1000, 1, 1000)
	cat.AddColumn(emp, "dept", 50, 1, 50)
	dept := cat.AddTable("dept", 50, 80)
	cat.AddColumn(dept, "id", 50, 1, 50)
	return cat
}

func TestCatalogLookup(t *testing.T) {
	cat := demoCatalog(t)
	if cat.Table("emp") == nil || cat.Table("nosuch") != nil {
		t.Fatal("table lookup broken")
	}
	if got := cat.Tables(); len(got) != 2 || got[0] != "emp" || got[1] != "dept" {
		t.Fatalf("Tables() = %v", got)
	}
	id := cat.ColumnID("emp", "dept")
	if id == rel.InvalidCol {
		t.Fatal("ColumnID failed")
	}
	if cat.Column(id).Qualified() != "emp.dept" {
		t.Fatalf("Qualified = %q", cat.Column(id).Qualified())
	}
	if cat.TableOf(id).Name != "emp" {
		t.Fatal("TableOf failed")
	}
	if cat.ColumnID("emp", "nosuch") != rel.InvalidCol {
		t.Fatal("missing column should be invalid")
	}
	if cat.ColumnID("nosuch", "id") != rel.InvalidCol {
		t.Fatal("missing table should be invalid")
	}
}

func TestResolveColumn(t *testing.T) {
	cat := demoCatalog(t)
	if cat.ResolveColumn("dept") == rel.InvalidCol {
		t.Fatal("unique name should resolve")
	}
	if cat.ResolveColumn("id") != rel.InvalidCol {
		t.Fatal("ambiguous name should not resolve")
	}
	if cat.ResolveColumn("nosuch") != rel.InvalidCol {
		t.Fatal("missing name should not resolve")
	}
}

func TestTableIndexesAreDense(t *testing.T) {
	cat := demoCatalog(t)
	if cat.Table("emp").Index != 0 || cat.Table("dept").Index != 1 {
		t.Fatalf("indexes: emp=%d dept=%d", cat.Table("emp").Index, cat.Table("dept").Index)
	}
}

func TestDuplicateTablePanics(t *testing.T) {
	cat := demoCatalog(t)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddTable did not panic")
		}
	}()
	cat.AddTable("emp", 1, 1)
}

func TestInvalidColumnPanics(t *testing.T) {
	cat := demoCatalog(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Column(0) did not panic")
		}
	}()
	cat.Column(0)
}

func TestColumnNames(t *testing.T) {
	cat := demoCatalog(t)
	names := cat.ColumnNames([]rel.ColID{cat.ColumnID("emp", "id"), cat.ColumnID("dept", "id")})
	if strings.Join(names, ",") != "emp.id,dept.id" {
		t.Fatalf("ColumnNames = %v", names)
	}
}

func TestPredFormatting(t *testing.T) {
	cat := demoCatalog(t)
	p := rel.Pred{Col: cat.ColumnID("emp", "dept"), Op: rel.CmpLE, Val: 10}
	if got := p.Format(cat); got != "emp.dept <= 10" {
		t.Fatalf("Format = %q", got)
	}
	q := rel.Pred{Col: cat.ColumnID("emp", "dept"), Op: rel.CmpEQ, OtherCol: cat.ColumnID("dept", "id")}
	if got := q.Format(cat); got != "emp.dept = dept.id" {
		t.Fatalf("Format = %q", got)
	}
	if !q.IsColCol() || p.IsColCol() {
		t.Fatal("IsColCol misclassifies")
	}
}

func TestCmpOpEval(t *testing.T) {
	cases := []struct {
		op   rel.CmpOp
		a, b int64
		want bool
	}{
		{rel.CmpEQ, 3, 3, true}, {rel.CmpEQ, 3, 4, false},
		{rel.CmpNE, 3, 4, true}, {rel.CmpNE, 3, 3, false},
		{rel.CmpLT, 3, 4, true}, {rel.CmpLT, 4, 4, false},
		{rel.CmpLE, 4, 4, true}, {rel.CmpLE, 5, 4, false},
		{rel.CmpGT, 5, 4, true}, {rel.CmpGT, 4, 4, false},
		{rel.CmpGE, 4, 4, true}, {rel.CmpGE, 3, 4, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%d %s %d = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}
