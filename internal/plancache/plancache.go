// Package plancache is the cross-query plan-cache serving layer: a
// sharded, byte-bounded LRU keyed by canonical query fingerprints
// (core.FingerprintQuery), with singleflight-style coalescing of
// concurrent identical optimizations.
//
// The paper's memo amortizes work within one search; this package
// amortizes it across queries. A compile server fielding repeats of the
// same query shape pays the directed-DP cost once and serves every
// later repeat from the cache — and when N identical queries arrive
// concurrently, one optimization runs while the other N-1 wait and
// share its result.
//
// Correctness rests on two invariants. First, entries are keyed by a
// canonical 128-bit fingerprint that mixes in the model's version
// token, so catalog or cost-model changes orphan stale entries rather
// than serving them. Second, every hit is verified byte-for-byte
// against the entry's retained canonical rendering, so a 128-bit hash
// collision degrades to a miss instead of serving the wrong plan.
// Degraded (anytime) results are never inserted: the cache only ever
// returns plans that a fresh, uninterrupted optimization would produce.
package plancache

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// DefaultMaxBytes is the cache budget used when Options.MaxBytes is
// unset: 64 MiB, thousands of typical plans.
const DefaultMaxBytes = 64 << 20

// Options configure a Cache.
type Options struct {
	// MaxBytes bounds the estimated bytes of retained entries across
	// all shards; <= 0 means DefaultMaxBytes.
	MaxBytes int64
	// Shards is the lock-stripe count, rounded up to a power of two;
	// <= 0 sizes the cache to the machine (4 × GOMAXPROCS, capped at
	// 256). Shards are selected by the fingerprint's high bits.
	Shards int
}

// Counters is a point-in-time snapshot of the cache's observability
// counters.
type Counters struct {
	// CacheHits counts lookups served from a stored entry (canonical
	// rendering verified).
	CacheHits int64 `json:"cache_hits"`
	// CacheMisses counts lookups that found nothing (including the rare
	// fingerprint collision whose verification failed).
	CacheMisses int64 `json:"cache_misses"`
	// Coalesced counts callers that shared an in-flight identical
	// optimization instead of running their own.
	Coalesced int64 `json:"coalesced"`
	// Evictions counts entries dropped to respect the byte budget.
	Evictions int64 `json:"evictions"`
	// CacheBytes is the current estimated footprint of stored entries.
	CacheBytes int64 `json:"cache_bytes"`
	// Entries is the current number of stored entries.
	Entries int `json:"entries"`
}

// Entry is one cached optimization result: the winning plan, its cost,
// and the search statistics of the optimization that produced it.
// Entries are immutable once inserted; the contained plan is shared by
// every hit and must not be mutated by consumers (plans in this
// repository are read-only after optimization).
type Entry struct {
	// Plan is the winning plan (a choose-plan root for dynamic
	// statements).
	Plan *core.Plan
	// Cost is the plan's total estimated cost, kept alongside the plan
	// for consumers that compare cached against fresh costs.
	Cost core.Cost
	// Stats are the search-effort counters of the original search.
	Stats core.Stats
	// Dynamic marks a plan carrying runtime alternatives.
	Dynamic bool
	// NParams is the statement's parameter count (parameterized
	// statements are cached by shape).
	NParams int
	// Degraded, when non-nil, is the budget error that stopped the
	// original search. Degraded entries are never stored — Do shares
	// them with coalesced waiters of the same in-flight call and then
	// drops them — so a cache hit always carries a proven-optimal plan.
	Degraded error
}

// Outcome says how a Do call was served.
type Outcome int8

const (
	// OutcomeMiss: the caller ran the optimization (and, if the result
	// was cacheable, inserted it).
	OutcomeMiss Outcome = iota
	// OutcomeHit: served from a stored, verified entry.
	OutcomeHit
	// OutcomeCoalesced: served by waiting on a concurrent identical
	// optimization.
	OutcomeCoalesced
)

// String renders the outcome for logs and tools.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeCoalesced:
		return "coalesced"
	}
	return "miss"
}

// Cache is a sharded LRU plan cache with in-flight coalescing. All
// methods are safe for concurrent use.
type Cache struct {
	shards []shard
	mask   uint64

	flightMu sync.Mutex
	flights  map[core.Fingerprint]*flight

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
}

// flight is one in-progress optimization other callers may wait on.
type flight struct {
	done  chan struct{}
	canon string
	entry *Entry
	err   error
}

// New creates a cache. The zero Options value gets the defaults.
func New(opts Options) *Cache {
	maxBytes := opts.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	n := opts.Shards
	if n <= 0 {
		n = 4 * runtime.GOMAXPROCS(0)
		if n > 256 {
			n = 256
		}
	}
	n = nextPow2(n)
	c := &Cache{
		shards:  make([]shard, n),
		mask:    uint64(n - 1),
		flights: make(map[core.Fingerprint]*flight),
	}
	per := maxBytes / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].init(per)
	}
	return c
}

// nextPow2 rounds n up to a power of two.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardOf selects the stripe for a fingerprint by its high bits (the
// low bits index each shard's map buckets, so using the opposite end
// keeps the two hash uses independent).
func (c *Cache) shardOf(fp core.Fingerprint) *shard {
	return &c.shards[(fp.Hi>>32)&c.mask]
}

// Get returns the entry stored under fp whose canonical rendering
// matches canon, refreshing its recency. The hit/miss counters are
// updated.
func (c *Cache) Get(fp core.Fingerprint, canon string) (*Entry, bool) {
	e, ok := c.shardOf(fp).get(fp, canon)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

// Put stores an entry under fp, evicting least-recently-used entries as
// needed to respect the byte budget. Degraded entries and entries too
// large for one shard's budget are not stored.
func (c *Cache) Put(fp core.Fingerprint, canon string, e *Entry) {
	if e == nil || e.Degraded != nil {
		return
	}
	evicted := c.shardOf(fp).put(fp, canon, e)
	c.evictions.Add(evicted)
}

// Do serves one optimization through the cache: a verified stored entry
// if present, the shared result of a concurrent identical call if one
// is in flight, or the result of compute, which runs at most once per
// fingerprint at a time. A compute result without a Degraded error is
// inserted for future hits. compute errors are returned to the caller
// and every coalesced waiter; nothing is cached for them.
func (c *Cache) Do(fp core.Fingerprint, canon string, compute func() (*Entry, error)) (*Entry, Outcome, error) {
	if e, ok := c.shardOf(fp).get(fp, canon); ok {
		c.hits.Add(1)
		return e, OutcomeHit, nil
	}

	c.flightMu.Lock()
	if f, ok := c.flights[fp]; ok {
		if f.canon == canon {
			c.flightMu.Unlock()
			<-f.done
			c.coalesced.Add(1)
			return f.entry, OutcomeCoalesced, f.err
		}
		// A different query is in flight under the same fingerprint — a
		// true 128-bit collision. Compute directly, without coalescing
		// and without caching under the contested key.
		c.flightMu.Unlock()
		e, err := compute()
		c.misses.Add(1)
		return e, OutcomeMiss, err
	}
	f := &flight{done: make(chan struct{}), canon: canon}
	c.flights[fp] = f
	c.flightMu.Unlock()

	e, err := compute()
	f.entry, f.err = e, err
	if err == nil {
		c.Put(fp, canon, e)
	}
	c.flightMu.Lock()
	delete(c.flights, fp)
	c.flightMu.Unlock()
	close(f.done)

	c.misses.Add(1)
	return e, OutcomeMiss, err
}

// Invalidate drops every stored entry (in-flight computations are
// unaffected). Fingerprints already embed the model version, so version
// bumps do not require it; it exists for explicit cache flushes.
func (c *Cache) Invalidate() {
	for i := range c.shards {
		c.shards[i].clear()
	}
}

// Counters snapshots the cache's observability counters.
func (c *Cache) Counters() Counters {
	ct := Counters{
		CacheHits:   c.hits.Load(),
		CacheMisses: c.misses.Load(),
		Coalesced:   c.coalesced.Load(),
		Evictions:   c.evictions.Load(),
	}
	for i := range c.shards {
		b, n := c.shards[i].usage()
		ct.CacheBytes += b
		ct.Entries += n
	}
	return ct
}

// shard is one lock stripe: a map plus an intrusive LRU list under a
// single mutex, with its slice of the byte budget.
type shard struct {
	mu       sync.Mutex
	entries  map[core.Fingerprint]*node
	bytes    int64
	maxBytes int64
	// lru is the list sentinel: lru.next is most recent, lru.prev least.
	lru node
}

// node is one resident entry in a shard's map and LRU list.
type node struct {
	fp         core.Fingerprint
	canon      string
	entry      *Entry
	size       int64
	prev, next *node
}

func (s *shard) init(maxBytes int64) {
	s.entries = make(map[core.Fingerprint]*node)
	s.maxBytes = maxBytes
	s.lru.prev = &s.lru
	s.lru.next = &s.lru
}

// unlink removes n from the LRU list.
func (n *node) unlink() {
	n.prev.next = n.next
	n.next.prev = n.prev
}

// pushFront makes n the most recently used entry.
func (s *shard) pushFront(n *node) {
	n.next = s.lru.next
	n.prev = &s.lru
	n.next.prev = n
	s.lru.next = n
}

func (s *shard) get(fp core.Fingerprint, canon string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.entries[fp]
	if !ok || n.canon != canon {
		// A canon mismatch is a true 128-bit collision: verification
		// rejects the stored entry and the lookup is a miss.
		return nil, false
	}
	n.unlink()
	s.pushFront(n)
	return n.entry, true
}

// put inserts (or replaces) the entry and returns the number of
// evictions performed.
func (s *shard) put(fp core.Fingerprint, canon string, e *Entry) (evicted int64) {
	size := entrySize(canon, e)
	if size > s.maxBytes {
		return 0 // larger than the shard's whole budget: not cacheable
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[fp]; ok {
		old.unlink()
		delete(s.entries, fp)
		s.bytes -= old.size
	}
	n := &node{fp: fp, canon: canon, entry: e, size: size}
	s.entries[fp] = n
	s.pushFront(n)
	s.bytes += size
	for s.bytes > s.maxBytes {
		last := s.lru.prev
		if last == &s.lru {
			break
		}
		last.unlink()
		delete(s.entries, last.fp)
		s.bytes -= last.size
		evicted++
	}
	return evicted
}

func (s *shard) clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = make(map[core.Fingerprint]*node)
	s.bytes = 0
	s.lru.prev = &s.lru
	s.lru.next = &s.lru
}

func (s *shard) usage() (bytes int64, entries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes, len(s.entries)
}

// entrySize estimates an entry's resident footprint for the byte
// budget: the retained canonical rendering, a per-plan-node charge
// covering the Plan struct, its input slice, and the physical operator,
// plus fixed entry/node/stats overhead. An estimate is sufficient — the
// budget bounds growth, it is not an allocator.
func entrySize(canon string, e *Entry) int64 {
	const (
		perNode  = 160
		overhead = 384
	)
	nodes := 0
	if e.Plan != nil {
		nodes = e.Plan.Count()
	}
	return int64(len(canon)) + int64(nodes)*perNode + overhead
}
