package plancache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// fp builds a distinct fingerprint; i is spread across the high bits so
// consecutive values land in different shards.
func fp(i int) core.Fingerprint {
	return core.Fingerprint{Hi: uint64(i) << 32, Lo: uint64(i) * 31}
}

func entry() *Entry { return &Entry{} }

func TestCacheGetPut(t *testing.T) {
	c := New(Options{})
	f := fp(1)
	if _, ok := c.Get(f, "q1"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(f, "q1", entry())
	if _, ok := c.Get(f, "q1"); !ok {
		t.Fatal("stored entry not found")
	}
	// Same fingerprint, different canonical rendering: a collision must
	// verify-fail and read as a miss, never serve the wrong plan.
	if _, ok := c.Get(f, "q2"); ok {
		t.Fatal("collision verification served a mismatched canon")
	}
	ct := c.Counters()
	if ct.CacheHits != 1 || ct.CacheMisses != 2 || ct.Entries != 1 {
		t.Fatalf("counters = %+v, want 1 hit, 2 misses, 1 entry", ct)
	}
	if ct.CacheBytes <= 0 {
		t.Fatalf("CacheBytes = %d, want > 0", ct.CacheBytes)
	}
}

func TestCacheNilAndDegradedNotStored(t *testing.T) {
	c := New(Options{})
	c.Put(fp(1), "q", nil)
	c.Put(fp(2), "q", &Entry{Degraded: errors.New("budget exhausted")})
	if ct := c.Counters(); ct.Entries != 0 {
		t.Fatalf("Entries = %d, want 0", ct.Entries)
	}
}

func TestCacheByteBudgetEviction(t *testing.T) {
	// One shard so the LRU order is global; budget for roughly two
	// plan-less entries (each ~len(canon)+384 bytes).
	c := New(Options{MaxBytes: 800, Shards: 1})
	c.Put(fp(1), "a", entry())
	c.Put(fp(2), "b", entry())
	c.Get(fp(1), "a") // refresh: fp1 is now most recent
	c.Put(fp(3), "c", entry())

	if _, ok := c.Get(fp(1), "a"); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.Get(fp(2), "b"); ok {
		t.Fatal("least recently used entry survived over budget")
	}
	ct := c.Counters()
	if ct.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", ct.Evictions)
	}
	if ct.CacheBytes > 800 {
		t.Fatalf("CacheBytes = %d exceeds the budget", ct.CacheBytes)
	}
}

func TestCacheOversizeEntryNotStored(t *testing.T) {
	c := New(Options{MaxBytes: 10, Shards: 1})
	c.Put(fp(1), "q", entry())
	if ct := c.Counters(); ct.Entries != 0 {
		t.Fatalf("entry larger than the shard budget was stored: %+v", ct)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := New(Options{})
	for i := 0; i < 10; i++ {
		c.Put(fp(i), fmt.Sprintf("q%d", i), entry())
	}
	c.Invalidate()
	ct := c.Counters()
	if ct.Entries != 0 || ct.CacheBytes != 0 {
		t.Fatalf("Invalidate left %d entries, %d bytes", ct.Entries, ct.CacheBytes)
	}
}

func TestCacheDoMissThenHit(t *testing.T) {
	c := New(Options{})
	computes := 0
	compute := func() (*Entry, error) { computes++; return entry(), nil }

	_, outcome, err := c.Do(fp(1), "q", compute)
	if err != nil || outcome != OutcomeMiss {
		t.Fatalf("first Do = %v, %v; want miss", outcome, err)
	}
	_, outcome, err = c.Do(fp(1), "q", compute)
	if err != nil || outcome != OutcomeHit {
		t.Fatalf("second Do = %v, %v; want hit", outcome, err)
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
}

func TestCacheDoError(t *testing.T) {
	c := New(Options{})
	boom := errors.New("boom")
	_, outcome, err := c.Do(fp(1), "q", func() (*Entry, error) { return nil, boom })
	if !errors.Is(err, boom) || outcome != OutcomeMiss {
		t.Fatalf("Do = %v, %v; want the compute error as a miss", outcome, err)
	}
	if ct := c.Counters(); ct.Entries != 0 {
		t.Fatal("failed compute was cached")
	}
	// The flight must be cleaned up: a retry runs compute again.
	_, _, err = c.Do(fp(1), "q", func() (*Entry, error) { return entry(), nil })
	if err != nil {
		t.Fatalf("retry after error: %v", err)
	}
}

func TestCacheDoDegradedSharedNotStored(t *testing.T) {
	c := New(Options{})
	degraded := errors.New("stopped by budget")
	e, outcome, err := c.Do(fp(1), "q", func() (*Entry, error) {
		return &Entry{Degraded: degraded}, nil
	})
	if err != nil || outcome != OutcomeMiss || e.Degraded == nil {
		t.Fatalf("Do = %v, %v, %v", e, outcome, err)
	}
	// The degraded plan was returned to the caller but never inserted:
	// the next Do re-optimizes.
	computes := 0
	_, outcome, _ = c.Do(fp(1), "q", func() (*Entry, error) { computes++; return entry(), nil })
	if outcome != OutcomeMiss || computes != 1 {
		t.Fatalf("degraded entry was served from the cache (%v, %d computes)", outcome, computes)
	}
}

func TestCacheDoCoalescesConcurrentIdentical(t *testing.T) {
	const waiters = 8
	c := New(Options{})
	var computes atomic.Int64
	release := make(chan struct{})
	entered := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = c.Do(fp(1), "q", func() (*Entry, error) {
			close(entered)
			<-release
			computes.Add(1)
			return entry(), nil
		})
	}()
	<-entered // the flight is registered; everyone below shares it

	results := make([]Outcome, waiters)
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			defer wg.Done()
			_, outcome, err := c.Do(fp(1), "q", func() (*Entry, error) {
				computes.Add(1)
				return entry(), nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = outcome
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, outcome := range results {
		if outcome == OutcomeMiss {
			t.Errorf("waiter %d recomputed instead of sharing", i)
		}
	}
	ct := c.Counters()
	if ct.Coalesced+ct.CacheHits < waiters {
		t.Fatalf("counters = %+v, want %d served without compute", ct, waiters)
	}
}

func TestCacheDoInFlightCollision(t *testing.T) {
	c := New(Options{Shards: 1})
	release := make(chan struct{})
	entered := make(chan struct{})
	go func() {
		_, _, _ = c.Do(fp(1), "canonA", func() (*Entry, error) {
			close(entered)
			<-release
			return entry(), nil
		})
	}()
	<-entered

	// Same fingerprint, different query: must not wait on (or share) the
	// stranger's flight.
	done := make(chan Outcome, 1)
	go func() {
		_, outcome, _ := c.Do(fp(1), "canonB", func() (*Entry, error) { return entry(), nil })
		done <- outcome
	}()
	select {
	case outcome := <-done:
		if outcome != OutcomeMiss {
			t.Fatalf("collision Do = %v, want an independent miss", outcome)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("collision Do blocked on the other query's flight")
	}
	close(release)
}

func TestOutcomeString(t *testing.T) {
	for outcome, want := range map[Outcome]string{
		OutcomeMiss: "miss", OutcomeHit: "hit", OutcomeCoalesced: "coalesced",
	} {
		if got := outcome.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", outcome, got, want)
		}
	}
}

func TestCacheConcurrentMixedUse(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g*7 + i) % 32
				canon := fmt.Sprintf("q%d", k)
				switch i % 3 {
				case 0:
					_, _, _ = c.Do(fp(k), canon, func() (*Entry, error) { return entry(), nil })
				case 1:
					c.Get(fp(k), canon)
				default:
					c.Put(fp(k), canon, entry())
				}
			}
		}(g)
	}
	wg.Wait()
	c.Counters() // must not race with the workers above
}

func BenchmarkCacheHit(b *testing.B) {
	c := New(Options{})
	f := fp(1)
	c.Put(f, "q", entry())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(f, "q"); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkCacheDoHitParallel(b *testing.B) {
	c := New(Options{})
	f := fp(1)
	c.Put(f, "q", entry())
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_, outcome, _ := c.Do(f, "q", func() (*Entry, error) { return entry(), nil })
			if outcome != OutcomeHit {
				b.Fatal("not a hit")
			}
		}
	})
}
