package core

import (
	"fmt"
	"strings"
)

// Plan is a physical algebra expression: the optimizer's output. Each
// node records the algorithm or enforcer chosen, the physical properties
// it delivers, its total (subtree) cost, and the equivalence class it
// implements.
type Plan struct {
	// Op is the algorithm or enforcer at the root of this plan.
	Op PhysicalOp
	// Inputs are the plans feeding the algorithm.
	Inputs []*Plan
	// Delivered is the physical property vector the plan's output
	// actually has. Generated optimizers verify, as one of many
	// consistency checks, that Delivered covers the property vector
	// that was requested.
	Delivered PhysProps
	// Cost is the total estimated cost of the plan subtree, including
	// all inputs.
	Cost Cost
	// LocalCost is the cost of the root algorithm alone.
	LocalCost Cost
	// Group is the equivalence class this plan implements.
	Group GroupID
	// LogProps are the logical properties of the result, copied from
	// the group for the convenience of plan consumers (the execution
	// engine needs schemas and cardinality estimates).
	LogProps LogicalProps
}

// String renders the plan as a single line, e.g.
// "merge-join(sort(scan R), sort(scan S))".
func (p *Plan) String() string {
	if len(p.Inputs) == 0 {
		return p.Op.String()
	}
	var b strings.Builder
	b.WriteString(p.Op.String())
	b.WriteByte('(')
	for i, in := range p.Inputs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(in.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Format renders the plan as an indented tree with costs and delivered
// properties, suitable for EXPLAIN-style output.
func (p *Plan) Format() string {
	var b strings.Builder
	p.format(&b, 0)
	return b.String()
}

func (p *Plan) format(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s  (cost=%s", p.Op.String(), p.Cost)
	if p.Delivered != nil {
		if s := p.Delivered.String(); s != "" {
			fmt.Fprintf(b, ", props=%s", s)
		}
	}
	b.WriteString(")\n")
	for _, in := range p.Inputs {
		in.format(b, depth+1)
	}
}

// Count returns the number of nodes in the plan tree.
func (p *Plan) Count() int {
	n := 1
	for _, in := range p.Inputs {
		n += in.Count()
	}
	return n
}

// Walk visits every node of the plan in pre-order.
func (p *Plan) Walk(fn func(*Plan)) {
	fn(p)
	for _, in := range p.Inputs {
		in.Walk(fn)
	}
}
