package core

// Pattern describes the shape of logical expressions a rule matches.
// A pattern node either names an operator kind (possibly AnyKind) and
// carries sub-patterns for the operator's inputs, or is a leaf, which
// matches an entire equivalence class without binding an expression.
//
// Patterns may span multiple operators: the paper's example is a join
// followed by a projection implemented by a single physical procedure.
type Pattern struct {
	// Kind is the operator kind matched at this node; AnyKind matches
	// every operator. Ignored for leaf nodes.
	Kind OpKind
	// IsLeaf marks a pattern node that matches any input class.
	IsLeaf bool
	// Children are the sub-patterns, one per operator input.
	Children []*Pattern
}

// P constructs an operator pattern node.
func P(kind OpKind, children ...*Pattern) *Pattern {
	return &Pattern{Kind: kind, Children: children}
}

// Leaf constructs a leaf pattern node matching any equivalence class.
func Leaf() *Pattern { return &Pattern{IsLeaf: true} }

// Binding is one way a pattern matched against memo contents. Its shape
// mirrors the pattern: operator pattern nodes bind a concrete expression
// (Expr non-nil); leaf pattern nodes bind only an equivalence class.
type Binding struct {
	// Expr is the matched expression; nil for leaf bindings.
	Expr *Expr
	// Group is the equivalence class of this node's result.
	Group GroupID
	// Children are the bindings for the pattern's children; empty for
	// leaf bindings.
	Children []*Binding
}

// Leaves appends the equivalence classes bound by the pattern's leaf
// nodes, in left-to-right order, and returns the extended slice. For an
// implementation rule, these classes are the inputs of the physical
// algorithm, in order.
func (b *Binding) Leaves(dst []GroupID) []GroupID {
	if b.Expr == nil {
		return append(dst, b.Group)
	}
	for _, c := range b.Children {
		dst = c.Leaves(dst)
	}
	return dst
}

// ExprTree is the substitute produced by a transformation rule, or the
// original query handed to the optimizer: a tree of logical operators
// whose leaves may reference equivalence classes already in the memo.
type ExprTree struct {
	// Op is the operator at this node; nil for a class reference.
	Op LogicalOp
	// Group is the referenced class when Op is nil.
	Group GroupID
	// Children are the operator's inputs.
	Children []*ExprTree
}

// Node constructs an operator node of an expression tree.
func Node(op LogicalOp, children ...*ExprTree) *ExprTree {
	return &ExprTree{Op: op, Children: children}
}

// ClassRef constructs a leaf referencing an existing equivalence class.
// Rules use it to splice bound classes into their substitutes.
func ClassRef(g GroupID) *ExprTree { return &ExprTree{Group: g} }

// RuleContext gives rule code controlled access to the memo during
// matching and application: logical properties of bound classes and the
// model, which typically carries the catalog.
type RuleContext struct {
	// Memo is the memo being optimized.
	Memo *Memo
	// Model is the data model the optimizer was generated for.
	Model Model
}

// LogProps returns the logical properties of an equivalence class.
func (ctx *RuleContext) LogProps(g GroupID) LogicalProps {
	return ctx.Memo.Group(g).LogicalProps()
}

// TransformRule is an algebraic equivalence within the logical algebra,
// e.g. commutativity or associativity. Rules are independent of one
// another; the search engine combines them when optimizing a query.
type TransformRule struct {
	// Name identifies the rule in traces.
	Name string
	// Pattern selects the expressions the rule rewrites.
	Pattern *Pattern
	// Condition, if non-nil, is the rule's condition code: it is
	// invoked after a pattern match has succeeded and may veto the
	// match (for example, to check the type of an intermediate result
	// in a many-sorted algebra, or to restrict the search to left-deep
	// plans).
	Condition func(ctx *RuleContext, b *Binding) bool
	// Apply produces zero or more substitute expressions equivalent to
	// the binding. Substitutes are inserted into the equivalence class
	// of the binding's root.
	Apply func(ctx *RuleContext, b *Binding) []*ExprTree
	// Promise orders transformation moves; higher fires first.
	Promise int
}

// InputReq is one alternative combination of physical property vectors
// for an algorithm's inputs. The paper motivates alternatives with
// sort-based intersection: any sort order of the two inputs suffices as
// long as both inputs are sorted the same way, so the optimizer
// implementor lists each acceptable combination and the generated
// optimizer tries them all.
type InputReq struct {
	// Required holds one property vector per algorithm input, in the
	// order of the rule pattern's leaves.
	Required []PhysProps
}

// ImplRule maps logical operators to a physical algorithm. A rule may
// match several logical operators at once (join plus projection into a
// single physical procedure).
type ImplRule struct {
	// Name identifies the rule in traces.
	Name string
	// Pattern selects the logical expressions the algorithm can
	// implement.
	Pattern *Pattern
	// Condition, if non-nil, is invoked after a pattern match.
	Condition func(ctx *RuleContext, b *Binding) bool
	// Applicability determines whether the algorithm can deliver the
	// bound expression with physical properties satisfying required,
	// and if so returns the property vectors the algorithm's inputs
	// must satisfy — one InputReq per acceptable alternative. For
	// example, when a join result must be sorted on the join
	// attribute, hybrid hash join does not qualify, while merge-join
	// qualifies with the requirement that its inputs be sorted.
	Applicability func(ctx *RuleContext, b *Binding, required PhysProps) ([]InputReq, bool)
	// Cost estimates the cost of the algorithm itself, excluding its
	// inputs, for the given binding and chosen input alternative.
	Cost func(ctx *RuleContext, b *Binding, required PhysProps, alt InputReq) Cost
	// Delivered computes the physical property vector the algorithm's
	// output actually has, given the vectors delivered by the chosen
	// input plans. If nil, the algorithm is assumed to deliver exactly
	// the required vector.
	Delivered func(ctx *RuleContext, b *Binding, required PhysProps, alt InputReq, inputs []PhysProps) PhysProps
	// Build constructs the physical operator for the plan node.
	Build func(ctx *RuleContext, b *Binding, required PhysProps, alt InputReq) PhysicalOp
	// Promise orders algorithm moves; higher fires first. Pursuing a
	// cheap, likely-good algorithm early tightens the branch-and-bound
	// limit for everything after it.
	Promise int
}

// Enforcer is a physical operator that corresponds to no logical
// operator: it performs no logical data manipulation but establishes a
// physical property required by subsequent algorithms — sort,
// decompression, exchange (partitioning), or assembly (assembledness).
type Enforcer struct {
	// Name identifies the enforcer in traces.
	Name string
	// Relax inspects a required property vector. If the enforcer can
	// establish some of the required properties, it returns the
	// relaxed vector its input must satisfy and the excluding vector:
	// the properties whose direct producers must not be considered
	// when the enforcer's input is optimized (merge-join must not be
	// considered as input to a sort on the join attribute). ok is
	// false when the enforcer cannot contribute to required.
	Relax func(ctx *RuleContext, lp LogicalProps, required PhysProps) (relaxed, excluded PhysProps, ok bool)
	// Cost estimates the enforcer's own cost.
	Cost func(ctx *RuleContext, lp LogicalProps, required PhysProps) Cost
	// Delivered computes the output vector given the input plan's
	// delivered vector. If nil, the enforcer delivers exactly the
	// required vector.
	Delivered func(ctx *RuleContext, required PhysProps, input PhysProps) PhysProps
	// Build constructs the physical operator for the plan node.
	Build func(ctx *RuleContext, lp LogicalProps, required PhysProps) PhysicalOp
	// Promise orders enforcer moves; higher fires first.
	Promise int
}

// Model is everything the optimizer implementor provides: the paper's
// ten-item list. Items (1)–(4) are the operator sets and rules; items
// (5)–(7) are the cost and property ADTs, realized here as the Cost,
// LogicalProps, and PhysProps interfaces; items (8)–(10) — applicability,
// cost, and property functions — are carried by the rules and by
// DeriveLogicalProps.
type Model interface {
	CostModel

	// Name identifies the data model.
	Name() string
	// DeriveLogicalProps computes the logical properties of an
	// expression from its operator and the properties of its inputs.
	// It is invoked once per equivalence class, before optimization,
	// and encapsulates selectivity estimation.
	DeriveLogicalProps(op LogicalOp, inputs []LogicalProps) LogicalProps
	// TransformationRules returns the algebraic equivalences within
	// the logical algebra. At most 64 rules are supported.
	TransformationRules() []*TransformRule
	// ImplementationRules returns the mappings from logical operators
	// to algorithms.
	ImplementationRules() []*ImplRule
	// Enforcers returns the property-enforcing physical operators.
	Enforcers() []*Enforcer
	// AnyProps returns the vacuous physical property vector: the
	// requirement every plan satisfies. It is the relaxation target
	// for enforcers and the requirement used by the glue-mode
	// (Starburst-style) search used in ablation experiments.
	AnyProps() PhysProps
}

// MaxTransformRules is the largest transformation rule set a model may
// declare; the per-expression fired-rule set is a 64-bit mask.
const MaxTransformRules = 64
