package core

import (
	"fmt"
	"sort"
	"strings"
)

// Format renders the memo's equivalence classes, member expressions,
// and winner tables as text, in the spirit of the paper's description
// of the hash table of expressions and classes. It is the primary
// debugging view of a search.
func (m *Memo) Format() string {
	var b strings.Builder
	m.Groups(func(g *Group) {
		fmt.Fprintf(&b, "class %d  [%s]\n", g.ID(), g.LogicalProps())
		for _, e := range g.Exprs() {
			fmt.Fprintf(&b, "  expr   %s\n", m.canonString(e))
		}
		type entry struct {
			key  string
			text string
		}
		var winners []entry
		for _, w := range g.winners {
			for ; w != nil; w = w.next {
				props := w.props.String()
				if props == "" {
					props = "(any)"
				}
				suffix := ""
				if w.excluded != nil {
					suffix = fmt.Sprintf(" excluding %s", w.excluded)
				}
				switch {
				case w.plan != nil:
					winners = append(winners, entry{props + suffix,
						fmt.Sprintf("  winner %s%s: cost=%s %s\n", props, suffix, w.cost, w.plan)})
				case w.failedLimit != nil:
					winners = append(winners, entry{props + suffix,
						fmt.Sprintf("  winner %s%s: failed under limit %s\n", props, suffix, w.failedLimit)})
				}
			}
		}
		sort.Slice(winners, func(i, j int) bool { return winners[i].key < winners[j].key })
		for _, w := range winners {
			b.WriteString(w.text)
		}
	})
	return b.String()
}

// canonString renders an expression with merge-resolved input classes.
func (m *Memo) canonString(e *Expr) string {
	if len(e.Inputs) == 0 {
		return e.Op.String()
	}
	var b strings.Builder
	b.WriteString(e.Op.String())
	b.WriteByte('[')
	for i, in := range e.Inputs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", m.Find(in))
	}
	b.WriteByte(']')
	return b.String()
}

// Dot renders the plan as a Graphviz digraph: one node per physical
// operator, labeled with cost and delivered properties.
func (p *Plan) Dot() string {
	var b strings.Builder
	b.WriteString("digraph plan {\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	id := 0
	var walk func(n *Plan) int
	walk = func(n *Plan) int {
		me := id
		id++
		label := n.Op.String()
		if n.Delivered != nil && n.Delivered.String() != "" {
			label += "\\n" + n.Delivered.String()
		}
		label += "\\ncost=" + n.Cost.String()
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", me, strings.ReplaceAll(label, "\"", "'"))
		for _, in := range n.Inputs {
			child := walk(in)
			fmt.Fprintf(&b, "  n%d -> n%d;\n", me, child)
		}
		return me
	}
	walk(p)
	b.WriteString("}\n")
	return b.String()
}
