package core

// LogicalProps is the abstract data type for logical properties of an
// intermediate result: schema, expected size, type of the result in a
// many-sorted algebra, and so on. Logical properties belong to
// equivalence classes — they can be derived from any member expression
// before optimization — and the engine never inspects them; they are
// passed back to the model's property, cost, and condition functions.
//
// Selectivity estimation is encapsulated in the model's logical property
// functions, as the paper requires.
type LogicalProps interface {
	// String renders the properties for tracing and debugging.
	String() string
}

// PhysProps is the abstract data type for a physical property vector:
// sort order, partitioning, compression status, assembledness, or
// whatever the optimizer implementor defines. Physical properties attach
// to specific plans and algorithm choices, never to equivalence classes.
//
// The engine requires equality, a covering test, and a hash consistent
// with equality (the winner table inside each equivalence class is keyed
// by physical property vector).
type PhysProps interface {
	// Equal reports whether two vectors are identical.
	Equal(other PhysProps) bool
	// Covers reports whether a result having the receiver's properties
	// satisfies a request for other. Covering is at least reflexive:
	// p.Covers(p) must hold. A typical example: output sorted on (A,B)
	// covers a requirement of sorted on (A).
	Covers(other PhysProps) bool
	// Hash returns a hash consistent with Equal.
	Hash() uint64
	// String renders the vector for tracing and plan display.
	String() string
}

// physKey is the winner-table key derived from a physical property
// vector. Hash collisions are resolved by chaining on Equal.
type physKey uint64

func keyOf(p PhysProps) physKey { return physKey(p.Hash()) }
