package core

import (
	"fmt"
	"strings"
)

// GroupID names an equivalence class inside a Memo. IDs are dense,
// starting at 1; 0 is the invalid group.
type GroupID int32

// InvalidGroup is the zero GroupID.
const InvalidGroup GroupID = 0

// Expr is one logical expression stored in the memo: an operator whose
// inputs are equivalence classes. Every expression belongs to exactly
// one group; equivalent expressions produced by transformation rules are
// collapsed into the same group.
type Expr struct {
	// Op is the logical operator at the root of this expression.
	Op LogicalOp
	// Inputs are the equivalence classes the operator consumes, one
	// per operator input.
	Inputs []GroupID

	// group is the equivalence class this expression belongs to.
	group GroupID
	// appliedRules records which transformation rules have already
	// fired with this expression as the binding root, so exhaustive
	// exploration terminates. Bit i corresponds to the rule at index
	// i in the model's transformation rule list.
	appliedRules uint64
	// next chains expressions within the memo's hash table bucket.
	next *Expr
}

// Group returns the equivalence class this expression belongs to.
func (e *Expr) Group() GroupID { return e.group }

// String renders the expression with group references for its inputs,
// e.g. "JOIN(a.x=b.y)[2 5]".
func (e *Expr) String() string {
	if len(e.Inputs) == 0 {
		return e.Op.String()
	}
	var b strings.Builder
	b.WriteString(e.Op.String())
	b.WriteByte('[')
	for i, in := range e.Inputs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", in)
	}
	b.WriteByte(']')
	return b.String()
}

// ruleApplied reports whether rule index i has fired on this expression.
func (e *Expr) ruleApplied(i int) bool { return e.appliedRules&(1<<uint(i)) != 0 }

// markRuleApplied records that rule index i has fired on this expression.
func (e *Expr) markRuleApplied(i int) { e.appliedRules |= 1 << uint(i) }

// exprHash hashes an expression's identity: kind, argument hash, and
// input groups. It must agree with exprEqual.
func exprHash(op LogicalOp, inputs []GroupID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(uint32(op.Kind())))
	mix(op.ArgsHash())
	for _, g := range inputs {
		mix(uint64(uint32(g)))
	}
	return h
}

// exprEqual reports whether an expression with the given operator and
// inputs denotes the same expression as e.
func exprEqual(e *Expr, op LogicalOp, inputs []GroupID) bool {
	if e.Op.Kind() != op.Kind() || len(e.Inputs) != len(inputs) {
		return false
	}
	for i, g := range e.Inputs {
		if g != inputs[i] {
			return false
		}
	}
	return e.Op.ArgsEqual(op)
}
