package core

// Budgeted stochastic search policies for the 10–16-relation regime.
//
// The paper's directed dynamic programming is exhaustive: FindBestPlan
// pursues every move of every goal. Past ~9 relations the Figure-4
// sweep shows that exhaustiveness exceeding any interactive budget —
// the regime where industrial optimizers switch to a non-exhaustive
// escape hatch. The policies here run on the same memo, the same move
// collection, the same budget checkpoints, and the same winner tables
// as the exhaustive engine, but replace "pursue every move" with
// "pursue one selected move per goal per episode":
//
//   - PolicyMCTS: Monte-Carlo tree search. Each goal (class, required,
//     excluded) owns a node of a selection tree whose arms are the
//     goal's promise-ordered moves. The first visit descends greedily
//     by admissible floor priors (the LowerBounder floors that already
//     drive branch-and-bound), so the first episode is a greedy rollout
//     to a complete plan; later visits select by UCT over rewards
//     backed up from achieved plan costs, with an epsilon of seeded
//     random exploration.
//
//   - PolicyWidening: iterative widening. Pass p considers only the
//     first p+1 moves of each goal's promise-ordered list and pursues
//     the least-visited one, growing the prefix every pass. It is
//     deterministic across RandSeed values — the control arm for the
//     MCTS A/B.
//
// Rollouts commit completed sub-plans through the ordinary winner
// tables (ensureWinnerKeyed), for three reasons: later episodes reuse
// them as incumbents, tightening their branch-and-bound limits; the
// anytime fallback ladder finds the best root plan at a budget stop
// without any policy-specific bookkeeping; and plan extraction at the
// end is the same winner-table read the exhaustive engine uses. The
// relaxation is that a policy-committed winner is best-so-far, not
// proven optimal — sound here because an Optimizer serves one query
// under one configuration, and the exhaustive paths never run in a
// policy-configured optimizer.
//
// A stochastic policy cannot prove absence: where the exhaustive
// engine's (nil, nil) certifies that no plan within the limit exists,
// policyOptimize returns the best vetted fallback (seed floor or the
// query as written) instead, and nil only when no fallback exists.

import (
	"math"
	"math/rand"
)

const (
	// DefaultPolicyEpisodes is the rollout-episode bound when
	// Options.Search.Episodes is unset. Budgets usually stop the loop
	// first; the bound keeps unbudgeted policy runs finite.
	DefaultPolicyEpisodes = 64
	// uctExploration is the UCT exploration constant (√2).
	uctExploration = 1.4142135623730951
	// mctsEpsilon is the probability that MCTS selection ignores UCT
	// and pursues a uniformly random arm — the Monte-Carlo escape from
	// a misleading prior.
	mctsEpsilon = 0.1
)

// policyState is the per-optimizer state of a stochastic policy run.
type policyState struct {
	nodes map[polKey]*policyNode
	rng   *rand.Rand
	// episode is the 0-based index of the running episode; widening
	// derives its move-prefix width from it.
	episode int
}

// polKey addresses a selection-tree node: the canonical class plus the
// (required, excluded) property fingerprint — the same key the winner
// table uses. Collisions chain through policyNode.next.
type polKey struct {
	gid GroupID
	wk  physKey
}

// policyNode is one goal's node in the selection tree.
type policyNode struct {
	required PhysProps
	excluded PhysProps
	visits   int
	// arms parallels the goal's cached move set; ms/gen detect a voided
	// cache (merge) so stale arm statistics are dropped with it.
	arms []policyArm
	ms   *moveSet
	gen  uint64
	// best is the scalar metric of the cheapest complete plan achieved
	// at this node, the reference for rewards; +Inf until one exists.
	best float64
	// onPath guards against cyclic descents through merged classes.
	onPath bool
	next   *policyNode
}

// policyArm is the selection state of one move.
type policyArm struct {
	visits  int
	rewards float64
	// prior is the admissible optimistic cost metric of the move (local
	// cost plus input floors): NaN when the cost type has no metric,
	// +Inf when the move is known hopeless (an enforcer that declines).
	prior float64
}

// policyNode returns the selection-tree node for a goal, creating it on
// first visit. gid must be canonical (memo.Find applied); a class that
// merges away simply gets a fresh node under its representative.
func (o *Optimizer) policyNode(gid GroupID, wk physKey, required, excluded PhysProps) *policyNode {
	k := polKey{gid: gid, wk: wk}
	head := o.pol.nodes[k]
	for n := head; n != nil; n = n.next {
		if n.required.Equal(required) && sameExcluded(n.excluded, excluded) {
			return n
		}
	}
	n := &policyNode{required: required, excluded: excluded, best: math.Inf(1), next: head}
	o.pol.nodes[k] = n
	return n
}

// primeArms computes floor-based priors for arms[from:]. The prior of
// an algorithm move is the minimum over its input-property alternatives
// of local cost plus the admissible floors of its input classes — the
// same advance charge branch-and-bound uses — so the greedy first
// descent follows exactly the bound the exhaustive engine prunes with.
func (o *Optimizer) primeArms(node *policyNode, g *Group, ms *moveSet, from int) {
	for i := from; i < len(ms.moves); i++ {
		a := &node.arms[i]
		a.prior = math.NaN()
		mv := &ms.moves[i]
		switch mv.Kind {
		case MoveAlgorithm:
			leaves := mv.leaves
			if leaves == nil {
				leaves = mv.Binding.Leaves(nil)
			}
			floorSum := o.model.ZeroCost()
			if o.lower != nil {
				for _, leaf := range leaves {
					lg := o.memo.groups[o.memo.Find(leaf)-1]
					if lb := o.classFloor(lg); lb != nil {
						floorSum = floorSum.Add(lb)
					}
				}
			}
			for _, alt := range mv.Alts {
				local := mv.Rule.Cost(o.ctx, mv.Binding, node.required, alt)
				if m, ok := costMetric(local.Add(floorSum)); ok {
					if math.IsNaN(a.prior) || m < a.prior {
						a.prior = m
					}
				}
			}
		case MoveEnforcer:
			if _, _, ok := mv.Enforcer.Relax(o.ctx, g.logProps, node.required); !ok {
				a.prior = math.Inf(1)
				continue
			}
			charged := mv.Enforcer.Cost(o.ctx, g.logProps, node.required)
			if o.lower != nil {
				if lb := o.classFloor(g); lb != nil {
					charged = charged.Add(lb)
				}
			}
			if m, ok := costMetric(charged); ok {
				a.prior = m
			}
		}
	}
}

// knownPrior reports whether an arm's prior is a usable finite metric.
func knownPrior(p float64) bool { return !math.IsNaN(p) && !math.IsInf(p, 1) }

// selectArm picks the move to pursue this episode. Ties break toward
// the lower index, i.e. toward higher promise, keeping selection
// deterministic for a fixed random stream.
func (o *Optimizer) selectArm(node *policyNode) int {
	arms := node.arms
	if o.opts.Search.Policy == PolicyWidening {
		width := o.pol.episode + 1
		if width > len(arms) {
			width = len(arms)
		}
		best, bestV := 0, arms[0].visits
		for i := 1; i < width; i++ {
			if arms[i].visits < bestV {
				best, bestV = i, arms[i].visits
			}
		}
		return best
	}
	if node.visits == 0 {
		// Greedy-seeded first descent: the cheapest admissible prior,
		// falling back to promise order when the cost type has no
		// metric.
		best, bestP, found := 0, math.Inf(1), false
		for i := range arms {
			if knownPrior(arms[i].prior) && (!found || arms[i].prior < bestP) {
				best, bestP, found = i, arms[i].prior, true
			}
		}
		return best
	}
	if o.pol.rng.Float64() < mctsEpsilon {
		return o.pol.rng.Intn(len(arms))
	}
	lnN := math.Log(float64(node.visits) + 1)
	best, bestScore := 0, math.Inf(-1)
	for i := range arms {
		a := &arms[i]
		var exploit float64
		switch {
		case a.visits > 0:
			exploit = a.rewards / float64(a.visits)
		case knownPrior(a.prior) && a.prior > 0 && !math.IsInf(node.best, 1):
			// Optimism from the admissible prior: the arm cannot beat
			// its floor, so best/prior bounds its achievable reward
			// from above.
			exploit = node.best / a.prior
		case math.IsInf(a.prior, 1):
			exploit = 0
		default:
			exploit = 1
		}
		score := exploit + uctExploration*math.Sqrt(lnN/float64(a.visits+1))
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// rolloutGoal is the policy engine's FindBestPlan: optimize a goal by
// pursuing ONE selected move, recursing through optimizeInput so the
// whole descent is move-selected, then back the achieved cost up into
// the selection tree and commit any improvement through the winner
// table. The returned transient flag is true unless the failure is
// provable (floor refutation, or a goal with no moves at all): one arm
// per episode never certifies absence.
func (o *Optimizer) rolloutGoal(gid GroupID, required, excluded PhysProps, limit Cost, inclusive bool) (*Plan, bool) {
	if o.memo.err != nil {
		return nil, true
	}
	gid = o.memo.Find(gid)
	g := o.memo.groups[gid-1]
	wk := winnerKey(required, excluded)

	// Floor refutation is sound regardless of policy: when even the
	// admissible floor breaks the bound, no plan within it exists.
	if o.lower != nil && !o.opts.Search.NoPruning {
		if lb := o.classFloor(g); lb != nil {
			if inclusive && limit.Less(lb) || !inclusive && costLE(limit, lb) {
				o.stats.GoalsPruned++
				return nil, false
			}
		}
	}

	o.memo.exploreGroup(g)
	if o.memo.err != nil {
		return nil, true
	}
	if ng := o.memo.Find(gid); ng != gid {
		gid = ng
		g = o.memo.groups[gid-1]
	}

	node := o.policyNode(gid, wk, required, excluded)
	if node.onPath {
		// A cyclic descent answers from the winner table or declines
		// transiently, like the exhaustive engine's in-progress check.
		if w := g.lookupWinnerKeyed(wk, required, excluded); w != nil && w.plan != nil && costLE(w.cost, limit) {
			return w.plan, false
		}
		return nil, true
	}

	mk := keyOf(required)
	ms := g.ensureMoveSet(mk, required)
	if ms.epoch != o.memo.mergeEpoch {
		ms.reset(o.memo.mergeEpoch)
	}
	o.collectMovesInto(ms, g, required)
	if node.ms != ms || node.gen != ms.gen {
		// First visit, or a merge voided the cached moves the arms
		// indexed: (re)build the arm list, dropping stale statistics.
		node.ms, node.gen = ms, ms.gen
		node.arms = make([]policyArm, len(ms.moves))
		o.primeArms(node, g, ms, 0)
	} else if len(node.arms) < len(ms.moves) {
		from := len(node.arms)
		node.arms = append(node.arms, make([]policyArm, len(ms.moves)-from)...)
		o.primeArms(node, g, ms, from)
	}
	if len(node.arms) == 0 {
		// No algorithm applies and no enforcer helps: definitive, the
		// same no-moves failure the exhaustive engine records.
		return nil, false
	}

	// The goal's incumbent is the committed winner: the episode must
	// strictly improve on it, so branch-and-bound refutes worse arms
	// cheaply.
	s := &goal{required: required, excluded: excluded, limit: limit, inclusive: inclusive, policy: true}
	if w := g.lookupWinnerKeyed(wk, required, excluded); w != nil && w.plan != nil && costLE(w.cost, limit) {
		o.stats.WinnerHits++
		s.best = w.plan
		if !o.opts.Search.NoPruning {
			s.limit = w.cost
			s.inclusive = false
		}
	}
	prevBest := s.best

	o.stats.GoalsOptimized++
	if o.tracer != nil {
		o.tracer.Trace(TraceEvent{Kind: TraceGoalBegin, Group: gid,
			Required: required, Excluded: excluded, Limit: limit})
	}

	arm := o.selectArm(node)
	mv := &ms.moves[arm]

	// The budget checkpoint charges the pursued move, exactly as the
	// exhaustive engine does; on exhaustion the sticky memo error
	// unwinds the whole episode.
	if o.bud != nil {
		if err := o.bud.step(); err != nil {
			o.memo.err = err
			return nil, true
		}
	}
	if o.tracer != nil {
		o.tracer.Trace(TraceEvent{Kind: TraceMovePursued, Group: gid,
			Required: required, Move: mv.Name(), MoveKind: mv.Kind})
	}
	node.onPath = true
	switch mv.Kind {
	case MoveAlgorithm:
		o.pursueAlgorithm(s, g, mv)
	case MoveEnforcer:
		o.pursueEnforcer(s, g, mv.Enforcer)
	}
	node.onPath = false

	// Back the outcome up the selection tree. An arm is rewarded only
	// when its pursuit strictly improved the goal's best plan; the
	// reward is the node's best-achieved metric over the achieved cost
	// (1 for the incumbent-setting improvement itself, less for costs
	// later improvements beat). Cost types without a metric degrade to
	// a 0/1 improvement reward.
	node.visits++
	a := &node.arms[arm]
	a.visits++
	if s.best != nil && s.best != prevBest {
		if m, ok := costMetric(s.best.Cost); ok {
			if m < node.best {
				node.best = m
			}
			if m > 0 {
				a.rewards += node.best / m
			} else {
				a.rewards++
			}
		} else {
			a.rewards++
		}
	}

	// Commit improvements through the memo: later episodes reuse them
	// as incumbents and the anytime ladder serves them at a stop.
	if ng := o.memo.Find(gid); ng != gid {
		gid = ng
	}
	fw := o.memo.groups[gid-1].ensureWinnerKeyed(wk, required, excluded)
	if s.best != nil && (fw.plan == nil || s.best.Cost.Less(fw.cost)) {
		fw.plan, fw.cost = s.best, s.best.Cost
		o.stats.RolloutCommits++
		if o.tracer != nil {
			o.tracer.Trace(TraceEvent{Kind: TraceWinner, Group: gid,
				Required: required, Cost: fw.cost, Plan: fw.plan})
		}
	}
	if o.tracer != nil {
		ev := TraceEvent{Kind: TraceGoalEnd, Group: gid, Required: required}
		if fw.plan != nil {
			ev.Cost = fw.cost
		}
		o.tracer.Trace(ev)
	}
	if fw.plan != nil && costLE(fw.cost, limit) {
		return fw.plan, false
	}
	return nil, true
}

// policyOptimize runs the configured stochastic policy for
// OptimizeWithLimitCtx. The seed planner (the configured one, or the
// syntactic seed as the universal fallback) is captured exactly as
// guided search captures it — its cost primes the root limit
// inclusively and its plan becomes the anytime floor — then episodes
// of rolloutGoal run until the episode bound or the budget stops them.
// On a clean finish the result is the best of the committed root
// winner and the vetted fallback ladder, never a bare nil unless no
// fallback exists: a stochastic policy proves nothing by failing.
func (o *Optimizer) policyOptimize(root GroupID, required PhysProps, limit Cost) *Plan {
	var seedCost Cost
	var seed *SeedPlan
	if o.opts.Guidance.SeedPlanner != nil {
		seed = o.opts.Guidance.SeedPlanner(o, root, required)
	} else {
		seed = o.SyntacticSeed(root, required)
	}
	if seed != nil {
		seedCost = seed.Cost
		o.stats.SeedCost = seedCost
		if seed.Plan != nil {
			o.seedFallback = seed.Plan
			o.stats.SeedFloorCost = seed.Plan.Cost
		}
	}
	rootLimit := limit
	inclusive := true
	if seedCost != nil && !o.opts.Search.NoPruning && seedCost.Less(limit) {
		// The seed is achievable, so the optimum costs at most the
		// seed; the inclusive bound admits a plan costing exactly it.
		rootLimit = seedCost
	}

	episodes := o.opts.Search.Episodes
	if episodes < 1 {
		episodes = DefaultPolicyEpisodes
	}
	o.pol = &policyState{
		nodes: make(map[polKey]*policyNode),
		rng:   rand.New(rand.NewSource(o.opts.Search.RandSeed)),
	}

	growth := o.opts.Guidance.SeedGrowth
	if growth <= 1 {
		growth = DefaultSeedGrowth
	}

	var best *Plan
	for ep := 0; ep < episodes && o.memo.err == nil; ep++ {
		o.pol.episode = ep
		p, _ := o.rolloutGoal(root, required, nil, rootLimit, inclusive)
		if p != nil && (best == nil || p.Cost.Less(best.Cost)) {
			best = p
		}
		if p == nil && best == nil {
			// The seed cost is an estimate and may be unachievable (the
			// greedy planner prices a plan it never builds); an episode
			// that came back empty-handed relaxes the limit geometrically
			// toward the caller's, exactly like guided search's staged
			// relaxation, so later episodes can commit real plans.
			if sc, ok := rootLimit.(ScalableCost); ok && rootLimit.Less(limit) {
				relaxed := sc.Scale(growth)
				if limit.Less(relaxed) {
					relaxed = limit
				}
				rootLimit = relaxed
				o.stats.LimitStages++
			}
		}
		o.stats.Episodes++
		if o.tracer != nil {
			ev := TraceEvent{Kind: TracePolicyEpisode, Group: root,
				Required: required, Stage: ep + 1, Steps: o.stats.Steps()}
			if best != nil {
				ev.Cost = best.Cost
				ev.Plan = best
			}
			o.tracer.Trace(ev)
		}
	}
	if o.memo.err != nil {
		// Budget stop: hand the best episode result (possibly nil) to
		// the caller's anytime epilogue, which falls back through the
		// committed root winner, the seed floor, and the query as
		// written.
		return best
	}
	if fb := o.anytimeFallback(root, required, limit); fb != nil && (best == nil || fb.Cost.Less(best.Cost)) {
		best = fb
		o.stats.AnytimeFallback = true
	}
	return best
}
