package core

// bindingArena slab-allocates the Binding nodes and child slices
// retained by cached moves. Bindings cloned out of the matcher used to
// be individually heap-allocated per move; the arena hands out pointers
// into chunked slabs instead, so a whole search's worth of retained
// bindings costs a handful of allocations. Slabs live exactly as long
// as the memo — one query — and are reclaimed wholesale with it.
//
// Slabs are append-only and a new chunk is started whenever the current
// one is full, so previously returned pointers and sub-slices are never
// invalidated by growth.
type bindingArena struct {
	nodes    []Binding
	children []*Binding
}

const arenaChunk = 128

// newBinding returns a zeroed Binding from the arena.
func (a *bindingArena) newBinding() *Binding {
	if len(a.nodes) == cap(a.nodes) {
		a.nodes = make([]Binding, 0, arenaChunk)
	}
	a.nodes = a.nodes[:len(a.nodes)+1]
	b := &a.nodes[len(a.nodes)-1]
	*b = Binding{}
	return b
}

// childSlice returns a zeroed slice of n binding pointers with capacity
// exactly n, carved from the arena.
func (a *bindingArena) childSlice(n int) []*Binding {
	if n == 0 {
		return nil
	}
	if cap(a.children)-len(a.children) < n {
		size := arenaChunk
		if n > size {
			size = n
		}
		a.children = make([]*Binding, 0, size)
	}
	s := a.children[len(a.children) : len(a.children)+n : len(a.children)+n]
	a.children = a.children[:len(a.children)+n]
	for i := range s {
		s[i] = nil
	}
	return s
}

// cloneBinding deep-copies a binding into the arena; the matcher reuses
// child slices during enumeration, so retained bindings need their own
// copies.
func (m *Memo) cloneBinding(b *Binding) *Binding {
	c := m.arena.newBinding()
	c.Expr, c.Group = b.Expr, b.Group
	if len(b.Children) > 0 {
		c.Children = m.arena.childSlice(len(b.Children))
		for i, ch := range b.Children {
			c.Children[i] = m.cloneBinding(ch)
		}
	}
	return c
}
