package core

// Guided branch-and-bound. The paper's directed dynamic programming
// derives its efficiency from descending cost limits, yet a cold start
// at InfiniteCost() prunes nothing until the depth-first search happens
// to complete a first plan. The guidance layer closes that gap: a seed
// planner produces a cheap complete plan up front, and the seed's cost
// becomes the initial limit. Because the seed is achievable, the optimal
// plan costs at most the seed — the seeded stage searches with the bound
// inclusive so a plan costing exactly the seed is admitted, and the
// first stage is guaranteed to succeed whenever the seed's cost is
// honest. If a seed planner underestimates (a cost-only planner whose
// formulas drift from the model's), the stage fails, the failure is
// memoized against that limit, and the search retries under a
// geometrically relaxed limit — iterative deepening over cost — reusing
// every winner and memoized failure already recorded. Guided search
// never returns the seed plan itself: only what the search engine finds
// is returned, so guided and unguided runs produce identical plans.

// SeedPlan is what a seed planner hands the guidance layer: the cost of
// one complete, achievable plan for the goal, plus an optional
// human-readable sketch for EXPLAIN output. The engine needs only the
// cost, as the bound; a planner that materializes the plan itself may
// attach it so a budget-stopped search can fall back on it.
type SeedPlan struct {
	// Cost is the seed plan's estimated cost under the model's own cost
	// functions. It must be achievable (a real plan costs this much);
	// an underestimate costs extra search stages but never changes the
	// result.
	Cost Cost
	// Desc optionally sketches the seed plan for display.
	Desc string
	// Plan, if non-nil, is the complete seed plan itself. Guided search
	// never returns it as the optimum, but it becomes the degradation
	// floor when a Budget or cancellation stops the search before any
	// better plan is found (see OptimizeWithLimitCtx). A seed plan
	// whose Delivered vector does not cover the goal's requirement is
	// ignored for that purpose. Its Group and LogProps fields may refer
	// to the planner's own scratch memo.
	Plan *Plan
}

// SeedPlanner produces a cheap complete plan for an optimization goal
// before exhaustive search begins. root is the goal's equivalence class
// in the optimizer's memo (not yet explored), required the goal's
// physical property vector. Returning nil declines to seed — the search
// proceeds unguided. Planners must be safe for concurrent use across
// optimizer instances: ParallelOptimize shares one Options value among
// its workers.
type SeedPlanner func(o *Optimizer, root GroupID, required PhysProps) *SeedPlan

// LowerBounder is an optional model extension that makes cost bounds cut
// work before it happens. LowerBound returns an admissible floor for an
// equivalence class: no physical plan for the class, under any property
// requirement, may cost less than the floor (for the relational model,
// every plan must at least scan its base relations once). The engine
// uses floors to refute goals whose limit falls below the floor without
// exploring the class, and to charge an algorithm's not-yet-optimized
// inputs in advance when pruning. Returning nil declines for a class.
// An inadmissible floor (one exceeding some real plan) makes the search
// incorrectly discard plans — floors must be provable under the model's
// own cost functions.
type LowerBounder interface {
	LowerBound(lp LogicalProps) Cost
}

// Defaults for the staged relaxation schedule.
const (
	// DefaultSeedStages is the number of seeded limit stages before the
	// final stage at the caller's limit.
	DefaultSeedStages = 3
	// DefaultSeedGrowth is the geometric limit-relaxation factor
	// between seeded stages.
	DefaultSeedGrowth = 4.0
)

// guidedOptimize runs the staged search for OptimizeWithLimit when a
// SeedPlanner is configured. Winners and memoized failures accumulate in
// the ordinary tables across stages: winners recorded under any finite
// limit are globally optimal, and a failure at limit F certifies that no
// plan costs less than F, so both are sound to reuse at higher limits.
func (o *Optimizer) guidedOptimize(root GroupID, required PhysProps, limit Cost) *Plan {
	var seedCost Cost
	if seed := o.opts.Guidance.SeedPlanner(o, root, required); seed != nil {
		seedCost = seed.Cost
		o.stats.SeedCost = seedCost
		if seed.Plan != nil {
			// Keep the materialized seed as the anytime degradation
			// floor; OptimizeWithLimitCtx vets its properties and cost
			// before ever returning it.
			o.seedFallback = seed.Plan
			o.stats.SeedFloorCost = seed.Plan.Cost
		}
	}
	if seedCost == nil || o.opts.Search.NoPruning || !seedCost.Less(limit) {
		// No usable seed, pruning disabled, or the caller's limit is
		// already at least as tight as the seed: one unguided stage under
		// the caller's (inclusive) limit.
		o.stageTrace(root, required, limit)
		p, _ := o.searchRoot(root, required, limit, true)
		return p
	}

	stages := o.opts.Guidance.SeedStages
	if stages < 1 {
		stages = DefaultSeedStages
	}
	growth := o.opts.Guidance.SeedGrowth
	if growth <= 1 {
		growth = DefaultSeedGrowth
	}

	cur := seedCost
	for i := 0; i < stages; i++ {
		o.stageTrace(root, required, cur)
		p, transient := o.searchRoot(root, required, cur, true)
		if p != nil {
			return p
		}
		if o.memo.err != nil {
			return nil
		}
		if transient {
			// A cycle or budget stop kept the stage from being
			// definitive; relaxing the limit will not help more than
			// the final stage does.
			break
		}
		sc, ok := cur.(ScalableCost)
		if !ok {
			// The cost ADT cannot be scaled; skip straight to the
			// caller's limit.
			break
		}
		next := sc.Scale(growth)
		if !next.Less(limit) {
			break
		}
		cur = next
	}

	// Final stage: the caller's original limit, with the same inclusive
	// bound semantics as an unguided run.
	o.stageTrace(root, required, limit)
	p, _ := o.searchRoot(root, required, limit, true)
	return p
}

// stageTrace counts a guided-search limit stage and reports it to the
// tracer.
func (o *Optimizer) stageTrace(root GroupID, required PhysProps, limit Cost) {
	o.stats.LimitStages++
	if o.tracer != nil {
		o.tracer.Trace(TraceEvent{Kind: TraceLimitStage, Group: root,
			Required: required, Limit: limit, Stage: o.stats.LimitStages})
	}
}

// seedModel wraps a model with an empty transformation rule set. The
// syntactic seed pass optimizes the query exactly as written — algorithm
// and enforcer choices only, no algebraic reordering — so its scratch
// memo never grows beyond the original expression tree.
type seedModel struct{ Model }

func (seedModel) TransformationRules() []*TransformRule { return nil }

// SyntacticSeed costs the query as written: it re-optimizes the goal's
// original expression tree in a scratch memo with transformation rules
// disabled, choosing only algorithms and enforcers. The resulting cost
// is that of a real plan under the model's own cost functions, making it
// a sound (if loose) seed for any data model — the trivial per-model
// fallback planner. It returns nil when the tree cannot be recovered or
// no plan for it exists. The seed carries its complete plan, so it also
// serves as the anytime degradation floor.
func (o *Optimizer) SyntacticSeed(root GroupID, required PhysProps) *SeedPlan {
	p := o.syntacticPlan(root, required)
	if p == nil {
		return nil
	}
	return &SeedPlan{Cost: p.Cost, Desc: p.String(), Plan: p}
}

// syntacticPlan is the scratch optimization behind SyntacticSeed,
// returning the complete plan for the query as written (its Group and
// LogProps fields refer to the scratch memo). The anytime fallback uses
// it directly when a budget stop arrives before any plan was found: the
// pass is cheap — with transformations disabled the scratch memo never
// grows beyond the original expression tree.
func (o *Optimizer) syntacticPlan(root GroupID, required PhysProps) *Plan {
	tree := o.originalTree(o.memo.Find(root), make(map[GroupID]bool))
	if tree == nil {
		return nil
	}
	scratch := NewOptimizer(seedModel{o.model}, &Options{Budget: Budget{MaxExprs: o.opts.Budget.MaxExprs}})
	g := scratch.InsertQuery(tree)
	if g == InvalidGroup {
		return nil
	}
	p, err := scratch.Optimize(g, required)
	// The scratch pass's rule-match attempts are real work; account for
	// them in the guided run's counters so comparisons stay honest.
	o.stats.MatchCalls += scratch.stats.MatchCalls
	if err != nil || p == nil {
		return nil
	}
	return p
}

// SyntacticSeedPlanner adapts SyntacticSeed to the SeedPlanner hook.
func SyntacticSeedPlanner() SeedPlanner {
	return func(o *Optimizer, root GroupID, required PhysProps) *SeedPlan {
		return o.SyntacticSeed(root, required)
	}
}

// originalTree reconstructs a logical expression tree for a class from
// the memo, following each class's first stored expression — before any
// exploration these are exactly the operators the query was inserted
// with. onPath guards against reference cycles a merged memo can hold.
func (o *Optimizer) originalTree(gid GroupID, onPath map[GroupID]bool) *ExprTree {
	gid = o.memo.Find(gid)
	if onPath[gid] {
		return nil
	}
	g := o.memo.Group(gid)
	if len(g.exprs) == 0 {
		return nil
	}
	e := g.exprs[0]
	t := &ExprTree{Op: e.Op}
	if len(e.Inputs) > 0 {
		onPath[gid] = true
		t.Children = make([]*ExprTree, len(e.Inputs))
		for i, in := range e.Inputs {
			c := o.originalTree(in, onPath)
			if c == nil {
				return nil
			}
			t.Children[i] = c
		}
		delete(onPath, gid)
	}
	return t
}
