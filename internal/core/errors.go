package core

import (
	"context"
	"errors"
)

// ErrBudget is the umbrella error for every way a search can be stopped
// before running to completion: all of ErrCanceled, ErrDeadline,
// ErrStepBudget, and ErrMemoBudget match it under errors.Is. It mirrors
// the paper's observation that the EXODUS prototype aborted on larger
// queries due to lack of memory; the Volcano engine's budgets exist so a
// compile server can bound optimization effort and account for it
// faithfully.
//
// A budget stop is not fatal: Optimize and OptimizeWithLimit degrade
// gracefully, returning the best complete plan discovered before the
// stop (or a seed-plan floor) alongside the typed error. A nil plan with
// a nil error, by contrast, means the search ran to completion and
// proved that no plan within the cost limit exists.
var ErrBudget = errors.New("core: optimization budget exhausted")

// budgetError is a typed budget stop. Is reports a match against both
// the umbrella ErrBudget and, when the stop originated from a context,
// the corresponding context error, so errors.Is(err, context.Canceled)
// and errors.Is(err, ErrBudget) both hold for a canceled search.
type budgetError struct {
	msg  string
	also error
}

func (e *budgetError) Error() string { return e.msg }

func (e *budgetError) Is(target error) bool {
	return target == ErrBudget || (e.also != nil && target == e.also)
}

// The typed budget errors. Each matches ErrBudget under errors.Is;
// ErrCanceled and ErrDeadline additionally match context.Canceled and
// context.DeadlineExceeded respectively.
var (
	// ErrCanceled reports that the optimization's context was canceled.
	ErrCanceled error = &budgetError{
		msg:  "core: optimization canceled",
		also: context.Canceled,
	}
	// ErrDeadline reports that the Budget.Timeout or the context's
	// deadline expired mid-search.
	ErrDeadline error = &budgetError{
		msg:  "core: optimization deadline exceeded",
		also: context.DeadlineExceeded,
	}
	// ErrStepBudget reports that the search pursued Budget.MaxSteps
	// moves without running to completion.
	ErrStepBudget error = &budgetError{
		msg: "core: search step budget exhausted",
	}
	// ErrMemoBudget reports that the memo outgrew Budget.MaxExprs
	// expressions or Budget.MaxMemoBytes estimated bytes.
	ErrMemoBudget error = &budgetError{
		msg: "core: memo budget exhausted",
	}
)
