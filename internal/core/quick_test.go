package core_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// toyShape is a random binary tree over distinct leaves, generated for
// property-based tests.
type toyShape struct {
	tree   *core.ExprTree
	leaves int
}

// Generate implements quick.Generator: a random pair tree with 1-6
// leaves.
func (toyShape) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(6)
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	var build func(lo, hi int) *core.ExprTree
	build = func(lo, hi int) *core.ExprTree {
		if hi-lo == 1 {
			return leaf(names[lo])
		}
		cut := lo + 1 + r.Intn(hi-lo-1)
		return pair(build(lo, cut), build(cut, hi))
	}
	return reflect.ValueOf(toyShape{tree: build(0, n), leaves: n})
}

// toyOptimum is the closed-form optimum of the toy cost model: n scans
// at 1, n-1 plain pairs at 2; a required color adds min(paint=4,
// colored-pair extra=8) when a pair exists, else paint for a bare leaf.
func toyOptimum(leaves int, colored bool) toyCost {
	c := toyCost(leaves + 2*(leaves-1))
	if colored {
		c += 4
	}
	return c
}

// TestQuickOptimumMatchesClosedForm: for every random tree shape the
// engine finds the closed-form optimal cost, for both the vacuous and a
// colored requirement.
func TestQuickOptimumMatchesClosedForm(t *testing.T) {
	check := func(s toyShape) bool {
		opt := newToyOpt(nil)
		g := opt.InsertQuery(s.tree)
		plain, err := opt.Optimize(g, nil)
		if err != nil || plain == nil {
			return false
		}
		if plain.Cost.(toyCost) != toyOptimum(s.leaves, false) {
			t.Logf("plain cost %v, want %v (leaves=%d)", plain.Cost, toyOptimum(s.leaves, false), s.leaves)
			return false
		}
		colored, err := opt.Optimize(g, toyColor(2))
		if err != nil || colored == nil {
			return false
		}
		if colored.Cost.(toyCost) != toyOptimum(s.leaves, true) {
			t.Logf("colored cost %v, want %v (leaves=%d)", colored.Cost, toyOptimum(s.leaves, true), s.leaves)
			return false
		}
		return opt.Stats().ConsistencyViolations == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPruningAndMemoInvariant: every engine configuration finds the
// same optimal cost on random shapes.
func TestQuickPruningAndMemoInvariant(t *testing.T) {
	variants := []core.Options{
		{},
		{Search: core.SearchOptions{NoPruning: true}},
		{Search: core.SearchOptions{NoFailureMemo: true}},
		{Search: core.SearchOptions{NoPruning: true, NoFailureMemo: true}},
		{Guidance: core.GuidanceOptions{SeedPlanner: core.SyntacticSeedPlanner()}},
		{
			Search:   core.SearchOptions{NoFailureMemo: true},
			Guidance: core.GuidanceOptions{SeedPlanner: core.SyntacticSeedPlanner()},
		},
	}
	check := func(s toyShape) bool {
		want := toyOptimum(s.leaves, true)
		for _, v := range variants {
			v := v
			opt := core.NewOptimizer(&toyModel{}, &v)
			g := opt.InsertQuery(s.tree)
			plan, err := opt.Optimize(g, toyColor(1))
			if err != nil || plan == nil || plan.Cost.(toyCost) != want {
				t.Logf("options %+v: plan=%v err=%v want=%v", v, plan, err, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeliveredCoversRequired: every plan's delivered vector covers
// the requirement, and covering is reflexive on the delivered vector.
func TestQuickDeliveredCoversRequired(t *testing.T) {
	check := func(s toyShape, colorSeed uint8) bool {
		required := toyColor(int(colorSeed%4) + 1)
		opt := newToyOpt(nil)
		g := opt.InsertQuery(s.tree)
		plan, err := opt.Optimize(g, required)
		if err != nil || plan == nil {
			return false
		}
		return plan.Delivered.Covers(required) && plan.Delivered.Covers(plan.Delivered)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMemoDedup: inserting the same random tree twice never creates
// new expressions the second time and resolves to the same class.
func TestQuickMemoDedup(t *testing.T) {
	check := func(s toyShape) bool {
		opt := newToyOpt(nil)
		g1 := opt.InsertQuery(s.tree)
		before := opt.Memo().ExprCount()
		g2 := opt.InsertQuery(s.tree)
		return g1 == g2 && opt.Memo().ExprCount() == before
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMergeStability: exploring any random shape leaves the memo
// with consistent class resolution — every expression's class resolves
// to a live class containing it.
func TestQuickMergeStability(t *testing.T) {
	check := func(s toyShape) bool {
		opt := newToyOpt(nil)
		g := opt.InsertQuery(s.tree)
		if err := opt.Explore(g); err != nil {
			return false
		}
		memo := opt.Memo()
		ok := true
		memo.Groups(func(grp *core.Group) {
			for _, e := range grp.Exprs() {
				if memo.Group(e.Group()) != grp {
					ok = false
				}
				for _, in := range e.Inputs {
					if memo.Find(in) == 0 {
						ok = false
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMoveFilterNeverImproves: any random move subset (that keeps
// enforcers, so goals stay satisfiable) yields plans at best equal to
// exhaustive search — heuristics trade quality, never gain it.
func TestQuickMoveFilterNeverImproves(t *testing.T) {
	check := func(s toyShape, seed int64) bool {
		exhaustive := newToyOpt(nil)
		ge := exhaustive.InsertQuery(s.tree)
		pe, err := exhaustive.Optimize(ge, toyColor(1))
		if err != nil || pe == nil {
			return false
		}

		rng := rand.New(rand.NewSource(seed))
		filtered := core.NewOptimizer(&toyModel{}, &core.Options{
			Search: core.SearchOptions{
				NoIncremental: true, // MoveFilter requires the full-recollection path
				MoveFilter: func(moves []core.Move) []core.Move {
					out := moves[:0]
					for _, m := range moves {
						if m.Kind == core.MoveEnforcer || rng.Intn(2) == 0 {
							out = append(out, m)
						}
					}
					return out
				},
			},
		})
		gf := filtered.InsertQuery(s.tree)
		pf, err := filtered.Optimize(gf, toyColor(1))
		if err != nil {
			return false
		}
		// The filtered search may fail entirely; when it finds a plan
		// it must not beat the exhaustive optimum.
		return pf == nil || !pf.Cost.Less(pe.Cost)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
