package core

import (
	"errors"
	"fmt"
)

// Options tune the search engine. The zero value is the paper's default
// configuration: exhaustive directed dynamic programming with
// branch-and-bound pruning and memoization of both winners and
// failures, unbounded and untraced.
//
// The fields are grouped by facet: Search holds the strategy toggles
// the ablation experiments flip, Guidance the seeded branch-and-bound
// layer, Budget the anytime resource bounds, and Trace observability.
// The toggles exist because the paper places heuristics and search
// control "into the hands of the optimizer implementor": they let
// implementors reproduce weaker strategies (EXODUS- or Starburst-like)
// for comparison.
//
// NewOptimizer validates the configuration and panics on a
// contradictory one; callers accepting user-supplied options should
// call Validate first.
type Options struct {
	// Search selects the search strategy.
	Search SearchOptions
	// Guidance configures guided (seeded) branch-and-bound.
	Guidance GuidanceOptions
	// Budget bounds the resources one optimization call may consume.
	Budget Budget
	// Trace configures search observability.
	Trace TraceOptions
}

// SearchOptions are the search-strategy toggles. The zero value is the
// paper's exhaustive, pruned, memoizing search.
type SearchOptions struct {
	// Workers sets the intra-query parallelism of one optimization call:
	// FindBestPlan activations are decomposed into goal and move tasks
	// scheduled over this many workers sharing the memo. Values <= 1
	// select the sequential engine — the exact recursive code path of
	// prior versions, byte-identical in both plans and Stats counters.
	// With Workers > 1 the pruning order (and therefore the effort
	// counters) may differ run to run, but the final plan cost is always
	// identical to a sequential run's. This is parallelism *within* one
	// search; ParallelOptimize parallelizes *across* queries and composes
	// with it (see ParallelOptimizeCtx on oversubscription).
	Workers int
	// ShareMemo lets ParallelOptimizeCtx target one shared memo for a
	// whole batch: jobs over the same model and options insert their
	// trees into a common memo, their root goals are optimized as
	// independent roots of one task-engine search, and equivalence
	// classes (and winners) reached by more than one root are counted in
	// Stats.SharedGroups and Stats.SharedWinners. With ShareMemo off —
	// or for batches whose jobs differ in model or options — every
	// result is bit-identical to an independent optimization. ShareMemo
	// batches run the task engine even when Workers <= 1 (with one
	// worker), and the Budget bounds the batch as a whole rather than
	// each job. See ParallelOptimizeCtx and MaterializeSharedPlans.
	ShareMemo bool
	// NoPruning disables branch-and-bound: every move is pursued to
	// completion regardless of the cost limit.
	NoPruning bool
	// NoFailureMemo disables memoization of optimization failures
	// ("interesting facts ... include failures that can save future
	// optimization effort").
	NoFailureMemo bool
	// GlueMode replaces property-directed search with the Starburst
	// strategy the paper argues against: each class is optimized once
	// without property requirements, and enforcers are glued on top of
	// the winning plan afterwards.
	GlueMode bool
	// NoIncremental disables the incremental move-collection cache:
	// every fixpoint iteration of FindBestPlan re-matches all
	// implementation rules against all of a class's expressions, as the
	// engine originally did. It exists for A/B testing the incremental
	// scheme (the results must be identical) and as a safety valve.
	NoIncremental bool
	// MoveFilter, if non-nil, selects and orders the moves pursued for
	// each optimization goal. It receives the promise-ordered move
	// list and returns the (possibly trimmed, reordered) list to
	// pursue. Returning a subset makes the search heuristic rather
	// than exhaustive. MoveFilter requires NoIncremental — heuristics
	// must see the complete move list of every iteration, which the
	// incremental cache does not replay — and Validate rejects the
	// combination otherwise.
	MoveFilter func(moves []Move) []Move
	// Policy selects the search policy. The zero value is the paper's
	// exhaustive directed dynamic programming; PolicyMCTS and
	// PolicyWidening replace it with budgeted stochastic search over the
	// same memo: episodes that pursue one move per goal instead of all
	// of them, committing completed sub-plans into the ordinary winner
	// tables so anytime fallback, budgets, tracing, and Stats keep
	// their contracts. A stochastic policy cannot prove that no plan
	// exists: where the exhaustive engine returns (nil, nil) as proof
	// of absence, a policy run returns the best vetted fallback plan
	// instead, and returns nil only when not even a fallback exists.
	// Policies run on the sequential engine (Workers <= 1) and require
	// the incremental move cache; Validate rejects other combinations.
	Policy SearchPolicy
	// RandSeed seeds the stochastic policy's random stream. Runs with
	// equal seeds (and no wall-clock budget) are deterministic:
	// byte-identical plans and Stats. The zero value is a fixed seed,
	// not a random one, so policy runs are reproducible by default.
	RandSeed int64
	// Episodes bounds the number of rollout episodes a stochastic
	// policy runs; values < 1 mean DefaultPolicyEpisodes. Budget bounds
	// (MaxSteps, Timeout) stop the episode loop early with the usual
	// anytime degradation.
	Episodes int
}

// SearchPolicy selects the engine's search policy: exhaustive directed
// dynamic programming, or one of the budgeted stochastic policies built
// for the 10–16-relation regime where exhaustive search exceeds any
// reasonable budget.
type SearchPolicy int8

const (
	// PolicyExhaustive is the paper's complete search (the default).
	PolicyExhaustive SearchPolicy = iota
	// PolicyMCTS selects Monte-Carlo tree search over memo goals: the
	// promise-ordered move list is the action set, rollouts are
	// greedy-seeded (admissible floors as priors) and run to complete
	// plans, and achieved costs back up through a UCT-style selection
	// tree keyed by (class, physical property vector).
	PolicyMCTS
	// PolicyWidening selects iterative widening on the same machinery:
	// each pass widens the considered prefix of every goal's
	// promise-ordered move list by one, pursuing the least-visited move
	// within the prefix. It is deterministic even across RandSeed
	// values — the A/B control for PolicyMCTS.
	PolicyWidening
)

// String renders the policy name as accepted by ParseSearchPolicy.
func (p SearchPolicy) String() string {
	switch p {
	case PolicyExhaustive:
		return "exhaustive"
	case PolicyMCTS:
		return "mcts"
	case PolicyWidening:
		return "widening"
	}
	return fmt.Sprintf("SearchPolicy(%d)", int(p))
}

// ParseSearchPolicy maps a policy name (as rendered by String) to its
// SearchPolicy value; CLI -search-policy flags use it.
func ParseSearchPolicy(s string) (SearchPolicy, error) {
	switch s {
	case "", "exhaustive":
		return PolicyExhaustive, nil
	case "mcts":
		return PolicyMCTS, nil
	case "widening":
		return PolicyWidening, nil
	}
	return PolicyExhaustive, fmt.Errorf("core: unknown search policy %q (want exhaustive, mcts, or widening)", s)
}

// GuidanceOptions configure guided branch-and-bound: a seed planner
// whose plan cost primes the search's cost limit.
type GuidanceOptions struct {
	// SeedPlanner, if non-nil, switches Optimize and OptimizeWithLimit
	// to guided branch-and-bound: the planner produces a cheap complete
	// plan before the exhaustive search runs, and the seed's cost
	// becomes the initial cost limit. The seeded limit is inclusive —
	// an optimal plan costing exactly the seed is never pruned away —
	// and if it proves infeasible (the seed underestimated), the search
	// retries under geometrically relaxed limits before falling back to
	// the caller's limit, reusing the winner and failure tables across
	// stages. Guided search returns only plans found by the search
	// engine, never the seed itself, so the returned plan and its cost
	// are identical to an unguided exhaustive run. (The seed plan does
	// serve as the degradation floor when a Budget stops the search —
	// see OptimizeWithLimitCtx.)
	SeedPlanner SeedPlanner
	// SeedStages is the number of seeded limit stages guided search
	// runs before the final stage at the caller's limit; values < 1
	// mean DefaultSeedStages.
	SeedStages int
	// SeedGrowth is the geometric factor applied to the cost limit
	// between seeded stages; values <= 1 mean DefaultSeedGrowth. It
	// takes effect only when the model's cost type implements
	// ScalableCost.
	SeedGrowth float64
}

// TraceOptions configure search observability.
type TraceOptions struct {
	// Tracer, if non-nil, receives structured search-trace events (see
	// TraceEvent). Use TextTracer or ClassicTracer for the engine's
	// one-line text rendering.
	Tracer Tracer
}

// Validate checks the configuration for contradictions: a MoveFilter
// without NoIncremental, GlueMode combined with a SeedPlanner, or
// negative guidance and budget bounds. NewOptimizer panics on an
// invalid configuration; servers accepting user-supplied options should
// validate first and surface the error instead.
func (o *Options) Validate() error {
	if o == nil {
		return nil
	}
	if o.Search.MoveFilter != nil && !o.Search.NoIncremental {
		return errors.New("core: Search.MoveFilter requires Search.NoIncremental — heuristics must see the complete move list of every iteration, which the incremental move cache does not replay")
	}
	if o.Search.Workers < 0 {
		return fmt.Errorf("core: Search.Workers must not be negative, got %d", o.Search.Workers)
	}
	if o.Search.Workers > 1 && o.Search.MoveFilter != nil {
		return errors.New("core: Search.MoveFilter requires sequential search (Search.Workers <= 1) — a heuristic move order is meaningless when moves are pursued concurrently")
	}
	if o.Search.Workers > 1 && o.Search.GlueMode {
		return errors.New("core: Search.GlueMode requires sequential search (Search.Workers <= 1)")
	}
	if o.Search.GlueMode && o.Guidance.SeedPlanner != nil {
		return errors.New("core: Search.GlueMode and Guidance.SeedPlanner are mutually exclusive — glue mode optimizes without property-directed limits to guide")
	}
	if o.Search.ShareMemo && o.Search.GlueMode {
		return errors.New("core: Search.ShareMemo requires the task engine, which Search.GlueMode does not run on")
	}
	if o.Search.ShareMemo && o.Search.MoveFilter != nil {
		return errors.New("core: Search.MoveFilter requires sequential search, which Search.ShareMemo batches never use")
	}
	if o.Search.ShareMemo && o.Guidance.SeedPlanner != nil {
		return errors.New("core: Guidance.SeedPlanner seeds one root's limit and cannot guide a Search.ShareMemo batch of roots")
	}
	switch o.Search.Policy {
	case PolicyExhaustive:
	case PolicyMCTS, PolicyWidening:
		if o.Search.Workers > 1 {
			return errors.New("core: stochastic search policies require the sequential engine (Search.Workers <= 1)")
		}
		if o.Search.GlueMode {
			return errors.New("core: Search.GlueMode and a stochastic Search.Policy are mutually exclusive")
		}
		if o.Search.ShareMemo {
			return errors.New("core: Search.ShareMemo batches run the exhaustive task engine; a stochastic Search.Policy cannot drive them")
		}
		if o.Search.NoIncremental || o.Search.MoveFilter != nil {
			return errors.New("core: stochastic search policies index the incremental move cache; Search.NoIncremental and Search.MoveFilter are incompatible with them")
		}
	default:
		return fmt.Errorf("core: unknown Search.Policy %d", int(o.Search.Policy))
	}
	if o.Search.Episodes < 0 {
		return fmt.Errorf("core: Search.Episodes must not be negative, got %d", o.Search.Episodes)
	}
	if o.Guidance.SeedStages < 0 {
		return fmt.Errorf("core: Guidance.SeedStages must not be negative, got %d", o.Guidance.SeedStages)
	}
	if o.Guidance.SeedGrowth < 0 {
		return fmt.Errorf("core: Guidance.SeedGrowth must not be negative, got %g", o.Guidance.SeedGrowth)
	}
	if o.Budget.Timeout < 0 {
		return fmt.Errorf("core: Budget.Timeout must not be negative, got %s", o.Budget.Timeout)
	}
	if o.Budget.MaxSteps < 0 {
		return fmt.Errorf("core: Budget.MaxSteps must not be negative, got %d", o.Budget.MaxSteps)
	}
	if o.Budget.MaxMemoBytes < 0 {
		return fmt.Errorf("core: Budget.MaxMemoBytes must not be negative, got %d", o.Budget.MaxMemoBytes)
	}
	if o.Budget.MaxExprs < 0 {
		return fmt.Errorf("core: Budget.MaxExprs must not be negative, got %d", o.Budget.MaxExprs)
	}
	return nil
}

// MoveKind distinguishes the three kinds of moves the optimizer can
// explore at any point.
type MoveKind int8

// The move kinds of the paper's Figure 2. Transformation moves are
// subsumed by group exploration in this engine (equivalent under
// exhaustive search) and reported to MoveFilter for visibility only.
const (
	// MoveAlgorithm applies an implementation rule.
	MoveAlgorithm MoveKind = iota
	// MoveEnforcer applies a property-enforcing physical operator.
	MoveEnforcer
)

// Move is one candidate step for an optimization goal, exposed to the
// MoveFilter heuristic hook.
type Move struct {
	// Kind says whether the move applies an algorithm or an enforcer.
	Kind MoveKind
	// Promise is the rule's or enforcer's promise; moves are pursued
	// in descending promise order.
	Promise int
	// Rule is the implementation rule for MoveAlgorithm moves.
	Rule *ImplRule
	// Binding is the matched expression for MoveAlgorithm moves.
	Binding *Binding
	// Alts are the acceptable input property combinations for
	// MoveAlgorithm moves.
	Alts []InputReq
	// Enforcer is the enforcer for MoveEnforcer moves.
	Enforcer *Enforcer

	// leaves caches Binding.Leaves for MoveAlgorithm moves, computed
	// once at collection time so repeated pursuits of a cached move
	// skip the tree walk (and its allocation).
	leaves []GroupID
}

// Name returns the implementation rule's or enforcer's name.
func (mv *Move) Name() string {
	if mv.Kind == MoveEnforcer {
		return mv.Enforcer.Name
	}
	return mv.Rule.Name
}

// Stats accumulates search-effort counters for one optimizer run. They
// feed the experiment harness (optimization effort, memory) and the
// consistency checks in the test suite.
type Stats struct {
	// Groups is the number of equivalence classes created.
	Groups int
	// Exprs is the number of distinct logical expressions stored.
	Exprs int
	// Merges is the number of class unifications performed.
	Merges int
	// RulesFired counts transformation-rule applications (post
	// condition code).
	RulesFired int
	// Bindings counts pattern-match bindings enumerated.
	Bindings int
	// AlgorithmMoves counts algorithm moves pursued.
	AlgorithmMoves int
	// EnforcerMoves counts enforcer moves pursued.
	EnforcerMoves int
	// Pruned counts moves abandoned by branch-and-bound.
	Pruned int
	// WinnerHits counts goals answered from the winner table.
	WinnerHits int
	// FailureHits counts goals answered from memoized failures.
	FailureHits int
	// MatchCalls counts (expression, implementation-rule) match
	// attempts during move collection. With incremental move collection
	// each pair is matched once per (class, requirement) between
	// merges; the from-scratch engine re-matches every pair on every
	// fixpoint iteration and goal re-activation.
	MatchCalls int
	// MovesReused counts moves replayed from a class's move cache —
	// collected by an earlier activation of the same (class,
	// requirement) goal and pursued again without any rule re-matching.
	MovesReused int
	// GoalsOptimized counts goals actually searched.
	GoalsOptimized int
	// ConsistencyViolations counts plans whose delivered physical
	// properties failed to cover the requested vector — the paper's
	// consistency check. Always zero for a correct model.
	ConsistencyViolations int
	// PeakMemoBytes is the largest memo size estimate observed.
	PeakMemoBytes int

	// SeedCost is the cost of the seed plan guided search started from;
	// nil when the run was unguided or the seed planner produced
	// nothing.
	SeedCost Cost
	// LimitStages counts the branch-and-bound stages guided search ran:
	// 1 when the seeded limit sufficed immediately, more when the limit
	// had to be relaxed.
	LimitStages int
	// GoalsPruned counts goals that completed without finding any plan
	// within their cost limit — the definitive bound-failures a tight
	// initial limit produces (transient failures from cycles or budget
	// stops are not counted).
	GoalsPruned int
	// MovesSkipped counts moves abandoned on their algorithm's or
	// enforcer's local cost alone, before any input was optimized — the
	// cheapest kind of pruning, and the one a seeded limit multiplies.
	MovesSkipped int

	// SearchWorkers is the number of workers the search ran on: 1 for
	// the sequential engine, Options.Search.Workers for the task engine.
	SearchWorkers int
	// TasksRun counts task executions of the parallel engine: goal
	// starts, move pursuits (including re-executions after a wake-up),
	// and goal finalizations. Zero for a sequential run.
	TasksRun int
	// TasksParked counts tasks that parked on a claimed goal — suspended
	// until the goal's owner finished — instead of spinning or
	// duplicating the work. Zero for a sequential run.
	TasksParked int

	// SharedGroups counts equivalence classes reachable from more than
	// one root of a shared-memo batch (ParallelOptimizeCtx with
	// Search.ShareMemo): exploration work done once instead of per
	// query. Zero outside shared-memo batches.
	SharedGroups int
	// SharedWinners counts winner plan nodes appearing in more than one
	// root's final plan of a shared-memo batch — the candidate set the
	// Materialize/Reuse post-pass prices. Zero outside shared-memo
	// batches.
	SharedWinners int

	// SeedFloorCost is the cost of the complete seed plan captured as the
	// anytime degradation floor (SeedPlan.Plan); nil when the seed
	// planner supplied only a cost. When non-nil, a budget-stopped search
	// never returns a plan costing more than this floor.
	SeedFloorCost Cost

	// Episodes counts the rollout episodes a stochastic search policy
	// ran (Options.Search.Policy); zero for exhaustive runs.
	Episodes int
	// RolloutCommits counts sub-plans a stochastic policy's rollouts
	// committed into the memo's winner tables — new winners or
	// improvements over earlier episodes. Zero for exhaustive runs.
	RolloutCommits int

	// CacheHit reports that this result was served from a plan cache:
	// the plan, cost, and the other counters in this struct describe
	// the original search that produced the cached entry, not work done
	// by the serving call.
	CacheHit bool
	// Coalesced reports that this result was shared from an identical
	// optimization running concurrently (or from a duplicate job in the
	// same ParallelOptimize batch) instead of being searched again.
	Coalesced bool

	// StopReason is the typed budget error that stopped the search, or
	// nil when it ran to completion. It explains a degraded (anytime)
	// result: which bound was exhausted.
	StopReason error
	// AnytimeFallback reports that the returned plan came from the
	// degradation path — a previously recorded root winner, the seed
	// plan, or the query as written — rather than from the stopped
	// search activation itself.
	AnytimeFallback bool
}

// Steps returns the number of search steps taken: moves pursued, the
// unit Budget.MaxSteps bounds.
func (s *Stats) Steps() int { return s.AlgorithmMoves + s.EnforcerMoves }

// merge folds a worker's private counters into the shared Stats. The
// parallel engine gives each worker its own Stats so the hot pursuit
// loops never contend on shared counters; the workers' totals are merged
// once, after the pool joins. Only the counters pursuit touches are
// merged — memo-side counters (Groups, Exprs, Merges, RulesFired,
// Bindings, MatchCalls, MovesReused) accumulate directly in the shared
// Stats under the memo's write lock.
func (s *Stats) merge(w *Stats) {
	s.AlgorithmMoves += w.AlgorithmMoves
	s.EnforcerMoves += w.EnforcerMoves
	s.Pruned += w.Pruned
	s.WinnerHits += w.WinnerHits
	s.FailureHits += w.FailureHits
	s.GoalsOptimized += w.GoalsOptimized
	s.GoalsPruned += w.GoalsPruned
	s.MovesSkipped += w.MovesSkipped
	s.ConsistencyViolations += w.ConsistencyViolations
	s.TasksRun += w.TasksRun
	s.TasksParked += w.TasksParked
}
