package core

// OpKind identifies a logical operator of the model's logical algebra.
// Kinds are small integers assigned by the optimizer implementor (or by
// the optimizer generator when it translates a model specification);
// the engine uses them for fast pattern matching, mirroring the paper's
// observation that translating strings into integers made EXODUS
// pattern matching very fast.
type OpKind int32

// AnyKind is the wildcard kind used in rule patterns; it matches every
// logical operator.
const AnyKind OpKind = -1

// LogicalOp is one logical operator instance: a kind plus whatever
// arguments the model attaches (predicates, projection lists, relation
// names, …). Operator instances are immutable once inserted into the
// memo.
//
// Two operator instances with the same kind, equal arguments, and the
// same input groups denote the same expression; the memo uses ArgsEqual
// and ArgsHash to detect such duplicates and collapse them into one
// equivalence-class member.
type LogicalOp interface {
	// Kind returns the operator's kind.
	Kind() OpKind
	// Arity returns the number of inputs the operator consumes.
	// Operators can have zero or more inputs; the engine places no
	// bound on arity.
	Arity() int
	// ArgsEqual reports whether other carries the same arguments.
	// It is only invoked for operators of the same kind.
	ArgsEqual(other LogicalOp) bool
	// ArgsHash returns a hash of the arguments consistent with
	// ArgsEqual.
	ArgsHash() uint64
	// Name returns the operator name for tracing and plan display.
	Name() string
	// String renders the operator with its arguments.
	String() string
}

// PhysicalOp is one operator of the physical algebra: a query processing
// algorithm (merge-join, file scan, …) or an enforcer (sort,
// decompression, exchange, assembly, …). Physical operators appear only
// inside plans; the engine treats them as opaque.
type PhysicalOp interface {
	// Name returns the algorithm name for plan display.
	Name() string
	// String renders the algorithm with its arguments.
	String() string
}
