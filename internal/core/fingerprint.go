package core

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// This file implements canonical query fingerprinting: a stable 128-bit
// identity for (logical expression tree, required physical properties,
// model version) triples. Fingerprints key cross-query plan caches and
// batch-level duplicate detection — any context where "the same query
// shape" must be recognized without rebuilding a memo.
//
// The fingerprint is computed entirely from a canonical text rendering
// of the query: the operator tree with every commutative operator's
// inputs sorted into a deterministic order, prefixed by the model name,
// the model's version token, and the required property vector. Two
// queries share a fingerprint exactly when they share the canonical
// rendering, so callers that retain the rendering can verify a cache
// hit byte-for-byte and treat 128-bit hash collisions as harmless: a
// colliding entry fails verification and is handled as a miss.

// Fingerprint is a 128-bit canonical query identity. The zero value is
// not a valid fingerprint of any query.
type Fingerprint struct {
	// Hi and Lo are the two independently mixed 64-bit hash lanes.
	Hi, Lo uint64
}

// String renders the fingerprint as 32 hex digits.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x%016x", f.Hi, f.Lo) }

// Commuter is an optional Model extension declaring the logical
// operators whose inputs are order-insensitive (joins, set union,
// intersection, …). Fingerprinting sorts the canonical renderings of a
// commutative operator's inputs, so input permutations of the same
// query collapse to one fingerprint. Models that do not implement the
// interface get order-sensitive fingerprints — still sound, just blind
// to commuted duplicates.
type Commuter interface {
	// CommutativeInputs reports whether op's inputs may be reordered
	// without changing the operator's meaning. It must agree with the
	// model's transformation rules: declare an operator commutative
	// only if the rule set proves permuted input orders equivalent
	// (i.e. the memo would collapse them into one class).
	CommutativeInputs(op LogicalOp) bool
}

// Versioned is an optional Model extension stamping the model with a
// version token. The token must change whenever the model could
// produce a different plan or cost for the same query text: rule-set
// edits, cost-parameter changes, catalog schema or statistics updates.
// Fingerprints mix the token in, so version bumps invalidate every
// cached plan keyed under the old token.
type Versioned interface {
	// Version returns the current model/catalog version token.
	Version() uint64
}

// FingerprintQuery computes the canonical fingerprint of a query: a
// logical expression tree plus the physical properties its plan must
// deliver, under the given model. It returns the fingerprint and the
// canonical rendering it hashes; cache implementations retain the
// rendering and compare it on hit, which makes hash collisions
// detectable (and therefore harmless).
//
// Canonicalization relies on LogicalOp.String rendering operator
// arguments injectively — two operators of the same kind with different
// arguments must render differently — which every model in this
// repository satisfies.
func FingerprintQuery(model Model, tree *ExprTree, required PhysProps) (Fingerprint, string) {
	var b strings.Builder
	b.Grow(128)
	b.WriteString(model.Name())
	if v, ok := model.(Versioned); ok {
		fmt.Fprintf(&b, "#%x", v.Version())
	}
	b.WriteByte('|')
	if required != nil {
		b.WriteString(required.String())
	}
	b.WriteByte('|')
	commuter, _ := model.(Commuter)
	b.WriteString(canonicalTree(commuter, tree))
	canon := b.String()
	return hash128(canon), canon
}

// canonicalTree renders an expression tree in canonical form: operator
// renderings with parenthesized inputs, commutative operators' inputs
// sorted by their own canonical renderings. Class-reference leaves
// render as "@<group>".
func canonicalTree(c Commuter, t *ExprTree) string {
	if t == nil {
		return "<nil>"
	}
	if t.Op == nil {
		return fmt.Sprintf("@%d", t.Group)
	}
	if len(t.Children) == 0 {
		return t.Op.String()
	}
	parts := make([]string, len(t.Children))
	for i, ch := range t.Children {
		parts[i] = canonicalTree(c, ch)
	}
	if len(parts) > 1 && c != nil && c.CommutativeInputs(t.Op) {
		sort.Strings(parts)
	}
	return t.Op.String() + "(" + strings.Join(parts, ",") + ")"
}

// hash128 hashes a canonical rendering into both fingerprint lanes:
// lane one is FNV-1a, lane two an independent multiply-rotate mix, each
// finalized with a murmur-style avalanche. The lanes share no constants,
// so a collision requires both 64-bit hashes to collide on the same
// pair of strings.
func hash128(s string) Fingerprint {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
		mixSeed   = 0xC2B2AE3D27D4EB4F
		mixMul    = 0x9E3779B185EBCA87
	)
	hi := uint64(fnvOffset)
	lo := uint64(mixSeed)
	for i := 0; i < len(s); i++ {
		c := uint64(s[i])
		hi = (hi ^ c) * fnvPrime
		lo = bits.RotateLeft64(lo^(c*mixMul), 29) * 5
	}
	// Mix the length into the second lane so sparse updates (lo absorbs
	// nothing from zero bytes after the multiply) still separate "" from
	// "\x00".
	lo ^= uint64(len(s))
	return Fingerprint{Hi: avalanche(hi), Lo: avalanche(lo)}
}

// avalanche is the murmur3 64-bit finalizer: a bijective mix that
// spreads low-entropy inputs across all output bits.
func avalanche(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
