package core_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
)

// Metric lets the stochastic policies scalarize toy costs for UCT
// rewards and floor priors; the engine must also work without it (see
// TestPolicyNoMetric, which strips it through a wrapper type).
func (c toyCost) Metric() float64 { return float64(c) }

// policyOpt builds a policy-configured optimizer over the toy model and
// loads a left-deep pair query of n leaves.
func policyOpt(t *testing.T, opts *core.Options, n int) (*core.Optimizer, core.GroupID) {
	t.Helper()
	opt := core.NewOptimizer(&toyModel{}, opts)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("l%d", i)
	}
	root := opt.InsertQuery(leftDeepPair(names...))
	return opt, root
}

// TestPolicyMatchesExhaustiveOnSmallSpace: on a search space small
// enough for the episode bound to cover every arm, both stochastic
// policies must find the exhaustive optimum.
func TestPolicyMatchesExhaustiveOnSmallSpace(t *testing.T) {
	ex, exRoot := policyOpt(t, nil, 4)
	want, err := ex.Optimize(exRoot, toyColor(3))
	if err != nil || want == nil {
		t.Fatalf("exhaustive optimize: plan=%v err=%v", want, err)
	}
	for _, pol := range []core.SearchPolicy{core.PolicyMCTS, core.PolicyWidening} {
		opt, root := policyOpt(t, &core.Options{
			Search: core.SearchOptions{Policy: pol, Episodes: 128},
		}, 4)
		got, err := opt.Optimize(root, toyColor(3))
		if err != nil {
			t.Fatalf("%v: unexpected error %v", pol, err)
		}
		if got == nil {
			t.Fatalf("%v: no plan", pol)
		}
		if got.Cost.Less(want.Cost) || want.Cost.Less(got.Cost) {
			t.Errorf("%v: cost %s, exhaustive optimum %s", pol, got.Cost, want.Cost)
		}
		if !got.Delivered.Covers(toyColor(3)) {
			t.Errorf("%v: delivered %s does not cover required color", pol, got.Delivered)
		}
		st := opt.Stats()
		if st.Episodes == 0 {
			t.Errorf("%v: Stats.Episodes = 0, want > 0", pol)
		}
		if st.RolloutCommits == 0 {
			t.Errorf("%v: Stats.RolloutCommits = 0, want > 0", pol)
		}
		if st.SeedCost == nil || st.SeedFloorCost == nil {
			t.Errorf("%v: seed not captured: SeedCost=%v SeedFloorCost=%v", pol, st.SeedCost, st.SeedFloorCost)
		}
		if st.SeedFloorCost.Less(got.Cost) {
			t.Errorf("%v: cost %s exceeds the syntactic seed floor %s", pol, got.Cost, st.SeedFloorCost)
		}
	}
}

// TestPolicyDeterminism is the benchmark-attribution guard: with a
// fixed Options.Search.RandSeed and no wall-clock budget, two runs of
// the same policy must produce byte-identical plans and Stats.
func TestPolicyDeterminism(t *testing.T) {
	for _, pol := range []core.SearchPolicy{core.PolicyMCTS, core.PolicyWidening} {
		for _, seed := range []int64{0, 42} {
			run := func() (string, string, string) {
				opt, root := policyOpt(t, &core.Options{
					Search: core.SearchOptions{Policy: pol, RandSeed: seed, Episodes: 64},
					Budget: core.Budget{MaxSteps: 300},
				}, 6)
				p, err := opt.OptimizeCtx(t.Context(), root, toyColor(2))
				if p == nil {
					t.Fatalf("%v seed=%d: no plan (err=%v)", pol, seed, err)
				}
				return p.String(), p.Cost.String(), fmt.Sprintf("%+v", *opt.Stats())
			}
			p1, c1, s1 := run()
			p2, c2, s2 := run()
			if p1 != p2 || c1 != c2 {
				t.Errorf("%v seed=%d: plans differ across runs:\n  %s (%s)\n  %s (%s)", pol, seed, p1, c1, p2, c2)
			}
			if s1 != s2 {
				t.Errorf("%v seed=%d: Stats differ across runs:\n  %s\n  %s", pol, seed, s1, s2)
			}
		}
	}
	// Different seeds are allowed to differ; same-seed identity above is
	// the contract.
}

// TestPolicyAnytime: a policy run stopped by a tight step budget must
// still return a complete plan delivering the requirement, costing no
// more than the syntactic seed floor, alongside the typed budget error.
func TestPolicyAnytime(t *testing.T) {
	for _, pol := range []core.SearchPolicy{core.PolicyMCTS, core.PolicyWidening} {
		for _, steps := range []int{1, 3, 10} {
			opt, root := policyOpt(t, &core.Options{
				Search: core.SearchOptions{Policy: pol},
				Budget: core.Budget{MaxSteps: steps},
			}, 6)
			p, err := opt.Optimize(root, toyColor(1))
			if !errors.Is(err, core.ErrBudget) {
				t.Fatalf("%v steps=%d: want budget error, got %v", pol, steps, err)
			}
			if p == nil {
				t.Fatalf("%v steps=%d: no anytime plan", pol, steps)
			}
			if !p.Delivered.Covers(toyColor(1)) {
				t.Errorf("%v steps=%d: delivered %s does not cover", pol, steps, p.Delivered)
			}
			st := opt.Stats()
			if st.StopReason == nil {
				t.Errorf("%v steps=%d: StopReason not recorded", pol, steps)
			}
			if st.SeedFloorCost != nil && st.SeedFloorCost.Less(p.Cost) {
				t.Errorf("%v steps=%d: cost %s exceeds seed floor %s", pol, steps, p.Cost, st.SeedFloorCost)
			}
			if got := st.Steps(); got > steps {
				t.Errorf("%v steps=%d: took %d steps", pol, steps, got)
			}
		}
	}
}

// TestPolicyValidate: contradictory policy configurations are rejected.
func TestPolicyValidate(t *testing.T) {
	bad := []core.Options{
		{Search: core.SearchOptions{Policy: core.PolicyMCTS, Workers: 2}},
		{Search: core.SearchOptions{Policy: core.PolicyWidening, GlueMode: true}},
		{Search: core.SearchOptions{Policy: core.PolicyMCTS, ShareMemo: true}},
		{Search: core.SearchOptions{Policy: core.PolicyMCTS, NoIncremental: true}},
		{Search: core.SearchOptions{Policy: core.PolicyMCTS, Episodes: -1}},
		{Search: core.SearchOptions{Policy: core.SearchPolicy(9)}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, bad[i].Search)
		}
	}
	ok := core.Options{Search: core.SearchOptions{Policy: core.PolicyMCTS, RandSeed: 7, Episodes: 10}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid policy options rejected: %v", err)
	}
	if got, err := core.ParseSearchPolicy("widening"); err != nil || got != core.PolicyWidening {
		t.Errorf("ParseSearchPolicy(widening) = %v, %v", got, err)
	}
	if _, err := core.ParseSearchPolicy("annealing"); err == nil {
		t.Errorf("ParseSearchPolicy accepted unknown policy")
	}
}

// plainCost mirrors toyCost but deliberately lacks Metric; the policies
// must degrade to promise-order greed and 0/1 rewards without it.
type plainCost float64

func (c plainCost) Add(o core.Cost) core.Cost { return c + o.(plainCost) }
func (c plainCost) Sub(o core.Cost) core.Cost { return c - o.(plainCost) }
func (c plainCost) Less(o core.Cost) bool     { return c < o.(plainCost) }
func (c plainCost) String() string            { return fmt.Sprintf("%.1f", float64(c)) }

// noMetricModel delegates to the toy model but rewrites every cost into
// plainCost, stripping the MetricCost extension.
type noMetricModel struct{ toyModel }

func (m *noMetricModel) Name() string        { return "toy-no-metric" }
func (m *noMetricModel) ZeroCost() core.Cost { return plainCost(0) }
func (m *noMetricModel) InfiniteCost() core.Cost {
	return plainCost(1e18)
}

func (m *noMetricModel) ImplementationRules() []*core.ImplRule {
	rules := m.toyModel.ImplementationRules()
	out := make([]*core.ImplRule, len(rules))
	for i, r := range rules {
		rr := *r
		orig := r.Cost
		rr.Cost = func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
			return plainCost(orig(ctx, b, required, alt).(toyCost))
		}
		out[i] = &rr
	}
	return out
}

func (m *noMetricModel) Enforcers() []*core.Enforcer {
	enfs := m.toyModel.Enforcers()
	out := make([]*core.Enforcer, len(enfs))
	for i, e := range enfs {
		ee := *e
		orig := e.Cost
		ee.Cost = func(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) core.Cost {
			return plainCost(orig(ctx, lp, required).(toyCost))
		}
		out[i] = &ee
	}
	return out
}

// TestPolicyNoMetric: a cost ADT without the optional Metric projection
// still optimizes correctly under both stochastic policies.
func TestPolicyNoMetric(t *testing.T) {
	ex := core.NewOptimizer(&noMetricModel{}, nil)
	exRoot := ex.InsertQuery(leftDeepPair("a", "b", "c", "d"))
	want, err := ex.Optimize(exRoot, toyColor(2))
	if err != nil || want == nil {
		t.Fatalf("exhaustive optimize: plan=%v err=%v", want, err)
	}
	for _, pol := range []core.SearchPolicy{core.PolicyMCTS, core.PolicyWidening} {
		opt := core.NewOptimizer(&noMetricModel{}, &core.Options{
			Search: core.SearchOptions{Policy: pol, Episodes: 128},
		})
		root := opt.InsertQuery(leftDeepPair("a", "b", "c", "d"))
		got, err := opt.Optimize(root, toyColor(2))
		if err != nil {
			t.Fatalf("%v: unexpected error %v", pol, err)
		}
		if got == nil || !got.Delivered.Covers(toyColor(2)) {
			t.Fatalf("%v: bad plan %v", pol, got)
		}
		if got.Cost.Less(want.Cost) || want.Cost.Less(got.Cost) {
			t.Errorf("%v: cost %s, exhaustive optimum %s", pol, got.Cost, want.Cost)
		}
	}
}

// TestPolicyTracing: policy runs emit the episode trace event alongside
// the ordinary goal/winner events.
func TestPolicyTracing(t *testing.T) {
	var episodes, winners int
	tr := core.TextTracer(func(string) {})
	_ = tr
	opt := core.NewOptimizer(&toyModel{}, &core.Options{
		Search: core.SearchOptions{Policy: core.PolicyMCTS, Episodes: 8},
		Trace: core.TraceOptions{Tracer: traceFunc(func(ev core.TraceEvent) {
			switch ev.Kind {
			case core.TracePolicyEpisode:
				episodes++
			case core.TraceWinner:
				winners++
			}
		})},
	})
	root := opt.InsertQuery(leftDeepPair("a", "b", "c"))
	if _, err := opt.Optimize(root, toyColor(1)); err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if episodes != 8 {
		t.Errorf("TracePolicyEpisode events = %d, want 8", episodes)
	}
	if winners == 0 {
		t.Errorf("no TraceWinner events from rollout commits")
	}
}
