package core_test

import (
	"strings"
	"testing"
)

func TestMemoFormat(t *testing.T) {
	opt := newToyOpt(nil)
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	if _, err := opt.Optimize(g, toyColor(1)); err != nil {
		t.Fatal(err)
	}
	dump := opt.Memo().Format()
	for _, want := range []string{"class 1", "LEAF(a)", "PAIR[", "winner", "color1"} {
		if !strings.Contains(dump, want) {
			t.Errorf("memo dump missing %q:\n%s", want, dump)
		}
	}
}

func TestMemoFormatRecordsFailures(t *testing.T) {
	opt := newToyOpt(nil)
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	if _, err := opt.OptimizeWithLimit(g, toyColor(1), toyCost(2)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(opt.Memo().Format(), "failed under limit") {
		t.Error("memo dump does not show memoized failures")
	}
}

func TestPlanDot(t *testing.T) {
	opt := newToyOpt(nil)
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	plan, err := opt.Optimize(g, toyColor(2))
	if err != nil {
		t.Fatal(err)
	}
	dot := plan.Dot()
	for _, want := range []string{"digraph plan", "paint", "plain-pair", "toy-scan", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
	if got := strings.Count(dot, "->"); got != 3 {
		t.Errorf("dot edges = %d, want 3", got)
	}
}
