package core_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// newGuidedToyOpt builds a toy optimizer with the given seed planner.
func newGuidedToyOpt(sp core.SeedPlanner, extra func(*core.Options)) *core.Optimizer {
	opts := &core.Options{Guidance: core.GuidanceOptions{SeedPlanner: sp}}
	if extra != nil {
		extra(opts)
	}
	return core.NewOptimizer(&toyModel{}, opts)
}

// TestGuidedSyntacticSeedMatchesExhaustive: the generic syntactic seed
// planner leaves plan costs byte-identical to unguided search on random
// shapes, for both the vacuous and a colored requirement, while the
// telemetry records the seed.
func TestGuidedSyntacticSeedMatchesExhaustive(t *testing.T) {
	check := func(s toyShape) bool {
		guided := newGuidedToyOpt(core.SyntacticSeedPlanner(), nil)
		g := guided.InsertQuery(s.tree)
		plan, err := guided.Optimize(g, toyColor(1))
		if err != nil || plan == nil {
			return false
		}
		if plan.Cost.(toyCost) != toyOptimum(s.leaves, true) {
			t.Logf("guided cost %v, want %v (leaves=%d)", plan.Cost, toyOptimum(s.leaves, true), s.leaves)
			return false
		}
		st := guided.Stats()
		if st.SeedCost == nil || st.LimitStages < 1 {
			t.Logf("telemetry missing: seed=%v stages=%d", st.SeedCost, st.LimitStages)
			return false
		}
		// The syntactic seed is achievable, so its cost bounds the
		// optimum from above and the first (inclusive) stage suffices.
		if plan.Cost.(toyCost) > st.SeedCost.(toyCost) {
			t.Logf("optimum %v above seed %v", plan.Cost, st.SeedCost)
			return false
		}
		return st.LimitStages == 1 && st.ConsistencyViolations == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestGuidedSeedEqualsOptimal is the inclusive-bound regression test: a
// seed whose cost is exactly the optimal cost must not prune the optimal
// plan away, and the zero-budget child goals it produces (partial cost
// equal to the limit) must not fail spuriously.
func TestGuidedSeedEqualsOptimal(t *testing.T) {
	tree := leftDeepPair("a", "b", "c", "d")
	want := toyOptimum(4, true)

	opt := newGuidedToyOpt(func(o *core.Optimizer, root core.GroupID, required core.PhysProps) *core.SeedPlan {
		return &core.SeedPlan{Cost: want, Desc: "oracle"}
	}, nil)
	g := opt.InsertQuery(tree)
	plan, err := opt.Optimize(g, toyColor(1))
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatalf("seed equal to optimum pruned the optimal plan away")
	}
	if plan.Cost.(toyCost) != want {
		t.Fatalf("cost %v, want %v", plan.Cost, want)
	}
	st := opt.Stats()
	if st.LimitStages != 1 {
		t.Errorf("LimitStages = %d, want 1 (exact seed must succeed in the first stage)", st.LimitStages)
	}
	if st.SeedCost.(toyCost) != want {
		t.Errorf("SeedCost = %v, want %v", st.SeedCost, want)
	}
}

// TestGuidedUnderestimatingSeedRelaxes: a seeder that lies low forces
// iterative deepening — stages are spent relaxing the limit, failures
// are memoized and reused, and the final result is still exactly the
// exhaustive optimum.
func TestGuidedUnderestimatingSeedRelaxes(t *testing.T) {
	tree := leftDeepPair("a", "b", "c", "d", "e")
	want := toyOptimum(5, true) // 5 + 2*4 + 4 = 17

	for _, memo := range []bool{false, true} {
		opt := newGuidedToyOpt(func(o *core.Optimizer, root core.GroupID, required core.PhysProps) *core.SeedPlan {
			return &core.SeedPlan{Cost: toyCost(0.5), Desc: "liar"}
		}, func(opts *core.Options) {
			opts.Search.NoFailureMemo = !memo
			opts.Guidance.SeedStages = 2
			opts.Guidance.SeedGrowth = 3
		})
		g := opt.InsertQuery(tree)
		plan, err := opt.Optimize(g, toyColor(1))
		if err != nil {
			t.Fatal(err)
		}
		if plan == nil || plan.Cost.(toyCost) != want {
			t.Fatalf("memo=%v: plan=%v, want cost %v", memo, plan, want)
		}
		st := opt.Stats()
		// Stage 0 at 0.5 and stage 1 at 1.5 both fail (every complete
		// plan costs >= 17); the final stage at the caller's limit wins.
		if st.LimitStages != 3 {
			t.Errorf("memo=%v: LimitStages = %d, want 3", memo, st.LimitStages)
		}
		if st.GoalsPruned == 0 {
			t.Errorf("memo=%v: no goals recorded as bound-failures despite failing stages", memo)
		}
	}
}

// TestGuidedSeedDeclines: a planner returning nil degrades to plain
// exhaustive search with identical results.
func TestGuidedSeedDeclines(t *testing.T) {
	tree := leftDeepPair("a", "b", "c")
	opt := newGuidedToyOpt(func(o *core.Optimizer, root core.GroupID, required core.PhysProps) *core.SeedPlan {
		return nil
	}, nil)
	g := opt.InsertQuery(tree)
	plan, err := opt.Optimize(g, toyColor(2))
	if err != nil || plan == nil {
		t.Fatalf("plan=%v err=%v", plan, err)
	}
	if plan.Cost.(toyCost) != toyOptimum(3, true) {
		t.Fatalf("cost %v, want %v", plan.Cost, toyOptimum(3, true))
	}
	st := opt.Stats()
	if st.SeedCost != nil {
		t.Errorf("SeedCost = %v, want nil for a declined seed", st.SeedCost)
	}
	if st.LimitStages != 1 {
		t.Errorf("LimitStages = %d, want 1", st.LimitStages)
	}
}

// TestGuidedWithCallerLimit: a caller limit tighter than the seed takes
// precedence (single unguided stage), and a caller limit below the
// optimum still yields no plan under guidance.
func TestGuidedWithCallerLimit(t *testing.T) {
	tree := leftDeepPair("a", "b", "c")
	want := toyOptimum(3, true) // 11

	seeder := func(o *core.Optimizer, root core.GroupID, required core.PhysProps) *core.SeedPlan {
		return &core.SeedPlan{Cost: toyCost(1e6)}
	}

	opt := newGuidedToyOpt(seeder, nil)
	g := opt.InsertQuery(tree)
	plan, err := opt.OptimizeWithLimit(g, toyColor(1), want)
	if err != nil || plan == nil || plan.Cost.(toyCost) != want {
		t.Fatalf("inclusive caller limit: plan=%v err=%v want=%v", plan, err, want)
	}

	opt = newGuidedToyOpt(seeder, nil)
	g = opt.InsertQuery(tree)
	plan, err = opt.OptimizeWithLimit(g, toyColor(1), want-1)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		t.Fatalf("limit below optimum returned plan %v", plan)
	}
}

// guidedShape feeds the property test below larger trees than toyShape.
type guidedShape struct {
	tree   *core.ExprTree
	leaves int
}

func (guidedShape) Generate(r *rand.Rand, size int) reflect.Value {
	n := 2 + r.Intn(7)
	var build func(lo, hi int) *core.ExprTree
	build = func(lo, hi int) *core.ExprTree {
		if hi-lo == 1 {
			return leaf(string(rune('a' + lo)))
		}
		cut := lo + 1 + r.Intn(hi-lo-1)
		return pair(build(lo, cut), build(cut, hi))
	}
	return reflect.ValueOf(guidedShape{tree: build(0, n), leaves: n})
}

// TestQuickGuidedTelemetryConsistent: across random shapes and random
// (possibly wrong) seed costs, guided search always returns the optimum,
// and the telemetry counters stay coherent: stages at least 1, skipped
// moves within the pruned total.
func TestQuickGuidedTelemetryConsistent(t *testing.T) {
	check := func(s guidedShape, seedScale uint8) bool {
		scale := 0.25 + float64(seedScale%8)*0.25 // 0.25x .. 2x of optimum
		want := toyOptimum(s.leaves, true)
		opt := newGuidedToyOpt(func(o *core.Optimizer, root core.GroupID, required core.PhysProps) *core.SeedPlan {
			return &core.SeedPlan{Cost: toyCost(float64(want) * scale)}
		}, nil)
		g := opt.InsertQuery(s.tree)
		plan, err := opt.Optimize(g, toyColor(1))
		if err != nil || plan == nil || plan.Cost.(toyCost) != want {
			t.Logf("scale=%.2f: plan=%v err=%v want=%v", scale, plan, err, want)
			return false
		}
		st := opt.Stats()
		if st.LimitStages < 1 || st.MovesSkipped > st.Pruned {
			t.Logf("scale=%.2f: stages=%d skipped=%d pruned=%d", scale, st.LimitStages, st.MovesSkipped, st.Pruned)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
