package core

// matchBindings enumerates every binding of pattern against the
// expression e, invoking fn for each. Multi-level patterns bind through
// equivalence classes: for each pattern child that is itself an operator
// pattern, every matching member expression of the corresponding input
// class yields a distinct binding, so a rule like join associativity
// fires once per equivalent shape of the inner join.
//
// Input classes reached through operator sub-patterns are explored first
// so the enumeration is complete; this is what makes the engine's
// rule-to-fixpoint exploration equivalent to the paper's interleaved
// transformation moves under exhaustive search.
//
// fn returns false to stop the enumeration early.
func (m *Memo) matchBindings(e *Expr, pattern *Pattern, fn func(*Binding) bool) bool {
	if pattern.IsLeaf {
		panic("core: rule pattern root must be an operator pattern")
	}
	if !kindMatches(pattern.Kind, e.Op.Kind()) {
		return true
	}
	if len(pattern.Children) != len(e.Inputs) {
		return true
	}
	b := &Binding{Expr: e, Group: m.Find(e.group)}
	return m.bindChildren(e, pattern, b, 0, fn)
}

func kindMatches(pat, got OpKind) bool { return pat == AnyKind || pat == got }

// bindChildren extends binding b with matches for pattern children
// starting at index i, invoking fn for each completed binding.
func (m *Memo) bindChildren(e *Expr, pattern *Pattern, b *Binding, i int, fn func(*Binding) bool) bool {
	if i == len(pattern.Children) {
		if m.stats != nil {
			m.stats.Bindings++
		}
		return fn(b)
	}
	childPat := pattern.Children[i]
	inGroup := m.Find(e.Inputs[i])
	if childPat.IsLeaf {
		b.Children = append(b.Children, &Binding{Group: inGroup})
		ok := m.bindChildren(e, pattern, b, i+1, fn)
		b.Children = b.Children[:len(b.Children)-1]
		return ok
	}
	// An operator sub-pattern must see the input class fully expanded.
	m.exploreGroup(m.groups[inGroup-1])
	g := m.groups[m.Find(inGroup)-1]
	for j := 0; j < len(g.exprs); j++ {
		sub := g.exprs[j]
		if !kindMatches(childPat.Kind, sub.Op.Kind()) ||
			len(childPat.Children) != len(sub.Inputs) {
			continue
		}
		cb := &Binding{Expr: sub, Group: g.id}
		cont := m.bindChildren(sub, childPat, cb, 0, func(complete *Binding) bool {
			b.Children = append(b.Children, complete)
			ok := m.bindChildren(e, pattern, b, i+1, fn)
			b.Children = b.Children[:len(b.Children)-1]
			return ok
		})
		if !cont {
			return false
		}
	}
	return true
}

// exploreGroup expands a class to transformation-rule fixpoint: every
// rule is applied to every member expression (and to expressions added
// along the way) until no new equivalent expressions appear. Per-
// expression fired-rule masks guarantee each (expression, rule) pair is
// attempted once, so exploration terminates whenever the rule set
// generates a finite space.
func (m *Memo) exploreGroup(g *Group) {
	g = m.groups[m.Find(g.id)-1]
	if g.explored || g.exploring || m.err != nil {
		return
	}
	g.exploring = true
	defer func() { g.exploring = false }()

	rules := m.model.TransformationRules()
	ctx := m.ctx
	for {
		// Each pass attempts every (expression, rule) pair not yet
		// attempted, marking attempts in the expression's rule mask.
		// Merges reset the masks of affected expressions, which makes
		// the next pass re-attempt them; the loop ends only when a
		// full pass finds nothing left to attempt, i.e. at fixpoint.
		attempted := false
		for i := 0; i < len(g.exprs); i++ { // g.exprs may grow while iterating
			e := g.exprs[i]
			for ri, rule := range rules {
				if e.ruleApplied(ri) {
					continue
				}
				e.markRuleApplied(ri)
				if m.bud != nil {
					// Budget checkpoint per (expression, rule) attempt:
					// together with the insertion tick this bounds how
					// far a fixpoint expansion can run past a stop.
					if err := m.bud.tick(); err != nil {
						m.err = err
						return
					}
				}
				if !kindMatches(rule.Pattern.Kind, e.Op.Kind()) ||
					len(rule.Pattern.Children) != len(e.Inputs) {
					continue
				}
				attempted = true
				m.matchBindings(e, rule.Pattern, func(b *Binding) bool {
					if rule.Condition != nil && !rule.Condition(ctx, b) {
						return true
					}
					if m.stats != nil {
						m.stats.RulesFired++
					}
					for _, sub := range rule.Apply(ctx, b) {
						root := m.Find(g.id)
						m.insertSubstitute(sub, root)
						if m.err != nil {
							return false
						}
					}
					return true
				})
				if m.err != nil {
					return
				}
				// A merge may have moved this class; re-resolve so the
				// iteration sees the surviving expression list.
				if moved := m.groups[m.Find(g.id)-1]; moved != g {
					g = moved
					attempted = true
				}
			}
		}
		if !attempted {
			break
		}
	}
	g.explored = true
}

// insertSubstitute inserts a rule substitute: the root lands in the
// matched class, inner nodes in their own (possibly new) classes.
func (m *Memo) insertSubstitute(t *ExprTree, target GroupID) (GroupID, bool) {
	if t.Op == nil {
		// A rule may return a bare class reference as substitute,
		// asserting that the matched class equals an existing one.
		ref := m.Find(t.Group)
		if ref != target {
			return m.merge(ref, target), true
		}
		return target, false
	}
	var inputs []GroupID
	if len(t.Children) > 0 {
		inputs = make([]GroupID, len(t.Children))
		for i, c := range t.Children {
			inputs[i] = m.InsertTree(c, InvalidGroup)
		}
	}
	return m.insertOwned(t.Op, inputs, target)
}
