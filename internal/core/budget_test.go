package core_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestTypedBudgetErrorMatrix: every typed budget error matches the
// umbrella ErrBudget under errors.Is, the context-originated ones
// additionally match their context error, and nothing matches across
// categories.
func TestTypedBudgetErrorMatrix(t *testing.T) {
	cases := []struct {
		name    string
		err     error
		matches []error
		not     []error
	}{
		{"canceled", core.ErrCanceled,
			[]error{core.ErrBudget, context.Canceled},
			[]error{context.DeadlineExceeded, core.ErrDeadline}},
		{"deadline", core.ErrDeadline,
			[]error{core.ErrBudget, context.DeadlineExceeded},
			[]error{context.Canceled, core.ErrCanceled}},
		{"steps", core.ErrStepBudget,
			[]error{core.ErrBudget},
			[]error{context.Canceled, context.DeadlineExceeded, core.ErrMemoBudget}},
		{"memo", core.ErrMemoBudget,
			[]error{core.ErrBudget},
			[]error{context.Canceled, context.DeadlineExceeded, core.ErrStepBudget}},
	}
	for _, c := range cases {
		for _, target := range c.matches {
			if !errors.Is(c.err, target) {
				t.Errorf("%s: errors.Is(%v, %v) = false, want true", c.name, c.err, target)
			}
		}
		for _, target := range c.not {
			if errors.Is(c.err, target) {
				t.Errorf("%s: errors.Is(%v, %v) = true, want false", c.name, c.err, target)
			}
		}
	}
	// The umbrella does not match the specific errors (asymmetry of Is).
	if errors.Is(core.ErrBudget, core.ErrCanceled) {
		t.Error("ErrBudget must not match ErrCanceled")
	}
}

// TestCanceledContextDegrades: a pre-canceled context stops the search
// before it starts, yet the engine still returns a complete plan (the
// query as written) tagged with ErrCanceled.
func TestCanceledContextDegrades(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	opt := newToyOpt(nil)
	g := opt.InsertQuery(leftDeepPair("a", "b", "c", "d"))
	plan, err := opt.OptimizeCtx(ctx, g, toyColor(1))
	if !errors.Is(err, core.ErrBudget) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if plan == nil {
		t.Fatal("canceled optimization returned bare nil plan")
	}
	if !plan.Delivered.Covers(toyColor(1)) {
		t.Fatalf("degraded plan does not cover the requirement: %s", plan.Format())
	}
	st := opt.Stats()
	if st.StopReason == nil || !errors.Is(st.StopReason, core.ErrBudget) {
		t.Errorf("StopReason = %v, want a budget error", st.StopReason)
	}
	if !st.AnytimeFallback {
		t.Error("AnytimeFallback not recorded for a fallback plan")
	}
}

// TestStepBudgetDegrades: a one-move step budget stops the search almost
// immediately; the anytime result is still complete and correct, and
// costs at least the true optimum.
func TestStepBudgetDegrades(t *testing.T) {
	tree := leftDeepPair("a", "b", "c", "d", "e")
	ref := newToyOpt(nil)
	optimal, err := ref.Optimize(ref.InsertQuery(tree), toyColor(1))
	if err != nil || optimal == nil {
		t.Fatalf("reference run: %v", err)
	}

	opt := newToyOpt(&core.Options{Budget: core.Budget{MaxSteps: 1}})
	g := opt.InsertQuery(tree)
	plan, err := opt.Optimize(g, toyColor(1))
	if !errors.Is(err, core.ErrBudget) || !errors.Is(err, core.ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
	if plan == nil {
		t.Fatal("step-budget stop returned bare nil plan")
	}
	if !plan.Delivered.Covers(toyColor(1)) {
		t.Fatalf("degraded plan does not cover the requirement: %s", plan.Format())
	}
	if plan.Cost.Less(optimal.Cost) {
		t.Fatalf("degraded cost %v below optimum %v", plan.Cost, optimal.Cost)
	}
	if s := opt.Stats().Steps(); s > 1 {
		t.Errorf("Steps() = %d after MaxSteps=1", s)
	}
}

// TestDeadlineBudgetDegrades: an immediately-expiring wall-clock budget
// surfaces ErrDeadline with a fallback plan.
func TestDeadlineBudgetDegrades(t *testing.T) {
	opt := newToyOpt(&core.Options{Budget: core.Budget{Timeout: time.Nanosecond}})
	g := opt.InsertQuery(leftDeepPair("a", "b", "c", "d"))
	plan, err := opt.Optimize(g, toyColor(1))
	if !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if plan == nil || !plan.Delivered.Covers(toyColor(1)) {
		t.Fatalf("degraded plan = %v", plan)
	}
}

// TestMemoBytesBudgetDegrades: a one-byte memo budget trips on the first
// poll and still yields a plan; the error is ErrMemoBudget.
func TestMemoBytesBudgetDegrades(t *testing.T) {
	opt := newToyOpt(&core.Options{Budget: core.Budget{MaxMemoBytes: 1}})
	g := opt.InsertQuery(leftDeepPair("a", "b", "c", "d"))
	plan, err := opt.Optimize(g, nil)
	if !errors.Is(err, core.ErrMemoBudget) {
		t.Fatalf("err = %v, want ErrMemoBudget", err)
	}
	if plan == nil {
		t.Fatal("memo-budget stop returned bare nil plan")
	}
}

// TestExploreCtxCanceled: exploration honors the context too.
func TestExploreCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := newToyOpt(nil)
	g := opt.InsertQuery(leftDeepPair("a", "b", "c", "d"))
	if err := opt.ExploreCtx(ctx, g); !errors.Is(err, core.ErrBudget) {
		t.Fatalf("ExploreCtx err = %v, want a budget error", err)
	}
	if sr := opt.Stats().StopReason; sr == nil {
		t.Error("StopReason not set by a budget-stopped exploration")
	}
}

// TestZeroBudgetIdentical: with no budget and a plain background
// context, a budget-capable run is indistinguishable from the classic
// engine — identical plan cost and identical search counters.
func TestZeroBudgetIdentical(t *testing.T) {
	tree := leftDeepPair("a", "b", "c", "d")

	classic := newToyOpt(nil)
	pc, err := classic.Optimize(classic.InsertQuery(tree), toyColor(1))
	if err != nil || pc == nil {
		t.Fatalf("classic: %v", err)
	}

	budgeted := newToyOpt(&core.Options{Budget: core.Budget{}})
	pb, err := budgeted.OptimizeCtx(context.Background(), budgeted.InsertQuery(tree), toyColor(1))
	if err != nil || pb == nil {
		t.Fatalf("zero-budget: %v", err)
	}

	if pc.Cost.(toyCost) != pb.Cost.(toyCost) {
		t.Fatalf("cost %v != %v", pc.Cost, pb.Cost)
	}
	if !reflect.DeepEqual(*classic.Stats(), *budgeted.Stats()) {
		t.Fatalf("stats diverge:\nclassic:  %+v\nbudgeted: %+v", *classic.Stats(), *budgeted.Stats())
	}
}

// TestOptionsValidate covers the contradiction checks.
func TestOptionsValidate(t *testing.T) {
	var nilOpts *core.Options
	if err := nilOpts.Validate(); err != nil {
		t.Errorf("nil options: %v", err)
	}
	if err := (&core.Options{}).Validate(); err != nil {
		t.Errorf("zero options: %v", err)
	}
	bad := []core.Options{
		{Search: core.SearchOptions{MoveFilter: func(m []core.Move) []core.Move { return m }}},
		{
			Search:   core.SearchOptions{GlueMode: true},
			Guidance: core.GuidanceOptions{SeedPlanner: core.SyntacticSeedPlanner()},
		},
		{Guidance: core.GuidanceOptions{SeedStages: -1}},
		{Guidance: core.GuidanceOptions{SeedGrowth: -0.5}},
		{Budget: core.Budget{Timeout: -time.Second}},
		{Budget: core.Budget{MaxSteps: -1}},
		{Budget: core.Budget{MaxMemoBytes: -1}},
		{Budget: core.Budget{MaxExprs: -1}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a contradictory configuration", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewOptimizer did not panic on an invalid configuration")
		}
	}()
	core.NewOptimizer(&toyModel{}, &bad[0])
}

// TestTracerStructuredEvents: the structured tracer receives goal,
// move, and winner events with coherent payloads, and the kind filter
// of TextTracer selects exactly the requested kinds.
func TestTracerStructuredEvents(t *testing.T) {
	var events []core.TraceEvent
	opt := newToyOpt(&core.Options{Trace: core.TraceOptions{
		Tracer: traceFunc(func(ev core.TraceEvent) { events = append(events, ev) }),
	}})
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	if _, err := opt.Optimize(g, toyColor(1)); err != nil {
		t.Fatal(err)
	}
	seen := map[core.TraceEventKind]int{}
	for _, ev := range events {
		seen[ev.Kind]++
		if ev.Kind == core.TraceWinner && (ev.Plan == nil || ev.Cost == nil) {
			t.Errorf("winner event missing plan or cost: %+v", ev)
		}
		if ev.Kind == core.TraceMovePursued && ev.Move == "" {
			t.Errorf("move event missing move name: %+v", ev)
		}
	}
	for _, kind := range []core.TraceEventKind{
		core.TraceGoalBegin, core.TraceGoalEnd, core.TraceMovePursued, core.TraceWinner,
	} {
		if seen[kind] == 0 {
			t.Errorf("no %s events traced (saw %v)", kind, seen)
		}
	}

	// The filtered text tracer sees only the requested kind.
	var lines []string
	opt2 := newToyOpt(&core.Options{Trace: core.TraceOptions{
		Tracer: core.TextTracer(func(l string) { lines = append(lines, l) }, core.TraceWinner),
	}})
	g2 := opt2.InsertQuery(pair(leaf("a"), leaf("b")))
	if _, err := opt2.Optimize(g2, nil); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("filtered tracer saw nothing")
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "winner ") {
			t.Errorf("filtered tracer leaked a non-winner line: %q", l)
		}
	}
}

// TestClassicTracerFormat: the classic adapter preserves the historical
// one-line text shapes for winner and failure events.
func TestClassicTracerFormat(t *testing.T) {
	var lines []string
	opt := newToyOpt(&core.Options{Trace: core.TraceOptions{
		Tracer: core.ClassicTracer(func(l string) { lines = append(lines, l) }),
	}})
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	// A hopeless limit records failures; a follow-up open run records
	// winners.
	if _, err := opt.OptimizeWithLimit(g, toyColor(2), toyCost(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Optimize(g, toyColor(2)); err != nil {
		t.Fatal(err)
	}
	var winner, failure bool
	for _, l := range lines {
		if strings.HasPrefix(l, "winner group=") && strings.Contains(l, "cost=") && strings.Contains(l, "plan=") {
			winner = true
		}
		if strings.HasPrefix(l, "failure group=") && strings.Contains(l, "limit=") {
			failure = true
		}
	}
	if !winner || !failure {
		t.Fatalf("classic lines missing winner=%v failure=%v:\n%s", winner, failure, strings.Join(lines, "\n"))
	}
}

// traceFunc adapts a function to the Tracer interface for tests.
type traceFunc func(core.TraceEvent)

func (f traceFunc) Trace(ev core.TraceEvent) { f(ev) }
