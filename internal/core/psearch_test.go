package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
)

// optimizeToy runs one optimization of a left-deep toy query under the
// given worker count and returns the plan and final stats.
func optimizeToy(t *testing.T, workers int, names []string, required core.PhysProps) (*core.Plan, core.Stats) {
	t.Helper()
	opts := &core.Options{}
	opts.Search.Workers = workers
	o := core.NewOptimizer(&toyModel{}, opts)
	g := o.InsertQuery(leftDeepPair(names...))
	p, err := o.Optimize(g, required)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if p == nil {
		t.Fatalf("workers=%d: no plan", workers)
	}
	return p, *o.Stats()
}

// TestParallelMatchesSequential: the task engine must find plans of
// exactly the cost the sequential engine finds, at every worker count.
func TestParallelMatchesSequential(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	for _, req := range []core.PhysProps{toyColor(0), toyColor(3)} {
		seq, _ := optimizeToy(t, 1, names, req)
		for _, workers := range []int{2, 4, 8} {
			par, stats := optimizeToy(t, workers, names, req)
			if par.Cost != seq.Cost {
				t.Errorf("req=%v workers=%d: cost %v, sequential %v",
					req, workers, par.Cost, seq.Cost)
			}
			if stats.SearchWorkers != workers {
				t.Errorf("SearchWorkers = %d, want %d", stats.SearchWorkers, workers)
			}
			if stats.TasksRun == 0 {
				t.Errorf("workers=%d: TasksRun = 0, engine did not run", workers)
			}
		}
	}
}

// TestWorkersOneByteIdentical: Workers values 0 and 1 must take the
// sequential path and produce identical plans and identical counters —
// the task engine must be completely inert below 2 workers.
func TestWorkersOneByteIdentical(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	p0, s0 := optimizeToy(t, 0, names, toyColor(2))
	p1, s1 := optimizeToy(t, 1, names, toyColor(2))
	if p0.Cost != p1.Cost {
		t.Fatalf("cost differs: workers=0 %v, workers=1 %v", p0.Cost, p1.Cost)
	}
	if p0.String() != p1.String() {
		t.Fatalf("plan differs:\nworkers=0: %s\nworkers=1: %s", p0, p1)
	}
	if s0 != s1 {
		t.Fatalf("stats differ:\nworkers=0: %+v\nworkers=1: %+v", s0, s1)
	}
	if s0.TasksRun != 0 || s0.TasksParked != 0 {
		t.Fatalf("sequential run counted tasks: %+v", s0)
	}
	if s0.SearchWorkers != 1 {
		t.Fatalf("SearchWorkers = %d, want 1", s0.SearchWorkers)
	}
}

// TestParallelGuided: the guided (seeded, staged) search must compose
// with the task engine and still return the optimal plan.
func TestParallelGuided(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	seq, _ := optimizeToy(t, 1, names, toyColor(1))

	opts := &core.Options{}
	opts.Search.Workers = 4
	opts.Guidance.SeedPlanner = core.SyntacticSeedPlanner()
	o := core.NewOptimizer(&toyModel{}, opts)
	g := o.InsertQuery(leftDeepPair(names...))
	p, err := o.Optimize(g, toyColor(1))
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || p.Cost != seq.Cost {
		t.Fatalf("guided parallel: got %v, want cost %v", p, seq.Cost)
	}
	if o.Stats().LimitStages == 0 {
		t.Fatal("guided run recorded no limit stages")
	}
}

// TestParallelCancellation: a canceled context must stop the pool with
// the typed budget error, leaving no goal parked forever — the Optimize
// call itself returning is the no-parked-goal proof, since a wedged
// claim would deadlock the engine's shutdown path or a later stage.
func TestParallelCancellation(t *testing.T) {
	opts := &core.Options{}
	opts.Search.Workers = 4
	o := core.NewOptimizer(&toyModel{}, opts)
	g := o.InsertQuery(leftDeepPair("a", "b", "c", "d", "e", "f", "g"))

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the budget poll fires on the first checkpoint
	_, err := o.OptimizeCtx(ctx, g, toyColor(2))
	if !errors.Is(err, core.ErrBudget) || !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled (an ErrBudget)", err)
	}

	// The memo must remain usable: a fresh optimizer-free call pattern is
	// not available, but a second optimization on the same optimizer must
	// not deadlock on a stale claim. The sticky memo error keeps the
	// result an error, which is fine — the call must return.
	if _, err := o.Optimize(g, toyColor(2)); err == nil {
		t.Fatal("sticky budget error expected on reuse after cancellation")
	}
}

// TestParallelStepBudget: MaxSteps must bound the shared step counter
// across all workers and surface ErrStepBudget; the search must still
// terminate promptly with every claim swept.
func TestParallelStepBudget(t *testing.T) {
	opts := &core.Options{}
	opts.Search.Workers = 4
	opts.Budget.MaxSteps = 5
	o := core.NewOptimizer(&toyModel{}, opts)
	g := o.InsertQuery(leftDeepPair("a", "b", "c", "d", "e", "f", "g", "h"))
	_, err := o.Optimize(g, toyColor(2))
	if !errors.Is(err, core.ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
}

// TestParallelMarkMerge: class merges (via the MARK(x) → x rule) under
// the task engine: moves collected before a merge must be re-collected
// and the final cost must match the sequential engine's.
func TestParallelMarkMerge(t *testing.T) {
	build := func(workers int) (*core.Plan, error) {
		opts := &core.Options{}
		opts.Search.Workers = workers
		o := core.NewOptimizer(&toyModel{withMarkRule: true}, opts)
		tree := core.Node(&toyMark{}, leftDeepPair("a", "b", "c", "d"))
		g := o.InsertQuery(tree)
		return o.Optimize(g, toyColor(1))
	}
	seq, err := build(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		par, err := build(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par == nil || seq == nil || par.Cost != seq.Cost {
			t.Fatalf("workers=%d: cost %v, sequential %v", workers, par, seq)
		}
	}
}

// syncTracer records events under a lock; the task engine calls the
// tracer from every worker concurrently.
type syncTracer struct {
	mu     sync.Mutex
	events []core.TraceEvent
}

func (tr *syncTracer) Trace(ev core.TraceEvent) {
	tr.mu.Lock()
	tr.events = append(tr.events, ev)
	tr.mu.Unlock()
}

// TestParallelWorkerTrace: trace events from the task engine carry the
// 1-based worker id.
func TestParallelWorkerTrace(t *testing.T) {
	tr := &syncTracer{}
	opts := &core.Options{}
	opts.Search.Workers = 2
	opts.Trace.Tracer = tr
	o := core.NewOptimizer(&toyModel{}, opts)
	g := o.InsertQuery(leftDeepPair("a", "b", "c"))
	if _, err := o.Optimize(g, toyColor(1)); err != nil {
		t.Fatal(err)
	}
	sawWorker := false
	for _, ev := range tr.events {
		if ev.Worker > 0 {
			sawWorker = true
			if ev.Worker > 2 {
				t.Fatalf("worker id %d out of range", ev.Worker)
			}
		}
	}
	if !sawWorker {
		t.Fatal("no trace event carried a worker id")
	}
}
