package core_test

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// TestQuickIncrementalMatchesFromScratch: on random shapes — with and
// without the class-merging mark rule, which stresses the move cache's
// merge invalidation — the default incremental engine finds exactly the
// optimum of the from-scratch engine, for both vacuous and colored
// requirements, while attempting strictly fewer rule matches overall.
func TestQuickIncrementalMatchesFromScratch(t *testing.T) {
	for _, withMark := range []bool{false, true} {
		var incMatches, scrMatches int
		check := func(s toyShape) bool {
			tree := s.tree
			if withMark {
				tree = core.Node(&toyMark{}, tree)
			}
			for _, required := range []core.PhysProps{nil, toyColor(1)} {
				inc := core.NewOptimizer(&toyModel{withMarkRule: withMark}, nil)
				pi, err := inc.Optimize(inc.InsertQuery(tree), required)
				if err != nil || pi == nil {
					t.Logf("incremental: plan=%v err=%v", pi, err)
					return false
				}
				scr := core.NewOptimizer(&toyModel{withMarkRule: withMark},
					&core.Options{Search: core.SearchOptions{NoIncremental: true}})
				ps, err := scr.Optimize(scr.InsertQuery(tree), required)
				if err != nil || ps == nil {
					t.Logf("from-scratch: plan=%v err=%v", ps, err)
					return false
				}
				if pi.Cost.(toyCost) != ps.Cost.(toyCost) {
					t.Logf("incremental cost %v != from-scratch %v (mark=%v req=%v)",
						pi.Cost, ps.Cost, withMark, required)
					return false
				}
				if !pi.Delivered.Covers(ps.Delivered) || !ps.Delivered.Covers(pi.Delivered) {
					t.Logf("delivered differ: %v vs %v", pi.Delivered, ps.Delivered)
					return false
				}
				incMatches += inc.Stats().MatchCalls
				scrMatches += scr.Stats().MatchCalls
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("withMark=%v: %v", withMark, err)
		}
		if incMatches >= scrMatches {
			t.Fatalf("withMark=%v: incremental match calls %d not below from-scratch %d",
				withMark, incMatches, scrMatches)
		}
		t.Logf("withMark=%v: match calls incremental=%d from-scratch=%d",
			withMark, incMatches, scrMatches)
	}
}

// TestMovesReusedOnReactivation: a failed goal retried under a higher
// limit replays the moves collected by its first activation instead of
// re-matching implementation rules.
func TestMovesReusedOnReactivation(t *testing.T) {
	opt := newToyOpt(nil)
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))

	// The optimum for a colored pair is 8 (scans 2 + pair 2 + paint 4);
	// a limit of 7.5 fails only after the whole space has been searched
	// and every sub-goal's moves have been collected and cached.
	if plan, err := opt.OptimizeWithLimit(g, toyColor(2), toyCost(7.5)); err != nil || plan != nil {
		t.Fatalf("hopeless limit: plan=%v err=%v", plan, err)
	}
	if opt.Stats().MovesReused != 0 {
		// Nested goals may legitimately share caches even on the first
		// activation; record the baseline instead of asserting zero.
		t.Logf("first activation already reused %d moves", opt.Stats().MovesReused)
	}
	before := opt.Stats().MovesReused
	matchesBefore := opt.Stats().MatchCalls

	plan, err := opt.OptimizeWithLimit(g, toyColor(2), toyCost(100))
	if err != nil || plan == nil {
		t.Fatalf("higher limit: plan=%v err=%v", plan, err)
	}
	if plan.Cost.(toyCost) != 8 {
		t.Fatalf("cost = %v, want 8", plan.Cost)
	}
	if opt.Stats().MovesReused <= before {
		t.Fatal("re-activation did not replay cached moves")
	}
	if opt.Stats().MatchCalls != matchesBefore {
		t.Fatalf("re-activation re-matched rules: %d match calls, had %d",
			opt.Stats().MatchCalls, matchesBefore)
	}
}

// TestWinnerTableSurvivesMerge: winner and failure entries recorded
// before a class unification remain answerable — through the hashed
// index of the surviving class — without re-optimization.
func TestWinnerTableSurvivesMerge(t *testing.T) {
	opt, memo := newMemo()
	// Leaf classes never merge through rules, so the winner entries
	// below demonstrably predate the forced unification.
	ga := opt.InsertQuery(leaf("a"))
	gb := opt.InsertQuery(leaf("b"))

	// Success for color 2 on a's class; failure for color 3 on b's.
	pa, err := opt.Optimize(ga, toyColor(2))
	if err != nil || pa == nil {
		t.Fatalf("optimize a: plan=%v err=%v", pa, err)
	}
	if plan, err := opt.OptimizeWithLimit(gb, toyColor(3), toyCost(2)); err != nil || plan != nil {
		t.Fatalf("limit 2 should fail on b: plan=%v err=%v", plan, err)
	}

	// Force a merge by asserting LEAF(a) lives in b's class.
	memo.Insert(&toyLeaf{name: "a"}, nil, gb)
	if memo.Find(ga) != memo.Find(gb) {
		t.Fatal("classes not merged")
	}

	goals := opt.Stats().GoalsOptimized
	winHits := opt.Stats().WinnerHits
	failHits := opt.Stats().FailureHits

	// The winner answers through either pre-merge class reference.
	p2, err := opt.Optimize(gb, toyColor(2))
	if err != nil || p2 == nil || p2.Cost.(toyCost) != pa.Cost.(toyCost) {
		t.Fatalf("merged winner: plan=%v err=%v want cost %v", p2, err, pa.Cost)
	}
	if opt.Stats().WinnerHits <= winHits || opt.Stats().GoalsOptimized != goals {
		t.Fatal("winner not answered from the surviving table")
	}

	// The failure still short-circuits an equal-or-tighter retry.
	if plan, _ := opt.OptimizeWithLimit(ga, toyColor(3), toyCost(1)); plan != nil {
		t.Fatalf("tighter retry found plan %v", plan)
	}
	if opt.Stats().FailureHits <= failHits || opt.Stats().GoalsOptimized != goals {
		t.Fatal("failure not answered from the surviving table")
	}

	// A higher limit re-optimizes and succeeds.
	p3, err := opt.OptimizeWithLimit(ga, toyColor(3), toyCost(100))
	if err != nil || p3 == nil {
		t.Fatalf("higher limit: plan=%v err=%v", p3, err)
	}
	if opt.Stats().GoalsOptimized == goals {
		t.Fatal("higher limit should have re-searched")
	}
}
