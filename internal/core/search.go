package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// Optimizer is a generated optimizer: the model-independent search
// engine bound to one data model. It maps expressions over the model's
// logical algebra into the cheapest equivalent expressions over the
// model's physical algebra, honoring required physical properties.
//
// An Optimizer (and its memo) serves one query; the set of partial
// optimization results is reinitialized for each query being optimized,
// as in the paper.
type Optimizer struct {
	model Model
	memo  *Memo
	opts  Options
	stats Stats
	ctx   *RuleContext
	// lower is the model's admissible cost floor, when it provides one
	// (see LowerBounder); nil otherwise.
	lower LowerBounder
	// tracer receives structured search-trace events; nil when tracing
	// is off.
	tracer Tracer
	// bud is the armed budget of the current optimization call; nil
	// when neither the context nor the options bound the search.
	bud *budgetState
	// seedFallback is a complete plan captured from the seed planner,
	// kept as the degradation floor for anytime returns.
	seedFallback *Plan
	// pol is the state of a stochastic search policy run (selection
	// tree and random stream); nil for exhaustive runs. See policy.go.
	pol *policyState
}

// NewOptimizer creates an optimizer for the model. opts may be nil for
// the default (exhaustive, pruned, memoizing) configuration; a non-nil
// opts must satisfy Options.Validate, or NewOptimizer panics.
func NewOptimizer(model Model, opts *Options) *Optimizer {
	if n := len(model.TransformationRules()); n > MaxTransformRules {
		panic(fmt.Sprintf("core: model %s declares %d transformation rules; max is %d",
			model.Name(), n, MaxTransformRules))
	}
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	o := &Optimizer{model: model}
	o.lower, _ = model.(LowerBounder)
	if opts != nil {
		o.opts = *opts
	}
	o.tracer = o.opts.Trace.Tracer
	o.memo = NewMemo(model, &o.opts, &o.stats)
	o.ctx = &RuleContext{Memo: o.memo, Model: model}
	return o
}

// Memo returns the optimizer's memo for inspection.
func (o *Optimizer) Memo() *Memo { return o.memo }

// Stats returns the search-effort counters accumulated so far.
func (o *Optimizer) Stats() *Stats { return &o.stats }

// InsertQuery loads a user query — an algebra expression (tree) of
// logical operators — into the memo and returns its equivalence class.
func (o *Optimizer) InsertQuery(t *ExprTree) GroupID {
	return o.memo.InsertTree(t, InvalidGroup)
}

// Explore expands the class to transformation-rule fixpoint without a
// context; see ExploreCtx.
func (o *Optimizer) Explore(g GroupID) error {
	return o.ExploreCtx(context.Background(), g)
}

// ExploreCtx expands the class (and, through rule bindings, everything
// it references) to transformation-rule fixpoint without any algorithm
// selection or cost analysis. This is the extreme point the paper
// mentions — transforming a logical expression without cost analysis,
// covering the optimizations Starburst separates into its query rewrite
// level — available here as a choice, not a mandate. Cancellation and
// the configured Budget stop the expansion with a typed budget error.
func (o *Optimizer) ExploreCtx(ctx context.Context, g GroupID) error {
	if g == InvalidGroup {
		// Query insertion itself failed (e.g. expression budget).
		if err := o.memo.Err(); err != nil {
			return err
		}
		return ErrBudget
	}
	o.armBudget(ctx)
	o.memo.exploreGroup(o.memo.Group(g))
	if err := o.memo.err; err != nil && errors.Is(err, ErrBudget) {
		o.stats.StopReason = err
	}
	return o.memo.err
}

// Optimize finds the cheapest plan for the class that delivers the
// required physical properties (nil means no requirement). It is the
// original invocation of the paper's FindBestPlan, with the cost limit
// set to infinity and no cancellation.
func (o *Optimizer) Optimize(root GroupID, required PhysProps) (*Plan, error) {
	return o.OptimizeWithLimitCtx(context.Background(), root, required, o.model.InfiniteCost())
}

// OptimizeCtx is Optimize under a context: cancellation (and a context
// deadline) stops the search with the anytime degradation described on
// OptimizeWithLimitCtx.
func (o *Optimizer) OptimizeCtx(ctx context.Context, root GroupID, required PhysProps) (*Plan, error) {
	return o.OptimizeWithLimitCtx(ctx, root, required, o.model.InfiniteCost())
}

// OptimizeWithLimit is OptimizeWithLimitCtx without a context.
func (o *Optimizer) OptimizeWithLimit(root GroupID, required PhysProps, limit Cost) (*Plan, error) {
	return o.OptimizeWithLimitCtx(context.Background(), root, required, limit)
}

// OptimizeWithLimitCtx is Optimize with a caller-supplied cost limit; a
// user interface may set a finite limit to "catch" unreasonable queries.
// The limit is inclusive: a plan costing exactly the limit is within it.
//
// The return contract distinguishes three outcomes:
//
//   - (plan, nil): the search ran to completion; plan is optimal within
//     the limit.
//   - (nil, nil): the search ran to completion and proved that no plan
//     within the limit exists. Under a stochastic Search.Policy the
//     proof is weaker — the policy cannot certify absence, so it
//     returns the best vetted fallback plan instead, and (nil, nil)
//     only means not even a fallback within the limit exists.
//   - (plan?, err) with errors.Is(err, ErrBudget): the context was
//     canceled or a Budget bound was exhausted. The search degrades
//     gracefully instead of failing: plan, when non-nil, is the best
//     complete, consistency-checked plan known at the stop — the root
//     winner found so far, the guided seed plan, or the query as
//     written — and Stats.StopReason records what stopped the search.
//     plan is nil only when not even a fallback plan within the limit
//     exists.
//
// Any other error (a model inconsistency surfaced through the memo) is
// returned with a nil plan.
func (o *Optimizer) OptimizeWithLimitCtx(ctx context.Context, root GroupID, required PhysProps, limit Cost) (*Plan, error) {
	if root == InvalidGroup {
		if err := o.memo.Err(); err != nil {
			return nil, err
		}
		return nil, ErrBudget
	}
	if required == nil {
		required = o.model.AnyProps()
	}
	o.armBudget(ctx)
	if o.bud != nil && o.memo.err == nil {
		// An already-expired context or deadline stops the search before
		// it starts; the anytime path below still produces a plan.
		if err := o.bud.poll(); err != nil {
			o.memo.err = err
		}
	}
	if o.opts.Search.Workers > 1 {
		o.stats.SearchWorkers = o.opts.Search.Workers
	} else {
		o.stats.SearchWorkers = 1
	}
	var plan *Plan
	if o.memo.err == nil {
		switch {
		case o.opts.Search.Policy != PolicyExhaustive:
			plan = o.policyOptimize(root, required, limit)
		case o.opts.Search.GlueMode:
			plan = o.glueOptimize(root, required, limit)
		case o.opts.Guidance.SeedPlanner != nil:
			plan = o.guidedOptimize(root, required, limit)
		default:
			plan, _ = o.searchRoot(root, required, limit, true)
		}
	}
	if b := o.memo.MemoryBytes(); b > o.stats.PeakMemoBytes {
		o.stats.PeakMemoBytes = b
	}
	err := o.memo.Err()
	if err == nil {
		// A nil plan here is definitive: the completed search proved no
		// plan within the limit exists. This is the engine's only
		// (nil, nil) return.
		return plan, nil
	}
	if !errors.Is(err, ErrBudget) {
		return nil, err
	}
	// Anytime degradation: surface the best complete plan known at the
	// stop alongside the typed budget error.
	o.stats.StopReason = err
	if plan == nil {
		if fb := o.anytimeFallback(root, required, limit); fb != nil {
			o.stats.AnytimeFallback = true
			plan = fb
		}
	}
	if o.tracer != nil {
		o.tracer.Trace(TraceEvent{Kind: TraceBudgetStop, Group: root,
			Required: required, Steps: o.stats.Steps(), Err: err})
	}
	return plan, err
}

// anytimeFallback produces the degraded result for a budget-stopped
// search whose interrupted activation returned no plan: the cheapest of
// the root winner recorded by an earlier guided stage, the seed
// planner's complete plan if it captured one, and — as the last resort
// — the query costed as written with transformations disabled. Every
// candidate is a complete, consistency-checked plan; candidates not
// covering the requirement or exceeding the caller's limit are
// rejected, and nil is returned only when no fallback within the limit
// exists. Taking the minimum guarantees that, when the seed floor
// exists, the degraded result never costs more than the floor.
func (o *Optimizer) anytimeFallback(root GroupID, required PhysProps, limit Cost) *Plan {
	var best *Plan
	offer := func(p *Plan) {
		if p != nil && costLE(p.Cost, limit) && (best == nil || p.Cost.Less(best.Cost)) {
			best = p
		}
	}
	g := o.memo.Group(root)
	if w := g.lookupWinner(required, nil); w != nil && w.plan != nil {
		offer(w.plan)
	}
	if p := o.seedFallback; p != nil && p.Delivered != nil && p.Delivered.Covers(required) {
		offer(p)
	}
	if best == nil {
		offer(o.syntacticPlan(root, required))
	}
	return best
}

// Budgeted reports whether the current (or most recent) optimization
// call runs under an armed budget — a cancelable context, a deadline, or
// any Budget bound. Seed planners use it to decide whether materializing
// a complete floor plan is worth the extra work: without a budget the
// floor can never be needed.
func (o *Optimizer) Budgeted() bool { return o.bud != nil }

// classFloor returns the memoized admissible cost floor for a class, or
// nil when the model declines. Only called when o.lower is non-nil.
func (o *Optimizer) classFloor(g *Group) Cost {
	if !g.floorSet {
		g.floor = o.lower.LowerBound(g.logProps)
		g.floorSet = true
	}
	return g.floor
}

// searchRoot dispatches a top-level optimization goal to the configured
// engine: the recursive sequential FindBestPlan, or — when
// Options.Search.Workers asks for intra-query parallelism — the task
// engine (see psearch.go). The two produce plans of identical cost; with
// Workers <= 1 the sequential path below runs unchanged, byte-identical
// to prior versions in both plans and counters.
func (o *Optimizer) searchRoot(root GroupID, required PhysProps, limit Cost, inclusive bool) (*Plan, bool) {
	if o.opts.Search.Workers <= 1 {
		return o.findBestPlan(root, required, nil, limit, inclusive)
	}
	return o.parallelSearch(root, required, limit, inclusive)
}

// goal carries the mutable state of one FindBestPlan activation.
type goal struct {
	required PhysProps
	excluded PhysProps
	// limit is the branch-and-bound bound; it tightens as complete
	// plans are found.
	limit Cost
	best  *Plan
	// inclusive makes the bound admit plans costing exactly limit.
	// Seeded limits are inclusive: the seed's cost is achievable, so an
	// optimal plan equal to it must not be pruned. The flag clears as
	// soon as an incumbent plan is installed — from then on only
	// strictly cheaper plans are improvements.
	inclusive bool
	// transient is set when a failure was (possibly) caused by an
	// in-progress cycle or budget stop, making it unsafe to memoize.
	transient bool
	// policy routes input optimizations through the stochastic policy's
	// rolloutGoal instead of the exhaustive findBestPlan (see policy.go).
	policy bool
}

// optimizeInput optimizes one input goal of a pursued move, dispatching
// to the engine the enclosing goal runs under: the exhaustive
// FindBestPlan, or — inside a stochastic policy episode — a rollout
// that itself pursues one selected move.
func (o *Optimizer) optimizeInput(s *goal, gid GroupID, required, excluded PhysProps, limit Cost) (*Plan, bool) {
	if s.policy {
		return o.rolloutGoal(gid, required, excluded, limit, s.inclusive)
	}
	return o.findBestPlan(gid, required, excluded, limit, s.inclusive)
}

// findBestPlan is the paper's FindBestPlan (Figure 2) extended with the
// excluding physical property vector used for enforcer inputs. It
// returns the best plan within limit, or nil; transient reports that a
// nil result must not be treated as a definitive failure. inclusive
// widens the bound to admit plans costing exactly limit (seeded limits);
// input goals inherit the inclusivity their parent goal has at the time
// they are optimized.
func (o *Optimizer) findBestPlan(gid GroupID, required, excluded PhysProps, limit Cost, inclusive bool) (plan *Plan, transient bool) {
	if o.memo.err != nil {
		return nil, true
	}
	gid = o.memo.Find(gid)
	g := o.memo.groups[gid-1]

	// The property fingerprint is computed once per goal and reused for
	// every winner-table access below.
	wk := winnerKey(required, excluded)

	// First part: answer from the look-up table when possible.
	if w := g.lookupWinnerKeyed(wk, required, excluded); w != nil {
		if w.inProgress {
			return nil, true
		}
		if w.plan != nil {
			o.stats.WinnerHits++
			if costLE(w.cost, limit) {
				return w.plan, false
			}
			// The recorded plan is optimal; a tighter limit cannot
			// be met by any other plan.
			return nil, false
		}
		if !o.opts.Search.NoFailureMemo && w.failedLimit != nil {
			// A recorded failure at limit F certifies that no plan
			// costs strictly less than F. An exclusive query at
			// limit <= F is therefore hopeless; an inclusive query
			// additionally admits cost == limit, so it may reuse the
			// failure only when limit < F strictly.
			if costLE(limit, w.failedLimit) && (!inclusive || limit.Less(w.failedLimit)) {
				o.stats.FailureHits++
				return nil, false
			}
		}
	}

	// An admissible cost floor can refute the goal outright: when even
	// the floor breaks the bound, no plan within the limit exists, and
	// the class need not be explored nor its moves collected at all.
	// This is where a finite seeded limit saves work that incumbent-
	// driven pruning cannot: it is in force before any plan exists.
	if o.lower != nil && !o.opts.Search.NoPruning {
		if lb := o.classFloor(g); lb != nil {
			if inclusive && limit.Less(lb) || !inclusive && costLE(limit, lb) {
				o.stats.GoalsPruned++
				return nil, false
			}
		}
	}

	// Else: optimization required.
	w := g.ensureWinnerKeyed(wk, required, excluded)
	w.inProgress = true
	defer func() {
		w.inProgress = false
		// The class may have merged away mid-search, carrying the
		// in-progress mark onto the representative's entry; release that
		// surviving entry too. The comparison must be against the entry
		// itself, not the group: the fixpoint loop reassigns g to the
		// representative, so a group comparison never sees the merge and
		// the carried mark would pin the goal "in progress" forever —
		// every later optimization of an equivalent root would read the
		// stale mark as a cycle and report no plan.
		if cw := o.memo.Group(gid).lookupWinnerKeyed(wk, required, excluded); cw != nil && cw != w {
			cw.inProgress = false
		}
	}()
	o.stats.GoalsOptimized++
	if o.tracer != nil {
		o.tracer.Trace(TraceEvent{Kind: TraceGoalBegin, Group: gid,
			Required: required, Excluded: excluded, Limit: limit})
	}

	// Incremental move collection: moves are cached per (class,
	// requirement) with an expression watermark, so each fixpoint
	// iteration matches implementation rules only against expressions
	// added since the last pass, and a goal re-activation (a memoized
	// failure retried under a higher limit) replays the cached moves
	// without any re-matching. A merge anywhere in the memo voids the
	// cache — through the enlarged class, already-matched expressions
	// may bind anew. MoveFilter heuristics must see the complete move
	// list of every iteration, so they require the from-scratch path
	// (Options.Validate enforces the pairing with NoIncremental).
	incremental := o.opts.Search.MoveFilter == nil && !o.opts.Search.NoIncremental
	var mk physKey
	if incremental {
		mk = keyOf(required)
	}

	s := &goal{required: required, excluded: excluded, limit: limit, inclusive: inclusive}
	// done is this activation's pursuit frontier into the cached move
	// set: moves[:done] have been pursued. It resets when the cache is
	// voided or the class merges onto another (curMS/curGen detect
	// both), re-pursuing the fresh collection.
	var (
		done   int
		curMS  *moveSet
		curGen uint64
	)
	for {
		gid = o.memo.Find(gid)
		g = o.memo.groups[gid-1]
		o.memo.exploreGroup(g)
		if o.memo.err != nil {
			s.transient = true
			break
		}
		nExprs := len(g.exprs)

		var moves []Move
		if incremental {
			ms := g.ensureMoveSet(mk, required)
			if ms != curMS || ms.gen != curGen {
				done = 0
			}
			if ms.epoch != o.memo.mergeEpoch {
				ms.reset(o.memo.mergeEpoch)
				done = 0
			}
			if done == 0 && len(ms.moves) > 0 {
				o.stats.MovesReused += len(ms.moves)
			}
			o.collectMovesInto(ms, g, required)
			curMS, curGen = ms, ms.gen
			moves = ms.moves[done:]
			done = len(ms.moves)
		} else {
			moves = o.collectMoves(g, required)
			if o.opts.Search.MoveFilter != nil {
				moves = o.opts.Search.MoveFilter(moves)
			}
		}
		for i := range moves {
			// The budget checkpoint charges each pursued move; on
			// exhaustion the sticky memo error unwinds every active
			// goal transiently, keeping partial results unmemoized.
			if o.bud != nil {
				if err := o.bud.step(); err != nil {
					o.memo.err = err
					s.transient = true
					break
				}
			}
			if o.tracer != nil {
				o.tracer.Trace(TraceEvent{Kind: TraceMovePursued, Group: gid,
					Required: required, Move: moves[i].Name(), MoveKind: moves[i].Kind})
			}
			switch moves[i].Kind {
			case MoveAlgorithm:
				o.pursueAlgorithm(s, g, &moves[i])
			case MoveEnforcer:
				o.pursueEnforcer(s, g, moves[i].Enforcer)
			}
			if o.memo.err != nil {
				s.transient = true
				break
			}
		}

		// Child optimizations can enlarge or merge this class (new
		// equivalent expressions discovered through other classes);
		// re-collect moves until the class is stable so the search
		// stays exhaustive. The incremental cache must also be drained:
		// a nested goal sharing it may have appended moves this
		// activation has not pursued yet.
		cur := o.memo.Find(gid)
		cg := o.memo.groups[cur-1]
		if cur == gid && cg.explored && len(cg.exprs) == nExprs &&
			(!incremental || (curMS.gen == curGen && done == len(curMS.moves))) {
			break
		}
	}

	// Maintain the look-up table of explored facts: optimal plans and
	// failures are both interesting with respect to possible future use.
	// A budget-interrupted activation still records (and returns) its
	// best complete plan — the anytime result — but never memoizes a
	// failure, since the search was not exhaustive.
	gid = o.memo.Find(gid)
	fw := o.memo.groups[gid-1].ensureWinnerKeyed(wk, required, excluded)
	if s.best != nil {
		if fw.plan == nil || s.best.Cost.Less(fw.cost) {
			fw.plan, fw.cost = s.best, s.best.Cost
		}
		if o.tracer != nil {
			o.tracer.Trace(TraceEvent{Kind: TraceWinner, Group: gid,
				Required: required, Cost: fw.cost, Plan: fw.plan})
			o.tracer.Trace(TraceEvent{Kind: TraceGoalEnd, Group: gid,
				Required: required, Cost: fw.cost})
		}
		if costLE(fw.cost, limit) {
			return fw.plan, false
		}
		return nil, false
	}
	if !s.transient {
		o.stats.GoalsPruned++
		if !o.opts.Search.NoFailureMemo {
			if fw.failedLimit == nil || fw.failedLimit.Less(limit) {
				fw.failedLimit = limit
			}
			if o.tracer != nil {
				o.tracer.Trace(TraceEvent{Kind: TraceFailure, Group: gid,
					Required: required, Limit: limit})
			}
		}
	}
	if o.tracer != nil {
		o.tracer.Trace(TraceEvent{Kind: TraceGoalEnd, Group: gid, Required: required})
	}
	return nil, s.transient
}

// collectMoves creates the set of possible moves for one goal —
// algorithms that can deliver the required properties and enforcers for
// the required properties — ordered by promise. (Transformations, the
// third move kind of Figure 2, are applied to fixpoint by exploreGroup,
// which is equivalent under exhaustive search.)
func (o *Optimizer) collectMoves(g *Group, required PhysProps) []Move {
	var moves []Move
	for _, rule := range o.model.ImplementationRules() {
		for i := 0; i < len(g.exprs); i++ {
			e := g.exprs[i]
			// The O(1) root test screens the pair before it counts as a
			// match attempt — same convention as exploreGroup.
			if !kindMatches(rule.Pattern.Kind, e.Op.Kind()) ||
				len(rule.Pattern.Children) != len(e.Inputs) {
				continue
			}
			o.stats.MatchCalls++
			o.memo.matchBindings(e, rule.Pattern, func(b *Binding) bool {
				if rule.Condition != nil && !rule.Condition(o.ctx, b) {
					return true
				}
				alts, ok := rule.Applicability(o.ctx, b, required)
				if !ok || len(alts) == 0 {
					return true
				}
				moves = append(moves, Move{
					Kind:    MoveAlgorithm,
					Promise: rule.Promise,
					Rule:    rule,
					Binding: cloneBinding(b),
					Alts:    alts,
				})
				return true
			})
		}
	}
	for _, enf := range o.model.Enforcers() {
		moves = append(moves, Move{Kind: MoveEnforcer, Promise: enf.Promise, Enforcer: enf})
	}
	sort.SliceStable(moves, func(i, j int) bool { return moves[i].Promise > moves[j].Promise })
	return moves
}

// collectMovesInto extends a cached move set to cover the class's current
// expression list: implementation rules are matched only against
// expressions past the set's watermark, and enforcer moves (which depend
// only on the requirement, not on the expressions) are added exactly once.
// Each extension batch is promise-ordered in place; earlier batches are
// left untouched so pursuit indexes into them stay valid.
func (o *Optimizer) collectMovesInto(ms *moveSet, g *Group, required PhysProps) {
	first := ms.matched == 0 && len(ms.moves) == 0
	if !first && ms.matched >= len(g.exprs) {
		return
	}
	batch := len(ms.moves)
	for _, rule := range o.model.ImplementationRules() {
		for i := ms.matched; i < len(g.exprs); i++ {
			e := g.exprs[i]
			// Root-kind screening, as in collectMoves: a pair the O(1)
			// test rejects is not a match attempt.
			if !kindMatches(rule.Pattern.Kind, e.Op.Kind()) ||
				len(rule.Pattern.Children) != len(e.Inputs) {
				continue
			}
			o.stats.MatchCalls++
			o.memo.matchBindings(e, rule.Pattern, func(b *Binding) bool {
				if rule.Condition != nil && !rule.Condition(o.ctx, b) {
					return true
				}
				alts, ok := rule.Applicability(o.ctx, b, required)
				if !ok || len(alts) == 0 {
					return true
				}
				cb := o.memo.cloneBinding(b)
				ms.moves = append(ms.moves, Move{
					Kind:    MoveAlgorithm,
					Promise: rule.Promise,
					Rule:    rule,
					Binding: cb,
					Alts:    alts,
					leaves:  cb.Leaves(nil),
				})
				return true
			})
		}
	}
	if first {
		for _, enf := range o.model.Enforcers() {
			ms.moves = append(ms.moves, Move{Kind: MoveEnforcer, Promise: enf.Promise, Enforcer: enf})
		}
	}
	ms.matched = len(g.exprs)
	if tail := ms.moves[batch:]; len(tail) > 1 {
		sort.SliceStable(tail, func(i, j int) bool { return tail[i].Promise > tail[j].Promise })
	}
}

// cloneBinding deep-copies a binding; the matcher reuses child slices
// during enumeration, so stored bindings need their own copies. Moves on
// the transient (non-cached) path use this heap variant so their bindings
// are garbage-collected with them; cached moves clone into the memo's
// arena instead.
func cloneBinding(b *Binding) *Binding {
	c := &Binding{Expr: b.Expr, Group: b.Group}
	if len(b.Children) > 0 {
		c.Children = make([]*Binding, len(b.Children))
		for i, ch := range b.Children {
			c.Children[i] = cloneBinding(ch)
		}
	}
	return c
}

// prune reports whether a partial cost already reaches the bound; such
// moves cannot lead to a better plan and are abandoned. An inclusive
// goal admits partial costs equal to the bound — a complete plan at
// exactly the (seeded) limit is acceptable.
func (o *Optimizer) prune(s *goal, partial Cost) bool {
	if o.opts.Search.NoPruning {
		return false
	}
	if s.inclusive {
		if s.limit.Less(partial) {
			o.stats.Pruned++
			return true
		}
		return false
	}
	if costLE(s.limit, partial) {
		o.stats.Pruned++
		return true
	}
	return false
}

// childLimit is the cost limit passed down when optimizing an input:
// the remaining budget after the partial cost accumulated so far. Under
// an inclusive bound the partial cost may equal the limit exactly, and
// componentwise cost subtraction can round the remainder slightly below
// zero; the result is clamped so a legitimate zero-budget child goal is
// not turned into a spurious (and memoized) failure.
func (o *Optimizer) childLimit(s *goal, partial Cost) Cost {
	if o.opts.Search.NoPruning {
		return o.model.InfiniteCost()
	}
	rem := s.limit.Sub(partial)
	if zero := o.model.ZeroCost(); rem.Less(zero) {
		return zero
	}
	return rem
}

// offer installs a complete plan as the goal's best if it improves on
// the current one, tightening the branch-and-bound limit. Once an
// incumbent exists the bound turns exclusive: only strictly cheaper
// plans remain interesting.
func (o *Optimizer) offer(s *goal, p *Plan) {
	if s.best == nil || p.Cost.Less(s.best.Cost) {
		s.best = p
		if !o.opts.Search.NoPruning && (p.Cost.Less(s.limit) || (s.inclusive && costLE(p.Cost, s.limit))) {
			s.limit = p.Cost
		}
		s.inclusive = false
	}
}

// pursueAlgorithm explores one algorithm move: for each acceptable input
// property combination, cost the algorithm, optimize each input under
// the remaining budget, and offer the completed plan.
func (o *Optimizer) pursueAlgorithm(s *goal, g *Group, mv *Move) {
	o.stats.AlgorithmMoves++
	rule, b := mv.Rule, mv.Binding
	leaves := mv.leaves
	if leaves == nil {
		leaves = b.Leaves(nil)
	}
	// Admissible input floors sharpen the bound: every input will cost
	// at least its floor, so inputs not yet optimized are charged their
	// floors both when pruning and when budgeting a sibling's limit.
	var floors []Cost
	var floorSum Cost
	if o.lower != nil && !o.opts.Search.NoPruning {
		floorSum = o.model.ZeroCost()
		floors = make([]Cost, len(leaves))
		for i, leaf := range leaves {
			floors[i] = o.model.ZeroCost()
			lg := o.memo.groups[o.memo.Find(leaf)-1]
			if lb := o.classFloor(lg); lb != nil {
				floors[i] = lb
			}
			floorSum = floorSum.Add(floors[i])
		}
	}
	for _, alt := range mv.Alts {
		if len(alt.Required) != len(leaves) {
			panic(fmt.Sprintf("core: rule %s returned %d input requirements for %d inputs",
				rule.Name, len(alt.Required), len(leaves)))
		}
		local := rule.Cost(o.ctx, b, s.required, alt)
		total := local
		// rest is the floor mass of the inputs still to be optimized; it
		// shrinks as each input's actual cost is folded into total.
		var rest Cost
		charged := total
		if floors != nil {
			rest = floorSum
			charged = total.Add(rest)
		}
		if o.prune(s, charged) {
			o.stats.MovesSkipped++
			if o.tracer != nil {
				o.tracer.Trace(TraceEvent{Kind: TraceMoveSkipped, Group: g.id,
					Required: s.required, Move: rule.Name, MoveKind: MoveAlgorithm})
			}
			continue
		}
		inPlans := make([]*Plan, len(leaves))
		inProps := make([]PhysProps, len(leaves))
		ok := true
		for i, leaf := range leaves {
			childReq := alt.Required[i]
			if o.opts.Search.GlueMode {
				childReq = o.model.AnyProps()
			}
			partial := total
			if floors != nil {
				rest = rest.Sub(floors[i])
				partial = total.Add(rest)
			}
			p, tr := o.optimizeInput(s, leaf, childReq, nil, o.childLimit(s, partial))
			if p == nil {
				s.transient = s.transient || tr
				ok = false
				break
			}
			if o.opts.Search.GlueMode {
				// Starburst-style glue: patch the input up to the
				// algorithm's needs after the fact.
				p, ok = o.wrapWithEnforcers(p, alt.Required[i], 0)
				if !ok {
					break
				}
			}
			inPlans[i] = p
			inProps[i] = p.Delivered
			total = total.Add(p.Cost)
			charged = total
			if floors != nil {
				charged = total.Add(rest)
			}
			if o.prune(s, charged) {
				if o.tracer != nil {
					o.tracer.Trace(TraceEvent{Kind: TraceMovePruned, Group: g.id,
						Required: s.required, Move: rule.Name, MoveKind: MoveAlgorithm})
				}
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		delivered := s.required
		if rule.Delivered != nil {
			delivered = rule.Delivered(o.ctx, b, s.required, alt, inProps)
		}
		if !delivered.Covers(s.required) {
			// The paper's consistency check: the physical properties
			// of a chosen plan really must satisfy the goal's vector.
			o.stats.ConsistencyViolations++
			if o.tracer != nil {
				o.tracer.Trace(TraceEvent{Kind: TraceViolation, Group: g.id,
					Required: s.required, Delivered: delivered,
					Move: rule.Name, MoveKind: MoveAlgorithm})
			}
			continue
		}
		if s.excluded != nil && delivered.Covers(s.excluded) {
			// The provision that algorithms do not qualify
			// redundantly: a plan that satisfies the excluded
			// properties by itself must not feed the enforcer that
			// establishes them (merge-join must not be considered as
			// input to the sort). Algorithms that merely pass the
			// requirement through, such as filter, are unaffected —
			// their delivered vector reflects their actual input.
			o.stats.Pruned++
			continue
		}
		o.offer(s, &Plan{
			Op:        rule.Build(o.ctx, b, s.required, alt),
			Inputs:    inPlans,
			Delivered: delivered,
			Cost:      total,
			LocalCost: local,
			Group:     g.id,
			LogProps:  g.logProps,
		})
	}
}

// pursueEnforcer explores one enforcer move: relax the required vector,
// optimize the same class for the relaxed vector — excluding algorithms
// that already qualified for the original requirement — and stack the
// enforcer on top. The enforcer's cost is subtracted from the bound
// before the input is optimized, so pruning reaches into enforcer inputs.
func (o *Optimizer) pursueEnforcer(s *goal, g *Group, enf *Enforcer) {
	relaxed, excl, ok := enf.Relax(o.ctx, g.logProps, s.required)
	if !ok {
		return
	}
	o.stats.EnforcerMoves++
	local := enf.Cost(o.ctx, g.logProps, s.required)
	total := local
	charged := total
	if o.lower != nil && !o.opts.Search.NoPruning {
		// The enforcer's input is this same class, so the class floor is
		// a sound advance charge for the input plan.
		if lb := o.classFloor(g); lb != nil {
			charged = total.Add(lb)
		}
	}
	if o.prune(s, charged) {
		o.stats.MovesSkipped++
		if o.tracer != nil {
			o.tracer.Trace(TraceEvent{Kind: TraceMoveSkipped, Group: g.id,
				Required: s.required, Move: enf.Name, MoveKind: MoveEnforcer})
		}
		return
	}
	in, tr := o.optimizeInput(s, g.id, relaxed, excl, o.childLimit(s, total))
	if in == nil {
		s.transient = s.transient || tr
		return
	}
	total = total.Add(in.Cost)
	if o.prune(s, total) {
		if o.tracer != nil {
			o.tracer.Trace(TraceEvent{Kind: TraceMovePruned, Group: g.id,
				Required: s.required, Move: enf.Name, MoveKind: MoveEnforcer})
		}
		return
	}
	delivered := s.required
	if enf.Delivered != nil {
		delivered = enf.Delivered(o.ctx, s.required, in.Delivered)
	}
	if !delivered.Covers(s.required) {
		o.stats.ConsistencyViolations++
		if o.tracer != nil {
			o.tracer.Trace(TraceEvent{Kind: TraceViolation, Group: g.id,
				Required: s.required, Delivered: delivered,
				Move: enf.Name, MoveKind: MoveEnforcer})
		}
		return
	}
	if s.excluded != nil && delivered.Covers(s.excluded) {
		o.stats.Pruned++
		return
	}
	o.offer(s, &Plan{
		Op:        enf.Build(o.ctx, g.logProps, s.required),
		Inputs:    []*Plan{in},
		Delivered: delivered,
		Cost:      total,
		LocalCost: local,
		Group:     g.id,
		LogProps:  g.logProps,
	})
}

// glueOptimize is the Starburst-style strategy used for ablation:
// optimize the class with no property requirement, then glue enforcers
// onto the winning plan to meet the real requirement, adding their cost
// to the plan after the fact instead of letting properties direct the
// search.
func (o *Optimizer) glueOptimize(root GroupID, required PhysProps, limit Cost) *Plan {
	p, _ := o.findBestPlan(root, o.model.AnyProps(), nil, limit, true)
	if p == nil {
		return nil
	}
	wrapped, ok := o.wrapWithEnforcers(p, required, 0)
	if !ok {
		return nil
	}
	if !costLE(wrapped.Cost, limit) {
		return nil
	}
	return wrapped
}

// wrapWithEnforcers stacks enforcers on a finished plan until it covers
// required. Depth is bounded: each enforcer establishes at least one
// property, and property vectors are finite.
func (o *Optimizer) wrapWithEnforcers(p *Plan, required PhysProps, depth int) (*Plan, bool) {
	if p.Delivered.Covers(required) {
		return p, true
	}
	const maxEnforcerStack = 4
	if depth >= maxEnforcerStack {
		return nil, false
	}
	lp := p.LogProps
	for _, enf := range o.model.Enforcers() {
		relaxed, _, ok := enf.Relax(o.ctx, lp, required)
		if !ok {
			continue
		}
		in, ok := o.wrapWithEnforcers(p, relaxed, depth+1)
		if !ok {
			continue
		}
		delivered := required
		if enf.Delivered != nil {
			delivered = enf.Delivered(o.ctx, required, in.Delivered)
		}
		if !delivered.Covers(required) {
			continue
		}
		local := enf.Cost(o.ctx, lp, required)
		return &Plan{
			Op:        enf.Build(o.ctx, lp, required),
			Inputs:    []*Plan{in},
			Delivered: delivered,
			Cost:      in.Cost.Add(local),
			LocalCost: local,
			Group:     p.Group,
			LogProps:  lp,
		}, true
	}
	return nil, false
}
