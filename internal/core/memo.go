package core

import (
	"fmt"
	"sync"
)

// Memo is the hash table of expressions and equivalence classes at the
// heart of the search engine. It detects redundant derivations of the
// same logical expression — algebraic transformation systems always
// include the possibility of deriving the same expression in several
// different ways — and collapses them, so each expression is optimized
// at most once per physical property requirement.
//
// The memo is reinitialized for each query being optimized, matching the
// paper's current design (longer-lived partial results are future work).
type Memo struct {
	model Model

	// groups[i] holds the class with GroupID i+1.
	groups []*Group
	// parent implements union-find over classes: two classes are
	// merged when a transformation derives, in one class, an
	// expression already present in another. parent[i] is the parent
	// of GroupID i+1; a root is its own parent.
	parent []GroupID
	// table chains expressions by identity hash.
	table map[uint64]*Expr

	exprCount int
	stats     *Stats
	opts      *Options
	err       error

	// mergeEpoch counts class unifications. A merge can create new rule
	// bindings for expressions matched earlier (their input classes gain
	// members), so cached move sets record the epoch they were built at
	// and are voided when it has advanced. Between merges — in
	// particular through the whole cost-analysis phase of a typical
	// search, where transformations have already reached fixpoint —
	// caches stay valid and incremental collection does no rework.
	mergeEpoch uint64
	// multiMask has the bit of every transformation rule whose pattern
	// spans more than one operator. Only those rules can bind new
	// expressions through an input class enlarged by a merge, so only
	// their fired-rule bits are reset on parents when classes unify;
	// single-operator rules never need to re-fire.
	multiMask uint64
	// ctx is the rule context handed to condition and apply code,
	// hoisted here so exploration does not allocate one per class.
	ctx *RuleContext
	// scratch is the reusable canonical-input buffer for insert
	// lookups; an input copy is only allocated when an expression is
	// actually stored.
	scratch []GroupID
	// arena slab-allocates the bindings retained by cached moves.
	arena bindingArena

	// mu guards the memo's structure — groups, parent, table, arena, the
	// shared stats, and err — during a parallel search. The task engine
	// takes the write lock for every structural mutation (exploration,
	// insertion, merging, move collection) and the read lock around
	// pursuit, whose model callbacks resolve classes through Find. The
	// sequential engine never touches the lock.
	mu sync.RWMutex
	// concurrent is set for the duration of a parallel search. It gates
	// Find's path halving: halving mutates parent, which is only safe
	// when the memo has a single mutator. The flag is flipped before the
	// workers start and after they join, so no lock guards it.
	concurrent bool

	// bud is the armed budget of the current optimization call, shared
	// with the Optimizer; the memo ticks it on insertions and rule
	// attempts — the units of work that dominate when a search is stuck
	// expanding the space rather than costing plans. Nil when no budget
	// or cancellation is in force.
	bud *budgetState
}

// NewMemo creates an empty memo for the given model.
func NewMemo(model Model, opts *Options, stats *Stats) *Memo {
	m := &Memo{
		model: model,
		table: make(map[uint64]*Expr),
		stats: stats,
		opts:  opts,
	}
	for i, rule := range model.TransformationRules() {
		if multiLevel(rule.Pattern) {
			m.multiMask |= 1 << uint(i)
		}
	}
	m.ctx = &RuleContext{Memo: m, Model: model}
	return m
}

// multiLevel reports whether a pattern spans more than one operator,
// i.e. has an operator (non-leaf) sub-pattern.
func multiLevel(p *Pattern) bool {
	for _, c := range p.Children {
		if !c.IsLeaf {
			return true
		}
	}
	return false
}

// Model returns the data model this memo optimizes.
func (m *Memo) Model() Model { return m.model }

// Err returns the first budget or consistency error encountered.
func (m *Memo) Err() error { return m.err }

// GroupCount returns the number of equivalence classes created,
// including classes that were later merged away.
func (m *Memo) GroupCount() int { return len(m.groups) }

// ExprCount returns the number of distinct logical expressions stored.
func (m *Memo) ExprCount() int { return m.exprCount }

// Find resolves a class through merges to its current representative.
func (m *Memo) Find(g GroupID) GroupID {
	if m.concurrent {
		// A parallel search resolves without path halving: halving
		// mutates parent, and Find runs under the read lock there.
		// Chains stay short regardless — merges always point the
		// younger class at the older one.
		for m.parent[g-1] != g {
			g = m.parent[g-1]
		}
		return g
	}
	for m.parent[g-1] != g {
		// Path halving keeps chains short.
		m.parent[g-1] = m.parent[m.parent[g-1]-1]
		g = m.parent[g-1]
	}
	return g
}

// Group returns the equivalence class named by g, resolving merges.
func (m *Memo) Group(g GroupID) *Group {
	return m.groups[m.Find(g)-1]
}

// Groups calls fn for every live (unmerged) class.
func (m *Memo) Groups(fn func(*Group)) {
	for i, g := range m.groups {
		if m.parent[i] == g.id {
			fn(g)
		}
	}
}

// newGroup creates a fresh class holding e and derives its logical
// properties from the member expression.
func (m *Memo) newGroup(e *Expr) *Group {
	id := GroupID(len(m.groups) + 1)
	inProps := make([]LogicalProps, len(e.Inputs))
	for i, in := range e.Inputs {
		inProps[i] = m.Group(in).LogicalProps()
	}
	g := &Group{
		id:       id,
		exprs:    []*Expr{e},
		logProps: m.model.DeriveLogicalProps(e.Op, inProps),
	}
	e.group = id
	m.groups = append(m.groups, g)
	m.parent = append(m.parent, id)
	if m.stats != nil {
		m.stats.Groups++
	}
	return g
}

// canon canonicalizes input class references through merges.
func (m *Memo) canon(inputs []GroupID) []GroupID {
	for i, g := range inputs {
		if r := m.Find(g); r != g {
			inputs[i] = r
		}
	}
	return inputs
}

// lookup finds the expression (op, inputs) in the hash table, if stored.
// Inputs must already be canonical.
func (m *Memo) lookup(op LogicalOp, inputs []GroupID) *Expr {
	for e := m.table[exprHash(op, inputs)]; e != nil; e = e.next {
		if exprEqual(e, op, inputs) {
			return e
		}
	}
	return nil
}

// Insert adds the expression (op, inputs) to the memo. If target is
// InvalidGroup the expression joins an existing class when one already
// contains it, or founds a new class. If target names a class and the
// expression is found in a different class, the two classes are merged:
// the derivation proves them equivalent (the paper's Figure 3 discusses
// exactly this creation and unification of classes during associativity).
//
// The returned class is the (representative) class now containing the
// expression; created reports whether the expression was new.
func (m *Memo) Insert(op LogicalOp, inputs []GroupID, target GroupID) (GroupID, bool) {
	// The lookup runs over the reusable scratch buffer; a private copy
	// of the canonical inputs is made only when the expression is new
	// and actually stored, so duplicate derivations — the common case
	// during exploration — allocate nothing.
	m.scratch = append(m.scratch[:0], inputs...)
	return m.insertCanon(op, m.scratch, target, false)
}

// insertOwned is Insert for callers that hand over ownership of the
// inputs slice (freshly allocated, never reused), letting the stored
// expression adopt it without a defensive copy.
func (m *Memo) insertOwned(op LogicalOp, inputs []GroupID, target GroupID) (GroupID, bool) {
	return m.insertCanon(op, inputs, target, true)
}

func (m *Memo) insertCanon(op LogicalOp, inputs []GroupID, target GroupID, owned bool) (GroupID, bool) {
	if m.err != nil {
		return target, false
	}
	if m.bud != nil {
		// Amortized budget checkpoint: insertion is the unit of work of
		// exploration, so a runaway transformation fixpoint hits a poll
		// within budgetPollInterval insertions.
		if err := m.bud.tick(); err != nil {
			m.err = err
			return target, false
		}
	}
	if op.Arity() != len(inputs) {
		panic(fmt.Sprintf("core: operator %s has arity %d but %d inputs supplied",
			op.Name(), op.Arity(), len(inputs)))
	}
	inputs = m.canon(inputs)
	if target != InvalidGroup {
		target = m.Find(target)
	}
	if e := m.lookup(op, inputs); e != nil {
		home := m.Find(e.group)
		if target != InvalidGroup && home != target {
			return m.merge(home, target), false
		}
		return home, false
	}
	if m.opts != nil && m.opts.Budget.MaxExprs > 0 && m.exprCount >= m.opts.Budget.MaxExprs {
		m.err = ErrMemoBudget
		return target, false
	}
	if !owned {
		if len(inputs) == 0 {
			inputs = nil
		} else {
			inputs = append(make([]GroupID, 0, len(inputs)), inputs...)
		}
	}
	e := &Expr{Op: op, Inputs: inputs}
	h := exprHash(op, inputs)
	e.next = m.table[h]
	m.table[h] = e
	m.exprCount++
	if m.stats != nil {
		m.stats.Exprs++
	}
	for _, in := range inputs {
		ig := m.groups[in-1]
		ig.parents = append(ig.parents, e)
	}
	if target == InvalidGroup {
		return m.newGroup(e).id, true
	}
	g := m.groups[target-1]
	e.group = target
	g.exprs = append(g.exprs, e)
	return target, true
}

// merge unifies two classes proven equivalent and returns the surviving
// representative. Expressions move to the survivor; winner tables keep
// the cheaper entry per property vector. Classes under optimization
// cannot be merged mid-flight in this engine because transformations run
// to fixpoint during exploration, before cost analysis, so in-progress
// winner entries never collide here.
func (m *Memo) merge(a, b GroupID) GroupID {
	a, b = m.Find(a), m.Find(b)
	if a == b {
		return a
	}
	// Keep the older class as representative for stable IDs.
	if b < a {
		a, b = b, a
	}
	ga, gb := m.groups[a-1], m.groups[b-1]
	m.parent[b-1] = a
	for _, e := range gb.exprs {
		e.group = a
	}
	ga.exprs = append(ga.exprs, gb.exprs...)
	gb.exprs = nil
	for _, w := range gb.winners {
		for ; w != nil; w = w.next {
			dst := ga.ensureWinner(w.props, w.excluded)
			if dst.plan == nil || (w.plan != nil && w.cost.Less(dst.cost)) {
				dst.plan, dst.cost = w.plan, w.cost
			}
			// A goal on the merged-away class that is still on the call
			// stack must stay visible as in-progress through the
			// representative, or a cyclic derivation could re-enter it
			// and loop.
			if w.inProgress {
				dst.inProgress = true
			}
			// A live parallel claim survives the merge so its
			// subscribers still get woken; when both sides carry one,
			// each owner finishes and wakes its own subscribers, and
			// the cheaper of their plans wins above.
			if w.claim != nil && dst.claim == nil {
				dst.claim = w.claim
			}
			// Failures survive with their strongest limit, symmetric
			// with the representative's own entries, which also predate
			// the unification. (In this engine transformations run to
			// fixpoint before cost analysis, so merges precede the
			// winner entries of the classes they touch; the carry-over
			// matters only for bookkeeping and inspection.)
			if w.failedLimit != nil &&
				(dst.failedLimit == nil || dst.failedLimit.Less(w.failedLimit)) {
				dst.failedLimit = w.failedLimit
			}
		}
	}
	gb.winners = nil
	// Cached move sets of the merged-away class die with it; sets of
	// every other class (including ga's) are voided lazily through the
	// epoch bump, since any of them may bind new expressions through
	// the enlarged class.
	gb.moveSets = nil
	m.mergeEpoch++
	// The merged class must be (re-)explored: rules may now fire on
	// the union of expressions, and every expression that consumes
	// either side can now bind through new members, so the fired-rule
	// masks of all parents are reset and their classes re-opened. Only
	// multi-operator rules can gain bindings this way — a single-
	// operator rule binds input classes as opaque leaves — so only
	// their bits are cleared.
	ga.explored = false
	ga.parents = append(ga.parents, gb.parents...)
	gb.parents = nil
	for _, p := range ga.parents {
		p.appliedRules &^= m.multiMask
		pg := m.groups[m.Find(p.group)-1]
		pg.explored = false
	}
	if m.stats != nil {
		m.stats.Merges++
	}
	return a
}

// InsertTree inserts a whole expression tree, bottom-up. Leaf references
// splice in existing classes. The root joins target (see Insert); inner
// nodes join their existing class or found new ones.
func (m *Memo) InsertTree(t *ExprTree, target GroupID) GroupID {
	if t.Op == nil {
		return m.Find(t.Group)
	}
	var inputs []GroupID
	if len(t.Children) > 0 {
		inputs = make([]GroupID, len(t.Children))
		for i, c := range t.Children {
			inputs[i] = m.InsertTree(c, InvalidGroup)
		}
	}
	g, _ := m.insertOwned(t.Op, inputs, target)
	return g
}

// InsertTreeConcurrent is InsertTree under the memo's write lock, for
// shared-memo batches inserting query trees from several goroutines.
// Insertion reuses per-memo scratch space and is not otherwise safe for
// concurrent use; the write lock serializes whole-tree inserts against
// each other and against any running search.
func (m *Memo) InsertTreeConcurrent(t *ExprTree, target GroupID) GroupID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.InsertTree(t, target)
}

// MemoryBytes returns an estimate of the memo's working-set size,
// supporting the paper's report that Volcano performed exhaustive search
// for all test queries within 1 MB of work space.
func (m *Memo) MemoryBytes() int {
	const (
		groupBytes  = 96  // Group struct + slice headers
		exprBytes   = 80  // Expr struct + average input slice
		winnerBytes = 72  // winner struct + map entry share
		moveBytes   = 112 // cached Move + binding share
	)
	bytes := 0
	m.Groups(func(g *Group) {
		bytes += groupBytes + exprBytes*len(g.exprs) +
			winnerBytes*g.winnerCount() + moveBytes*g.moveCount()
	})
	return bytes
}
