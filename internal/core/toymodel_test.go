package core_test

import (
	"fmt"

	"repro/internal/core"
)

// The toy model exercises the search engine with a data model that has
// nothing to do with relations, demonstrating (and testing) the engine's
// data model independence. Its logical algebra has LEAF(name) and the
// binary, commutative PAIR; its physical algebra has toy-scan and two
// pair algorithms; its one physical property is a "color" that the
// paint enforcer establishes and that the colored-pair algorithm can
// deliver directly.
const (
	kindLeaf core.OpKind = 100 + iota
	kindPair
	kindMark
)

type toyLeaf struct{ name string }

func (l *toyLeaf) Kind() core.OpKind { return kindLeaf }
func (l *toyLeaf) Arity() int        { return 0 }
func (l *toyLeaf) ArgsEqual(o core.LogicalOp) bool {
	return l.name == o.(*toyLeaf).name
}
func (l *toyLeaf) ArgsHash() uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(l.name); i++ {
		h = (h ^ uint64(l.name[i])) * 1099511628211
	}
	return h
}
func (l *toyLeaf) Name() string   { return "LEAF" }
func (l *toyLeaf) String() string { return "LEAF(" + l.name + ")" }

type toyPair struct{}

func (*toyPair) Kind() core.OpKind             { return kindPair }
func (*toyPair) Arity() int                    { return 2 }
func (*toyPair) ArgsEqual(core.LogicalOp) bool { return true }
func (*toyPair) ArgsHash() uint64              { return 7 }
func (*toyPair) Name() string                  { return "PAIR" }
func (*toyPair) String() string                { return "PAIR" }

// toyMark is a unary no-op operator; the rule MARK(x) → x proves its
// class equal to its input's class, merging a parent with its child —
// the pathological derivation the memo must tolerate.
type toyMark struct{}

func (*toyMark) Kind() core.OpKind             { return kindMark }
func (*toyMark) Arity() int                    { return 1 }
func (*toyMark) ArgsEqual(core.LogicalOp) bool { return true }
func (*toyMark) ArgsHash() uint64              { return 13 }
func (*toyMark) Name() string                  { return "MARK" }
func (*toyMark) String() string                { return "MARK" }

// toyProps: logical properties are just a weight (leaf count).
type toyProps struct{ weight int }

func (p *toyProps) String() string { return fmt.Sprintf("w=%d", p.weight) }

// toyColor is the physical property vector: 0 = no requirement,
// otherwise a required color code.
type toyColor int

func (c toyColor) Equal(o core.PhysProps) bool  { return c == o.(toyColor) }
func (c toyColor) Covers(o core.PhysProps) bool { return o.(toyColor) == 0 || c == o.(toyColor) }
func (c toyColor) Hash() uint64                 { return uint64(c) }
func (c toyColor) String() string {
	if c == 0 {
		return ""
	}
	return fmt.Sprintf("color%d", int(c))
}

// toyCost is a float cost.
type toyCost float64

func (c toyCost) Add(o core.Cost) core.Cost { return c + o.(toyCost) }
func (c toyCost) Sub(o core.Cost) core.Cost { return c - o.(toyCost) }
func (c toyCost) Less(o core.Cost) bool     { return c < o.(toyCost) }
func (c toyCost) Scale(f float64) core.Cost { return toyCost(float64(c) * f) }
func (c toyCost) String() string            { return fmt.Sprintf("%.1f", float64(c)) }

// toyPhys is every toy physical operator.
type toyPhys struct{ name string }

func (p *toyPhys) Name() string   { return p.name }
func (p *toyPhys) String() string { return p.name }

// toyModel wires the model. Costs: toy-scan 1; plain-pair 2 (delivers no
// color); colored-pair 10 (delivers any required color directly); paint
// enforcer 4. With a color required, the optimum is paint(plain-pair)=6
// locally — unless the excluded-vector machinery is disabled, in which
// case redundant colored-pair-under-paint derivations appear.
type toyModel struct {
	withMarkRule bool
}

func (m *toyModel) Name() string { return "toy" }

func (m *toyModel) DeriveLogicalProps(op core.LogicalOp, inputs []core.LogicalProps) core.LogicalProps {
	w := 1
	for _, in := range inputs {
		w += in.(*toyProps).weight
	}
	return &toyProps{weight: w}
}

func (m *toyModel) TransformationRules() []*core.TransformRule {
	rules := []*core.TransformRule{
		{
			Name:    "pair-commute",
			Pattern: core.P(kindPair, core.Leaf(), core.Leaf()),
			Apply: func(ctx *core.RuleContext, b *core.Binding) []*core.ExprTree {
				return []*core.ExprTree{core.Node(&toyPair{},
					core.ClassRef(b.Children[1].Group), core.ClassRef(b.Children[0].Group))}
			},
		},
		{
			Name: "pair-rotate",
			Pattern: core.P(kindPair,
				core.P(kindPair, core.Leaf(), core.Leaf()), core.Leaf()),
			Apply: func(ctx *core.RuleContext, b *core.Binding) []*core.ExprTree {
				a := b.Children[0].Children[0].Group
				bb := b.Children[0].Children[1].Group
				c := b.Children[1].Group
				return []*core.ExprTree{core.Node(&toyPair{},
					core.ClassRef(a),
					core.Node(&toyPair{}, core.ClassRef(bb), core.ClassRef(c)))}
			},
		},
	}
	if m.withMarkRule {
		rules = append(rules, &core.TransformRule{
			Name:    "mark-elim",
			Pattern: core.P(kindMark, core.Leaf()),
			Apply: func(ctx *core.RuleContext, b *core.Binding) []*core.ExprTree {
				return []*core.ExprTree{core.ClassRef(b.Children[0].Group)}
			},
		})
	}
	return rules
}

func (m *toyModel) ImplementationRules() []*core.ImplRule {
	passthrough := func(required core.PhysProps) ([]core.InputReq, bool) {
		return []core.InputReq{{}}, required.(toyColor) == 0
	}
	return []*core.ImplRule{
		{
			Name:    "leaf->scan",
			Pattern: core.P(kindLeaf),
			Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
				return passthrough(required)
			},
			Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
				return toyCost(1)
			},
			Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
				return &toyPhys{name: "toy-scan"}
			},
			Promise: 2,
		},
		{
			Name:    "pair->plain",
			Pattern: core.P(kindPair, core.Leaf(), core.Leaf()),
			Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
				if required.(toyColor) != 0 {
					return nil, false
				}
				return []core.InputReq{{Required: []core.PhysProps{toyColor(0), toyColor(0)}}}, true
			},
			Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
				return toyCost(2)
			},
			Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
				return &toyPhys{name: "plain-pair"}
			},
			Promise: 2,
		},
		{
			Name:    "pair->colored",
			Pattern: core.P(kindPair, core.Leaf(), core.Leaf()),
			Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
				if required.(toyColor) == 0 {
					return nil, false
				}
				return []core.InputReq{{Required: []core.PhysProps{toyColor(0), toyColor(0)}}}, true
			},
			Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
				return toyCost(10)
			},
			Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
				return &toyPhys{name: "colored-pair"}
			},
			Promise: 1,
		},
	}
}

func (m *toyModel) Enforcers() []*core.Enforcer {
	return []*core.Enforcer{{
		Name: "paint",
		Relax: func(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) (core.PhysProps, core.PhysProps, bool) {
			if required.(toyColor) == 0 {
				return nil, nil, false
			}
			return toyColor(0), required, true
		},
		Cost: func(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) core.Cost {
			return toyCost(4)
		},
		Build: func(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) core.PhysicalOp {
			return &toyPhys{name: "paint"}
		},
	}}
}

func (m *toyModel) AnyProps() core.PhysProps { return toyColor(0) }
func (m *toyModel) ZeroCost() core.Cost      { return toyCost(0) }
func (m *toyModel) InfiniteCost() core.Cost  { return toyCost(1e18) }

// leaf builds a toy leaf node.
func leaf(name string) *core.ExprTree { return core.Node(&toyLeaf{name: name}) }

// pair builds a toy pair node.
func pair(l, r *core.ExprTree) *core.ExprTree { return core.Node(&toyPair{}, l, r) }

// leftDeepPair builds PAIR(...PAIR(PAIR(l0,l1),l2)...,ln).
func leftDeepPair(names ...string) *core.ExprTree {
	t := leaf(names[0])
	for _, n := range names[1:] {
		t = pair(t, leaf(n))
	}
	return t
}
