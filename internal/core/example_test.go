package core_test

import (
	"fmt"

	"repro/internal/core"
)

// Example optimizes a query in the toy data model, showing the
// model-independent engine API: insert the logical expression, ask for
// required physical properties, receive the cheapest plan.
func Example() {
	opt := core.NewOptimizer(&toyModel{}, nil)
	root := opt.InsertQuery(pair(leaf("left"), leaf("right")))

	plan, err := opt.Optimize(root, toyColor(1))
	if err != nil {
		panic(err)
	}
	fmt.Println(plan)
	fmt.Println("cost:", plan.Cost)
	// Output:
	// paint(plain-pair(toy-scan, toy-scan))
	// cost: 8.0
}

// ExampleOptimizer_Explore performs pure logical exploration — the
// query-rewrite-style extreme the paper leaves as a choice: transforming
// expressions without any algorithm selection or cost analysis.
func ExampleOptimizer_Explore() {
	opt := core.NewOptimizer(&toyModel{}, nil)
	root := opt.InsertQuery(pair(leaf("a"), leaf("b")))

	if err := opt.Explore(root); err != nil {
		panic(err)
	}
	fmt.Println("equivalent expressions:", len(opt.Memo().Group(root).Exprs()))
	// Output:
	// equivalent expressions: 2
}
