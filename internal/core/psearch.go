package core

import (
	"sync"
	"sync/atomic"
)

// Intra-query parallel search: the recursive FindBestPlan of search.go
// restructured as an explicit task engine. One optimization call fans
// out into optimizeGoal, optimizeMove, and optimizeInputs tasks over a
// pool of Options.Search.Workers workers with work-stealing deques, all
// sharing the one memo:
//
//   - The memo's structure (classes, expressions, the union-find parents,
//     the hash table, move collection) is guarded by a single RWMutex:
//     exploration, insertion, merging, and move collection take the write
//     lock; pursuit — where the model's cost functions burn the cycles —
//     runs under the read lock, so any number of workers cost plans
//     concurrently.
//   - Winner tables, move caches, and memoized floors are guarded
//     per-group, so goal resolution on different classes never contends.
//   - The sequential engine's winner.inProgress cycle flag becomes a
//     claim/subscribe protocol: the first task to need a goal claims it
//     and spawns its optimization; later tasks that need the same goal
//     park on the claim and are re-enqueued when the owner finishes,
//     instead of spinning or duplicating the search.
//   - Each goal run's branch-and-bound limit is a monotonically
//     tightening atomic bound, compare-and-swapped by offer; a stale
//     read can only under-prune, never discard an optimal plan.
//
// Pruning order — and therefore the effort counters — may differ run to
// run, but every recorded winner is installed through the same
// install-if-cheaper rule as the sequential engine, so final plan costs
// are always identical to a sequential run's.

// task is one schedulable unit of parallel search work.
type task interface {
	// exec executes the task on a worker. A task that parks itself
	// simply returns; it is re-submitted when its claim releases.
	exec(w *searchWorker)
	// wake prepares a parked task for re-submission, handing it the
	// claim it parked on — whose recorded outcome the task consumes as
	// the goal's answer when it re-executes, exactly as the sequential
	// engine consumes a child FindBestPlan's direct return value.
	// (Re-resolving through the tables instead would not terminate: a
	// failure memoized at limit F does not answer an inclusive re-ask
	// at the same F, so the waiter would re-claim the goal forever.)
	// transient reports that the claim released without a definitive
	// outcome (a cycle or budget stop inside the owner).
	wake(cl *goalClaim, transient bool)
}

// goalStatus is the outcome of resolveGoal.
type goalStatus int8

const (
	// goalDecided: the goal is answered; a nil plan is a definitive
	// within-limit failure.
	goalDecided goalStatus = iota
	// goalPending: the requester parked on the goal's claim and will be
	// re-enqueued when it releases.
	goalPending
	// goalCycle: parking would close a waits-for cycle; the requester
	// must treat the goal as transiently unanswerable, exactly as the
	// sequential engine treats an in-progress (ancestor) goal.
	goalCycle
)

// boundState is a goal run's branch-and-bound bound: the cost limit and
// whether it still admits plans costing exactly the limit. offer swaps
// in strictly tighter states; see Optimizer.offer for the sequential
// twin of the semantics.
type boundState struct {
	limit     Cost
	inclusive bool
}

// goalClaim anchors the claim/subscribe protocol on a winner-table
// entry. waiters and released are guarded by the engine's parkMu;
// run is immutable.
type goalClaim struct {
	run      *goalRun
	waiters  []parkedTask
	released bool
	// transient is set at release when the owner finished without a
	// definitive outcome; woken subscribers propagate it instead of
	// re-claiming the goal and re-entering the same cycle.
	transient bool
	// outPlan is the goal's winner recorded at release (nil when the
	// run failed or was transient); woken subscribers consume it as the
	// goal's answer. Written once, before released is set, under parkMu.
	outPlan *Plan
}

// failureAnswers reports whether this claim, released with no plan,
// decisively answers a request at limit/inclusive: the failed run
// certifies "no plan within the bound it searched under", which covers
// the request unless the request's bound is wider — the failure-memo
// reuse rule, extended with the run's own inclusivity (an inclusive run
// that failed at F proved no plan costs <= F, answering an inclusive
// re-ask at exactly F, which the memo rule alone must refuse).
func (cl *goalClaim) failureAnswers(limit Cost, inclusive bool) bool {
	f := cl.run.claimLimit
	if !costLE(limit, f) {
		return false
	}
	return !inclusive || cl.run.claimIncl || limit.Less(f)
}

// parkedTask is one subscriber on a claim: the task to re-enqueue and
// the goal run it belongs to (nil for the root task), which carries the
// waits-for edge used for cycle detection.
type parkedTask struct {
	t   task
	run *goalRun
}

// goalRun is one parallel activation of the paper's FindBestPlan: the
// claim-owning optimization of one (class, required, excluded) goal
// under the limit fixed at claim time.
type goalRun struct {
	eng *searchEngine

	gid      GroupID
	wk       physKey
	required PhysProps
	excluded PhysProps
	// claimLimit and claimIncl freeze the bound the goal was claimed
	// at; a definitive failure is memoized against exactly this limit,
	// as in the sequential engine.
	claimLimit Cost
	claimIncl  bool

	claim *goalClaim

	// bound is the run's branch-and-bound bound, tightened by CAS as
	// offers land. Monotonic: limits only ever decrease, and inclusive
	// only ever clears.
	bound atomic.Pointer[boundState]

	// mu guards best and transient.
	mu        sync.Mutex
	best      *Plan
	transient bool

	// pending counts outstanding move tasks plus one collection token;
	// the run finalizes when it reaches zero.
	pending atomic.Int64

	// waitingOn counts, per claim, this run's tasks parked on it.
	// Guarded by the engine's parkMu; these are the edges of the
	// waits-for graph that cycle detection keeps acyclic.
	waitingOn map[*goalClaim]int

	// Collection snapshot for the fixpoint check, written only under
	// the memo's write lock by the goal and inputs tasks.
	curGid GroupID
	curMS  *moveSet
	curGen uint64
	done   int
	nExprs int
}

func (r *goalRun) setTransient() {
	r.mu.Lock()
	r.transient = true
	r.mu.Unlock()
}

// offer installs a complete plan as the run's best if it improves on
// the incumbent, tightening the atomic bound — the parallel twin of
// Optimizer.offer.
func (r *goalRun) offer(p *Plan) {
	r.mu.Lock()
	if r.best != nil && !p.Cost.Less(r.best.Cost) {
		r.mu.Unlock()
		return
	}
	r.best = p
	r.mu.Unlock()
	noPrune := r.eng.o.opts.Search.NoPruning
	for {
		b := r.bound.Load()
		nb := boundState{limit: b.limit, inclusive: false}
		if !noPrune && (p.Cost.Less(b.limit) || (b.inclusive && costLE(p.Cost, b.limit))) {
			nb.limit = p.Cost
		}
		if nb == *b {
			return
		}
		if r.bound.CompareAndSwap(b, &nb) {
			return
		}
	}
}

// prune is Optimizer.prune against the run's current atomic bound.
func (r *goalRun) prune(w *searchWorker, partial Cost) bool {
	if r.eng.o.opts.Search.NoPruning {
		return false
	}
	b := r.bound.Load()
	if b.inclusive {
		if b.limit.Less(partial) {
			w.stats.Pruned++
			return true
		}
		return false
	}
	if costLE(b.limit, partial) {
		w.stats.Pruned++
		return true
	}
	return false
}

// childBound is Optimizer.childLimit against the current atomic bound;
// it also snapshots the bound's inclusivity for the child goal.
func (r *goalRun) childBound(partial Cost) (Cost, bool) {
	o := r.eng.o
	b := r.bound.Load()
	if o.opts.Search.NoPruning {
		return o.model.InfiniteCost(), b.inclusive
	}
	rem := b.limit.Sub(partial)
	if zero := o.model.ZeroCost(); rem.Less(zero) {
		rem = zero
	}
	return rem, b.inclusive
}

// searchWorker is one worker of the pool: a work-stealing deque, private
// Stats (merged after the pool joins), and a private budget checkpoint
// sharing the step counter with its siblings.
type searchWorker struct {
	eng   *searchEngine
	id    int // 1-based; TraceEvent.Worker
	dq    deque
	stats Stats
	bud   *budgetState
}

// deque is a worker's task queue: the owner pushes and pops at the
// bottom (LIFO, for locality), thieves steal from the top (FIFO, for
// load balance). A mutex per deque suffices at search-worker counts.
type deque struct {
	mu sync.Mutex
	ts []task
}

func (d *deque) push(t task) {
	d.mu.Lock()
	d.ts = append(d.ts, t)
	d.mu.Unlock()
}

func (d *deque) pop() task {
	d.mu.Lock()
	n := len(d.ts)
	if n == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.ts[n-1]
	d.ts[n-1] = nil
	d.ts = d.ts[:n-1]
	d.mu.Unlock()
	return t
}

func (d *deque) steal() task {
	d.mu.Lock()
	if len(d.ts) == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.ts[0]
	copy(d.ts, d.ts[1:])
	d.ts[len(d.ts)-1] = nil
	d.ts = d.ts[:len(d.ts)-1]
	d.mu.Unlock()
	return t
}

// searchEngine drives one parallel search: the worker pool, the
// claim/subscribe state, and the completion signal.
type searchEngine struct {
	o *Optimizer
	m *Memo

	workers []*searchWorker

	// parkMu guards every claim's waiter list and every run's
	// waits-for edges. Lock order: memo.mu (read or write), then a
	// group's mu, then parkMu; parkMu is always innermost.
	parkMu sync.Mutex

	// queued counts tasks sitting in deques; sleepers counts workers
	// blocked in cond.Wait. Together they make the idle/submit
	// handshake race-free (see submit and sleep).
	queued   atomic.Int64
	sleepers atomic.Int32
	schedMu  sync.Mutex
	cond     *sync.Cond

	sharedSteps atomic.Int64

	done     chan struct{}
	stopOnce sync.Once

	// batch, when non-nil, makes this a multi-root engine: each root
	// task records its decision into its own slot and the engine stops
	// when the last slot fills. Nil for single-root searches, whose
	// result goes through stop directly.
	batch *batchRoots

	// Result, written once by stop before done closes.
	resPlan      *Plan
	resTransient bool
	err          error
}

// batchRoots holds the per-root result slots of a multi-root search
// (see parallelSearchBatch). Slots are written by whichever worker
// decides each root; remaining counts undecided roots.
type batchRoots struct {
	remaining atomic.Int64
	plans     []*Plan
	transient []bool
}

func (eng *searchEngine) isDone() bool {
	select {
	case <-eng.done:
		return true
	default:
		return false
	}
}

// stop records the search outcome and releases the pool. err non-nil
// marks an engine failure (budget exhaustion or cancellation).
func (eng *searchEngine) stop(plan *Plan, transient bool, err error) {
	eng.stopOnce.Do(func() {
		eng.resPlan, eng.resTransient, eng.err = plan, transient, err
		close(eng.done)
		eng.schedMu.Lock()
		eng.cond.Broadcast()
		eng.schedMu.Unlock()
	})
}

func (eng *searchEngine) fail(err error) { eng.stop(nil, true, err) }

// submit enqueues a task, preferring the submitting worker's own deque.
func (eng *searchEngine) submit(t task, w *searchWorker) {
	if w == nil {
		w = eng.workers[0]
	}
	w.dq.push(t)
	eng.queued.Add(1)
	if eng.sleepers.Load() > 0 {
		eng.schedMu.Lock()
		eng.cond.Broadcast()
		eng.schedMu.Unlock()
	}
}

// next returns the worker's next task: its own deque first, then a
// sweep over its siblings' tops.
func (w *searchWorker) next() task {
	if t := w.dq.pop(); t != nil {
		w.eng.queued.Add(-1)
		return t
	}
	ws := w.eng.workers
	for i := 1; i < len(ws); i++ {
		v := ws[(w.id-1+i)%len(ws)]
		if t := v.dq.steal(); t != nil {
			w.eng.queued.Add(-1)
			return t
		}
	}
	return nil
}

// sleep blocks the worker until work or shutdown arrives; it reports
// whether the engine is done. The sleepers counter is raised under
// schedMu before re-checking queued, so a submit that misses the raised
// counter is itself visible through queued — no wake-up can be lost.
func (w *searchWorker) sleep() bool {
	eng := w.eng
	eng.schedMu.Lock()
	for eng.queued.Load() == 0 {
		if eng.isDone() {
			eng.schedMu.Unlock()
			return true
		}
		eng.sleepers.Add(1)
		eng.cond.Wait()
		eng.sleepers.Add(-1)
	}
	eng.schedMu.Unlock()
	return eng.isDone()
}

func (w *searchWorker) loop() {
	eng := w.eng
	for {
		if eng.isDone() {
			return
		}
		t := w.next()
		if t == nil {
			if w.sleep() {
				return
			}
			continue
		}
		w.stats.TasksRun++
		t.exec(w)
	}
}

// park subscribes a task to a live claim. It re-checks release under
// parkMu (finalization marks released there), detects waits-for cycles,
// and registers the waits-for edge. Returns goalPending when parked,
// goalCycle when parking would deadlock, or goalDecided when the claim
// released in the meantime (the caller re-resolves).
func (eng *searchEngine) park(cl *goalClaim, t task, from *goalRun) goalStatus {
	eng.parkMu.Lock()
	defer eng.parkMu.Unlock()
	if cl.released {
		return goalDecided
	}
	if from != nil && eng.wouldCycle(cl.run, from) {
		return goalCycle
	}
	cl.waiters = append(cl.waiters, parkedTask{t: t, run: from})
	if from != nil {
		if from.waitingOn == nil {
			from.waitingOn = make(map[*goalClaim]int)
		}
		from.waitingOn[cl]++
	}
	return goalPending
}

// wouldCycle reports whether run `from` is reachable from `owner` over
// waits-for edges — in which case from parking on owner's claim would
// close a cycle. Called under parkMu.
func (eng *searchEngine) wouldCycle(owner, from *goalRun) bool {
	if owner == from {
		return true
	}
	seen := map[*goalRun]bool{owner: true}
	stack := []*goalRun{owner}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for cl := range r.waitingOn {
			nxt := cl.run
			if nxt == from {
				return true
			}
			if !seen[nxt] {
				seen[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	return false
}

// release marks the claim released — recording the goal's outcome for
// the subscribers to consume — and re-enqueues its subscribers.
func (eng *searchEngine) release(cl *goalClaim, transient bool, out *Plan, w *searchWorker) {
	eng.parkMu.Lock()
	cl.outPlan = out
	cl.released = true
	cl.transient = transient
	ws := cl.waiters
	cl.waiters = nil
	for _, pt := range ws {
		if pt.run != nil {
			if n := pt.run.waitingOn[cl] - 1; n > 0 {
				pt.run.waitingOn[cl] = n
			} else {
				delete(pt.run.waitingOn, cl)
			}
		}
	}
	eng.parkMu.Unlock()
	for _, pt := range ws {
		pt.t.wake(cl, transient)
		eng.submit(pt.t, w)
	}
}

// classFloor is Optimizer.classFloor under the group's lock.
func (eng *searchEngine) classFloor(g *Group) Cost {
	g.mu.Lock()
	if !g.floorSet {
		g.floor = eng.o.lower.LowerBound(g.logProps)
		g.floorSet = true
	}
	f := g.floor
	g.mu.Unlock()
	return f
}

// resolveGoal answers one goal request from the shared tables, or
// arranges for it to be answered: a winner, memoized failure, or floor
// refutation is decisive; a live claim parks the requester; an
// unclaimed, undecided goal is claimed and its optimization spawned,
// with the requester parked on the fresh claim. Caller holds the memo's
// read lock.
func (w *searchWorker) resolveGoal(from *goalRun, t task, gid GroupID, required, excluded PhysProps, limit Cost, inclusive bool) (*Plan, goalStatus) {
	eng := w.eng
	o := eng.o
	m := eng.m
	for {
		gid = m.Find(gid)
		g := m.groups[gid-1]
		wk := winnerKey(required, excluded)

		g.mu.Lock()
		if win := g.lookupWinnerKeyed(wk, required, excluded); win != nil {
			if win.plan != nil {
				plan, cost := win.plan, win.cost
				g.mu.Unlock()
				w.stats.WinnerHits++
				if costLE(cost, limit) {
					return plan, goalDecided
				}
				// The recorded plan is optimal; a tighter limit cannot
				// be met by any other plan.
				return nil, goalDecided
			}
			if !o.opts.Search.NoFailureMemo && win.failedLimit != nil {
				// Same reuse rule as the sequential engine: a failure
				// at limit F answers an exclusive query at limit <= F
				// and an inclusive one at limit < F.
				if costLE(limit, win.failedLimit) && (!inclusive || limit.Less(win.failedLimit)) {
					g.mu.Unlock()
					w.stats.FailureHits++
					return nil, goalDecided
				}
			}
		}

		// Floor refutation, before claiming or parking: when even the
		// admissible floor breaks the bound, the goal is hopeless no
		// matter what the claim's owner finds.
		if o.lower != nil && !o.opts.Search.NoPruning {
			g.mu.Unlock()
			if lb := eng.classFloor(g); lb != nil {
				if inclusive && limit.Less(lb) || !inclusive && costLE(limit, lb) {
					w.stats.GoalsPruned++
					return nil, goalDecided
				}
			}
			g.mu.Lock()
			// Re-check the tables: the goal may have been decided while
			// the group lock was dropped for the floor computation.
			if win := g.lookupWinnerKeyed(wk, required, excluded); win != nil && win.plan != nil {
				plan, cost := win.plan, win.cost
				g.mu.Unlock()
				w.stats.WinnerHits++
				if costLE(cost, limit) {
					return plan, goalDecided
				}
				return nil, goalDecided
			}
		}

		win := g.ensureWinnerKeyed(wk, required, excluded)
		if cl := win.claim; cl != nil {
			g.mu.Unlock()
			switch eng.park(cl, t, from) {
			case goalPending:
				return nil, goalPending
			case goalCycle:
				return nil, goalCycle
			default:
				// Released between the table read and the park;
				// re-resolve from the top.
				continue
			}
		}

		// Claim the goal and spawn its optimization.
		run := &goalRun{
			eng:        eng,
			gid:        gid,
			wk:         wk,
			required:   required,
			excluded:   excluded,
			claimLimit: limit,
			claimIncl:  inclusive,
		}
		run.bound.Store(&boundState{limit: limit, inclusive: inclusive})
		cl := &goalClaim{run: run}
		run.claim = cl
		win.claim = cl
		g.mu.Unlock()
		// Park the requester on the fresh claim (never a cycle: the new
		// run waits on nothing yet, so the DFS from it is empty).
		eng.park(cl, t, from)
		eng.submit(&optimizeGoalTask{run: run}, w)
		return nil, goalPending
	}
}
