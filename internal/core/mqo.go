package core

import (
	"context"
	"errors"
	"sort"
)

// Multi-query optimization over one shared memo.
//
// The memo already deduplicates logically equivalent expressions within
// one query; this file extends the same machinery across a *batch* of
// distinct-but-overlapping queries, following Roy et al., "Efficient and
// Extensible Algorithms for Multi Query Optimization": every query's
// tree is inserted into a common memo, the root goals run as independent
// roots of one task-engine search (a goal claimed for one root answers
// every other root warm), and a Volcano-SH-style greedy post-pass
// decides, per shared winner, whether spooling its result once
// (Materialize) and rescanning it (Reuse) beats recomputing it in every
// plan that uses it.

// SpoolID names one materialized shared result within a batch. The
// executor uses it to connect a Materialize operator to the Reuse
// operators scanning its spool.
type SpoolID int32

// Sharer is the optional Model extension multi-query materialization
// needs: costs for writing a class's result to a spool and reading it
// back, and physical operators carrying the decision into the plan.
// MaterializeSharedPlans is a no-op for models that do not implement it.
type Sharer interface {
	Model
	// MaterializeCost prices spooling the class's result once.
	MaterializeCost(lp LogicalProps) Cost
	// ReuseCost prices one scan of the spooled result.
	ReuseCost(lp LogicalProps) Cost
	// BuildMaterialize returns the physical operator that spools its
	// input's result under the given spool ID while passing it through.
	BuildMaterialize(id SpoolID, lp LogicalProps) PhysicalOp
	// BuildReuse returns the leaf physical operator that scans the
	// spool.
	BuildReuse(id SpoolID, lp LogicalProps) PhysicalOp
}

// OptimizeBatchCtx optimizes a batch of root goals over this
// optimizer's one memo, as independent roots of a single task-engine
// search. required[i] is root i's requirement (nil means none). It
// returns one plan per root, aligned with roots; a nil plan with a nil
// error means the completed search proved no plan exists for that root.
// Shared exploration is free: any goal decided for one root answers
// every other root from the winner table.
//
// The optimizer's Budget bounds the batch as a whole. On a budget stop
// the error is the typed budget error and each undecided root degrades
// through the anytime path (best known winner or the query as written),
// exactly as OptimizeWithLimitCtx does for one root.
//
// After the search, Stats.SharedGroups and Stats.SharedWinners count
// the equivalence classes reachable from more than one root and the
// winner plan nodes shared by more than one returned plan.
func (o *Optimizer) OptimizeBatchCtx(ctx context.Context, roots []GroupID, required []PhysProps) ([]*Plan, error) {
	plans := make([]*Plan, len(roots))
	if len(roots) == 0 {
		return plans, nil
	}
	reqs := make([]PhysProps, len(roots))
	for i, root := range roots {
		if root == InvalidGroup {
			// Query insertion itself failed (e.g. expression budget).
			if err := o.memo.Err(); err != nil {
				return plans, err
			}
			return plans, ErrBudget
		}
		reqs[i] = required[i]
		if reqs[i] == nil {
			reqs[i] = o.model.AnyProps()
		}
	}
	o.armBudget(ctx)
	if o.bud != nil && o.memo.err == nil {
		if err := o.bud.poll(); err != nil {
			o.memo.err = err
		}
	}
	if o.opts.Search.Workers > 1 {
		o.stats.SearchWorkers = o.opts.Search.Workers
	} else {
		o.stats.SearchWorkers = 1
	}
	if o.memo.err == nil {
		plans, _ = o.parallelSearchBatch(roots, reqs, o.model.InfiniteCost())
	}
	o.stats.SharedGroups = o.memo.sharedGroupCount(roots)
	o.stats.SharedWinners = sharedPlanNodeCount(plans)
	if b := o.memo.MemoryBytes(); b > o.stats.PeakMemoBytes {
		o.stats.PeakMemoBytes = b
	}
	err := o.memo.Err()
	if err == nil {
		return plans, nil
	}
	if !errors.Is(err, ErrBudget) {
		return make([]*Plan, len(roots)), err
	}
	// Anytime degradation, per root: surface the best complete plan
	// known at the stop alongside the typed budget error.
	o.stats.StopReason = err
	for i, root := range roots {
		if plans[i] != nil {
			continue
		}
		if fb := o.anytimeFallback(root, reqs[i], o.model.InfiniteCost()); fb != nil {
			o.stats.AnytimeFallback = true
			plans[i] = fb
		}
	}
	return plans, err
}

// sharedGroupCount counts canonical equivalence classes reachable (via
// expression inputs, transitively) from more than one of the given
// roots: exploration and goal work done once instead of once per query.
func (m *Memo) sharedGroupCount(roots []GroupID) int {
	reachedBy := make(map[GroupID]int)
	for _, root := range roots {
		if root == InvalidGroup {
			continue
		}
		seen := make(map[GroupID]bool)
		var visit func(GroupID)
		visit = func(g GroupID) {
			g = m.Find(g)
			if seen[g] {
				return
			}
			seen[g] = true
			for _, e := range m.groups[g-1].exprs {
				for _, in := range e.Inputs {
					visit(in)
				}
			}
		}
		visit(root)
		for g := range seen {
			reachedBy[g]++
		}
	}
	n := 0
	for _, c := range reachedBy {
		if c > 1 {
			n++
		}
	}
	return n
}

// sharedPlanNodeCount counts distinct plan nodes appearing in more than
// one of the given plans. Winner tables hand every consumer the same
// *Plan, so pointer identity is exactly "the same winner": these are the
// subplans a Materialize/Reuse pass can turn into saved execution work.
func sharedPlanNodeCount(plans []*Plan) int {
	usedBy := make(map[*Plan]int)
	for _, p := range plans {
		if p == nil {
			continue
		}
		seen := make(map[*Plan]bool)
		var visit func(*Plan)
		visit = func(n *Plan) {
			if seen[n] {
				return
			}
			seen[n] = true
			for _, in := range n.Inputs {
				visit(in)
			}
		}
		visit(p)
		for n := range seen {
			usedBy[n]++
		}
	}
	n := 0
	for _, c := range usedBy {
		if c > 1 {
			n++
		}
	}
	return n
}

// spoolDecision tracks one winning materialization candidate through
// the rewrite: its spool ID, the costs the decision was priced at, the
// shared Reuse node emitted at every occurrence after the first, and
// the Materialize node emitted at the first.
type spoolDecision struct {
	id      SpoolID
	mat     Cost
	reuse   Cost
	matNode *Plan
	reuseN  *Plan
}

// MaterializeSharedPlans applies the Volcano-SH-style greedy
// materialization pass to a batch's plans (typically the output of a
// shared-memo ParallelOptimizeCtx): every plan node used k >= 2 times
// across the batch is a candidate, and a candidate p is rewritten iff
// the cost model says sharing wins —
//
//	cost(p) + cost(materialize) + (k-1)·cost(reuse)  <  k·cost(p)
//
// i.e. one computation feeding a spool plus k-1 spool scans beats k
// recomputations. Winning candidates are processed from most to least
// expensive; the first occurrence in batch execution order becomes a
// Materialize node over the subplan, every later occurrence a Reuse
// leaf, and ancestor costs are recomputed. Nodes are never mutated —
// rewritten trees are rebuilt — so the memo's winner tables stay intact.
//
// The pass returns the rewritten plans (aligned with the input; nil
// plans pass through) and the number of spools introduced. It is a
// no-op — same slice, zero spools — when the model does not implement
// Sharer or no candidate wins. Rewritten plans must be executed in
// order against one shared spool store: a Reuse is only valid in the
// same batch execution as its Materialize.
func MaterializeSharedPlans(model Model, plans []*Plan) ([]*Plan, int) {
	sh, ok := model.(Sharer)
	if !ok {
		return plans, 0
	}
	// Count occurrences of every node across the batch. Each plan is a
	// tree of occurrences over a DAG of shared nodes: a node used twice
	// contributes its subtree's occurrences twice, which is exactly the
	// number of times execution would compute it.
	counts := make(map[*Plan]int)
	order := make(map[*Plan]int) // first-occurrence ordinal, for determinism
	ordinal := 0
	var count func(*Plan)
	count = func(p *Plan) {
		if counts[p] == 0 {
			order[p] = ordinal
			ordinal++
		}
		counts[p]++
		for _, in := range p.Inputs {
			count(in)
		}
	}
	for _, p := range plans {
		if p != nil {
			count(p)
		}
	}

	// Decide winners, most expensive first so big shared subtrees win
	// before the smaller candidates nested inside them.
	var cands []*Plan
	for p, k := range counts {
		if k >= 2 {
			cands = append(cands, p)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[j].Cost.Less(cands[i].Cost) {
			return true
		}
		if cands[i].Cost.Less(cands[j].Cost) {
			return false
		}
		return order[cands[i]] < order[cands[j]]
	})
	decided := make(map[*Plan]*spoolDecision)
	var nextID SpoolID
	for _, p := range cands {
		k := counts[p]
		matCost := sh.MaterializeCost(p.LogProps)
		reuseCost := sh.ReuseCost(p.LogProps)
		// shared = p + materialize + (k-1) reuses; recompute = k·p.
		// Cost has no scaling in the base interface, so both sides are
		// built by repeated addition.
		shared := p.Cost.Add(matCost)
		recompute := p.Cost
		for i := 1; i < k; i++ {
			shared = shared.Add(reuseCost)
			recompute = recompute.Add(p.Cost)
		}
		if shared.Less(recompute) {
			decided[p] = &spoolDecision{id: nextID, mat: matCost, reuse: reuseCost}
			nextID++
		}
	}
	if len(decided) == 0 {
		return plans, 0
	}

	// Rewrite in batch execution order. The first surviving occurrence
	// of a winner becomes its Materialize; later occurrences share one
	// Reuse leaf. Occurrences nested under an already-emitted Reuse
	// vanish with the subtree, so a nested winner may end up with fewer
	// uses than priced — the strip pass below cleans up the degenerate
	// zero-reuse case.
	var rewrite func(*Plan) *Plan
	rewrite = func(p *Plan) *Plan {
		d := decided[p]
		if d != nil && d.matNode != nil {
			return d.reuseN
		}
		out := p
		changed := false
		inputs := p.Inputs
		for i, in := range p.Inputs {
			r := rewrite(in)
			if r != in && !changed {
				changed = true
				inputs = append([]*Plan(nil), p.Inputs...)
			}
			if changed {
				inputs[i] = r
			}
		}
		if changed {
			cp := *p
			cp.Inputs = inputs
			cp.Cost = cp.LocalCost
			for _, in := range inputs {
				cp.Cost = cp.Cost.Add(in.Cost)
			}
			out = &cp
		}
		if d == nil {
			return out
		}
		d.matNode = &Plan{
			Op:        sh.BuildMaterialize(d.id, p.LogProps),
			Inputs:    []*Plan{out},
			Delivered: p.Delivered, // the spool preserves its input's order
			Cost:      out.Cost.Add(d.mat),
			LocalCost: d.mat,
			Group:     p.Group,
			LogProps:  p.LogProps,
		}
		d.reuseN = &Plan{
			Op:        sh.BuildReuse(d.id, p.LogProps),
			Delivered: p.Delivered,
			Cost:      d.reuse,
			LocalCost: d.reuse,
			Group:     p.Group,
			LogProps:  p.LogProps,
		}
		return d.matNode
	}
	out := make([]*Plan, len(plans))
	for i, p := range plans {
		if p != nil {
			out[i] = rewrite(p)
		}
	}

	// Strip spools that ended up with no Reuse (every later occurrence
	// vanished inside another winner's Reuse): the Materialize would pay
	// its cost for nothing, so replace it with its input and recompute
	// ancestor costs.
	used := make(map[*Plan]bool)
	var mark func(*Plan)
	mark = func(p *Plan) {
		if len(p.Inputs) == 0 {
			used[p] = true
			return
		}
		for _, in := range p.Inputs {
			mark(in)
		}
	}
	for _, p := range out {
		if p != nil {
			mark(p)
		}
	}
	spools := 0
	strip := make(map[*Plan]bool) // Materialize nodes to remove
	for _, d := range decided {
		if d.matNode == nil {
			continue // never placed: all occurrences vanished under other Reuses
		}
		if used[d.reuseN] {
			spools++
		} else {
			strip[d.matNode] = true
		}
	}
	if len(strip) > 0 {
		memoized := make(map[*Plan]*Plan)
		var fix func(*Plan) *Plan
		fix = func(p *Plan) *Plan {
			if r, ok := memoized[p]; ok {
				return r
			}
			if strip[p] {
				r := fix(p.Inputs[0])
				memoized[p] = r
				return r
			}
			res := p
			changed := false
			inputs := p.Inputs
			for i, in := range p.Inputs {
				r := fix(in)
				if r != in && !changed {
					changed = true
					inputs = append([]*Plan(nil), p.Inputs...)
				}
				if changed {
					inputs[i] = r
				}
			}
			if changed {
				cp := *p
				cp.Inputs = inputs
				cp.Cost = cp.LocalCost
				for _, in := range inputs {
					cp.Cost = cp.Cost.Add(in.Cost)
				}
				res = &cp
			}
			memoized[p] = res
			return res
		}
		for i, p := range out {
			if p != nil {
				out[i] = fix(p)
			}
		}
	}
	return out, spools
}
