package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func newToyOpt(opts *core.Options) *core.Optimizer {
	return core.NewOptimizer(&toyModel{}, opts)
}

func TestOptimizeSingleLeaf(t *testing.T) {
	opt := newToyOpt(nil)
	g := opt.InsertQuery(leaf("a"))
	plan, err := opt.Optimize(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || plan.Op.Name() != "toy-scan" {
		t.Fatalf("plan = %v, want toy-scan", plan)
	}
	if plan.Cost.(toyCost) != 1 {
		t.Fatalf("cost = %v, want 1", plan.Cost)
	}
}

func TestOptimizePairCost(t *testing.T) {
	opt := newToyOpt(nil)
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	plan, err := opt.Optimize(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// plain-pair(2) + two scans(1+1) = 4.
	if plan.Cost.(toyCost) != 4 {
		t.Fatalf("cost = %v, want 4", plan.Cost)
	}
}

// TestColorEnforcerWins: with a color required, paint(plain-pair)=2+4=6
// beats colored-pair=10 (both over 2 scans).
func TestColorEnforcerWins(t *testing.T) {
	opt := newToyOpt(nil)
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	plan, err := opt.Optimize(g, toyColor(3))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Op.Name() != "paint" {
		t.Fatalf("root = %s, want paint\n%s", plan.Op.Name(), plan.Format())
	}
	if plan.Cost.(toyCost) != 8 {
		t.Fatalf("cost = %v, want 8 (paint 4 + pair 2 + scans 2)", plan.Cost)
	}
	if !plan.Delivered.Covers(toyColor(3)) {
		t.Fatalf("delivered %v does not cover required color", plan.Delivered)
	}
}

// TestExcludedVectorBlocksRedundantAlgorithm: the colored-pair algorithm
// must not appear as the input of the paint enforcer (it would deliver
// the very property being enforced).
func TestExcludedVectorBlocksRedundantAlgorithm(t *testing.T) {
	opt := newToyOpt(nil)
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	plan, err := opt.Optimize(g, toyColor(1))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	plan.Walk(func(p *core.Plan) {
		if p.Op.Name() == "paint" && len(p.Inputs) == 1 &&
			p.Inputs[0].Op.Name() == "colored-pair" {
			found = true
		}
	})
	if found {
		t.Fatalf("paint over colored-pair is redundant:\n%s", plan.Format())
	}
}

// TestExplorationClosure: commute and rotate generate every pair shape;
// for three leaves that is 3 classes of pairs with 2 commuted exprs over
// each of 3 leaf partitions plus the root's shapes.
func TestExplorationClosure(t *testing.T) {
	opt := newToyOpt(nil)
	g := opt.InsertQuery(leftDeepPair("a", "b", "c"))
	if err := opt.Explore(g); err != nil {
		t.Fatal(err)
	}
	memo := opt.Memo()
	root := memo.Group(g)
	if !root.Explored() {
		t.Fatal("root not marked explored")
	}
	// Root class: one PAIR per ordered 2-partition of {a,b,c} —
	// {ab|c, c|ab, bc|a, a|bc, ac|b, b|ac} — 6 distinct expressions
	// once duplicate classes have merged. (Duplicate expressions that
	// became identical through merges may linger; they are counted
	// once here.)
	distinct := map[[2]core.GroupID]bool{}
	for _, e := range root.Exprs() {
		distinct[[2]core.GroupID{memo.Find(e.Inputs[0]), memo.Find(e.Inputs[1])}] = true
	}
	if got := len(distinct); got != 6 {
		for _, e := range root.Exprs() {
			t.Logf("expr: %s", e)
		}
		t.Fatalf("distinct root exprs = %d, want 6", got)
	}
}

// TestDuplicateDerivationsMerge: building PAIR(a,b) and PAIR(b,a) as
// separate queries creates two classes; exploration of a tree containing
// both proves them equal and merges them.
func TestDuplicateDerivationsMerge(t *testing.T) {
	opt := newToyOpt(nil)
	g1 := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	g2 := opt.InsertQuery(pair(leaf("b"), leaf("a")))
	if g1 == g2 {
		t.Fatal("distinct shapes collapsed before any derivation")
	}
	if err := opt.Explore(g1); err != nil {
		t.Fatal(err)
	}
	memo := opt.Memo()
	if memo.Find(g1) != memo.Find(g2) {
		t.Fatalf("classes %d and %d not merged after exploration", g1, g2)
	}
	if opt.Stats().Merges == 0 {
		t.Fatal("no merges recorded")
	}
}

// TestMarkElimination: the rule MARK(x) → x merges a class with its own
// input class; optimization must terminate and return the child's plan
// with no MARK operator.
func TestMarkElimination(t *testing.T) {
	opt := core.NewOptimizer(&toyModel{withMarkRule: true}, nil)
	g := opt.InsertQuery(core.Node(&toyMark{}, pair(leaf("a"), leaf("b"))))
	plan, err := opt.Optimize(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("no plan")
	}
	if plan.Cost.(toyCost) != 4 {
		t.Fatalf("cost = %v, want 4 (MARK eliminated)", plan.Cost)
	}
}

// TestWinnerAndFailureMemo: a second optimization of the same goal is
// answered from the winner table; an unreachable cost limit records a
// failure that answers an equal-or-tighter retry, while a higher limit
// re-optimizes.
func TestWinnerAndFailureMemo(t *testing.T) {
	opt := newToyOpt(nil)
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))

	if _, err := opt.Optimize(g, nil); err != nil {
		t.Fatal(err)
	}
	before := opt.Stats().WinnerHits
	if _, err := opt.Optimize(g, nil); err != nil {
		t.Fatal(err)
	}
	if opt.Stats().WinnerHits <= before {
		t.Fatal("second optimization did not hit the winner table")
	}

	// A fresh optimizer with a hopeless limit for a new color goal.
	opt2 := newToyOpt(nil)
	g2 := opt2.InsertQuery(pair(leaf("a"), leaf("b")))
	plan, err := opt2.OptimizeWithLimit(g2, toyColor(2), toyCost(3))
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		t.Fatalf("expected failure under limit 3, got plan %s", plan)
	}
	fBefore := opt2.Stats().FailureHits
	if plan, _ := opt2.OptimizeWithLimit(g2, toyColor(2), toyCost(2)); plan != nil {
		t.Fatal("tighter retry should fail")
	}
	if opt2.Stats().FailureHits <= fBefore {
		t.Fatal("tighter retry did not use the memoized failure")
	}
	plan, err = opt2.OptimizeWithLimit(g2, toyColor(2), toyCost(100))
	if err != nil || plan == nil {
		t.Fatalf("higher limit should succeed, got plan=%v err=%v", plan, err)
	}
	if plan.Cost.(toyCost) != 8 {
		t.Fatalf("cost = %v, want 8", plan.Cost)
	}
}

// TestExpressionBudget: exceeding MaxExprs surfaces ErrBudget.
func TestExpressionBudget(t *testing.T) {
	opt := newToyOpt(&core.Options{Budget: core.Budget{MaxExprs: 5}})
	g := opt.InsertQuery(leftDeepPair("a", "b", "c", "d", "e"))
	_, err := opt.Optimize(g, nil)
	if err == nil {
		t.Fatal("expected budget error")
	}
}

// TestMoveFilterHeuristic: a filter that drops every enforcer move makes
// color goals unsatisfiable through paint; colored-pair remains.
func TestMoveFilterHeuristic(t *testing.T) {
	opts := &core.Options{Search: core.SearchOptions{
		NoIncremental: true, // MoveFilter requires the full-recollection path
		MoveFilter: func(moves []core.Move) []core.Move {
			var out []core.Move
			for _, m := range moves {
				if m.Kind != core.MoveEnforcer {
					out = append(out, m)
				}
			}
			return out
		},
	}}
	opt := newToyOpt(opts)
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	plan, err := opt.Optimize(g, toyColor(1))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Op.Name() != "colored-pair" {
		t.Fatalf("root = %s, want colored-pair when enforcers are filtered", plan.Op.Name())
	}
}

// TestNoPruningSameOptimum: disabling branch-and-bound must not change
// the plan cost.
func TestNoPruningSameOptimum(t *testing.T) {
	tree := leftDeepPair("a", "b", "c", "d")
	base := newToyOpt(nil)
	gb := base.InsertQuery(tree)
	pb, err := base.Optimize(gb, toyColor(1))
	if err != nil {
		t.Fatal(err)
	}
	np := newToyOpt(&core.Options{Search: core.SearchOptions{NoPruning: true}})
	gn := np.InsertQuery(tree)
	pn, err := np.Optimize(gn, toyColor(1))
	if err != nil {
		t.Fatal(err)
	}
	if pb.Cost.(toyCost) != pn.Cost.(toyCost) {
		t.Fatalf("pruned %v != unpruned %v", pb.Cost, pn.Cost)
	}
}

// TestGlueModeNeverCheaper: the Starburst-style strategy cannot beat
// property-directed search.
func TestGlueModeNeverCheaper(t *testing.T) {
	tree := leftDeepPair("a", "b", "c")
	def := newToyOpt(nil)
	gd := def.InsertQuery(tree)
	pd, err := def.Optimize(gd, toyColor(1))
	if err != nil {
		t.Fatal(err)
	}
	glue := newToyOpt(&core.Options{Search: core.SearchOptions{GlueMode: true}})
	gg := glue.InsertQuery(tree)
	pg, err := glue.Optimize(gg, toyColor(1))
	if err != nil {
		t.Fatal(err)
	}
	if pg == nil {
		t.Fatal("glue mode found no plan")
	}
	if pg.Cost.(toyCost) < pd.Cost.(toyCost) {
		t.Fatalf("glue %v beats directed %v", pg.Cost, pd.Cost)
	}
	if !pg.Delivered.Covers(toyColor(1)) {
		t.Fatal("glue plan does not satisfy the requirement")
	}
}

// TestTrace: tracing emits winner events in the classic text format.
func TestTrace(t *testing.T) {
	var sb strings.Builder
	opt := newToyOpt(&core.Options{Trace: core.TraceOptions{
		Tracer: core.ClassicTracer(func(line string) { sb.WriteString(line + "\n") }),
	}})
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	if _, err := opt.Optimize(g, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "winner") {
		t.Fatal("no winner events traced")
	}
}

// TestPlanFormatting covers the display helpers.
func TestPlanFormatting(t *testing.T) {
	opt := newToyOpt(nil)
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	plan, err := opt.Optimize(g, toyColor(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Count(); got != 4 {
		t.Fatalf("plan nodes = %d, want 4", got)
	}
	if s := plan.String(); !strings.Contains(s, "paint(") {
		t.Fatalf("String() = %q", s)
	}
	if f := plan.Format(); !strings.Contains(f, "toy-scan") {
		t.Fatalf("Format() = %q", f)
	}
}

// brokenModel wraps the toy model with an algorithm whose Delivered lies
// about the produced properties; the engine's consistency check (the
// paper's own) must reject such plans and count the violation.
type brokenModel struct{ toyModel }

func (m *brokenModel) ImplementationRules() []*core.ImplRule {
	rules := m.toyModel.ImplementationRules()
	for _, r := range rules {
		if r.Name == "pair->colored" {
			r.Delivered = func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq, inputs []core.PhysProps) core.PhysProps {
				return toyColor(0) // lies: claims no color despite the requirement
			}
		}
	}
	return rules
}

func TestConsistencyCheckRejectsLyingAlgorithms(t *testing.T) {
	opt := core.NewOptimizer(&brokenModel{}, nil)
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	plan, err := opt.Optimize(g, toyColor(1))
	if err != nil {
		t.Fatal(err)
	}
	// paint(plain-pair) remains valid; the lying colored-pair is
	// rejected and counted.
	if plan == nil || plan.Op.Name() != "paint" {
		t.Fatalf("plan = %v", plan)
	}
	if opt.Stats().ConsistencyViolations == 0 {
		t.Fatal("violation not counted")
	}
	if !plan.Delivered.Covers(toyColor(1)) {
		t.Fatal("surviving plan does not satisfy the requirement")
	}
}
