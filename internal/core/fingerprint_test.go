package core_test

import (
	"testing"

	"repro/internal/core"
)

// fpToy wraps the toy model with the optional fingerprint extensions:
// PAIR inputs are commutative when commute is set, and version, when
// non-zero, is the model's version token.
type fpToy struct {
	toyModel
	commute bool
	version uint64
}

func (m *fpToy) CommutativeInputs(op core.LogicalOp) bool {
	return m.commute && op.Kind() == kindPair
}

func (m *fpToy) Version() uint64 { return m.version }

func fpOf(m core.Model, t *core.ExprTree, req core.PhysProps) (core.Fingerprint, string) {
	return core.FingerprintQuery(m, t, req)
}

func TestFingerprintDeterministic(t *testing.T) {
	m := &fpToy{commute: true}
	tree := pair(pair(leaf("a"), leaf("b")), leaf("c"))
	fp1, canon1 := fpOf(m, tree, toyColor(1))
	fp2, canon2 := fpOf(m, tree, toyColor(1))
	if fp1 != fp2 || canon1 != canon2 {
		t.Fatalf("fingerprint not deterministic: %v/%q vs %v/%q", fp1, canon1, fp2, canon2)
	}
	if fp1 == (core.Fingerprint{}) {
		t.Fatal("fingerprint is the zero value")
	}
}

func TestFingerprintCommutativePermutations(t *testing.T) {
	m := &fpToy{commute: true}
	ab := pair(leaf("a"), leaf("b"))
	ba := pair(leaf("b"), leaf("a"))
	fpAB, canonAB := fpOf(m, ab, toyColor(0))
	fpBA, canonBA := fpOf(m, ba, toyColor(0))
	if canonAB != canonBA {
		t.Fatalf("commuted canons differ: %q vs %q", canonAB, canonBA)
	}
	if fpAB != fpBA {
		t.Fatalf("commuted fingerprints differ: %v vs %v", fpAB, fpBA)
	}

	// Nested: every PAIR level sorts independently.
	deep1 := pair(pair(leaf("a"), leaf("b")), pair(leaf("c"), leaf("d")))
	deep2 := pair(pair(leaf("d"), leaf("c")), pair(leaf("b"), leaf("a")))
	fp1, _ := fpOf(m, deep1, toyColor(0))
	fp2, _ := fpOf(m, deep2, toyColor(0))
	if fp1 != fp2 {
		t.Fatalf("nested commuted fingerprints differ: %v vs %v", fp1, fp2)
	}

	// Commutativity merges orders, not structures: PAIR(PAIR(a,b),c) and
	// PAIR(a,PAIR(b,c)) are associativity variants and stay distinct.
	assoc1 := pair(pair(leaf("a"), leaf("b")), leaf("c"))
	assoc2 := pair(leaf("a"), pair(leaf("b"), leaf("c")))
	fpL, _ := fpOf(m, assoc1, toyColor(0))
	fpR, _ := fpOf(m, assoc2, toyColor(0))
	if fpL == fpR {
		t.Fatal("associativity variants share a fingerprint")
	}
}

func TestFingerprintNonCommutativeModel(t *testing.T) {
	m := &fpToy{commute: false}
	fpAB, canonAB := fpOf(m, pair(leaf("a"), leaf("b")), toyColor(0))
	fpBA, canonBA := fpOf(m, pair(leaf("b"), leaf("a")), toyColor(0))
	if canonAB == canonBA {
		t.Fatal("non-commutative model still merged input orders")
	}
	if fpAB == fpBA {
		t.Fatal("distinct canons share a fingerprint")
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	m := &fpToy{commute: true}
	base := pair(leaf("a"), leaf("b"))
	fpBase, _ := fpOf(m, base, toyColor(0))

	cases := map[string]struct {
		tree *core.ExprTree
		req  core.PhysProps
	}{
		"different leaf":     {pair(leaf("a"), leaf("x")), toyColor(0)},
		"extra level":        {pair(base, leaf("c")), toyColor(0)},
		"different required": {base, toyColor(1)},
	}
	for name, c := range cases {
		fp, _ := fpOf(m, c.tree, c.req)
		if fp == fpBase {
			t.Errorf("%s: fingerprint equals the base query's", name)
		}
	}
}

func TestFingerprintVersionToken(t *testing.T) {
	tree := pair(leaf("a"), leaf("b"))
	v1, _ := fpOf(&fpToy{commute: true, version: 1}, tree, toyColor(0))
	v2, _ := fpOf(&fpToy{commute: true, version: 2}, tree, toyColor(0))
	if v1 == v2 {
		t.Fatal("version bump did not change the fingerprint")
	}
	v1again, _ := fpOf(&fpToy{commute: true, version: 1}, tree, toyColor(0))
	if v1 != v1again {
		t.Fatal("same version produced different fingerprints")
	}
}

// buildFuzzTree decodes a byte program into an expression tree with a
// simple stack machine: low bytes push leaves (16 distinct names), high
// bytes combine the top two stack entries into a PAIR. The remaining
// stack is folded left into pairs, so every input decodes to one tree.
func buildFuzzTree(data []byte) *core.ExprTree {
	var stack []*core.ExprTree
	for _, b := range data {
		if b < 128 || len(stack) < 2 {
			stack = append(stack, leaf(string(rune('a'+int(b%16)))))
			continue
		}
		r := stack[len(stack)-1]
		l := stack[len(stack)-2]
		stack = stack[:len(stack)-2]
		stack = append(stack, pair(l, r))
	}
	if len(stack) == 0 {
		return leaf("z")
	}
	t := stack[0]
	for _, n := range stack[1:] {
		t = pair(t, n)
	}
	return t
}

// mirrorTree swaps the children of every PAIR node — the deepest
// commutative permutation of a tree.
func mirrorTree(t *core.ExprTree) *core.ExprTree {
	if t == nil || len(t.Children) == 0 {
		return t
	}
	kids := make([]*core.ExprTree, len(t.Children))
	for i, c := range t.Children {
		kids[len(t.Children)-1-i] = mirrorTree(c)
	}
	return core.Node(t.Op, kids...)
}

// FuzzFingerprint checks fingerprint soundness on arbitrary tree shapes:
// commutative permutations always share a fingerprint, and queries with
// distinct canonical forms never do.
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 200})
	f.Add([]byte{3, 4, 5, 200, 200})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 200, 200, 200, 200, 129, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := &fpToy{commute: true, version: 7}
		tree := buildFuzzTree(data)
		req := toyColor(0)
		if len(data) > 0 {
			req = toyColor(int(data[0]) % 3)
		}

		fp1, canon1 := fpOf(m, tree, req)
		fp2, canon2 := fpOf(m, tree, req)
		if fp1 != fp2 || canon1 != canon2 {
			t.Fatalf("not deterministic: %v vs %v", fp1, fp2)
		}

		// Commutative permutations collapse to the same fingerprint.
		fpM, canonM := fpOf(m, mirrorTree(tree), req)
		if canonM != canon1 || fpM != fp1 {
			t.Fatalf("mirrored tree diverged: %q/%v vs %q/%v", canon1, fp1, canonM, fpM)
		}

		// Distinct canonical forms never share a fingerprint. Grow the
		// tree, change the requirement, and change the version: each must
		// move the fingerprint (a failure here is a found 128-bit
		// collision or a canonicalization bug).
		for name, other := range map[string]struct {
			model core.Model
			tree  *core.ExprTree
			req   core.PhysProps
		}{
			"grown":   {m, pair(tree, leaf("q")), req},
			"req":     {m, tree, req + 1},
			"version": {&fpToy{commute: true, version: 8}, tree, req},
		} {
			fpO, canonO := core.FingerprintQuery(other.model, other.tree, other.req)
			if canonO == canon1 {
				t.Fatalf("%s: canon unchanged: %q", name, canon1)
			}
			if fpO == fp1 {
				t.Fatalf("%s: distinct canons %q vs %q share fingerprint %v", name, canon1, canonO, fp1)
			}
		}
	})
}
