package core_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
)

// mqoTrees builds a randomized overlapping batch of left-deep toy
// queries over a small leaf pool: with five leaves and many trees,
// prefixes collide constantly, which is exactly the sharing the
// concurrent-insertion and batch-search paths must keep correct.
func mqoTrees(seed int64, n int) []*core.ExprTree {
	rng := rand.New(rand.NewSource(seed))
	pool := []string{"a", "b", "c", "d", "e"}
	trees := make([]*core.ExprTree, n)
	for i := range trees {
		k := 2 + rng.Intn(len(pool)-1)
		names := make([]string, k)
		perm := rng.Perm(len(pool))
		for j := 0; j < k; j++ {
			names[j] = pool[perm[j]]
		}
		trees[i] = leftDeepPair(names...)
	}
	return trees
}

// TestConcurrentInsertMatchesSequential: inserting randomized
// overlapping trees into one memo from N goroutines must produce
// exactly the group count and winner costs of sequential insertion — in
// any insertion order. Run under -race (make test-race-core) this also
// proves InsertTreeConcurrent's locking.
func TestConcurrentInsertMatchesSequential(t *testing.T) {
	trees := mqoTrees(7, 12)

	// Sequential baselines over several insertion-order permutations:
	// group count and per-tree optimized cost must not depend on order.
	rng := rand.New(rand.NewSource(11))
	wantGroups := -1
	var wantCosts []core.Cost
	for perm := 0; perm < 4; perm++ {
		order := rng.Perm(len(trees))
		if perm == 0 {
			for i := range order {
				order[i] = i
			}
		}
		o := core.NewOptimizer(&toyModel{}, nil)
		roots := make([]core.GroupID, len(trees))
		for _, i := range order {
			roots[i] = o.InsertQuery(trees[i])
		}
		groups := o.Stats().Groups
		costs := make([]core.Cost, len(trees))
		for i, root := range roots {
			p, err := o.Optimize(root, nil)
			if err != nil || p == nil {
				t.Fatalf("perm %d tree %d: plan=%v err=%v", perm, i, p, err)
			}
			costs[i] = p.Cost
		}
		if wantGroups < 0 {
			wantGroups, wantCosts = groups, costs
			continue
		}
		if groups != wantGroups {
			t.Errorf("perm %d: %d groups, want %d", perm, groups, wantGroups)
		}
		for i := range costs {
			if costs[i] != wantCosts[i] {
				t.Errorf("perm %d tree %d: cost %v, want %v", perm, i, costs[i], wantCosts[i])
			}
		}
	}

	// Concurrent insertion from one goroutine per tree.
	for round := 0; round < 3; round++ {
		o := core.NewOptimizer(&toyModel{}, nil)
		roots := make([]core.GroupID, len(trees))
		var wg sync.WaitGroup
		wg.Add(len(trees))
		for i := range trees {
			go func(i int) {
				defer wg.Done()
				roots[i] = o.Memo().InsertTreeConcurrent(trees[i], core.InvalidGroup)
			}(i)
		}
		wg.Wait()
		if got := o.Stats().Groups; got != wantGroups {
			t.Errorf("round %d: concurrent insertion built %d groups, want %d", round, got, wantGroups)
		}
		for i, root := range roots {
			p, err := o.Optimize(root, nil)
			if err != nil || p == nil {
				t.Fatalf("round %d tree %d: plan=%v err=%v", round, i, p, err)
			}
			if p.Cost != wantCosts[i] {
				t.Errorf("round %d tree %d: cost %v, want %v", round, i, p.Cost, wantCosts[i])
			}
		}
	}
}

// TestOptimizeBatchMatchesSingle: a multi-root batch search over one
// shared memo finds, for every root, a plan of exactly the cost a
// single-root optimization finds — at one worker and several.
func TestOptimizeBatchMatchesSingle(t *testing.T) {
	trees := mqoTrees(19, 8)
	want := make([]core.Cost, len(trees))
	for i, tree := range trees {
		o := core.NewOptimizer(&toyModel{}, nil)
		p, err := o.Optimize(o.InsertQuery(tree), toyColor(1))
		if err != nil || p == nil {
			t.Fatalf("single %d: plan=%v err=%v", i, p, err)
		}
		want[i] = p.Cost
	}
	for _, workers := range []int{0, 1, 4} {
		opts := &core.Options{}
		opts.Search.ShareMemo = true
		opts.Search.Workers = workers
		o := core.NewOptimizer(&toyModel{}, opts)
		roots := make([]core.GroupID, len(trees))
		reqs := make([]core.PhysProps, len(trees))
		for i, tree := range trees {
			roots[i] = o.InsertQuery(tree)
			reqs[i] = toyColor(1)
		}
		plans, err := o.OptimizeBatchCtx(context.Background(), roots, reqs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, p := range plans {
			if p == nil {
				t.Fatalf("workers=%d root %d: no plan", workers, i)
			}
			if p.Cost != want[i] {
				t.Errorf("workers=%d root %d: cost %v, want %v", workers, i, p.Cost, want[i])
			}
		}
		if o.Stats().SharedGroups == 0 {
			t.Errorf("workers=%d: overlapping batch reports no shared groups", workers)
		}
		if o.Stats().SearchWorkers < 1 {
			t.Errorf("workers=%d: SearchWorkers = %d", workers, o.Stats().SearchWorkers)
		}
	}
}

// TestShareMemoThroughParallelOptimize: the ParallelOptimizeCtx routing
// — shared memo when every job qualifies, shared-nothing otherwise —
// returns identical costs either way, and the shared path reports
// sharing. Duplicate queries collapse to the same root and need no
// special casing.
func TestShareMemoThroughParallelOptimize(t *testing.T) {
	trees := mqoTrees(23, 6)
	trees = append(trees, trees[0]) // an exact duplicate
	baseline := make([]core.Cost, len(trees))
	for i, tree := range trees {
		o := core.NewOptimizer(&toyModel{}, nil)
		p, err := o.Optimize(o.InsertQuery(tree), nil)
		if err != nil || p == nil {
			t.Fatalf("baseline %d: plan=%v err=%v", i, p, err)
		}
		baseline[i] = p.Cost
	}
	for _, workers := range []int{0, 4} {
		opts := &core.Options{}
		opts.Search.ShareMemo = true
		opts.Search.Workers = workers
		jobs := make([]core.ParallelJob, len(trees))
		for i, tree := range trees {
			jobs[i] = core.ParallelJob{Model: &toyModel{}, Options: opts, Tree: tree}
		}
		// Distinct model pointers per job disqualify the batch; same
		// pointer everywhere qualifies it.
		model := jobs[0].Model
		for i := range jobs {
			jobs[i].Model = model
		}
		results := core.ParallelOptimizeCtx(context.Background(), jobs, 2)
		for i, r := range results {
			if r.Err != nil || r.Plan == nil {
				t.Fatalf("workers=%d job %d: plan=%v err=%v", workers, i, r.Plan, r.Err)
			}
			if r.Plan.Cost != baseline[i] {
				t.Errorf("workers=%d job %d: cost %v, want %v", workers, i, r.Plan.Cost, baseline[i])
			}
			if r.Stats.SharedGroups == 0 {
				t.Errorf("workers=%d job %d: no shared groups reported", workers, i)
			}
		}
	}
}

// TestShareMemoValidate: the configuration contradictions ShareMemo
// introduces are rejected up front.
func TestShareMemoValidate(t *testing.T) {
	bad := []core.Options{
		{Search: core.SearchOptions{ShareMemo: true, GlueMode: true}},
		{Search: core.SearchOptions{ShareMemo: true, NoIncremental: true,
			MoveFilter: func(m []core.Move) []core.Move { return m }}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("case %d: contradictory options validated", i)
		}
	}
	ok := core.Options{Search: core.SearchOptions{ShareMemo: true, Workers: 4}}
	if err := ok.Validate(); err != nil {
		t.Errorf("ShareMemo with workers rejected: %v", err)
	}
}
