package core

import (
	"context"
	"sync/atomic"
	"time"
)

// Budget bounds the resources one optimization call may consume. The
// zero value means unbounded: the search runs to completion exactly as
// the paper describes, and no budget checkpoints are armed at all. A
// production compile server sets one or more bounds so a pathological
// query degrades into a good-enough plan instead of stalling the server
// — see the anytime return contract on OptimizeWithLimitCtx.
//
// Budgets are re-armed per call: Timeout measures from call entry, and
// MaxSteps counts the moves of that call. MaxExprs and MaxMemoBytes
// bound the memo itself, which persists across calls on one Optimizer.
type Budget struct {
	// Timeout bounds the wall-clock duration of one Optimize / Explore
	// call; exceeding it stops the search with ErrDeadline. A deadline
	// carried by the call's context is honored independently. Zero
	// means no time bound.
	Timeout time.Duration
	// MaxSteps bounds the number of search steps — moves pursued, i.e.
	// algorithm and enforcer pursuits (Stats.Steps) — after which the
	// search stops with ErrStepBudget. Zero means unbounded.
	MaxSteps int
	// MaxMemoBytes bounds the memo's estimated working-set size
	// (Memo.MemoryBytes); exceeding it stops the search with
	// ErrMemoBudget. Zero means unbounded.
	MaxMemoBytes int
	// MaxExprs bounds the number of distinct logical expressions in the
	// memo; exceeding it stops the search with ErrMemoBudget. Zero
	// means unbounded. This is the exact per-expression bound the memo
	// enforces on every insertion; MaxMemoBytes is its byte-granular,
	// amortized companion.
	MaxExprs int
}

// isZero reports whether no bound is set.
func (b Budget) isZero() bool { return b == Budget{} }

// budgetPollInterval is the amortization factor of the checkpoints: the
// comparatively expensive poll (context check, clock read, memo size
// estimate) runs once per this many cheap counter ticks. Move pursuits
// and memo insertions are each a tick, so at any point of the search a
// poll is at most 64 units of work away — prompt cancellation — while
// the common no-budget case pays a single nil check per unit.
const budgetPollInterval = 64

// budgetState is the armed form of a Budget: one optimization call's
// countdown. It is shared by the Optimizer (which charges pursued moves
// through step) and its Memo (which ticks on insertions and exploration
// attempts, the units of work that dominate when a search is stuck
// expanding rather than costing).
type budgetState struct {
	ctx         context.Context
	deadline    time.Time
	hasDeadline bool
	maxSteps    int
	maxBytes    int
	memo        *Memo

	steps int
	ticks uint

	// sharedSteps, when non-nil, replaces the private steps counter: the
	// parallel engine hands every worker its own budgetState clone (so
	// ticks and polls stay contention-free) but one atomic step counter,
	// keeping the MaxSteps bound exact across workers.
	sharedSteps *atomic.Int64
}

// workerClone derives a per-worker checkpoint from the armed budget: the
// context and deadline are shared by value, the step counter through
// sharedSteps, and the memo-size poll is dropped — estimating the memo's
// size walks its groups, which is only safe under the memo's write lock,
// where the original budgetState still checks it.
func (bs *budgetState) workerClone(shared *atomic.Int64) *budgetState {
	return &budgetState{
		ctx:         bs.ctx,
		deadline:    bs.deadline,
		hasDeadline: bs.hasDeadline,
		maxSteps:    bs.maxSteps,
		sharedSteps: shared,
	}
}

// armBudget installs the budget checkpoints for one optimization call,
// or disarms them when neither the context nor the Options set any
// bound — the zero-budget fast path costs exactly one nil check per
// checkpoint site. MaxExprs needs no checkpoint: the memo enforces it
// exactly on every insertion.
func (o *Optimizer) armBudget(ctx context.Context) {
	b := o.opts.Budget
	cancelable := ctx != nil && ctx.Done() != nil
	if !cancelable && b.Timeout <= 0 && b.MaxSteps <= 0 && b.MaxMemoBytes <= 0 {
		o.bud = nil
		o.memo.bud = nil
		return
	}
	bs := &budgetState{maxSteps: b.MaxSteps, maxBytes: b.MaxMemoBytes, memo: o.memo}
	if cancelable {
		bs.ctx = ctx
	}
	if b.Timeout > 0 {
		bs.deadline = time.Now().Add(b.Timeout)
		bs.hasDeadline = true
	}
	o.bud = bs
	o.memo.bud = bs
}

// step charges one pursued move against the budget. The step bound is
// exact — the first move past MaxSteps is refused — while the other
// bounds are polled at the amortized interval.
func (bs *budgetState) step() error {
	if bs.sharedSteps != nil {
		if n := bs.sharedSteps.Add(1); bs.maxSteps > 0 && n > int64(bs.maxSteps) {
			return ErrStepBudget
		}
		return bs.tick()
	}
	bs.steps++
	if bs.maxSteps > 0 && bs.steps > bs.maxSteps {
		return ErrStepBudget
	}
	return bs.tick()
}

// tick is the amortized checkpoint: a counter increment and mask test
// on the hot path, with the full poll every budgetPollInterval ticks.
func (bs *budgetState) tick() error {
	bs.ticks++
	if bs.ticks%budgetPollInterval != 0 {
		return nil
	}
	return bs.poll()
}

// poll performs the full budget check: context cancellation, wall-clock
// deadline, and memo size, in that order. It returns the typed budget
// error describing the first exhausted bound, or nil.
func (bs *budgetState) poll() error {
	if bs.ctx != nil {
		if err := bs.ctx.Err(); err != nil {
			if err == context.DeadlineExceeded {
				return ErrDeadline
			}
			return ErrCanceled
		}
	}
	if bs.hasDeadline && !time.Now().Before(bs.deadline) {
		return ErrDeadline
	}
	if bs.maxBytes > 0 && bs.memo.MemoryBytes() > bs.maxBytes {
		return ErrMemoBudget
	}
	return nil
}
