package core_test

import (
	"testing"

	"repro/internal/core"
)

func newMemo() (*core.Optimizer, *core.Memo) {
	opt := newToyOpt(nil)
	return opt, opt.Memo()
}

func TestInsertDedupWithinGroup(t *testing.T) {
	opt, memo := newMemo()
	g := opt.InsertQuery(leaf("a"))
	before := memo.ExprCount()
	g2, created := memo.Insert(&toyLeaf{name: "a"}, nil, core.InvalidGroup)
	if created || g2 != g || memo.ExprCount() != before {
		t.Fatalf("duplicate insert created=%v group=%d exprs=%d", created, g2, memo.ExprCount())
	}
}

func TestInsertIntoTargetGroup(t *testing.T) {
	opt, memo := newMemo()
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	ga := opt.InsertQuery(leaf("a"))
	gb := opt.InsertQuery(leaf("b"))
	// Assert PAIR(b,a) equivalent to the root by inserting with target.
	g2, created := memo.Insert(&toyPair{}, []core.GroupID{gb, ga}, g)
	if !created || memo.Find(g2) != memo.Find(g) {
		t.Fatalf("targeted insert: created=%v group=%d", created, g2)
	}
	if got := len(memo.Group(g).Exprs()); got != 2 {
		t.Fatalf("group exprs = %d, want 2", got)
	}
}

func TestInsertArityMismatchPanics(t *testing.T) {
	_, memo := newMemo()
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	memo.Insert(&toyPair{}, nil, core.InvalidGroup)
}

func TestMergeUnifiesWinners(t *testing.T) {
	opt, memo := newMemo()
	g1 := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	g2 := opt.InsertQuery(pair(leaf("b"), leaf("a")))
	// Optimize both classes separately, then merge via a targeted
	// insert; the surviving class keeps the cheaper winner.
	if _, err := opt.Optimize(g1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Optimize(g2, nil); err != nil {
		t.Fatal(err)
	}
	ga := opt.InsertQuery(leaf("a"))
	gb := opt.InsertQuery(leaf("b"))
	memo.Insert(&toyPair{}, []core.GroupID{gb, ga}, g1) // proves g1 ≡ g2
	if memo.Find(g1) != memo.Find(g2) {
		t.Fatal("classes not merged")
	}
	surv := memo.Group(g1)
	if plan := surv.BestPlan(toyColor(0)); plan == nil || plan.Cost.(toyCost) != 4 {
		t.Fatalf("merged winner = %v", plan)
	}
}

func TestFindPathHalving(t *testing.T) {
	opt, memo := newMemo()
	g := opt.InsertQuery(leftDeepPair("a", "b", "c", "d"))
	if err := opt.Explore(g); err != nil {
		t.Fatal(err)
	}
	// Every group id, live or merged, must resolve to a live class.
	for id := core.GroupID(1); int(id) <= memo.GroupCount(); id++ {
		rep := memo.Find(id)
		if memo.Find(rep) != rep {
			t.Fatalf("find(%d) = %d is not a representative", id, rep)
		}
		if memo.Group(id) == nil {
			t.Fatalf("group(%d) nil", id)
		}
	}
}

func TestMemoryBytesGrowsWithContent(t *testing.T) {
	opt, memo := newMemo()
	g := opt.InsertQuery(leftDeepPair("a", "b", "c"))
	small := memo.MemoryBytes()
	if err := opt.Explore(g); err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Optimize(g, nil); err != nil {
		t.Fatal(err)
	}
	if memo.MemoryBytes() <= small {
		t.Fatalf("memory estimate did not grow: %d <= %d", memo.MemoryBytes(), small)
	}
}

func TestStatsCounters(t *testing.T) {
	opt, _ := newMemo()
	g := opt.InsertQuery(leftDeepPair("a", "b", "c"))
	if _, err := opt.Optimize(g, toyColor(1)); err != nil {
		t.Fatal(err)
	}
	st := opt.Stats()
	if st.Groups == 0 || st.Exprs == 0 || st.RulesFired == 0 ||
		st.AlgorithmMoves == 0 || st.EnforcerMoves == 0 || st.GoalsOptimized == 0 {
		t.Fatalf("stats have zero counters: %+v", *st)
	}
	if st.ConsistencyViolations != 0 {
		t.Fatalf("consistency violations: %d", st.ConsistencyViolations)
	}
}

func TestGroupAccessors(t *testing.T) {
	opt, memo := newMemo()
	g := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	grp := memo.Group(g)
	if grp.ID() != memo.Find(g) {
		t.Fatal("ID mismatch")
	}
	if grp.Explored() {
		t.Fatal("unexplored group claims explored")
	}
	if err := opt.Explore(g); err != nil {
		t.Fatal(err)
	}
	if !memo.Group(g).Explored() {
		t.Fatal("explored group claims unexplored")
	}
	if lp := grp.LogicalProps().(*toyProps); lp.weight != 3 {
		t.Fatalf("logical props = %+v", lp)
	}
}

func TestBudgetErrorSurfacesFromMemo(t *testing.T) {
	opt := newToyOpt(&core.Options{Budget: core.Budget{MaxExprs: 3}})
	g := opt.InsertQuery(leftDeepPair("a", "b", "c", "d"))
	err := opt.Explore(g)
	if err == nil {
		t.Fatal("expected budget error from exploration")
	}
	if opt.Memo().Err() == nil {
		t.Fatal("memo does not expose the error")
	}
}

// TestPreoptimizedSubplansReused exercises the future-work direction
// the paper sketches ("longer-lived partial results", "preoptimized
// subplans"): within one optimizer session, a later query that shares
// subexpressions with an earlier one answers the shared goals straight
// from the winner table.
func TestPreoptimizedSubplansReused(t *testing.T) {
	opt, _ := newMemo()

	// Preoptimize a subexpression on its own.
	sub := opt.InsertQuery(pair(leaf("a"), leaf("b")))
	if _, err := opt.Optimize(sub, nil); err != nil {
		t.Fatal(err)
	}
	goalsAfterSub := opt.Stats().GoalsOptimized
	hitsBefore := opt.Stats().WinnerHits

	// A larger query containing the same subexpression: the memo
	// collapses the shared subtree onto the preoptimized class.
	full := opt.InsertQuery(pair(pair(leaf("a"), leaf("b")), leaf("c")))
	plan, err := opt.Optimize(full, nil)
	if err != nil || plan == nil {
		t.Fatal(err)
	}
	if plan.Cost.(toyCost) != 7 {
		t.Fatalf("cost = %v, want 7", plan.Cost)
	}
	if opt.Stats().WinnerHits <= hitsBefore {
		t.Fatal("preoptimized subplan not reused from the winner table")
	}
	// The shared goal must not have been re-searched.
	reSearched := opt.Stats().GoalsOptimized - goalsAfterSub
	if reSearched <= 0 {
		t.Fatal("nothing optimized for the larger query?")
	}
	subGroup := opt.Memo().Find(sub)
	fullGroup := opt.Memo().Find(full)
	if subGroup == fullGroup {
		t.Fatal("sub and full queries should be different classes")
	}
	if opt.Memo().Group(sub).BestPlan(toyColor(0)) == nil {
		t.Fatal("preoptimized winner lost")
	}
}
