package core

import (
	"fmt"
	"sync"
)

// The three task kinds of the parallel engine. optimizeGoal starts a
// claimed goal: it explores the class and collects its moves (under the
// memo's write lock) and fans one optimizeMove task out per move.
// optimizeMove is the paper's "apply the move": it costs the algorithm
// or enforcer and resolves each input goal, parking on a claim whenever
// an input is being optimized by another task. optimizeInputs is the
// goal's continuation once every move of the round has completed: it
// re-collects moves until the class is stable (the sequential engine's
// fixpoint loop) and then finalizes the goal — installs the winner or
// memoized failure and releases the claim, waking the subscribers.

// trace emits a structured event stamped with the worker id.
func (w *searchWorker) trace(ev TraceEvent) {
	if t := w.eng.o.tracer; t != nil {
		ev.Worker = w.id
		t.Trace(ev)
	}
}

// optimizeGoalTask starts the optimization of a freshly claimed goal.
type optimizeGoalTask struct {
	run *goalRun
}

func (t *optimizeGoalTask) wake(*goalClaim, bool) {} // never parks

func (t *optimizeGoalTask) exec(w *searchWorker) {
	run := t.run
	eng := run.eng
	m := eng.m
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		run.setTransient()
		eng.fail(err)
		run.finish(w)
		return
	}
	spawn, stable := run.collectLocked()
	err := m.err
	m.mu.Unlock()
	w.stats.GoalsOptimized++
	w.trace(TraceEvent{Kind: TraceGoalBegin, Group: run.gid,
		Required: run.required, Excluded: run.excluded, Limit: run.claimLimit})
	if err != nil {
		run.setTransient()
		eng.fail(err)
		run.finish(w)
		return
	}
	run.dispatch(spawn, stable, w)
}

// optimizeInputsTask is a goal's continuation after a round of move
// tasks: the fixpoint re-collection and, once stable, finalization.
type optimizeInputsTask struct {
	run *goalRun
}

func (t *optimizeInputsTask) wake(*goalClaim, bool) {} // never parks

func (t *optimizeInputsTask) exec(w *searchWorker) {
	run := t.run
	eng := run.eng
	m := eng.m
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		run.setTransient()
		eng.fail(err)
		run.finish(w)
		return
	}
	spawn, stable := run.collectLocked()
	err := m.err
	m.mu.Unlock()
	if err != nil {
		run.setTransient()
		eng.fail(err)
		run.finish(w)
		return
	}
	run.dispatch(spawn, stable, w)
}

// collectLocked explores the run's class and collects the moves of the
// next round, recording the snapshot the stability check compares
// against. Caller holds the memo's write lock. stable reports the
// sequential fixpoint-loop exit condition: nothing new to pursue and
// the class unchanged since the previous round.
func (run *goalRun) collectLocked() (spawn []Move, stable bool) {
	o, m := run.eng.o, run.eng.m
	gid := m.Find(run.gid)
	g := m.groups[gid-1]
	m.exploreGroup(g)
	if m.err != nil {
		return nil, false
	}
	unchanged := gid == run.curGid && g.explored && len(g.exprs) == run.nExprs
	if o.opts.Search.NoIncremental {
		// From-scratch collection, as in the sequential NoIncremental
		// path: the full move list is re-pursued every round until the
		// class is stable.
		if !unchanged {
			spawn = o.collectMoves(g, run.required)
		}
		run.curGid, run.nExprs = gid, len(g.exprs)
		return spawn, unchanged
	}
	mk := keyOf(run.required)
	ms := g.ensureMoveSet(mk, run.required)
	if ms != run.curMS || ms.gen != run.curGen {
		run.done = 0
	}
	if ms.epoch != m.mergeEpoch {
		ms.reset(m.mergeEpoch)
		run.done = 0
	}
	if run.done == 0 && len(ms.moves) > 0 {
		o.stats.MovesReused += len(ms.moves)
	}
	o.collectMovesInto(ms, g, run.required)
	spawn = ms.moves[run.done:len(ms.moves):len(ms.moves)]
	stable = len(spawn) == 0 && unchanged
	run.curGid, run.nExprs = gid, len(g.exprs)
	run.curMS, run.curGen = ms, ms.gen
	run.done = len(ms.moves)
	return spawn, stable
}

// dispatch fans a round of move tasks out, or finalizes the goal when
// the fixpoint is reached.
func (run *goalRun) dispatch(spawn []Move, stable bool, w *searchWorker) {
	if len(spawn) == 0 {
		if stable {
			run.finish(w)
		} else {
			// Nothing to pursue this round but the class changed;
			// run another re-collection round.
			run.eng.submit(&optimizeInputsTask{run: run}, w)
		}
		return
	}
	run.pending.Store(int64(len(spawn)) + 1)
	for i := range spawn {
		run.eng.submit(&optimizeMoveTask{run: run, mv: &spawn[i]}, w)
	}
	run.complete(w) // drop the dispatch token
}

// complete retires one unit of the run's pending work; the last unit
// schedules the continuation.
func (run *goalRun) complete(w *searchWorker) {
	if run.pending.Add(-1) == 0 {
		run.eng.submit(&optimizeInputsTask{run: run}, w)
	}
}

// finish finalizes the goal: install the winner or memoized failure
// exactly as the sequential engine's post-loop code does, clear the
// claim, and wake the subscribers.
func (run *goalRun) finish(w *searchWorker) {
	eng := run.eng
	o := eng.o
	m := eng.m
	m.mu.Lock()
	gid := m.Find(run.gid)
	g := m.groups[gid-1]
	fw := g.ensureWinnerKeyed(run.wk, run.required, run.excluded)
	run.mu.Lock()
	best, transient := run.best, run.transient
	run.mu.Unlock()
	if m.err != nil {
		transient = true
	}
	var winCost Cost
	var winPlan *Plan
	if best != nil {
		// A budget-interrupted run still records its best complete
		// plan — the anytime result — but never memoizes a failure.
		if fw.plan == nil || best.Cost.Less(fw.cost) {
			fw.plan, fw.cost = best, best.Cost
		}
		winPlan, winCost = fw.plan, fw.cost
	} else if !transient {
		w.stats.GoalsPruned++
		if !o.opts.Search.NoFailureMemo {
			if fw.failedLimit == nil || fw.failedLimit.Less(run.claimLimit) {
				fw.failedLimit = run.claimLimit
			}
		}
	}
	if fw.claim == run.claim {
		fw.claim = nil
	}
	m.mu.Unlock()

	if winPlan != nil {
		w.trace(TraceEvent{Kind: TraceWinner, Group: gid,
			Required: run.required, Cost: winCost, Plan: winPlan})
		w.trace(TraceEvent{Kind: TraceGoalEnd, Group: gid,
			Required: run.required, Cost: winCost})
	} else {
		if !transient && !o.opts.Search.NoFailureMemo {
			w.trace(TraceEvent{Kind: TraceFailure, Group: gid,
				Required: run.required, Limit: run.claimLimit})
		}
		w.trace(TraceEvent{Kind: TraceGoalEnd, Group: gid, Required: run.required})
	}
	eng.release(run.claim, best == nil && transient, winPlan, w)
}

// optimizeMoveTask pursues one algorithm or enforcer move. A task that
// finds an input goal claimed parks on the claim and re-executes when
// woken; input goals already decided then answer from the winner table,
// so re-execution resumes the alternative it parked in.
type optimizeMoveTask struct {
	run *goalRun
	mv  *Move
	// alt is the index of the input-property alternative being pursued;
	// alternatives before it are done or abandoned.
	alt int
	// counted is set once the move has been charged against the budget
	// and the effort counters — re-executions after a wake-up are not
	// new moves.
	counted bool
	// enfCounted: EnforcerMoves counts only enforcers whose Relax
	// accepted, as in the sequential engine.
	enfCounted bool
	// transientWake records that the claim this task parked on released
	// without a definitive outcome; the alternative waiting on it is
	// abandoned and the run marked transient, exactly as the sequential
	// engine treats a nil-transient child.
	transientWake bool
	// parkAlt/parkChild identify the input-goal resolution this task
	// parked at; consume is the released claim whose outcome answers
	// that resolution when the task re-executes. Consuming the outcome
	// (rather than re-resolving through the tables) matches the
	// sequential engine, which uses a child FindBestPlan's direct
	// return value — and is what makes same-limit failure re-asks
	// terminate.
	parkAlt   int
	parkChild int
	consume   *goalClaim
}

func (t *optimizeMoveTask) wake(cl *goalClaim, transient bool) {
	if transient {
		t.transientWake = true
		return
	}
	t.consume = cl
}

func (t *optimizeMoveTask) exec(w *searchWorker) {
	run := t.run
	eng := run.eng
	m := eng.m
	if t.transientWake {
		t.transientWake = false
		t.consume = nil
		run.setTransient()
		t.alt++
	}
	if w.bud != nil {
		var err error
		if !t.counted {
			err = w.bud.step()
		} else {
			err = w.bud.tick()
		}
		if err != nil {
			run.setTransient()
			eng.fail(err)
			run.complete(w)
			return
		}
	}
	if !t.counted {
		t.counted = true
		if t.mv.Kind == MoveAlgorithm {
			w.stats.AlgorithmMoves++
		}
		w.trace(TraceEvent{Kind: TraceMovePursued, Group: run.gid,
			Required: run.required, Move: t.mv.Name(), MoveKind: t.mv.Kind})
	}
	m.mu.RLock()
	if m.err != nil {
		err := m.err
		m.mu.RUnlock()
		run.setTransient()
		eng.fail(err)
		run.complete(w)
		return
	}
	var parked bool
	switch t.mv.Kind {
	case MoveAlgorithm:
		parked = t.pursueAlgorithm(w)
	case MoveEnforcer:
		parked = t.pursueEnforcer(w)
	}
	m.mu.RUnlock()
	if parked {
		w.stats.TasksParked++
		return
	}
	run.complete(w)
}

// pursueAlgorithm is Optimizer.pursueAlgorithm against the shared memo:
// bounds come from the run's atomic bound, input goals go through
// resolveGoal. Caller holds the memo's read lock. Returns true when the
// task parked on an input goal's claim.
func (t *optimizeMoveTask) pursueAlgorithm(w *searchWorker) bool {
	run := t.run
	eng := run.eng
	o := eng.o
	m := eng.m
	mv := t.mv
	gid := m.Find(run.gid)
	g := m.groups[gid-1]
	rule, b := mv.Rule, mv.Binding
	leaves := mv.leaves
	if leaves == nil {
		leaves = b.Leaves(nil)
	}
	var floors []Cost
	var floorSum Cost
	if o.lower != nil && !o.opts.Search.NoPruning {
		floorSum = o.model.ZeroCost()
		floors = make([]Cost, len(leaves))
		for i, leaf := range leaves {
			floors[i] = o.model.ZeroCost()
			lg := m.groups[m.Find(leaf)-1]
			if lb := eng.classFloor(lg); lb != nil {
				floors[i] = lb
			}
			floorSum = floorSum.Add(floors[i])
		}
	}
	for ; t.alt < len(mv.Alts); t.alt++ {
		if t.alt != t.parkAlt {
			// A pending outcome belongs to the alternative it was
			// requested for; a pass that never reaches the park point
			// (an earlier prune under the tightened bound) drops it.
			t.consume = nil
		}
		alt := mv.Alts[t.alt]
		if len(alt.Required) != len(leaves) {
			panic(fmt.Sprintf("core: rule %s returned %d input requirements for %d inputs",
				rule.Name, len(alt.Required), len(leaves)))
		}
		local := rule.Cost(o.ctx, b, run.required, alt)
		total := local
		var rest Cost
		charged := total
		if floors != nil {
			rest = floorSum
			charged = total.Add(rest)
		}
		if run.prune(w, charged) {
			w.stats.MovesSkipped++
			w.trace(TraceEvent{Kind: TraceMoveSkipped, Group: g.id,
				Required: run.required, Move: rule.Name, MoveKind: MoveAlgorithm})
			continue
		}
		inPlans := make([]*Plan, len(leaves))
		inProps := make([]PhysProps, len(leaves))
		ok := true
		for i, leaf := range leaves {
			partial := total
			if floors != nil {
				rest = rest.Sub(floors[i])
				partial = total.Add(rest)
			}
			climit, incl := run.childBound(partial)
			var p *Plan
			var st goalStatus
			if cl := t.consume; cl != nil && i == t.parkChild {
				// The claim this task parked on has released; its
				// outcome is the goal's answer for this resolution.
				t.consume = nil
				if out := cl.outPlan; out != nil {
					// The recorded plan is optimal for the goal; a
					// bound it cannot meet, no plan can.
					if costLE(out.Cost, climit) {
						p = out
					}
					st = goalDecided
				} else if cl.failureAnswers(climit, incl) {
					st = goalDecided
				} else {
					// The run failed under a narrower bound than this
					// request's; re-resolve (and possibly re-claim) at
					// the wider one.
					p, st = w.resolveGoal(run, t, leaf, alt.Required[i], nil, climit, incl)
				}
			} else {
				p, st = w.resolveGoal(run, t, leaf, alt.Required[i], nil, climit, incl)
			}
			switch st {
			case goalPending:
				t.parkAlt, t.parkChild = t.alt, i
				return true
			case goalCycle:
				run.setTransient()
				ok = false
			default:
				if p == nil {
					ok = false
				}
			}
			if !ok {
				break
			}
			inPlans[i] = p
			inProps[i] = p.Delivered
			total = total.Add(p.Cost)
			charged = total
			if floors != nil {
				charged = total.Add(rest)
			}
			if run.prune(w, charged) {
				w.trace(TraceEvent{Kind: TraceMovePruned, Group: g.id,
					Required: run.required, Move: rule.Name, MoveKind: MoveAlgorithm})
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		delivered := run.required
		if rule.Delivered != nil {
			delivered = rule.Delivered(o.ctx, b, run.required, alt, inProps)
		}
		if !delivered.Covers(run.required) {
			w.stats.ConsistencyViolations++
			w.trace(TraceEvent{Kind: TraceViolation, Group: g.id,
				Required: run.required, Delivered: delivered,
				Move: rule.Name, MoveKind: MoveAlgorithm})
			continue
		}
		if run.excluded != nil && delivered.Covers(run.excluded) {
			// Redundant qualification: see Optimizer.pursueAlgorithm.
			w.stats.Pruned++
			continue
		}
		run.offer(&Plan{
			Op:        rule.Build(o.ctx, b, run.required, alt),
			Inputs:    inPlans,
			Delivered: delivered,
			Cost:      total,
			LocalCost: local,
			Group:     g.id,
			LogProps:  g.logProps,
		})
	}
	return false
}

// pursueEnforcer is Optimizer.pursueEnforcer against the shared memo.
// Caller holds the memo's read lock.
func (t *optimizeMoveTask) pursueEnforcer(w *searchWorker) bool {
	run := t.run
	eng := run.eng
	o := eng.o
	m := eng.m
	if t.alt > 0 {
		// The single pursuit was abandoned by a transient wake-up.
		return false
	}
	enf := t.mv.Enforcer
	gid := m.Find(run.gid)
	g := m.groups[gid-1]
	relaxed, excl, ok := enf.Relax(o.ctx, g.logProps, run.required)
	if !ok {
		return false
	}
	if !t.enfCounted {
		t.enfCounted = true
		w.stats.EnforcerMoves++
	}
	local := enf.Cost(o.ctx, g.logProps, run.required)
	total := local
	charged := total
	if o.lower != nil && !o.opts.Search.NoPruning {
		if lb := eng.classFloor(g); lb != nil {
			charged = total.Add(lb)
		}
	}
	if run.prune(w, charged) {
		w.stats.MovesSkipped++
		w.trace(TraceEvent{Kind: TraceMoveSkipped, Group: g.id,
			Required: run.required, Move: enf.Name, MoveKind: MoveEnforcer})
		return false
	}
	climit, incl := run.childBound(total)
	var in *Plan
	var st goalStatus
	if cl := t.consume; cl != nil {
		t.consume = nil
		if out := cl.outPlan; out != nil {
			if costLE(out.Cost, climit) {
				in = out
			}
			st = goalDecided
		} else if cl.failureAnswers(climit, incl) {
			st = goalDecided
		} else {
			in, st = w.resolveGoal(run, t, gid, relaxed, excl, climit, incl)
		}
	} else {
		in, st = w.resolveGoal(run, t, gid, relaxed, excl, climit, incl)
	}
	switch st {
	case goalPending:
		return true
	case goalCycle:
		run.setTransient()
		return false
	default:
		if in == nil {
			return false
		}
	}
	total = total.Add(in.Cost)
	if run.prune(w, total) {
		w.trace(TraceEvent{Kind: TraceMovePruned, Group: g.id,
			Required: run.required, Move: enf.Name, MoveKind: MoveEnforcer})
		return false
	}
	delivered := run.required
	if enf.Delivered != nil {
		delivered = enf.Delivered(o.ctx, run.required, in.Delivered)
	}
	if !delivered.Covers(run.required) {
		w.stats.ConsistencyViolations++
		w.trace(TraceEvent{Kind: TraceViolation, Group: g.id,
			Required: run.required, Delivered: delivered,
			Move: enf.Name, MoveKind: MoveEnforcer})
		return false
	}
	if run.excluded != nil && delivered.Covers(run.excluded) {
		w.stats.Pruned++
		return false
	}
	run.offer(&Plan{
		Op:        enf.Build(o.ctx, g.logProps, run.required),
		Inputs:    []*Plan{in},
		Delivered: delivered,
		Cost:      total,
		LocalCost: local,
		Group:     g.id,
		LogProps:  g.logProps,
	})
	return false
}

// rootTask carries the caller's goal into the engine: it resolves the
// root goal, parking on its claim like any subscriber, and publishes
// the decisive answer as the engine's result. A multi-root engine
// (batch non-nil) runs one rootTask per query root; each decides at
// most once, into its own slot.
type rootTask struct {
	gid       GroupID
	required  PhysProps
	limit     Cost
	inclusive bool
	// idx is this root's slot in the engine's batchRoots; unused for
	// single-root engines.
	idx int
	// sawTransient: the root goal's run released without a definitive
	// outcome; re-claiming would re-enter the same cycle, so the search
	// reports a transient failure, as the sequential engine does.
	sawTransient bool
	// consume holds the released claim this task parked on; its outcome
	// is the root goal's answer.
	consume *goalClaim
}

func (t *rootTask) wake(cl *goalClaim, transient bool) {
	if transient {
		t.sawTransient = true
		return
	}
	t.consume = cl
}

func (t *rootTask) exec(w *searchWorker) {
	eng := w.eng
	m := eng.m
	m.mu.RLock()
	if m.err != nil {
		err := m.err
		m.mu.RUnlock()
		eng.fail(err)
		return
	}
	if t.sawTransient {
		m.mu.RUnlock()
		t.decide(eng, nil, true)
		return
	}
	var p *Plan
	var st goalStatus
	if cl := t.consume; cl != nil {
		t.consume = nil
		if out := cl.outPlan; out != nil {
			if costLE(out.Cost, t.limit) {
				p = out
			}
			st = goalDecided
		} else if cl.failureAnswers(t.limit, t.inclusive) {
			st = goalDecided
		} else {
			p, st = w.resolveGoal(nil, t, t.gid, t.required, nil, t.limit, t.inclusive)
		}
	} else {
		p, st = w.resolveGoal(nil, t, t.gid, t.required, nil, t.limit, t.inclusive)
	}
	m.mu.RUnlock()
	switch st {
	case goalDecided:
		t.decide(eng, p, false)
	case goalCycle:
		t.decide(eng, nil, true)
	case goalPending:
		// Parked on the root goal's claim; re-enqueued when it
		// releases.
	}
}

// decide publishes this root's outcome. On a single-root engine it is
// the search result and stops the engine; on a multi-root engine it
// fills the root's slot, and the engine stops when every root has
// decided. Each rootTask reaches a decision at most once: after
// deciding it is never re-submitted.
func (t *rootTask) decide(eng *searchEngine, p *Plan, transient bool) {
	b := eng.batch
	if b == nil {
		eng.stop(p, transient, nil)
		return
	}
	b.plans[t.idx] = p
	b.transient[t.idx] = transient
	if b.remaining.Add(-1) == 0 {
		eng.stop(nil, false, nil)
	}
}

// parallelSearch is searchRoot's task-engine arm: it builds the worker
// pool, injects the root goal, and blocks until the goal is decided or
// the search fails on a budget bound. Every structural invariant of the
// sequential engine — what a recorded winner or failure certifies — is
// preserved, so the winner tables the call leaves behind are reusable
// by later (sequential or parallel) stages on the same memo.
func (o *Optimizer) parallelSearch(root GroupID, required PhysProps, limit Cost, inclusive bool) (*Plan, bool) {
	eng := o.newSearchEngine(o.opts.Search.Workers)
	eng.submit(&rootTask{gid: root, required: required, limit: limit, inclusive: inclusive}, nil)
	o.runSearchEngine(eng)
	return eng.resPlan, eng.resTransient
}

// parallelSearchBatch is parallelSearch for a batch of roots sharing
// the memo (ParallelOptimizeCtx with Search.ShareMemo): one engine, one
// rootTask per query root, all roots racing over the same winner and
// failure tables so a goal claimed for one root answers every other
// root warm. It returns one (plan, transient) pair per root; a nil,
// non-transient plan means no plan exists within the limit.
func (o *Optimizer) parallelSearchBatch(roots []GroupID, required []PhysProps, limit Cost) ([]*Plan, []bool) {
	n := o.opts.Search.Workers
	if n < 1 {
		// Unlike single-root searches, which fall back to the exact
		// sequential recursion, a batch always runs the task engine: the
		// multi-root claim/subscribe protocol is the sharing mechanism.
		n = 1
	}
	eng := o.newSearchEngine(n)
	b := &batchRoots{plans: make([]*Plan, len(roots)), transient: make([]bool, len(roots))}
	b.remaining.Store(int64(len(roots)))
	eng.batch = b
	for i := range roots {
		eng.submit(&rootTask{gid: roots[i], required: required[i], limit: limit, inclusive: true, idx: i}, nil)
	}
	o.runSearchEngine(eng)
	return b.plans, b.transient
}

// newSearchEngine builds an engine and its n-worker pool, wiring worker
// budgets to the shared step counter.
func (o *Optimizer) newSearchEngine(n int) *searchEngine {
	eng := &searchEngine{o: o, m: o.memo, done: make(chan struct{})}
	eng.cond = sync.NewCond(&eng.schedMu)
	eng.workers = make([]*searchWorker, n)
	for i := range eng.workers {
		w := &searchWorker{eng: eng, id: i + 1}
		if o.bud != nil {
			w.bud = o.bud.workerClone(&eng.sharedSteps)
		}
		eng.workers[i] = w
	}
	if o.bud != nil {
		// Steps spent by earlier sequential stages count against the
		// same MaxSteps bound.
		eng.sharedSteps.Store(int64(o.bud.steps))
	}
	return eng
}

// runSearchEngine starts the pool, blocks until the engine stops, and
// restores the memo to sequential-use invariants. Tasks submitted
// before the call sit in deques untouched — nothing executes until the
// workers start here.
func (o *Optimizer) runSearchEngine(eng *searchEngine) {
	m := o.memo
	m.concurrent = true
	var wg sync.WaitGroup
	wg.Add(len(eng.workers))
	for _, w := range eng.workers {
		go func(w *searchWorker) {
			defer wg.Done()
			w.loop()
		}(w)
	}
	<-eng.done
	wg.Wait()
	m.concurrent = false
	for _, w := range eng.workers {
		o.stats.merge(&w.stats)
	}
	if o.bud != nil {
		o.bud.steps = int(eng.sharedSteps.Load())
	}
	// Sweep stale claims: a shutdown (root decided, or a budget stop)
	// abandons in-flight goal runs; their claims must not wedge a later
	// optimization stage on this memo, and no subscriber may stay
	// parked forever — parked tasks die with the engine, never blocking
	// a goroutine.
	for _, g := range m.groups {
		for _, wn := range g.winners {
			for ; wn != nil; wn = wn.next {
				wn.claim = nil
			}
		}
	}
	if eng.err != nil && m.err == nil {
		m.err = eng.err
	}
}
