package core

import "sync"

// Group is an equivalence class: two collections, one of equivalent
// logical expressions and one of physical plans, plus the logical
// properties shared by every member and a winner table recording, for
// each combination of physical properties already optimized, the best
// plan found — or a remembered failure. Both optimal plans and failures
// are the "interesting facts" the paper's search algorithm captures for
// possible future use.
type Group struct {
	id GroupID

	// mu guards the group's winner table (including the mutable fields
	// of its entries), move-set cache, and memoized floor during a
	// parallel search. Lock order: memo.mu (read or write) before mu;
	// never two group locks at once. The sequential engine never takes
	// it.
	mu sync.Mutex

	// exprs is the collection of logical expressions known to be
	// equivalent. exprs[0] is the expression that created the group.
	exprs []*Expr

	// parents lists every expression (in any class) that consumes this
	// class as an input. When this class gains members through a
	// merge, the parents' fired-rule masks are reset so multi-level
	// patterns can re-match through the enlarged class.
	parents []*Expr

	// logProps are the logical properties of the class, derived once
	// from the creating expression before any optimization.
	logProps LogicalProps

	// winners maps a (required, excluded) physical property pair to
	// the optimization outcome for this class under that requirement.
	winners map[physKey]*winner

	// moveSets caches, per required physical property vector, the
	// implementation-rule and enforcer moves collected for this class,
	// with a watermark of already-matched expressions. FindBestPlan
	// extends a cached set incrementally instead of re-matching every
	// rule against every expression on each fixpoint iteration and goal
	// re-activation. Entries are invalidated lazily when the memo's
	// merge epoch has advanced past the set's epoch.
	moveSets map[physKey]*moveSet

	// floor memoizes the model's admissible cost floor for the class;
	// floorSet distinguishes a computed nil ("model declined") from
	// not-yet-computed. Logical properties are fixed at class creation
	// and merges only unite equivalent classes, so one computation per
	// class is sound.
	floor    Cost
	floorSet bool

	// explored is set once the group's logical expressions have been
	// expanded to transformation-rule fixpoint.
	explored bool
	// exploring guards against re-entrant exploration through cyclic
	// rule derivations.
	exploring bool
}

// winner is a winner-table entry: the outcome of optimizing a group for
// one (required, excluded) physical property pair. The excluded vector
// is non-nil only for optimizations of enforcer inputs, where algorithms
// that already qualified for the original requirement are kept out.
type winner struct {
	props    PhysProps
	excluded PhysProps
	// plan and cost hold the best complete plan found, when found.
	// A recorded plan is globally optimal for its property pair:
	// branch-and-bound never prunes a plan cheaper than the winner.
	plan *Plan
	cost Cost
	// failedLimit is set when optimization failed; it records the
	// highest cost limit under which failure was established. A later
	// request with a limit not exceeding failedLimit can fail
	// immediately; a request with a higher limit must re-optimize.
	failedLimit Cost
	// inProgress marks the entry while its optimization is on the call
	// stack, so cyclic derivations do not loop. The sequential engine's
	// flag; the parallel engine uses claim instead.
	inProgress bool
	// claim marks the entry while a parallel goal run owns it: the
	// claim/subscribe protocol's anchor. A task that needs the goal's
	// result while the claim is live parks on it instead of duplicating
	// the search; the owner wakes the subscribers when it finishes.
	// Guarded by the group's mu.
	claim *goalClaim
	// next chains entries whose property pairs collide in the hash.
	next *winner
}

// moveSet is the cached move collection for one (class, required
// physical property vector) pair.
type moveSet struct {
	// props is the required vector the moves were collected for.
	props PhysProps
	// moves holds enforcer moves plus one algorithm move per surviving
	// implementation-rule binding over exprs[:matched]. Within each
	// collection batch the moves are promise-ordered; batch boundaries
	// are preserved so an in-flight pursuit index stays valid.
	moves []Move
	// matched is the expression watermark: exprs[:matched] have been
	// matched against every implementation rule.
	matched int
	// epoch is the memo merge epoch at match time. Any later merge may
	// create new bindings for already-matched expressions (through
	// enlarged input classes), so a stale epoch voids the whole set.
	epoch uint64
	// gen increments on every reset so active pursuits detect that
	// their move indexes no longer refer to this set's contents.
	gen uint64
	// next chains sets whose property vectors collide in the hash.
	next *moveSet
}

// reset voids the set for re-collection from scratch. The moves slice is
// dropped (not truncated) so pursuits still iterating over the old
// backing array are unaffected.
func (ms *moveSet) reset(epoch uint64) {
	ms.moves = nil
	ms.matched = 0
	ms.epoch = epoch
	ms.gen++
}

// ensureMoveSet returns the move cache for the required vector, creating
// an empty one if none exists. k must be keyOf(props).
func (g *Group) ensureMoveSet(k physKey, props PhysProps) *moveSet {
	for ms := g.moveSets[k]; ms != nil; ms = ms.next {
		if ms.props.Equal(props) {
			return ms
		}
	}
	if g.moveSets == nil {
		g.moveSets = make(map[physKey]*moveSet)
	}
	ms := &moveSet{props: props, next: g.moveSets[k]}
	g.moveSets[k] = ms
	return ms
}

// moveCount returns the number of cached moves (for statistics).
func (g *Group) moveCount() int {
	n := 0
	for _, ms := range g.moveSets {
		for ; ms != nil; ms = ms.next {
			n += len(ms.moves)
		}
	}
	return n
}

// ID returns the group's identifier.
func (g *Group) ID() GroupID { return g.id }

// LogicalProps returns the logical properties of the equivalence class.
func (g *Group) LogicalProps() LogicalProps { return g.logProps }

// Exprs returns the logical expressions currently in the class. The
// slice must not be modified.
func (g *Group) Exprs() []*Expr { return g.exprs }

// Explored reports whether the group has been expanded to
// transformation-rule fixpoint.
func (g *Group) Explored() bool { return g.explored }

// winnerKey hashes a (required, excluded) pair.
func winnerKey(props, excluded PhysProps) physKey {
	k := uint64(keyOf(props))
	if excluded != nil {
		k = k*1099511628211 ^ excluded.Hash()
	}
	return physKey(k)
}

// sameExcluded compares excluded vectors, treating nil as distinct from
// every non-nil vector.
func sameExcluded(a, b PhysProps) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Equal(b)
}

// lookupWinner returns the winner entry for the pair, or nil.
func (g *Group) lookupWinner(props, excluded PhysProps) *winner {
	return g.lookupWinnerKeyed(winnerKey(props, excluded), props, excluded)
}

// lookupWinnerKeyed is lookupWinner with the property fingerprint
// precomputed; hot paths derive the key once per goal and reuse it for
// every table access instead of re-hashing the vectors.
func (g *Group) lookupWinnerKeyed(k physKey, props, excluded PhysProps) *winner {
	for w := g.winners[k]; w != nil; w = w.next {
		if w.props.Equal(props) && sameExcluded(w.excluded, excluded) {
			return w
		}
	}
	return nil
}

// ensureWinner returns the winner entry for the pair, creating an empty
// one if none exists.
func (g *Group) ensureWinner(props, excluded PhysProps) *winner {
	return g.ensureWinnerKeyed(winnerKey(props, excluded), props, excluded)
}

// ensureWinnerKeyed is ensureWinner with the key precomputed.
func (g *Group) ensureWinnerKeyed(k physKey, props, excluded PhysProps) *winner {
	if w := g.lookupWinnerKeyed(k, props, excluded); w != nil {
		return w
	}
	if g.winners == nil {
		g.winners = make(map[physKey]*winner)
	}
	w := &winner{props: props, excluded: excluded, next: g.winners[k]}
	g.winners[k] = w
	return w
}

// BestPlan returns the best plan recorded for the given physical
// property vector, or nil if the group has not been successfully
// optimized for it.
func (g *Group) BestPlan(props PhysProps) *Plan {
	if w := g.lookupWinner(props, nil); w != nil {
		return w.plan
	}
	return nil
}

// winnerCount returns the number of winner entries (for statistics).
func (g *Group) winnerCount() int {
	n := 0
	for _, w := range g.winners {
		for ; w != nil; w = w.next {
			n++
		}
	}
	return n
}
