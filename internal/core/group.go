package core

// Group is an equivalence class: two collections, one of equivalent
// logical expressions and one of physical plans, plus the logical
// properties shared by every member and a winner table recording, for
// each combination of physical properties already optimized, the best
// plan found — or a remembered failure. Both optimal plans and failures
// are the "interesting facts" the paper's search algorithm captures for
// possible future use.
type Group struct {
	id GroupID

	// exprs is the collection of logical expressions known to be
	// equivalent. exprs[0] is the expression that created the group.
	exprs []*Expr

	// parents lists every expression (in any class) that consumes this
	// class as an input. When this class gains members through a
	// merge, the parents' fired-rule masks are reset so multi-level
	// patterns can re-match through the enlarged class.
	parents []*Expr

	// logProps are the logical properties of the class, derived once
	// from the creating expression before any optimization.
	logProps LogicalProps

	// winners maps a (required, excluded) physical property pair to
	// the optimization outcome for this class under that requirement.
	winners map[physKey]*winner

	// explored is set once the group's logical expressions have been
	// expanded to transformation-rule fixpoint.
	explored bool
	// exploring guards against re-entrant exploration through cyclic
	// rule derivations.
	exploring bool
}

// winner is a winner-table entry: the outcome of optimizing a group for
// one (required, excluded) physical property pair. The excluded vector
// is non-nil only for optimizations of enforcer inputs, where algorithms
// that already qualified for the original requirement are kept out.
type winner struct {
	props    PhysProps
	excluded PhysProps
	// plan and cost hold the best complete plan found, when found.
	// A recorded plan is globally optimal for its property pair:
	// branch-and-bound never prunes a plan cheaper than the winner.
	plan *Plan
	cost Cost
	// failedLimit is set when optimization failed; it records the
	// highest cost limit under which failure was established. A later
	// request with a limit not exceeding failedLimit can fail
	// immediately; a request with a higher limit must re-optimize.
	failedLimit Cost
	// inProgress marks the entry while its optimization is on the call
	// stack, so cyclic derivations do not loop.
	inProgress bool
	// next chains entries whose property pairs collide in the hash.
	next *winner
}

// ID returns the group's identifier.
func (g *Group) ID() GroupID { return g.id }

// LogicalProps returns the logical properties of the equivalence class.
func (g *Group) LogicalProps() LogicalProps { return g.logProps }

// Exprs returns the logical expressions currently in the class. The
// slice must not be modified.
func (g *Group) Exprs() []*Expr { return g.exprs }

// Explored reports whether the group has been expanded to
// transformation-rule fixpoint.
func (g *Group) Explored() bool { return g.explored }

// winnerKey hashes a (required, excluded) pair.
func winnerKey(props, excluded PhysProps) physKey {
	k := uint64(keyOf(props))
	if excluded != nil {
		k = k*1099511628211 ^ excluded.Hash()
	}
	return physKey(k)
}

// sameExcluded compares excluded vectors, treating nil as distinct from
// every non-nil vector.
func sameExcluded(a, b PhysProps) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Equal(b)
}

// lookupWinner returns the winner entry for the pair, or nil.
func (g *Group) lookupWinner(props, excluded PhysProps) *winner {
	for w := g.winners[winnerKey(props, excluded)]; w != nil; w = w.next {
		if w.props.Equal(props) && sameExcluded(w.excluded, excluded) {
			return w
		}
	}
	return nil
}

// ensureWinner returns the winner entry for the pair, creating an empty
// one if none exists.
func (g *Group) ensureWinner(props, excluded PhysProps) *winner {
	if w := g.lookupWinner(props, excluded); w != nil {
		return w
	}
	if g.winners == nil {
		g.winners = make(map[physKey]*winner)
	}
	k := winnerKey(props, excluded)
	w := &winner{props: props, excluded: excluded, next: g.winners[k]}
	g.winners[k] = w
	return w
}

// BestPlan returns the best plan recorded for the given physical
// property vector, or nil if the group has not been successfully
// optimized for it.
func (g *Group) BestPlan(props PhysProps) *Plan {
	if w := g.lookupWinner(props, nil); w != nil {
		return w.plan
	}
	return nil
}

// winnerCount returns the number of winner entries (for statistics).
func (g *Group) winnerCount() int {
	n := 0
	for _, w := range g.winners {
		for ; w != nil; w = w.next {
			n++
		}
	}
	return n
}
