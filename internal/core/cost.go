// Package core implements the model-independent search engine of the
// Volcano optimizer generator (Graefe & McKenna, ICDE 1993).
//
// The engine optimizes an expression over a logical algebra into the
// cheapest equivalent expression over a physical algebra, using directed
// dynamic programming: a top-down, goal-oriented search driven by
// required physical properties, with memoization of both optimal
// sub-plans and optimization failures, and branch-and-bound pruning.
//
// The engine makes no assumptions about the data model. Operators,
// algorithms, rules, costs, and properties are supplied by an optimizer
// implementor through the Model interface; cost, logical properties, and
// physical property vectors are abstract data types manipulated only
// through their methods, exactly as prescribed by the paper.
package core

// Cost is the abstract data type for plan costs. The paper leaves the
// representation to the optimizer implementor: it may be a single number
// (estimated elapsed time), a record (CPU time and I/O count as in
// System R), or any other type, as long as the arithmetic and comparison
// functions below are provided.
//
// Implementations must be immutable: Add returns a new value and leaves
// the receiver unchanged.
type Cost interface {
	// Add returns the sum of the receiver and other.
	Add(other Cost) Cost
	// Sub returns the receiver minus other. It is used to pass cost
	// limits down during the optimization of subexpressions ("Limit -
	// TotalCost" in the paper's Figure 2). Subtracting from an
	// infinite cost must yield an infinite cost.
	Sub(other Cost) Cost
	// Less reports whether the receiver is strictly cheaper than other.
	Less(other Cost) bool
	// String renders the cost for plan display and tracing.
	String() string
}

// ScalableCost is an optional extension of the cost ADT for cost types
// that can be multiplied by a scalar. Guided search uses it to relax an
// infeasible seed limit geometrically (iterative deepening) instead of
// jumping straight to the caller's limit. Cost types that do not
// implement it skip the intermediate stages: after a failed seed stage
// the search falls back to the caller's limit directly.
type ScalableCost interface {
	Cost
	// Scale returns the receiver multiplied by factor (factor > 1 for
	// limit relaxation). Like the other arithmetic methods it must not
	// mutate the receiver.
	Scale(factor float64) Cost
}

// MetricCost is an optional extension of the cost ADT for cost types
// that can project themselves onto a single scalar. The stochastic
// search policies use the metric to turn achieved plan costs into
// UCT rewards and floor priors into first-visit greedy choices; cost
// types without it still work, with selection degrading to promise
// order and visit counts (comparisons via Less only).
type MetricCost interface {
	Cost
	// Metric returns a scalar proxy for the cost, monotone with Less:
	// a.Less(b) implies a.Metric() < b.Metric() for comparable values.
	Metric() float64
}

// costMetric projects a cost onto its scalar metric when the cost type
// provides one.
func costMetric(c Cost) (float64, bool) {
	if m, ok := c.(MetricCost); ok {
		return m.Metric(), true
	}
	return 0, false
}

// CostModel supplies the distinguished cost values the search engine
// needs: a zero for accumulation and an infinity for initial limits.
// It is part of the Model interface.
type CostModel interface {
	// ZeroCost returns the additive identity of the cost ADT.
	ZeroCost() Cost
	// InfiniteCost returns a cost greater than every achievable plan
	// cost. It is the default optimization limit for user queries.
	InfiniteCost() Cost
}

// costLE reports c <= d under the ADT's ordering.
func costLE(c, d Cost) bool { return !d.Less(c) }
