package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelJob describes one independent optimization: a query to build
// and the physical properties its plan must deliver. Each job gets its
// own Optimizer and memo, so jobs share nothing mutable; the Model (and
// anything the Build callback closes over) is the only shared state and
// must therefore be safe for concurrent reads. Models in this repository
// are immutable after construction, matching the paper's generated
// optimizers, whose rule sets and support functions are compiled in.
type ParallelJob struct {
	// Model is the data model to optimize over.
	Model Model
	// Options configures the job's optimizer; nil means defaults.
	Options *Options
	// Build inserts the job's query into the fresh optimizer and
	// returns its root class (typically via InsertQuery). Jobs built
	// through a callback are opaque to the batch deduplicator; prefer
	// Tree when the query is available as an expression tree.
	Build func(o *Optimizer) GroupID
	// Tree is the job's query as a logical expression tree; it is used
	// when Build is nil. Tree-form jobs are canonically fingerprinted,
	// and duplicates within one batch (same model, options, fingerprint,
	// and required properties) optimize exactly once: the duplicates
	// share the unique job's result with Stats.Coalesced set.
	Tree *ExprTree
	// Required is the physical property vector the final plan must
	// deliver; nil means no requirement.
	Required PhysProps
}

// ParallelResult is the outcome of one ParallelJob.
type ParallelResult struct {
	// Plan is the optimal plan, or nil if none exists within budget.
	// When Err is a budget error the plan may be a degraded (anytime)
	// result — the best complete plan found before the stop; see
	// Optimizer.OptimizeWithLimitCtx.
	Plan *Plan
	// Err is the optimizer error (e.g. a typed budget error matching
	// ErrBudget), if any.
	Err error
	// Stats are the job's search-effort counters. For a deduplicated
	// job they are the unique optimization's counters with Coalesced
	// set.
	Stats Stats
}

// ParallelOptimize runs the jobs across a pool of workers and returns
// one result per job, in job order. workers <= 0 uses GOMAXPROCS. The
// pool is shared-nothing: parallelism is across queries, never within
// one search, so each job's result is bit-identical to a serial run —
// the memo, winner tables, and move caches are all per-job.
//
// This is the coarse-grained counterpart to the paper's observation that
// optimization effort is dominated by independent per-query searches; a
// compile server batching many queries scales with cores without any
// locking in the search engine itself.
func ParallelOptimize(jobs []ParallelJob, workers int) []ParallelResult {
	return ParallelOptimizeCtx(context.Background(), jobs, workers)
}

// ParallelOptimizeCtx is ParallelOptimize under a context, giving the
// batch two cancellation scopes: canceling ctx stops the whole pool
// (every unfinished job degrades to its anytime result), while each
// job's own Options.Budget bounds that job alone — armed per job, so one
// pathological query exhausts only its own budget, not the batch's.
//
// Before any worker starts, tree-form jobs (ParallelJob.Tree) are
// deduplicated by canonical fingerprint: a batch of N identical queries
// runs one search, and the other N-1 results are shared copies with
// Stats.Coalesced set. The worker pool is sized to the number of unique
// jobs, never larger.
//
// When every job is tree-form over the same model and the same Options
// with Search.ShareMemo set, the batch instead optimizes over one
// shared memo (see sharedMemoOptimize): overlapping queries share
// exploration and winners, counted in Stats.SharedGroups and
// Stats.SharedWinners, and the whole batch runs under one armed Budget.
// Any batch not meeting those conditions runs the shared-nothing pool
// above, bit-identical to independent optimization.
func ParallelOptimizeCtx(ctx context.Context, jobs []ParallelJob, workers int) []ParallelResult {
	results := make([]ParallelResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}

	if sharedMemoBatch(jobs) {
		return sharedMemoOptimize(ctx, jobs)
	}

	unique, primary := coalesceJobs(jobs)

	if workers <= 0 {
		// Compose outer (per-query) with inner (intra-query) parallelism
		// without oversubscribing: when jobs themselves run the task
		// engine (Options.Search.Workers > 1), the automatic pool size
		// divides the cores among them so outer×inner stays at
		// GOMAXPROCS. An explicit workers count is taken as given.
		inner := 1
		for i := range jobs {
			if o := jobs[i].Options; o != nil && o.Search.Workers > inner {
				inner = o.Search.Workers
			}
		}
		workers = runtime.GOMAXPROCS(0) / inner
		if workers < 1 {
			workers = 1
		}
	}
	if workers > len(unique) {
		workers = len(unique)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(unique) {
					return
				}
				j := unique[i]
				results[j] = runJob(ctx, &jobs[j])
			}
		}()
	}
	wg.Wait()

	for i, p := range primary {
		if p != i {
			r := results[p]
			r.Stats.Coalesced = true
			results[i] = r
		}
	}
	return results
}

// coalesceJobs groups duplicate tree-form jobs. It returns the indexes
// of the unique jobs to run and, for every job, the index of the job
// whose result it receives (itself when unique). Two jobs coalesce only
// when they share the model, the options value (by pointer, nil
// included), the required-property fingerprint, and — verified
// byte-for-byte against the canonical rendering, so fingerprint
// collisions cannot merge distinct queries — the canonical query tree.
func coalesceJobs(jobs []ParallelJob) (unique []int, primary []int) {
	type dupKey struct {
		model Model
		opts  *Options
		fp    Fingerprint
	}
	primary = make([]int, len(jobs))
	unique = make([]int, 0, len(jobs))
	var first map[dupKey]int
	var canons map[dupKey]string
	for i := range jobs {
		j := &jobs[i]
		if j.Build != nil || j.Tree == nil {
			primary[i] = i
			unique = append(unique, i)
			continue
		}
		fp, canon := FingerprintQuery(j.Model, j.Tree, j.Required)
		if first == nil {
			first = make(map[dupKey]int, len(jobs))
			canons = make(map[dupKey]string, len(jobs))
		}
		k := dupKey{model: j.Model, opts: j.Options, fp: fp}
		if p, ok := first[k]; ok && canons[k] == canon {
			primary[i] = p
			continue
		}
		first[k] = i
		canons[k] = canon
		primary[i] = i
		unique = append(unique, i)
	}
	return unique, primary
}

// sharedMemoBatch reports whether the batch qualifies for the
// shared-memo path: every job tree-form, over the same model and the
// same Options (by pointer), with Search.ShareMemo set.
func sharedMemoBatch(jobs []ParallelJob) bool {
	opts := jobs[0].Options
	if opts == nil || !opts.Search.ShareMemo {
		return false
	}
	model := jobs[0].Model
	for i := range jobs {
		j := &jobs[i]
		if j.Build != nil || j.Tree == nil || j.Model != model || j.Options != opts {
			return false
		}
	}
	return true
}

// sharedMemoOptimize runs a qualifying batch over one shared memo: all
// query trees are inserted into a single optimizer's memo — from one
// goroutine per job when the configuration runs more than one search
// worker, exercising the same write-locked path a concurrent search
// uses — and the root goals are optimized together by OptimizeBatchCtx.
// Duplicate queries need no special casing: their trees collapse to the
// same class on insertion and the second root consumes the first's
// winner warm.
//
// Every result carries the batch's shared Stats (SharedGroups,
// SharedWinners, and the combined effort counters); per-job effort is
// not separable once the work is shared.
func sharedMemoOptimize(ctx context.Context, jobs []ParallelJob) []ParallelResult {
	results := make([]ParallelResult, len(jobs))
	o := NewOptimizer(jobs[0].Model, jobs[0].Options)
	roots := make([]GroupID, len(jobs))
	reqs := make([]PhysProps, len(jobs))
	for i := range jobs {
		reqs[i] = jobs[i].Required
	}
	if o.opts.Search.Workers > 1 && len(jobs) > 1 {
		var wg sync.WaitGroup
		wg.Add(len(jobs))
		for i := range jobs {
			go func(i int) {
				defer wg.Done()
				roots[i] = o.memo.InsertTreeConcurrent(jobs[i].Tree, InvalidGroup)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range jobs {
			roots[i] = o.InsertQuery(jobs[i].Tree)
		}
	}
	plans, err := o.OptimizeBatchCtx(ctx, roots, reqs)
	stats := *o.Stats()
	for i := range results {
		results[i] = ParallelResult{Plan: plans[i], Err: err, Stats: stats}
	}
	return results
}

// runJob executes one job on a fresh optimizer.
func runJob(ctx context.Context, job *ParallelJob) ParallelResult {
	o := NewOptimizer(job.Model, job.Options)
	var root GroupID
	if job.Build != nil {
		root = job.Build(o)
	} else {
		root = o.InsertQuery(job.Tree)
	}
	plan, err := o.OptimizeCtx(ctx, root, job.Required)
	return ParallelResult{Plan: plan, Err: err, Stats: *o.Stats()}
}
