package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelJob describes one independent optimization: a query to build
// and the physical properties its plan must deliver. Each job gets its
// own Optimizer and memo, so jobs share nothing mutable; the Model (and
// anything the Build callback closes over) is the only shared state and
// must therefore be safe for concurrent reads. Models in this repository
// are immutable after construction, matching the paper's generated
// optimizers, whose rule sets and support functions are compiled in.
type ParallelJob struct {
	// Model is the data model to optimize over.
	Model Model
	// Options configures the job's optimizer; nil means defaults.
	Options *Options
	// Build inserts the job's query into the fresh optimizer and
	// returns its root class (typically via InsertQuery).
	Build func(o *Optimizer) GroupID
	// Required is the physical property vector the final plan must
	// deliver; nil means no requirement.
	Required PhysProps
}

// ParallelResult is the outcome of one ParallelJob.
type ParallelResult struct {
	// Plan is the optimal plan, or nil if none exists within budget.
	// When Err is a budget error the plan may be a degraded (anytime)
	// result — the best complete plan found before the stop; see
	// Optimizer.OptimizeWithLimitCtx.
	Plan *Plan
	// Err is the optimizer error (e.g. a typed budget error matching
	// ErrBudget), if any.
	Err error
	// Stats are the job's search-effort counters.
	Stats Stats
}

// ParallelOptimize runs the jobs across a pool of workers and returns
// one result per job, in job order. workers <= 0 uses GOMAXPROCS. The
// pool is shared-nothing: parallelism is across queries, never within
// one search, so each job's result is bit-identical to a serial run —
// the memo, winner tables, and move caches are all per-job.
//
// This is the coarse-grained counterpart to the paper's observation that
// optimization effort is dominated by independent per-query searches; a
// compile server batching many queries scales with cores without any
// locking in the search engine itself.
func ParallelOptimize(jobs []ParallelJob, workers int) []ParallelResult {
	return ParallelOptimizeCtx(context.Background(), jobs, workers)
}

// ParallelOptimizeCtx is ParallelOptimize under a context, giving the
// batch two cancellation scopes: canceling ctx stops the whole pool
// (every unfinished job degrades to its anytime result), while each
// job's own Options.Budget bounds that job alone — armed per job, so one
// pathological query exhausts only its own budget, not the batch's.
func ParallelOptimizeCtx(ctx context.Context, jobs []ParallelJob, workers int) []ParallelResult {
	results := make([]ParallelResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				results[i] = runJob(ctx, &jobs[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// runJob executes one job on a fresh optimizer.
func runJob(ctx context.Context, job *ParallelJob) ParallelResult {
	o := NewOptimizer(job.Model, job.Options)
	root := job.Build(o)
	plan, err := o.OptimizeCtx(ctx, root, job.Required)
	return ParallelResult{Plan: plan, Err: err, Stats: *o.Stats()}
}
