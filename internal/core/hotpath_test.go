package core

import (
	"fmt"
	"testing"
)

// The hot-path benchmarks live inside the package so they can target the
// internal move-collection and winner-table machinery directly. They use
// a minimal model — leaf and binary-node operators, one "tint" physical
// property, an enforcer — defined here rather than sharing the external
// test suite's toy model, which package core cannot import.

const (
	hpKindLeaf OpKind = 200 + iota
	hpKindNode
)

type hpLeaf struct{ id int }

func (l *hpLeaf) Kind() OpKind               { return hpKindLeaf }
func (l *hpLeaf) Arity() int                 { return 0 }
func (l *hpLeaf) ArgsEqual(o LogicalOp) bool { return l.id == o.(*hpLeaf).id }
func (l *hpLeaf) ArgsHash() uint64           { return uint64(l.id)*2654435761 + 17 }
func (l *hpLeaf) Name() string               { return "HPLEAF" }
func (l *hpLeaf) String() string             { return fmt.Sprintf("HPLEAF(%d)", l.id) }

type hpNode struct{}

func (*hpNode) Kind() OpKind             { return hpKindNode }
func (*hpNode) Arity() int               { return 2 }
func (*hpNode) ArgsEqual(LogicalOp) bool { return true }
func (*hpNode) ArgsHash() uint64         { return 23 }
func (*hpNode) Name() string             { return "HPNODE" }
func (*hpNode) String() string           { return "HPNODE" }

type hpProps struct{ n int }

func (p *hpProps) String() string { return fmt.Sprintf("n=%d", p.n) }

// hpTint is the physical property: 0 = none required.
type hpTint int

func (t hpTint) Equal(o PhysProps) bool  { return t == o.(hpTint) }
func (t hpTint) Covers(o PhysProps) bool { return o.(hpTint) == 0 || t == o.(hpTint) }
func (t hpTint) Hash() uint64            { return uint64(t) }
func (t hpTint) String() string          { return fmt.Sprintf("tint%d", int(t)) }

type hpCost float64

func (c hpCost) Add(o Cost) Cost  { return c + o.(hpCost) }
func (c hpCost) Sub(o Cost) Cost  { return c - o.(hpCost) }
func (c hpCost) Less(o Cost) bool { return c < o.(hpCost) }
func (c hpCost) String() string   { return fmt.Sprintf("%.1f", float64(c)) }

type hpPhys struct{ name string }

func (p *hpPhys) Name() string   { return p.name }
func (p *hpPhys) String() string { return p.name }

type hpModel struct{}

func (*hpModel) Name() string { return "hotpath" }

func (*hpModel) DeriveLogicalProps(op LogicalOp, inputs []LogicalProps) LogicalProps {
	n := 1
	for _, in := range inputs {
		n += in.(*hpProps).n
	}
	return &hpProps{n: n}
}

func (*hpModel) TransformationRules() []*TransformRule {
	return []*TransformRule{
		{
			Name:    "hp-commute",
			Pattern: P(hpKindNode, Leaf(), Leaf()),
			Apply: func(ctx *RuleContext, b *Binding) []*ExprTree {
				return []*ExprTree{Node(&hpNode{},
					ClassRef(b.Children[1].Group), ClassRef(b.Children[0].Group))}
			},
		},
		{
			Name:    "hp-rotate",
			Pattern: P(hpKindNode, P(hpKindNode, Leaf(), Leaf()), Leaf()),
			Apply: func(ctx *RuleContext, b *Binding) []*ExprTree {
				a := b.Children[0].Children[0].Group
				bb := b.Children[0].Children[1].Group
				c := b.Children[1].Group
				return []*ExprTree{Node(&hpNode{},
					ClassRef(a), Node(&hpNode{}, ClassRef(bb), ClassRef(c)))}
			},
		},
	}
}

func (*hpModel) ImplementationRules() []*ImplRule {
	anyIn := []InputReq{{Required: []PhysProps{hpTint(0), hpTint(0)}}}
	return []*ImplRule{
		{
			Name:    "hpleaf->scan",
			Pattern: P(hpKindLeaf),
			Applicability: func(ctx *RuleContext, b *Binding, required PhysProps) ([]InputReq, bool) {
				return []InputReq{{}}, required.(hpTint) == 0
			},
			Cost: func(ctx *RuleContext, b *Binding, required PhysProps, alt InputReq) Cost {
				return hpCost(1)
			},
			Build: func(ctx *RuleContext, b *Binding, required PhysProps, alt InputReq) PhysicalOp {
				return &hpPhys{name: "hp-scan"}
			},
			Promise: 2,
		},
		{
			Name:    "hpnode->join",
			Pattern: P(hpKindNode, Leaf(), Leaf()),
			Applicability: func(ctx *RuleContext, b *Binding, required PhysProps) ([]InputReq, bool) {
				if required.(hpTint) != 0 {
					return nil, false
				}
				return anyIn, true
			},
			Cost: func(ctx *RuleContext, b *Binding, required PhysProps, alt InputReq) Cost {
				return hpCost(2)
			},
			Build: func(ctx *RuleContext, b *Binding, required PhysProps, alt InputReq) PhysicalOp {
				return &hpPhys{name: "hp-join"}
			},
			Promise: 2,
		},
	}
}

func (*hpModel) Enforcers() []*Enforcer {
	return []*Enforcer{{
		Name: "hp-tinter",
		Relax: func(ctx *RuleContext, lp LogicalProps, required PhysProps) (PhysProps, PhysProps, bool) {
			if required.(hpTint) == 0 {
				return nil, nil, false
			}
			return hpTint(0), required, true
		},
		Cost: func(ctx *RuleContext, lp LogicalProps, required PhysProps) Cost {
			return hpCost(4)
		},
		Build: func(ctx *RuleContext, lp LogicalProps, required PhysProps) PhysicalOp {
			return &hpPhys{name: "hp-tinter"}
		},
	}}
}

func (*hpModel) AnyProps() PhysProps { return hpTint(0) }
func (*hpModel) ZeroCost() Cost      { return hpCost(0) }
func (*hpModel) InfiniteCost() Cost  { return hpCost(1e18) }

// hpChain builds HPNODE(...HPNODE(HPNODE(l0,l1),l2)...,ln).
func hpChain(n int) *ExprTree {
	t := Node(&hpLeaf{id: 0})
	for i := 1; i < n; i++ {
		t = Node(&hpNode{}, t, Node(&hpLeaf{id: i}))
	}
	return t
}

// hpExplored returns an optimizer with an n-leaf chain inserted and its
// root class explored to transformation fixpoint.
func hpExplored(tb testing.TB, n int) (*Optimizer, *Group) {
	tb.Helper()
	o := NewOptimizer(&hpModel{}, nil)
	root := o.InsertQuery(hpChain(n))
	if err := o.Explore(root); err != nil {
		tb.Fatal(err)
	}
	return o, o.memo.Group(root)
}

// BenchmarkCollectMoves compares from-scratch move collection (what
// every fixpoint iteration used to pay) against extending an up-to-date
// cached move set (the incremental steady state).
func BenchmarkCollectMoves(b *testing.B) {
	b.Run("scratch", func(b *testing.B) {
		o, g := hpExplored(b, 6)
		required := o.model.AnyProps()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(o.collectMoves(g, required)) == 0 {
				b.Fatal("no moves")
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		o, g := hpExplored(b, 6)
		required := o.model.AnyProps()
		ms := g.ensureMoveSet(keyOf(required), required)
		ms.epoch = o.memo.mergeEpoch
		o.collectMovesInto(ms, g, required)
		if len(ms.moves) == 0 {
			b.Fatal("no moves")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.collectMovesInto(ms, g, required)
		}
	})
}

// BenchmarkWinnerLookup measures answering a goal from the winner table
// — the engine's most frequent operation once the memo is warm.
func BenchmarkWinnerLookup(b *testing.B) {
	o, g := hpExplored(b, 6)
	required := PhysProps(hpTint(1))
	if p, err := o.Optimize(g.ID(), required); err != nil || p == nil {
		b.Fatalf("optimize: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := o.Optimize(g.ID(), required)
		if err != nil || p == nil {
			b.Fatalf("optimize: %v", err)
		}
	}
}

// TestMergeCarriesWinnerState verifies at the struct level that every
// piece of winner-table state — plans, failure limits, and the
// in-progress flag guarding cyclic derivations — survives a class
// unification into the surviving class's hashed index, and that the
// merged-away class's move caches die while the epoch bump voids all
// others.
func TestMergeCarriesWinnerState(t *testing.T) {
	o := NewOptimizer(&hpModel{}, nil)
	m := o.memo
	ga := m.InsertTree(Node(&hpLeaf{id: 1}), InvalidGroup)
	gb := m.InsertTree(Node(&hpLeaf{id: 2}), InvalidGroup)

	// All state goes on the class that will merge away (gb: higher id).
	loser := m.Group(gb)
	wProg := loser.ensureWinner(hpTint(1), nil)
	wProg.inProgress = true
	wFail := loser.ensureWinner(hpTint(2), nil)
	wFail.failedLimit = hpCost(3)
	wPlan := loser.ensureWinner(hpTint(3), hpTint(1))
	wPlan.plan = &Plan{Cost: hpCost(5)}
	wPlan.cost = hpCost(5)
	ms := loser.ensureMoveSet(keyOf(hpTint(0)), hpTint(0))
	ms.moves = append(ms.moves, Move{Kind: MoveEnforcer})
	epochBefore := m.mergeEpoch

	if got := m.merge(ga, gb); got != m.Find(ga) {
		t.Fatalf("merge representative = %d", got)
	}
	surv := m.Group(ga)
	if surv == loser {
		t.Fatal("expected ga's class to survive")
	}
	if w := surv.lookupWinner(hpTint(1), nil); w == nil || !w.inProgress {
		t.Fatalf("in-progress flag lost: %+v", w)
	}
	if w := surv.lookupWinner(hpTint(2), nil); w == nil || w.failedLimit == nil ||
		w.failedLimit.(hpCost) != 3 {
		t.Fatalf("failure entry lost: %+v", w)
	}
	if w := surv.lookupWinner(hpTint(3), hpTint(1)); w == nil || w.plan == nil ||
		w.cost.(hpCost) != 5 {
		t.Fatalf("winner plan lost: %+v", w)
	}
	if loser.moveSets != nil {
		t.Fatal("merged-away class kept its move caches")
	}
	if m.mergeEpoch != epochBefore+1 {
		t.Fatalf("merge epoch %d, want %d", m.mergeEpoch, epochBefore+1)
	}
}

// TestHotPathAllocs pins allocation counts on the move-collection hot
// path so micro-optimizations do not silently regress.
func TestHotPathAllocs(t *testing.T) {
	o, g := hpExplored(t, 6)
	required := o.model.AnyProps()
	ms := g.ensureMoveSet(keyOf(required), required)
	ms.epoch = o.memo.mergeEpoch
	o.collectMovesInto(ms, g, required)
	if len(ms.moves) == 0 {
		t.Fatal("no moves collected")
	}

	// Extending an up-to-date move set is a watermark comparison and
	// must not allocate.
	if n := testing.AllocsPerRun(100, func() {
		o.collectMovesInto(ms, g, required)
	}); n != 0 {
		t.Errorf("warm collectMovesInto allocates %.1f times per run, want 0", n)
	}

	// A warm winner-table hit may box at most a couple of interface
	// values on its way out; anything more means the lookup path has
	// grown an allocation.
	if p, err := o.Optimize(g.ID(), required); err != nil || p == nil {
		t.Fatalf("optimize: %v", err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if p, err := o.Optimize(g.ID(), required); err != nil || p == nil {
			t.Fatalf("optimize: %v", err)
		}
	}); n > 2 {
		t.Errorf("warm winner-hit Optimize allocates %.1f times per run, want <= 2", n)
	}

	// Repeated memo insertion of an already-stored expression must not
	// allocate: the canonical-input lookup runs over the scratch buffer.
	e := g.Exprs()[0]
	if len(e.Inputs) == 0 {
		t.Fatal("expected a non-leaf expression first in the root class")
	}
	op, inputs := e.Op, e.Inputs
	if n := testing.AllocsPerRun(100, func() {
		o.memo.Insert(op, inputs, InvalidGroup)
	}); n != 0 {
		t.Errorf("duplicate Insert allocates %.1f times per run, want 0", n)
	}
}
