package core

import "fmt"

// TraceEventKind identifies what a TraceEvent reports.
type TraceEventKind uint8

// The trace event kinds, covering the lifecycle of an optimization
// goal, the fate of each move, and the control decisions of the guided
// and budgeted layers.
const (
	// TraceGoalBegin marks the start of one FindBestPlan activation.
	TraceGoalBegin TraceEventKind = iota
	// TraceGoalEnd marks the end of the activation; Cost is set when a
	// winner was recorded.
	TraceGoalEnd
	// TraceMovePursued reports a move being pursued.
	TraceMovePursued
	// TraceMovePruned reports a move abandoned by branch-and-bound
	// after some of its inputs were costed.
	TraceMovePruned
	// TraceMoveSkipped reports a move abandoned on its local cost
	// alone, before any input was optimized.
	TraceMoveSkipped
	// TraceWinner reports an optimal plan recorded in the winner table.
	TraceWinner
	// TraceFailure reports a memoized optimization failure.
	TraceFailure
	// TraceViolation reports the paper's consistency check failing: a
	// plan's delivered physical properties did not cover the request.
	TraceViolation
	// TraceLimitStage reports guided search entering a cost-limit stage.
	TraceLimitStage
	// TraceBudgetStop reports the search stopping on a budget bound or
	// cancellation; Err carries the typed budget error.
	TraceBudgetStop
	// TracePolicyEpisode reports a stochastic search policy completing
	// one rollout episode: Stage is the 1-based episode number, Steps
	// the cumulative search steps, and Cost/Plan the best complete root
	// plan known so far (nil when no episode has completed one yet).
	TracePolicyEpisode
)

// String names the event kind.
func (k TraceEventKind) String() string {
	switch k {
	case TraceGoalBegin:
		return "goal-begin"
	case TraceGoalEnd:
		return "goal-end"
	case TraceMovePursued:
		return "move-pursued"
	case TraceMovePruned:
		return "move-pruned"
	case TraceMoveSkipped:
		return "move-skipped"
	case TraceWinner:
		return "winner"
	case TraceFailure:
		return "failure"
	case TraceViolation:
		return "violation"
	case TraceLimitStage:
		return "limit-stage"
	case TraceBudgetStop:
		return "budget-stop"
	case TracePolicyEpisode:
		return "policy-episode"
	}
	return fmt.Sprintf("TraceEventKind(%d)", uint8(k))
}

// TraceEvent is one structured search-trace event. Which fields are
// populated depends on Kind; unset fields are zero. Events are only
// valid for the duration of the Trace call — Plan in particular aliases
// live search state and must not be mutated.
type TraceEvent struct {
	// Kind says what happened.
	Kind TraceEventKind
	// Group is the equivalence class the event concerns.
	Group GroupID
	// Required is the goal's required physical property vector.
	Required PhysProps
	// Excluded is the goal's excluding vector (enforcer-input goals).
	Excluded PhysProps
	// Delivered is the offending delivered vector of a violation.
	Delivered PhysProps
	// Limit is the goal's or stage's cost limit.
	Limit Cost
	// Cost is the recorded winner's cost.
	Cost Cost
	// Plan is the recorded winner's plan.
	Plan *Plan
	// Move names the implementation rule or enforcer of a move event
	// or violation.
	Move string
	// MoveKind distinguishes algorithm from enforcer move events.
	MoveKind MoveKind
	// Stage is the 1-based guided-search stage number.
	Stage int
	// Steps is the number of search steps taken when a budget stop hit.
	Steps int
	// Err is the typed budget error of a budget stop.
	Err error
	// Worker is the 1-based id of the search worker that emitted the
	// event under the parallel engine (Options.Search.Workers > 1);
	// 0 for events of the sequential engine.
	Worker int
}

// Tracer receives structured search-trace events. Implementations must
// be cheap: the engine calls Trace synchronously from the innermost
// search loops. A Tracer used with ParallelOptimize, or with
// Options.Search.Workers > 1, is shared by all workers and must be
// safe for concurrent use; parallel-search events carry the emitting
// worker's id in TraceEvent.Worker.
type Tracer interface {
	Trace(ev TraceEvent)
}

// FormatTraceEvent renders an event as the engine's classic one-line
// text form. Winner, failure, and violation lines are byte-identical to
// the printf-style traces earlier versions emitted, so tooling that
// scrapes them keeps working.
func FormatTraceEvent(ev TraceEvent) string {
	if ev.Worker > 0 {
		return fmt.Sprintf("[w%d] %s", ev.Worker, formatTraceEvent(ev))
	}
	return formatTraceEvent(ev)
}

func formatTraceEvent(ev TraceEvent) string {
	switch ev.Kind {
	case TraceGoalBegin:
		return fmt.Sprintf("goal group=%d props=%s limit=%s", ev.Group, ev.Required, ev.Limit)
	case TraceGoalEnd:
		if ev.Cost != nil {
			return fmt.Sprintf("goal-end group=%d props=%s cost=%s", ev.Group, ev.Required, ev.Cost)
		}
		return fmt.Sprintf("goal-end group=%d props=%s (no plan)", ev.Group, ev.Required)
	case TraceMovePursued:
		return fmt.Sprintf("pursue %s %s group=%d", moveKindWord(ev.MoveKind), ev.Move, ev.Group)
	case TraceMovePruned:
		return fmt.Sprintf("prune %s %s group=%d", moveKindWord(ev.MoveKind), ev.Move, ev.Group)
	case TraceMoveSkipped:
		return fmt.Sprintf("skip %s %s group=%d (local cost breaks limit)", moveKindWord(ev.MoveKind), ev.Move, ev.Group)
	case TraceWinner:
		return fmt.Sprintf("winner group=%d props=%s cost=%s plan=%s", ev.Group, ev.Required, ev.Cost, ev.Plan)
	case TraceFailure:
		return fmt.Sprintf("failure group=%d props=%s limit=%s", ev.Group, ev.Required, ev.Limit)
	case TraceViolation:
		return fmt.Sprintf("consistency violation: %s %s delivered %s for required %s",
			moveKindWord(ev.MoveKind), ev.Move, ev.Delivered, ev.Required)
	case TraceLimitStage:
		return fmt.Sprintf("stage %d limit=%s", ev.Stage, ev.Limit)
	case TraceBudgetStop:
		return fmt.Sprintf("budget stop: %v after %d steps", ev.Err, ev.Steps)
	case TracePolicyEpisode:
		if ev.Cost != nil {
			return fmt.Sprintf("episode %d best=%s steps=%d", ev.Stage, ev.Cost, ev.Steps)
		}
		return fmt.Sprintf("episode %d (no complete plan yet) steps=%d", ev.Stage, ev.Steps)
	}
	return fmt.Sprintf("%s group=%d", ev.Kind, ev.Group)
}

// moveKindWord is the word the classic trace lines use for a move kind.
func moveKindWord(k MoveKind) string {
	if k == MoveEnforcer {
		return "enforcer"
	}
	return "rule"
}

// textTracer renders selected events through FormatTraceEvent.
type textTracer struct {
	emit func(line string)
	mask uint32
}

func (t *textTracer) Trace(ev TraceEvent) {
	if t.mask&(1<<uint(ev.Kind)) != 0 {
		t.emit(FormatTraceEvent(ev))
	}
}

// TextTracer adapts a line sink into a Tracer using FormatTraceEvent.
// With no kinds listed every event is rendered; otherwise only events
// of the listed kinds are.
func TextTracer(emit func(line string), kinds ...TraceEventKind) Tracer {
	t := &textTracer{emit: emit}
	if len(kinds) == 0 {
		t.mask = ^uint32(0)
	} else {
		for _, k := range kinds {
			t.mask |= 1 << uint(k)
		}
	}
	return t
}

// ClassicTracer is the text adapter preserving the engine's historical
// trace output: only winner, failure, and violation events, in their
// original printf formats. volcano-explain and volcano-repl use it for
// their -trace modes.
func ClassicTracer(emit func(line string)) Tracer {
	return TextTracer(emit, TraceWinner, TraceFailure, TraceViolation)
}
