package vdb_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/exec"
)

// rowKey renders a row for order-insensitive multiset comparison.
func rowKey(r exec.Row) string { return fmt.Sprintf("%v", r) }

func sortedKeys(rows []exec.Row) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = rowKey(r)
	}
	sort.Strings(keys)
	return keys
}

// TestQueryBatchMatchesSingle: a batch of overlapping statements run
// through the shared memo and the Materialize/Reuse post-pass returns,
// per statement, exactly the rows the statement returns alone.
func TestQueryBatchMatchesSingle(t *testing.T) {
	db := openDemo(t)
	sqls := []string{
		"SELECT R1.ja, COUNT(*) FROM R1, R2 WHERE R1.ja = R2.ja GROUP BY R1.ja",
		"SELECT R1.id, R1.ja FROM R1, R2 WHERE R1.ja = R2.ja ORDER BY R1.id",
		"SELECT R1.id, R1.ja FROM R1 WHERE R1.v < 500 ORDER BY R1.ja",
		"SELECT R1.ja, COUNT(*) FROM R1, R2 WHERE R1.ja = R2.ja GROUP BY R1.ja",
	}
	batch, err := db.QueryBatch(sqls)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(sqls) {
		t.Fatalf("%d results for %d statements", len(batch.Results), len(sqls))
	}
	for i, sql := range sqls {
		solo, err := db.Query(sql)
		if err != nil {
			t.Fatalf("single statement %d: %v", i, err)
		}
		got, want := sortedKeys(batch.Results[i].Rows), sortedKeys(solo.Rows)
		if len(got) != len(want) {
			t.Fatalf("statement %d: %d rows in batch, %d alone", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("statement %d row %d: batch %q != solo %q", i, j, got[j], want[j])
			}
		}
	}
	// Two statements are verbatim duplicates and two more share the
	// R1 ⋈ R2 join, so the shared memo must report overlap.
	if batch.Stats.SharedGroups == 0 {
		t.Error("overlapping batch reports no shared groups")
	}
	for _, r := range batch.Results {
		if r.Degraded {
			t.Errorf("unbudgeted batch degraded: %v", r.StopReason)
		}
	}
}

// TestQueryBatchBypassesPlanCache: batch plans are batch-relative (a
// Reuse node rescans a spool only its own batch fills), so QueryBatch
// must neither consult nor populate the plan cache — and must say so
// explicitly by reporting Cached false on every Result, even for a
// statement whose solo plan is already cached.
func TestQueryBatchBypassesPlanCache(t *testing.T) {
	db := openDemoCached(t)
	sql := "SELECT R1.id, R1.ja FROM R1, R2 WHERE R1.ja = R2.ja ORDER BY R1.id"
	// Warm the cache with the statement, solo.
	if _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
	warm, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("solo repeat not served from the plan cache")
	}
	before := db.PlanCache().Counters()
	batch, err := db.QueryBatch([]string{
		sql,
		"SELECT R1.ja, COUNT(*) FROM R1, R2 WHERE R1.ja = R2.ja GROUP BY R1.ja",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range batch.Results {
		if r.Cached {
			t.Errorf("batch statement %d reports Cached despite the bypass", i)
		}
	}
	after := db.PlanCache().Counters()
	if after.CacheHits != before.CacheHits || after.CacheMisses != before.CacheMisses || after.Entries != before.Entries {
		t.Errorf("batch touched the plan cache: before %+v, after %+v", before, after)
	}
}

// TestQueryBatchRejectsParams: batch statements must be fully
// specified — placeholders have no binding step in the batch API.
func TestQueryBatchRejectsParams(t *testing.T) {
	db := openDemo(t)
	_, err := db.QueryBatch([]string{"SELECT R1.id FROM R1 WHERE R1.v < ?"})
	if err == nil {
		t.Fatal("parameterized batch statement accepted")
	}
}

// TestPrepareBatchPlansExecutable: PrepareBatch's plans execute against
// one shared spool store in statement order.
func TestPrepareBatchPlansExecutable(t *testing.T) {
	db := openDemo(t)
	sqls := []string{
		"SELECT R1.id, R1.ja FROM R1, R2 WHERE R1.ja = R2.ja ORDER BY R1.id",
		"SELECT R1.ja, COUNT(*) FROM R1, R2 WHERE R1.ja = R2.ja GROUP BY R1.ja",
	}
	plans, batch, err := db.PrepareBatch(sqls)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != len(sqls) {
		t.Fatalf("%d plans for %d statements", len(plans), len(sqls))
	}
	if batch.Stats.SharedGroups == 0 {
		t.Error("overlapping prepare reports no shared groups")
	}
	for i, p := range plans {
		if p == nil {
			t.Fatalf("statement %d: nil plan", i)
		}
	}
}
