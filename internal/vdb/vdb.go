// Package vdb is the batteries-included façade over the repository's
// pieces: a catalog, a Volcano-generated optimizer, and the iterator
// execution engine behind a single query interface. It is what a
// downstream user adopts when they want "the database", not the
// optimizer-construction toolkit.
//
//	db := vdb.Open(catalog, data, nil)
//	res, err := db.Query("SELECT e.id FROM emp e ... ORDER BY ...")
//	res, err := db.QueryParams("SELECT ... WHERE v < $1", 42)
package vdb

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/internal/relopt"
	"repro/internal/sqlish"
)

// Options tune a database instance.
type Options struct {
	// Config is the optimizer model configuration; the zero value is
	// completed with defaults.
	Config relopt.Config
	// Search tunes the search engine (ablation toggles, tracing).
	Search core.Options
	// Guided seeds branch-and-bound with the model's greedy
	// join-ordering planner; it is a convenience for callers that do
	// not hold the catalog yet (OpenDir), equivalent to setting
	// Search.SeedPlanner. An explicit Search.SeedPlanner wins.
	Guided bool
	// DynamicBuckets, when non-empty, makes Prepare of parameterized
	// queries produce dynamic plans over these selectivity
	// assumptions; nil uses the built-in buckets.
	DynamicBuckets []float64
}

// DB is one database instance: schema, statistics, data, and the
// optimizer generated for them.
type DB struct {
	cat  *rel.Catalog
	data *exec.DB
	opts Options
}

// Open assembles a database from a catalog and table contents (rows
// aligned with each table's column order, as produced by datagen.Rows).
func Open(cat *rel.Catalog, data map[string][][]int64, opts *Options) *DB {
	db := &DB{cat: cat, data: exec.FromData(cat, data)}
	if opts != nil {
		db.opts = *opts
	}
	if db.opts.Guided && db.opts.Search.SeedPlanner == nil {
		db.opts.Search.SeedPlanner = relopt.New(cat, db.opts.Config).SeedPlanner()
	}
	return db
}

// Catalog exposes the schema and statistics.
func (db *DB) Catalog() *rel.Catalog { return db.cat }

// Result is an executed query.
type Result struct {
	// Rows are the output tuples.
	Rows []exec.Row
	// Columns names the output columns; aggregate outputs are "agg".
	Columns []string
	// Plan is the executed physical plan.
	Plan *core.Plan
	// Stats are the optimizer's search counters.
	Stats core.Stats
}

// Stmt is a prepared statement: parsed, optimized (statically or
// dynamically), and executable many times with different parameters.
type Stmt struct {
	db      *DB
	plan    *core.Plan
	dynamic bool
	nparams int
}

// Prepare parses and optimizes a statement. Queries with `$n`
// parameters get a dynamic plan (a choose-plan over selectivity
// regions); fully specified queries get a single optimal plan.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	st, err := sqlish.Parse(db.cat, sql)
	if err != nil {
		return nil, err
	}
	nparams := countParams(st.Tree)
	if nparams > 1 {
		return nil, fmt.Errorf("vdb: at most one parameter is supported, query has %d", nparams)
	}
	if nparams == 1 {
		res, err := relopt.OptimizeDynamic(db.cat, db.opts.Config, st.Tree, st.Required, db.opts.DynamicBuckets)
		if err != nil {
			return nil, err
		}
		return &Stmt{db: db, plan: res.Plan, dynamic: res.Alternatives > 1, nparams: 1}, nil
	}
	opts := db.opts.Search
	opt := core.NewOptimizer(relopt.New(db.cat, db.opts.Config), &opts)
	root := opt.InsertQuery(st.Tree)
	plan, err := opt.Optimize(root, st.Required)
	if err != nil {
		return nil, err
	}
	if plan == nil {
		return nil, fmt.Errorf("vdb: no plan satisfies the query")
	}
	return &Stmt{db: db, plan: plan}, nil
}

// Exec runs the prepared statement with the given parameter values.
func (s *Stmt) Exec(params ...int64) (*Result, error) {
	if len(params) != s.nparams {
		return nil, fmt.Errorf("vdb: statement needs %d parameters, got %d", s.nparams, len(params))
	}
	rows, schema, err := exec.RunParams(s.db.data, s.plan, params)
	if err != nil {
		return nil, err
	}
	return &Result{Rows: rows, Columns: columnNames(s.db.cat, schema), Plan: s.plan}, nil
}

// Plan exposes the prepared plan (a ChoosePlan root for dynamic
// statements).
func (s *Stmt) Plan() *core.Plan { return s.plan }

// Dynamic reports whether the statement carries runtime alternatives.
func (s *Stmt) Dynamic() bool { return s.dynamic }

// Query parses, optimizes, and executes a fully specified statement.
func (db *DB) Query(sql string) (*Result, error) {
	st, err := sqlish.Parse(db.cat, sql)
	if err != nil {
		return nil, err
	}
	if countParams(st.Tree) != 0 {
		return nil, fmt.Errorf("vdb: parameterized query requires Prepare/Exec or QueryParams")
	}
	opts := db.opts.Search
	opt := core.NewOptimizer(relopt.New(db.cat, db.opts.Config), &opts)
	root := opt.InsertQuery(st.Tree)
	plan, err := opt.Optimize(root, st.Required)
	if err != nil {
		return nil, err
	}
	if plan == nil {
		return nil, fmt.Errorf("vdb: no plan satisfies the query")
	}
	rows, schema, err := exec.Run(db.data, plan)
	if err != nil {
		return nil, err
	}
	return &Result{
		Rows:    rows,
		Columns: columnNames(db.cat, schema),
		Plan:    plan,
		Stats:   *opt.Stats(),
	}, nil
}

// QueryParams prepares and executes a parameterized statement in one
// step.
func (db *DB) QueryParams(sql string, params ...int64) (*Result, error) {
	stmt, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return stmt.Exec(params...)
}

// Explain parses and optimizes without executing, returning the plan
// rendering.
func (db *DB) Explain(sql string) (string, error) {
	st, err := sqlish.Parse(db.cat, sql)
	if err != nil {
		return "", err
	}
	opts := db.opts.Search
	opt := core.NewOptimizer(relopt.New(db.cat, db.opts.Config), &opts)
	root := opt.InsertQuery(st.Tree)
	plan, err := opt.Optimize(root, st.Required)
	if err != nil {
		return "", err
	}
	if plan == nil {
		return "", fmt.Errorf("vdb: no plan satisfies the query")
	}
	return plan.Format(), nil
}

// countParams counts distinct parameter indexes in selection predicates.
func countParams(t *core.ExprTree) int {
	seen := map[int]bool{}
	var walk func(*core.ExprTree)
	walk = func(n *core.ExprTree) {
		if n.Op != nil {
			if s, ok := n.Op.(*rel.Select); ok && s.Pred.IsParam() {
				seen[s.Pred.Param] = true
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t)
	return len(seen)
}

// columnNames renders a schema with catalog names.
func columnNames(cat *rel.Catalog, schema *exec.Schema) []string {
	out := make([]string, 0, len(schema.Cols))
	for _, c := range schema.Cols {
		if c == rel.InvalidCol {
			out = append(out, "agg")
			continue
		}
		out = append(out, cat.Column(c).Qualified())
	}
	return out
}
