// Package vdb is the batteries-included façade over the repository's
// pieces: a catalog, a Volcano-generated optimizer, and the iterator
// execution engine behind a single query interface. It is what a
// downstream user adopts when they want "the database", not the
// optimizer-construction toolkit.
//
//	db := vdb.Open(catalog, data, nil)
//	res, err := db.Query("SELECT e.id FROM emp e ... ORDER BY ...")
//	res, err := db.QueryParams("SELECT ... WHERE v < $1", 42)
package vdb

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plancache"
	"repro/internal/rel"
	"repro/internal/relopt"
	"repro/internal/sqlish"
)

// Options tune a database instance.
type Options struct {
	// Config is the optimizer model configuration; the zero value is
	// completed with defaults.
	Config relopt.Config
	// Search tunes the search engine (ablation toggles, budgets,
	// tracing). Search.Budget bounds every optimization the database
	// runs; a budget-stopped optimization degrades to the best plan
	// found (see Result.Degraded) instead of failing the query.
	Search core.Options
	// Guided seeds branch-and-bound with the model's greedy
	// join-ordering planner; it is a convenience for callers that do
	// not hold the catalog yet (OpenDir), equivalent to setting
	// Search.Guidance.SeedPlanner. An explicit SeedPlanner wins.
	Guided bool
	// DynamicBuckets, when non-empty, makes Prepare of parameterized
	// queries produce dynamic plans over these selectivity
	// assumptions; nil uses the built-in buckets.
	DynamicBuckets []float64
	// CacheBytes enables the cross-query plan cache, bounded to this
	// many bytes; 0 disables caching. Cached plans are keyed by
	// canonical query fingerprint (commuted-join spellings of the same
	// query share an entry), verified byte-for-byte on hit, and
	// invalidated by catalog version bumps; concurrent identical
	// queries coalesce into one optimization. Parameterized statements
	// are cached by shape. Budget-degraded plans are never cached.
	CacheBytes int64
	// Exec tunes the execution engine: batch size, exchange producer
	// parallelism, scan-filter fusion, and columnar kernel selection
	// (exec.Options.Columnar).
	Exec exec.Options
}

// DB is one database instance: schema, statistics, data, and the
// optimizer generated for them.
type DB struct {
	cat  *rel.Catalog
	data *exec.DB
	opts Options
	// model is the read-only optimizer model used for fingerprinting;
	// nil when the plan cache is disabled.
	model *relopt.Model
	// cache is the cross-query plan cache; nil when disabled.
	cache *plancache.Cache
}

// Open assembles a database from a catalog and table contents (rows
// aligned with each table's column order, as produced by datagen.Rows).
func Open(cat *rel.Catalog, data map[string][][]int64, opts *Options) *DB {
	db := &DB{cat: cat, data: exec.FromData(cat, data)}
	if opts != nil {
		db.opts = *opts
	}
	if db.opts.Guided && db.opts.Search.Guidance.SeedPlanner == nil {
		db.opts.Search.Guidance.SeedPlanner = relopt.New(cat, db.opts.Config).SeedPlanner()
	}
	if db.opts.CacheBytes > 0 {
		db.model = relopt.New(cat, db.opts.Config)
		db.cache = plancache.New(plancache.Options{MaxBytes: db.opts.CacheBytes})
	}
	return db
}

// Catalog exposes the schema and statistics.
func (db *DB) Catalog() *rel.Catalog { return db.cat }

// PlanCache exposes the plan cache for observability (counters,
// explicit invalidation); nil when Options.CacheBytes is 0.
func (db *DB) PlanCache() *plancache.Cache { return db.cache }

// ExecCounters exposes the execution engine's cumulative counters for
// observability.
func (db *DB) ExecCounters() exec.Counters { return db.data.Counters() }

// Result is the uniform outcome envelope of every entry point:
// QueryCtx fills Rows, ExplainCtx fills PlanText, PrepareCtx fills the
// plan-shaped fields (exposed via Stmt.Result), and QueryBatchCtx
// returns one Result per statement. A network tier can serialize a
// Result directly; nothing about how a statement was served (cache
// hit, coalesced optimization, budget degradation, timing) requires a
// second lookup.
type Result struct {
	// Rows are the output tuples; nil when the statement was not
	// executed (Prepare, Explain).
	Rows []exec.Row
	// Columns names the output columns; aggregate outputs are "agg".
	Columns []string
	// Plan is the chosen physical plan (a choose-plan root for dynamic
	// statements).
	Plan *core.Plan
	// PlanText is the rendered plan, with leading "-- degraded:" /
	// "-- cached" notes; filled by ExplainCtx only.
	PlanText string
	// Cost is the plan's estimated cost (Plan.Cost, hoisted so
	// envelope consumers need not walk the plan).
	Cost core.Cost
	// Stats are the search counters of the optimization that produced
	// the plan — the original run's counters when the plan was served
	// from the cache (Stats.CacheHit set) or coalesced
	// (Stats.Coalesced set). Batch results share the batch's counters.
	Stats core.Stats
	// Degraded reports that a budget stopped the optimizer before it
	// could prove the plan optimal: the statement still ran, on the
	// best complete plan found. StopReason names the exhausted bound.
	Degraded bool
	// StopReason is the typed budget error (matching core.ErrBudget)
	// behind Degraded; nil for fully optimized statements.
	StopReason error
	// Cached reports that the plan was served from the plan cache.
	// Always false for batch results: sharing decisions are
	// batch-relative, so QueryBatchCtx bypasses the cache entirely.
	Cached bool
	// Coalesced reports that the plan was shared from an identical
	// in-flight optimization instead of running a duplicate search.
	Coalesced bool
	// Dynamic reports a choose-plan over selectivity regions
	// (parameterized statements).
	Dynamic bool
	// NParams is the statement's parameter count.
	NParams int
	// OptimizeTime is the wall time this call spent obtaining the plan
	// (near zero for cache hits); ExecTime is the wall time executing
	// it. Both are zero for phases the entry point did not run.
	OptimizeTime time.Duration
	// ExecTime is the wall time spent executing the plan.
	ExecTime time.Duration
}

// resultFrom assembles the envelope for a plan served by serve().
func resultFrom(entry *plancache.Entry, outcome plancache.Outcome, optTime time.Duration) *Result {
	return &Result{
		Plan:         entry.Plan,
		Cost:         entry.Plan.Cost,
		Stats:        serveStats(entry, outcome),
		Degraded:     entry.Degraded != nil,
		StopReason:   entry.Degraded,
		Cached:       outcome == plancache.OutcomeHit,
		Coalesced:    outcome == plancache.OutcomeCoalesced,
		Dynamic:      entry.Dynamic,
		NParams:      entry.NParams,
		OptimizeTime: optTime,
	}
}

// budgetKey carries a per-request optimization budget in a context.
type budgetKey struct{}

// WithBudget returns a context carrying a per-request optimization
// budget that overrides Options.Search.Budget for every statement
// optimized under it. This is how a serving tier maps request
// deadlines and overload-degradation ladders onto the optimizer
// without holding one DB per budget level: cache hits are unaffected
// (the stored plan is already proven optimal), budget-degraded plans
// are never inserted into the cache, and a coalesced caller shares the
// in-flight optimization's budget, not its own. Dynamic-plan
// optimization of parameterized statements is not budgeted.
func WithBudget(ctx context.Context, b core.Budget) context.Context {
	return context.WithValue(ctx, budgetKey{}, b)
}

// budgetFrom extracts a WithBudget override, if any.
func budgetFrom(ctx context.Context) (core.Budget, bool) {
	b, ok := ctx.Value(budgetKey{}).(core.Budget)
	return b, ok
}

// policyKey carries a per-request search-policy override in a context.
type policyKey struct{}

// WithSearchPolicy returns a context carrying a per-request search
// policy that overrides Options.Search.Search.Policy for every
// statement optimized under it. A serving tier combines it with
// WithBudget to shift admitted-under-pressure requests onto the
// budgeted stochastic policies (core.PolicyMCTS, core.PolicyWidening)
// instead of merely truncating the exhaustive search. Statements
// optimized under a policy override bypass the plan cache entirely:
// a stochastic policy's plan is best-effort, not proven optimal, and
// must not be served later to full-budget requests.
func WithSearchPolicy(ctx context.Context, p core.SearchPolicy) context.Context {
	return context.WithValue(ctx, policyKey{}, p)
}

// searchPolicyFrom extracts a WithSearchPolicy override, if any.
func searchPolicyFrom(ctx context.Context) (core.SearchPolicy, bool) {
	p, ok := ctx.Value(policyKey{}).(core.SearchPolicy)
	return p, ok
}

// optimize runs the search engine over a parsed statement under the
// database's configured search options and the caller's context. A
// budget-stopped search with a usable anytime plan is reported as a
// degraded success; only a stop with no plan at all (or a non-budget
// error) fails. The returned stats include StopReason for degraded runs.
func (db *DB) optimize(ctx context.Context, tree *core.ExprTree, required core.PhysProps) (*core.Plan, core.Stats, error, error) {
	opts := db.opts.Search
	if b, ok := budgetFrom(ctx); ok {
		opts.Budget = b
	}
	if p, ok := searchPolicyFrom(ctx); ok {
		opts.Search.Policy = p
	}
	if err := opts.Validate(); err != nil {
		return nil, core.Stats{}, nil, err
	}
	opt := core.NewOptimizer(relopt.New(db.cat, db.opts.Config), &opts)
	root := opt.InsertQuery(tree)
	plan, err := opt.OptimizeCtx(ctx, root, required)
	stats := *opt.Stats()
	if err != nil {
		if plan != nil && errors.Is(err, core.ErrBudget) {
			return plan, stats, err, nil
		}
		return nil, stats, nil, err
	}
	if plan == nil {
		return nil, stats, nil, fmt.Errorf("vdb: no plan satisfies the query")
	}
	return plan, stats, nil, nil
}

// serve optimizes a parsed statement through the plan cache when one is
// configured: a verified cached entry if present, a shared in-flight
// result if an identical statement is being optimized concurrently, or
// a fresh optimization otherwise. Fresh results are inserted unless the
// search was budget-degraded. Without a cache it simply optimizes.
func (db *DB) serve(ctx context.Context, st *sqlish.Statement, nparams int) (*plancache.Entry, plancache.Outcome, error) {
	compute := func() (*plancache.Entry, error) {
		if nparams == 1 {
			res, err := relopt.OptimizeDynamic(db.cat, db.opts.Config, st.Tree, st.Required, db.opts.DynamicBuckets)
			if err != nil {
				return nil, err
			}
			return &plancache.Entry{Plan: res.Plan, Cost: res.Plan.Cost, Dynamic: res.Alternatives > 1, NParams: 1}, nil
		}
		plan, stats, degraded, err := db.optimize(ctx, st.Tree, st.Required)
		if err != nil {
			return nil, err
		}
		return &plancache.Entry{Plan: plan, Cost: plan.Cost, Stats: stats, Degraded: degraded}, nil
	}
	if _, overridden := searchPolicyFrom(ctx); db.cache == nil || overridden {
		// A per-request policy override bypasses the cache both ways: a
		// stochastic plan must not be cached for full-budget callers,
		// and a cached exhaustive entry would silently ignore the
		// caller's requested policy.
		e, err := compute()
		return e, plancache.OutcomeMiss, err
	}
	fp, canon := core.FingerprintQuery(db.model, st.Tree, st.Required)
	return db.cache.Do(fp, canon, compute)
}

// serveStats returns the entry's search stats annotated with how the
// entry was served.
func serveStats(e *plancache.Entry, outcome plancache.Outcome) core.Stats {
	stats := e.Stats
	switch outcome {
	case plancache.OutcomeHit:
		stats.CacheHit = true
	case plancache.OutcomeCoalesced:
		stats.Coalesced = true
	}
	return stats
}

// Stmt is a prepared statement: parsed, optimized (statically or
// dynamically), and executable many times with different parameters.
// Its prepare-time envelope — plan, cost, cache/degradation markers,
// optimization timing — is the same Result every other entry point
// returns (see Result).
type Stmt struct {
	db  *DB
	res *Result
}

// Prepare parses and optimizes a statement; see PrepareCtx.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	return db.PrepareCtx(context.Background(), sql)
}

// PrepareCtx parses and optimizes a statement. Queries with `$n`
// parameters get a dynamic plan (a choose-plan over selectivity
// regions); fully specified queries get a single optimal plan. The
// context cancels or deadline-bounds the optimization: a budget-stopped
// search yields a statement carrying the best plan found (see
// Stmt.Degraded) rather than an error.
func (db *DB) PrepareCtx(ctx context.Context, sql string) (*Stmt, error) {
	st, err := sqlish.Parse(db.cat, sql)
	if err != nil {
		return nil, err
	}
	nparams := countParams(st.Tree)
	if nparams > 1 {
		return nil, fmt.Errorf("vdb: at most one parameter is supported, query has %d", nparams)
	}
	start := time.Now()
	entry, outcome, err := db.serve(ctx, st, nparams)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, res: resultFrom(entry, outcome, time.Since(start))}, nil
}

// Result exposes the prepare-time envelope: plan, cost,
// cache/degradation markers, and optimization timing, with no rows.
func (s *Stmt) Result() *Result { return s.res }

// Degraded reports the budget error that stopped the statement's
// optimization, or nil when the plan is proven optimal. Degraded plans
// are never inserted into the plan cache, so Cached and Degraded are
// mutually exclusive.
//
// Deprecated: use Result().StopReason (and Result().Degraded).
func (s *Stmt) Degraded() error { return s.res.StopReason }

// Cached reports whether the statement's plan was served from the plan
// cache rather than optimized by this Prepare call.
func (s *Stmt) Cached() bool { return s.res.Cached }

// Exec runs the prepared statement with the given parameter values; see
// ExecCtx.
func (s *Stmt) Exec(params ...int64) (*Result, error) {
	return s.ExecCtx(context.Background(), params...)
}

// ExecCtx runs the prepared statement with the given parameter values
// under a context: canceling it tears down the executing iterator tree
// (including any exchange workers) and fails the call. The returned
// Result carries the statement's prepare-time envelope (plan, cost,
// cache/degradation markers) plus this execution's rows and timing.
func (s *Stmt) ExecCtx(ctx context.Context, params ...int64) (*Result, error) {
	if len(params) != s.res.NParams {
		return nil, fmt.Errorf("vdb: statement needs %d parameters, got %d", s.res.NParams, len(params))
	}
	start := time.Now()
	rows, schema, err := exec.RunOpts(ctx, s.db.data, s.res.Plan, params, s.db.opts.Exec)
	if err != nil {
		return nil, err
	}
	res := *s.res
	res.Rows = rows
	res.Columns = columnNames(s.db.cat, schema)
	res.ExecTime = time.Since(start)
	return &res, nil
}

// Plan exposes the prepared plan (a ChoosePlan root for dynamic
// statements).
func (s *Stmt) Plan() *core.Plan { return s.res.Plan }

// Dynamic reports whether the statement carries runtime alternatives.
func (s *Stmt) Dynamic() bool { return s.res.Dynamic }

// Query parses, optimizes, and executes a fully specified statement;
// see QueryCtx.
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryCtx(context.Background(), sql)
}

// QueryCtx parses, optimizes, and executes a fully specified statement.
// The context bounds both phases: during optimization, canceling it (or
// exceeding the configured Search.Budget) degrades the query to the best
// complete plan found — the query still runs, and Result.Degraded
// explains what stopped the search. During execution, canceling the
// context tears down the iterator tree (including any exchange workers)
// and fails the query.
func (db *DB) QueryCtx(ctx context.Context, sql string) (*Result, error) {
	st, err := sqlish.Parse(db.cat, sql)
	if err != nil {
		return nil, err
	}
	if countParams(st.Tree) != 0 {
		return nil, fmt.Errorf("vdb: parameterized query requires Prepare/Exec or QueryParams")
	}
	start := time.Now()
	entry, outcome, err := db.serve(ctx, st, 0)
	if err != nil {
		return nil, err
	}
	res := resultFrom(entry, outcome, time.Since(start))
	start = time.Now()
	rows, schema, err := exec.RunOpts(ctx, db.data, entry.Plan, nil, db.opts.Exec)
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.Columns = columnNames(db.cat, schema)
	res.ExecTime = time.Since(start)
	return res, nil
}

// QueryParams prepares and executes a parameterized statement in one
// step; see QueryParamsCtx.
func (db *DB) QueryParams(sql string, params ...int64) (*Result, error) {
	return db.QueryParamsCtx(context.Background(), sql, params...)
}

// QueryParamsCtx prepares and executes a parameterized statement in
// one step under a context; the Result envelope covers both phases.
func (db *DB) QueryParamsCtx(ctx context.Context, sql string, params ...int64) (*Result, error) {
	stmt, err := db.PrepareCtx(ctx, sql)
	if err != nil {
		return nil, err
	}
	return stmt.ExecCtx(ctx, params...)
}

// Explain parses and optimizes without executing, returning the plan
// rendering.
//
// Deprecated: use ExplainCtx, whose Result carries the rendering in
// PlanText alongside the full envelope.
func (db *DB) Explain(sql string) (string, error) {
	res, err := db.ExplainCtx(context.Background(), sql)
	if err != nil {
		return "", err
	}
	return res.PlanText, nil
}

// ExplainCtx parses and optimizes without executing. The Result's
// PlanText holds the plan rendering: a budget-stopped optimization
// renders the degraded plan with a leading note naming the exhausted
// bound, and a cache-served plan carries a "-- cached" note.
// Parameterized statements explain the same dynamic plan Prepare would
// build.
func (db *DB) ExplainCtx(ctx context.Context, sql string) (*Result, error) {
	st, err := sqlish.Parse(db.cat, sql)
	if err != nil {
		return nil, err
	}
	nparams := countParams(st.Tree)
	if nparams > 1 {
		return nil, fmt.Errorf("vdb: at most one parameter is supported, query has %d", nparams)
	}
	start := time.Now()
	entry, outcome, err := db.serve(ctx, st, nparams)
	if err != nil {
		return nil, err
	}
	res := resultFrom(entry, outcome, time.Since(start))
	switch {
	case res.Degraded:
		res.PlanText = fmt.Sprintf("-- degraded: %v\n%s", res.StopReason, res.Plan.Format())
	case res.Cached:
		res.PlanText = "-- cached\n" + res.Plan.Format()
	default:
		res.PlanText = res.Plan.Format()
	}
	return res, nil
}

// countParams counts distinct parameter indexes in selection predicates.
func countParams(t *core.ExprTree) int {
	seen := map[int]bool{}
	var walk func(*core.ExprTree)
	walk = func(n *core.ExprTree) {
		if n.Op != nil {
			if s, ok := n.Op.(*rel.Select); ok && s.Pred.IsParam() {
				seen[s.Pred.Param] = true
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t)
	return len(seen)
}

// columnNames renders a schema with catalog names.
func columnNames(cat *rel.Catalog, schema *exec.Schema) []string {
	out := make([]string, 0, len(schema.Cols))
	for _, c := range schema.Cols {
		if c == rel.InvalidCol {
			out = append(out, "agg")
			continue
		}
		out = append(out, cat.Column(c).Qualified())
	}
	return out
}
