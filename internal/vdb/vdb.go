// Package vdb is the batteries-included façade over the repository's
// pieces: a catalog, a Volcano-generated optimizer, and the iterator
// execution engine behind a single query interface. It is what a
// downstream user adopts when they want "the database", not the
// optimizer-construction toolkit.
//
//	db := vdb.Open(catalog, data, nil)
//	res, err := db.Query("SELECT e.id FROM emp e ... ORDER BY ...")
//	res, err := db.QueryParams("SELECT ... WHERE v < $1", 42)
package vdb

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plancache"
	"repro/internal/rel"
	"repro/internal/relopt"
	"repro/internal/sqlish"
)

// Options tune a database instance.
type Options struct {
	// Config is the optimizer model configuration; the zero value is
	// completed with defaults.
	Config relopt.Config
	// Search tunes the search engine (ablation toggles, budgets,
	// tracing). Search.Budget bounds every optimization the database
	// runs; a budget-stopped optimization degrades to the best plan
	// found (see Result.Degraded) instead of failing the query.
	Search core.Options
	// Guided seeds branch-and-bound with the model's greedy
	// join-ordering planner; it is a convenience for callers that do
	// not hold the catalog yet (OpenDir), equivalent to setting
	// Search.Guidance.SeedPlanner. An explicit SeedPlanner wins.
	Guided bool
	// DynamicBuckets, when non-empty, makes Prepare of parameterized
	// queries produce dynamic plans over these selectivity
	// assumptions; nil uses the built-in buckets.
	DynamicBuckets []float64
	// CacheBytes enables the cross-query plan cache, bounded to this
	// many bytes; 0 disables caching. Cached plans are keyed by
	// canonical query fingerprint (commuted-join spellings of the same
	// query share an entry), verified byte-for-byte on hit, and
	// invalidated by catalog version bumps; concurrent identical
	// queries coalesce into one optimization. Parameterized statements
	// are cached by shape. Budget-degraded plans are never cached.
	CacheBytes int64
	// Exec tunes the execution engine: batch size, exchange producer
	// parallelism, and scan-filter fusion.
	Exec exec.Options
}

// DB is one database instance: schema, statistics, data, and the
// optimizer generated for them.
type DB struct {
	cat  *rel.Catalog
	data *exec.DB
	opts Options
	// model is the read-only optimizer model used for fingerprinting;
	// nil when the plan cache is disabled.
	model *relopt.Model
	// cache is the cross-query plan cache; nil when disabled.
	cache *plancache.Cache
}

// Open assembles a database from a catalog and table contents (rows
// aligned with each table's column order, as produced by datagen.Rows).
func Open(cat *rel.Catalog, data map[string][][]int64, opts *Options) *DB {
	db := &DB{cat: cat, data: exec.FromData(cat, data)}
	if opts != nil {
		db.opts = *opts
	}
	if db.opts.Guided && db.opts.Search.Guidance.SeedPlanner == nil {
		db.opts.Search.Guidance.SeedPlanner = relopt.New(cat, db.opts.Config).SeedPlanner()
	}
	if db.opts.CacheBytes > 0 {
		db.model = relopt.New(cat, db.opts.Config)
		db.cache = plancache.New(plancache.Options{MaxBytes: db.opts.CacheBytes})
	}
	return db
}

// Catalog exposes the schema and statistics.
func (db *DB) Catalog() *rel.Catalog { return db.cat }

// PlanCache exposes the plan cache for observability (counters,
// explicit invalidation); nil when Options.CacheBytes is 0.
func (db *DB) PlanCache() *plancache.Cache { return db.cache }

// Result is an executed query.
type Result struct {
	// Rows are the output tuples.
	Rows []exec.Row
	// Columns names the output columns; aggregate outputs are "agg".
	Columns []string
	// Plan is the executed physical plan.
	Plan *core.Plan
	// Stats are the optimizer's search counters.
	Stats core.Stats
	// Degraded, when non-nil, is the typed budget error (matching
	// core.ErrBudget) that stopped the optimizer before it could prove
	// the plan optimal: the query ran on the best complete plan found
	// within the budget. Nil for fully optimized queries.
	Degraded error
}

// optimize runs the search engine over a parsed statement under the
// database's configured search options and the caller's context. A
// budget-stopped search with a usable anytime plan is reported as a
// degraded success; only a stop with no plan at all (or a non-budget
// error) fails. The returned stats include StopReason for degraded runs.
func (db *DB) optimize(ctx context.Context, tree *core.ExprTree, required core.PhysProps) (*core.Plan, core.Stats, error, error) {
	opts := db.opts.Search
	if err := opts.Validate(); err != nil {
		return nil, core.Stats{}, nil, err
	}
	opt := core.NewOptimizer(relopt.New(db.cat, db.opts.Config), &opts)
	root := opt.InsertQuery(tree)
	plan, err := opt.OptimizeCtx(ctx, root, required)
	stats := *opt.Stats()
	if err != nil {
		if plan != nil && errors.Is(err, core.ErrBudget) {
			return plan, stats, err, nil
		}
		return nil, stats, nil, err
	}
	if plan == nil {
		return nil, stats, nil, fmt.Errorf("vdb: no plan satisfies the query")
	}
	return plan, stats, nil, nil
}

// serve optimizes a parsed statement through the plan cache when one is
// configured: a verified cached entry if present, a shared in-flight
// result if an identical statement is being optimized concurrently, or
// a fresh optimization otherwise. Fresh results are inserted unless the
// search was budget-degraded. Without a cache it simply optimizes.
func (db *DB) serve(ctx context.Context, st *sqlish.Statement, nparams int) (*plancache.Entry, plancache.Outcome, error) {
	compute := func() (*plancache.Entry, error) {
		if nparams == 1 {
			res, err := relopt.OptimizeDynamic(db.cat, db.opts.Config, st.Tree, st.Required, db.opts.DynamicBuckets)
			if err != nil {
				return nil, err
			}
			return &plancache.Entry{Plan: res.Plan, Cost: res.Plan.Cost, Dynamic: res.Alternatives > 1, NParams: 1}, nil
		}
		plan, stats, degraded, err := db.optimize(ctx, st.Tree, st.Required)
		if err != nil {
			return nil, err
		}
		return &plancache.Entry{Plan: plan, Cost: plan.Cost, Stats: stats, Degraded: degraded}, nil
	}
	if db.cache == nil {
		e, err := compute()
		return e, plancache.OutcomeMiss, err
	}
	fp, canon := core.FingerprintQuery(db.model, st.Tree, st.Required)
	return db.cache.Do(fp, canon, compute)
}

// serveStats returns the entry's search stats annotated with how the
// entry was served.
func serveStats(e *plancache.Entry, outcome plancache.Outcome) core.Stats {
	stats := e.Stats
	switch outcome {
	case plancache.OutcomeHit:
		stats.CacheHit = true
	case plancache.OutcomeCoalesced:
		stats.Coalesced = true
	}
	return stats
}

// Stmt is a prepared statement: parsed, optimized (statically or
// dynamically), and executable many times with different parameters.
type Stmt struct {
	db      *DB
	plan    *core.Plan
	dynamic bool
	nparams int
	// degraded records the budget error of a degraded optimization; the
	// statement still executes the best plan found.
	degraded error
	// cached records that the plan was served from the plan cache.
	cached bool
}

// Prepare parses and optimizes a statement; see PrepareCtx.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	return db.PrepareCtx(context.Background(), sql)
}

// PrepareCtx parses and optimizes a statement. Queries with `$n`
// parameters get a dynamic plan (a choose-plan over selectivity
// regions); fully specified queries get a single optimal plan. The
// context cancels or deadline-bounds the optimization: a budget-stopped
// search yields a statement carrying the best plan found (see
// Stmt.Degraded) rather than an error.
func (db *DB) PrepareCtx(ctx context.Context, sql string) (*Stmt, error) {
	st, err := sqlish.Parse(db.cat, sql)
	if err != nil {
		return nil, err
	}
	nparams := countParams(st.Tree)
	if nparams > 1 {
		return nil, fmt.Errorf("vdb: at most one parameter is supported, query has %d", nparams)
	}
	entry, outcome, err := db.serve(ctx, st, nparams)
	if err != nil {
		return nil, err
	}
	return &Stmt{
		db:       db,
		plan:     entry.Plan,
		dynamic:  entry.Dynamic,
		nparams:  entry.NParams,
		degraded: entry.Degraded,
		cached:   outcome == plancache.OutcomeHit,
	}, nil
}

// Degraded reports the budget error that stopped the statement's
// optimization, or nil when the plan is proven optimal. Degraded plans
// are never inserted into the plan cache, so Cached and Degraded are
// mutually exclusive.
func (s *Stmt) Degraded() error { return s.degraded }

// Cached reports whether the statement's plan was served from the plan
// cache rather than optimized by this Prepare call.
func (s *Stmt) Cached() bool { return s.cached }

// Exec runs the prepared statement with the given parameter values; see
// ExecCtx.
func (s *Stmt) Exec(params ...int64) (*Result, error) {
	return s.ExecCtx(context.Background(), params...)
}

// ExecCtx runs the prepared statement with the given parameter values
// under a context: canceling it tears down the executing iterator tree
// (including any exchange workers) and fails the call.
func (s *Stmt) ExecCtx(ctx context.Context, params ...int64) (*Result, error) {
	if len(params) != s.nparams {
		return nil, fmt.Errorf("vdb: statement needs %d parameters, got %d", s.nparams, len(params))
	}
	rows, schema, err := exec.RunOpts(ctx, s.db.data, s.plan, params, s.db.opts.Exec)
	if err != nil {
		return nil, err
	}
	return &Result{Rows: rows, Columns: columnNames(s.db.cat, schema), Plan: s.plan}, nil
}

// Plan exposes the prepared plan (a ChoosePlan root for dynamic
// statements).
func (s *Stmt) Plan() *core.Plan { return s.plan }

// Dynamic reports whether the statement carries runtime alternatives.
func (s *Stmt) Dynamic() bool { return s.dynamic }

// Query parses, optimizes, and executes a fully specified statement;
// see QueryCtx.
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryCtx(context.Background(), sql)
}

// QueryCtx parses, optimizes, and executes a fully specified statement.
// The context bounds both phases: during optimization, canceling it (or
// exceeding the configured Search.Budget) degrades the query to the best
// complete plan found — the query still runs, and Result.Degraded
// explains what stopped the search. During execution, canceling the
// context tears down the iterator tree (including any exchange workers)
// and fails the query.
func (db *DB) QueryCtx(ctx context.Context, sql string) (*Result, error) {
	st, err := sqlish.Parse(db.cat, sql)
	if err != nil {
		return nil, err
	}
	if countParams(st.Tree) != 0 {
		return nil, fmt.Errorf("vdb: parameterized query requires Prepare/Exec or QueryParams")
	}
	entry, outcome, err := db.serve(ctx, st, 0)
	if err != nil {
		return nil, err
	}
	rows, schema, err := exec.RunOpts(ctx, db.data, entry.Plan, nil, db.opts.Exec)
	if err != nil {
		return nil, err
	}
	return &Result{
		Rows:     rows,
		Columns:  columnNames(db.cat, schema),
		Plan:     entry.Plan,
		Stats:    serveStats(entry, outcome),
		Degraded: entry.Degraded,
	}, nil
}

// QueryParams prepares and executes a parameterized statement in one
// step.
func (db *DB) QueryParams(sql string, params ...int64) (*Result, error) {
	stmt, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return stmt.Exec(params...)
}

// Explain parses and optimizes without executing, returning the plan
// rendering; see ExplainCtx.
func (db *DB) Explain(sql string) (string, error) {
	return db.ExplainCtx(context.Background(), sql)
}

// ExplainCtx parses and optimizes without executing, returning the plan
// rendering. A budget-stopped optimization renders the degraded plan
// with a leading note naming the exhausted bound; a cache-served plan
// carries a "-- cached" note. Parameterized statements explain the same
// dynamic plan Prepare would build.
func (db *DB) ExplainCtx(ctx context.Context, sql string) (string, error) {
	st, err := sqlish.Parse(db.cat, sql)
	if err != nil {
		return "", err
	}
	nparams := countParams(st.Tree)
	if nparams > 1 {
		return "", fmt.Errorf("vdb: at most one parameter is supported, query has %d", nparams)
	}
	entry, outcome, err := db.serve(ctx, st, nparams)
	if err != nil {
		return "", err
	}
	text := entry.Plan.Format()
	if entry.Degraded != nil {
		return fmt.Sprintf("-- degraded: %v\n%s", entry.Degraded, text), nil
	}
	if outcome == plancache.OutcomeHit {
		return "-- cached\n" + text, nil
	}
	return text, nil
}

// countParams counts distinct parameter indexes in selection predicates.
func countParams(t *core.ExprTree) int {
	seen := map[int]bool{}
	var walk func(*core.ExprTree)
	walk = func(n *core.ExprTree) {
		if n.Op != nil {
			if s, ok := n.Op.(*rel.Select); ok && s.Pred.IsParam() {
				seen[s.Pred.Param] = true
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t)
	return len(seen)
}

// columnNames renders a schema with catalog names.
func columnNames(cat *rel.Catalog, schema *exec.Schema) []string {
	out := make([]string, 0, len(schema.Cols))
	for _, c := range schema.Cols {
		if c == rel.InvalidCol {
			out = append(out, "agg")
			continue
		}
		out = append(out, cat.Column(c).Qualified())
	}
	return out
}
