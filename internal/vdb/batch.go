package vdb

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/relopt"
	"repro/internal/sqlish"
)

// BatchResult is the outcome of one QueryBatch call.
type BatchResult struct {
	// Results holds one executed query per statement, in input order.
	// Every Result reports Cached false: the plan cache is bypassed for
	// batches, because sharing decisions are batch-relative — a Reuse
	// plan rescans a spool only its own batch fills, so neither serving
	// a batch plan from the cache nor inserting one is sound. Each
	// Result's OptimizeTime is the whole batch's shared optimization
	// time; ExecTime is that statement's own.
	Results []*Result
	// Stats are the shared optimization's counters, including
	// SharedGroups and SharedWinners; per-query effort is not separable
	// once the search is shared, so every Result carries this same
	// value.
	Stats core.Stats
	// Spools is the number of Materialize/Reuse pairs the cost-based
	// post-pass introduced: shared subplans computed once and rescanned
	// instead of recomputed.
	Spools int
}

// PrepareBatch optimizes a batch of fully specified statements over one
// shared memo without executing them; see QueryBatchCtx for the
// sharing contract. The returned plans must be executed in order
// against one exec.SpoolStore (exec.Options.Spools) whenever Spools is
// non-zero.
func (db *DB) PrepareBatch(sqls []string) ([]*core.Plan, *BatchResult, error) {
	return db.PrepareBatchCtx(context.Background(), sqls)
}

// PrepareBatchCtx is PrepareBatch under a context.
func (db *DB) PrepareBatchCtx(ctx context.Context, sqls []string) ([]*core.Plan, *BatchResult, error) {
	if len(sqls) == 0 {
		return nil, &BatchResult{}, nil
	}
	opts := db.opts.Search
	if b, ok := budgetFrom(ctx); ok {
		opts.Budget = b
	}
	opts.Search.ShareMemo = true
	// Guided search seeds one root's cost limit; the multi-root batch
	// engine has no per-root limits to seed, so the batch path always
	// runs unguided.
	opts.Guidance.SeedPlanner = nil
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	model := relopt.New(db.cat, db.opts.Config)
	jobs := make([]core.ParallelJob, len(sqls))
	for i, sql := range sqls {
		st, err := sqlish.Parse(db.cat, sql)
		if err != nil {
			return nil, nil, fmt.Errorf("vdb: batch statement %d: %w", i, err)
		}
		if countParams(st.Tree) != 0 {
			return nil, nil, fmt.Errorf("vdb: batch statement %d: batch queries must be fully specified", i)
		}
		jobs[i] = core.ParallelJob{Model: model, Options: &opts, Tree: st.Tree, Required: st.Required}
	}
	rs := core.ParallelOptimizeCtx(ctx, jobs, 1)
	plans := make([]*core.Plan, len(rs))
	out := &BatchResult{}
	var degraded error
	for i := range rs {
		r := &rs[i]
		if r.Err != nil {
			if r.Plan == nil || !errors.Is(r.Err, core.ErrBudget) {
				return nil, nil, fmt.Errorf("vdb: batch statement %d: %w", i, r.Err)
			}
			degraded = r.Err
		}
		if r.Plan == nil {
			return nil, nil, fmt.Errorf("vdb: batch statement %d: no plan satisfies the query", i)
		}
		plans[i] = r.Plan
		out.Stats = r.Stats
	}
	plans, out.Spools = core.MaterializeSharedPlans(model, plans)
	out.Stats.StopReason = degraded
	return plans, out, nil
}

// QueryBatch optimizes and executes a batch of fully specified
// statements as one unit; see QueryBatchCtx.
func (db *DB) QueryBatch(sqls []string) (*BatchResult, error) {
	return db.QueryBatchCtx(context.Background(), sqls)
}

// QueryBatchCtx optimizes a batch of fully specified statements over
// one shared memo — overlapping queries share exploration and winners —
// applies the cost-based Materialize/Reuse post-pass, and executes the
// plans in order against a batch-shared spool store, so a subplan
// common to several queries is computed once and rescanned by the rest.
// Results are returned in statement order; every result's multiset is
// identical to running the statement alone. The configured
// Search.Budget bounds the whole batch; a budget stop degrades each
// query to its best known plan (Result.Degraded), as single-statement
// queries do. The plan cache is bypassed: sharing decisions are
// batch-relative and a Reuse plan is only valid within its batch.
func (db *DB) QueryBatchCtx(ctx context.Context, sqls []string) (*BatchResult, error) {
	optStart := time.Now()
	plans, out, err := db.PrepareBatchCtx(ctx, sqls)
	if err != nil {
		return nil, err
	}
	optTime := time.Since(optStart)
	execOpts := db.opts.Exec
	execOpts.Spools = exec.NewSpoolStore()
	for i, p := range plans {
		execStart := time.Now()
		rows, schema, err := exec.RunOpts(ctx, db.data, p, nil, execOpts)
		if err != nil {
			return nil, fmt.Errorf("vdb: batch statement %d: %w", i, err)
		}
		out.Results = append(out.Results, &Result{
			Rows:         rows,
			Columns:      columnNames(db.cat, schema),
			Plan:         p,
			Cost:         p.Cost,
			Stats:        out.Stats,
			Degraded:     out.Stats.StopReason != nil,
			StopReason:   out.Stats.StopReason,
			OptimizeTime: optTime,
			ExecTime:     time.Since(execStart),
		})
	}
	return out, nil
}
