package vdb_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vdb"
)

func writeCSV(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDir(t *testing.T) {
	dir := t.TempDir()
	writeCSV(t, dir, "emp.csv", "id,dept,age\n1,1,30\n2,2,45\n3,1,52\n4,2,28\n")
	writeCSV(t, dir, "dept.csv", "id,budget\n1,100\n2,200\n")
	writeCSV(t, dir, "notes.txt", "ignored")

	db, err := vdb.OpenDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Statistics gathered at load time.
	emp := db.Catalog().Table("emp")
	if emp == nil || emp.Rows != 4 {
		t.Fatalf("emp = %+v", emp)
	}
	deptCol := db.Catalog().ColumnID("emp", "dept")
	if m := db.Catalog().Column(deptCol); m.Distinct != 2 || m.Min != 1 || m.Max != 2 {
		t.Fatalf("dept stats = %+v", m)
	}

	res, err := db.Query("SELECT emp.id, dept.budget FROM emp, dept WHERE emp.dept = dept.id AND emp.age > 40 ORDER BY emp.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != 2 || res.Rows[1][0] != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1] != 200 || res.Rows[1][1] != 100 {
		t.Fatalf("budgets = %v", res.Rows)
	}
}

func TestOpenDirErrors(t *testing.T) {
	empty := t.TempDir()
	if _, err := vdb.OpenDir(empty, nil); err == nil {
		t.Error("empty directory accepted")
	}

	bad := t.TempDir()
	writeCSV(t, bad, "t.csv", "a,b\n1,notanumber\n")
	if _, err := vdb.OpenDir(bad, nil); err == nil {
		t.Error("non-integer field accepted")
	}

	ragged := t.TempDir()
	writeCSV(t, ragged, "t.csv", "a,b\n1\n")
	if _, err := vdb.OpenDir(ragged, nil); err == nil {
		t.Error("ragged row accepted")
	}

	if _, err := vdb.OpenDir(filepath.Join(empty, "nosuch"), nil); err == nil {
		t.Error("missing directory accepted")
	}

	noheader := t.TempDir()
	writeCSV(t, noheader, "t.csv", "")
	if _, err := vdb.OpenDir(noheader, nil); err == nil {
		t.Error("empty file accepted")
	}
}
