package vdb_test

import (
	"fmt"

	"repro/internal/rel"
	"repro/internal/vdb"
)

// Example shows the shortest path from a schema to optimized, executed
// SQL: declare tables and statistics, load rows, query.
func Example() {
	cat := rel.NewCatalog()
	emp := cat.AddTable("emp", 4, 100)
	cat.AddColumn(emp, "id", 4, 1, 4)
	cat.AddColumn(emp, "dept", 2, 1, 2)

	db := vdb.Open(cat, map[string][][]int64{
		"emp": {{1, 1}, {2, 2}, {3, 1}, {4, 2}},
	}, nil)

	res, err := db.Query("SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept")
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("dept %d: %d employees\n", row[0], row[1])
	}
	// Output:
	// dept 1: 2 employees
	// dept 2: 2 employees
}

// ExampleDB_Prepare shows dynamic plans: a parameterized statement is
// optimized once per selectivity region; the bound value picks the
// alternative at execution.
func ExampleDB_Prepare() {
	cat := rel.NewCatalog()
	emp := cat.AddTable("emp", 4, 100)
	cat.AddColumn(emp, "id", 4, 1, 4)
	cat.AddColumn(emp, "age", 4, 20, 50)

	db := vdb.Open(cat, map[string][][]int64{
		"emp": {{1, 25}, {2, 35}, {3, 45}, {4, 50}},
	}, nil)

	stmt, err := db.Prepare("SELECT id FROM emp WHERE age < $1")
	if err != nil {
		panic(err)
	}
	for _, bound := range []int64{30, 50} {
		res, err := stmt.Exec(bound)
		if err != nil {
			panic(err)
		}
		fmt.Printf("age < %d: %d rows\n", bound, len(res.Rows))
	}
	// Output:
	// age < 30: 1 rows
	// age < 50: 3 rows
}
