package vdb_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/vdb"
)

func openDemo(t *testing.T) *vdb.DB {
	t.Helper()
	src := datagen.New(31)
	cat := src.Catalog(3)
	return vdb.Open(cat, src.Rows(cat), nil)
}

func openDemoCached(t *testing.T) *vdb.DB {
	t.Helper()
	src := datagen.New(31)
	cat := src.Catalog(3)
	return vdb.Open(cat, src.Rows(cat), &vdb.Options{CacheBytes: 1 << 20})
}

func TestQueryEndToEnd(t *testing.T) {
	db := openDemo(t)
	res, err := db.Query("SELECT R1.id, R1.ja FROM R1 WHERE R1.v < 500 ORDER BY R1.ja")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	if len(res.Columns) != 2 || res.Columns[0] != "R1.id" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Stats.Exprs == 0 {
		t.Fatal("no search statistics recorded")
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][1] > res.Rows[i][1] {
			t.Fatal("result not ordered")
		}
	}
}

func TestQueryJoinAggregates(t *testing.T) {
	db := openDemo(t)
	res, err := db.Query("SELECT R1.ja, COUNT(*) FROM R1, R2 WHERE R1.ja = R2.ja GROUP BY R1.ja")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no groups")
	}
	var total int64
	for _, r := range res.Rows {
		total += r[1]
	}
	plain, err := db.Query("SELECT R1.id FROM R1, R2 WHERE R1.ja = R2.ja")
	if err != nil {
		t.Fatal(err)
	}
	if total != int64(len(plain.Rows)) {
		t.Fatalf("grouped counts %d != join rows %d", total, len(plain.Rows))
	}
}

func TestPrepareDynamic(t *testing.T) {
	db := openDemo(t)
	stmt, err := db.Prepare("SELECT R1.id, R1.jb, R2.v FROM R1, R2 WHERE R1.jb = R2.jb AND R1.v < $1 ORDER BY R1.jb")
	if err != nil {
		t.Fatal(err)
	}
	low, err := stmt.Exec(10)
	if err != nil {
		t.Fatal(err)
	}
	high, err := stmt.Exec(990)
	if err != nil {
		t.Fatal(err)
	}
	if len(low.Rows) >= len(high.Rows) {
		t.Fatalf("selectivity did not change the result: %d vs %d", len(low.Rows), len(high.Rows))
	}
	if _, err := stmt.Exec(); err == nil {
		t.Fatal("missing parameter accepted")
	}
	if _, err := db.QueryParams("SELECT id FROM R1 WHERE v < $1", 250); err != nil {
		t.Fatal(err)
	}
}

func TestQueryRejectsUnboundParams(t *testing.T) {
	db := openDemo(t)
	if _, err := db.Query("SELECT id FROM R1 WHERE v < $1"); err == nil {
		t.Fatal("Query accepted a parameterized statement")
	}
}

func TestExplain(t *testing.T) {
	db := openDemo(t)
	plan, err := db.Explain("SELECT R1.id, R1.ja, R2.v FROM R1, R2 WHERE R1.ja = R2.ja ORDER BY R1.ja")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "join") || !strings.Contains(plan, "cost=") {
		t.Fatalf("explain output:\n%s", plan)
	}
}

// TestResultEnvelope: every entry point returns the same Result shape,
// with cost, timing, and serving markers filled consistently.
func TestResultEnvelope(t *testing.T) {
	db := openDemoCached(t)
	sql := "SELECT R1.id, R1.ja FROM R1, R2 WHERE R1.ja = R2.ja ORDER BY R1.ja"

	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost == nil || res.Plan == nil {
		t.Fatal("Query result missing plan or cost")
	}
	if res.Degraded || res.StopReason != nil || res.Cached {
		t.Fatalf("fresh unbudgeted query misreported: %+v", res)
	}
	if res.OptimizeTime <= 0 || res.ExecTime <= 0 {
		t.Fatalf("timings not recorded: optimize %v, exec %v", res.OptimizeTime, res.ExecTime)
	}

	exp, err := db.ExplainCtx(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Cached {
		t.Fatal("explain after query not served from the plan cache")
	}
	if !strings.HasPrefix(exp.PlanText, "-- cached\n") {
		t.Fatalf("cached explain rendering:\n%s", exp.PlanText)
	}
	if len(exp.Rows) != 0 || exp.ExecTime != 0 {
		t.Fatal("explain executed the plan")
	}

	stmt, err := db.PrepareCtx(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	pr := stmt.Result()
	if !pr.Cached || pr.Plan == nil || pr.Cost == nil {
		t.Fatalf("prepare envelope: %+v", pr)
	}
	run, err := stmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if !run.Cached || len(run.Rows) == 0 || run.ExecTime <= 0 {
		t.Fatalf("exec envelope: cached=%v rows=%d exec=%v", run.Cached, len(run.Rows), run.ExecTime)
	}
}

// TestWithBudgetOverride: a context-carried budget degrades one
// request without touching the database's configured options, and the
// degraded plan still answers the query.
func TestWithBudgetOverride(t *testing.T) {
	db := openDemo(t)
	sql := "SELECT R1.id FROM R1, R2, R3 WHERE R1.ja = R2.ja AND R2.jb = R3.jb ORDER BY R1.id"
	ctx := vdb.WithBudget(context.Background(), core.Budget{MaxSteps: 1})
	res, err := db.QueryCtx(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.StopReason == nil {
		t.Fatalf("MaxSteps:1 search not reported degraded: %+v", res.Stats.StopReason)
	}
	if len(res.Rows) == 0 {
		t.Fatal("degraded query returned no rows")
	}
	full, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if full.Degraded {
		t.Fatal("budget override leaked into an unbudgeted query")
	}
	if len(full.Rows) != len(res.Rows) {
		t.Fatalf("degraded plan changed the result: %d vs %d rows", len(res.Rows), len(full.Rows))
	}
}

func TestSearchOptionsPropagate(t *testing.T) {
	src := datagen.New(32)
	cat := src.Catalog(2)
	traced := false
	db := vdb.Open(cat, src.Rows(cat), &vdb.Options{
		Search: core.Options{Trace: core.TraceOptions{
			Tracer: core.ClassicTracer(func(string) { traced = true }),
		}},
	})
	if _, err := db.Query("SELECT id FROM R1"); err != nil {
		t.Fatal(err)
	}
	if !traced {
		t.Fatal("trace option not propagated")
	}
}

func TestErrors(t *testing.T) {
	db := openDemo(t)
	for _, sql := range []string{
		"SELECT nosuch FROM R1",
		"FROM R1",
		"SELECT id FROM R1, R2", // cartesian
	} {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("Query(%q) succeeded", sql)
		}
	}
	if _, err := db.Prepare("SELECT id FROM nosuch WHERE v < $1"); err == nil {
		t.Error("Prepare of invalid SQL succeeded")
	}
}

func TestUnionThroughFacade(t *testing.T) {
	db := openDemo(t)
	res, err := db.Query("SELECT id FROM R1 WHERE v < 100 UNION SELECT id FROM R1 WHERE v > 900 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for i, r := range res.Rows {
		if seen[r[0]] {
			t.Fatal("duplicate in UNION")
		}
		seen[r[0]] = true
		if i > 0 && res.Rows[i-1][0] > r[0] {
			t.Fatal("not ordered")
		}
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
}
