package vdb_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/vdb"
)

// cacheQueries is a mixed workload: scans, joins, aggregates, set
// operations, and ORDER BY variants.
var cacheQueries = []string{
	"SELECT R1.id, R1.ja FROM R1 WHERE R1.v < 500 ORDER BY R1.ja",
	"SELECT R1.id, R1.ja, R2.v FROM R1, R2 WHERE R1.ja = R2.ja ORDER BY R1.ja",
	"SELECT R1.ja, COUNT(*) FROM R1, R2 WHERE R1.ja = R2.ja GROUP BY R1.ja",
	"SELECT R1.id FROM R1, R2, R3 WHERE R1.ja = R2.ja AND R2.jb = R3.jb",
	"SELECT id FROM R1 WHERE v < 100 UNION SELECT id FROM R1 WHERE v > 900 ORDER BY id",
	"SELECT R2.id FROM R2 ORDER BY R2.id",
}

// TestCachedPlanCostsMatchUncached is the serving-layer property test:
// for every query, a cache-enabled database must produce a plan with
// exactly the cost a cache-disabled database produces — on the cold
// miss, on the warm hit, and again after a catalog version bump.
func TestCachedPlanCostsMatchUncached(t *testing.T) {
	src := datagen.New(31)
	cat := src.Catalog(3)
	data := src.Rows(cat)
	plain := vdb.Open(cat, data, nil)
	cached := vdb.Open(cat, data, &vdb.Options{CacheBytes: 1 << 20})

	costs := make(map[string]core.Cost)
	for _, sql := range cacheQueries {
		st, err := plain.Prepare(sql)
		if err != nil {
			t.Fatalf("uncached %q: %v", sql, err)
		}
		costs[sql] = st.Plan().Cost
	}

	check := func(phase string, wantCached bool) {
		t.Helper()
		for _, sql := range cacheQueries {
			st, err := cached.Prepare(sql)
			if err != nil {
				t.Fatalf("%s %q: %v", phase, sql, err)
			}
			if st.Plan().Cost != costs[sql] {
				t.Errorf("%s %q: cost %v, want %v", phase, sql, st.Plan().Cost, costs[sql])
			}
			if st.Cached() != wantCached {
				t.Errorf("%s %q: Cached() = %v, want %v", phase, sql, st.Cached(), wantCached)
			}
		}
	}
	check("cold", false)
	check("warm", true)

	// A catalog version bump changes every fingerprint: the warm entries
	// stop being served and re-optimization still lands on equal costs.
	cat.BumpVersion()
	check("post-bump cold", false)
	check("post-bump warm", true)

	ct := cached.PlanCache().Counters()
	if ct.CacheHits != int64(2*len(cacheQueries)) {
		t.Errorf("CacheHits = %d, want %d", ct.CacheHits, 2*len(cacheQueries))
	}
	if ct.CacheMisses != int64(2*len(cacheQueries)) {
		t.Errorf("CacheMisses = %d, want %d", ct.CacheMisses, 2*len(cacheQueries))
	}
}

func TestCacheMergesCommutedSpellings(t *testing.T) {
	src := datagen.New(31)
	cat := src.Catalog(3)
	db := vdb.Open(cat, src.Rows(cat), &vdb.Options{CacheBytes: 1 << 20})

	first, err := db.Prepare("SELECT R1.id FROM R1, R2 WHERE R1.ja = R2.ja")
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached() {
		t.Fatal("first spelling served from an empty cache")
	}
	// The commuted FROM order is the same canonical query.
	second, err := db.Prepare("SELECT R1.id FROM R2, R1 WHERE R2.ja = R1.ja")
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached() {
		t.Fatal("commuted spelling missed the cache")
	}
	if first.Plan().Cost != second.Plan().Cost {
		t.Fatalf("costs diverge: %v vs %v", first.Plan().Cost, second.Plan().Cost)
	}
}

func TestCacheServesQueryAndExplain(t *testing.T) {
	src := datagen.New(31)
	cat := src.Catalog(3)
	db := vdb.Open(cat, src.Rows(cat), &vdb.Options{CacheBytes: 1 << 20})
	const sql = "SELECT R1.id, R1.ja FROM R1 WHERE R1.v < 500 ORDER BY R1.ja"

	cold, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.CacheHit {
		t.Fatal("first execution reported a cache hit")
	}
	warm, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.CacheHit {
		t.Fatal("second execution missed the cache")
	}
	if len(warm.Rows) != len(cold.Rows) {
		t.Fatalf("cached plan returned %d rows, fresh returned %d", len(warm.Rows), len(cold.Rows))
	}
	if warm.Plan.Cost != cold.Plan.Cost {
		t.Fatalf("cached cost %v != fresh cost %v", warm.Plan.Cost, cold.Plan.Cost)
	}

	text, err := db.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if text[:len("-- cached\n")] != "-- cached\n" {
		t.Fatalf("explain of a cached query lacks the cache note:\n%s", text)
	}
}

func TestCacheParameterizedByShape(t *testing.T) {
	src := datagen.New(31)
	cat := src.Catalog(3)
	db := vdb.Open(cat, src.Rows(cat), &vdb.Options{CacheBytes: 1 << 20})
	const sql = "SELECT R1.id, R1.jb, R2.v FROM R1, R2 WHERE R1.jb = R2.jb AND R1.v < $1 ORDER BY R1.jb"

	first, err := db.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached() {
		t.Fatal("first prepare of the shape was served from the cache")
	}
	second, err := db.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached() {
		t.Fatal("second prepare of the same shape missed the cache")
	}
	if second.Dynamic() != first.Dynamic() {
		t.Fatal("cached statement lost its dynamic-plan flag")
	}
	// The cached dynamic plan still adapts to the bound value.
	low, err := second.Exec(10)
	if err != nil {
		t.Fatal(err)
	}
	high, err := second.Exec(990)
	if err != nil {
		t.Fatal(err)
	}
	if len(low.Rows) >= len(high.Rows) {
		t.Fatalf("cached dynamic plan ignored selectivity: %d vs %d rows", len(low.Rows), len(high.Rows))
	}
}

func TestDegradedPlansNeverCached(t *testing.T) {
	src := datagen.New(31)
	cat := src.Catalog(3)
	opts := &vdb.Options{CacheBytes: 1 << 20, Guided: true}
	opts.Search.Budget = core.Budget{MaxSteps: 1}
	db := vdb.Open(cat, src.Rows(cat), opts)
	const sql = "SELECT R1.id FROM R1, R2, R3 WHERE R1.ja = R2.ja AND R2.jb = R3.jb"

	for i := 0; i < 2; i++ {
		st, err := db.Prepare(sql)
		if err != nil {
			t.Fatalf("prepare %d: %v", i, err)
		}
		if st.Degraded() == nil {
			t.Fatalf("prepare %d: expected a budget-degraded plan", i)
		}
		if st.Cached() {
			t.Fatalf("prepare %d: degraded plan was served from the cache", i)
		}
	}
	if ct := db.PlanCache().Counters(); ct.Entries != 0 {
		t.Fatalf("degraded plans were inserted: %+v", ct)
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	db := openDemo(t)
	if db.PlanCache() != nil {
		t.Fatal("plan cache enabled without CacheBytes")
	}
	st, err := db.Prepare("SELECT R2.id FROM R2 ORDER BY R2.id")
	if err != nil {
		t.Fatal(err)
	}
	st2, err := db.Prepare("SELECT R2.id FROM R2 ORDER BY R2.id")
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached() || st2.Cached() {
		t.Fatal("Cached() true with the cache disabled")
	}
}
