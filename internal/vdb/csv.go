package vdb

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/rel"
)

// OpenDir assembles a database from a directory of CSV files: one
// `<table>.csv` per relation, first line naming the columns, integer
// values throughout. Statistics (cardinality, distinct counts, domains)
// are gathered while loading, so the optimizer sees accurate numbers
// without a separate ANALYZE step.
//
//	emp.csv:  id,dept,age
//	          1,3,41
//	          ...
func OpenDir(dir string, opts *Options) (*DB, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	cat := rel.NewCatalog()
	data := make(map[string][][]int64)
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".csv")
		rows, cols, err := readCSV(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("vdb: %s: %w", e.Name(), err)
		}
		registerTable(cat, name, cols, rows)
		data[name] = rows
		loaded++
	}
	if loaded == 0 {
		return nil, fmt.Errorf("vdb: no .csv files in %s", dir)
	}
	return Open(cat, data, opts), nil
}

// readCSV parses one table file into integer rows.
func readCSV(path string) (rows [][]int64, cols []string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	header, err := r.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("missing header: %w", err)
	}
	cols = make([]string, len(header))
	for i, h := range header {
		cols[i] = strings.TrimSpace(h)
		if cols[i] == "" {
			return nil, nil, fmt.Errorf("empty column name at position %d", i+1)
		}
	}
	line := 1
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return rows, cols, nil
		}
		if err != nil {
			return nil, nil, err
		}
		line++
		if len(rec) != len(cols) {
			return nil, nil, fmt.Errorf("line %d: %d fields, want %d", line, len(rec), len(cols))
		}
		row := make([]int64, len(rec))
		for i, field := range rec {
			v, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("line %d, column %s: %w", line, cols[i], err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
}

// registerTable adds the table to the catalog with statistics gathered
// from its rows.
func registerTable(cat *rel.Catalog, name string, cols []string, rows [][]int64) {
	t := cat.AddTable(name, int64(len(rows)), 8*len(cols))
	for i, col := range cols {
		distinct := make(map[int64]bool)
		min, max := int64(0), int64(0)
		for r, row := range rows {
			v := row[i]
			distinct[v] = true
			if r == 0 || v < min {
				min = v
			}
			if r == 0 || v > max {
				max = v
			}
		}
		d := int64(len(distinct))
		if d == 0 {
			d = 1
		}
		cat.AddColumn(t, col, d, min, max)
	}
}
