package exec

import (
	"context"

	"repro/internal/rel"
)

// TableScan reads a stored relation front to back (filescan), one batch
// of rows per call. The returned batches are zero-copy views of the
// stored rows.
type TableScan struct {
	// Tab is the relation scanned.
	Tab *Table

	size    int
	ctx     context.Context
	stripe  int
	stripes int
	lo, hi  int
	next    int
	view    Batch
	ra      rowAdapter
}

// NewTableScan creates a scan over a table.
func NewTableScan(t *Table) *TableScan {
	return &TableScan{Tab: t, size: DefaultBatchSize}
}

// SetBatchSize sets the rows per batch.
func (s *TableScan) SetBatchSize(n int) { s.size = sizeOrDefault(n) }

// SetContext makes the scan fail with the context's error once it is
// canceled; checked once per batch.
func (s *TableScan) SetContext(ctx context.Context) { s.ctx = ctx }

// SetStripe restricts the scan to stripe i of n contiguous equal-width
// stripes of the table; the n producer instances of a parallel exchange
// each scan one stripe so together they cover the table exactly once.
func (s *TableScan) SetStripe(i, n int) { s.stripe, s.stripes = i, n }

// Open resets the scan to the first row of its stripe.
func (s *TableScan) Open() error {
	total := len(s.Tab.Rows)
	s.lo, s.hi = 0, total
	if s.stripes > 1 {
		s.lo = s.stripe * total / s.stripes
		s.hi = (s.stripe + 1) * total / s.stripes
	}
	s.next = s.lo
	s.ra.reset()
	return nil
}

// NextBatch returns the next batch of stored rows as a zero-copy view.
func (s *TableScan) NextBatch() (*Batch, bool, error) {
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return nil, false, err
		}
	}
	if s.next >= s.hi {
		return nil, false, nil
	}
	end := s.next + s.size
	if end > s.hi {
		end = s.hi
	}
	s.view.Rows = s.Tab.Rows[s.next:end]
	s.next = end
	return &s.view, true, nil
}

// Next returns the next stored row.
func (s *TableScan) Next() (Row, bool, error) { return s.ra.next(s) }

// Close is a no-op for scans.
func (s *TableScan) Close() error { return nil }

// compiledPred is a predicate with schema positions resolved.
type compiledPred struct {
	op       rel.CmpOp
	pos      int
	otherPos int // -1 for constant comparisons
	val      int64
}

func compilePred(p rel.Pred, s *Schema) compiledPred {
	c := compiledPred{op: p.Op, pos: s.Pos(p.Col), otherPos: -1, val: p.Val}
	if p.IsColCol() {
		c.otherPos = s.Pos(p.OtherCol)
	}
	return c
}

func (c compiledPred) eval(r Row) bool {
	rhs := c.val
	if c.otherPos >= 0 {
		rhs = r[c.otherPos]
	}
	return c.op.Eval(r[c.pos], rhs)
}

func evalPreds(preds []compiledPred, r Row) bool {
	for _, p := range preds {
		if !p.eval(r) {
			return false
		}
	}
	return true
}

// Filter drops rows failing any conjunct (the filter algorithm). When
// its input is a TableScan, predicate evaluation is fused into the scan
// batch loop: the filter iterates the stored rows directly, so rejected
// rows never cross an operator boundary.
type Filter struct {
	// In is the input stream.
	In Iterator

	preds []compiledPred
	in    BatchIterator
	size  int
	fused *TableScan // non-nil: evaluate predicates inside the scan loop
	fi    int        // fused scan position
	out   Batch
	ra    rowAdapter
}

// NewFilter compiles the conjuncts against the input schema.
func NewFilter(in Iterator, schema *Schema, preds []rel.Pred) *Filter {
	f := &Filter{In: in, in: asBatch(in), size: DefaultBatchSize}
	for _, p := range preds {
		f.preds = append(f.preds, compilePred(p, schema))
	}
	if scan, ok := in.(*TableScan); ok {
		f.fused = scan
	}
	return f
}

// SetBatchSize sets the rows per batch.
func (f *Filter) SetBatchSize(n int) { f.size = sizeOrDefault(n) }

// SetFusion enables or disables scan-filter fusion (enabled by default
// when the input is a TableScan). The row-engine configuration disables
// it so every operator boundary stays a row transfer.
func (f *Filter) SetFusion(on bool) {
	f.fused = nil
	if scan, ok := f.In.(*TableScan); ok && on {
		f.fused = scan
	}
}

// Open opens the input.
func (f *Filter) Open() error {
	f.ra.reset()
	if err := f.In.Open(); err != nil {
		return err
	}
	if f.fused != nil {
		f.fi = f.fused.lo
	}
	return nil
}

// NextBatch returns the next batch of rows satisfying every conjunct.
func (f *Filter) NextBatch() (*Batch, bool, error) {
	f.out.reset()
	if f.fused != nil {
		return f.nextFused()
	}
	for len(f.out.Rows) < f.size {
		b, ok, err := f.in.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		for _, row := range b.Rows {
			if evalPreds(f.preds, row) {
				f.out.add(row)
			}
		}
	}
	if len(f.out.Rows) == 0 {
		return nil, false, nil
	}
	return &f.out, true, nil
}

// nextFused evaluates the conjuncts directly over the stored rows.
func (f *Filter) nextFused() (*Batch, bool, error) {
	if f.fused.ctx != nil {
		if err := f.fused.ctx.Err(); err != nil {
			return nil, false, err
		}
	}
	rows := f.fused.Tab.Rows
	if len(f.preds) == 1 && f.preds[0].otherPos < 0 {
		// Fusion admits one more specialization: the dominant
		// single-conjunct column-vs-constant filter runs as a direct
		// compare loop, no conjunct iteration per row.
		p := f.preds[0]
		for f.fi < f.fused.hi && len(f.out.Rows) < f.size {
			row := rows[f.fi]
			f.fi++
			if p.op.Eval(row[p.pos], p.val) {
				f.out.add(row)
			}
		}
	} else {
		for f.fi < f.fused.hi && len(f.out.Rows) < f.size {
			row := rows[f.fi]
			f.fi++
			if evalPreds(f.preds, row) {
				f.out.add(row)
			}
		}
	}
	if len(f.out.Rows) == 0 {
		return nil, false, nil
	}
	return &f.out, true, nil
}

// Next returns the next row satisfying every conjunct.
func (f *Filter) Next() (Row, bool, error) { return f.ra.next(f) }

// Close closes the input.
func (f *Filter) Close() error { return f.In.Close() }

// Project narrows rows to a column subset.
type Project struct {
	// In is the input stream.
	In Iterator

	idx  []int
	in   BatchIterator
	size int
	out  Batch
	ra   rowAdapter
}

// NewProject resolves the output columns against the input schema.
func NewProject(in Iterator, schema *Schema, cols []rel.ColID) *Project {
	p := &Project{In: in, in: asBatch(in), size: DefaultBatchSize, idx: make([]int, len(cols))}
	for i, c := range cols {
		p.idx[i] = schema.Pos(c)
	}
	return p
}

// SetBatchSize sets the rows per batch.
func (p *Project) SetBatchSize(n int) { p.size = sizeOrDefault(n) }

// Open opens the input.
func (p *Project) Open() error {
	p.ra.reset()
	return p.In.Open()
}

// NextBatch returns the next batch of projected rows.
func (p *Project) NextBatch() (*Batch, bool, error) {
	b, ok, err := p.in.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	p.out.reset()
	w := len(p.idx)
	chunk := w * p.size
	for _, row := range b.Rows {
		out := p.out.alloc(w, chunk)
		for i, j := range p.idx {
			out[i] = row[j]
		}
	}
	return &p.out, true, nil
}

// Next returns the next projected row.
func (p *Project) Next() (Row, bool, error) { return p.ra.next(p) }

// Close closes the input.
func (p *Project) Close() error { return p.In.Close() }
