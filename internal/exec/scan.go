package exec

import "repro/internal/rel"

// TableScan reads a stored relation front to back (filescan).
type TableScan struct {
	// Tab is the relation scanned.
	Tab *Table

	next int
}

// NewTableScan creates a scan over a table.
func NewTableScan(t *Table) *TableScan { return &TableScan{Tab: t} }

// Open resets the scan to the first row.
func (s *TableScan) Open() error {
	s.next = 0
	return nil
}

// Next returns the next stored row.
func (s *TableScan) Next() (Row, bool, error) {
	if s.next >= len(s.Tab.Rows) {
		return nil, false, nil
	}
	r := s.Tab.Rows[s.next]
	s.next++
	return r, true, nil
}

// Close is a no-op for scans.
func (s *TableScan) Close() error { return nil }

// compiledPred is a predicate with schema positions resolved.
type compiledPred struct {
	op       rel.CmpOp
	pos      int
	otherPos int // -1 for constant comparisons
	val      int64
}

func compilePred(p rel.Pred, s *Schema) compiledPred {
	c := compiledPred{op: p.Op, pos: s.Pos(p.Col), otherPos: -1, val: p.Val}
	if p.IsColCol() {
		c.otherPos = s.Pos(p.OtherCol)
	}
	return c
}

func (c compiledPred) eval(r Row) bool {
	rhs := c.val
	if c.otherPos >= 0 {
		rhs = r[c.otherPos]
	}
	return c.op.Eval(r[c.pos], rhs)
}

// Filter drops rows failing any conjunct (the filter algorithm).
type Filter struct {
	// In is the input stream.
	In Iterator

	preds []compiledPred
}

// NewFilter compiles the conjuncts against the input schema.
func NewFilter(in Iterator, schema *Schema, preds []rel.Pred) *Filter {
	f := &Filter{In: in}
	for _, p := range preds {
		f.preds = append(f.preds, compilePred(p, schema))
	}
	return f
}

// Open opens the input.
func (f *Filter) Open() error { return f.In.Open() }

// Next returns the next row satisfying every conjunct.
func (f *Filter) Next() (Row, bool, error) {
	for {
		row, ok, err := f.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		pass := true
		for _, p := range f.preds {
			if !p.eval(row) {
				pass = false
				break
			}
		}
		if pass {
			return row, true, nil
		}
	}
}

// Close closes the input.
func (f *Filter) Close() error { return f.In.Close() }

// Project narrows rows to a column subset.
type Project struct {
	// In is the input stream.
	In Iterator

	idx []int
}

// NewProject resolves the output columns against the input schema.
func NewProject(in Iterator, schema *Schema, cols []rel.ColID) *Project {
	p := &Project{In: in, idx: make([]int, len(cols))}
	for i, c := range cols {
		p.idx[i] = schema.Pos(c)
	}
	return p
}

// Open opens the input.
func (p *Project) Open() error { return p.In.Open() }

// Next returns the next projected row.
func (p *Project) Next() (Row, bool, error) {
	row, ok, err := p.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(Row, len(p.idx))
	for i, j := range p.idx {
		out[i] = row[j]
	}
	return out, true, nil
}

// Close closes the input.
func (p *Project) Close() error { return p.In.Close() }
