package exec

import (
	"sort"

	"repro/internal/relopt"
)

// Sort is the sort enforcer's runtime: an external sort with a
// single-level merge, exactly the structure the optimizer prices —
// bounded-memory runs are formed and sorted one at a time, then merged
// in one pass.
type Sort struct {
	// In is the input stream.
	In Iterator
	// RunRows bounds the rows per run (the sort's work space); zero
	// means DefaultSortRunRows.
	RunRows int

	keys  []sortKey
	runs  [][]Row
	heads []int
}

// DefaultSortRunRows is the default run size of the external sort.
const DefaultSortRunRows = 4096

type sortKey struct {
	pos  int
	desc bool
}

// NewSort resolves the sort order against the input schema.
func NewSort(in Iterator, schema *Schema, order []relopt.OrderCol) *Sort {
	s := &Sort{In: in}
	for _, oc := range order {
		s.keys = append(s.keys, sortKey{pos: schema.Pos(oc.Col), desc: oc.Desc})
	}
	return s
}

// less compares rows on the sort keys.
func (s *Sort) less(a, b Row) bool {
	for _, k := range s.keys {
		av, bv := a[k.pos], b[k.pos]
		if av == bv {
			continue
		}
		if k.desc {
			return av > bv
		}
		return av < bv
	}
	return false
}

// Open forms the sorted runs.
func (s *Sort) Open() error {
	if err := s.In.Open(); err != nil {
		return err
	}
	limit := s.RunRows
	if limit <= 0 {
		limit = DefaultSortRunRows
	}
	s.runs = s.runs[:0]
	run := make([]Row, 0, limit)
	flush := func() {
		if len(run) == 0 {
			return
		}
		sort.SliceStable(run, func(i, j int) bool { return s.less(run[i], run[j]) })
		s.runs = append(s.runs, run)
		run = make([]Row, 0, limit)
	}
	for {
		row, ok, err := s.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		run = append(run, row)
		if len(run) == limit {
			flush()
		}
	}
	flush()
	s.heads = make([]int, len(s.runs))
	return nil
}

// Next merges the runs in a single level.
func (s *Sort) Next() (Row, bool, error) {
	best := -1
	for i, run := range s.runs {
		if s.heads[i] >= len(run) {
			continue
		}
		if best < 0 || s.less(run[s.heads[i]], s.runs[best][s.heads[best]]) {
			best = i
		}
	}
	if best < 0 {
		return nil, false, nil
	}
	r := s.runs[best][s.heads[best]]
	s.heads[best]++
	return r, true, nil
}

// Close releases the runs and closes the input.
func (s *Sort) Close() error {
	s.runs = nil
	s.heads = nil
	return s.In.Close()
}
