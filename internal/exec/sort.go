package exec

import (
	"sort"

	"repro/internal/relopt"
)

// Sort is the sort enforcer's runtime: an external sort with a
// single-level merge, exactly the structure the optimizer prices —
// bounded-memory runs are formed and sorted one at a time, then merged
// in one pass. Merged rows are emitted in batches of row headers; the
// row data itself lives in the materialized runs.
type Sort struct {
	// In is the input stream.
	In Iterator
	// RunRows bounds the rows per run (the sort's work space); zero
	// means DefaultSortRunRows.
	RunRows int

	keys  []sortKey
	size  int
	runs  [][]Row
	heads []int
	out   Batch
	ra    rowAdapter
}

// DefaultSortRunRows is the default run size of the external sort.
const DefaultSortRunRows = 4096

type sortKey struct {
	pos  int
	desc bool
}

// NewSort resolves the sort order against the input schema.
func NewSort(in Iterator, schema *Schema, order []relopt.OrderCol) *Sort {
	s := &Sort{In: in, size: DefaultBatchSize}
	for _, oc := range order {
		s.keys = append(s.keys, sortKey{pos: schema.Pos(oc.Col), desc: oc.Desc})
	}
	return s
}

// SetBatchSize sets the rows per batch.
func (s *Sort) SetBatchSize(n int) { s.size = sizeOrDefault(n) }

// less compares rows on the sort keys.
func (s *Sort) less(a, b Row) bool {
	for _, k := range s.keys {
		av, bv := a[k.pos], b[k.pos]
		if av == bv {
			continue
		}
		if k.desc {
			return av > bv
		}
		return av < bv
	}
	return false
}

// Open forms the sorted runs.
func (s *Sort) Open() error {
	if err := s.In.Open(); err != nil {
		return err
	}
	limit := s.RunRows
	if limit <= 0 {
		limit = DefaultSortRunRows
	}
	s.runs = s.runs[:0]
	s.ra.reset()
	run := make([]Row, 0, limit)
	flush := func() {
		if len(run) == 0 {
			return
		}
		sort.SliceStable(run, func(i, j int) bool { return s.less(run[i], run[j]) })
		s.runs = append(s.runs, run)
		run = make([]Row, 0, limit)
	}
	in := newCursor(asBatch(s.In))
	for {
		row, ok, err := in.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		run = append(run, row)
		if len(run) == limit {
			flush()
		}
	}
	flush()
	s.heads = make([]int, len(s.runs))
	return nil
}

// NextBatch merges the runs in a single level, one batch at a time.
func (s *Sort) NextBatch() (*Batch, bool, error) {
	s.out.reset()
	for len(s.out.Rows) < s.size {
		best := -1
		for i, run := range s.runs {
			if s.heads[i] >= len(run) {
				continue
			}
			if best < 0 || s.less(run[s.heads[i]], s.runs[best][s.heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		s.out.add(s.runs[best][s.heads[best]])
		s.heads[best]++
	}
	if len(s.out.Rows) == 0 {
		return nil, false, nil
	}
	return &s.out, true, nil
}

// Next returns the next row in sort order.
func (s *Sort) Next() (Row, bool, error) { return s.ra.next(s) }

// Close releases the runs and closes the input.
func (s *Sort) Close() error {
	s.runs = nil
	s.heads = nil
	return s.In.Close()
}
