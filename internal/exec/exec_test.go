package exec_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// smallData builds a catalog and matching database small enough for the
// nested-loops reference evaluator.
func smallData(t *testing.T, seed int64, tables int) (*rel.Catalog, *exec.DB, *datagen.Source) {
	t.Helper()
	s := datagen.New(seed)
	cat := rel.NewCatalog()
	for i := 1; i <= tables; i++ {
		tab := cat.AddTable(tname(i), int64(40+20*i), 100)
		cat.AddColumn(tab, "id", int64(40+20*i), 1, int64(40+20*i))
		cat.AddColumn(tab, "ja", int64(10+5*i), 1, int64(10+5*i))
		cat.AddColumn(tab, "jb", int64(5+3*i), 1, int64(5+3*i))
		cat.AddColumn(tab, "v", 50, 0, 49)
	}
	return cat, exec.FromData(cat, s.Rows(cat)), s
}

func tname(i int) string {
	return string(rune('A'+i-1)) + "t"
}

// optimize runs the Volcano optimizer on a query.
func optimize(t *testing.T, cat *rel.Catalog, q *core.ExprTree, required core.PhysProps, cfg relopt.Config) *core.Plan {
	t.Helper()
	model := relopt.New(cat, cfg)
	opt := core.NewOptimizer(model, nil)
	root := opt.InsertQuery(q)
	plan, err := opt.Optimize(root, required)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if plan == nil {
		t.Fatal("no plan")
	}
	if opt.Stats().ConsistencyViolations != 0 {
		t.Fatalf("consistency violations: %d", opt.Stats().ConsistencyViolations)
	}
	return plan
}

// TestPlansMatchReference optimizes random select-join queries, executes
// the chosen plans, and compares row multisets against direct
// evaluation of the logical expression.
func TestPlansMatchReference(t *testing.T) {
	cat, db, s := smallData(t, 42, 5)
	for trial := 0; trial < 20; trial++ {
		n := 2 + trial%4
		q := s.SelectJoinQuery(cat, n, datagen.ShapeRandom)

		want, wantSchema, err := exec.Reference(db, q.Root)
		if err != nil {
			t.Fatalf("trial %d reference: %v", trial, err)
		}

		plan := optimize(t, cat, q.Root, nil, relopt.DefaultConfig())
		got, gotSchema, err := exec.Run(db, plan)
		if err != nil {
			t.Fatalf("trial %d run: %v\nplan:\n%s", trial, err, plan.Format())
		}
		got = exec.Canonical(got, gotSchema)
		want = exec.Canonical(want, wantSchema)
		if exec.Fingerprint(got) != exec.Fingerprint(want) {
			t.Fatalf("trial %d: plan result differs from reference (%d vs %d rows)\nplan:\n%s",
				trial, len(got), len(want), plan.Format())
		}
	}
}

// TestSortedPlansDeliverOrder verifies at runtime that plans optimized
// for a sort requirement actually produce sorted output — the dynamic
// counterpart of the optimizer's consistency check.
func TestSortedPlansDeliverOrder(t *testing.T) {
	cat, db, s := smallData(t, 43, 5)
	for trial := 0; trial < 15; trial++ {
		n := 2 + trial%4
		q := s.SelectJoinQuery(cat, n, datagen.ShapeRandom)
		sortCol := q.Joins[0][0]

		required := relopt.SortedOn(sortCol)
		plan := optimize(t, cat, q.Root, required, relopt.DefaultConfig())
		got, schema, err := exec.Run(db, plan)
		if err != nil {
			t.Fatalf("trial %d run: %v", trial, err)
		}
		if !exec.SortedBy(got, []int{schema.Pos(sortCol)}) {
			t.Fatalf("trial %d: output not sorted on c%d\nplan:\n%s", trial, sortCol, plan.Format())
		}

		want, wantSchema, err := exec.Reference(db, q.Root)
		if err != nil {
			t.Fatalf("trial %d reference: %v", trial, err)
		}
		if exec.Fingerprint(exec.Canonical(got, schema)) != exec.Fingerprint(exec.Canonical(want, wantSchema)) {
			t.Fatalf("trial %d: sorted plan result differs from reference", trial)
		}
	}
}

// TestJoinAlgorithmsAgree runs the same join through merge-join,
// hash-join, and nested-loops and checks all three produce identical
// multisets.
func TestJoinAlgorithmsAgree(t *testing.T) {
	cat, db, _ := smallData(t, 44, 2)
	a, b := cat.Table(tname(1)), cat.Table(tname(2))
	la := cat.ColumnID(a.Name, "ja")
	rb := cat.ColumnID(b.Name, "ja")

	ls, rs := db.Table(a.Name), db.Table(b.Name)
	lp, rp := ls.Schema.Pos(la), rs.Schema.Pos(rb)

	sortedL := exec.NewSort(exec.NewTableScan(ls), ls.Schema, []relopt.OrderCol{{Col: la}})
	sortedR := exec.NewSort(exec.NewTableScan(rs), rs.Schema, []relopt.OrderCol{{Col: rb}})
	merge, err := exec.Collect(exec.NewMergeJoin(sortedL, sortedR, ls.Schema, rs.Schema, lp, rp, nil))
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	hash, err := exec.Collect(exec.NewHashJoin(exec.NewTableScan(ls), exec.NewTableScan(rs), ls.Schema, rs.Schema, lp, rp, nil))
	if err != nil {
		t.Fatalf("hash: %v", err)
	}
	nl, err := exec.Collect(exec.NewNLJoin(exec.NewTableScan(ls), exec.NewTableScan(rs), ls.Schema, rs.Schema, lp, rp))
	if err != nil {
		t.Fatalf("nl: %v", err)
	}
	if len(merge) == 0 {
		t.Fatal("join produced no rows; test data too sparse")
	}
	if exec.Fingerprint(merge) != exec.Fingerprint(hash) {
		t.Errorf("merge-join and hash-join disagree: %d vs %d rows", len(merge), len(hash))
	}
	if exec.Fingerprint(merge) != exec.Fingerprint(nl) {
		t.Errorf("merge-join and nl-join disagree: %d vs %d rows", len(merge), len(nl))
	}
}

// TestParallelPlanMatchesSerial optimizes the same query serially and
// with a partitioning requirement, and checks the gathered parallel
// result equals the serial result.
func TestParallelPlanMatchesSerial(t *testing.T) {
	cat, db, s := smallData(t, 45, 4)
	for trial := 0; trial < 10; trial++ {
		q := s.SelectJoinQuery(cat, 3, datagen.ShapeChain)

		serialPlan := optimize(t, cat, q.Root, nil, relopt.DefaultConfig())
		want, wantSchema, err := exec.Run(db, serialPlan)
		if err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}

		cfg := relopt.DefaultConfig()
		cfg.Parallel = true
		cfg.Degree = 4
		required := relopt.HashPartitioned(q.Joins[0][0], 4)
		parPlan := optimize(t, cat, q.Root, required, cfg)
		got, gotSchema, err := exec.Run(db, parPlan)
		if err != nil {
			t.Fatalf("trial %d parallel: %v\nplan:\n%s", trial, err, parPlan.Format())
		}
		got = exec.Canonical(got, gotSchema)
		want = exec.Canonical(want, wantSchema)
		if exec.Fingerprint(got) != exec.Fingerprint(want) {
			t.Fatalf("trial %d: parallel result differs from serial (%d vs %d rows)\nplan:\n%s",
				trial, len(got), len(want), parPlan.Format())
		}
	}
}
