package exec

// MergeJoin joins two streams sorted ascending on the join columns,
// buffering the groups of equal keys on both sides so duplicate keys
// produce the full cross product.
type MergeJoin struct {
	// Left and Right are the sorted input streams.
	Left, Right Iterator

	lpos, rpos int
	proj       []int // output positions into left++right; nil = all

	lwidth int
	lgroup []Row
	rgroup []Row
	li, ri int
	lrow   Row
	rrow   Row
	ldone  bool
	rdone  bool
}

// NewMergeJoin resolves join columns (and an optional fused projection)
// against the input schemas. The projection positions index the
// concatenated left++right row.
func NewMergeJoin(left, right Iterator, lschema, rschema *Schema, lcol, rcol int, proj []int) *MergeJoin {
	return &MergeJoin{
		Left: left, Right: right,
		lpos: lcol, rpos: rcol,
		proj:   proj,
		lwidth: lschema.Width(),
	}
}

// Open opens both inputs and primes the merge.
func (m *MergeJoin) Open() error {
	if err := m.Left.Open(); err != nil {
		return err
	}
	if err := m.Right.Open(); err != nil {
		return err
	}
	m.lgroup, m.rgroup = nil, nil
	m.li, m.ri = 0, 0
	m.ldone, m.rdone = false, false
	var err error
	m.lrow, err = m.advanceLeft()
	if err != nil {
		return err
	}
	m.rrow, err = m.advanceRight()
	return err
}

func (m *MergeJoin) advanceLeft() (Row, error) {
	row, ok, err := m.Left.Next()
	if err != nil {
		return nil, err
	}
	if !ok {
		m.ldone = true
		return nil, nil
	}
	return row, nil
}

func (m *MergeJoin) advanceRight() (Row, error) {
	row, ok, err := m.Right.Next()
	if err != nil {
		return nil, err
	}
	if !ok {
		m.rdone = true
		return nil, nil
	}
	return row, nil
}

// Next returns the next joined row.
func (m *MergeJoin) Next() (Row, bool, error) {
	for {
		// Emit from buffered groups first.
		if m.li < len(m.lgroup) {
			out := m.combine(m.lgroup[m.li], m.rgroup[m.ri])
			m.ri++
			if m.ri == len(m.rgroup) {
				m.ri = 0
				m.li++
			}
			return out, true, nil
		}
		m.lgroup, m.rgroup = m.lgroup[:0], m.rgroup[:0]
		m.li, m.ri = 0, 0

		// Align the inputs on the next matching key.
		for {
			if m.ldone || m.rdone {
				return nil, false, nil
			}
			lk, rk := m.lrow[m.lpos], m.rrow[m.rpos]
			if lk < rk {
				var err error
				if m.lrow, err = m.advanceLeft(); err != nil {
					return nil, false, err
				}
				continue
			}
			if lk > rk {
				var err error
				if m.rrow, err = m.advanceRight(); err != nil {
					return nil, false, err
				}
				continue
			}
			// Buffer both equal-key groups.
			key := lk
			for !m.ldone && m.lrow[m.lpos] == key {
				m.lgroup = append(m.lgroup, m.lrow)
				var err error
				if m.lrow, err = m.advanceLeft(); err != nil {
					return nil, false, err
				}
			}
			for !m.rdone && m.rrow[m.rpos] == key {
				m.rgroup = append(m.rgroup, m.rrow)
				var err error
				if m.rrow, err = m.advanceRight(); err != nil {
					return nil, false, err
				}
			}
			break
		}
	}
}

func (m *MergeJoin) combine(l, r Row) Row {
	out := make(Row, 0, m.lwidth+len(r))
	out = append(out, l...)
	out = append(out, r...)
	if m.proj != nil {
		proj := make(Row, len(m.proj))
		for i, p := range m.proj {
			proj[i] = out[p]
		}
		return proj
	}
	return out
}

// Close closes both inputs.
func (m *MergeJoin) Close() error {
	err := m.Left.Close()
	if err2 := m.Right.Close(); err == nil {
		err = err2
	}
	return err
}

// HashJoin is hybrid hash join without partition files: the left input
// builds an in-memory table, the right input probes.
type HashJoin struct {
	// Left and Right are the input streams; Left builds.
	Left, Right Iterator

	lpos, rpos int
	proj       []int
	lwidth     int

	table map[int64][]Row
	probe Row
	hits  []Row
	hit   int
}

// NewHashJoin resolves join columns (and an optional fused projection)
// against the input schemas.
func NewHashJoin(left, right Iterator, lschema, rschema *Schema, lcol, rcol int, proj []int) *HashJoin {
	return &HashJoin{
		Left: left, Right: right,
		lpos: lcol, rpos: rcol,
		proj:   proj,
		lwidth: lschema.Width(),
	}
}

// Open builds the hash table from the left input.
func (h *HashJoin) Open() error {
	if err := h.Left.Open(); err != nil {
		return err
	}
	if err := h.Right.Open(); err != nil {
		return err
	}
	h.table = make(map[int64][]Row)
	h.probe, h.hits, h.hit = nil, nil, 0
	for {
		row, ok, err := h.Left.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := row[h.lpos]
		h.table[k] = append(h.table[k], row)
	}
	return nil
}

// Next returns the next joined row.
func (h *HashJoin) Next() (Row, bool, error) {
	for {
		if h.hit < len(h.hits) {
			l := h.hits[h.hit]
			h.hit++
			return h.combine(l, h.probe), true, nil
		}
		row, ok, err := h.Right.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		h.probe = row
		h.hits = h.table[row[h.rpos]]
		h.hit = 0
	}
}

func (h *HashJoin) combine(l, r Row) Row {
	out := make(Row, 0, h.lwidth+len(r))
	out = append(out, l...)
	out = append(out, r...)
	if h.proj != nil {
		proj := make(Row, len(h.proj))
		for i, p := range h.proj {
			proj[i] = out[p]
		}
		return proj
	}
	return out
}

// Close releases the hash table and closes both inputs.
func (h *HashJoin) Close() error {
	h.table = nil
	err := h.Left.Close()
	if err2 := h.Right.Close(); err == nil {
		err = err2
	}
	return err
}

// NLJoin is block nested-loops join on an equality predicate; it
// materializes the right input and scans it per left row.
type NLJoin struct {
	// Left and Right are the input streams.
	Left, Right Iterator

	lpos, rpos int
	lwidth     int

	inner []Row
	lrow  Row
	ri    int
	ldone bool
}

// NewNLJoin resolves join columns against the input schemas.
func NewNLJoin(left, right Iterator, lschema, rschema *Schema, lcol, rcol int) *NLJoin {
	return &NLJoin{Left: left, Right: right, lpos: lcol, rpos: rcol, lwidth: lschema.Width()}
}

// Open materializes the inner (right) input.
func (n *NLJoin) Open() error {
	if err := n.Left.Open(); err != nil {
		return err
	}
	if err := n.Right.Open(); err != nil {
		return err
	}
	n.inner = n.inner[:0]
	n.lrow, n.ri, n.ldone = nil, 0, false
	for {
		row, ok, err := n.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		n.inner = append(n.inner, row)
	}
	return nil
}

// Next returns the next joined row.
func (n *NLJoin) Next() (Row, bool, error) {
	for {
		if n.lrow == nil {
			if n.ldone {
				return nil, false, nil
			}
			row, ok, err := n.Left.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				n.ldone = true
				return nil, false, nil
			}
			n.lrow, n.ri = row, 0
		}
		for n.ri < len(n.inner) {
			r := n.inner[n.ri]
			n.ri++
			if n.lrow[n.lpos] == r[n.rpos] {
				out := make(Row, 0, n.lwidth+len(r))
				out = append(out, n.lrow...)
				out = append(out, r...)
				return out, true, nil
			}
		}
		n.lrow = nil
	}
}

// Close releases the inner buffer and closes both inputs.
func (n *NLJoin) Close() error {
	n.inner = nil
	err := n.Left.Close()
	if err2 := n.Right.Close(); err == nil {
		err = err2
	}
	return err
}
