package exec

// MergeJoin joins two streams sorted ascending on the join columns,
// buffering the groups of equal keys on both sides so duplicate keys
// produce the full cross product. Inputs are consumed through batch
// cursors; joined rows are emitted in batches from an append-only arena.
type MergeJoin struct {
	// Left and Right are the sorted input streams.
	Left, Right Iterator

	lpos, rpos int
	proj       []int // output positions into left++right; nil = all
	lwidth     int
	size       int

	lc, rc cursor
	lgroup []Row
	rgroup []Row
	li, ri int
	lrow   Row
	rrow   Row
	ldone  bool
	rdone  bool
	out    Batch
	ra     rowAdapter
}

// NewMergeJoin resolves join columns (and an optional fused projection)
// against the input schemas. The projection positions index the
// concatenated left++right row.
func NewMergeJoin(left, right Iterator, lschema, rschema *Schema, lcol, rcol int, proj []int) *MergeJoin {
	return &MergeJoin{
		Left: left, Right: right,
		lpos: lcol, rpos: rcol,
		proj:   proj,
		lwidth: lschema.Width(),
		size:   DefaultBatchSize,
	}
}

// SetBatchSize sets the rows per batch.
func (m *MergeJoin) SetBatchSize(n int) { m.size = sizeOrDefault(n) }

// Open opens both inputs and primes the merge.
func (m *MergeJoin) Open() error {
	if err := m.Left.Open(); err != nil {
		return err
	}
	if err := m.Right.Open(); err != nil {
		return err
	}
	m.lc.reset(asBatch(m.Left))
	m.rc.reset(asBatch(m.Right))
	m.lgroup, m.rgroup = nil, nil
	m.li, m.ri = 0, 0
	m.ldone, m.rdone = false, false
	m.ra.reset()
	var err error
	m.lrow, err = m.advanceLeft()
	if err != nil {
		return err
	}
	m.rrow, err = m.advanceRight()
	return err
}

func (m *MergeJoin) advanceLeft() (Row, error) {
	row, ok, err := m.lc.next()
	if err != nil {
		return nil, err
	}
	if !ok {
		m.ldone = true
		return nil, nil
	}
	return row, nil
}

func (m *MergeJoin) advanceRight() (Row, error) {
	row, ok, err := m.rc.next()
	if err != nil {
		return nil, err
	}
	if !ok {
		m.rdone = true
		return nil, nil
	}
	return row, nil
}

// NextBatch returns the next batch of joined rows.
func (m *MergeJoin) NextBatch() (*Batch, bool, error) {
	m.out.reset()
	for len(m.out.Rows) < m.size {
		// Emit from buffered groups first.
		if m.li < len(m.lgroup) {
			m.combine(m.lgroup[m.li], m.rgroup[m.ri])
			m.ri++
			if m.ri == len(m.rgroup) {
				m.ri = 0
				m.li++
			}
			continue
		}
		m.lgroup, m.rgroup = m.lgroup[:0], m.rgroup[:0]
		m.li, m.ri = 0, 0

		// Align the inputs on the next matching key.
		aligned := false
		for !aligned {
			if m.ldone || m.rdone {
				if len(m.out.Rows) == 0 {
					return nil, false, nil
				}
				return &m.out, true, nil
			}
			lk, rk := m.lrow[m.lpos], m.rrow[m.rpos]
			if lk < rk {
				var err error
				if m.lrow, err = m.advanceLeft(); err != nil {
					return nil, false, err
				}
				continue
			}
			if lk > rk {
				var err error
				if m.rrow, err = m.advanceRight(); err != nil {
					return nil, false, err
				}
				continue
			}
			// Buffer both equal-key groups.
			key := lk
			for !m.ldone && m.lrow[m.lpos] == key {
				m.lgroup = append(m.lgroup, m.lrow)
				var err error
				if m.lrow, err = m.advanceLeft(); err != nil {
					return nil, false, err
				}
			}
			for !m.rdone && m.rrow[m.rpos] == key {
				m.rgroup = append(m.rgroup, m.rrow)
				var err error
				if m.rrow, err = m.advanceRight(); err != nil {
					return nil, false, err
				}
			}
			aligned = true
		}
	}
	return &m.out, true, nil
}

func (m *MergeJoin) combine(l, r Row) {
	combineInto(&m.out, l, r, m.proj, m.size)
}

// combineInto appends the concatenation of l and r (optionally projected
// to proj positions) to the batch, carving from its arena.
func combineInto(out *Batch, l, r Row, proj []int, size int) {
	if proj == nil {
		w := len(l) + len(r)
		row := out.alloc(w, w*size)
		copy(row, l)
		copy(row[len(l):], r)
		return
	}
	w := len(proj)
	row := out.alloc(w, w*size)
	for i, p := range proj {
		if p < len(l) {
			row[i] = l[p]
		} else {
			row[i] = r[p-len(l)]
		}
	}
}

// Next returns the next joined row.
func (m *MergeJoin) Next() (Row, bool, error) { return m.ra.next(m) }

// Close closes both inputs.
func (m *MergeJoin) Close() error {
	err := m.Left.Close()
	if err2 := m.Right.Close(); err == nil {
		err = err2
	}
	return err
}

// HashJoin is hybrid hash join without partition files: the left input
// builds an in-memory table, the right input probes batch by batch.
type HashJoin struct {
	// Left and Right are the input streams; Left builds.
	Left, Right Iterator
	// BuildHint pre-sizes the build hash table; the plan builder sets it
	// from the optimizer's cardinality estimate so the table is
	// allocated once instead of grown from empty.
	BuildHint int
	// KeyHint estimates the distinct join keys on the build side. The
	// key index needs slots per key, not per row, so a duplicate-heavy
	// build gets a table sized (and cache-footprinted) by its key count.
	KeyHint int

	lpos, rpos int
	proj       []int
	lwidth     int
	size       int

	// The build side is an array-chained hash table: rows holds every
	// build row, head is an open-addressed index from key to the newest
	// row with that key, and chain links rows sharing a key (-1 ends a
	// chain). Flat slices instead of a map[int64][]Row keep the build to
	// three allocations and make probes a couple of array reads.
	right BatchIterator
	rows  []Row
	head  joinTable
	chain []int32
	pb    *Batch  // current probe batch
	hits  []int32 // per probe-batch row: initial chain position
	pi    int
	hit   int32 // current chain position; -1 = exhausted
	probe Row
	out   Batch
	ra    rowAdapter
}

// joinTable is a linear-probing hash index from int64 join keys to row
// indices, sized to a power of two at no more than half load. A key and
// its row reference share one 16-byte slot, so a probe touches a single
// cache line; ref 0 means empty (stored indices are offset by one), so
// a fresh table needs no initialization pass — the runtime's zeroed
// allocation is already the empty state.
type joinTable struct {
	slots []joinSlot
	mask  uint64
	shift uint
}

type joinSlot struct {
	key int64
	ref int32 // row index + 1; 0 = empty
}

func newJoinTable(capacity int) joinTable {
	size, bits := 16, uint(4)
	for size < 2*capacity {
		size *= 2
		bits++
	}
	return joinTable{slots: make([]joinSlot, size), mask: uint64(size - 1), shift: 64 - bits}
}

// hash mixes the key multiplicatively and keeps the high bits, which
// carry the most entropy, so consecutive join values spread across slots
// (fibonacci hashing).
func (t *joinTable) hash(k int64) uint64 {
	return (uint64(k) * 0x9e3779b97f4a7c15) >> t.shift
}

// get returns the row index stored for k, or -1.
func (t *joinTable) get(k int64) int32 {
	for s := t.hash(k); ; s = (s + 1) & t.mask {
		sl := &t.slots[s]
		if sl.ref == 0 {
			return -1
		} else if sl.key == k {
			return sl.ref - 1
		}
	}
}

// put stores idx for k, returning the previous index for the key (-1 if
// new) and growing when the table passes half load. The caller counts
// insertions and calls grow; put itself assumes a free slot exists.
func (t *joinTable) put(k int64, idx int32) int32 {
	for s := t.hash(k); ; s = (s + 1) & t.mask {
		sl := &t.slots[s]
		if sl.ref == 0 {
			sl.key, sl.ref = k, idx+1
			return -1
		} else if sl.key == k {
			prev := sl.ref - 1
			sl.ref = idx + 1
			return prev
		}
	}
}

// lookupOrInsert returns the index stored for k, or stores idx for it
// and returns -1 (new key). Unlike put it never replaces an existing
// entry, which makes it a group-index primitive: the first index
// assigned to a key wins. The caller ensures capacity via grow.
func (t *joinTable) lookupOrInsert(k int64, idx int32) int32 {
	for s := t.hash(k); ; s = (s + 1) & t.mask {
		sl := &t.slots[s]
		if sl.ref == 0 {
			sl.key, sl.ref = k, idx+1
			return -1
		} else if sl.key == k {
			return sl.ref - 1
		}
	}
}

// grow rebuilds the table when the requested entry count would pass half
// load, rehashing every slot. Incremental callers (one insert at a time)
// get the classic doubling; bulk callers reserving a whole batch's worst
// case up front get a table sized for it in one rebuild.
func (t *joinTable) grow(entries int) {
	if 2*entries < len(t.slots) {
		return
	}
	capacity := entries
	if capacity < len(t.slots) {
		capacity = len(t.slots) // newJoinTable doubles: size >= 2*cap
	}
	old := *t
	*t = newJoinTable(capacity)
	for _, sl := range old.slots {
		if sl.ref != 0 {
			t.put(sl.key, sl.ref-1)
		}
	}
}

// NewHashJoin resolves join columns (and an optional fused projection)
// against the input schemas.
func NewHashJoin(left, right Iterator, lschema, rschema *Schema, lcol, rcol int, proj []int) *HashJoin {
	return &HashJoin{
		Left: left, Right: right,
		lpos: lcol, rpos: rcol,
		proj:   proj,
		lwidth: lschema.Width(),
		size:   DefaultBatchSize,
	}
}

// SetBatchSize sets the rows per batch.
func (h *HashJoin) SetBatchSize(n int) { h.size = sizeOrDefault(n) }

// Open builds the hash table from the left input.
func (h *HashJoin) Open() error {
	if err := h.Left.Open(); err != nil {
		return err
	}
	if err := h.Right.Open(); err != nil {
		return err
	}
	h.right = asBatch(h.Right)
	h.rows = make([]Row, 0, h.BuildHint)
	tableHint := h.BuildHint
	if h.KeyHint > 0 && h.KeyHint < tableHint {
		tableHint = h.KeyHint
	}
	h.head = newJoinTable(tableHint)
	h.chain = make([]int32, 0, h.BuildHint)
	h.pb, h.pi, h.hit, h.probe = nil, 0, -1, nil
	h.ra.reset()
	build := asBatch(h.Left)
	keys := 0
	for {
		b, ok, err := build.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for _, row := range b.Rows {
			idx := int32(len(h.rows))
			h.rows = append(h.rows, row)
			h.head.grow(keys + 1)
			if prev := h.head.put(row[h.lpos], idx); prev >= 0 {
				h.chain = append(h.chain, prev)
			} else {
				h.chain = append(h.chain, -1)
				keys++
			}
		}
	}
}

// NextBatch returns the next batch of joined rows.
func (h *HashJoin) NextBatch() (*Batch, bool, error) {
	h.out.reset()
	for len(h.out.Rows) < h.size {
		if h.hit >= 0 {
			combineInto(&h.out, h.rows[h.hit], h.probe, h.proj, h.size)
			h.hit = h.chain[h.hit]
			continue
		}
		if h.pb == nil || h.pi >= len(h.pb.Rows) {
			b, ok, err := h.right.NextBatch()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				if len(h.out.Rows) == 0 {
					return nil, false, nil
				}
				return &h.out, true, nil
			}
			h.pb, h.pi = b, 0
			// Probe the whole batch up front: the lookups are
			// independent, so a tight loop lets the out-of-order core
			// overlap their cache misses instead of serializing one
			// miss per emitted row.
			if cap(h.hits) < len(b.Rows) {
				h.hits = make([]int32, len(b.Rows))
			}
			h.hits = h.hits[:len(b.Rows)]
			for i, row := range b.Rows {
				h.hits[i] = h.head.get(row[h.rpos])
			}
		}
		h.probe = h.pb.Rows[h.pi]
		h.hit = h.hits[h.pi]
		h.pi++
	}
	return &h.out, true, nil
}

// Next returns the next joined row.
func (h *HashJoin) Next() (Row, bool, error) { return h.ra.next(h) }

// Close releases the hash table and closes both inputs.
func (h *HashJoin) Close() error {
	h.rows, h.head, h.chain = nil, joinTable{}, nil
	h.pb = nil
	err := h.Left.Close()
	if err2 := h.Right.Close(); err == nil {
		err = err2
	}
	return err
}

// NLJoin is block nested-loops join on an equality predicate; it
// materializes the right input and scans it per left row.
type NLJoin struct {
	// Left and Right are the input streams.
	Left, Right Iterator

	lpos, rpos int
	lwidth     int
	size       int

	lc    cursor
	inner []Row
	lrow  Row
	ri    int
	ldone bool
	out   Batch
	ra    rowAdapter
}

// NewNLJoin resolves join columns against the input schemas.
func NewNLJoin(left, right Iterator, lschema, rschema *Schema, lcol, rcol int) *NLJoin {
	return &NLJoin{Left: left, Right: right, lpos: lcol, rpos: rcol,
		lwidth: lschema.Width(), size: DefaultBatchSize}
}

// SetBatchSize sets the rows per batch.
func (n *NLJoin) SetBatchSize(s int) { n.size = sizeOrDefault(s) }

// Open materializes the inner (right) input.
func (n *NLJoin) Open() error {
	if err := n.Left.Open(); err != nil {
		return err
	}
	if err := n.Right.Open(); err != nil {
		return err
	}
	n.lc.reset(asBatch(n.Left))
	n.inner = n.inner[:0]
	n.lrow, n.ri, n.ldone = nil, 0, false
	n.ra.reset()
	inner := asBatch(n.Right)
	for {
		b, ok, err := inner.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		n.inner = append(n.inner, b.Rows...)
	}
}

// NextBatch returns the next batch of joined rows.
func (n *NLJoin) NextBatch() (*Batch, bool, error) {
	n.out.reset()
	for len(n.out.Rows) < n.size {
		if n.lrow == nil {
			if n.ldone {
				break
			}
			row, ok, err := n.lc.next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				n.ldone = true
				break
			}
			n.lrow, n.ri = row, 0
		}
		for n.ri < len(n.inner) && len(n.out.Rows) < n.size {
			r := n.inner[n.ri]
			n.ri++
			if n.lrow[n.lpos] == r[n.rpos] {
				combineInto(&n.out, n.lrow, r, nil, n.size)
			}
		}
		if n.ri >= len(n.inner) {
			n.lrow = nil
		}
	}
	if len(n.out.Rows) == 0 {
		return nil, false, nil
	}
	return &n.out, true, nil
}

// Next returns the next joined row.
func (n *NLJoin) Next() (Row, bool, error) { return n.ra.next(n) }

// Close releases the inner buffer and closes both inputs.
func (n *NLJoin) Close() error {
	n.inner = nil
	err := n.Left.Close()
	if err2 := n.Right.Close(); err == nil {
		err = err2
	}
	return err
}
