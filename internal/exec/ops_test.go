package exec

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rel"
	"repro/internal/relopt"
)

// rows builds an iterator over literal rows.
type sliceIter struct {
	rows []Row
	next int
	err  error
}

func iterOf(rows ...Row) *sliceIter { return &sliceIter{rows: rows} }

func (s *sliceIter) Open() error { s.next = 0; return s.err }
func (s *sliceIter) Next() (Row, bool, error) {
	if s.err != nil {
		return nil, false, s.err
	}
	if s.next >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.next]
	s.next++
	return r, true, nil
}
func (s *sliceIter) Close() error { return nil }

func schema2() *Schema { return NewSchema([]rel.ColID{1, 2}) }

func TestFilterConjuncts(t *testing.T) {
	in := iterOf(Row{1, 10}, Row{2, 20}, Row{3, 30}, Row{4, 20})
	f := NewFilter(in, schema2(), []rel.Pred{
		{Col: 2, Op: rel.CmpEQ, Val: 20},
		{Col: 1, Op: rel.CmpGT, Val: 2},
	})
	out, err := Collect(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0][0] != 4 {
		t.Fatalf("out = %v", out)
	}
}

func TestFilterColumnColumn(t *testing.T) {
	in := iterOf(Row{1, 1}, Row{2, 3}, Row{5, 5})
	f := NewFilter(in, schema2(), []rel.Pred{{Col: 1, Op: rel.CmpEQ, OtherCol: 2}})
	out, err := Collect(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
}

func TestProjectReorders(t *testing.T) {
	in := iterOf(Row{1, 10}, Row{2, 20})
	p := NewProject(in, schema2(), []rel.ColID{2, 1})
	out, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 10 || out[0][1] != 1 {
		t.Fatalf("out = %v", out)
	}
}

func TestSortDirections(t *testing.T) {
	in := iterOf(Row{3, 1}, Row{1, 2}, Row{2, 2}, Row{1, 1})
	s := NewSort(in, schema2(), []relopt.OrderCol{{Col: 1}, {Col: 2, Desc: true}})
	out, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{{1, 2}, {1, 1}, {2, 2}, {3, 1}}
	for i := range want {
		if out[i][0] != want[i][0] || out[i][1] != want[i][1] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestSortReopenable(t *testing.T) {
	in := iterOf(Row{2, 0}, Row{1, 0})
	s := NewSort(in, schema2(), []relopt.OrderCol{{Col: 1}})
	first, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("reopen lost rows: %v %v", first, second)
	}
}

func TestMergeJoinDuplicateKeys(t *testing.T) {
	left := iterOf(Row{1, 0}, Row{2, 0}, Row{2, 1}, Row{3, 0})
	right := iterOf(Row{2, 7}, Row{2, 8}, Row{4, 9})
	m := NewMergeJoin(left, right, schema2(), schema2(), 0, 0, nil)
	out, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	// 2 left rows with key 2 × 2 right rows = 4.
	if len(out) != 4 {
		t.Fatalf("out = %v", out)
	}
	for _, r := range out {
		if len(r) != 4 || r[0] != 2 || r[2] != 2 {
			t.Fatalf("bad joined row %v", r)
		}
	}
}

func TestMergeJoinEmptySides(t *testing.T) {
	m := NewMergeJoin(iterOf(), iterOf(Row{1, 2}), schema2(), schema2(), 0, 0, nil)
	out, err := Collect(m)
	if err != nil || len(out) != 0 {
		t.Fatalf("out = %v err = %v", out, err)
	}
}

func TestHashJoinMatchesMergeJoin(t *testing.T) {
	left := []Row{{1, 0}, {2, 0}, {2, 1}, {5, 2}}
	right := []Row{{2, 7}, {2, 8}, {5, 9}, {6, 1}}
	h := NewHashJoin(iterOf(left...), iterOf(right...), schema2(), schema2(), 0, 0, nil)
	hout, err := Collect(h)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMergeJoin(iterOf(left...), iterOf(right...), schema2(), schema2(), 0, 0, nil)
	mout, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(hout) != Fingerprint(mout) {
		t.Fatalf("hash %v != merge %v", hout, mout)
	}
}

func TestJoinFusedProjection(t *testing.T) {
	left := iterOf(Row{1, 10})
	right := iterOf(Row{1, 20})
	// proj picks positions 3 (right col 2) and 0 (left col 1).
	h := NewHashJoin(left, right, schema2(), schema2(), 0, 0, []int{3, 0})
	out, err := Collect(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0][0] != 20 || out[0][1] != 1 {
		t.Fatalf("out = %v", out)
	}
}

func TestMergeIntersectSetSemantics(t *testing.T) {
	order := []int{0, 1}
	left := iterOf(Row{1, 1}, Row{2, 2}, Row{2, 2}, Row{3, 3})
	right := iterOf(Row{2, 2}, Row{2, 2}, Row{3, 3}, Row{4, 4})
	m := NewMergeIntersect(left, right, order)
	out, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("out = %v, want two distinct rows", out)
	}
}

func TestHashIntersectMatchesMerge(t *testing.T) {
	l := []Row{{1, 1}, {2, 2}, {2, 2}, {3, 3}}
	r := []Row{{2, 2}, {3, 3}, {5, 5}}
	h, err := Collect(NewHashIntersect(iterOf(l...), iterOf(r...)))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Collect(NewMergeIntersect(iterOf(l...), iterOf(r...), []int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(h) != Fingerprint(m) {
		t.Fatalf("hash %v != merge %v", h, m)
	}
}

func TestGroupByOperatorsAgree(t *testing.T) {
	rows := []Row{{1, 10}, {1, 20}, {2, 5}, {2, 5}, {3, 0}}
	aggs := []rel.Agg{{Fn: rel.AggCount}, {Fn: rel.AggSum, Col: 2}, {Fn: rel.AggMin, Col: 2}, {Fn: rel.AggMax, Col: 2}}
	s := NewSortGroupBy(iterOf(rows...), schema2(), []rel.ColID{1}, aggs)
	sout, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHashGroupBy(iterOf(rows...), schema2(), []rel.ColID{1}, aggs)
	hout, err := Collect(h)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(sout) != Fingerprint(hout) {
		t.Fatalf("sorted %v != hashed %v", sout, hout)
	}
	if len(sout) != 3 {
		t.Fatalf("groups = %v", sout)
	}
	// Group 1: count 2, sum 30, min 10, max 20.
	for _, r := range sout {
		if r[0] == 1 {
			if r[1] != 2 || r[2] != 30 || r[3] != 10 || r[4] != 20 {
				t.Fatalf("group 1 aggregates = %v", r)
			}
		}
	}
}

func TestGlobalGroup(t *testing.T) {
	rows := []Row{{1, 10}, {2, 20}}
	h := NewHashGroupBy(iterOf(rows...), schema2(), nil, []rel.Agg{{Fn: rel.AggCount}})
	out, err := Collect(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0][0] != 2 {
		t.Fatalf("out = %v", out)
	}
}

func TestGatherMergesAndPropagatesErrors(t *testing.T) {
	g := NewGather([]Iterator{
		iterOf(Row{1}, Row{2}),
		iterOf(Row{3}),
		iterOf(),
	})
	out, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}

	boom := errors.New("boom")
	bad := NewGather([]Iterator{iterOf(Row{1}), &sliceIter{err: boom}})
	if _, err := Collect(bad); err == nil {
		t.Fatal("partition error not propagated")
	}
}

func TestSchemaPanicsOnUnknownColumn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pos on unknown column did not panic")
		}
	}()
	schema2().Pos(99)
}

func TestCanonicalReordersColumns(t *testing.T) {
	s := NewSchema([]rel.ColID{5, 1, rel.InvalidCol})
	rows := Canonical([]Row{{50, 10, 7}}, s)
	if rows[0][0] != 10 || rows[0][1] != 50 || rows[0][2] != 7 {
		t.Fatalf("canonical = %v", rows[0])
	}
}

func TestSortedBy(t *testing.T) {
	rows := []Row{{1, 9}, {2, 1}, {2, 5}}
	if !SortedBy(rows, []int{0}) {
		t.Fatal("rows are sorted on col 0")
	}
	if SortedBy(rows, []int{1}) {
		t.Fatal("rows are not sorted on col 1")
	}
}

// TestExternalSortMultipleRuns: tiny runs force the single-level merge
// path; output is still totally ordered and complete.
func TestExternalSortMultipleRuns(t *testing.T) {
	var rows []Row
	for i := 0; i < 100; i++ {
		rows = append(rows, Row{int64((i * 37) % 101), int64(i)})
	}
	s := NewSort(iterOf(rows...), schema2(), []relopt.OrderCol{{Col: 1}})
	s.RunRows = 7 // 15 runs
	out, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(rows) {
		t.Fatalf("lost rows: %d of %d", len(out), len(rows))
	}
	if !SortedBy(out, []int{0}) {
		t.Fatal("output not sorted across runs")
	}
}

// TestExternalSortStability: rows with equal keys keep arrival order
// within a run; across runs completeness is what matters.
func TestExternalSortEqualKeys(t *testing.T) {
	rows := []Row{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	s := NewSort(iterOf(rows...), schema2(), []relopt.OrderCol{{Col: 1}})
	s.RunRows = 2
	out, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(out) != Fingerprint(rows) {
		t.Fatalf("equal-key rows lost: %v", out)
	}
}

// TestExchangeStreamsAndStops: the streaming exchange delivers every
// row exactly once across partitions, and abandoned partitions do not
// wedge the producer.
func TestExchangeStreams(t *testing.T) {
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{int64(i)}
	}
	st := newExchangeState(nil, 4, 0, 0, nil, []Iterator{iterOf(rows...)})
	var wg sync.WaitGroup
	counts := make([]int, 4)
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			out, err := Collect(st.port(p))
			if err != nil {
				t.Errorf("partition %d: %v", p, err)
				return
			}
			for _, r := range out {
				if int(r[0])%4 != p {
					t.Errorf("row %v in partition %d", r, p)
				}
			}
			counts[p] = len(out)
		}(p)
	}
	wg.Wait()
	total := counts[0] + counts[1] + counts[2] + counts[3]
	if total != len(rows) {
		t.Fatalf("partitions delivered %d of %d rows", total, len(rows))
	}
}

// TestExchangeMultiProducer: several producers routing into the same
// partitions deliver each producer's rows exactly once.
func TestExchangeMultiProducer(t *testing.T) {
	producers := make([]Iterator, 3)
	total := 0
	for p := range producers {
		rows := make([]Row, 500+100*p)
		for i := range rows {
			rows[i] = Row{int64(len(rows)*1000 + i)}
		}
		total += len(rows)
		producers[p] = iterOf(rows...)
	}
	st := newExchangeState(nil, 2, 0, 64, nil, producers)
	var wg sync.WaitGroup
	counts := make([]int, 2)
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			out, err := Collect(st.port(p))
			if err != nil {
				t.Errorf("partition %d: %v", p, err)
				return
			}
			counts[p] = len(out)
		}(p)
	}
	wg.Wait()
	if counts[0]+counts[1] != total {
		t.Fatalf("partitions delivered %d of %d rows", counts[0]+counts[1], total)
	}
}

// TestExchangeOrderedMerge: a multi-producer exchange over sorted
// producers preserves the order within every partition.
func TestExchangeOrderedMerge(t *testing.T) {
	producers := make([]Iterator, 2)
	for p := range producers {
		rows := make([]Row, 1000)
		for i := range rows {
			rows[i] = Row{int64(2*i + p)} // sorted ascending
		}
		producers[p] = iterOf(rows...)
	}
	keys := []sortKey{{pos: 0}}
	st := newExchangeState(nil, 2, 0, 16, keys, producers)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			out, err := Collect(st.port(p))
			if err != nil {
				t.Errorf("partition %d: %v", p, err)
				return
			}
			if len(out) != 1000 {
				t.Errorf("partition %d got %d rows, want 1000", p, len(out))
			}
			if !SortedBy(out, []int{0}) {
				t.Errorf("partition %d not sorted", p)
			}
		}(p)
	}
	wg.Wait()
}

// TestExchangeEarlyClose: closing one partition while others drain
// completes without deadlock and still delivers the open partitions.
func TestExchangeEarlyClose(t *testing.T) {
	rows := make([]Row, 4000)
	for i := range rows {
		rows[i] = Row{int64(i)}
	}
	st := newExchangeState(nil, 2, 0, 0, nil, []Iterator{iterOf(rows...)})
	abandoned := st.port(0)
	if err := abandoned.Open(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := abandoned.Next(); err != nil {
		t.Fatal(err)
	}
	abandoned.Close() // stop consuming partition 0

	out, err := Collect(st.port(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(rows)/2 {
		t.Fatalf("kept partition got %d rows, want %d", len(out), len(rows)/2)
	}
}

// TestExchangePropagatesChildError: a failing input surfaces on every
// partition.
func TestExchangeErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	st := newExchangeState(nil, 2, 0, 0, nil, []Iterator{&sliceIter{err: boom}})
	for p := 0; p < 2; p++ {
		if _, err := Collect(st.port(p)); err == nil {
			t.Fatalf("partition %d: error not propagated", p)
		}
	}
}

// trackIter counts how many rows were pulled from it and signals Close.
type trackIter struct {
	n      int64
	next   int64
	closed chan struct{}
}

func (c *trackIter) Open() error { c.next = 0; return nil }
func (c *trackIter) Next() (Row, bool, error) {
	if c.next >= c.n {
		return nil, false, nil
	}
	c.next++
	return Row{c.next - 1}, true, nil
}
func (c *trackIter) Close() error { close(c.closed); return nil }

// TestExchangeProducerExitsWhenAllAbandoned: regression for the
// producer-leak bug — once every partition consumer has closed, the
// producer must exit promptly instead of draining its input to
// end-of-stream.
func TestExchangeProducerExitsWhenAllAbandoned(t *testing.T) {
	child := &trackIter{n: 1_000_000, closed: make(chan struct{})}
	st := newExchangeState(nil, 2, 0, 0, nil, []Iterator{child})
	ports := []Iterator{st.port(0), st.port(1)}
	for _, p := range ports {
		if err := p.Open(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := ports[0].Next(); err != nil {
		t.Fatal(err)
	}
	for _, p := range ports {
		p.Close()
	}
	select {
	case <-child.closed:
	case <-time.After(5 * time.Second):
		t.Fatal("producer did not exit after all partitions closed")
	}
	if pulled := child.next; pulled >= child.n {
		t.Fatalf("producer drained its child to end-of-stream (%d rows)", pulled)
	}
}

// TestExchangeContextCancel: canceling the exchange's context while a
// consumer is mid-stream tears the producers down and surfaces the
// cancellation.
func TestExchangeContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	child := &trackIter{n: 1_000_000, closed: make(chan struct{})}
	st := newExchangeState(ctx, 2, 0, 0, nil, []Iterator{child})
	ports := []Iterator{st.port(0), st.port(1)}
	for _, p := range ports {
		if err := p.Open(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := ports[0].Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	// Both ports must terminate (error or end-of-stream) rather than
	// block forever; the producer must exit.
	for i, p := range ports {
		for {
			_, ok, err := p.Next()
			if err != nil || !ok {
				break
			}
			_ = i
		}
		p.Close()
	}
	select {
	case <-child.closed:
	case <-time.After(5 * time.Second):
		t.Fatal("producer did not exit after context cancel")
	}
}

// TestQuickExternalSortIsSortedPermutation: for random rows and run
// sizes, the external sort emits a sorted permutation of its input.
func TestQuickExternalSortIsSortedPermutation(t *testing.T) {
	check := func(seed int64, runRows uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = Row{rng.Int63n(50), rng.Int63n(1000)}
		}
		s := NewSort(iterOf(rows...), schema2(), []relopt.OrderCol{{Col: 1}, {Col: 2}})
		s.RunRows = 1 + int(runRows)%32
		out, err := Collect(s)
		if err != nil {
			return false
		}
		return len(out) == n &&
			SortedBy(out, []int{0, 1}) &&
			Fingerprint(out) == Fingerprint(rows)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGroupByConservation: for random inputs, per-group COUNTs sum
// to the input size and SUMs to the input total under both grouping
// algorithms.
func TestQuickGroupByConservation(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		rows := make([]Row, n)
		var total int64
		for i := range rows {
			v := rng.Int63n(100)
			rows[i] = Row{rng.Int63n(8), v}
			total += v
		}
		aggs := []rel.Agg{{Fn: rel.AggCount}, {Fn: rel.AggSum, Col: 2}}
		for _, mk := range []func() Iterator{
			func() Iterator {
				sorted := NewSort(iterOf(rows...), schema2(), []relopt.OrderCol{{Col: 1}})
				return NewSortGroupBy(sorted, schema2(), []rel.ColID{1}, aggs)
			},
			func() Iterator {
				return NewHashGroupBy(iterOf(rows...), schema2(), []rel.ColID{1}, aggs)
			},
		} {
			out, err := Collect(mk())
			if err != nil {
				return false
			}
			var count, sum int64
			for _, r := range out {
				count += r[1]
				sum += r[2]
			}
			if count != int64(n) || sum != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
