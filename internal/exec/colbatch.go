package exec

// The columnar batch protocol. The row batches of batch.go amortize
// iterator dispatch, but their kernels still walk []Row slices of
// pointers: every predicate, aggregate, and join-probe loop is bound by
// header loads rather than by the ALU. ColBatch is the columnar
// complement: one dense []int64 vector per column plus an optional
// []int32 selection vector, so filters mark survivors instead of copying
// rows and downstream kernels iterate typed slices the compiler can
// bounds-check-eliminate.
//
// Lifetime contract (the columnar analogue of the batch.go contract,
// with one sharpening): the *ColBatch returned by NextColBatch — its
// Cols vector set AND the vector contents — is valid only until the next
// NextColBatch or Close call on the same operator. Unlike row batches,
// whose row data is never reused, columnar vectors MAY be recycled
// views or scratch buffers; a consumer that needs values across batch
// boundaries must copy them out (see materializeInto). The Sel slice is
// likewise owned by the producer and recycled. Vectors produced as
// views of stored tables happen to stay valid forever, but no operator
// may rely on that.
//
// Adapter boundaries: every columnar operator also implements the row
// Batch protocol (NextBatch materializes the current columnar batch
// through materializeInto) and the row Iterator, so storage load,
// Exchange routing, sorts, sets, spooling, and Collect keep consuming
// rows unchanged. Conversely asCols promotes any row operator to the
// columnar protocol through a transposing adapter, so columnar
// operators accept arbitrary inputs.

// ColBatch is one columnar unit of data flow: a set of equal-length
// column vectors and an optional selection vector naming the live rows.
type ColBatch struct {
	// Cols holds one vector per output column, each of length N.
	Cols [][]int64
	// Sel, when non-nil, lists the live row indexes in ascending order;
	// nil means all N rows are live. Kernels that consume a batch with a
	// selection vector gather through it.
	Sel []int32
	// N is the vector length (the live count only when Sel is nil).
	N int
}

// Len returns the number of live rows.
func (cb *ColBatch) Len() int {
	if cb.Sel != nil {
		return len(cb.Sel)
	}
	return cb.N
}

// ColBatchIterator is the columnar Volcano iterator interface: open
// once, pull columnar batches until ok is false, close. See the
// package-level lifetime contract above.
type ColBatchIterator interface {
	Iterator
	// NextColBatch returns the next columnar batch; ok is false at end
	// of stream. The returned batch and its vectors are valid until the
	// next call. Batches are never empty: Len() >= 1 when ok.
	NextColBatch() (cb *ColBatch, ok bool, err error)
}

// asCols promotes any Iterator to the columnar protocol: columnar
// operators are returned as themselves, row-producing iterators are
// wrapped in a transposing adapter. As with asBatch, the adapter
// delegates Open/Close to the wrapped iterator; callers open the
// underlying input as usual.
func asCols(it Iterator) ColBatchIterator {
	if ci, ok := it.(ColBatchIterator); ok {
		return ci
	}
	return &rowCols{it: it, in: asBatch(it)}
}

// rowCols adapts a row-batch producer into a columnar one by transposing
// each batch into reusable vectors.
type rowCols struct {
	it   Iterator
	in   BatchIterator
	vecs [][]int64
	view ColBatch
}

func (r *rowCols) Open() error  { return r.it.Open() }
func (r *rowCols) Close() error { return r.it.Close() }

func (r *rowCols) Next() (Row, bool, error) {
	return r.it.Next()
}

func (r *rowCols) NextColBatch() (*ColBatch, bool, error) {
	b, ok, err := r.in.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	n := len(b.Rows)
	w := len(b.Rows[0])
	for len(r.vecs) < w {
		r.vecs = append(r.vecs, nil)
	}
	r.view.Cols = r.view.Cols[:0]
	for j := 0; j < w; j++ {
		if cap(r.vecs[j]) < n {
			r.vecs[j] = make([]int64, n)
		}
		r.vecs[j] = r.vecs[j][:n]
		r.view.Cols = append(r.view.Cols, r.vecs[j])
	}
	for i, row := range b.Rows {
		for j, v := range row {
			r.vecs[j][i] = v
		}
	}
	r.view.Sel, r.view.N = nil, n
	return &r.view, true, nil
}

// materializeInto transposes a columnar batch into row storage appended
// to out — one contiguous arena block plus cheap row headers — bridging
// a columnar operator's output back onto the row protocol. chunk sizes
// arena refills, as in Batch.alloc. The gather runs column-at-a-time
// with a strided write, so each source vector is swept sequentially.
func materializeInto(out *Batch, cb *ColBatch, chunk int) {
	w := len(cb.Cols)
	n := cb.Len()
	block := out.allocRows(n, w, chunk)
	if cb.Sel == nil {
		for j, col := range cb.Cols {
			col = col[:cb.N]
			k := j
			for _, v := range col {
				block[k] = v
				k += w
			}
		}
		return
	}
	sel := cb.Sel
	for j, col := range cb.Cols {
		k := j
		for _, s := range sel {
			block[k] = col[s]
			k += w
		}
	}
}
