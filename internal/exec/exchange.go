package exec

import (
	"fmt"
	"sync"
)

// exchangeState is the shared runtime of one exchange operator: a
// single producer goroutine drains the serial input once and routes
// rows to per-partition channels — Volcano's exchange as a pipelined
// inter-process (here inter-goroutine) boundary, rather than a
// materialization.
type exchangeState struct {
	degree int
	pos    int

	start sync.Once
	// child is built lazily by the producer, so the serial subtree is
	// constructed exactly once no matter how many partition instances
	// reference it.
	child func() (Iterator, error)

	outs []chan Row
	done []chan struct{}

	mu  sync.Mutex
	err error
}

// exchangeBuffer is each partition channel's capacity: the flow-control
// window between producer and consumers.
const exchangeBuffer = 256

func newExchangeState(degree, pos int, child func() (Iterator, error)) *exchangeState {
	st := &exchangeState{degree: degree, pos: pos, child: child}
	st.outs = make([]chan Row, degree)
	st.done = make([]chan struct{}, degree)
	for i := range st.outs {
		st.outs[i] = make(chan Row, exchangeBuffer)
		st.done[i] = make(chan struct{})
	}
	return st
}

// run is the producer: it opens the serial input, hashes each row to
// its partition, and pushes it unless that partition's consumer has
// closed. Every partition channel is closed at the end (or on error).
func (st *exchangeState) run() {
	defer func() {
		for _, out := range st.outs {
			close(out)
		}
	}()
	it, err := st.child()
	if err != nil {
		st.setErr(err)
		return
	}
	if err := it.Open(); err != nil {
		st.setErr(err)
		return
	}
	defer it.Close()
	for {
		row, ok, err := it.Next()
		if err != nil {
			st.setErr(err)
			return
		}
		if !ok {
			return
		}
		p := int(uint64(row[st.pos]) % uint64(st.degree))
		select {
		case st.outs[p] <- row:
		case <-st.done[p]:
			// The consumer abandoned this partition; drop its rows.
		}
	}
}

func (st *exchangeState) setErr(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
}

func (st *exchangeState) getErr() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// exchangePort is one partition's view of an exchange: an ordinary
// iterator whose rows arrive from the shared producer.
type exchangePort struct {
	st    *exchangeState
	part  int
	close sync.Once
}

// Open starts the shared producer on first use.
func (p *exchangePort) Open() error {
	p.st.start.Do(func() { go p.st.run() })
	return nil
}

// Next returns the next row routed to this partition.
func (p *exchangePort) Next() (Row, bool, error) {
	row, ok := <-p.st.outs[p.part]
	if !ok {
		if err := p.st.getErr(); err != nil {
			return nil, false, fmt.Errorf("exec: exchange producer: %w", err)
		}
		return nil, false, nil
	}
	return row, true, nil
}

// Close releases this partition; the producer stops routing to it.
func (p *exchangePort) Close() error {
	p.close.Do(func() { close(p.st.done[p.part]) })
	return nil
}
