package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// exchangeQueueBatches bounds each partition queue's depth in batches:
// the flow-control window between producers and consumers.
const exchangeQueueBatches = 4

// msgQueue is an unbounded multi-producer single-consumer batch queue.
// Ordered-merge exchanges use it instead of bounded channels: a k-way
// merge consumer cannot emit until it has a head from *every* producer,
// so a producer blocked on one partition's bounded queue while another
// partition's merge starves for its head would deadlock. Unbounded
// pushes never block, at the cost of buffering up to a partition's share
// of the input when the consumer is slow.
type msgQueue struct {
	mu     sync.Mutex
	cond   sync.Cond
	msgs   []gatherBatchMsg
	closed bool
}

func newMsgQueue() *msgQueue {
	q := &msgQueue{}
	q.cond.L = &q.mu
	return q
}

// push enqueues without blocking; pushes after close are dropped.
func (q *msgQueue) push(m gatherBatchMsg) {
	q.mu.Lock()
	if !q.closed {
		q.msgs = append(q.msgs, m)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// pop blocks until a message is available or the queue is closed and
// drained; ok is false in the latter case.
func (q *msgQueue) pop() (gatherBatchMsg, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.msgs) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.msgs) == 0 {
		return gatherBatchMsg{}, false
	}
	m := q.msgs[0]
	q.msgs = q.msgs[1:]
	return m, true
}

// close wakes any blocked pop; the consumer still drains queued messages.
func (q *msgQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// exchangeState is the shared runtime of one exchange operator:
// Volcano's exchange as a pipelined inter-goroutine boundary. N producer
// goroutines each drain their own partition-local instance of the input
// subplan and route rows — a batch at a time — to per-partition bounded
// queues; one consumer port per partition pulls from its queue.
//
// Shutdown discipline: a consumer closing its port fires that
// partition's done channel (producers stop routing to it); once every
// partition has closed, allDone fires and producers exit immediately
// instead of draining their input to end-of-stream. The first producer
// error cancels the exchange's context, stopping the other producers,
// and surfaces from every port.
type exchangeState struct {
	degree int
	pos    int
	size   int
	// keys non-empty puts the exchange in ordered-merge mode: each
	// producer's stream is sorted on these keys, so each port runs a
	// k-way merge over per-(producer,partition) queues instead of
	// reading one interleaved queue.
	keys []sortKey

	producers []Iterator

	ctx    context.Context
	cancel context.CancelFunc

	startOnce sync.Once
	// outs are the per-partition queues (unordered mode: shared by all
	// producers).
	outs []chan gatherBatchMsg
	// queues are the per-producer per-partition queues (ordered mode);
	// unbounded so a k-way merge starving for one producer's head can
	// never deadlock a producer blocked on another partition.
	queues [][]*msgQueue

	done    []chan struct{}
	closed  atomic.Int32
	allDone chan struct{}

	wg sync.WaitGroup

	mu  sync.Mutex
	err error
}

// newExchangeState wires the shared state for one exchange node.
// producers are the pre-built partition-local input instances; size is
// the routing batch size; keys non-empty selects ordered-merge mode.
func newExchangeState(ctx context.Context, degree, pos, size int, keys []sortKey, producers []Iterator) *exchangeState {
	if ctx == nil {
		ctx = context.Background()
	}
	st := &exchangeState{
		degree:    degree,
		pos:       pos,
		size:      sizeOrDefault(size),
		keys:      keys,
		producers: producers,
		done:      make([]chan struct{}, degree),
		allDone:   make(chan struct{}),
	}
	st.ctx, st.cancel = context.WithCancel(ctx)
	for i := range st.done {
		st.done[i] = make(chan struct{})
	}
	if st.ordered() {
		st.queues = make([][]*msgQueue, len(producers))
		for p := range producers {
			st.queues[p] = make([]*msgQueue, degree)
			for d := 0; d < degree; d++ {
				st.queues[p][d] = newMsgQueue()
			}
		}
	} else {
		st.outs = make([]chan gatherBatchMsg, degree)
		for i := range st.outs {
			st.outs[i] = make(chan gatherBatchMsg, exchangeQueueBatches*len(producers))
		}
	}
	return st
}

// ordered reports whether the exchange preserves a sort order across the
// partition boundary (multi-producer only; a single sorted producer
// fills each queue in order already).
func (st *exchangeState) ordered() bool { return len(st.keys) > 0 && len(st.producers) > 1 }

// port returns the consumer iterator for one partition.
func (st *exchangeState) port(part int) Iterator {
	if st.ordered() {
		return &exchangePortOrdered{st: st, part: part, size: st.size}
	}
	return &exchangePort{st: st, part: part}
}

// start launches the producers on first use, plus a waiter that releases
// the context and (in unordered mode) closes the shared queues once all
// producers have exited.
func (st *exchangeState) start() {
	st.startOnce.Do(func() {
		st.wg.Add(len(st.producers))
		for p := range st.producers {
			go st.runProducer(p)
		}
		go func() {
			st.wg.Wait()
			st.cancel()
			for _, ch := range st.outs {
				close(ch)
			}
		}()
	})
}

// runProducer drains producer p's input instance, hash-routing each row
// to a per-partition staging buffer and shipping full buffers to that
// partition's queue.
func (st *exchangeState) runProducer(p int) {
	defer st.wg.Done()
	if st.ordered() {
		defer func() {
			for _, q := range st.queues[p] {
				q.close()
			}
		}()
	}
	it := st.producers[p]
	if err := it.Open(); err != nil {
		st.fail(err)
		return
	}
	defer it.Close()
	bi := asBatch(it)
	stage := make([][]Row, st.degree)
	skip := make([]bool, st.degree)
	for {
		// Exit as soon as every consumer has closed, or on cancel —
		// never drain the input to end-of-stream for nobody.
		select {
		case <-st.allDone:
			return
		case <-st.ctx.Done():
			st.fail(st.ctx.Err())
			return
		default:
		}
		b, ok, err := bi.NextBatch()
		if err != nil {
			st.fail(err)
			return
		}
		if !ok {
			break
		}
		for _, row := range b.Rows {
			d := int(uint64(row[st.pos]) % uint64(st.degree))
			if skip[d] {
				continue
			}
			if stage[d] == nil {
				stage[d] = make([]Row, 0, st.size)
			}
			stage[d] = append(stage[d], row)
			if len(stage[d]) >= st.size {
				if !st.send(p, d, stage[d], skip) {
					return
				}
				stage[d] = nil
			}
		}
	}
	for d, rows := range stage {
		if len(rows) == 0 || skip[d] {
			continue
		}
		if !st.send(p, d, rows, skip) {
			return
		}
	}
}

// send ships one staged batch to partition d's queue; it gives up on the
// partition when its consumer closed, and reports false when the whole
// exchange should stop.
func (st *exchangeState) send(p, d int, rows []Row, skip []bool) bool {
	if st.ordered() {
		// Unbounded queue: check for shutdown without blocking, then push.
		select {
		case <-st.done[d]:
			skip[d] = true
			return true
		case <-st.allDone:
			return false
		case <-st.ctx.Done():
			st.fail(st.ctx.Err())
			return false
		default:
		}
		st.queues[p][d].push(gatherBatchMsg{rows: rows})
		return true
	}
	select {
	case st.outs[d] <- gatherBatchMsg{rows: rows}:
	case <-st.done[d]:
		skip[d] = true
	case <-st.allDone:
		return false
	case <-st.ctx.Done():
		st.fail(st.ctx.Err())
		return false
	}
	return true
}

// fail records the first producer error and cancels the exchange so the
// remaining producers stop promptly.
func (st *exchangeState) fail(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
	st.cancel()
}

func (st *exchangeState) getErr() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// closePart marks one partition's consumer as gone; the last one fires
// allDone, letting producers exit without draining their inputs.
func (st *exchangeState) closePart(part int) {
	close(st.done[part])
	if st.closed.Add(1) == int32(st.degree) {
		close(st.allDone)
	}
}

// exchangePort is one partition's consumer view of an exchange: an
// ordinary (batch) iterator whose batches arrive from the producers.
type exchangePort struct {
	st        *exchangeState
	part      int
	closeOnce sync.Once
	view      Batch
	ra        rowAdapter
}

// Open starts the shared producers on first use.
func (p *exchangePort) Open() error {
	p.ra.reset()
	p.st.start()
	return nil
}

// NextBatch returns the next batch routed to this partition.
func (p *exchangePort) NextBatch() (*Batch, bool, error) {
	msg, ok := <-p.st.outs[p.part]
	if !ok {
		if err := p.st.getErr(); err != nil {
			return nil, false, fmt.Errorf("exec: exchange producer: %w", err)
		}
		return nil, false, nil
	}
	p.view.Rows = msg.rows
	return &p.view, true, nil
}

// Next returns the next row routed to this partition.
func (p *exchangePort) Next() (Row, bool, error) { return p.ra.next(p) }

// Close releases this partition; producers stop routing to it.
func (p *exchangePort) Close() error {
	p.closeOnce.Do(func() { p.st.closePart(p.part) })
	return nil
}

// exchangePortOrdered is the sort-preserving consumer view: every
// producer's stream is sorted on the exchange keys, and the port k-way
// merges the per-producer queues of its partition.
type exchangePortOrdered struct {
	st        *exchangeState
	part      int
	size      int
	closeOnce sync.Once

	bufs  [][]Row
	idx   []int
	pdone []bool
	out   Batch
	ra    rowAdapter
}

// Open starts the shared producers on first use.
func (p *exchangePortOrdered) Open() error {
	p.bufs = make([][]Row, len(p.st.producers))
	p.idx = make([]int, len(p.st.producers))
	p.pdone = make([]bool, len(p.st.producers))
	p.ra.reset()
	p.st.start()
	return nil
}

// head ensures producer i has a buffered row for this partition.
func (p *exchangePortOrdered) head(i int) (Row, bool, error) {
	for {
		if p.idx[i] < len(p.bufs[i]) {
			return p.bufs[i][p.idx[i]], true, nil
		}
		if p.pdone[i] {
			return nil, false, nil
		}
		msg, ok := p.st.queues[i][p.part].pop()
		if !ok {
			p.pdone[i] = true
			if err := p.st.getErr(); err != nil {
				return nil, false, fmt.Errorf("exec: exchange producer: %w", err)
			}
			return nil, false, nil
		}
		p.bufs[i], p.idx[i] = msg.rows, 0
	}
}

func (p *exchangePortOrdered) less(a, b Row) bool {
	for _, k := range p.st.keys {
		av, bv := a[k.pos], b[k.pos]
		if av == bv {
			continue
		}
		if k.desc {
			return av > bv
		}
		return av < bv
	}
	return false
}

// NextBatch returns the next batch of the partition's k-way merge.
func (p *exchangePortOrdered) NextBatch() (*Batch, bool, error) {
	p.out.reset()
	for len(p.out.Rows) < p.size {
		best := -1
		var bestRow Row
		for i := range p.bufs {
			row, ok, err := p.head(i)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue
			}
			if best < 0 || p.less(row, bestRow) {
				best, bestRow = i, row
			}
		}
		if best < 0 {
			break
		}
		p.idx[best]++
		p.out.add(bestRow)
	}
	if len(p.out.Rows) == 0 {
		return nil, false, nil
	}
	return &p.out, true, nil
}

// Next returns the next row of the partition's k-way merge.
func (p *exchangePortOrdered) Next() (Row, bool, error) { return p.ra.next(p) }

// Close releases this partition; producers stop routing to it.
func (p *exchangePortOrdered) Close() error {
	p.closeOnce.Do(func() { p.st.closePart(p.part) })
	return nil
}
