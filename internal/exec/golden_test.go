package exec_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// engineConfigs are the executor configurations the golden tests compare:
// the row-at-a-time baseline, batched execution at the default and at an
// awkward odd batch size, a single-row batch with fusion left on, and
// the columnar engine at the default, an odd, and a single-row batch
// size.
var engineConfigs = []struct {
	name string
	opts exec.Options
}{
	{"row", exec.Options{BatchSize: 1, NoFusion: true}},
	{"batch", exec.Options{}},
	{"batch7", exec.Options{BatchSize: 7}},
	{"batch1-fused", exec.Options{BatchSize: 1}},
	{"columnar", exec.Options{Columnar: true}},
	{"columnar7", exec.Options{Columnar: true, BatchSize: 7}},
	{"columnar1", exec.Options{Columnar: true, BatchSize: 1}},
}

// TestEnginesAgreeRandomQueries runs randomized select-join queries
// through every engine configuration — and, for partitionable queries,
// through exchange plans at degrees 1, 2, and 4 — and requires identical
// result multisets.
func TestEnginesAgreeRandomQueries(t *testing.T) {
	cat, db, s := smallData(t, 46, 5)
	for trial := 0; trial < 12; trial++ {
		n := 2 + trial%4
		q := s.SelectJoinQuery(cat, n, datagen.ShapeRandom)
		plan := optimize(t, cat, q.Root, nil, relopt.DefaultConfig())

		var golden string
		var goldenRows int
		for _, ec := range engineConfigs {
			got, schema, err := exec.RunOpts(nil, db, plan, nil, ec.opts)
			if err != nil {
				t.Fatalf("trial %d %s: %v\nplan:\n%s", trial, ec.name, err, plan.Format())
			}
			fp := exec.Fingerprint(exec.Canonical(got, schema))
			if ec.name == "row" {
				golden, goldenRows = fp, len(got)
				continue
			}
			if fp != golden {
				t.Fatalf("trial %d: %s result differs from row engine (%d vs %d rows)\nplan:\n%s",
					trial, ec.name, len(got), goldenRows, plan.Format())
			}
		}

		for _, degree := range []int{1, 2, 4} {
			cfg := relopt.DefaultConfig()
			cfg.Parallel = true
			cfg.Degree = degree
			required := relopt.HashPartitioned(q.Joins[0][0], degree)
			parPlan, err := optimizeParallel(cat, q, required, cfg)
			if err != nil {
				continue // no parallel plan at this degree for this query
			}
			for _, workers := range []int{0, 2} {
				for _, columnar := range []bool{false, true} {
					got, schema, err := exec.RunOpts(nil, db, parPlan,
						nil, exec.Options{ExchangeWorkers: workers, Columnar: columnar})
					if err != nil {
						t.Fatalf("trial %d degree %d workers %d columnar %v: %v\nplan:\n%s",
							trial, degree, workers, columnar, err, parPlan.Format())
					}
					if fp := exec.Fingerprint(exec.Canonical(got, schema)); fp != golden {
						t.Fatalf("trial %d: exchange degree %d workers %d columnar %v differs from row engine (%d vs %d rows)\nplan:\n%s",
							trial, degree, workers, columnar, len(got), goldenRows, parPlan.Format())
					}
				}
			}
		}
	}
}

// optimizeParallel optimizes under a parallel model, returning an error
// when the model finds no plan for the partitioning requirement.
func optimizeParallel(cat *rel.Catalog, q datagen.Query, required core.PhysProps, cfg relopt.Config) (*core.Plan, error) {
	opt := core.NewOptimizer(relopt.New(cat, cfg), nil)
	root := opt.InsertQuery(q.Root)
	plan, err := opt.Optimize(root, required)
	if err != nil {
		return nil, err
	}
	if plan == nil {
		return nil, fmt.Errorf("no plan")
	}
	return plan, nil
}

// TestEnginesAgreeOrderBy checks that a sort-requiring plan delivers the
// same ordered rows under every engine configuration, including through
// an ordered exchange merge.
func TestEnginesAgreeOrderBy(t *testing.T) {
	cat, db, s := smallData(t, 47, 4)
	for trial := 0; trial < 8; trial++ {
		q := s.SelectJoinQuery(cat, 2+trial%3, datagen.ShapeChain)
		sortCol := q.Joins[0][0]
		plan := optimize(t, cat, q.Root, relopt.SortedOn(sortCol), relopt.DefaultConfig())

		var golden string
		for _, ec := range engineConfigs {
			got, schema, err := exec.RunOpts(nil, db, plan, nil, ec.opts)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, ec.name, err)
			}
			if !exec.SortedBy(got, []int{schema.Pos(sortCol)}) {
				t.Fatalf("trial %d: %s output not sorted on c%d\nplan:\n%s",
					trial, ec.name, sortCol, plan.Format())
			}
			fp := exec.Fingerprint(exec.Canonical(got, schema))
			if ec.name == "row" {
				golden = fp
			} else if fp != golden {
				t.Fatalf("trial %d: %s result differs from row engine", trial, ec.name)
			}
		}
	}
}

// TestPlanEarlyCloseLeaksNoGoroutines builds parallel exchange plans,
// reads a handful of rows, abandons the iterator, and checks every
// exchange producer goroutine exits.
func TestPlanEarlyCloseLeaksNoGoroutines(t *testing.T) {
	cat, db, s := smallData(t, 48, 4)
	q := s.SelectJoinQuery(cat, 3, datagen.ShapeChain)
	cfg := relopt.DefaultConfig()
	cfg.Parallel = true
	cfg.Degree = 4
	required := relopt.HashPartitioned(q.Joins[0][0], 4)
	plan := optimize(t, cat, q.Root, required, cfg)

	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		it, _, err := exec.BuildPlanOpts(nil, db, plan, nil, exec.Options{})
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		if err := it.Open(); err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, ok, err := it.Next(); err != nil || !ok {
			t.Fatalf("next: ok=%v err=%v", ok, err)
		}
		if err := it.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	waitForGoroutines(t, before)
}

// TestPlanContextCancelStopsWorkers cancels the execution context while
// draining a parallel plan and checks the run fails fast and tears down
// its exchange workers.
func TestPlanContextCancelStopsWorkers(t *testing.T) {
	cat, db, s := smallData(t, 49, 4)
	q := s.SelectJoinQuery(cat, 3, datagen.ShapeChain)
	cfg := relopt.DefaultConfig()
	cfg.Parallel = true
	cfg.Degree = 4
	required := relopt.HashPartitioned(q.Joins[0][0], 4)
	plan := optimize(t, cat, q.Root, required, cfg)

	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		it, _, err := exec.BuildPlanOpts(ctx, db, plan, nil, exec.Options{})
		if err != nil {
			cancel()
			t.Fatalf("build: %v", err)
		}
		if err := it.Open(); err != nil {
			cancel()
			t.Fatalf("open: %v", err)
		}
		cancel()
		// Drain until the cancellation surfaces; the producers check the
		// context once per batch, so a bounded number of buffered rows
		// may still arrive first.
		var sawErr error
		for {
			_, ok, err := it.Next()
			if err != nil {
				sawErr = err
				break
			}
			if !ok {
				t.Fatal("iterator completed despite canceled context")
			}
		}
		if cerr := it.Close(); sawErr == nil && cerr == nil {
			t.Fatal("neither Next nor Close reported the cancellation")
		}
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (with slack for runtime helpers), failing after two seconds.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", baseline, n, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
