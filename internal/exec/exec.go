// Package exec is a Volcano-style query execution engine: algorithms
// consuming and producing streams of tuples through the iterator
// interface (open/next/close), as in the Volcano query processor the
// optimizer generator was built for. It executes the physical plans
// produced by optimizers generated from the relational model
// (internal/relopt), including the exchange operator for partitioned
// parallelism.
package exec

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/rel"
)

// Row is one tuple: values aligned with a Schema's column list.
type Row []int64

// Clone copies a row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Schema maps the columns of a stream to row positions. Aggregate
// outputs occupy positions with column ID 0 (they are not catalog
// columns).
type Schema struct {
	// Cols lists the stream's columns in row order.
	Cols []rel.ColID

	pos map[rel.ColID]int
}

// NewSchema builds a schema over the given column list.
func NewSchema(cols []rel.ColID) *Schema {
	s := &Schema{Cols: cols, pos: make(map[rel.ColID]int, len(cols))}
	for i, c := range cols {
		if c != rel.InvalidCol {
			s.pos[c] = i
		}
	}
	return s
}

// Pos returns the row position of a column; it panics on unknown
// columns, which indicates a planner bug.
func (s *Schema) Pos(c rel.ColID) int {
	p, ok := s.pos[c]
	if !ok {
		panic(fmt.Sprintf("exec: column c%d not in schema %v", c, s.Cols))
	}
	return p
}

// Has reports whether the schema contains the column.
func (s *Schema) Has(c rel.ColID) bool {
	_, ok := s.pos[c]
	return ok
}

// Width returns the number of columns.
func (s *Schema) Width() int { return len(s.Cols) }

// Table is a stored relation.
type Table struct {
	// Name is the relation name.
	Name string
	// Schema is the table's column layout.
	Schema *Schema
	// Rows is the table's contents.
	Rows []Row

	// cols is the column-major projection of Rows, built once by
	// compact: one dense vector per column, in clustered order, so a
	// ColScan produces columnar batches as zero-copy windows without a
	// transpose on the hot path. Nil for tables that were never
	// compacted (hand-built test tables) or are empty; the plan builder
	// falls back to row scans then.
	cols [][]int64
}

// compact rewrites the table's row storage into one contiguous slab in
// scan order, and builds the column-major projection from it. Loaded
// rows arrive as individually allocated slices in whatever order the
// loader produced them; after sorting into clustered order a scan would
// chase pointers all over the heap. The slab makes a full scan a
// sequential sweep and frees the per-row allocations.
func (t *Table) compact() {
	width := 0
	for _, r := range t.Rows {
		width += len(r)
	}
	slab := make([]int64, 0, width)
	for i, r := range t.Rows {
		off := len(slab)
		slab = append(slab, r...)
		t.Rows[i] = Row(slab[off:len(slab):len(slab)])
	}
	t.buildCols()
}

// buildCols materializes the table's column-major projection: one
// vector per schema column, carved from a single slab. It doubles the
// table's memory footprint in exchange for transpose-free columnar
// scans; both layouts share the clustered order.
func (t *Table) buildCols() {
	n := len(t.Rows)
	w := t.Schema.Width()
	if n == 0 || w == 0 {
		t.cols = nil
		return
	}
	slab := make([]int64, w*n)
	t.cols = make([][]int64, w)
	for j := 0; j < w; j++ {
		t.cols[j] = slab[j*n : (j+1)*n : (j+1)*n]
	}
	for i, r := range t.Rows {
		for j, v := range r {
			t.cols[j][i] = v
		}
	}
}

// DB holds the stored relations of a database instance.
type DB struct {
	tables map[string]*Table

	// Cumulative execution counters, maintained atomically so
	// concurrent queries over one instance can share them.
	queries atomic.Int64
	rows    atomic.Int64
	errors  atomic.Int64
}

// Counters are a database instance's cumulative execution statistics:
// every Run/RunOpts drain over the instance counts one query and its
// result rows, or one error when the drain (or the plan build) failed —
// including cancellation. Callers driving iterators directly through
// BuildPlan/Collect are not counted.
type Counters struct {
	// Queries is the number of plans drained to completion.
	Queries int64 `json:"queries"`
	// Rows is the total number of result rows returned.
	Rows int64 `json:"rows"`
	// Errors is the number of runs that failed, including context
	// cancellation mid-drain.
	Errors int64 `json:"errors"`
}

// Counters snapshots the instance's cumulative execution statistics.
func (db *DB) Counters() Counters {
	return Counters{
		Queries: db.queries.Load(),
		Rows:    db.rows.Load(),
		Errors:  db.errors.Load(),
	}
}

// countRun records one Run* outcome.
func (db *DB) countRun(rows int, err error) {
	if err != nil {
		db.errors.Add(1)
		return
	}
	db.queries.Add(1)
	db.rows.Add(int64(rows))
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// Add registers a table.
func (db *DB) Add(t *Table) { db.tables[t.Name] = t }

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// FromData loads generated table contents (see datagen.Rows) into a
// database whose layout follows the catalog.
func FromData(cat *rel.Catalog, data map[string][][]int64) *DB {
	db := NewDB()
	for name, rows := range data {
		t := cat.Table(name)
		if t == nil {
			panic(fmt.Sprintf("exec: data for unknown table %q", name))
		}
		tab := &Table{Name: name, Schema: NewSchema(t.Columns), Rows: make([]Row, len(rows))}
		for i, r := range rows {
			tab.Rows[i] = Row(r)
		}
		// Respect the catalog's clustered order: the optimizer relies
		// on file scans delivering it.
		if len(t.Ordered) > 0 {
			pos := make([]int, len(t.Ordered))
			for i, c := range t.Ordered {
				pos[i] = tab.Schema.Pos(c)
			}
			sort.SliceStable(tab.Rows, func(i, j int) bool {
				for _, p := range pos {
					if tab.Rows[i][p] != tab.Rows[j][p] {
						return tab.Rows[i][p] < tab.Rows[j][p]
					}
				}
				return false
			})
		}
		tab.compact()
		db.Add(tab)
	}
	return db
}

// Iterator is the Volcano iterator interface: every query processing
// algorithm consumes zero or more input iterators and produces a stream
// of rows. Every operator in this package is batch-native (see
// BatchIterator); this row-at-a-time view is a thin adapter over the
// operator's current batch.
type Iterator interface {
	// Open prepares the iterator for producing rows.
	Open() error
	// Next returns the next row; ok is false at end of stream.
	Next() (row Row, ok bool, err error)
	// Close releases resources. Close is idempotent.
	Close() error
}

// Collect drains an iterator into a slice, handling open and close. A
// Close error surfaces when the drain itself succeeded.
func Collect(it Iterator) ([]Row, error) { return CollectSized(it, 0) }

// collectCap bounds how much a cardinality estimate may pre-allocate:
// a wildly high estimate must not pin hundreds of megabytes for a
// query that returns ten rows.
const collectCap = 1 << 22

// CollectSized is Collect with a result-cardinality hint (0 = unknown),
// typically the optimizer's estimate for the plan root. A good hint
// replaces the O(log n) re-grow-and-copy cycles of a growing result
// slice with a single allocation; a bad hint costs only the difference
// in slice capacity.
func CollectSized(it Iterator, sizeHint int) (out []Row, err error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	if sizeHint > 0 {
		if sizeHint > collectCap {
			sizeHint = collectCap
		}
		out = make([]Row, 0, sizeHint)
	}
	defer func() {
		if cerr := it.Close(); err == nil && cerr != nil {
			out, err = nil, cerr
		}
	}()
	if bi, ok := it.(BatchIterator); ok {
		for {
			b, ok, berr := bi.NextBatch()
			if berr != nil {
				return nil, berr
			}
			if !ok {
				return out, nil
			}
			out = append(out, b.Rows...)
		}
	}
	for {
		row, ok, nerr := it.Next()
		if nerr != nil {
			return nil, nerr
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}
