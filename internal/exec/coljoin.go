package exec

// ColHashJoin is the columnar hash join: the left input is drained into
// column-major build vectors, the right input probes batch by batch with
// the whole probe-key vector hashed up front (the independent lookups
// overlap their cache misses), and output batches are produced by
// per-column gather loops instead of per-row header-and-copy work.
type ColHashJoin struct {
	// Left and Right are the input streams; Left builds.
	Left, Right Iterator
	// BuildHint pre-sizes the build storage and hash table, as in
	// HashJoin.
	BuildHint int
	// KeyHint estimates the distinct build keys, as in HashJoin.
	KeyHint int

	lpos, rpos     int
	proj           []int
	lwidth, rwidth int
	size           int

	// Build state: bcols holds every build row column-major, head is the
	// open-addressed key index (see joinTable), chain links rows sharing
	// a key.
	right ColBatchIterator
	bcols [][]int64
	head  joinTable
	chain []int32

	// Probe state. A match pair (lidx[i], ridx[i]) names a build row and
	// a row of the current probe batch; output vectors gather through
	// them. An output batch never spans two probe batches: probe vectors
	// may be recycled by the producer, so pending matches are flushed
	// before pulling the next batch.
	pb       *ColBatch
	pi, pn   int
	hits     []int32
	hit      int32
	probeRow int32
	lidx     []int32
	ridx     []int32
	vecs     [][]int64
	view     ColBatch
	out      Batch
	ra       rowAdapter
}

// NewColHashJoin resolves join columns (and an optional fused
// projection, indexing the concatenated left++right row) against the
// input schemas.
func NewColHashJoin(left, right Iterator, lschema, rschema *Schema, lcol, rcol int, proj []int) *ColHashJoin {
	return &ColHashJoin{
		Left: left, Right: right,
		lpos: lcol, rpos: rcol,
		proj:   proj,
		lwidth: lschema.Width(),
		rwidth: rschema.Width(),
		size:   DefaultBatchSize,
	}
}

// SetBatchSize sets the rows per batch.
func (h *ColHashJoin) SetBatchSize(n int) { h.size = sizeOrDefault(n) }

// outWidth returns the output row width.
func (h *ColHashJoin) outWidth() int {
	if h.proj != nil {
		return len(h.proj)
	}
	return h.lwidth + h.rwidth
}

// Open builds the columnar hash table from the left input.
func (h *ColHashJoin) Open() error {
	if err := h.Left.Open(); err != nil {
		return err
	}
	if err := h.Right.Open(); err != nil {
		return err
	}
	h.right = asCols(h.Right)
	h.bcols = make([][]int64, h.lwidth)
	for j := range h.bcols {
		h.bcols[j] = make([]int64, 0, h.BuildHint)
	}
	tableHint := h.BuildHint
	if h.KeyHint > 0 && h.KeyHint < tableHint {
		tableHint = h.KeyHint
	}
	h.head = newJoinTable(tableHint)
	h.chain = h.chain[:0]
	h.pb, h.pi, h.pn, h.hit, h.probeRow = nil, 0, 0, -1, 0
	if len(h.lidx) < h.size {
		h.lidx = make([]int32, h.size)
		h.ridx = make([]int32, h.size)
	}
	if h.vecs == nil || len(h.vecs[0]) < h.size {
		h.vecs = make([][]int64, h.outWidth())
		for j := range h.vecs {
			h.vecs[j] = make([]int64, h.size)
		}
	}
	h.ra.reset()

	build := asCols(h.Left)
	keys := 0
	for {
		cb, ok, err := build.NextColBatch()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		base := len(h.bcols[0])
		// Append the batch column by column: a dense batch is one bulk
		// copy per column, a selective one gathers through Sel.
		if cb.Sel == nil {
			for j := range h.bcols {
				h.bcols[j] = append(h.bcols[j], cb.Cols[j][:cb.N]...)
			}
		} else {
			for j := range h.bcols {
				dst := h.bcols[j]
				col := cb.Cols[j]
				for _, s := range cb.Sel {
					dst = append(dst, col[s])
				}
				h.bcols[j] = dst
			}
		}
		keycol := h.bcols[h.lpos][base:]
		for i, k := range keycol {
			idx := int32(base + i)
			h.head.grow(keys + 1)
			if prev := h.head.put(k, idx); prev >= 0 {
				h.chain = append(h.chain, prev)
			} else {
				h.chain = append(h.chain, -1)
				keys++
			}
		}
	}
}

// NextColBatch returns the next columnar batch of joined rows. The
// output vectors are owned by the join and recycled per call.
func (h *ColHashJoin) NextColBatch() (*ColBatch, bool, error) {
	m := 0
	for {
		// Drain the pending chain and walk the current probe batch.
		for m < h.size {
			if h.hit >= 0 {
				h.lidx[m], h.ridx[m] = h.hit, h.probeRow
				m++
				h.hit = h.chain[h.hit]
				continue
			}
			if h.pi >= h.pn {
				break
			}
			i := h.pi
			h.pi++
			if h.pb.Sel != nil {
				h.probeRow = h.pb.Sel[i]
			} else {
				h.probeRow = int32(i)
			}
			h.hit = h.hits[i]
		}
		if m >= h.size {
			break
		}
		// The current probe batch is exhausted. Flush what we have
		// before pulling the next batch: its vectors may recycle the
		// current ones, and ridx still points into them.
		if m > 0 {
			break
		}
		cb, ok, err := h.right.NextColBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		h.pb, h.pi, h.pn = cb, 0, cb.Len()
		// Probe the whole batch up front, as in HashJoin.
		if cap(h.hits) < h.pn {
			h.hits = make([]int32, h.pn)
		}
		h.hits = h.hits[:h.pn]
		keycol := cb.Cols[h.rpos]
		if cb.Sel == nil {
			keycol = keycol[:cb.N]
			for i, k := range keycol {
				h.hits[i] = h.head.get(k)
			}
		} else {
			for i, s := range cb.Sel {
				h.hits[i] = h.head.get(keycol[s])
			}
		}
	}

	// Gather the output vectors through the match pairs.
	lidx, ridx := h.lidx[:m], h.ridx[:m]
	h.view.Cols = h.view.Cols[:0]
	for j := 0; j < h.outWidth(); j++ {
		p := j
		if h.proj != nil {
			p = h.proj[j]
		}
		dst := h.vecs[j][:m]
		if p < h.lwidth {
			src := h.bcols[p]
			for k, li := range lidx {
				dst[k] = src[li]
			}
		} else {
			src := h.pb.Cols[p-h.lwidth]
			for k, ri := range ridx {
				dst[k] = src[ri]
			}
		}
		h.view.Cols = append(h.view.Cols, dst)
	}
	h.view.Sel, h.view.N = nil, m
	return &h.view, true, nil
}

// NextBatch materializes the next joined rows onto the row protocol.
func (h *ColHashJoin) NextBatch() (*Batch, bool, error) {
	cb, ok, err := h.NextColBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	h.out.reset()
	materializeInto(&h.out, cb, len(cb.Cols)*h.size)
	return &h.out, true, nil
}

// Next returns the next joined row.
func (h *ColHashJoin) Next() (Row, bool, error) { return h.ra.next(h) }

// Close releases the build storage and closes both inputs.
func (h *ColHashJoin) Close() error {
	h.bcols, h.head, h.chain = nil, joinTable{}, nil
	h.pb = nil
	err := h.Left.Close()
	if err2 := h.Right.Close(); err == nil {
		err = err2
	}
	return err
}
