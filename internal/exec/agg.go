package exec

import (
	"sort"

	"repro/internal/rel"
)

// aggState accumulates one aggregate over a group.
type aggState struct {
	fn    rel.AggFn
	pos   int // argument position; -1 for COUNT
	count int64
	sum   int64
	min   int64
	max   int64
	any   bool
}

// aggPositions resolves aggregate argument positions once, so per-group
// state initialization never consults the schema.
func aggPositions(aggs []rel.Agg, schema *Schema) []int {
	pos := make([]int, len(aggs))
	for i, a := range aggs {
		pos[i] = -1
		if a.Fn != rel.AggCount {
			pos[i] = schema.Pos(a.Col)
		}
	}
	return pos
}

// newAggStates initializes per-group accumulators from pre-resolved
// argument positions (see aggPositions).
func newAggStates(aggs []rel.Agg, pos []int) []aggState {
	out := make([]aggState, len(aggs))
	for i, a := range aggs {
		out[i] = aggState{fn: a.Fn, pos: pos[i]}
	}
	return out
}

func (s *aggState) add(r Row) {
	s.count++
	if s.pos < 0 {
		return
	}
	v := r[s.pos]
	s.sum += v
	if !s.any || v < s.min {
		s.min = v
	}
	if !s.any || v > s.max {
		s.max = v
	}
	s.any = true
}

func (s *aggState) value() int64 {
	switch s.fn {
	case rel.AggCount:
		return s.count
	case rel.AggSum:
		return s.sum
	case rel.AggMin:
		return s.min
	case rel.AggMax:
		return s.max
	}
	return 0
}

// SortGroupBy groups a stream already sorted on the grouping columns,
// emitting one row per group: group values followed by aggregate values.
type SortGroupBy struct {
	// In is the input stream, sorted on the grouping columns.
	In Iterator

	groupPos []int
	aggs     []rel.Agg
	aggPos   []int
	size     int

	in     cursor
	cur    Row
	states []aggState
	done   bool
	out    Batch
	ra     rowAdapter
}

// NewSortGroupBy resolves grouping columns and aggregate arguments
// against the input schema.
func NewSortGroupBy(in Iterator, schema *Schema, groupCols []rel.ColID, aggs []rel.Agg) *SortGroupBy {
	g := &SortGroupBy{In: in, aggs: aggs, aggPos: aggPositions(aggs, schema), size: DefaultBatchSize}
	for _, c := range groupCols {
		g.groupPos = append(g.groupPos, schema.Pos(c))
	}
	return g
}

// SetBatchSize sets the rows per batch.
func (g *SortGroupBy) SetBatchSize(n int) { g.size = sizeOrDefault(n) }

// Open opens the input.
func (g *SortGroupBy) Open() error {
	g.cur, g.states, g.done = nil, nil, false
	g.ra.reset()
	if err := g.In.Open(); err != nil {
		return err
	}
	g.in.reset(asBatch(g.In))
	return nil
}

// NextBatch returns the next batch of completed groups.
func (g *SortGroupBy) NextBatch() (*Batch, bool, error) {
	g.out.reset()
	for !g.done && len(g.out.Rows) < g.size {
		row, ok, err := g.in.next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			g.done = true
			if g.cur != nil {
				g.emit()
			}
			break
		}
		if g.cur == nil {
			g.start(row)
			continue
		}
		same := true
		for _, p := range g.groupPos {
			if row[p] != g.cur[p] {
				same = false
				break
			}
		}
		if same {
			for i := range g.states {
				g.states[i].add(row)
			}
			continue
		}
		g.emit()
		g.start(row)
	}
	if len(g.out.Rows) == 0 {
		return nil, false, nil
	}
	return &g.out, true, nil
}

func (g *SortGroupBy) start(row Row) {
	g.cur = row
	g.states = newAggStates(g.aggs, g.aggPos)
	for i := range g.states {
		g.states[i].add(row)
	}
}

func (g *SortGroupBy) emit() {
	w := len(g.groupPos) + len(g.states)
	out := g.out.alloc(w, w*g.size)
	for i, p := range g.groupPos {
		out[i] = g.cur[p]
	}
	for i := range g.states {
		out[len(g.groupPos)+i] = g.states[i].value()
	}
}

// Next returns the next completed group.
func (g *SortGroupBy) Next() (Row, bool, error) { return g.ra.next(g) }

// Close closes the input.
func (g *SortGroupBy) Close() error { return g.In.Close() }

// HashGroupBy groups an unordered stream via a hash table, emitting
// groups in a deterministic (sorted) order once the input is drained.
type HashGroupBy struct {
	// In is the input stream.
	In Iterator
	// SizeHint pre-sizes the group hash table; the plan builder sets it
	// from the optimizer's output-cardinality estimate.
	SizeHint int

	groupPos []int
	aggs     []rel.Agg
	aggPos   []int
	size     int

	out  []Row
	next int
	view Batch
	ra   rowAdapter
}

// NewHashGroupBy resolves grouping columns and aggregate arguments
// against the input schema.
func NewHashGroupBy(in Iterator, schema *Schema, groupCols []rel.ColID, aggs []rel.Agg) *HashGroupBy {
	g := &HashGroupBy{In: in, aggs: aggs, aggPos: aggPositions(aggs, schema), size: DefaultBatchSize}
	for _, c := range groupCols {
		g.groupPos = append(g.groupPos, schema.Pos(c))
	}
	return g
}

// SetBatchSize sets the rows per batch.
func (g *HashGroupBy) SetBatchSize(n int) { g.size = sizeOrDefault(n) }

// Open drains the input into the hash table and materializes the groups.
func (g *HashGroupBy) Open() error {
	if err := g.In.Open(); err != nil {
		return err
	}
	type entry struct {
		key    Row
		states []aggState
	}
	entries := make([]entry, 0, g.SizeHint)
	in := newCursor(asBatch(g.In))
	if len(g.groupPos) == 1 {
		// Single grouping column: key the table on the value itself.
		// This is the common case and avoids building a string key per
		// input row.
		p := g.groupPos[0]
		idx := make(map[int64]int32, g.SizeHint)
		for {
			row, ok, err := in.next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			k := row[p]
			i, ok := idx[k]
			if !ok {
				i = int32(len(entries))
				entries = append(entries, entry{key: Row{k}, states: newAggStates(g.aggs, g.aggPos)})
				idx[k] = i
			}
			states := entries[i].states
			for j := range states {
				states[j].add(row)
			}
		}
	} else {
		idx := make(map[string]int32, g.SizeHint)
		key := make(Row, len(g.groupPos))
		for {
			row, ok, err := in.next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			for i, p := range g.groupPos {
				key[i] = row[p]
			}
			ks := rowKey(key)
			i, ok := idx[ks]
			if !ok {
				i = int32(len(entries))
				entries = append(entries, entry{key: key.Clone(), states: newAggStates(g.aggs, g.aggPos)})
				idx[ks] = i
			}
			states := entries[i].states
			for j := range states {
				states[j].add(row)
			}
		}
	}
	g.out = g.out[:0]
	for i := range entries {
		e := &entries[i]
		row := make(Row, 0, len(e.key)+len(e.states))
		row = append(row, e.key...)
		for j := range e.states {
			row = append(row, e.states[j].value())
		}
		g.out = append(g.out, row)
	}
	order := make([]int, len(g.groupPos))
	for i := range order {
		order[i] = i
	}
	sort.Slice(g.out, func(i, j int) bool { return cmpRows(g.out[i], g.out[j], order) < 0 })
	g.next = 0
	g.ra.reset()
	return nil
}

// NextBatch returns the next batch of groups as a view over the
// materialized output.
func (g *HashGroupBy) NextBatch() (*Batch, bool, error) {
	if g.next >= len(g.out) {
		return nil, false, nil
	}
	end := g.next + g.size
	if end > len(g.out) {
		end = len(g.out)
	}
	g.view.Rows = g.out[g.next:end]
	g.next = end
	return &g.view, true, nil
}

// Next returns the next group.
func (g *HashGroupBy) Next() (Row, bool, error) { return g.ra.next(g) }

// Close releases the groups and closes the input.
func (g *HashGroupBy) Close() error {
	g.out = nil
	return g.In.Close()
}
