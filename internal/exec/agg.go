package exec

import (
	"sort"

	"repro/internal/rel"
)

// aggState accumulates one aggregate over a group.
type aggState struct {
	fn    rel.AggFn
	pos   int // argument position; -1 for COUNT
	count int64
	sum   int64
	min   int64
	max   int64
	any   bool
}

func newAggStates(aggs []rel.Agg, schema *Schema) []aggState {
	out := make([]aggState, len(aggs))
	for i, a := range aggs {
		out[i] = aggState{fn: a.Fn, pos: -1}
		if a.Fn != rel.AggCount {
			out[i].pos = schema.Pos(a.Col)
		}
	}
	return out
}

func (s *aggState) add(r Row) {
	s.count++
	if s.pos < 0 {
		return
	}
	v := r[s.pos]
	s.sum += v
	if !s.any || v < s.min {
		s.min = v
	}
	if !s.any || v > s.max {
		s.max = v
	}
	s.any = true
}

func (s *aggState) value() int64 {
	switch s.fn {
	case rel.AggCount:
		return s.count
	case rel.AggSum:
		return s.sum
	case rel.AggMin:
		return s.min
	case rel.AggMax:
		return s.max
	}
	return 0
}

// SortGroupBy groups a stream already sorted on the grouping columns,
// emitting one row per group: group values followed by aggregate values.
type SortGroupBy struct {
	// In is the input stream, sorted on the grouping columns.
	In Iterator

	groupPos []int
	aggs     []rel.Agg
	schema   *Schema

	cur    Row
	states []aggState
	done   bool
}

// NewSortGroupBy resolves grouping columns against the input schema.
func NewSortGroupBy(in Iterator, schema *Schema, groupCols []rel.ColID, aggs []rel.Agg) *SortGroupBy {
	g := &SortGroupBy{In: in, aggs: aggs, schema: schema}
	for _, c := range groupCols {
		g.groupPos = append(g.groupPos, schema.Pos(c))
	}
	return g
}

// Open opens the input.
func (g *SortGroupBy) Open() error {
	g.cur, g.states, g.done = nil, nil, false
	return g.In.Open()
}

// Next returns the next completed group.
func (g *SortGroupBy) Next() (Row, bool, error) {
	if g.done {
		return nil, false, nil
	}
	for {
		row, ok, err := g.In.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			g.done = true
			if g.cur == nil {
				return nil, false, nil
			}
			return g.emit(), true, nil
		}
		if g.cur == nil {
			g.start(row)
			continue
		}
		same := true
		for _, p := range g.groupPos {
			if row[p] != g.cur[p] {
				same = false
				break
			}
		}
		if same {
			for i := range g.states {
				g.states[i].add(row)
			}
			continue
		}
		out := g.emit()
		g.start(row)
		return out, true, nil
	}
}

func (g *SortGroupBy) start(row Row) {
	g.cur = row
	g.states = newAggStates(g.aggs, g.schema)
	for i := range g.states {
		g.states[i].add(row)
	}
}

func (g *SortGroupBy) emit() Row {
	out := make(Row, 0, len(g.groupPos)+len(g.states))
	for _, p := range g.groupPos {
		out = append(out, g.cur[p])
	}
	for i := range g.states {
		out = append(out, g.states[i].value())
	}
	return out
}

// Close closes the input.
func (g *SortGroupBy) Close() error { return g.In.Close() }

// HashGroupBy groups an unordered stream via a hash table, emitting
// groups in a deterministic (sorted) order once the input is drained.
type HashGroupBy struct {
	// In is the input stream.
	In Iterator

	groupPos []int
	aggs     []rel.Agg
	schema   *Schema

	out  []Row
	next int
}

// NewHashGroupBy resolves grouping columns against the input schema.
func NewHashGroupBy(in Iterator, schema *Schema, groupCols []rel.ColID, aggs []rel.Agg) *HashGroupBy {
	g := &HashGroupBy{In: in, aggs: aggs, schema: schema}
	for _, c := range groupCols {
		g.groupPos = append(g.groupPos, schema.Pos(c))
	}
	return g
}

// Open drains the input into the hash table and materializes the groups.
func (g *HashGroupBy) Open() error {
	if err := g.In.Open(); err != nil {
		return err
	}
	type entry struct {
		key    Row
		states []aggState
	}
	table := make(map[string]*entry)
	for {
		row, ok, err := g.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		key := make(Row, len(g.groupPos))
		for i, p := range g.groupPos {
			key[i] = row[p]
		}
		ks := rowKey(key)
		e := table[ks]
		if e == nil {
			e = &entry{key: key, states: newAggStates(g.aggs, g.schema)}
			table[ks] = e
		}
		for i := range e.states {
			e.states[i].add(row)
		}
	}
	g.out = g.out[:0]
	for _, e := range table {
		row := make(Row, 0, len(e.key)+len(e.states))
		row = append(row, e.key...)
		for i := range e.states {
			row = append(row, e.states[i].value())
		}
		g.out = append(g.out, row)
	}
	order := make([]int, len(g.groupPos))
	for i := range order {
		order[i] = i
	}
	sort.Slice(g.out, func(i, j int) bool { return cmpRows(g.out[i], g.out[j], order) < 0 })
	g.next = 0
	return nil
}

// Next returns the next group.
func (g *HashGroupBy) Next() (Row, bool, error) {
	if g.next >= len(g.out) {
		return nil, false, nil
	}
	r := g.out[g.next]
	g.next++
	return r, true, nil
}

// Close releases the groups and closes the input.
func (g *HashGroupBy) Close() error {
	g.out = nil
	return g.In.Close()
}
