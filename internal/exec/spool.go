package exec

import (
	"fmt"
	"sync"
)

// Spools: the execution side of multi-query materialization. A batch of
// plans rewritten by core.MaterializeSharedPlans shares one SpoolStore;
// each Materialize operator registers its input subplan under its spool
// ID at build time, the spool fills once — on the first Open of any
// operator serving it — and every Materialize and Reuse of that ID then
// serves the buffered rows. Buffering retains only Row headers, which
// the batch lifetime contract makes safe: row data is never reused.

// SpoolStore holds the materialized shared results of one batch
// execution. Pass the same store (exec.Options.Spools) to every plan of
// the batch, built and executed in batch order; a fresh store per batch
// keeps results from leaking across executions.
type SpoolStore struct {
	mu      sync.Mutex
	entries map[int]*spoolEntry
}

// NewSpoolStore creates an empty store.
func NewSpoolStore() *SpoolStore { return &SpoolStore{entries: make(map[int]*spoolEntry)} }

// register binds a spool ID to its producing subplan; the plan builder
// calls it at each Materialize node. Registering an already-bound ID
// returns the existing entry unchanged, so rebuilding the same plan
// against the same store (repeated executions of one batch) works; the
// spool then serves its first fill's rows.
func (s *SpoolStore) register(id int, producer Iterator, schema *Schema) *spoolEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[id]; ok {
		return e
	}
	e := &spoolEntry{producer: producer, schema: schema}
	s.entries[id] = e
	return e
}

// lookup returns the entry for a spool ID, or nil.
func (s *SpoolStore) lookup(id int) *spoolEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries[id]
}

// spoolEntry is one shared result: a producer drained at most once and
// the buffered rows every consumer serves from. The schema is the
// producer's physical layout — which may order columns differently than
// the logical properties — so Reuse consumers must take their schema
// from the entry, not from the plan node they replaced.
type spoolEntry struct {
	mu       sync.Mutex
	producer Iterator
	schema   *Schema
	filled   bool
	rows     []Row
	err      error
}

// fill drains the producer on the first call; every later call returns
// the same outcome. Whichever consumer Opens first pays the fill, so
// any open order within the batch is correct.
func (e *spoolEntry) fill() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.filled {
		return e.err
	}
	e.filled = true
	e.rows, e.err = Collect(e.producer)
	e.producer = nil
	return e.err
}

// spoolScan serves a spool entry's buffered rows batch-natively; it is
// the shared implementation of Materialize and Reuse. Output batches
// alias windows of the buffered row-header slice — no copying.
type spoolScan struct {
	e    *spoolEntry
	pos  int
	size int
	out  Batch
	ra   rowAdapter
}

// SetBatchSize sets the rows per output batch.
func (s *spoolScan) SetBatchSize(n int) { s.size = sizeOrDefault(n) }

// Open fills the spool if no consumer has yet.
func (s *spoolScan) Open() error {
	s.pos = 0
	s.ra.reset()
	return s.e.fill()
}

// NextBatch returns the next window of buffered rows.
func (s *spoolScan) NextBatch() (*Batch, bool, error) {
	if s.pos >= len(s.e.rows) {
		return nil, false, nil
	}
	end := s.pos + s.size
	if end > len(s.e.rows) {
		end = len(s.e.rows)
	}
	s.out.Rows = s.e.rows[s.pos:end]
	s.pos = end
	return &s.out, true, nil
}

// Next returns the next row.
func (s *spoolScan) Next() (Row, bool, error) { return s.ra.next(s) }

// Close releases nothing: the buffered rows belong to the store, and
// the producer was already closed by its fill.
func (s *spoolScan) Close() error { return nil }

// Materialize spools its input's result once and passes it through: the
// operator pair's producing half. The input iterator is owned by the
// spool entry and drained on the first Open of any consumer of the ID.
type Materialize struct{ spoolScan }

// NewMaterialize registers the producer under the spool ID in the store
// and returns the pass-through operator.
func NewMaterialize(st *SpoolStore, id int, producer Iterator, schema *Schema) *Materialize {
	e := st.register(id, producer, schema)
	return &Materialize{spoolScan{e: e, size: DefaultBatchSize}}
}

// Reuse scans a spool some Materialize in the same batch registered:
// the operator pair's consuming half, a leaf in its own plan.
type Reuse struct{ spoolScan }

// NewReuse looks the spool up and returns the scan plus the spool's
// physical schema. It fails when no Materialize with the ID was built
// yet — batch plans must be built in batch execution order.
func NewReuse(st *SpoolStore, id int) (*Reuse, *Schema, error) {
	e := st.lookup(id)
	if e == nil {
		return nil, nil, fmt.Errorf("exec: reuse of spool %d before its materialize was built — batch plans must be built in order against one shared store", id)
	}
	return &Reuse{spoolScan{e: e, size: DefaultBatchSize}}, e.schema, nil
}

var (
	_ BatchIterator = (*Materialize)(nil)
	_ BatchIterator = (*Reuse)(nil)
)
