package exec

// The batch protocol. Every operator in this package is batch-native:
// its NextBatch method moves up to BatchSize rows per call, so the
// per-row interface-dispatch and allocation costs of the classic
// open/next/close loop are amortized across a whole batch. The
// row-at-a-time Iterator interface remains fully supported — each
// operator's Next method is a thin adapter draining its current batch —
// so existing callers and a batch-size-1 configuration (which reproduces
// the seed interpreter's one-call-one-row cost shape exactly) keep
// working.
//
// Lifetime contract: the *Batch returned by NextBatch, and its Rows
// header slice, are valid only until the next NextBatch or Close call on
// the same operator. The row *data* the headers point at is never
// reused: it lives in stored tables, materialized operator state, or
// append-only arenas. A consumer that retains rows across batch
// boundaries therefore only needs to copy the Row headers (cheap slice
// headers), never the values.

// DefaultBatchSize is the target rows per batch.
const DefaultBatchSize = 1024

// Batch is one unit of data flow: a reusable vector of rows. The Rows
// header slice is recycled across NextBatch calls; value storage
// allocated through alloc is append-only and stays valid forever.
type Batch struct {
	// Rows are the batch's tuples, valid until the producing operator's
	// next NextBatch call.
	Rows []Row

	arena []int64
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return len(b.Rows) }

// reset recycles the Rows header for a new batch. The arena is kept:
// previously allocated row data is never overwritten, only the unused
// capacity beyond it is carved further.
func (b *Batch) reset() { b.Rows = b.Rows[:0] }

// add appends an existing row (header copy only).
func (b *Batch) add(r Row) { b.Rows = append(b.Rows, r) }

// alloc appends a fresh zero row of the given width, carving it from the
// batch's arena. chunk sizes arena refills (typically width×BatchSize),
// so a full batch of new rows costs one allocation instead of one per
// row. Arena memory is never rewound, so rows stay valid after reset.
func (b *Batch) alloc(width, chunk int) Row {
	if cap(b.arena)-len(b.arena) < width {
		b.arena = make([]int64, 0, arenaChunk(width, chunk))
	}
	off := len(b.arena)
	b.arena = b.arena[:off+width]
	r := Row(b.arena[off : off+width : off+width])
	b.Rows = append(b.Rows, r)
	return r
}

// arenaChunk sizes an arena refill: at least width, rounded up to a
// whole-row multiple. Without the rounding, a chunk that is not a
// multiple of the row width strands up to width-1 slots at the end of
// every arena (the refill check sees less than a full row left), costing
// extra refill allocations for the same row count.
func arenaChunk(width, chunk int) int {
	if chunk < width {
		chunk = width
	}
	if rem := chunk % width; rem != 0 {
		chunk += width - rem
	}
	return chunk
}

// allocRows carves n fresh rows of the given width from the arena as one
// contiguous row-major block, appending their headers to the batch, and
// returns the block for the caller to fill. It is the bulk counterpart
// of alloc: a columnar operator materializing a whole batch pays one
// capacity check and one header append loop instead of n alloc calls.
func (b *Batch) allocRows(n, width, chunk int) []int64 {
	need := n * width
	if need == 0 {
		return nil
	}
	if cap(b.arena)-len(b.arena) < need {
		if chunk < need {
			chunk = need
		}
		b.arena = make([]int64, 0, arenaChunk(width, chunk))
	}
	off := len(b.arena)
	b.arena = b.arena[:off+need]
	block := b.arena[off : off+need : off+need]
	for r := 0; r < need; r += width {
		b.Rows = append(b.Rows, Row(block[r:r+width:r+width]))
	}
	return block
}

// BatchIterator is the batched Volcano iterator interface: open once,
// pull batches until ok is false, close. See the package-level lifetime
// contract for how long a returned batch stays valid.
type BatchIterator interface {
	// Open prepares the iterator for producing batches.
	Open() error
	// NextBatch returns the next batch of rows; ok is false at end of
	// stream. The returned batch is valid until the next call.
	NextBatch() (b *Batch, ok bool, err error)
	// Close releases resources. Close is idempotent.
	Close() error
}

// asBatch promotes any Iterator to the batch protocol: operators from
// this package are returned as themselves, foreign row-at-a-time
// iterators are wrapped in a batching adapter.
func asBatch(it Iterator) BatchIterator {
	if bi, ok := it.(BatchIterator); ok {
		return bi
	}
	return &iterBatch{it: it, size: DefaultBatchSize}
}

// iterBatch adapts a row-at-a-time Iterator into a BatchIterator by
// buffering rows into a reusable batch.
type iterBatch struct {
	it   Iterator
	size int
	out  Batch
}

func (a *iterBatch) Open() error { return a.it.Open() }

func (a *iterBatch) NextBatch() (*Batch, bool, error) {
	a.out.reset()
	for len(a.out.Rows) < a.size {
		row, ok, err := a.it.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		a.out.add(row)
	}
	if len(a.out.Rows) == 0 {
		return nil, false, nil
	}
	return &a.out, true, nil
}

func (a *iterBatch) Close() error { return a.it.Close() }

// rowAdapter implements an operator's row-at-a-time Next on top of its
// own NextBatch: it drains the current batch one row per call and pulls
// the next batch when exhausted. Operators embed one and reset it in
// Open. Mixing Next and NextBatch calls on the same operator is not
// supported.
type rowAdapter struct {
	b *Batch
	i int
}

func (r *rowAdapter) reset() { r.b, r.i = nil, 0 }

func (r *rowAdapter) next(bi BatchIterator) (Row, bool, error) {
	for {
		if r.b != nil && r.i < len(r.b.Rows) {
			row := r.b.Rows[r.i]
			r.i++
			return row, true, nil
		}
		b, ok, err := bi.NextBatch()
		if err != nil || !ok {
			r.b = nil
			return nil, false, err
		}
		r.b, r.i = b, 0
	}
}

// cursor is the inlined consumption side of the batch protocol: a
// row-level view over a BatchIterator whose per-row advance is a
// concrete-type method (no interface dispatch) indexing the current
// batch. Operators with inherently row-structured logic (merge join,
// merge set operations, sorted grouping) consume their inputs through
// cursors, paying one interface call per batch instead of per row.
type cursor struct {
	src  BatchIterator
	b    *Batch
	i    int
	done bool
}

func newCursor(src BatchIterator) cursor { return cursor{src: src} }

func (c *cursor) reset(src BatchIterator) { *c = cursor{src: src} }

// next returns the next row; ok is false at end of stream.
func (c *cursor) next() (Row, bool, error) {
	for {
		if c.b != nil && c.i < len(c.b.Rows) {
			row := c.b.Rows[c.i]
			c.i++
			return row, true, nil
		}
		if c.done {
			return nil, false, nil
		}
		b, ok, err := c.src.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			c.done = true
			return nil, false, nil
		}
		c.b, c.i = b, 0
	}
}

// batchSized is implemented by every operator in this package; the plan
// builder uses it to propagate the configured batch size down a tree.
type batchSized interface {
	SetBatchSize(n int)
}

// sizeOrDefault normalizes a configured batch size.
func sizeOrDefault(n int) int {
	if n <= 0 {
		return DefaultBatchSize
	}
	return n
}
