package exec

import (
	"math"
	"sort"

	"repro/internal/rel"
)

// ColHashGroupBy groups an unordered columnar stream. The hot single
// grouping column case keys an open-addressed int64 table (the same
// joinTable the hash join uses) instead of a Go map, resolves each
// input batch to a group-index vector, and then runs one flat
// accumulator loop per aggregate over dense typed slices — the
// per-column counterpart of HashGroupBy's per-row aggState updates.
// Groups are emitted in the same deterministic sorted order as
// HashGroupBy.
type ColHashGroupBy struct {
	// In is the input stream.
	In Iterator
	// SizeHint pre-sizes the group table, as in HashGroupBy.
	SizeHint int

	groupPos []int
	aggs     []rel.Agg
	aggPos   []int
	size     int

	out  []Row
	next int
	view Batch
	ra   rowAdapter
}

// NewColHashGroupBy resolves grouping columns and aggregate arguments
// against the input schema.
func NewColHashGroupBy(in Iterator, schema *Schema, groupCols []rel.ColID, aggs []rel.Agg) *ColHashGroupBy {
	g := &ColHashGroupBy{In: in, aggs: aggs, aggPos: aggPositions(aggs, schema), size: DefaultBatchSize}
	for _, c := range groupCols {
		g.groupPos = append(g.groupPos, schema.Pos(c))
	}
	return g
}

// SetBatchSize sets the rows per batch.
func (g *ColHashGroupBy) SetBatchSize(n int) { g.size = sizeOrDefault(n) }

// accInit returns the accumulator identity for an aggregate.
func accInit(fn rel.AggFn) int64 {
	switch fn {
	case rel.AggMin:
		return math.MaxInt64
	case rel.AggMax:
		return math.MinInt64
	}
	return 0
}

// Open drains the input into per-group accumulators and materializes the
// sorted groups.
func (g *ColHashGroupBy) Open() error {
	if err := g.In.Open(); err != nil {
		return err
	}
	in := asCols(g.In)

	// Per-group state, struct-of-arrays: group keys, row counts, and one
	// accumulator vector per aggregate.
	var keys []int64  // single grouping column: the key values
	var keyRows []Row // multiple grouping columns: cloned key rows
	counts := make([]int64, 0, g.SizeHint)
	accs := make([][]int64, len(g.aggs))
	for i := range accs {
		accs[i] = make([]int64, 0, g.SizeHint)
	}
	ngroups := 0

	single := len(g.groupPos) == 1
	var table joinTable
	var idx map[string]int32
	var keybuf Row
	if single {
		keys = make([]int64, 0, g.SizeHint)
		table = newJoinTable(g.SizeHint)
	} else {
		idx = make(map[string]int32, g.SizeHint)
		keybuf = make(Row, len(g.groupPos))
	}

	var gidx []int32
	for {
		cb, ok, err := in.NextColBatch()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		n := cb.Len()
		if cap(gidx) < n {
			gidx = make([]int32, n)
		}
		gidx = gidx[:n]

		// Resolve each input row to its group index.
		if single {
			keycol := cb.Cols[g.groupPos[0]]
			// One grow for the batch's worst case, so the insert loop
			// never rehashes mid-batch.
			table.grow(ngroups + n)
			if cb.Sel == nil {
				keycol = keycol[:n]
				for i, k := range keycol {
					id := table.lookupOrInsert(k, int32(ngroups))
					if id < 0 {
						id = int32(ngroups)
						keys = append(keys, k)
						ngroups++
					}
					gidx[i] = id
				}
			} else {
				for i, s := range cb.Sel {
					k := keycol[s]
					id := table.lookupOrInsert(k, int32(ngroups))
					if id < 0 {
						id = int32(ngroups)
						keys = append(keys, k)
						ngroups++
					}
					gidx[i] = id
				}
			}
		} else {
			for i := 0; i < n; i++ {
				r := i
				if cb.Sel != nil {
					r = int(cb.Sel[i])
				}
				for j, p := range g.groupPos {
					keybuf[j] = cb.Cols[p][r]
				}
				ks := rowKey(keybuf)
				id, ok := idx[ks]
				if !ok {
					id = int32(ngroups)
					keyRows = append(keyRows, keybuf.Clone())
					idx[ks] = id
					ngroups++
				}
				gidx[i] = id
			}
		}

		// Extend the accumulator vectors for the batch's new groups.
		for len(counts) < ngroups {
			counts = append(counts, 0)
		}
		for a := range accs {
			init := accInit(g.aggs[a].Fn)
			for len(accs[a]) < ngroups {
				accs[a] = append(accs[a], init)
			}
		}

		// One flat loop per accumulator over the group-index vector.
		for _, gi := range gidx {
			counts[gi]++
		}
		for a := range accs {
			pos := g.aggPos[a]
			if pos < 0 {
				continue // COUNT reads the shared counts
			}
			col := cb.Cols[pos]
			vals := accs[a]
			switch g.aggs[a].Fn {
			case rel.AggSum, rel.AggCount:
				if cb.Sel == nil {
					col := col[:n]
					for i, v := range col {
						vals[gidx[i]] += v
					}
				} else {
					for i, s := range cb.Sel {
						vals[gidx[i]] += col[s]
					}
				}
			case rel.AggMin:
				if cb.Sel == nil {
					col := col[:n]
					for i, v := range col {
						if v < vals[gidx[i]] {
							vals[gidx[i]] = v
						}
					}
				} else {
					for i, s := range cb.Sel {
						if v := col[s]; v < vals[gidx[i]] {
							vals[gidx[i]] = v
						}
					}
				}
			case rel.AggMax:
				if cb.Sel == nil {
					col := col[:n]
					for i, v := range col {
						if v > vals[gidx[i]] {
							vals[gidx[i]] = v
						}
					}
				} else {
					for i, s := range cb.Sel {
						if v := col[s]; v > vals[gidx[i]] {
							vals[gidx[i]] = v
						}
					}
				}
			}
		}
	}

	// Materialize the groups: key values then aggregate values, carved
	// from one slab, in the same sorted order HashGroupBy emits.
	gw := len(g.groupPos)
	w := gw + len(g.aggs)
	slab := make([]int64, ngroups*w)
	g.out = g.out[:0]
	for gi := 0; gi < ngroups; gi++ {
		row := Row(slab[gi*w : (gi+1)*w : (gi+1)*w])
		if single {
			row[0] = keys[gi]
		} else {
			copy(row, keyRows[gi])
		}
		for a := range g.aggs {
			if g.aggs[a].Fn == rel.AggCount {
				row[gw+a] = counts[gi]
			} else {
				row[gw+a] = accs[a][gi]
			}
		}
		g.out = append(g.out, row)
	}
	order := make([]int, gw)
	for i := range order {
		order[i] = i
	}
	sort.Slice(g.out, func(i, j int) bool { return cmpRows(g.out[i], g.out[j], order) < 0 })
	g.next = 0
	g.ra.reset()
	return nil
}

// NextBatch returns the next batch of groups as a view over the
// materialized output.
func (g *ColHashGroupBy) NextBatch() (*Batch, bool, error) {
	if g.next >= len(g.out) {
		return nil, false, nil
	}
	end := g.next + g.size
	if end > len(g.out) {
		end = len(g.out)
	}
	g.view.Rows = g.out[g.next:end]
	g.next = end
	return &g.view, true, nil
}

// Next returns the next group.
func (g *ColHashGroupBy) Next() (Row, bool, error) { return g.ra.next(g) }

// Close releases the groups and closes the input.
func (g *ColHashGroupBy) Close() error {
	g.out = nil
	return g.In.Close()
}

// ColSortGroupBy groups a columnar stream already sorted on the grouping
// columns: runs of equal keys are detected on the grouping vectors and
// each aggregate folds a whole run span with one tight loop over its
// argument column, instead of one aggState update per row.
type ColSortGroupBy struct {
	// In is the input stream, sorted on the grouping columns.
	In Iterator

	groupPos []int
	aggs     []rel.Agg
	aggPos   []int
	size     int

	in      ColBatchIterator
	started bool
	done    bool
	key     []int64 // current group's key values
	count   int64
	accs    []int64 // current group's accumulators, one per aggregate
	out     Batch
	ra      rowAdapter
}

// NewColSortGroupBy resolves grouping columns and aggregate arguments
// against the input schema.
func NewColSortGroupBy(in Iterator, schema *Schema, groupCols []rel.ColID, aggs []rel.Agg) *ColSortGroupBy {
	g := &ColSortGroupBy{In: in, in: asCols(in), aggs: aggs, aggPos: aggPositions(aggs, schema), size: DefaultBatchSize}
	for _, c := range groupCols {
		g.groupPos = append(g.groupPos, schema.Pos(c))
	}
	g.key = make([]int64, len(g.groupPos))
	g.accs = make([]int64, len(aggs))
	return g
}

// SetBatchSize sets the rows per batch.
func (g *ColSortGroupBy) SetBatchSize(n int) { g.size = sizeOrDefault(n) }

// Open opens the input.
func (g *ColSortGroupBy) Open() error {
	g.started, g.done, g.count = false, false, 0
	g.ra.reset()
	return g.In.Open()
}

// start begins a new group keyed by row r of the batch.
func (g *ColSortGroupBy) start(cb *ColBatch, r int) {
	for j, p := range g.groupPos {
		g.key[j] = cb.Cols[p][r]
	}
	g.count = 0
	for a := range g.accs {
		g.accs[a] = accInit(g.aggs[a].Fn)
	}
	g.started = true
}

// keyAt reports whether row r of the batch matches the current key.
func (g *ColSortGroupBy) keyAt(cb *ColBatch, r int) bool {
	for j, p := range g.groupPos {
		if cb.Cols[p][r] != g.key[j] {
			return false
		}
	}
	return true
}

// foldSpan folds the dense row span [lo,hi) of the batch into the
// current group.
func (g *ColSortGroupBy) foldSpan(cb *ColBatch, lo, hi int) {
	g.count += int64(hi - lo)
	for a := range g.accs {
		pos := g.aggPos[a]
		if pos < 0 {
			continue
		}
		span := cb.Cols[pos][lo:hi]
		acc := g.accs[a]
		switch g.aggs[a].Fn {
		case rel.AggSum, rel.AggCount:
			for _, v := range span {
				acc += v
			}
		case rel.AggMin:
			for _, v := range span {
				if v < acc {
					acc = v
				}
			}
		case rel.AggMax:
			for _, v := range span {
				if v > acc {
					acc = v
				}
			}
		}
		g.accs[a] = acc
	}
}

// foldRow folds one selected row into the current group.
func (g *ColSortGroupBy) foldRow(cb *ColBatch, r int) {
	g.count++
	for a := range g.accs {
		pos := g.aggPos[a]
		if pos < 0 {
			continue
		}
		v := cb.Cols[pos][r]
		switch g.aggs[a].Fn {
		case rel.AggSum, rel.AggCount:
			g.accs[a] += v
		case rel.AggMin:
			if v < g.accs[a] {
				g.accs[a] = v
			}
		case rel.AggMax:
			if v > g.accs[a] {
				g.accs[a] = v
			}
		}
	}
}

// emit appends the current group's output row.
func (g *ColSortGroupBy) emit() {
	w := len(g.groupPos) + len(g.aggs)
	out := g.out.alloc(w, w*g.size)
	copy(out, g.key)
	for a := range g.aggs {
		if g.aggs[a].Fn == rel.AggCount {
			out[len(g.groupPos)+a] = g.count
		} else {
			out[len(g.groupPos)+a] = g.accs[a]
		}
	}
}

// fold processes one input batch, emitting completed groups.
func (g *ColSortGroupBy) fold(cb *ColBatch) {
	if cb.Sel != nil {
		for _, s := range cb.Sel {
			r := int(s)
			if !g.started {
				g.start(cb, r)
			} else if !g.keyAt(cb, r) {
				g.emit()
				g.start(cb, r)
			}
			g.foldRow(cb, r)
		}
		return
	}
	n := cb.N
	if len(g.groupPos) == 1 {
		// Single grouping column: run detection is one compare loop over
		// the key vector.
		kc := cb.Cols[g.groupPos[0]][:n]
		i := 0
		for i < n {
			k := kc[i]
			j := i + 1
			for j < n && kc[j] == k {
				j++
			}
			if !g.started {
				g.start(cb, i)
			} else if k != g.key[0] {
				g.emit()
				g.start(cb, i)
			}
			g.foldSpan(cb, i, j)
			i = j
		}
		return
	}
	i := 0
	for i < n {
		j := i + 1
		for j < n && g.rowsEqual(cb, j, i) {
			j++
		}
		if !g.started {
			g.start(cb, i)
		} else if !g.keyAt(cb, i) {
			g.emit()
			g.start(cb, i)
		}
		g.foldSpan(cb, i, j)
		i = j
	}
}

// rowsEqual reports whether rows a and b of the batch agree on every
// grouping column.
func (g *ColSortGroupBy) rowsEqual(cb *ColBatch, a, b int) bool {
	for _, p := range g.groupPos {
		if cb.Cols[p][a] != cb.Cols[p][b] {
			return false
		}
	}
	return true
}

// NextBatch returns the next batch of completed groups. A batch may
// carry slightly more than the configured size when one input batch
// completes many groups; consumers iterate Rows, so this only affects
// granularity.
func (g *ColSortGroupBy) NextBatch() (*Batch, bool, error) {
	g.out.reset()
	for !g.done && len(g.out.Rows) < g.size {
		cb, ok, err := g.in.NextColBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			g.done = true
			if g.started {
				g.emit()
				g.started = false
			}
			break
		}
		g.fold(cb)
	}
	if len(g.out.Rows) == 0 {
		return nil, false, nil
	}
	return &g.out, true, nil
}

// Next returns the next completed group.
func (g *ColSortGroupBy) Next() (Row, bool, error) { return g.ra.next(g) }

// Close closes the input.
func (g *ColSortGroupBy) Close() error { return g.In.Close() }
