package exec

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// Options configures plan execution.
type Options struct {
	// BatchSize is the rows moved per operator call; zero means
	// DefaultBatchSize. Size 1 with NoFusion reproduces the
	// row-at-a-time engine's cost shape exactly.
	BatchSize int
	// ExchangeWorkers is the number of producer goroutines per exchange
	// operator; zero means the exchange's partitioning degree. Multiple
	// producers require a stripe-safe input subplan (scan, filter,
	// project, sort chains); other inputs fall back to one producer.
	ExchangeWorkers int
	// NoFusion disables scan-filter fusion, keeping every operator
	// boundary a data transfer (the row-engine A/B baseline). It only
	// affects the row engine; columnar filters are fusion-equivalent by
	// construction (survivors are marked in a selection vector, never
	// copied).
	NoFusion bool
	// Columnar selects the columnar engine: scans, filters, projections,
	// hash joins, and aggregations over column-capable inputs run on
	// ColBatch vectors with selection-vector filtering and per-column
	// kernels (DESIGN.md §4i). Operators with inherently row-structured
	// logic (sorts, merges, sets, exchange routing, spools) and the
	// storage/Collect edges keep the row batch protocol; adapters bridge
	// the boundaries. Results are identical to the row engine.
	Columnar bool
	// Spools is the shared store the Materialize/Reuse operators of one
	// multi-query batch communicate through; every plan of the batch
	// must be built and run against the same store, in batch order. Nil
	// gets a private per-build store, which only suffices when a plan
	// contains its own Materialize nodes.
	Spools *SpoolStore
}

// BuildPlan translates an optimizer plan into an iterator tree over the
// database. Partitioned plans (delivered partitioning from the parallel
// model) are instantiated once per partition and merged by a Gather
// operator running the partitions in parallel goroutines.
func BuildPlan(db *DB, plan *core.Plan) (Iterator, *Schema, error) {
	return BuildPlanOpts(nil, db, plan, nil, Options{})
}

// BuildPlanParams is BuildPlan for incompletely specified queries:
// params supplies the runtime values of parameterized predicates
// (1-based indexes), and choose-plan nodes select their alternative
// using the bound values before any iterator is constructed.
func BuildPlanParams(db *DB, plan *core.Plan, params []int64) (Iterator, *Schema, error) {
	return BuildPlanOpts(nil, db, plan, params, Options{})
}

// BuildPlanOpts is the fully general entry point: a nil ctx means no
// cancellation; opts tunes batch size, exchange parallelism, and fusion.
func BuildPlanOpts(ctx context.Context, db *DB, plan *core.Plan, params []int64, opts Options) (Iterator, *Schema, error) {
	b := &builder{db: db, ctx: ctx, opts: opts, exch: make(map[*core.Plan]exchEntry), params: params}
	if part := deliveredPart(plan); part.Kind == relopt.PartHash {
		parts := make([]Iterator, part.Degree)
		var schema *Schema
		for i := 0; i < part.Degree; i++ {
			it, s, err := b.build(plan, i)
			if err != nil {
				return nil, nil, err
			}
			parts[i], schema = it, s
		}
		// A sorted partitioned plan merges order-preservingly.
		if keys := sortKeysFor(plan, schema); len(keys) > 0 {
			g := NewGatherOrdered(parts, keys)
			g.SetBatchSize(opts.BatchSize)
			return g, schema, nil
		}
		return NewGather(parts), schema, nil
	}
	return b.build(plan, -1)
}

// Run builds and drains a plan.
func Run(db *DB, plan *core.Plan) ([]Row, *Schema, error) {
	return RunParams(db, plan, nil)
}

// RunParams builds and drains a plan with bound parameters.
func RunParams(db *DB, plan *core.Plan, params []int64) ([]Row, *Schema, error) {
	return RunOpts(nil, db, plan, params, Options{})
}

// RunOpts builds and drains a plan under a context and execution options.
func RunOpts(ctx context.Context, db *DB, plan *core.Plan, params []int64, opts Options) ([]Row, *Schema, error) {
	it, schema, err := BuildPlanOpts(ctx, db, plan, params, opts)
	if err != nil {
		db.countRun(0, err)
		return nil, nil, err
	}
	rows, err := CollectSized(it, rowsHint(plan))
	db.countRun(len(rows), err)
	return rows, schema, err
}

func deliveredPart(plan *core.Plan) relopt.Partitioning {
	if pp, ok := plan.Delivered.(*relopt.PhysProps); ok {
		return pp.Part
	}
	return relopt.Partitioning{}
}

// sortKeysFor resolves the plan's delivered sort order against the
// physical schema; nil when the plan is unsorted (or a sort column is
// not in the output).
func sortKeysFor(plan *core.Plan, s *Schema) []sortKey {
	pp, ok := plan.Delivered.(*relopt.PhysProps)
	if !ok || len(pp.Sort) == 0 {
		return nil
	}
	keys := make([]sortKey, 0, len(pp.Sort))
	for _, oc := range pp.Sort {
		if !s.Has(oc.Col) {
			return nil
		}
		keys = append(keys, sortKey{pos: s.Pos(oc.Col), desc: oc.Desc})
	}
	return keys
}

// rowsHint converts a node's estimated output cardinality into a hash
// table pre-size; zero when no estimate is available.
func rowsHint(plan *core.Plan) int {
	if props, ok := plan.LogProps.(*rel.Props); ok {
		if n := int(props.Rows); n > 0 {
			return n
		}
	}
	return 0
}

// distinctHint estimates the distinct values of one column in a plan's
// output (0 = unknown).
func distinctHint(plan *core.Plan, col rel.ColID) int {
	if props, ok := plan.LogProps.(*rel.Props); ok {
		if st, ok := props.Stats[col]; ok {
			if n := int(st.Distinct); n > 0 {
				return n
			}
		}
	}
	return 0
}

// stripeSafe reports whether a subplan may be instantiated once per
// exchange producer with striped base scans: together the stripes
// produce exactly the serial subplan's multiset. True only for unary
// multiset-preserving chains over a single scan; joins, grouping, and
// set operations (whose instances would recompute, not partition) are
// excluded.
func stripeSafe(plan *core.Plan) bool {
	switch plan.Op.(type) {
	case *relopt.FileScan:
		return true
	case *relopt.Filter, *relopt.ProjectOp, *relopt.Sort:
		return stripeSafe(plan.Inputs[0])
	}
	return false
}

type builder struct {
	db   *DB
	ctx  context.Context
	opts Options
	// exch holds the shared streaming state of each exchange node,
	// one producer set per node regardless of how many partition
	// instances consume it. The physical schema is cached with it: a
	// commuted join's row layout can differ from the logical column
	// order of its equivalence class.
	exch map[*core.Plan]exchEntry
	// params are the runtime values bound to parameterized predicates.
	params []int64
	// stripe/stripes restrict base scans while building one exchange
	// producer's subplan instance.
	stripe, stripes int
}

type exchEntry struct {
	state  *exchangeState
	schema *Schema
}

// spools returns the batch's shared spool store, creating a private one
// on first use when the caller supplied none.
func (b *builder) spools() *SpoolStore {
	if b.opts.Spools == nil {
		b.opts.Spools = NewSpoolStore()
	}
	return b.opts.Spools
}

// bind substitutes bound parameter values into predicates.
func (b *builder) bind(preds []rel.Pred) ([]rel.Pred, error) {
	out := append([]rel.Pred(nil), preds...)
	for i, p := range out {
		if !p.IsParam() {
			continue
		}
		if p.Param > len(b.params) {
			return nil, fmt.Errorf("exec: predicate %s needs parameter $%d, %d bound", p, p.Param, len(b.params))
		}
		out[i].Val = b.params[p.Param-1]
		out[i].Param = 0
	}
	return out, nil
}

// schemaFor derives the output schema of a plan node from its logical
// properties; group-by nodes append unnamed aggregate columns.
func schemaFor(plan *core.Plan) *Schema {
	props := plan.LogProps.(*rel.Props)
	switch op := plan.Op.(type) {
	case *relopt.SortGroupBy:
		return groupSchema(props.Cols, len(op.Aggs))
	case *relopt.HashGroupBy:
		return groupSchema(props.Cols, len(op.Aggs))
	}
	return NewSchema(props.Cols)
}

func groupSchema(cols []rel.ColID, aggs int) *Schema {
	all := append([]rel.ColID(nil), cols...)
	for i := 0; i < aggs; i++ {
		all = append(all, rel.InvalidCol)
	}
	return NewSchema(all)
}

// build constructs and configures the iterator for one plan node.
func (b *builder) build(plan *core.Plan, part int) (Iterator, *Schema, error) {
	it, s, err := b.buildNode(plan, part)
	if err != nil {
		return nil, nil, err
	}
	if b.opts.BatchSize > 0 {
		if bs, ok := it.(batchSized); ok {
			bs.SetBatchSize(b.opts.BatchSize)
		}
	}
	if f, ok := it.(*Filter); ok && b.opts.NoFusion {
		f.SetFusion(false)
	}
	if b.ctx != nil {
		switch scan := it.(type) {
		case *TableScan:
			scan.SetContext(b.ctx)
		case *ColScan:
			scan.SetContext(b.ctx)
		}
	}
	return it, s, nil
}

// colCapable reports whether a plan node, built under Options.Columnar,
// exposes the columnar batch protocol without a per-batch transpose:
// scans over tables with a column-major projection, filter/project
// chains above them, and hash joins with at least one such side (whose
// output vectors are produced by gathers either way). It doubles as the
// construction rule: the builder creates the columnar variant of a node
// exactly when its relevant inputs are column-capable, so transposing
// adapters only ever appear where a row-structured operator (sort,
// merge, set, exchange, spool) genuinely sits below a columnar one.
func (b *builder) colCapable(plan *core.Plan) bool {
	switch op := plan.Op.(type) {
	case *relopt.FileScan:
		t := b.db.Table(op.Tab.Name)
		return t != nil && t.cols != nil
	case *relopt.Filter, *relopt.ProjectOp:
		return b.colCapable(plan.Inputs[0])
	case *relopt.HashJoin:
		return b.colCapable(plan.Inputs[0]) || b.colCapable(plan.Inputs[1])
	}
	return false
}

// buildNode constructs the iterator for one plan node. part is the
// partition index being instantiated, or -1 for serial execution.
func (b *builder) buildNode(plan *core.Plan, part int) (Iterator, *Schema, error) {
	schema := schemaFor(plan)
	switch op := plan.Op.(type) {
	case *relopt.FileScan:
		t := b.db.Table(op.Tab.Name)
		if t == nil {
			return nil, nil, fmt.Errorf("exec: table %q not loaded", op.Tab.Name)
		}
		if b.opts.Columnar {
			if scan := NewColScan(t); scan != nil {
				if b.stripes > 1 {
					scan.SetStripe(b.stripe, b.stripes)
				}
				return scan, t.Schema, nil
			}
		}
		scan := NewTableScan(t)
		if b.stripes > 1 {
			scan.SetStripe(b.stripe, b.stripes)
		}
		return scan, t.Schema, nil

	case *relopt.Filter:
		columnar := b.opts.Columnar && b.colCapable(plan.Inputs[0])
		in, ins, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		preds, err := b.bind(op.Preds)
		if err != nil {
			return nil, nil, err
		}
		if columnar {
			return NewColFilter(in, ins, preds), ins, nil
		}
		return NewFilter(in, ins, preds), ins, nil

	case *relopt.ProjectOp:
		columnar := b.opts.Columnar && b.colCapable(plan.Inputs[0])
		in, ins, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		if columnar {
			return NewColProject(in, ins, op.Cols), schema, nil
		}
		return NewProject(in, ins, op.Cols), schema, nil

	case *relopt.Sort:
		in, ins, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		return NewSort(in, ins, op.Order), ins, nil

	case *relopt.MergeJoin:
		return b.buildJoin(plan, part, op.LeftCol, op.RightCol, op.Proj, true)

	case *relopt.HashJoin:
		return b.buildJoin(plan, part, op.LeftCol, op.RightCol, op.Proj, false)

	case *relopt.NLJoin:
		l, ls, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		r, rs, err := b.build(plan.Inputs[1], part)
		if err != nil {
			return nil, nil, err
		}
		return NewNLJoin(l, r, ls, rs, ls.Pos(op.LeftCol), rs.Pos(op.RightCol)), joined(ls, rs), nil

	case *relopt.MergeIntersect:
		l, ls, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := b.build(plan.Inputs[1], part)
		if err != nil {
			return nil, nil, err
		}
		order := make([]int, len(op.Order))
		for i, oc := range op.Order {
			order[i] = ls.Pos(oc.Col)
		}
		return NewMergeIntersect(l, r, order), ls, nil

	case *relopt.MergeUnion:
		l, ls, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := b.build(plan.Inputs[1], part)
		if err != nil {
			return nil, nil, err
		}
		order := make([]int, len(op.Order))
		for i, oc := range op.Order {
			order[i] = ls.Pos(oc.Col)
		}
		return NewMergeUnion(l, r, order), ls, nil

	case *relopt.HashUnion:
		l, ls, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := b.build(plan.Inputs[1], part)
		if err != nil {
			return nil, nil, err
		}
		u := NewHashUnion(l, r)
		u.SizeHint = rowsHint(plan)
		return u, ls, nil

	case *relopt.HashIntersect:
		l, ls, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := b.build(plan.Inputs[1], part)
		if err != nil {
			return nil, nil, err
		}
		x := NewHashIntersect(l, r)
		x.SizeHint = rowsHint(plan.Inputs[0])
		return x, ls, nil

	case *relopt.SortGroupBy:
		columnar := b.opts.Columnar && b.colCapable(plan.Inputs[0])
		in, ins, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		if columnar {
			return NewColSortGroupBy(in, ins, op.GroupCols, op.Aggs), schema, nil
		}
		return NewSortGroupBy(in, ins, op.GroupCols, op.Aggs), schema, nil

	case *relopt.HashGroupBy:
		columnar := b.opts.Columnar && b.colCapable(plan.Inputs[0])
		in, ins, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		if columnar {
			g := NewColHashGroupBy(in, ins, op.GroupCols, op.Aggs)
			g.SizeHint = rowsHint(plan)
			return g, schema, nil
		}
		g := NewHashGroupBy(in, ins, op.GroupCols, op.Aggs)
		g.SizeHint = rowsHint(plan)
		return g, schema, nil

	case *relopt.ChoosePlan:
		// Dynamic plan: pick the alternative for the bound parameter,
		// then build only that subtree.
		if op.Pred.Param > len(b.params) {
			return nil, nil, fmt.Errorf("exec: choose-plan needs parameter $%d, %d bound", op.Pred.Param, len(b.params))
		}
		idx := op.ChooseAlternative(b.params[op.Pred.Param-1])
		return b.build(plan.Inputs[idx], part)

	case *relopt.Materialize:
		in, ins, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		return NewMaterialize(b.spools(), int(op.ID), in, ins), ins, nil

	case *relopt.Reuse:
		r, rs, err := NewReuse(b.spools(), int(op.ID))
		if err != nil {
			return nil, nil, err
		}
		return r, rs, nil

	case *relopt.Exchange:
		if part < 0 {
			return nil, nil, fmt.Errorf("exec: exchange outside a partitioned context")
		}
		e, ok := b.exch[plan]
		if !ok {
			var err error
			if e, err = b.buildExchange(plan, op); err != nil {
				return nil, nil, err
			}
			b.exch[plan] = e
		}
		return e.state.port(part), e.schema, nil
	}
	return nil, nil, fmt.Errorf("exec: no runtime for physical operator %T", plan.Op)
}

// buildExchange constructs an exchange node's shared state: its producer
// instances (striped over the base table when the input subplan is
// stripe-safe, a single serial instance otherwise) and routing queues.
func (b *builder) buildExchange(plan *core.Plan, op *relopt.Exchange) (exchEntry, error) {
	child := plan.Inputs[0]
	workers := 1
	if stripeSafe(child) {
		workers = b.opts.ExchangeWorkers
		if workers <= 0 {
			workers = op.Part.Degree
		}
		if workers < 1 {
			workers = 1
		}
	}
	producers := make([]Iterator, workers)
	var ins *Schema
	for p := 0; p < workers; p++ {
		b.stripe, b.stripes = p, workers
		it, s, err := b.build(child, -1)
		b.stripe, b.stripes = 0, 0
		if err != nil {
			return exchEntry{}, err
		}
		producers[p], ins = it, s
	}
	// Multi-producer exchanges over a sorted input merge
	// order-preservingly per partition.
	var keys []sortKey
	if workers > 1 {
		keys = sortKeysFor(child, ins)
	}
	st := newExchangeState(b.ctx, op.Part.Degree, ins.Pos(op.Part.Col), b.opts.BatchSize, keys, producers)
	return exchEntry{state: st, schema: ins}, nil
}

// buildJoin assembles merge- or hash-join with the optional fused
// projection resolved to concatenated-row positions.
func (b *builder) buildJoin(plan *core.Plan, part int, lcol, rcol rel.ColID, projCols []rel.ColID, merge bool) (Iterator, *Schema, error) {
	l, ls, err := b.build(plan.Inputs[0], part)
	if err != nil {
		return nil, nil, err
	}
	r, rs, err := b.build(plan.Inputs[1], part)
	if err != nil {
		return nil, nil, err
	}
	out := joined(ls, rs)
	var proj []int
	if projCols != nil {
		proj = make([]int, len(projCols))
		for i, c := range projCols {
			proj[i] = out.Pos(c)
		}
		out = NewSchema(projCols)
	}
	lp, rp := ls.Pos(lcol), rs.Pos(rcol)
	if merge {
		return NewMergeJoin(l, r, ls, rs, lp, rp, proj), out, nil
	}
	if b.opts.Columnar && (b.colCapable(plan.Inputs[0]) || b.colCapable(plan.Inputs[1])) {
		cj := NewColHashJoin(l, r, ls, rs, lp, rp, proj)
		cj.BuildHint = rowsHint(plan.Inputs[0])
		cj.KeyHint = distinctHint(plan.Inputs[0], lcol)
		return cj, out, nil
	}
	hj := NewHashJoin(l, r, ls, rs, lp, rp, proj)
	hj.BuildHint = rowsHint(plan.Inputs[0])
	hj.KeyHint = distinctHint(plan.Inputs[0], lcol)
	return hj, out, nil
}

func joined(l, r *Schema) *Schema {
	return NewSchema(append(append([]rel.ColID(nil), l.Cols...), r.Cols...))
}
