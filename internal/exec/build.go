package exec

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// BuildPlan translates an optimizer plan into an iterator tree over the
// database. Partitioned plans (delivered partitioning from the parallel
// model) are instantiated once per partition and merged by a Gather
// operator running the partitions in parallel goroutines.
func BuildPlan(db *DB, plan *core.Plan) (Iterator, *Schema, error) {
	return BuildPlanParams(db, plan, nil)
}

// BuildPlanParams is BuildPlan for incompletely specified queries:
// params supplies the runtime values of parameterized predicates
// (1-based indexes), and choose-plan nodes select their alternative
// using the bound values before any iterator is constructed.
func BuildPlanParams(db *DB, plan *core.Plan, params []int64) (Iterator, *Schema, error) {
	b := &builder{db: db, exch: make(map[*core.Plan]exchEntry), params: params}
	if part := deliveredPart(plan); part.Kind == relopt.PartHash {
		parts := make([]Iterator, part.Degree)
		var schema *Schema
		for i := 0; i < part.Degree; i++ {
			it, s, err := b.build(plan, i)
			if err != nil {
				return nil, nil, err
			}
			parts[i], schema = it, s
		}
		return NewGather(parts), schema, nil
	}
	return b.build(plan, -1)
}

// Run builds and drains a plan.
func Run(db *DB, plan *core.Plan) ([]Row, *Schema, error) {
	return RunParams(db, plan, nil)
}

// RunParams builds and drains a plan with bound parameters.
func RunParams(db *DB, plan *core.Plan, params []int64) ([]Row, *Schema, error) {
	it, schema, err := BuildPlanParams(db, plan, params)
	if err != nil {
		return nil, nil, err
	}
	rows, err := Collect(it)
	return rows, schema, err
}

func deliveredPart(plan *core.Plan) relopt.Partitioning {
	if pp, ok := plan.Delivered.(*relopt.PhysProps); ok {
		return pp.Part
	}
	return relopt.Partitioning{}
}

type builder struct {
	db *DB
	// exch holds the shared streaming state of each exchange node,
	// one producer per node regardless of how many partition
	// instances consume it. The physical schema is cached with it: a
	// commuted join's row layout can differ from the logical column
	// order of its equivalence class.
	exch map[*core.Plan]exchEntry
	// params are the runtime values bound to parameterized predicates.
	params []int64
}

type exchEntry struct {
	state  *exchangeState
	schema *Schema
}

// bind substitutes bound parameter values into predicates.
func (b *builder) bind(preds []rel.Pred) ([]rel.Pred, error) {
	out := append([]rel.Pred(nil), preds...)
	for i, p := range out {
		if !p.IsParam() {
			continue
		}
		if p.Param > len(b.params) {
			return nil, fmt.Errorf("exec: predicate %s needs parameter $%d, %d bound", p, p.Param, len(b.params))
		}
		out[i].Val = b.params[p.Param-1]
		out[i].Param = 0
	}
	return out, nil
}

// schemaFor derives the output schema of a plan node from its logical
// properties; group-by nodes append unnamed aggregate columns.
func schemaFor(plan *core.Plan) *Schema {
	props := plan.LogProps.(*rel.Props)
	switch op := plan.Op.(type) {
	case *relopt.SortGroupBy:
		return groupSchema(props.Cols, len(op.Aggs))
	case *relopt.HashGroupBy:
		return groupSchema(props.Cols, len(op.Aggs))
	}
	return NewSchema(props.Cols)
}

func groupSchema(cols []rel.ColID, aggs int) *Schema {
	all := append([]rel.ColID(nil), cols...)
	for i := 0; i < aggs; i++ {
		all = append(all, rel.InvalidCol)
	}
	return NewSchema(all)
}

// build constructs the iterator for one plan node. part is the partition
// index being instantiated, or -1 for serial execution.
func (b *builder) build(plan *core.Plan, part int) (Iterator, *Schema, error) {
	schema := schemaFor(plan)
	switch op := plan.Op.(type) {
	case *relopt.FileScan:
		t := b.db.Table(op.Tab.Name)
		if t == nil {
			return nil, nil, fmt.Errorf("exec: table %q not loaded", op.Tab.Name)
		}
		return NewTableScan(t), t.Schema, nil

	case *relopt.Filter:
		in, ins, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		preds, err := b.bind(op.Preds)
		if err != nil {
			return nil, nil, err
		}
		return NewFilter(in, ins, preds), ins, nil

	case *relopt.ProjectOp:
		in, ins, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		return NewProject(in, ins, op.Cols), schema, nil

	case *relopt.Sort:
		in, ins, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		return NewSort(in, ins, op.Order), ins, nil

	case *relopt.MergeJoin:
		return b.buildJoin(plan, part, op.LeftCol, op.RightCol, op.Proj, true)

	case *relopt.HashJoin:
		return b.buildJoin(plan, part, op.LeftCol, op.RightCol, op.Proj, false)

	case *relopt.NLJoin:
		l, ls, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		r, rs, err := b.build(plan.Inputs[1], part)
		if err != nil {
			return nil, nil, err
		}
		return NewNLJoin(l, r, ls, rs, ls.Pos(op.LeftCol), rs.Pos(op.RightCol)), joined(ls, rs), nil

	case *relopt.MergeIntersect:
		l, ls, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := b.build(plan.Inputs[1], part)
		if err != nil {
			return nil, nil, err
		}
		order := make([]int, len(op.Order))
		for i, oc := range op.Order {
			order[i] = ls.Pos(oc.Col)
		}
		return NewMergeIntersect(l, r, order), ls, nil

	case *relopt.MergeUnion:
		l, ls, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := b.build(plan.Inputs[1], part)
		if err != nil {
			return nil, nil, err
		}
		order := make([]int, len(op.Order))
		for i, oc := range op.Order {
			order[i] = ls.Pos(oc.Col)
		}
		return NewMergeUnion(l, r, order), ls, nil

	case *relopt.HashUnion:
		l, ls, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := b.build(plan.Inputs[1], part)
		if err != nil {
			return nil, nil, err
		}
		return NewHashUnion(l, r), ls, nil

	case *relopt.HashIntersect:
		l, ls, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		r, _, err := b.build(plan.Inputs[1], part)
		if err != nil {
			return nil, nil, err
		}
		return NewHashIntersect(l, r), ls, nil

	case *relopt.SortGroupBy:
		in, ins, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		return NewSortGroupBy(in, ins, op.GroupCols, op.Aggs), schema, nil

	case *relopt.HashGroupBy:
		in, ins, err := b.build(plan.Inputs[0], part)
		if err != nil {
			return nil, nil, err
		}
		return NewHashGroupBy(in, ins, op.GroupCols, op.Aggs), schema, nil

	case *relopt.ChoosePlan:
		// Dynamic plan: pick the alternative for the bound parameter,
		// then build only that subtree.
		if op.Pred.Param > len(b.params) {
			return nil, nil, fmt.Errorf("exec: choose-plan needs parameter $%d, %d bound", op.Pred.Param, len(b.params))
		}
		idx := op.ChooseAlternative(b.params[op.Pred.Param-1])
		return b.build(plan.Inputs[idx], part)

	case *relopt.Exchange:
		if part < 0 {
			return nil, nil, fmt.Errorf("exec: exchange outside a partitioned context")
		}
		e, ok := b.exch[plan]
		if !ok {
			// Build the serial input once; every partition instance
			// shares the producer that drains it.
			child, ins, err := b.build(plan.Inputs[0], -1)
			if err != nil {
				return nil, nil, err
			}
			e = exchEntry{
				state: newExchangeState(op.Part.Degree, ins.Pos(op.Part.Col),
					func() (Iterator, error) { return child, nil }),
				schema: ins,
			}
			b.exch[plan] = e
		}
		return &exchangePort{st: e.state, part: part}, e.schema, nil
	}
	return nil, nil, fmt.Errorf("exec: no runtime for physical operator %T", plan.Op)
}

// buildJoin assembles merge- or hash-join with the optional fused
// projection resolved to concatenated-row positions.
func (b *builder) buildJoin(plan *core.Plan, part int, lcol, rcol rel.ColID, projCols []rel.ColID, merge bool) (Iterator, *Schema, error) {
	l, ls, err := b.build(plan.Inputs[0], part)
	if err != nil {
		return nil, nil, err
	}
	r, rs, err := b.build(plan.Inputs[1], part)
	if err != nil {
		return nil, nil, err
	}
	out := joined(ls, rs)
	var proj []int
	if projCols != nil {
		proj = make([]int, len(projCols))
		for i, c := range projCols {
			proj[i] = out.Pos(c)
		}
		out = NewSchema(projCols)
	}
	lp, rp := ls.Pos(lcol), rs.Pos(rcol)
	if merge {
		return NewMergeJoin(l, r, ls, rs, lp, rp, proj), out, nil
	}
	return NewHashJoin(l, r, ls, rs, lp, rp, proj), out, nil
}

func joined(l, r *Schema) *Schema {
	return NewSchema(append(append([]rel.ColID(nil), l.Cols...), r.Cols...))
}
