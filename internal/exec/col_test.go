package exec

import (
	"math/rand"
	"testing"

	"repro/internal/rel"
	"repro/internal/relopt"
)

// randTable builds a compacted table (row and columnar storage) with the
// given column IDs, rows drawn from a small signed domain so predicates
// hit every comparison outcome.
func randTable(rng *rand.Rand, cols []rel.ColID, n int) *Table {
	t := &Table{Name: "t", Schema: NewSchema(cols), Rows: make([]Row, n)}
	for i := range t.Rows {
		r := make(Row, len(cols))
		for j := range r {
			r[j] = int64(rng.Intn(21) - 10)
		}
		t.Rows[i] = r
	}
	t.compact()
	return t
}

var cmpOps = []rel.CmpOp{rel.CmpEQ, rel.CmpNE, rel.CmpLT, rel.CmpLE, rel.CmpGT, rel.CmpGE}

// randPreds draws 1–3 random conjuncts over the table's columns,
// including column-column comparisons.
func randPreds(rng *rand.Rand, cols []rel.ColID) []rel.Pred {
	preds := make([]rel.Pred, 1+rng.Intn(3))
	for i := range preds {
		p := rel.Pred{Col: cols[rng.Intn(len(cols))], Op: cmpOps[rng.Intn(len(cmpOps))]}
		if len(cols) > 1 && rng.Intn(3) == 0 {
			p.OtherCol = cols[rng.Intn(len(cols))]
			for p.OtherCol == p.Col {
				p.OtherCol = cols[rng.Intn(len(cols))]
			}
		} else {
			p.Val = int64(rng.Intn(21) - 10)
		}
		preds[i] = p
	}
	return preds
}

// colScanOf returns a columnar scan over the table, falling back to a
// row scan for tables without a columnar projection (empty tables).
func colScanOf(tab *Table) Iterator {
	if cs := NewColScan(tab); cs != nil {
		return cs
	}
	return NewTableScan(tab)
}

func collectAll(t *testing.T, it Iterator) []Row {
	t.Helper()
	rows, err := Collect(it)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return rows
}

// TestColFilterMatchesRowFilterRandom is the fuzz-style cross-check of
// the columnar fused scan-filter against the row filter: random tables,
// random conjuncts (all six comparison operators, constant and
// column-column), random batch sizes. Filters preserve input order, so
// the comparison is exact row-for-row, not just multiset. Runs under
// -race via the standard test suite.
func TestColFilterMatchesRowFilterRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		ncols := 1 + rng.Intn(4)
		cols := make([]rel.ColID, ncols)
		for i := range cols {
			cols[i] = rel.ColID(i + 1)
		}
		tab := randTable(rng, cols, rng.Intn(3000))
		preds := randPreds(rng, cols)
		size := []int{1, 7, 64, DefaultBatchSize}[rng.Intn(4)]

		rf := NewFilter(NewTableScan(tab), tab.Schema, preds)
		rf.SetBatchSize(size)
		want := collectAll(t, rf)

		var scan Iterator = NewTableScan(tab)
		if cs := NewColScan(tab); cs != nil {
			cs.SetBatchSize(size)
			scan = cs
		}
		cf := NewColFilter(scan, tab.Schema, preds)
		cf.SetBatchSize(size)
		got := collectAll(t, cf)

		if len(got) != len(want) {
			t.Fatalf("trial %d (size %d, preds %v): %d rows, want %d", trial, size, preds, len(got), len(want))
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("trial %d: row %d differs: got %v want %v (preds %v)", trial, i, got[i], want[i], preds)
				}
			}
		}
	}
}

// TestColFilterOverRowInput checks the transposing adapter path: a
// columnar filter over a row-producing input (no columnar projection)
// must agree with the row filter.
func TestColFilterOverRowInput(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	cols := []rel.ColID{1, 2}
	tab := randTable(rng, cols, 500)
	preds := []rel.Pred{{Col: 1, Op: rel.CmpGE, Val: 0}, {Col: 2, Op: rel.CmpLT, OtherCol: 1}}

	want := collectAll(t, NewFilter(NewTableScan(tab), tab.Schema, preds))
	got := collectAll(t, NewColFilter(NewTableScan(tab), tab.Schema, preds))
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("row %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestColHashJoinMatchesHashJoin cross-checks the columnar hash join
// against the row hash join on random tables, with and without a fused
// projection, at awkward batch sizes.
func TestColHashJoinMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 30; trial++ {
		lcols := []rel.ColID{1, 2}
		rcols := []rel.ColID{3, 4, 5}
		lt := randTable(rng, lcols, rng.Intn(400))
		rt := randTable(rng, rcols, rng.Intn(400))
		size := []int{1, 7, 64}[rng.Intn(3)]
		var proj []int
		if rng.Intn(2) == 0 {
			proj = []int{0, 3, 4}
		}

		rj := NewHashJoin(NewTableScan(lt), NewTableScan(rt), lt.Schema, rt.Schema, 0, 1, proj)
		rj.SetBatchSize(size)
		want := collectAll(t, rj)

		cj := NewColHashJoin(colScanOf(lt), colScanOf(rt), lt.Schema, rt.Schema, 0, 1, proj)
		cj.SetBatchSize(size)
		got := collectAll(t, cj)

		if Fingerprint(got) != Fingerprint(want) {
			t.Fatalf("trial %d (size %d, proj %v): columnar join multiset differs (%d vs %d rows)",
				trial, size, proj, len(got), len(want))
		}
	}
}

// TestColGroupByMatchesRowGroupBy cross-checks columnar hash and sorted
// grouping against their row counterparts: single and multi grouping
// columns, every aggregate function.
func TestColGroupByMatchesRowGroupBy(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	aggs := []rel.Agg{
		{Fn: rel.AggCount},
		{Fn: rel.AggSum, Col: 2},
		{Fn: rel.AggMin, Col: 2},
		{Fn: rel.AggMax, Col: 1},
	}
	for trial := 0; trial < 20; trial++ {
		cols := []rel.ColID{1, 2, 3}
		tab := randTable(rng, cols, rng.Intn(2000))
		groupCols := [][]rel.ColID{{1}, {1, 3}}[rng.Intn(2)]
		size := []int{1, 7, DefaultBatchSize}[rng.Intn(3)]

		rg := NewHashGroupBy(NewTableScan(tab), tab.Schema, groupCols, aggs)
		rg.SetBatchSize(size)
		want := collectAll(t, rg)

		cg := NewColHashGroupBy(colScanOf(tab), tab.Schema, groupCols, aggs)
		cg.SetBatchSize(size)
		got := collectAll(t, cg)
		if Fingerprint(got) != Fingerprint(want) {
			t.Fatalf("trial %d: columnar hash group-by differs (%d vs %d groups)", trial, len(got), len(want))
		}

		// Sorted grouping needs sorted input: run both over a sort.
		sortOrder := make([]relopt.OrderCol, len(groupCols))
		for i, c := range groupCols {
			sortOrder[i] = relopt.OrderCol{Col: c}
		}
		sg := NewSortGroupBy(NewSort(NewTableScan(tab), tab.Schema, sortOrder), tab.Schema, groupCols, aggs)
		sg.SetBatchSize(size)
		want = collectAll(t, sg)
		csg := NewColSortGroupBy(NewSort(colScanOf(tab), tab.Schema, sortOrder), tab.Schema, groupCols, aggs)
		csg.SetBatchSize(size)
		got = collectAll(t, csg)
		if Fingerprint(got) != Fingerprint(want) {
			t.Fatalf("trial %d: columnar sort group-by differs (%d vs %d groups)", trial, len(got), len(want))
		}
	}
}

// TestColSortGroupByOverColFilter exercises the selection-vector path of
// the streaming aggregate: a columnar filter feeds the sorted grouping
// directly, so runs are detected through the selection vector.
func TestColSortGroupByOverColFilter(t *testing.T) {
	tab := &Table{Name: "t", Schema: NewSchema([]rel.ColID{1, 2})}
	for g := int64(0); g < 50; g++ {
		for i := int64(0); i < 20; i++ {
			tab.Rows = append(tab.Rows, Row{g, i})
		}
	}
	tab.compact()
	preds := []rel.Pred{{Col: 2, Op: rel.CmpLT, Val: 10}}
	aggs := []rel.Agg{{Fn: rel.AggCount}, {Fn: rel.AggSum, Col: 2}}

	want := collectAll(t, NewSortGroupBy(NewFilter(NewTableScan(tab), tab.Schema, preds), tab.Schema, []rel.ColID{1}, aggs))
	got := collectAll(t, NewColSortGroupBy(NewColFilter(NewColScan(tab), tab.Schema, preds), tab.Schema, []rel.ColID{1}, aggs))
	if Fingerprint(got) != Fingerprint(want) {
		t.Fatalf("columnar sort group-by over filter differs: %d vs %d groups", len(got), len(want))
	}
	if len(got) != 50 || got[0][1] != 10 || got[0][2] != 45 {
		t.Fatalf("unexpected group output: %v", got[0])
	}
}

// TestAllocWholeRowChunks is the regression test for the arena-refill
// fix: a chunk that is not a whole-row multiple used to strand its
// remainder at every refill, costing extra allocations. With the chunk
// rounded up to a width multiple, 240 width-3 rows at chunk 8 (rounded
// to 9: three rows per arena) need exactly 80 refills, not 120.
func TestAllocWholeRowChunks(t *testing.T) {
	const width, chunk, rows = 3, 8, 240
	b := &Batch{Rows: make([]Row, 0, rows)}
	allocs := testing.AllocsPerRun(10, func() {
		b.reset()
		b.arena = nil
		for i := 0; i < rows; i++ {
			b.alloc(width, chunk)
		}
	})
	if allocs > 80 {
		t.Fatalf("%.0f arena refills for %d width-%d rows at chunk %d; want <= 80 (whole-row chunks)",
			allocs, rows, width, chunk)
	}
	// The carved rows must still be distinct, writable storage.
	for i, r := range b.Rows {
		r[0] = int64(i)
	}
	for i, r := range b.Rows {
		if r[0] != int64(i) {
			t.Fatalf("row %d storage aliased", i)
		}
	}
}

// TestAllocRowsBlock checks the bulk carver: headers slice one
// contiguous block, refills honor whole-row chunks, and a block larger
// than the chunk is carved in one piece.
func TestAllocRowsBlock(t *testing.T) {
	b := &Batch{}
	block := b.allocRows(4, 3, 6)
	if len(block) != 12 || len(b.Rows) != 4 {
		t.Fatalf("allocRows(4,3,6): block %d rows %d", len(block), len(b.Rows))
	}
	for i := range block {
		block[i] = int64(i)
	}
	for i, r := range b.Rows {
		for j := 0; j < 3; j++ {
			if r[j] != int64(i*3+j) {
				t.Fatalf("row %d not a view of the block: %v", i, r)
			}
		}
	}
	if got := b.allocRows(0, 3, 6); got != nil {
		t.Fatalf("allocRows(0,...) = %v, want nil", got)
	}
}

// TestColScanStripes checks that striped columnar scans cover the table
// exactly once, matching the row scan's striping.
func TestColScanStripes(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	tab := randTable(rng, []rel.ColID{1, 2}, 1000)
	for _, stripes := range []int{2, 3, 4} {
		var all []Row
		for i := 0; i < stripes; i++ {
			s := NewColScan(tab)
			s.SetStripe(i, stripes)
			s.SetBatchSize(64)
			all = append(all, collectAll(t, s)...)
		}
		if len(all) != len(tab.Rows) {
			t.Fatalf("stripes %d: %d rows, want %d", stripes, len(all), len(tab.Rows))
		}
		if Fingerprint(all) != Fingerprint(tab.Rows) {
			t.Fatalf("stripes %d: striped union differs from table", stripes)
		}
	}
}

// --- benchmarks: the row/batch/columnar kernel comparison at 10⁵ rows.

func benchTable(n int) *Table {
	rng := rand.New(rand.NewSource(1))
	t := &Table{Name: "b", Schema: NewSchema([]rel.ColID{1, 2, 3, 4})}
	t.Rows = make([]Row, n)
	for i := range t.Rows {
		t.Rows[i] = Row{int64(i), int64(rng.Intn(n / 6)), int64(rng.Intn(n / 3)), int64(rng.Intn(1000))}
	}
	t.compact()
	return t
}

func drain(b *testing.B, it Iterator) int {
	rows, err := Collect(it)
	if err != nil {
		b.Fatal(err)
	}
	return len(rows)
}

func BenchmarkScanFilterRow(b *testing.B) {
	tab := benchTable(100000)
	preds := []rel.Pred{{Col: 4, Op: rel.CmpLT, Val: 500}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(b, NewFilter(NewTableScan(tab), tab.Schema, preds))
	}
}

func BenchmarkScanFilterColumnar(b *testing.B) {
	tab := benchTable(100000)
	preds := []rel.Pred{{Col: 4, Op: rel.CmpLT, Val: 500}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drain(b, NewColFilter(NewColScan(tab), tab.Schema, preds))
	}
}

func BenchmarkHashAggRow(b *testing.B) {
	tab := benchTable(100000)
	aggs := []rel.Agg{{Fn: rel.AggCount}, {Fn: rel.AggSum, Col: 4}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewHashGroupBy(NewTableScan(tab), tab.Schema, []rel.ColID{2}, aggs)
		g.SizeHint = 100000 / 6
		drain(b, g)
	}
}

func BenchmarkHashAggColumnar(b *testing.B) {
	tab := benchTable(100000)
	aggs := []rel.Agg{{Fn: rel.AggCount}, {Fn: rel.AggSum, Col: 4}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewColHashGroupBy(NewColScan(tab), tab.Schema, []rel.ColID{2}, aggs)
		g.SizeHint = 100000 / 6
		drain(b, g)
	}
}

func BenchmarkHashJoinRow(b *testing.B) {
	tab := benchTable(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := NewHashJoin(NewTableScan(tab), NewTableScan(tab), tab.Schema, tab.Schema, 1, 1, []int{0, 4})
		j.BuildHint = 100000
		drain(b, j)
	}
}

func BenchmarkHashJoinColumnar(b *testing.B) {
	tab := benchTable(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := NewColHashJoin(NewColScan(tab), NewColScan(tab), tab.Schema, tab.Schema, 1, 1, []int{0, 4})
		j.BuildHint = 100000
		drain(b, j)
	}
}
