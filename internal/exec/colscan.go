package exec

import (
	"context"

	"repro/internal/rel"
)

// ColScan reads a stored relation's column-major projection front to
// back, one columnar batch per call. The returned batches are zero-copy
// windows of the table's column vectors. Its row-protocol side
// (NextBatch) serves zero-copy views of the stored rows, exactly like
// TableScan, so row consumers above a ColScan pay nothing for the
// columnar capability below them.
type ColScan struct {
	// Tab is the relation scanned; it must carry a columnar projection
	// (Table.compact builds one).
	Tab *Table

	size    int
	ctx     context.Context
	stripe  int
	stripes int
	lo, hi  int
	next    int
	view    ColBatch
	rview   Batch
	ra      rowAdapter
}

// NewColScan creates a columnar scan over a table; it returns nil when
// the table has no columnar projection (callers fall back to TableScan).
func NewColScan(t *Table) *ColScan {
	if t.cols == nil {
		return nil
	}
	return &ColScan{Tab: t, size: DefaultBatchSize}
}

// SetBatchSize sets the rows per batch.
func (s *ColScan) SetBatchSize(n int) { s.size = sizeOrDefault(n) }

// SetContext makes the scan fail with the context's error once it is
// canceled; checked once per batch.
func (s *ColScan) SetContext(ctx context.Context) { s.ctx = ctx }

// SetStripe restricts the scan to stripe i of n contiguous equal-width
// stripes of the table, as in TableScan.SetStripe.
func (s *ColScan) SetStripe(i, n int) { s.stripe, s.stripes = i, n }

// Open resets the scan to the first row of its stripe.
func (s *ColScan) Open() error {
	total := len(s.Tab.Rows)
	s.lo, s.hi = 0, total
	if s.stripes > 1 {
		s.lo = s.stripe * total / s.stripes
		s.hi = (s.stripe + 1) * total / s.stripes
	}
	s.next = s.lo
	s.ra.reset()
	return nil
}

// NextColBatch returns the next columnar batch as zero-copy column
// windows.
func (s *ColScan) NextColBatch() (*ColBatch, bool, error) {
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return nil, false, err
		}
	}
	if s.next >= s.hi {
		return nil, false, nil
	}
	end := s.next + s.size
	if end > s.hi {
		end = s.hi
	}
	s.view.Cols = s.view.Cols[:0]
	for _, col := range s.Tab.cols {
		s.view.Cols = append(s.view.Cols, col[s.next:end:end])
	}
	s.view.Sel, s.view.N = nil, end-s.next
	s.next = end
	return &s.view, true, nil
}

// NextBatch returns the next batch of stored rows as a zero-copy view.
func (s *ColScan) NextBatch() (*Batch, bool, error) {
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return nil, false, err
		}
	}
	if s.next >= s.hi {
		return nil, false, nil
	}
	end := s.next + s.size
	if end > s.hi {
		end = s.hi
	}
	s.rview.Rows = s.Tab.Rows[s.next:end]
	s.next = end
	return &s.rview, true, nil
}

// Next returns the next stored row.
func (s *ColScan) Next() (Row, bool, error) { return s.ra.next(s) }

// Close is a no-op for scans.
func (s *ColScan) Close() error { return nil }

// ColFilter drops rows failing any conjunct, columnar-style: instead of
// copying surviving rows it passes the input vectors through untouched
// and narrows the selection vector. The compiled conjuncts run
// column-at-a-time — one specialized compare loop per comparison
// operator whose inner body is a single compare plus a branchless
// conditional increment (the survivor index is stored unconditionally;
// only the write cursor advances conditionally), so 50%-selective
// predicates cost no branch mispredictions. Over a ColScan input this
// is scan-filter fusion in its strongest form: the conjuncts evaluate
// directly over the stored column windows and rejected rows are never
// materialized anywhere.
type ColFilter struct {
	// In is the input stream.
	In Iterator

	preds  []compiledPred
	in     ColBatchIterator
	scan   *ColScan // non-nil: input is a columnar scan (fusion)
	size   int
	selbuf []int32
	view   ColBatch
	out    Batch
	ra     rowAdapter
}

// NewColFilter compiles the conjuncts against the input schema.
func NewColFilter(in Iterator, schema *Schema, preds []rel.Pred) *ColFilter {
	f := &ColFilter{In: in, in: asCols(in), size: DefaultBatchSize}
	for _, p := range preds {
		f.preds = append(f.preds, compilePred(p, schema))
	}
	if scan, ok := in.(*ColScan); ok {
		f.scan = scan
	}
	return f
}

// SetBatchSize sets the rows per batch.
func (f *ColFilter) SetBatchSize(n int) { f.size = sizeOrDefault(n) }

// Open opens the input.
func (f *ColFilter) Open() error {
	f.ra.reset()
	return f.In.Open()
}

// NextColBatch returns the input's next batch narrowed to the rows
// satisfying every conjunct: the column vectors are shared with the
// input batch, only the selection vector is owned by the filter.
func (f *ColFilter) NextColBatch() (*ColBatch, bool, error) {
	for {
		cb, ok, err := f.in.NextColBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		if cap(f.selbuf) < cb.N {
			f.selbuf = make([]int32, cb.N)
		}
		sel := f.selbuf[:cb.N]
		n := 0
		for i, p := range f.preds {
			switch {
			case i == 0 && cb.Sel == nil:
				n = selectDense(p, cb.Cols, cb.N, sel)
			case i == 0:
				n = refineSel(p, cb.Cols, cb.Sel, sel)
			default:
				// In-place refinement: the write cursor never passes the
				// read cursor.
				n = refineSel(p, cb.Cols, sel[:n], sel)
			}
			if n == 0 {
				break
			}
		}
		if n == 0 {
			continue
		}
		f.view.Cols = cb.Cols
		f.view.Sel = sel[:n]
		f.view.N = cb.N
		return &f.view, true, nil
	}
}

// NextBatch serves the surviving rows on the row protocol. Over a
// columnar scan the survivors are the stored rows themselves, so the
// batch gathers zero-copy row headers through the selection vector — the
// columnar counterpart of the row engine's fused scan-filter, with the
// branchless selection kernels replacing its per-row predicate branch.
// Other inputs materialize through the arena.
func (f *ColFilter) NextBatch() (*Batch, bool, error) {
	cb, ok, err := f.NextColBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	f.out.reset()
	if f.scan != nil {
		base := f.scan.next - cb.N
		rows := f.scan.Tab.Rows[base:]
		for _, s := range cb.Sel {
			f.out.add(rows[s])
		}
		return &f.out, true, nil
	}
	materializeInto(&f.out, cb, len(cb.Cols)*f.size)
	return &f.out, true, nil
}

// Next returns the next row satisfying every conjunct.
func (f *ColFilter) Next() (Row, bool, error) { return f.ra.next(f) }

// Close closes the input.
func (f *ColFilter) Close() error { return f.In.Close() }

// selectDense fills sel with the indexes of the rows in [0,n) satisfying
// p, returning the survivor count. One loop per comparison operator
// keeps the inner body branch-free: the candidate index is always
// stored, the write cursor advances only on a match.
func selectDense(p compiledPred, cols [][]int64, n int, sel []int32) int {
	k := 0
	if p.otherPos < 0 {
		col := cols[p.pos][:n]
		val := p.val
		switch p.op {
		case rel.CmpEQ:
			for i, v := range col {
				sel[k] = int32(i)
				if v == val {
					k++
				}
			}
		case rel.CmpNE:
			for i, v := range col {
				sel[k] = int32(i)
				if v != val {
					k++
				}
			}
		case rel.CmpLT:
			for i, v := range col {
				sel[k] = int32(i)
				if v < val {
					k++
				}
			}
		case rel.CmpLE:
			for i, v := range col {
				sel[k] = int32(i)
				if v <= val {
					k++
				}
			}
		case rel.CmpGT:
			for i, v := range col {
				sel[k] = int32(i)
				if v > val {
					k++
				}
			}
		case rel.CmpGE:
			for i, v := range col {
				sel[k] = int32(i)
				if v >= val {
					k++
				}
			}
		}
		return k
	}
	a := cols[p.pos][:n]
	b := cols[p.otherPos][:n]
	switch p.op {
	case rel.CmpEQ:
		for i, v := range a {
			sel[k] = int32(i)
			if v == b[i] {
				k++
			}
		}
	case rel.CmpNE:
		for i, v := range a {
			sel[k] = int32(i)
			if v != b[i] {
				k++
			}
		}
	case rel.CmpLT:
		for i, v := range a {
			sel[k] = int32(i)
			if v < b[i] {
				k++
			}
		}
	case rel.CmpLE:
		for i, v := range a {
			sel[k] = int32(i)
			if v <= b[i] {
				k++
			}
		}
	case rel.CmpGT:
		for i, v := range a {
			sel[k] = int32(i)
			if v > b[i] {
				k++
			}
		}
	case rel.CmpGE:
		for i, v := range a {
			sel[k] = int32(i)
			if v >= b[i] {
				k++
			}
		}
	}
	return k
}

// refineSel narrows an existing selection: dst receives the members of
// src whose row satisfies p. src and dst may alias (in-place
// refinement), because the write cursor never passes the read cursor.
func refineSel(p compiledPred, cols [][]int64, src, dst []int32) int {
	k := 0
	if p.otherPos < 0 {
		col := cols[p.pos]
		val := p.val
		switch p.op {
		case rel.CmpEQ:
			for _, s := range src {
				dst[k] = s
				if col[s] == val {
					k++
				}
			}
		case rel.CmpNE:
			for _, s := range src {
				dst[k] = s
				if col[s] != val {
					k++
				}
			}
		case rel.CmpLT:
			for _, s := range src {
				dst[k] = s
				if col[s] < val {
					k++
				}
			}
		case rel.CmpLE:
			for _, s := range src {
				dst[k] = s
				if col[s] <= val {
					k++
				}
			}
		case rel.CmpGT:
			for _, s := range src {
				dst[k] = s
				if col[s] > val {
					k++
				}
			}
		case rel.CmpGE:
			for _, s := range src {
				dst[k] = s
				if col[s] >= val {
					k++
				}
			}
		}
		return k
	}
	a := cols[p.pos]
	b := cols[p.otherPos]
	switch p.op {
	case rel.CmpEQ:
		for _, s := range src {
			dst[k] = s
			if a[s] == b[s] {
				k++
			}
		}
	case rel.CmpNE:
		for _, s := range src {
			dst[k] = s
			if a[s] != b[s] {
				k++
			}
		}
	case rel.CmpLT:
		for _, s := range src {
			dst[k] = s
			if a[s] < b[s] {
				k++
			}
		}
	case rel.CmpLE:
		for _, s := range src {
			dst[k] = s
			if a[s] <= b[s] {
				k++
			}
		}
	case rel.CmpGT:
		for _, s := range src {
			dst[k] = s
			if a[s] > b[s] {
				k++
			}
		}
	case rel.CmpGE:
		for _, s := range src {
			dst[k] = s
			if a[s] >= b[s] {
				k++
			}
		}
	}
	return k
}

// ColProject narrows a columnar stream to a column subset. Columns are
// shared with the input batch (a projection is a vector pick, not a
// copy); the selection vector passes through untouched.
type ColProject struct {
	// In is the input stream.
	In Iterator

	idx  []int
	in   ColBatchIterator
	size int
	view ColBatch
	out  Batch
	ra   rowAdapter
}

// NewColProject resolves the output columns against the input schema.
func NewColProject(in Iterator, schema *Schema, cols []rel.ColID) *ColProject {
	p := &ColProject{In: in, in: asCols(in), size: DefaultBatchSize, idx: make([]int, len(cols))}
	for i, c := range cols {
		p.idx[i] = schema.Pos(c)
	}
	return p
}

// SetBatchSize sets the rows per batch.
func (p *ColProject) SetBatchSize(n int) { p.size = sizeOrDefault(n) }

// Open opens the input.
func (p *ColProject) Open() error {
	p.ra.reset()
	return p.In.Open()
}

// NextColBatch returns the next batch narrowed to the projected columns.
func (p *ColProject) NextColBatch() (*ColBatch, bool, error) {
	cb, ok, err := p.in.NextColBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	p.view.Cols = p.view.Cols[:0]
	for _, j := range p.idx {
		p.view.Cols = append(p.view.Cols, cb.Cols[j])
	}
	p.view.Sel, p.view.N = cb.Sel, cb.N
	return &p.view, true, nil
}

// NextBatch materializes the next projected rows onto the row protocol.
func (p *ColProject) NextBatch() (*Batch, bool, error) {
	cb, ok, err := p.NextColBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	p.out.reset()
	materializeInto(&p.out, cb, len(cb.Cols)*p.size)
	return &p.out, true, nil
}

// Next returns the next projected row.
func (p *ColProject) Next() (Row, bool, error) { return p.ra.next(p) }

// Close closes the input.
func (p *ColProject) Close() error { return p.In.Close() }
