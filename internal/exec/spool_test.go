package exec

import "testing"

// countingIter counts how many times the producer is drained.
type countingIter struct {
	sliceIter
	opens int
}

func (c *countingIter) Open() error { c.opens++; return c.sliceIter.Open() }

func TestSpoolComputesOnce(t *testing.T) {
	prod := &countingIter{sliceIter: sliceIter{rows: []Row{{1, 10}, {2, 20}, {3, 30}}}}
	st := NewSpoolStore()
	mat := NewMaterialize(st, 7, prod, schema2())
	reuse, rs, err := NewReuse(st, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rs != schema2() && len(rs.Cols) != 2 {
		t.Fatalf("reuse schema = %v", rs)
	}

	// The reuse consumer opening first must trigger the one fill.
	out1, err := Collect(reuse)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := Collect(mat)
	if err != nil {
		t.Fatal(err)
	}
	if len(out1) != 3 || len(out2) != 3 {
		t.Fatalf("rows: reuse %d, materialize %d, want 3 each", len(out1), len(out2))
	}
	for i := range out1 {
		if out1[i][0] != out2[i][0] || out1[i][1] != out2[i][1] {
			t.Fatalf("row %d: reuse %v != materialize %v", i, out1[i], out2[i])
		}
	}
	if prod.opens != 1 {
		t.Fatalf("producer drained %d times, want 1", prod.opens)
	}

	// Re-opening either consumer rescans the spool without refilling.
	out3, err := Collect(reuse)
	if err != nil {
		t.Fatal(err)
	}
	if len(out3) != 3 || prod.opens != 1 {
		t.Fatalf("reopen: %d rows, %d producer opens", len(out3), prod.opens)
	}
}

func TestReuseBeforeMaterialize(t *testing.T) {
	st := NewSpoolStore()
	if _, _, err := NewReuse(st, 3); err == nil {
		t.Fatal("reuse of an unregistered spool built without error")
	}
}

func TestSpoolRegisterIdempotent(t *testing.T) {
	prod := &countingIter{sliceIter: sliceIter{rows: []Row{{1, 10}}}}
	st := NewSpoolStore()
	m1 := NewMaterialize(st, 1, prod, schema2())
	// A rebuild of the same plan re-registers the same spool; both
	// carriers must share one entry and one fill.
	m2 := NewMaterialize(st, 1, prod, schema2())
	o1, err := Collect(m1)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Collect(m2)
	if err != nil {
		t.Fatal(err)
	}
	if len(o1) != 1 || len(o2) != 1 || prod.opens != 1 {
		t.Fatalf("rows %d/%d, producer opens %d", len(o1), len(o2), prod.opens)
	}
}
