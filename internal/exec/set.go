package exec

import "fmt"

// MergeIntersect computes set intersection of two streams sorted
// identically on every column. Output rows are deduplicated, following
// set semantics.
type MergeIntersect struct {
	// Left and Right are the sorted input streams.
	Left, Right Iterator

	order []int // comparison positions, the shared sort order
	size  int

	lc, rc       cursor
	lrow, rrow   Row
	ldone, rdone bool
	last         Row
	out          Batch
	ra           rowAdapter
}

// NewMergeIntersect takes the shared sort order as row positions.
func NewMergeIntersect(left, right Iterator, order []int) *MergeIntersect {
	return &MergeIntersect{Left: left, Right: right, order: order, size: DefaultBatchSize}
}

// SetBatchSize sets the rows per batch.
func (m *MergeIntersect) SetBatchSize(n int) { m.size = sizeOrDefault(n) }

// Open opens and primes both inputs.
func (m *MergeIntersect) Open() error {
	if err := m.Left.Open(); err != nil {
		return err
	}
	if err := m.Right.Open(); err != nil {
		return err
	}
	m.lc.reset(asBatch(m.Left))
	m.rc.reset(asBatch(m.Right))
	m.lrow, m.rrow, m.last = nil, nil, nil
	m.ldone, m.rdone = false, false
	m.ra.reset()
	var err error
	if m.lrow, err = advance(&m.lc, &m.ldone); err != nil {
		return err
	}
	m.rrow, err = advance(&m.rc, &m.rdone)
	return err
}

// advance pulls the next row from a cursor, flagging end of stream.
func advance(c *cursor, done *bool) (Row, error) {
	row, ok, err := c.next()
	if err != nil {
		return nil, err
	}
	if !ok {
		*done = true
		return nil, nil
	}
	return row, nil
}

// cmpRows compares two rows on the given positions.
func cmpRows(a, b Row, order []int) int {
	for _, p := range order {
		switch {
		case a[p] < b[p]:
			return -1
		case a[p] > b[p]:
			return 1
		}
	}
	return 0
}

// NextBatch returns the next batch of rows present in both inputs.
func (m *MergeIntersect) NextBatch() (*Batch, bool, error) {
	m.out.reset()
	for !m.ldone && !m.rdone && len(m.out.Rows) < m.size {
		switch cmpRows(m.lrow, m.rrow, m.order) {
		case -1:
			var err error
			if m.lrow, err = advance(&m.lc, &m.ldone); err != nil {
				return nil, false, err
			}
		case 1:
			var err error
			if m.rrow, err = advance(&m.rc, &m.rdone); err != nil {
				return nil, false, err
			}
		default:
			out := m.lrow
			var err error
			if m.lrow, err = advance(&m.lc, &m.ldone); err != nil {
				return nil, false, err
			}
			if m.rrow, err = advance(&m.rc, &m.rdone); err != nil {
				return nil, false, err
			}
			if m.last != nil && cmpRows(out, m.last, m.order) == 0 {
				continue // set semantics: suppress duplicates
			}
			m.last = out
			m.out.add(out)
		}
	}
	if len(m.out.Rows) == 0 {
		return nil, false, nil
	}
	return &m.out, true, nil
}

// Next returns the next row present in both inputs.
func (m *MergeIntersect) Next() (Row, bool, error) { return m.ra.next(m) }

// Close closes both inputs.
func (m *MergeIntersect) Close() error {
	err := m.Left.Close()
	if err2 := m.Right.Close(); err == nil {
		err = err2
	}
	return err
}

// HashIntersect computes set intersection by building a hash set over
// the left input and probing with the right.
type HashIntersect struct {
	// Left and Right are the input streams.
	Left, Right Iterator
	// SizeHint pre-sizes the membership set; the plan builder sets it
	// from the optimizer's cardinality estimate.
	SizeHint int

	size int

	set map[string]Row
	rc  cursor
	out Batch
	ra  rowAdapter
}

// NewHashIntersect creates the operator.
func NewHashIntersect(left, right Iterator) *HashIntersect {
	return &HashIntersect{Left: left, Right: right, size: DefaultBatchSize}
}

// SetBatchSize sets the rows per batch.
func (h *HashIntersect) SetBatchSize(n int) { h.size = sizeOrDefault(n) }

// Open builds the set from the left input.
func (h *HashIntersect) Open() error {
	if err := h.Left.Open(); err != nil {
		return err
	}
	if err := h.Right.Open(); err != nil {
		return err
	}
	h.rc.reset(asBatch(h.Right))
	h.ra.reset()
	h.set = make(map[string]Row, h.SizeHint)
	build := newCursor(asBatch(h.Left))
	for {
		row, ok, err := build.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		h.set[rowKey(row)] = row
	}
}

// rowKey serializes a whole row as a set-membership key.
func rowKey(r Row) string {
	b := make([]byte, 0, len(r)*9)
	for _, v := range r {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56), ';')
	}
	return string(b)
}

// NextBatch returns the next batch of distinct rows found in both inputs.
func (h *HashIntersect) NextBatch() (*Batch, bool, error) {
	h.out.reset()
	for len(h.out.Rows) < h.size {
		row, ok, err := h.rc.next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		k := rowKey(row)
		if _, hit := h.set[k]; hit {
			delete(h.set, k) // emit each set element once
			h.out.add(row)
		}
	}
	if len(h.out.Rows) == 0 {
		return nil, false, nil
	}
	return &h.out, true, nil
}

// Next returns the next distinct row found in both inputs.
func (h *HashIntersect) Next() (Row, bool, error) { return h.ra.next(h) }

// Close releases the set and closes both inputs.
func (h *HashIntersect) Close() error {
	h.set = nil
	err := h.Left.Close()
	if err2 := h.Right.Close(); err == nil {
		err = err2
	}
	return err
}

// MergeUnion computes set union of two streams sorted identically on
// every column, preserving the shared order and suppressing duplicates.
type MergeUnion struct {
	// Left and Right are the sorted input streams.
	Left, Right Iterator

	order []int
	size  int

	lc, rc       cursor
	lrow, rrow   Row
	ldone, rdone bool
	last         Row
	out          Batch
	ra           rowAdapter
}

// NewMergeUnion takes the shared sort order as row positions.
func NewMergeUnion(left, right Iterator, order []int) *MergeUnion {
	return &MergeUnion{Left: left, Right: right, order: order, size: DefaultBatchSize}
}

// SetBatchSize sets the rows per batch.
func (m *MergeUnion) SetBatchSize(n int) { m.size = sizeOrDefault(n) }

// Open opens and primes both inputs.
func (m *MergeUnion) Open() error {
	if err := m.Left.Open(); err != nil {
		return err
	}
	if err := m.Right.Open(); err != nil {
		return err
	}
	m.lc.reset(asBatch(m.Left))
	m.rc.reset(asBatch(m.Right))
	m.lrow, m.rrow, m.last = nil, nil, nil
	m.ldone, m.rdone = false, false
	m.ra.reset()
	var err error
	if m.lrow, err = advance(&m.lc, &m.ldone); err != nil {
		return err
	}
	m.rrow, err = advance(&m.rc, &m.rdone)
	return err
}

// NextBatch returns the next batch of distinct rows, in order.
func (m *MergeUnion) NextBatch() (*Batch, bool, error) {
	m.out.reset()
	for len(m.out.Rows) < m.size {
		var out Row
		switch {
		case m.ldone && m.rdone:
			if len(m.out.Rows) == 0 {
				return nil, false, nil
			}
			return &m.out, true, nil
		case m.rdone || (!m.ldone && cmpRows(m.lrow, m.rrow, m.order) <= 0):
			out = m.lrow
			var err error
			if m.lrow, err = advance(&m.lc, &m.ldone); err != nil {
				return nil, false, err
			}
		default:
			out = m.rrow
			var err error
			if m.rrow, err = advance(&m.rc, &m.rdone); err != nil {
				return nil, false, err
			}
		}
		if m.last != nil && cmpRows(out, m.last, m.order) == 0 {
			continue // set semantics: suppress duplicates
		}
		m.last = out
		m.out.add(out)
	}
	return &m.out, true, nil
}

// Next returns the next distinct row from either input, in order.
func (m *MergeUnion) Next() (Row, bool, error) { return m.ra.next(m) }

// Close closes both inputs.
func (m *MergeUnion) Close() error {
	err := m.Left.Close()
	if err2 := m.Right.Close(); err == nil {
		err = err2
	}
	return err
}

// HashUnion computes set union via a hash set over both inputs.
type HashUnion struct {
	// Left and Right are the input streams.
	Left, Right Iterator
	// SizeHint pre-sizes the membership set; the plan builder sets it
	// from the optimizer's output-cardinality estimate.
	SizeHint int

	size int

	seen    map[string]bool
	lc, rc  cursor
	onRight bool
	out     Batch
	ra      rowAdapter
}

// NewHashUnion creates the operator.
func NewHashUnion(left, right Iterator) *HashUnion {
	return &HashUnion{Left: left, Right: right, size: DefaultBatchSize}
}

// SetBatchSize sets the rows per batch.
func (h *HashUnion) SetBatchSize(n int) { h.size = sizeOrDefault(n) }

// Open opens both inputs.
func (h *HashUnion) Open() error {
	if err := h.Left.Open(); err != nil {
		return err
	}
	if err := h.Right.Open(); err != nil {
		return err
	}
	h.lc.reset(asBatch(h.Left))
	h.rc.reset(asBatch(h.Right))
	h.seen = make(map[string]bool, h.SizeHint)
	h.onRight = false
	h.ra.reset()
	return nil
}

// NextBatch returns the next batch of unseen rows, draining left then
// right.
func (h *HashUnion) NextBatch() (*Batch, bool, error) {
	h.out.reset()
	for len(h.out.Rows) < h.size {
		src := &h.lc
		if h.onRight {
			src = &h.rc
		}
		row, ok, err := src.next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if h.onRight {
				break
			}
			h.onRight = true
			continue
		}
		k := rowKey(row)
		if h.seen[k] {
			continue
		}
		h.seen[k] = true
		h.out.add(row)
	}
	if len(h.out.Rows) == 0 {
		return nil, false, nil
	}
	return &h.out, true, nil
}

// Next returns the next row not seen before, draining left then right.
func (h *HashUnion) Next() (Row, bool, error) { return h.ra.next(h) }

// Close releases the set and closes both inputs.
func (h *HashUnion) Close() error {
	h.seen = nil
	err := h.Left.Close()
	if err2 := h.Right.Close(); err == nil {
		err = err2
	}
	return err
}

// gatherBatchMsg carries one batch of row headers (or a producer error)
// from a partition goroutine to the merging consumer.
type gatherBatchMsg struct {
	rows []Row
	err  error
}

// gatherProduce drains one partition iterator batch by batch into a
// channel, copying only the row headers per send (the data behind them
// is stable; see the package lifetime contract). It returns when the
// partition ends, errors, or stop closes.
func gatherProduce(it Iterator, out chan<- gatherBatchMsg, stop <-chan struct{}) {
	if err := it.Open(); err != nil {
		select {
		case out <- gatherBatchMsg{err: err}:
		case <-stop:
		}
		return
	}
	defer it.Close()
	bi := asBatch(it)
	for {
		b, ok, err := bi.NextBatch()
		if err != nil {
			select {
			case out <- gatherBatchMsg{err: err}:
			case <-stop:
			}
			return
		}
		if !ok {
			return
		}
		rows := make([]Row, len(b.Rows))
		copy(rows, b.Rows)
		select {
		case out <- gatherBatchMsg{rows: rows}:
		case <-stop:
			return
		}
	}
}

// gatherQueueBatches bounds the per-gather channel depth in batches.
const gatherQueueBatches = 4

// Gather merges the partition streams of a parallel plan into one
// serial stream, draining each partition's iterator in its own
// goroutine — the "merge" role of Volcano's exchange operator. Rows
// move between goroutines a batch at a time.
type Gather struct {
	// Parts are the per-partition streams.
	Parts []Iterator

	batches chan gatherBatchMsg
	stop    chan struct{}
	open    bool
	view    Batch
	ra      rowAdapter
}

// NewGather creates the operator.
func NewGather(parts []Iterator) *Gather { return &Gather{Parts: parts} }

// Open starts one producer goroutine per partition.
func (g *Gather) Open() error {
	g.batches = make(chan gatherBatchMsg, gatherQueueBatches*len(g.Parts))
	g.stop = make(chan struct{})
	g.open = true
	g.ra.reset()
	done := make(chan struct{}, len(g.Parts))
	for _, p := range g.Parts {
		go func(it Iterator) {
			defer func() { done <- struct{}{} }()
			gatherProduce(it, g.batches, g.stop)
		}(p)
	}
	go func() {
		for range g.Parts {
			<-done
		}
		close(g.batches)
	}()
	return nil
}

// NextBatch returns the next batch from any partition.
func (g *Gather) NextBatch() (*Batch, bool, error) {
	msg, ok := <-g.batches
	if !ok {
		return nil, false, nil
	}
	if msg.err != nil {
		return nil, false, fmt.Errorf("exec: partition failed: %w", msg.err)
	}
	g.view.Rows = msg.rows
	return &g.view, true, nil
}

// Next returns the next row from any partition.
func (g *Gather) Next() (Row, bool, error) { return g.ra.next(g) }

// Close stops the producers.
func (g *Gather) Close() error {
	if g.open {
		close(g.stop)
		g.open = false
	}
	return nil
}

// GatherOrdered merges partition streams that are each sorted on the
// same keys into one stream preserving that order: partitions still
// produce in parallel, the consumer runs a k-way merge over their
// buffered heads (the sort-preserving variant of exchange-merge).
type GatherOrdered struct {
	// Parts are the per-partition streams, each sorted on the keys.
	Parts []Iterator

	keys []sortKey
	size int

	chans []chan gatherBatchMsg
	bufs  [][]Row
	idx   []int
	done  []bool
	stop  chan struct{}
	open  bool
	out   Batch
	ra    rowAdapter
}

// NewGatherOrdered takes the shared sort order as (position, desc)
// pairs resolved against the partition schema.
func NewGatherOrdered(parts []Iterator, keys []sortKey) *GatherOrdered {
	return &GatherOrdered{Parts: parts, keys: keys, size: DefaultBatchSize}
}

// SetBatchSize sets the rows per batch.
func (g *GatherOrdered) SetBatchSize(n int) { g.size = sizeOrDefault(n) }

// Open starts one producer goroutine per partition.
func (g *GatherOrdered) Open() error {
	g.stop = make(chan struct{})
	g.open = true
	g.chans = make([]chan gatherBatchMsg, len(g.Parts))
	g.bufs = make([][]Row, len(g.Parts))
	g.idx = make([]int, len(g.Parts))
	g.done = make([]bool, len(g.Parts))
	g.ra.reset()
	for i, p := range g.Parts {
		ch := make(chan gatherBatchMsg, gatherQueueBatches)
		g.chans[i] = ch
		go func(it Iterator, ch chan gatherBatchMsg) {
			defer close(ch)
			gatherProduce(it, ch, g.stop)
		}(p, ch)
	}
	return nil
}

// head ensures partition i has a buffered row available, pulling the
// next batch from its channel if needed; returns false once the
// partition is exhausted.
func (g *GatherOrdered) head(i int) (Row, bool, error) {
	for {
		if g.idx[i] < len(g.bufs[i]) {
			return g.bufs[i][g.idx[i]], true, nil
		}
		if g.done[i] {
			return nil, false, nil
		}
		msg, ok := <-g.chans[i]
		if !ok {
			g.done[i] = true
			return nil, false, nil
		}
		if msg.err != nil {
			return nil, false, fmt.Errorf("exec: partition failed: %w", msg.err)
		}
		g.bufs[i], g.idx[i] = msg.rows, 0
	}
}

func (g *GatherOrdered) less(a, b Row) bool {
	for _, k := range g.keys {
		av, bv := a[k.pos], b[k.pos]
		if av == bv {
			continue
		}
		if k.desc {
			return av > bv
		}
		return av < bv
	}
	return false
}

// NextBatch returns the next batch of the k-way merge.
func (g *GatherOrdered) NextBatch() (*Batch, bool, error) {
	g.out.reset()
	for len(g.out.Rows) < g.size {
		best := -1
		var bestRow Row
		for i := range g.Parts {
			row, ok, err := g.head(i)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue
			}
			if best < 0 || g.less(row, bestRow) {
				best, bestRow = i, row
			}
		}
		if best < 0 {
			break
		}
		g.idx[best]++
		g.out.add(bestRow)
	}
	if len(g.out.Rows) == 0 {
		return nil, false, nil
	}
	return &g.out, true, nil
}

// Next returns the next row of the k-way merge.
func (g *GatherOrdered) Next() (Row, bool, error) { return g.ra.next(g) }

// Close stops the producers.
func (g *GatherOrdered) Close() error {
	if g.open {
		close(g.stop)
		g.open = false
	}
	return nil
}
