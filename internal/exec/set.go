package exec

import "fmt"

// MergeIntersect computes set intersection of two streams sorted
// identically on every column. Output rows are deduplicated, following
// set semantics.
type MergeIntersect struct {
	// Left and Right are the sorted input streams.
	Left, Right Iterator

	order []int // comparison positions, the shared sort order

	lrow, rrow   Row
	ldone, rdone bool
	last         Row
}

// NewMergeIntersect takes the shared sort order as row positions.
func NewMergeIntersect(left, right Iterator, order []int) *MergeIntersect {
	return &MergeIntersect{Left: left, Right: right, order: order}
}

// Open opens and primes both inputs.
func (m *MergeIntersect) Open() error {
	if err := m.Left.Open(); err != nil {
		return err
	}
	if err := m.Right.Open(); err != nil {
		return err
	}
	m.lrow, m.rrow, m.last = nil, nil, nil
	m.ldone, m.rdone = false, false
	var err error
	if m.lrow, err = next(m.Left, &m.ldone); err != nil {
		return err
	}
	m.rrow, err = next(m.Right, &m.rdone)
	return err
}

func next(it Iterator, done *bool) (Row, error) {
	row, ok, err := it.Next()
	if err != nil {
		return nil, err
	}
	if !ok {
		*done = true
		return nil, nil
	}
	return row, nil
}

// cmpRows compares two rows on the given positions.
func cmpRows(a, b Row, order []int) int {
	for _, p := range order {
		switch {
		case a[p] < b[p]:
			return -1
		case a[p] > b[p]:
			return 1
		}
	}
	return 0
}

// Next returns the next row present in both inputs.
func (m *MergeIntersect) Next() (Row, bool, error) {
	for !m.ldone && !m.rdone {
		switch cmpRows(m.lrow, m.rrow, m.order) {
		case -1:
			var err error
			if m.lrow, err = next(m.Left, &m.ldone); err != nil {
				return nil, false, err
			}
		case 1:
			var err error
			if m.rrow, err = next(m.Right, &m.rdone); err != nil {
				return nil, false, err
			}
		default:
			out := m.lrow
			var err error
			if m.lrow, err = next(m.Left, &m.ldone); err != nil {
				return nil, false, err
			}
			if m.rrow, err = next(m.Right, &m.rdone); err != nil {
				return nil, false, err
			}
			if m.last != nil && cmpRows(out, m.last, m.order) == 0 {
				continue // set semantics: suppress duplicates
			}
			m.last = out
			return out, true, nil
		}
	}
	return nil, false, nil
}

// Close closes both inputs.
func (m *MergeIntersect) Close() error {
	err := m.Left.Close()
	if err2 := m.Right.Close(); err == nil {
		err = err2
	}
	return err
}

// HashIntersect computes set intersection by building a hash set over
// the left input and probing with the right.
type HashIntersect struct {
	// Left and Right are the input streams.
	Left, Right Iterator

	set map[string]Row
}

// NewHashIntersect creates the operator.
func NewHashIntersect(left, right Iterator) *HashIntersect {
	return &HashIntersect{Left: left, Right: right}
}

// Open builds the set from the left input.
func (h *HashIntersect) Open() error {
	if err := h.Left.Open(); err != nil {
		return err
	}
	if err := h.Right.Open(); err != nil {
		return err
	}
	h.set = make(map[string]Row)
	for {
		row, ok, err := h.Left.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		h.set[rowKey(row)] = row
	}
}

// rowKey serializes a whole row as a set-membership key.
func rowKey(r Row) string {
	b := make([]byte, 0, len(r)*9)
	for _, v := range r {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56), ';')
	}
	return string(b)
}

// Next returns the next distinct row found in both inputs.
func (h *HashIntersect) Next() (Row, bool, error) {
	for {
		row, ok, err := h.Right.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := rowKey(row)
		if _, hit := h.set[k]; hit {
			delete(h.set, k) // emit each set element once
			return row, true, nil
		}
	}
}

// Close releases the set and closes both inputs.
func (h *HashIntersect) Close() error {
	h.set = nil
	err := h.Left.Close()
	if err2 := h.Right.Close(); err == nil {
		err = err2
	}
	return err
}

// Gather merges the partition streams of a parallel plan into one
// serial stream, draining each partition's iterator in its own
// goroutine — the "merge" role of Volcano's exchange operator.
type Gather struct {
	// Parts are the per-partition streams.
	Parts []Iterator

	rows chan gatherMsg
	stop chan struct{}
	open bool
}

type gatherMsg struct {
	row Row
	err error
}

// NewGather creates the operator.
func NewGather(parts []Iterator) *Gather { return &Gather{Parts: parts} }

// Open starts one producer goroutine per partition.
func (g *Gather) Open() error {
	g.rows = make(chan gatherMsg, 64)
	g.stop = make(chan struct{})
	g.open = true
	done := make(chan struct{}, len(g.Parts))
	for _, p := range g.Parts {
		go func(it Iterator) {
			defer func() { done <- struct{}{} }()
			if err := it.Open(); err != nil {
				select {
				case g.rows <- gatherMsg{err: err}:
				case <-g.stop:
				}
				return
			}
			defer it.Close()
			for {
				row, ok, err := it.Next()
				if err != nil {
					select {
					case g.rows <- gatherMsg{err: err}:
					case <-g.stop:
					}
					return
				}
				if !ok {
					return
				}
				select {
				case g.rows <- gatherMsg{row: row}:
				case <-g.stop:
					return
				}
			}
		}(p)
	}
	go func() {
		for range g.Parts {
			<-done
		}
		close(g.rows)
	}()
	return nil
}

// Next returns the next row from any partition.
func (g *Gather) Next() (Row, bool, error) {
	msg, ok := <-g.rows
	if !ok {
		return nil, false, nil
	}
	if msg.err != nil {
		return nil, false, fmt.Errorf("exec: partition failed: %w", msg.err)
	}
	return msg.row, true, nil
}

// Close stops the producers.
func (g *Gather) Close() error {
	if g.open {
		close(g.stop)
		g.open = false
	}
	return nil
}

// MergeUnion computes set union of two streams sorted identically on
// every column, preserving the shared order and suppressing duplicates.
type MergeUnion struct {
	// Left and Right are the sorted input streams.
	Left, Right Iterator

	order []int

	lrow, rrow   Row
	ldone, rdone bool
	last         Row
}

// NewMergeUnion takes the shared sort order as row positions.
func NewMergeUnion(left, right Iterator, order []int) *MergeUnion {
	return &MergeUnion{Left: left, Right: right, order: order}
}

// Open opens and primes both inputs.
func (m *MergeUnion) Open() error {
	if err := m.Left.Open(); err != nil {
		return err
	}
	if err := m.Right.Open(); err != nil {
		return err
	}
	m.lrow, m.rrow, m.last = nil, nil, nil
	m.ldone, m.rdone = false, false
	var err error
	if m.lrow, err = next(m.Left, &m.ldone); err != nil {
		return err
	}
	m.rrow, err = next(m.Right, &m.rdone)
	return err
}

// Next returns the next distinct row from either input, in order.
func (m *MergeUnion) Next() (Row, bool, error) {
	for {
		var out Row
		switch {
		case m.ldone && m.rdone:
			return nil, false, nil
		case m.rdone || (!m.ldone && cmpRows(m.lrow, m.rrow, m.order) <= 0):
			out = m.lrow
			var err error
			if m.lrow, err = next(m.Left, &m.ldone); err != nil {
				return nil, false, err
			}
		default:
			out = m.rrow
			var err error
			if m.rrow, err = next(m.Right, &m.rdone); err != nil {
				return nil, false, err
			}
		}
		if m.last != nil && cmpRows(out, m.last, m.order) == 0 {
			continue // set semantics: suppress duplicates
		}
		m.last = out
		return out, true, nil
	}
}

// Close closes both inputs.
func (m *MergeUnion) Close() error {
	err := m.Left.Close()
	if err2 := m.Right.Close(); err == nil {
		err = err2
	}
	return err
}

// HashUnion computes set union via a hash set over both inputs.
type HashUnion struct {
	// Left and Right are the input streams.
	Left, Right Iterator

	seen    map[string]bool
	onRight bool
}

// NewHashUnion creates the operator.
func NewHashUnion(left, right Iterator) *HashUnion {
	return &HashUnion{Left: left, Right: right}
}

// Open opens both inputs.
func (h *HashUnion) Open() error {
	if err := h.Left.Open(); err != nil {
		return err
	}
	if err := h.Right.Open(); err != nil {
		return err
	}
	h.seen = make(map[string]bool)
	h.onRight = false
	return nil
}

// Next returns the next row not seen before, draining left then right.
func (h *HashUnion) Next() (Row, bool, error) {
	for {
		src := h.Left
		if h.onRight {
			src = h.Right
		}
		row, ok, err := src.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if h.onRight {
				return nil, false, nil
			}
			h.onRight = true
			continue
		}
		k := rowKey(row)
		if h.seen[k] {
			continue
		}
		h.seen[k] = true
		return row, true, nil
	}
}

// Close releases the set and closes both inputs.
func (h *HashUnion) Close() error {
	h.seen = nil
	err := h.Left.Close()
	if err2 := h.Right.Close(); err == nil {
		err = err2
	}
	return err
}
