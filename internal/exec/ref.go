package exec

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/rel"
)

// Reference evaluates a logical expression tree directly, by definition
// (nested loops, no optimization). It is the oracle the test suite
// compares optimized plan executions against.
func Reference(db *DB, t *core.ExprTree) ([]Row, *Schema, error) {
	switch op := t.Op.(type) {
	case *rel.Get:
		tab := db.Table(op.Tab.Name)
		if tab == nil {
			return nil, nil, fmt.Errorf("exec: table %q not loaded", op.Tab.Name)
		}
		return tab.Rows, tab.Schema, nil

	case *rel.Select:
		rows, schema, err := Reference(db, t.Children[0])
		if err != nil {
			return nil, nil, err
		}
		p := compilePred(op.Pred, schema)
		var out []Row
		for _, r := range rows {
			if p.eval(r) {
				out = append(out, r)
			}
		}
		return out, schema, nil

	case *rel.Join:
		l, ls, err := Reference(db, t.Children[0])
		if err != nil {
			return nil, nil, err
		}
		r, rs, err := Reference(db, t.Children[1])
		if err != nil {
			return nil, nil, err
		}
		var lp, rp int
		switch {
		case ls.Has(op.A) && rs.Has(op.B):
			lp, rp = ls.Pos(op.A), rs.Pos(op.B)
		case ls.Has(op.B) && rs.Has(op.A):
			lp, rp = ls.Pos(op.B), rs.Pos(op.A)
		default:
			return nil, nil, fmt.Errorf("exec: join c%d=c%d does not span inputs", op.A, op.B)
		}
		var out []Row
		for _, lr := range l {
			for _, rr := range r {
				if lr[lp] == rr[rp] {
					row := make(Row, 0, len(lr)+len(rr))
					row = append(row, lr...)
					row = append(row, rr...)
					out = append(out, row)
				}
			}
		}
		return out, joined(ls, rs), nil

	case *rel.Project:
		rows, schema, err := Reference(db, t.Children[0])
		if err != nil {
			return nil, nil, err
		}
		idx := make([]int, len(op.Cols))
		for i, c := range op.Cols {
			idx[i] = schema.Pos(c)
		}
		out := make([]Row, len(rows))
		for i, r := range rows {
			pr := make(Row, len(idx))
			for j, p := range idx {
				pr[j] = r[p]
			}
			out[i] = pr
		}
		return out, NewSchema(op.Cols), nil

	case *rel.Intersect:
		l, ls, err := Reference(db, t.Children[0])
		if err != nil {
			return nil, nil, err
		}
		r, _, err := Reference(db, t.Children[1])
		if err != nil {
			return nil, nil, err
		}
		set := make(map[string]bool, len(l))
		for _, row := range l {
			set[rowKey(row)] = true
		}
		var out []Row
		for _, row := range r {
			k := rowKey(row)
			if set[k] {
				delete(set, k)
				out = append(out, row)
			}
		}
		return out, ls, nil

	case *rel.Union:
		l, ls, err := Reference(db, t.Children[0])
		if err != nil {
			return nil, nil, err
		}
		r, _, err := Reference(db, t.Children[1])
		if err != nil {
			return nil, nil, err
		}
		seen := make(map[string]bool, len(l)+len(r))
		var out []Row
		for _, rows := range [][]Row{l, r} {
			for _, row := range rows {
				k := rowKey(row)
				if seen[k] {
					continue
				}
				seen[k] = true
				out = append(out, row)
			}
		}
		return out, ls, nil

	case *rel.GroupBy:
		rows, schema, err := Reference(db, t.Children[0])
		if err != nil {
			return nil, nil, err
		}
		groupPos := make([]int, len(op.GroupCols))
		for i, c := range op.GroupCols {
			groupPos[i] = schema.Pos(c)
		}
		type entry struct {
			key    Row
			states []aggState
		}
		table := make(map[string]*entry)
		aggPos := aggPositions(op.Aggs, schema)
		for _, r := range rows {
			key := make(Row, len(groupPos))
			for i, p := range groupPos {
				key[i] = r[p]
			}
			ks := rowKey(key)
			e := table[ks]
			if e == nil {
				e = &entry{key: key, states: newAggStates(op.Aggs, aggPos)}
				table[ks] = e
			}
			for i := range e.states {
				e.states[i].add(r)
			}
		}
		var out []Row
		for _, e := range table {
			row := append(Row(nil), e.key...)
			for i := range e.states {
				row = append(row, e.states[i].value())
			}
			out = append(out, row)
		}
		order := make([]int, len(groupPos))
		for i := range order {
			order[i] = i
		}
		sort.Slice(out, func(i, j int) bool { return cmpRows(out[i], out[j], order) < 0 })
		return out, groupSchema(op.GroupCols, len(op.Aggs)), nil
	}
	return nil, nil, fmt.Errorf("exec: no reference evaluation for %T", t.Op)
}

// Canonical projects rows to ascending-ColID column order, so results
// from plans with different join orders (and hence different column
// layouts) become comparable. Aggregate columns (ID 0) keep their
// relative order at the end.
func Canonical(rows []Row, schema *Schema) []Row {
	type colPos struct {
		col rel.ColID
		pos int
	}
	order := make([]colPos, 0, len(schema.Cols))
	var aggs []int
	for i, c := range schema.Cols {
		if c == rel.InvalidCol {
			aggs = append(aggs, i)
			continue
		}
		order = append(order, colPos{c, i})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].col < order[j].col })
	out := make([]Row, len(rows))
	for i, r := range rows {
		cr := make(Row, 0, len(order)+len(aggs))
		for _, cp := range order {
			cr = append(cr, r[cp.pos])
		}
		for _, p := range aggs {
			cr = append(cr, r[p])
		}
		out[i] = cr
	}
	return out
}

// Fingerprint reduces a result to an order-insensitive multiset key for
// comparisons between plan executions and the reference evaluator.
func Fingerprint(rows []Row) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = rowKey(r)
	}
	sort.Strings(keys)
	n := 0
	for _, k := range keys {
		n += len(k)
	}
	b := make([]byte, 0, n)
	for _, k := range keys {
		b = append(b, k...)
	}
	return string(b)
}

// SortedBy reports whether rows are ordered on the given positions
// ascending (used to verify delivered sort properties at runtime).
func SortedBy(rows []Row, positions []int) bool {
	for i := 1; i < len(rows); i++ {
		if cmpRows(rows[i-1], rows[i], positions) > 0 {
			return false
		}
	}
	return true
}
