package exec_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// TestPropertyDirectedPlansRunFaster closes the loop between the cost
// model and reality: for a fan-out join whose output must be ordered,
// the property-directed plan (merge-join riding sorted small inputs)
// must actually execute faster than the glue-mode plan (hash join, then
// sorting the huge result) — not merely be estimated cheaper.
func TestPropertyDirectedPlansRunFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison skipped in -short mode")
	}
	cat := rel.NewCatalog()
	r1 := cat.AddTable("r1", 4000, 64)
	r1id := cat.AddColumn(r1, "id", 4000, 1, 4000)
	r1k := cat.AddColumn(r1, "k", 40, 1, 40)
	r2 := cat.AddTable("r2", 4000, 64)
	r2k := cat.AddColumn(r2, "k", 40, 1, 40)
	r2v := cat.AddColumn(r2, "v", 1000, 0, 999)

	data := map[string][][]int64{}
	for name, cols := range map[string][]rel.ColID{"r1": {r1id, r1k}, "r2": {r2k, r2v}} {
		rows := make([][]int64, 4000)
		for i := range rows {
			row := make([]int64, len(cols))
			for j := range cols {
				switch {
				case name == "r1" && j == 0:
					row[j] = int64(i + 1)
				case j == len(cols)-1 && name == "r2":
					row[j] = int64((i * 37) % 1000)
				default:
					row[j] = int64(i%40) + 1
				}
			}
			rows[i] = row
		}
		data[name] = rows
	}
	db := exec.FromData(cat, data)

	tree := core.Node(&rel.Project{Cols: []rel.ColID{r1id, r1k, r2v}},
		core.Node(rel.NewJoin(r1k, r2k),
			core.Node(&rel.Get{Tab: r1}),
			core.Node(&rel.Get{Tab: r2})))
	required := relopt.SortedOn(r1k)

	optimize := func(opts *core.Options) *core.Plan {
		opt := core.NewOptimizer(relopt.New(cat, relopt.DefaultConfig()), opts)
		root := opt.InsertQuery(tree)
		plan, err := opt.Optimize(root, required)
		if err != nil || plan == nil {
			t.Fatalf("optimize: %v", err)
		}
		return plan
	}
	directed := optimize(nil)
	glued := optimize(&core.Options{Search: core.SearchOptions{GlueMode: true}})
	if !directed.Cost.Less(glued.Cost) {
		t.Skip("plans coincide under this cost model; nothing to compare")
	}

	run := func(plan *core.Plan) (time.Duration, int) {
		best := time.Hour
		rows := 0
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			out, schema, err := exec.Run(db, plan)
			elapsed := time.Since(start)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !exec.SortedBy(out, []int{schema.Pos(r1k)}) {
				t.Fatal("output not ordered")
			}
			if elapsed < best {
				best = elapsed
			}
			rows = len(out)
		}
		return best, rows
	}
	dTime, dRows := run(directed)
	gTime, gRows := run(glued)
	if dRows != gRows {
		t.Fatalf("plans disagree on the result: %d vs %d rows", dRows, gRows)
	}
	t.Logf("directed %v vs glued %v over %d rows", dTime, gTime, dRows)
	if dTime >= gTime {
		t.Errorf("property-directed plan (%v) not faster in reality than glue plan (%v)", dTime, gTime)
	}
}
