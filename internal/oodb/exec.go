package oodb

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Object is one stored object: scalar attribute values plus references
// to other objects by target OID.
type Object struct {
	// OID is the object identifier, unique within its class extent.
	OID int64
	// Scalars holds scalar attribute values.
	Scalars map[string]int64
	// Refs holds reference attribute values (target OIDs).
	Refs map[string]int64
}

// Store is an object database instance: one extent per class.
type Store struct {
	extents map[string]map[int64]*Object // class → OID → object
	order   map[string][]int64           // scan order per extent

	// Fetches counts object dereferences that missed the assembled
	// working set — the runtime analogue of the cost model's random
	// I/Os, used by tests to validate the optimizer's choices.
	Fetches int
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		extents: make(map[string]map[int64]*Object),
		order:   make(map[string][]int64),
	}
}

// Put stores an object in a class extent.
func (s *Store) Put(cls *Class, obj *Object) {
	ext := s.extents[cls.Name]
	if ext == nil {
		ext = make(map[int64]*Object)
		s.extents[cls.Name] = ext
	}
	if _, dup := ext[obj.OID]; !dup {
		s.order[cls.Name] = append(s.order[cls.Name], obj.OID)
	}
	ext[obj.OID] = obj
}

// Get fetches an object, counting the dereference unless the caller
// passes an assembled working set containing it.
func (s *Store) Get(cls *Class, oid int64, assembled map[int64]bool) *Object {
	if assembled == nil || !assembled[oid] {
		s.Fetches++
	}
	return s.extents[cls.Name][oid]
}

// scope is one row of object execution: the chain of objects brought
// into scope by materialize steps; the last element is the head.
type scope struct {
	objs []*Object
	// assembled, when non-nil, is the set of OIDs resident from an
	// assembly pass (keyed per class name + oid).
	assembled map[string]map[int64]bool
}

func (sc scope) head() *Object { return sc.objs[len(sc.objs)-1] }

// Execute runs an optimized object plan against the store, returning
// the final scopes (one per surviving root object path). It interprets
// the object physical algebra: extent-scan, filter, pointer-chase,
// assembly, assembled-traverse.
func Execute(st *Store, cat *Catalog, plan *core.Plan) ([][]int64, error) {
	scopes, _, err := execNode(st, cat, plan)
	if err != nil {
		return nil, err
	}
	out := make([][]int64, len(scopes))
	for i, sc := range scopes {
		row := make([]int64, len(sc.objs))
		for j, o := range sc.objs {
			row[j] = o.OID
		}
		out[i] = row
	}
	return out, nil
}

// execNode evaluates one plan node, returning the scopes and the head
// class.
func execNode(st *Store, cat *Catalog, plan *core.Plan) ([]scope, *Class, error) {
	switch op := plan.Op.(type) {
	case *ExtentScan:
		oids := st.order[op.Cls.Name]
		scopes := make([]scope, 0, len(oids))
		for _, oid := range oids {
			obj := st.extents[op.Cls.Name][oid] // sequential scan: no fetch counted
			scopes = append(scopes, scope{objs: []*Object{obj}})
		}
		return scopes, op.Cls, nil

	case *FilterObjects:
		in, head, err := execNode(st, cat, plan.Inputs[0])
		if err != nil {
			return nil, nil, err
		}
		sel := findSelect(plan)
		if sel == nil {
			return nil, nil, fmt.Errorf("oodb: filter without selection metadata")
		}
		var out []scope
		for _, sc := range in {
			v, ok := sc.head().Scalars[sel.Attr]
			if !ok {
				return nil, nil, fmt.Errorf("oodb: object %d lacks scalar %q", sc.head().OID, sel.Attr)
			}
			keep := false
			switch sel.Op {
			case CmpEQ:
				keep = v == sel.Val
			case CmpLT:
				keep = v < sel.Val
			case CmpGT:
				keep = v > sel.Val
			}
			if keep {
				out = append(out, sc)
			}
		}
		return out, head, nil

	case *PointerChase:
		in, head, err := execNode(st, cat, plan.Inputs[0])
		if err != nil {
			return nil, nil, err
		}
		target := head.Refs[op.Attr]
		if target == nil {
			return nil, nil, fmt.Errorf("oodb: class %s lacks reference %q", head.Name, op.Attr)
		}
		var out []scope
		for _, sc := range in {
			oid, ok := sc.head().Refs[op.Attr]
			if !ok {
				continue
			}
			var resident map[int64]bool
			if sc.assembled != nil {
				resident = sc.assembled[target.Name]
			}
			obj := st.Get(target, oid, resident)
			if obj == nil {
				continue
			}
			out = append(out, scope{objs: append(append([]*Object(nil), sc.objs...), obj), assembled: sc.assembled})
		}
		return out, target, nil

	case *AssembledTraverse:
		// Same navigation, but over an assembled working set: the
		// dereference must hit residency.
		in, head, err := execNode(st, cat, plan.Inputs[0])
		if err != nil {
			return nil, nil, err
		}
		target := head.Refs[op.Attr]
		if target == nil {
			return nil, nil, fmt.Errorf("oodb: class %s lacks reference %q", head.Name, op.Attr)
		}
		var out []scope
		for _, sc := range in {
			if sc.assembled == nil {
				return nil, nil, fmt.Errorf("oodb: assembled-traverse over unassembled input")
			}
			oid, ok := sc.head().Refs[op.Attr]
			if !ok {
				continue
			}
			obj := st.Get(target, oid, sc.assembled[target.Name])
			if obj == nil {
				continue
			}
			out = append(out, scope{objs: append(append([]*Object(nil), sc.objs...), obj), assembled: sc.assembled})
		}
		return out, target, nil

	case *Assembly:
		in, head, err := execNode(st, cat, plan.Inputs[0])
		if err != nil {
			return nil, nil, err
		}
		// Assemble the component closure of every head object with
		// batched window reads: sort the outstanding references per
		// class (elevator order) and fetch each object once.
		assembled := make(map[string]map[int64]bool)
		frontier := make(map[string]map[int64]bool)
		add := func(cls string, oid int64) {
			if assembled[cls] == nil {
				assembled[cls] = make(map[int64]bool)
			}
			if assembled[cls][oid] {
				return
			}
			if frontier[cls] == nil {
				frontier[cls] = make(map[int64]bool)
			}
			frontier[cls][oid] = true
		}
		for _, sc := range in {
			add(head.Name, sc.head().OID)
		}
		classOf := map[string]*Class{}
		for _, name := range cat.Classes() {
			classOf[name] = cat.Class(name)
		}
		for len(frontier) > 0 {
			next := make(map[string]map[int64]bool)
			for clsName, oids := range frontier {
				cls := classOf[clsName]
				sorted := make([]int64, 0, len(oids))
				for oid := range oids {
					sorted = append(sorted, oid)
				}
				sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
				for _, oid := range sorted {
					obj := st.Get(cls, oid, nil) // window read
					assembled[clsName][oid] = true
					if obj == nil {
						continue
					}
					for attr, target := range cls.Refs {
						ref, ok := obj.Refs[attr]
						if !ok {
							continue
						}
						if assembled[target.Name][ref] {
							continue
						}
						if next[target.Name] == nil {
							next[target.Name] = make(map[int64]bool)
						}
						if assembled[target.Name] == nil {
							assembled[target.Name] = make(map[int64]bool)
						}
						next[target.Name][ref] = true
					}
				}
			}
			frontier = next
		}
		out := make([]scope, len(in))
		for i, sc := range in {
			out[i] = scope{objs: sc.objs, assembled: assembled}
		}
		return out, head, nil
	}
	return nil, nil, fmt.Errorf("oodb: no runtime for physical operator %T", plan.Op)
}

// findSelect recovers the logical selection matched by a filter node
// from the plan's expression metadata. The filter's display predicate is
// parsed back; to avoid string round-trips the optimizer stores the
// predicate in the operator, so this simply re-reads it.
func findSelect(plan *core.Plan) *Select {
	f, ok := plan.Op.(*FilterObjects)
	if !ok {
		return nil
	}
	return f.Sel
}
