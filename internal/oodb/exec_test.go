package oodb_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/oodb"
)

// populate builds a store consistent with the test schema: every Emp
// references a Dept, every Dept a Division, every Division the Company.
func populate(cat *oodb.Catalog, seed int64) *oodb.Store {
	rng := rand.New(rand.NewSource(seed))
	st := oodb.NewStore()
	company := cat.Class("Company")
	division := cat.Class("Division")
	dept := cat.Class("Dept")
	emp := cat.Class("Emp")
	for i := int64(1); i <= company.Objects; i++ {
		st.Put(company, &oodb.Object{OID: i, Scalars: map[string]int64{"founded": i}})
	}
	for i := int64(1); i <= division.Objects; i++ {
		st.Put(division, &oodb.Object{
			OID:  i,
			Refs: map[string]int64{"company": 1 + rng.Int63n(company.Objects)},
		})
	}
	for i := int64(1); i <= dept.Objects; i++ {
		st.Put(dept, &oodb.Object{
			OID:     i,
			Scalars: map[string]int64{"budget": rng.Int63n(100)},
			Refs:    map[string]int64{"division": 1 + rng.Int63n(division.Objects)},
		})
	}
	for i := int64(1); i <= emp.Objects; i++ {
		st.Put(emp, &oodb.Object{
			OID:     i,
			Scalars: map[string]int64{"salary": rng.Int63n(1000), "age": 18 + rng.Int63n(50)},
			Refs:    map[string]int64{"dept": 1 + rng.Int63n(dept.Objects)},
		})
	}
	return st
}

// smallSchema is a reduced version of the test schema so the runtime
// checks stay fast.
func smallSchema() *oodb.Catalog {
	cat := oodb.NewCatalog()
	company := cat.AddClass("Company", 5, 400)
	division := cat.AddClass("Division", 20, 300)
	dept := cat.AddClass("Dept", 60, 200)
	emp := cat.AddClass("Emp", 400, 150)
	cat.AddScalar(emp, "salary", 1000)
	cat.AddScalar(emp, "age", 50)
	cat.AddScalar(dept, "budget", 100)
	cat.AddScalar(company, "founded", 5)
	cat.AddRef(emp, "dept", dept)
	cat.AddRef(dept, "division", division)
	cat.AddRef(division, "company", company)
	return cat
}

// refPath is the oracle: follow the path by definition.
func refPath(st *oodb.Store, cat *oodb.Catalog, withSelect bool, steps []string) [][]int64 {
	emp := cat.Class("Emp")
	var out [][]int64
	for oid := int64(1); oid <= emp.Objects; oid++ {
		obj := st.Get(emp, oid, map[int64]bool{oid: true})
		if withSelect && !(obj.Scalars["age"] > 40) {
			continue
		}
		row := []int64{oid}
		cur, cls := obj, emp
		ok := true
		for _, s := range steps {
			target := cls.Refs[s]
			next := st.Get(target, cur.Refs[s], map[int64]bool{cur.Refs[s]: true})
			if next == nil {
				ok = false
				break
			}
			row = append(row, next.OID)
			cur, cls = next, target
		}
		if ok {
			out = append(out, row)
		}
	}
	return out
}

func buildQuery(cat *oodb.Catalog, withSelect bool, steps []string) *core.ExprTree {
	tree := core.Node(&oodb.GetSet{Cls: cat.Class("Emp")})
	if withSelect {
		tree = core.Node(&oodb.Select{Attr: "age", Op: oodb.CmpGT, Val: 40}, tree)
	}
	for _, s := range steps {
		tree = core.Node(&oodb.Materialize{Attr: s}, tree)
	}
	return tree
}

func rowsEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(r []int64) string {
		out := make([]byte, 0, len(r)*8)
		for _, v := range r {
			out = append(out, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ';')
		}
		return string(out)
	}
	seen := map[string]int{}
	for _, r := range a {
		seen[key(r)]++
	}
	for _, r := range b {
		seen[key(r)]--
		if seen[key(r)] < 0 {
			return false
		}
	}
	return true
}

// TestExecuteMatchesReference: optimized object plans (chase or
// assembly) produce exactly the objects the path definition yields.
func TestExecuteMatchesReference(t *testing.T) {
	cat := smallSchema()
	st := populate(cat, 3)
	model := oodb.New(cat, oodb.DefaultParams())
	steps := []string{"dept", "division", "company"}
	for k := 1; k <= 3; k++ {
		for _, withSelect := range []bool{false, true} {
			tree := buildQuery(cat, withSelect, steps[:k])
			opt := core.NewOptimizer(model, nil)
			root := opt.InsertQuery(tree)
			plan, err := opt.Optimize(root, nil)
			if err != nil || plan == nil {
				t.Fatalf("k=%d optimize: %v", k, err)
			}
			got, err := oodb.Execute(st, cat, plan)
			if err != nil {
				t.Fatalf("k=%d execute: %v\n%s", k, err, plan.Format())
			}
			want := refPath(st, cat, withSelect, steps[:k])
			if !rowsEqual(got, want) {
				t.Fatalf("k=%d select=%v: %d rows != reference %d\n%s",
					k, withSelect, len(got), len(want), plan.Format())
			}
		}
	}
}

// TestAssemblyReducesFetches: for a long path, the assembled plan
// dereferences each object once (batched), while forcing pointer
// chasing (via a huge assembly cost) fetches per step. The runtime
// fetch counts must reflect the cost model's preference.
func TestAssemblyReducesFetches(t *testing.T) {
	cat := smallSchema()
	steps := []string{"dept", "division", "company"}

	run := func(params oodb.Params) int {
		st := populate(cat, 3)
		model := oodb.New(cat, params)
		opt := core.NewOptimizer(model, nil)
		root := opt.InsertQuery(buildQuery(cat, false, steps))
		plan, err := opt.Optimize(root, nil)
		if err != nil || plan == nil {
			t.Fatalf("optimize: %v", err)
		}
		st.Fetches = 0
		if _, err := oodb.Execute(st, cat, plan); err != nil {
			t.Fatalf("execute: %v\n%s", err, plan.Format())
		}
		return st.Fetches
	}

	assembled := run(oodb.DefaultParams())
	chasing := oodb.DefaultParams()
	chasing.AssemblyIO = 1e9 // price assembly out of every plan
	chased := run(chasing)
	if assembled >= chased {
		t.Fatalf("assembly fetched %d objects, chasing %d; assembly should dereference less",
			assembled, chased)
	}
}
