package oodb

import (
	"fmt"

	"repro/internal/core"
)

// Operator kinds of the object algebra. Kinds are per-model (each
// optimizer is generated for exactly one model), assigned in declaration
// order exactly as the optimizer generator assigns them for the
// equivalent specification in internal/gen/testdata/minipath.model.
const (
	// KindGetSet scans a class extent. Arity 0.
	KindGetSet core.OpKind = iota + 1
	// KindMaterialize is the scope operator of the Open OODB project:
	// it captures the semantics of a path expression step, bringing
	// the objects referenced by an attribute into scope. Arity 1.
	KindMaterialize
	// KindSelect filters objects by a scalar attribute of the scope's
	// head class. Arity 1.
	KindSelect
)

// GetSet scans a class extent.
type GetSet struct {
	// Cls is the class whose extent is scanned.
	Cls *Class
}

// Kind returns KindGetSet.
func (g *GetSet) Kind() core.OpKind { return KindGetSet }

// Arity returns 0.
func (g *GetSet) Arity() int { return 0 }

// ArgsEqual compares extents.
func (g *GetSet) ArgsEqual(o core.LogicalOp) bool { return g.Cls.Name == o.(*GetSet).Cls.Name }

// ArgsHash hashes the class name.
func (g *GetSet) ArgsHash() uint64 { return strHash(g.Cls.Name) }

// Name returns "GETSET".
func (g *GetSet) Name() string { return "GETSET" }

// String renders the operator.
func (g *GetSet) String() string { return "GETSET(" + g.Cls.Name + ")" }

// Materialize navigates a reference attribute of the scope's head
// class, making the referenced objects the new head.
type Materialize struct {
	// Attr is the reference attribute navigated.
	Attr string
}

// Kind returns KindMaterialize.
func (m *Materialize) Kind() core.OpKind { return KindMaterialize }

// Arity returns 1.
func (m *Materialize) Arity() int { return 1 }

// ArgsEqual compares attributes.
func (m *Materialize) ArgsEqual(o core.LogicalOp) bool { return m.Attr == o.(*Materialize).Attr }

// ArgsHash hashes the attribute.
func (m *Materialize) ArgsHash() uint64 { return strHash(m.Attr) }

// Name returns "MATERIALIZE".
func (m *Materialize) Name() string { return "MATERIALIZE" }

// String renders the operator.
func (m *Materialize) String() string { return "MATERIALIZE(" + m.Attr + ")" }

// CmpOp is a comparison in an object selection.
type CmpOp int8

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpLT
	CmpGT
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case CmpEQ:
		return "="
	case CmpLT:
		return "<"
	case CmpGT:
		return ">"
	}
	return "?"
}

// Select filters objects by a scalar attribute of the head class.
type Select struct {
	// Attr is the scalar attribute tested.
	Attr string
	// Op compares the attribute with Val.
	Op CmpOp
	// Val is the constant compared against.
	Val int64
}

// Kind returns KindSelect.
func (s *Select) Kind() core.OpKind { return KindSelect }

// Arity returns 1.
func (s *Select) Arity() int { return 1 }

// ArgsEqual compares predicates.
func (s *Select) ArgsEqual(o core.LogicalOp) bool { return *s == *o.(*Select) }

// ArgsHash hashes the predicate.
func (s *Select) ArgsHash() uint64 {
	h := strHash(s.Attr)
	h = h*1099511628211 ^ uint64(uint8(s.Op))
	h = h*1099511628211 ^ uint64(s.Val)
	return h
}

// Name returns "SELECT".
func (s *Select) Name() string { return "SELECT" }

// String renders the operator.
func (s *Select) String() string { return fmt.Sprintf("SELECT(%s %s %d)", s.Attr, s.Op, s.Val) }

func strHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// Props are the logical properties of an object-algebra intermediate
// result: the head class whose attributes are addressable — the "type"
// of the intermediate result in this many-sorted algebra, inspected by
// rule condition code — and the estimated object count.
type Props struct {
	// Head is the class whose attributes are currently addressable.
	Head *Class
	// Objects is the estimated cardinality.
	Objects float64
	// PathLen counts materialize steps applied so far.
	PathLen int
}

var _ core.LogicalProps = (*Props)(nil)

// String summarizes the properties.
func (p *Props) String() string {
	return fmt.Sprintf("head=%s objects=%.0f", p.Head.Name, p.Objects)
}
