// Package oodb is a second, object-oriented data model for the Volcano
// optimizer generator, demonstrating the extensibility the paper claims:
// a different logical algebra (class extents, the Open OODB MATERIALIZE
// scope operator for path expressions, selections over object
// attributes), a different physical algebra (extent scan, pointer chase,
// assembled traversal), and a different physical property —
// "assembledness" of complex objects in memory, enforced by the assembly
// operator of Keller, Graefe & Maier (SIGMOD 1991) — all running on the
// unchanged search engine in internal/core.
package oodb

import "fmt"

// Class describes one object class with a stored extent.
type Class struct {
	// Name is the class name.
	Name string
	// Objects is the extent cardinality.
	Objects int64
	// ObjBytes is the average object size.
	ObjBytes int
	// Refs maps reference attributes to their target classes
	// (single-valued references).
	Refs map[string]*Class
	// Scalars maps scalar attributes to their distinct-value counts.
	Scalars map[string]int64
}

// Depth returns the length of the longest reference chain below the
// class (0 for a class without references); the assembly operator's cost
// grows with it, since assembling a complex object fetches its whole
// closure.
func (c *Class) Depth() int {
	depth := 0
	for _, t := range c.Refs {
		if d := t.Depth() + 1; d > depth {
			depth = d
		}
	}
	return depth
}

// Catalog holds the class schema.
type Catalog struct {
	classes map[string]*Class
	names   []string
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog { return &Catalog{classes: make(map[string]*Class)} }

// AddClass registers a class.
func (c *Catalog) AddClass(name string, objects int64, objBytes int) *Class {
	if _, dup := c.classes[name]; dup {
		panic(fmt.Sprintf("oodb: duplicate class %q", name))
	}
	cls := &Class{
		Name: name, Objects: objects, ObjBytes: objBytes,
		Refs: make(map[string]*Class), Scalars: make(map[string]int64),
	}
	c.classes[name] = cls
	c.names = append(c.names, name)
	return cls
}

// AddRef declares a reference attribute.
func (c *Catalog) AddRef(cls *Class, attr string, target *Class) {
	cls.Refs[attr] = target
}

// AddScalar declares a scalar attribute with a distinct-value count.
func (c *Catalog) AddScalar(cls *Class, attr string, distinct int64) {
	cls.Scalars[attr] = distinct
}

// Class returns the named class, or nil.
func (c *Catalog) Class(name string) *Class { return c.classes[name] }

// Classes returns class names in registration order.
func (c *Catalog) Classes() []string { return c.names }
