package oodb_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/oodb"
)

// schema: Emp(10k) -salary-> ; Emp.dept -> Dept(1k); Dept.division ->
// Division(100); Division.company -> Company(10).
func schema(t *testing.T) *oodb.Catalog {
	t.Helper()
	cat := oodb.NewCatalog()
	company := cat.AddClass("Company", 10, 400)
	division := cat.AddClass("Division", 100, 300)
	dept := cat.AddClass("Dept", 1000, 200)
	emp := cat.AddClass("Emp", 10000, 150)
	cat.AddScalar(emp, "salary", 1000)
	cat.AddScalar(emp, "age", 50)
	cat.AddScalar(dept, "budget", 100)
	cat.AddScalar(company, "founded", 10)
	cat.AddRef(emp, "dept", dept)
	cat.AddRef(dept, "division", division)
	cat.AddRef(division, "company", company)
	return cat
}

// pathQuery builds GETSET(Emp) with optional selection, then a chain of
// materialize steps.
func pathQuery(cat *oodb.Catalog, withSelect bool, steps ...string) *core.ExprTree {
	tree := core.Node(&oodb.GetSet{Cls: cat.Class("Emp")})
	if withSelect {
		tree = core.Node(&oodb.Select{Attr: "age", Op: oodb.CmpGT, Val: 40}, tree)
	}
	for _, s := range steps {
		tree = core.Node(&oodb.Materialize{Attr: s}, tree)
	}
	return tree
}

func optimize(t *testing.T, cat *oodb.Catalog, q *core.ExprTree) (*core.Plan, *core.Optimizer) {
	t.Helper()
	opt := core.NewOptimizer(oodb.New(cat, oodb.DefaultParams()), nil)
	root := opt.InsertQuery(q)
	plan, err := opt.Optimize(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("no plan")
	}
	if opt.Stats().ConsistencyViolations != 0 {
		t.Fatal("consistency violations")
	}
	return plan, opt
}

// TestShortPathUsesPointerChase: one materialize step is cheaper by
// chasing than by assembling the whole closure.
func TestShortPathUsesPointerChase(t *testing.T) {
	cat := schema(t)
	plan, _ := optimize(t, cat, pathQuery(cat, false, "dept"))
	if !strings.Contains(plan.String(), "pointer-chase") {
		t.Fatalf("plan does not pointer-chase:\n%s", plan.Format())
	}
	if strings.Contains(plan.String(), "assembly") {
		t.Fatalf("plan assembles for a single step:\n%s", plan.Format())
	}
}

// TestLongPathUsesAssembly: three materialize steps amortize the
// assembly operator; the optimizer enforces assembledness once and
// traverses in memory.
func TestLongPathUsesAssembly(t *testing.T) {
	cat := schema(t)
	plan, _ := optimize(t, cat, pathQuery(cat, false, "dept", "division", "company"))
	s := plan.String()
	if !strings.Contains(s, "assembly") || !strings.Contains(s, "assembled-traverse") {
		t.Fatalf("plan does not use assembly:\n%s", plan.Format())
	}
}

// TestSelectionReducesAssemblyCost: with a selective filter before the
// path, the assembly runs on fewer objects and stays ahead of chasing.
func TestSelectionReducesAssemblyCost(t *testing.T) {
	cat := schema(t)
	withSel, _ := optimize(t, cat, pathQuery(cat, true, "dept", "division", "company"))
	without, _ := optimize(t, cat, pathQuery(cat, false, "dept", "division", "company"))
	if !withSel.Cost.Less(without.Cost) {
		t.Fatalf("selection did not reduce cost: %v vs %v", withSel.Cost, without.Cost)
	}
}

// TestAssemblyCrossover sweeps path length and checks the switch point:
// chase for short paths, assembly for long ones, with costs matching
// the model arithmetic.
func TestAssemblyCrossover(t *testing.T) {
	cat := schema(t)
	steps := []string{"dept", "division", "company"}
	var prev core.Cost
	for k := 1; k <= 3; k++ {
		plan, _ := optimize(t, cat, pathQuery(cat, false, steps[:k]...))
		usesAssembly := strings.Contains(plan.String(), "assembly")
		t.Logf("k=%d cost=%s assembly=%v", k, plan.Cost, usesAssembly)
		if k == 1 && usesAssembly {
			t.Error("k=1 should pointer-chase")
		}
		if k >= 2 && !usesAssembly {
			t.Errorf("k=%d should assemble", k)
		}
		if prev != nil && plan.Cost.Less(prev) {
			t.Errorf("cost decreased with longer path")
		}
		prev = plan.Cost
	}
}

// TestSelectCommute: stacked selections explore both orders; the plan
// remains valid and the class contains both expressions.
func TestSelectCommute(t *testing.T) {
	cat := schema(t)
	tree := core.Node(&oodb.Select{Attr: "age", Op: oodb.CmpGT, Val: 30},
		core.Node(&oodb.Select{Attr: "salary", Op: oodb.CmpEQ, Val: 50},
			core.Node(&oodb.GetSet{Cls: cat.Class("Emp")})))
	opt := core.NewOptimizer(oodb.New(cat, oodb.DefaultParams()), nil)
	root := opt.InsertQuery(tree)
	if err := opt.Explore(root); err != nil {
		t.Fatal(err)
	}
	if got := len(opt.Memo().Group(root).Exprs()); got != 2 {
		t.Fatalf("root exprs = %d, want 2 (both selection orders)", got)
	}
}

// TestInvalidSelectRejected: a selection on a non-scalar attribute never
// qualifies (condition code type check) and the query has no plan.
func TestInvalidSelectRejected(t *testing.T) {
	cat := schema(t)
	tree := core.Node(&oodb.Select{Attr: "dept", Op: oodb.CmpEQ, Val: 1},
		core.Node(&oodb.GetSet{Cls: cat.Class("Emp")}))
	opt := core.NewOptimizer(oodb.New(cat, oodb.DefaultParams()), nil)
	root := opt.InsertQuery(tree)
	plan, err := opt.Optimize(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		t.Fatalf("selection on a reference attribute produced a plan:\n%s", plan.Format())
	}
}

// TestAssembledRequirement: requiring assembled output forces the
// enforcer even on a bare extent scan.
func TestAssembledRequirement(t *testing.T) {
	cat := schema(t)
	opt := core.NewOptimizer(oodb.New(cat, oodb.DefaultParams()), nil)
	root := opt.InsertQuery(pathQuery(cat, false))
	plan, err := opt.Optimize(root, oodb.Assembled)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || plan.Op.Name() != "assembly" {
		t.Fatalf("plan = %v, want assembly at root", plan)
	}
	if !plan.Delivered.Covers(oodb.Assembled) {
		t.Fatal("assembled requirement not delivered")
	}
}
