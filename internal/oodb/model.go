package oodb

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// PhysProps is the object model's physical property vector: whether the
// objects in scope are assembled — memory-resident complex objects with
// their referenced components — which is exactly the "assembledness"
// property the paper proposes for object-oriented query optimization.
type PhysProps struct {
	// Assembled reports component residency.
	Assembled bool
}

var _ core.PhysProps = (*PhysProps)(nil)

// Any is the vacuous vector.
var Any = &PhysProps{}

// Assembled is the assembledness requirement.
var Assembled = &PhysProps{Assembled: true}

// Equal compares vectors.
func (p *PhysProps) Equal(o core.PhysProps) bool { return p.Assembled == o.(*PhysProps).Assembled }

// Covers reports whether the receiver satisfies a request for o:
// assembled output satisfies an unassembled request, not vice versa.
func (p *PhysProps) Covers(o core.PhysProps) bool {
	return p.Assembled || !o.(*PhysProps).Assembled
}

// Hash is consistent with Equal.
func (p *PhysProps) Hash() uint64 {
	if p.Assembled {
		return 2
	}
	return 1
}

// String renders the vector.
func (p *PhysProps) String() string {
	if p.Assembled {
		return "assembled"
	}
	return ""
}

// Cost is the object model's cost ADT: a single number of I/O-equivalent
// units, showing that cost structure is entirely up to the model.
type Cost float64

var _ core.Cost = Cost(0)

// Add sums costs.
func (c Cost) Add(o core.Cost) core.Cost { return c + o.(Cost) }

// Sub subtracts costs; infinity stays infinite.
func (c Cost) Sub(o core.Cost) core.Cost {
	if math.IsInf(float64(c), 1) {
		return c
	}
	return c - o.(Cost)
}

// Less compares costs.
func (c Cost) Less(o core.Cost) bool { return c < o.(Cost) }

// String renders the cost.
func (c Cost) String() string { return fmt.Sprintf("%.2f", float64(c)) }

// Params are the object model's cost weights, in units of one
// sequential page read.
type Params struct {
	// PageBytes is the page size.
	PageBytes int
	// RandomIO is the cost of dereferencing one unassembled object.
	RandomIO float64
	// AssemblyIO is the per-object, per-closure-level cost of the
	// assembly operator; window-based batching makes it cheaper than
	// one random I/O per reference.
	AssemblyIO float64
	// CPUStep is the cost of one in-memory pointer traversal.
	CPUStep float64
	// CPUPred is the cost of one predicate evaluation.
	CPUPred float64
}

// DefaultParams returns weights under which pointer chasing wins short
// paths and assembly wins longer ones.
func DefaultParams() Params {
	return Params{
		PageBytes:  4096,
		RandomIO:   1.0,
		AssemblyIO: 0.45,
		CPUStep:    0.001,
		CPUPred:    0.0005,
	}
}

// Physical operators.

// ExtentScan reads a class extent sequentially.
type ExtentScan struct {
	// Cls is the scanned class.
	Cls *Class
}

// Name returns "extent-scan".
func (e *ExtentScan) Name() string { return "extent-scan" }

// String renders the operator.
func (e *ExtentScan) String() string { return "extent-scan(" + e.Cls.Name + ")" }

// PointerChase implements MATERIALIZE by dereferencing each object's
// attribute individually: one random I/O per input object.
type PointerChase struct {
	// Attr is the navigated attribute.
	Attr string
}

// Name returns "pointer-chase".
func (p *PointerChase) Name() string { return "pointer-chase" }

// String renders the operator.
func (p *PointerChase) String() string { return "pointer-chase(" + p.Attr + ")" }

// AssembledTraverse implements MATERIALIZE over assembled objects: the
// component is already resident, so navigation is a memory access.
type AssembledTraverse struct {
	// Attr is the navigated attribute.
	Attr string
}

// Name returns "assembled-traverse".
func (a *AssembledTraverse) Name() string { return "assembled-traverse" }

// String renders the operator.
func (a *AssembledTraverse) String() string { return "assembled-traverse(" + a.Attr + ")" }

// FilterObjects implements SELECT.
type FilterObjects struct {
	// Pred is the displayed predicate.
	Pred string
	// Sel is the implemented selection, kept for the runtime.
	Sel *Select
}

// Name returns "filter".
func (f *FilterObjects) Name() string { return "filter" }

// String renders the operator.
func (f *FilterObjects) String() string { return "filter(" + f.Pred + ")" }

// Assembly is the enforcer of assembledness: Keller, Graefe & Maier's
// assembly operator, fetching the component closure of each object in
// scope with batched window reads.
type Assembly struct {
	// Levels is the closure depth assembled.
	Levels int
}

// Name returns "assembly".
func (a *Assembly) Name() string { return "assembly" }

// String renders the operator.
func (a *Assembly) String() string { return fmt.Sprintf("assembly(levels=%d)", a.Levels) }

// Model is the object data model description for the optimizer
// generator framework.
type Model struct {
	// Cat is the class catalog.
	Cat *Catalog
	// P are the cost weights.
	P Params
}

var _ core.Model = (*Model)(nil)

// New builds the model.
func New(cat *Catalog, p Params) *Model {
	if p.PageBytes == 0 {
		p = DefaultParams()
	}
	return &Model{Cat: cat, P: p}
}

// Name returns "oodb".
func (m *Model) Name() string { return "oodb" }

// ZeroCost returns 0.
func (m *Model) ZeroCost() core.Cost { return Cost(0) }

// InfiniteCost returns +inf.
func (m *Model) InfiniteCost() core.Cost { return Cost(math.Inf(1)) }

// AnyProps returns the vacuous vector.
func (m *Model) AnyProps() core.PhysProps { return Any }

// DeriveLogicalProps tracks the scope's head class and cardinality; the
// head class is the "type" of the intermediate result in this
// many-sorted algebra, which rule condition code inspects.
func (m *Model) DeriveLogicalProps(op core.LogicalOp, inputs []core.LogicalProps) core.LogicalProps {
	switch o := op.(type) {
	case *GetSet:
		return &Props{Head: o.Cls, Objects: float64(o.Cls.Objects)}
	case *Materialize:
		in := inputs[0].(*Props)
		target := in.Head.Refs[o.Attr]
		if target == nil {
			panic(fmt.Sprintf("oodb: class %s has no reference %q", in.Head.Name, o.Attr))
		}
		return &Props{Head: target, Objects: in.Objects, PathLen: in.PathLen + 1}
	case *Select:
		in := inputs[0].(*Props)
		sel := 1.0 / 3
		if d, ok := in.Head.Scalars[o.Attr]; ok && o.Op == CmpEQ {
			sel = 1 / float64(d)
		}
		return &Props{Head: in.Head, Objects: in.Objects * sel, PathLen: in.PathLen}
	}
	panic(fmt.Sprintf("oodb: unknown operator %T", op))
}

// TransformationRules: selections over the same head commute; that is
// the only logical equivalence of this small path algebra — the
// interesting choices here are physical, which is precisely why
// assembledness is modeled as a physical property.
func (m *Model) TransformationRules() []*core.TransformRule {
	return []*core.TransformRule{{
		Name: "select-commute",
		Pattern: core.P(KindSelect,
			core.P(KindSelect, core.Leaf())),
		Apply: func(ctx *core.RuleContext, b *core.Binding) []*core.ExprTree {
			outer := b.Expr.Op
			inner := b.Children[0].Expr.Op
			in := b.Children[0].Children[0].Group
			return []*core.ExprTree{
				core.Node(inner, core.Node(outer, core.ClassRef(in))),
			}
		},
		Promise: 1,
	}}
}

func reqOf(p core.PhysProps) *PhysProps { return p.(*PhysProps) }

func oprops(ctx *core.RuleContext, g core.GroupID) *Props {
	return ctx.LogProps(g).(*Props)
}

// The exported methods below are the model's support functions in the
// exact shapes the optimizer generator expects: *Model implements the
// Support interface of the generated package internal/gen/minipath, so
// the hand-maintained wiring here and the generated wiring share one
// implementation.

// ScanApplic: a stored extent is never assembled, so extent-scan
// qualifies only for the vacuous requirement.
func (m *Model) ScanApplic(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
	if reqOf(required).Assembled {
		return nil, false
	}
	return []core.InputReq{{}}, true
}

// ScanCost prices a sequential extent read.
func (m *Model) ScanCost(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
	cls := b.Expr.Op.(*GetSet).Cls
	pages := float64(cls.Objects*int64(cls.ObjBytes)) / float64(m.P.PageBytes)
	if pages < 1 {
		pages = 1
	}
	return Cost(pages)
}

// BuildScan constructs the extent-scan operator.
func (m *Model) BuildScan(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
	return &ExtentScan{Cls: b.Expr.Op.(*GetSet).Cls}
}

// FilterTypeOK is the condition code of the filter rule: the tested
// attribute must be a scalar of the head class — the type check of this
// many-sorted algebra.
func (m *Model) FilterTypeOK(ctx *core.RuleContext, b *core.Binding) bool {
	sel := b.Expr.Op.(*Select)
	_, ok := oprops(ctx, b.Group).Head.Scalars[sel.Attr]
	return ok
}

// FilterApplic passes the requirement through: filtering preserves
// physical properties.
func (m *Model) FilterApplic(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
	return []core.InputReq{{Required: []core.PhysProps{required}}}, true
}

// FilterCost prices one predicate evaluation per input object.
func (m *Model) FilterCost(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
	return Cost(oprops(ctx, b.Children[0].Group).Objects * m.P.CPUPred)
}

// FilterDelivered reports the input's actual properties.
func (m *Model) FilterDelivered(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq, inputs []core.PhysProps) core.PhysProps {
	return inputs[0]
}

// BuildFilter constructs the filter operator.
func (m *Model) BuildFilter(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
	sel := b.Expr.Op.(*Select)
	return &FilterObjects{Pred: fmt.Sprintf("%s %s %d", sel.Attr, sel.Op, sel.Val), Sel: sel}
}

// ChaseApplic: pointer chasing delivers unassembled objects, so it
// qualifies only when assembledness is not required.
func (m *Model) ChaseApplic(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
	if reqOf(required).Assembled {
		return nil, false
	}
	return []core.InputReq{{Required: []core.PhysProps{Any}}}, true
}

// ChaseCost prices one random I/O per input object.
func (m *Model) ChaseCost(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
	return Cost(oprops(ctx, b.Children[0].Group).Objects * m.P.RandomIO)
}

// BuildChase constructs the pointer-chase operator.
func (m *Model) BuildChase(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
	return &PointerChase{Attr: b.Expr.Op.(*Materialize).Attr}
}

// TraverseApplic: the assembled traversal needs an assembled input and
// can serve any requirement (assembled covers unassembled).
func (m *Model) TraverseApplic(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
	return []core.InputReq{{Required: []core.PhysProps{Assembled}}}, true
}

// TraverseCost prices an in-memory pointer step per object.
func (m *Model) TraverseCost(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
	return Cost(oprops(ctx, b.Children[0].Group).Objects * m.P.CPUStep)
}

// TraverseDelivered: components of assembled objects are themselves
// assembled.
func (m *Model) TraverseDelivered(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq, inputs []core.PhysProps) core.PhysProps {
	return Assembled
}

// BuildTraverse constructs the assembled-traverse operator.
func (m *Model) BuildTraverse(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
	return &AssembledTraverse{Attr: b.Expr.Op.(*Materialize).Attr}
}

// AssemblyRelax: the assembly enforcer establishes assembledness over an
// unassembled input; the original requirement is excluded for the input
// search.
func (m *Model) AssemblyRelax(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) (core.PhysProps, core.PhysProps, bool) {
	if !reqOf(required).Assembled {
		return nil, nil, false
	}
	return Any, required, true
}

// AssemblyCost prices batched window reads of each object's component
// closure.
func (m *Model) AssemblyCost(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) core.Cost {
	p := lp.(*Props)
	levels := p.Head.Depth() + 1
	return Cost(p.Objects * float64(levels) * m.P.AssemblyIO)
}

// BuildAssembly constructs the assembly operator.
func (m *Model) BuildAssembly(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) core.PhysicalOp {
	return &Assembly{Levels: lp.(*Props).Head.Depth() + 1}
}

// ImplementationRules maps the object operators to algorithms, wiring
// the exported support methods.
func (m *Model) ImplementationRules() []*core.ImplRule {
	return []*core.ImplRule{
		{
			Name:          "getset->extent-scan",
			Pattern:       core.P(KindGetSet),
			Applicability: m.ScanApplic,
			Cost:          m.ScanCost,
			Build:         m.BuildScan,
			Promise:       2,
		},
		{
			Name:          "select->filter",
			Pattern:       core.P(KindSelect, core.Leaf()),
			Condition:     m.FilterTypeOK,
			Applicability: m.FilterApplic,
			Cost:          m.FilterCost,
			Delivered:     m.FilterDelivered,
			Build:         m.BuildFilter,
			Promise:       2,
		},
		{
			Name:          "materialize->pointer-chase",
			Pattern:       core.P(KindMaterialize, core.Leaf()),
			Applicability: m.ChaseApplic,
			Cost:          m.ChaseCost,
			Build:         m.BuildChase,
			Promise:       2,
		},
		{
			Name:          "materialize->assembled-traverse",
			Pattern:       core.P(KindMaterialize, core.Leaf()),
			Applicability: m.TraverseApplic,
			Cost:          m.TraverseCost,
			Delivered:     m.TraverseDelivered,
			Build:         m.BuildTraverse,
			Promise:       2,
		},
	}
}

// Enforcers returns the assembly operator as the enforcer of
// assembledness.
func (m *Model) Enforcers() []*core.Enforcer {
	return []*core.Enforcer{{
		Name:    "assembly",
		Relax:   m.AssemblyRelax,
		Cost:    m.AssemblyCost,
		Build:   m.BuildAssembly,
		Promise: 1,
	}}
}
