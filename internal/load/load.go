// Package load is an open-loop load generator for the volcano-serve
// daemon. Arrivals are paced by a clock, not by responses — a slow
// server does not slow the offered load down, which is what exposes
// overload behavior (closed-loop generators self-throttle and hide
// it). Each completed response is checked against a reference
// fingerprint when one is supplied, so a run doubles as a correctness
// gate: plans served under pressure (degraded, cached, coalesced) must
// return exactly the rows the unloaded server returns.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// Statement is one workload element.
type Statement struct {
	SQL    string  `json:"sql"`
	Params []int64 `json:"params,omitempty"`
}

// key identifies a statement within a workload (for reference lookup).
func (s Statement) key() string {
	if len(s.Params) == 0 {
		return s.SQL
	}
	k := s.SQL
	for _, p := range s.Params {
		k += "|" + strconv.FormatInt(p, 10)
	}
	return k
}

// Options tune one load run.
type Options struct {
	// BaseURL is the daemon address, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client overrides http.DefaultClient.
	Client *http.Client
	// Rate is the open-loop arrival rate in requests/second.
	Rate float64
	// Duration bounds the run.
	Duration time.Duration
	// MaxOutstanding caps in-flight requests (a file-descriptor guard,
	// not a closed loop: arrivals beyond the cap are dropped and
	// counted, never queued). Default 512.
	MaxOutstanding int
	// Workload is cycled through in order, one statement per arrival.
	Workload []Statement
	// Reference maps statement keys to expected row fingerprints; when
	// non-nil every 200 response is checked and divergence counted in
	// Report.Mismatches.
	Reference map[string]string
	// TimeoutMS is attached to every request; 0 uses the server default.
	TimeoutMS int64
}

// Report is the outcome of one run.
type Report struct {
	// Sent counts arrivals dispatched; Dropped counts arrivals withheld
	// by the MaxOutstanding guard.
	Sent    int64 `json:"sent"`
	Dropped int64 `json:"dropped"`
	// OK counts 200 responses; Degraded and Cached count the subsets
	// whose envelope reported a budget-degraded or plan-cache-served
	// plan. Shed counts 503s; Errors counts everything else (transport
	// failures included).
	OK       int64 `json:"ok"`
	Degraded int64 `json:"degraded"`
	Cached   int64 `json:"cached"`
	Shed     int64 `json:"shed"`
	Errors   int64 `json:"errors"`
	// Mismatches counts 200 responses whose row multiset diverged from
	// the reference fingerprint. Any non-zero value is a correctness
	// bug, loaded or not.
	Mismatches int64 `json:"mismatches"`
	// DurationMS is the measured run length; ThroughputRPS is
	// OK/duration.
	DurationMS    int64   `json:"duration_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency summarizes 200-response latency only: shed fast-fails
	// would otherwise drag the quantiles down exactly when the tier is
	// most loaded.
	Latency metrics.Latency `json:"latency"`
	// DegradedRate and CacheHitRate are Degraded/OK and Cached/OK.
	DegradedRate float64 `json:"degraded_rate"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// FingerprintRows is the order-insensitive multiset fingerprint used
// to compare row sets across runs: plans are free to reorder ties, so
// identity is defined on the multiset, not the sequence.
func FingerprintRows(rows [][]int64) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		var b []byte
		for _, v := range r {
			b = strconv.AppendInt(b, v, 10)
			b = append(b, ',')
		}
		keys[i] = string(b)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{';'})
	}
	return fmt.Sprintf("%d:%016x", len(rows), h.Sum64())
}

// Collect runs every workload statement once against an unloaded
// daemon and returns the reference fingerprint map a loaded Run is
// gated on.
func Collect(ctx context.Context, baseURL string, client *http.Client, workload []Statement) (map[string]string, error) {
	if client == nil {
		client = http.DefaultClient
	}
	ref := make(map[string]string, len(workload))
	for _, st := range workload {
		res, status, err := post(ctx, client, baseURL, st, 0)
		if err != nil {
			return nil, fmt.Errorf("load: reference %q: %w", st.SQL, err)
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("load: reference %q: status %d", st.SQL, status)
		}
		ref[st.key()] = FingerprintRows(res.Rows)
	}
	return ref, nil
}

// post sends one /query request and decodes the response.
func post(ctx context.Context, client *http.Client, baseURL string, st Statement, timeoutMS int64) (*serve.Result, int, error) {
	body, err := json.Marshal(serve.Request{SQL: st.SQL, Params: st.Params, TimeoutMS: timeoutMS})
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var drain bytes.Buffer
		drain.ReadFrom(resp.Body)
		return nil, resp.StatusCode, nil
	}
	var out serve.Result
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, resp.StatusCode, err
	}
	return &out, resp.StatusCode, nil
}

// Run drives one open-loop load run and reports what came back.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if len(opts.Workload) == 0 {
		return nil, fmt.Errorf("load: empty workload")
	}
	if opts.Rate <= 0 {
		return nil, fmt.Errorf("load: rate must be positive")
	}
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	maxOut := opts.MaxOutstanding
	if maxOut <= 0 {
		maxOut = 512
	}

	var rep Report
	var hist metrics.Histogram
	var outstanding atomic.Int64
	var wg sync.WaitGroup

	interval := time.Duration(float64(time.Second) / opts.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	runCtx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()

	start := time.Now()
	next := 0
loop:
	for {
		select {
		case <-runCtx.Done():
			break loop
		case <-ticker.C:
		}
		st := opts.Workload[next%len(opts.Workload)]
		next++
		if outstanding.Load() >= int64(maxOut) {
			atomic.AddInt64(&rep.Dropped, 1)
			continue
		}
		outstanding.Add(1)
		atomic.AddInt64(&rep.Sent, 1)
		wg.Add(1)
		go func(st Statement) {
			defer wg.Done()
			defer outstanding.Add(-1)
			reqStart := time.Now()
			res, status, err := post(ctx, client, opts.BaseURL, st, opts.TimeoutMS)
			switch {
			case err != nil:
				atomic.AddInt64(&rep.Errors, 1)
			case status == http.StatusOK:
				hist.Observe(time.Since(reqStart))
				atomic.AddInt64(&rep.OK, 1)
				if res.Degraded {
					atomic.AddInt64(&rep.Degraded, 1)
				}
				if res.Cached {
					atomic.AddInt64(&rep.Cached, 1)
				}
				if opts.Reference != nil {
					if want, ok := opts.Reference[st.key()]; ok && FingerprintRows(res.Rows) != want {
						atomic.AddInt64(&rep.Mismatches, 1)
					}
				}
			case status == http.StatusServiceUnavailable:
				atomic.AddInt64(&rep.Shed, 1)
			default:
				atomic.AddInt64(&rep.Errors, 1)
			}
		}(st)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep.DurationMS = elapsed.Milliseconds()
	if secs := elapsed.Seconds(); secs > 0 {
		rep.ThroughputRPS = float64(rep.OK) / secs
	}
	if rep.OK > 0 {
		rep.DegradedRate = float64(rep.Degraded) / float64(rep.OK)
		rep.CacheHitRate = float64(rep.Cached) / float64(rep.OK)
	}
	rep.Latency = hist.Summary()
	return &rep, nil
}

// ChainWorkload builds a statement mix over the generated demo schema
// (tables R1..Rn with columns id/ja/jb/v): chain equi-joins of 2..4
// relations with varying selections, plus aggregate and ordered
// variants, count statements in total. Distinct spellings defeat plan
// caching for part of the mix while repeats exercise it.
func ChainWorkload(n, count int) []Statement {
	if n < 2 {
		n = 2
	}
	join := func(k int) string {
		from := "R1"
		where := ""
		for i := 2; i <= k; i++ {
			from += fmt.Sprintf(", R%d", i)
			if where != "" {
				where += " AND "
			}
			where += fmt.Sprintf("R%d.ja = R%d.id", i-1, i)
		}
		return from + " WHERE " + where
	}
	maxK := 4
	if n < maxK {
		maxK = n
	}
	out := make([]Statement, 0, count)
	for i := 0; len(out) < count; i++ {
		k := 2 + i%(maxK-1)
		switch i % 4 {
		case 0:
			out = append(out, Statement{SQL: fmt.Sprintf(
				"SELECT R1.id FROM %s AND R1.v < %d", join(k), 3+i%7)})
		case 1:
			out = append(out, Statement{SQL: fmt.Sprintf(
				"SELECT R1.id, R1.v FROM %s ORDER BY R1.id", join(k))})
		case 2:
			out = append(out, Statement{SQL: fmt.Sprintf(
				"SELECT R1.ja FROM %s GROUP BY R1.ja", join(k))})
		case 3:
			out = append(out, Statement{
				SQL:    fmt.Sprintf("SELECT R1.id FROM %s AND R1.v < $1", join(k)),
				Params: []int64{int64(2 + i%5)},
			})
		}
	}
	return out
}
