package load

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/serve"
	"repro/internal/vdb"
)

func TestFingerprintRows(t *testing.T) {
	a := [][]int64{{1, 2}, {3, 4}, {1, 2}}
	b := [][]int64{{3, 4}, {1, 2}, {1, 2}}
	c := [][]int64{{3, 4}, {1, 2}}
	if FingerprintRows(a) != FingerprintRows(b) {
		t.Errorf("reordered multiset fingerprints differ")
	}
	if FingerprintRows(a) == FingerprintRows(c) {
		t.Errorf("different multisets share a fingerprint")
	}
	// {1},{23} must not collide with {12},{3}: the encoding is
	// per-value delimited.
	if FingerprintRows([][]int64{{1, 23}}) == FingerprintRows([][]int64{{12, 3}}) {
		t.Errorf("value-boundary collision")
	}
}

func TestChainWorkload(t *testing.T) {
	w := ChainWorkload(5, 12)
	if len(w) != 12 {
		t.Fatalf("workload size %d", len(w))
	}
	src := datagen.New(3)
	cat := src.Catalog(5)
	db := vdb.Open(cat, src.Rows(cat), &vdb.Options{Guided: true})
	for _, st := range w {
		var err error
		if len(st.Params) > 0 {
			_, err = db.QueryParams(st.SQL, st.Params...)
		} else {
			_, err = db.Query(st.SQL)
		}
		if err != nil {
			t.Errorf("workload statement %q: %v", st.SQL, err)
		}
	}
}

// TestRunAgainstServer: a short open-loop run against an in-process
// daemon completes with zero mismatches and accounts every arrival.
func TestRunAgainstServer(t *testing.T) {
	src := datagen.New(7)
	cat := src.Catalog(4)
	db := vdb.Open(cat, src.Rows(cat), &vdb.Options{Guided: true, CacheBytes: 1 << 20})
	s := serve.New(db, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	workload := ChainWorkload(4, 8)
	ref, err := Collect(context.Background(), ts.URL, nil, workload)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(workload) {
		t.Fatalf("reference covers %d/%d statements", len(ref), len(workload))
	}

	rep, err := Run(context.Background(), Options{
		BaseURL:   ts.URL,
		Rate:      200,
		Duration:  500 * time.Millisecond,
		Workload:  workload,
		Reference: ref,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 {
		t.Fatal("open loop sent nothing")
	}
	if rep.Mismatches != 0 {
		t.Errorf("%d result mismatches", rep.Mismatches)
	}
	if rep.OK+rep.Shed+rep.Errors+rep.Dropped != rep.Sent+rep.Dropped {
		t.Errorf("accounting leak: %+v", rep)
	}
	if rep.OK > 0 && rep.Latency.Count != rep.OK {
		t.Errorf("latency histogram holds %d observations for %d OK responses",
			rep.Latency.Count, rep.OK)
	}
	t.Logf("run: sent=%d ok=%d shed=%d dropped=%d errors=%d p99=%dµs cacheRate=%.2f",
		rep.Sent, rep.OK, rep.Shed, rep.Dropped, rep.Errors,
		rep.Latency.P99US, rep.CacheHitRate)
}
