package datagen

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relopt"
)

func TestCatalogShape(t *testing.T) {
	s := New(1)
	cat := s.Catalog(8)
	if got := len(cat.Tables()); got != 8 {
		t.Fatalf("tables = %d, want 8", got)
	}
	for _, name := range cat.Tables() {
		tab := cat.Table(name)
		if tab.Rows < MinRows || tab.Rows > MaxRows {
			t.Errorf("%s rows = %d, want within [%d,%d]", name, tab.Rows, MinRows, MaxRows)
		}
		if tab.RowBytes != TableRowBytes {
			t.Errorf("%s rowBytes = %d, want %d", name, tab.RowBytes, TableRowBytes)
		}
		if len(tab.Columns) != 4 {
			t.Errorf("%s columns = %d, want 4", name, len(tab.Columns))
		}
	}
}

func TestQueryShapes(t *testing.T) {
	s := New(2)
	cat := s.Catalog(8)
	for _, shape := range []Shape{ShapeRandom, ShapeChain, ShapeStar} {
		q := s.SelectJoinQuery(cat, 5, shape)
		if len(q.Tables) != 5 {
			t.Errorf("shape %d: tables = %d, want 5", shape, len(q.Tables))
		}
		if len(q.Joins) != 4 {
			t.Errorf("shape %d: joins = %d, want 4", shape, len(q.Joins))
		}
		if len(q.Selections) != 5 {
			t.Errorf("shape %d: selections = %d, want 5", shape, len(q.Selections))
		}
		seen := map[string]bool{}
		for _, name := range q.Tables {
			if seen[name] {
				t.Errorf("shape %d: duplicate table %s", shape, name)
			}
			seen[name] = true
		}
	}
}

func TestRowsMatchCatalog(t *testing.T) {
	s := New(3)
	cat := s.Catalog(2)
	data := s.Rows(cat)
	for _, name := range cat.Tables() {
		tab := cat.Table(name)
		rows := data[name]
		if int64(len(rows)) != tab.Rows {
			t.Fatalf("%s: %d rows, want %d", name, len(rows), tab.Rows)
		}
		// Key column values must be distinct.
		keys := make(map[int64]bool, len(rows))
		for _, r := range rows {
			if keys[r[0]] {
				t.Fatalf("%s: duplicate key %d", name, r[0])
			}
			keys[r[0]] = true
		}
		// All values within declared domains.
		for _, r := range rows {
			for j, c := range tab.Columns {
				m := cat.Column(c)
				if r[j] < m.Min || r[j] > m.Max {
					t.Fatalf("%s.%s value %d outside [%d,%d]", name, m.Name, r[j], m.Min, m.Max)
				}
			}
		}
	}
}

// TestScaledCatalogDeterministic: the e2e experiment's reproducibility
// rests on one seed pinning the whole dataset — two sources built from
// the same seed must produce identical scaled catalogs and identical
// table contents, and a different seed must actually change the data
// (so volcano-bench -seed is not a no-op).
func TestScaledCatalogDeterministic(t *testing.T) {
	const rows = 2000
	gen := func(seed int64) (map[string]int64, map[string][][]int64) {
		s := New(seed)
		cat := s.ScaledCatalog(3, rows)
		sizes := map[string]int64{}
		for _, name := range cat.Tables() {
			sizes[name] = cat.Table(name).Rows
		}
		return sizes, s.Rows(cat)
	}

	sizesA, dataA := gen(1993)
	sizesB, dataB := gen(1993)
	if len(sizesA) != len(sizesB) {
		t.Fatalf("same seed, different table counts: %d vs %d", len(sizesA), len(sizesB))
	}
	for name, n := range sizesA {
		if sizesB[name] != n {
			t.Errorf("same seed, %s sized %d vs %d", name, n, sizesB[name])
		}
		a, b := dataA[name], dataB[name]
		if len(a) != len(b) {
			t.Fatalf("same seed, %s has %d vs %d rows", name, len(a), len(b))
		}
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("same seed, %s row %d col %d: %d vs %d", name, i, j, a[i][j], b[i][j])
				}
			}
		}
	}

	_, dataC := gen(7)
	same := true
outer:
	for name, a := range dataA {
		c := dataC[name]
		if len(a) != len(c) {
			same = false
			break
		}
		for i := range a {
			for j := range a[i] {
				if a[i][j] != c[i][j] {
					same = false
					break outer
				}
			}
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

// TestOptimizeScaling exercises the Volcano optimizer across the paper's
// query sizes and reports effort, guarding against search-space
// explosions.
func TestOptimizeScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling check skipped in -short mode")
	}
	s := New(4)
	cat := s.Catalog(8)
	for n := 2; n <= 8; n++ {
		q := s.SelectJoinQuery(cat, n, ShapeRandom)
		model := relopt.New(cat, relopt.DefaultConfig())
		opt := core.NewOptimizer(model, nil)
		root := opt.InsertQuery(q.Root)
		start := time.Now()
		plan, err := opt.Optimize(root, nil)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if plan == nil {
			t.Fatalf("n=%d: no plan", n)
		}
		st := opt.Stats()
		t.Logf("n=%d: %v, groups=%d exprs=%d goals=%d mem=%dB cost=%s",
			n, elapsed, st.Groups, st.Exprs, st.GoalsOptimized, st.PeakMemoBytes, plan.Cost)
		if st.ConsistencyViolations != 0 {
			t.Fatalf("n=%d: consistency violations", n)
		}
	}
}
