// Package datagen generates the synthetic catalogs, queries, and table
// contents used by the experiments: the paper's setup of relations with
// 1,200 to 7,200 records of 100 bytes, and random select-join queries
// with 1 to 7 binary joins (2 to 8 input relations) and as many
// selections as input relations.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/rel"
)

// Source produces catalogs, queries, and data deterministically from a
// seed, so experiments are reproducible.
type Source struct {
	rng *rand.Rand
}

// New creates a Source with the given seed.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Columns given to every generated table. Each table carries a unique
// key, two join columns of moderate duplication, and a selection column,
// within the paper's 100-byte records.
const (
	colKey = "id" // distinct = rows
	colJA  = "ja" // join column, distinct = rows/6
	colJB  = "jb" // join column, distinct = rows/12
	colSel = "v"  // selection column, domain [0,1000)
)

// TableRowBytes is the record width of generated tables, per the paper.
const TableRowBytes = 100

// MinRows and MaxRows bound generated table cardinalities, per the paper.
const (
	MinRows = 1200
	MaxRows = 7200
)

// Catalog generates n tables named R1..Rn with cardinalities drawn
// uniformly from {1200, 1800, ..., 7200} and 100-byte records.
func (s *Source) Catalog(n int) *rel.Catalog {
	cat := rel.NewCatalog()
	for i := 1; i <= n; i++ {
		rows := int64(MinRows + 600*s.rng.Intn((MaxRows-MinRows)/600+1))
		s.addTable(cat, fmt.Sprintf("R%d", i), rows)
	}
	return cat
}

func (s *Source) addTable(cat *rel.Catalog, name string, rows int64) *rel.Table {
	t := cat.AddTable(name, rows, TableRowBytes)
	cat.AddColumn(t, colKey, rows, 1, rows)
	cat.AddColumn(t, colJA, maxi(rows/6, 2), 1, maxi(rows/6, 2))
	cat.AddColumn(t, colJB, maxi(rows/12, 2), 1, maxi(rows/12, 2))
	cat.AddColumn(t, colSel, 1000, 0, 999)
	return t
}

// ScaledCatalog generates n tables named R1..Rn with cardinalities
// spread within ±20% of rows (same column layout as Catalog). It scales
// the paper's setup to execution-benchmark sizes (10⁵–10⁷ rows) where
// batched-versus-row throughput differences are measurable.
func (s *Source) ScaledCatalog(n int, rows int64) *rel.Catalog {
	cat := rel.NewCatalog()
	for i := 1; i <= n; i++ {
		lo := rows - rows/5
		r := lo + s.rng.Int63n(2*rows/5+1)
		s.addTable(cat, fmt.Sprintf("R%d", i), r)
	}
	return cat
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Query is one generated select-join query.
type Query struct {
	// Root is the logical expression handed to the optimizer.
	Root *core.ExprTree
	// Tables are the referenced table names in join order.
	Tables []string
	// Joins are the equated column pairs.
	Joins [][2]rel.ColID
	// Selections are the per-relation filter predicates.
	Selections []rel.Pred
	// OrderBy is the user-requested output sort column (the physical
	// property requested of the optimizer, as in an SQL ORDER BY).
	OrderBy rel.ColID
}

// Shape selects the join-graph topology of generated queries.
type Shape int

// Query shapes.
const (
	// ShapeRandom connects each relation to a uniformly random earlier
	// relation: a random spanning tree mixing chains and stars.
	ShapeRandom Shape = iota
	// ShapeChain joins the relations in a linear chain.
	ShapeChain
	// ShapeStar joins every relation to the first.
	ShapeStar
)

// String names the shape as accepted by the volcano-bench -shape flag.
func (s Shape) String() string {
	switch s {
	case ShapeChain:
		return "chain"
	case ShapeStar:
		return "star"
	default:
		return "random"
	}
}

// SelectJoinQuery generates a query over nRels distinct relations of the
// catalog: nRels-1 equi-joins forming a connected acyclic join graph of
// the given shape, plus one selection per input relation. The initial
// expression tree is left-deep and join-order-valid; the optimizer
// explores the rest of the space.
func (s *Source) SelectJoinQuery(cat *rel.Catalog, nRels int, shape Shape) Query {
	names := cat.Tables()
	if nRels > len(names) {
		panic(fmt.Sprintf("datagen: query wants %d relations, catalog has %d", nRels, len(names)))
	}
	// Choose nRels distinct tables.
	perm := s.rng.Perm(len(names))[:nRels]
	tables := make([]string, nRels)
	for i, p := range perm {
		tables[i] = names[p]
	}

	q := Query{Tables: tables}

	// One selection per relation, sitting directly above its scan.
	leaf := func(i int) *core.ExprTree {
		t := cat.Table(tables[i])
		selCol := cat.ColumnID(t.Name, colSel)
		pred := rel.Pred{Col: selCol, Op: rel.CmpLT, Val: int64(100 + s.rng.Intn(900))}
		q.Selections = append(q.Selections, pred)
		return core.Node(&rel.Select{Pred: pred}, core.Node(&rel.Get{Tab: t}))
	}

	// Random join column on a table: one of the two join columns.
	joinCol := func(name string) rel.ColID {
		col := colJA
		if s.rng.Intn(2) == 1 {
			col = colJB
		}
		return cat.ColumnID(name, col)
	}

	tree := leaf(0)
	joined := []int{0}
	for i := 1; i < nRels; i++ {
		// Pick the partner already in the tree, per the shape.
		var partner int
		switch shape {
		case ShapeChain:
			partner = i - 1
		case ShapeStar:
			partner = 0
		default:
			partner = joined[s.rng.Intn(len(joined))]
		}
		lc := joinCol(tables[partner])
		rc := joinCol(tables[i])
		q.Joins = append(q.Joins, [2]rel.ColID{lc, rc})
		tree = core.Node(rel.NewJoin(lc, rc), tree, leaf(i))
		joined = append(joined, i)
	}
	q.Root = tree
	// The user asks for output ordered on one of the join columns —
	// the physical property requested of the optimizer.
	if len(q.Joins) > 0 {
		e := q.Joins[s.rng.Intn(len(q.Joins))]
		q.OrderBy = e[s.rng.Intn(2)]
	} else {
		q.OrderBy = cat.ColumnID(tables[0], colKey)
	}
	return q
}

// Rows generates table contents consistent with the catalog statistics:
// key columns hold a permutation of 1..rows; other columns are uniform
// over their declared domains. The result maps table name to rows of
// values aligned with the table's column order.
func (s *Source) Rows(cat *rel.Catalog) map[string][][]int64 {
	out := make(map[string][][]int64)
	for _, name := range cat.Tables() {
		t := cat.Table(name)
		rows := make([][]int64, t.Rows)
		var keyPerm []int64
		for i := range rows {
			row := make([]int64, len(t.Columns))
			for j, c := range t.Columns {
				m := cat.Column(c)
				if m.Name == colKey {
					if keyPerm == nil {
						keyPerm = permutation(s.rng, t.Rows)
					}
					row[j] = keyPerm[i]
				} else {
					row[j] = m.Min + s.rng.Int63n(m.Max-m.Min+1)
				}
			}
			rows[i] = row
		}
		out[name] = rows
	}
	return out
}

func permutation(rng *rand.Rand, n int64) []int64 {
	p := make([]int64, n)
	for i := range p {
		p[i] = int64(i) + 1
	}
	rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
