package gen

import (
	"fmt"
	"go/format"
	"sort"
	"strings"
)

// funcRole classifies a Support function reference so the emitter can
// declare its signature (and detect a name reused with two different
// roles).
type funcRole int

const (
	roleCondition funcRole = iota
	roleAlgCost
	roleApplicability
	roleAlgBuild
	roleAlgDelivered
	roleEnfRelax
	roleEnfCost
	roleEnfBuild
	roleEnfDelivered
)

var roleSignatures = map[funcRole]string{
	roleCondition:     "(ctx *core.RuleContext, b *core.Binding) bool",
	roleAlgCost:       "(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost",
	roleApplicability: "(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool)",
	roleAlgBuild:      "(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp",
	roleAlgDelivered:  "(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq, inputs []core.PhysProps) core.PhysProps",
	roleEnfRelax:      "(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) (relaxed, excluded core.PhysProps, ok bool)",
	roleEnfCost:       "(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) core.Cost",
	roleEnfBuild:      "(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) core.PhysicalOp",
	roleEnfDelivered:  "(ctx *core.RuleContext, required core.PhysProps, input core.PhysProps) core.PhysProps",
}

// supportFunc is one collected Support method.
type supportFunc struct {
	name string
	role funcRole
	doc  string
}

// Generate translates a parsed specification into formatted Go source
// for the optimizer package.
func Generate(spec *Spec) ([]byte, error) {
	e := &emitter{spec: spec, funcs: map[string]*supportFunc{}}
	if err := e.collect(); err != nil {
		return nil, err
	}
	src := e.emit()
	out, err := format.Source([]byte(src))
	if err != nil {
		return nil, fmt.Errorf("gen: generated source does not format: %w\n%s", err, src)
	}
	return out, nil
}

type emitter struct {
	spec  *Spec
	funcs map[string]*supportFunc
	b     strings.Builder
}

// methodName exports a support-function reference as a Go method name,
// so implementations outside the generated package can provide it.
func methodName(name string) string {
	if name == "" {
		return ""
	}
	return strings.ToUpper(name[:1]) + name[1:]
}

func (e *emitter) addFunc(name string, role funcRole, doc string) error {
	if name == "" {
		return nil
	}
	name = methodName(name)
	if f, ok := e.funcs[name]; ok {
		if f.role != role && roleSignatures[f.role] != roleSignatures[role] {
			return fmt.Errorf("gen: support function %s used with two different signatures", name)
		}
		return nil
	}
	e.funcs[name] = &supportFunc{name: name, role: role, doc: doc}
	return nil
}

func (e *emitter) collect() error {
	for _, tr := range e.spec.Transforms {
		if err := e.addFunc(tr.Condition, roleCondition,
			fmt.Sprintf("%s is the condition code of transformation rule %s.", methodName(tr.Condition), tr.Name)); err != nil {
			return err
		}
		for _, sub := range tr.Substs {
			if err := e.addFunc(sub.Condition, roleCondition,
				fmt.Sprintf("%s guards one substitute of transformation rule %s.", methodName(sub.Condition), tr.Name)); err != nil {
				return err
			}
		}
	}
	for _, alg := range e.spec.Algorithms {
		if err := e.addFunc(alg.Cost, roleAlgCost,
			fmt.Sprintf("%s is the cost function of algorithm %s.", methodName(alg.Cost), alg.Name)); err != nil {
			return err
		}
		if err := e.addFunc(alg.Applicability, roleApplicability,
			fmt.Sprintf("%s is the applicability function of algorithm %s.", methodName(alg.Applicability), alg.Name)); err != nil {
			return err
		}
		if err := e.addFunc(alg.Build, roleAlgBuild,
			fmt.Sprintf("%s constructs the physical operator of algorithm %s.", methodName(alg.Build), alg.Name)); err != nil {
			return err
		}
		if err := e.addFunc(alg.Delivered, roleAlgDelivered,
			fmt.Sprintf("%s computes the properties delivered by algorithm %s.", methodName(alg.Delivered), alg.Name)); err != nil {
			return err
		}
		if err := e.addFunc(alg.Condition, roleCondition,
			fmt.Sprintf("%s is the condition code of implementation rule %s.", methodName(alg.Condition), alg.Name)); err != nil {
			return err
		}
	}
	for _, enf := range e.spec.Enforcers {
		if err := e.addFunc(enf.Relax, roleEnfRelax,
			fmt.Sprintf("%s relaxes a requirement that enforcer %s can establish.", methodName(enf.Relax), enf.Name)); err != nil {
			return err
		}
		if err := e.addFunc(enf.Cost, roleEnfCost,
			fmt.Sprintf("%s is the cost function of enforcer %s.", methodName(enf.Cost), enf.Name)); err != nil {
			return err
		}
		if err := e.addFunc(enf.Build, roleEnfBuild,
			fmt.Sprintf("%s constructs the physical operator of enforcer %s.", methodName(enf.Build), enf.Name)); err != nil {
			return err
		}
		if err := e.addFunc(enf.Delivered, roleEnfDelivered,
			fmt.Sprintf("%s computes the properties delivered by enforcer %s.", methodName(enf.Delivered), enf.Name)); err != nil {
			return err
		}
	}
	return nil
}

func (e *emitter) p(format string, args ...any) {
	fmt.Fprintf(&e.b, format+"\n", args...)
}

func (e *emitter) emit() string {
	s := e.spec
	e.p("// Code generated by volcano-gen from the %s model specification. DO NOT EDIT.", s.Model)
	e.p("")
	e.p("// Package %s is a query optimizer for the %s data model, produced", s.Model, s.Model)
	e.p("// by the Volcano optimizer generator. It wires the model's operators,")
	e.p("// transformation rules, implementation rules, and enforcers to the")
	e.p("// model-independent search engine; the data-model-specific decisions")
	e.p("// (costs, properties, applicability, condition code) are delegated to")
	e.p("// the Support interface, which the optimizer implementor provides.")
	e.p("package %s", s.Model)
	e.p("")
	e.p("import \"repro/internal/core\"")
	e.p("")

	// Operator kinds.
	e.p("// Operator kinds of the %s logical algebra, in declaration order.", s.Model)
	e.p("const (")
	for i, op := range s.Operators {
		if i == 0 {
			e.p("Kind%s core.OpKind = iota + 1", op.Name)
		} else {
			e.p("Kind%s", op.Name)
		}
	}
	e.p(")")
	e.p("")

	// Support interface.
	e.p("// Support is the data-model-specific code the optimizer implementor")
	e.p("// supplies before optimizer generation: property and cost functions,")
	e.p("// applicability functions, and condition code, plus the cost and")
	e.p("// physical-property abstract data types.")
	e.p("type Support interface {")
	e.p("core.CostModel")
	e.p("")
	e.p("// DeriveLogicalProps computes the logical properties of an")
	e.p("// expression; it encapsulates selectivity estimation.")
	e.p("DeriveLogicalProps(op core.LogicalOp, inputs []core.LogicalProps) core.LogicalProps")
	e.p("// AnyProps returns the vacuous physical property vector.")
	e.p("AnyProps() core.PhysProps")
	names := make([]string, 0, len(e.funcs))
	for n := range e.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := e.funcs[n]
		e.p("// %s", f.doc)
		e.p("%s%s", f.name, roleSignatures[f.role])
	}
	e.p("}")
	e.p("")

	// Default physical operator types.
	for _, alg := range s.Algorithms {
		if alg.Build != "" {
			continue
		}
		e.emitDefaultOp(alg.Name, "algorithm")
	}
	for _, enf := range s.Enforcers {
		if enf.Build != "" {
			continue
		}
		e.emitDefaultOp(enf.Name, "enforcer")
	}

	// Model type.
	e.p("// Model is the generated optimizer model: the core.Model the search")
	e.p("// engine is linked with.")
	e.p("type Model struct {")
	e.p("s Support")
	e.p("transforms []*core.TransformRule")
	e.p("impls []*core.ImplRule")
	e.p("enforcers []*core.Enforcer")
	e.p("}")
	e.p("")
	e.p("var _ core.Model = (*Model)(nil)")
	e.p("")
	e.p("// New binds the generated rule set to the implementor's support code.")
	e.p("func New(s Support) *Model {")
	e.p("m := &Model{s: s}")

	e.p("m.transforms = []*core.TransformRule{")
	for _, tr := range s.Transforms {
		e.emitTransform(tr)
	}
	e.p("}")

	e.p("m.impls = []*core.ImplRule{")
	for _, alg := range s.Algorithms {
		e.emitAlgorithm(alg)
	}
	e.p("}")

	e.p("m.enforcers = []*core.Enforcer{")
	for _, enf := range s.Enforcers {
		e.emitEnforcer(enf)
	}
	e.p("}")
	e.p("return m")
	e.p("}")
	e.p("")

	e.p("// Name returns the model name.")
	e.p("func (m *Model) Name() string { return %q }", s.Model)
	e.p("")
	e.p("// DeriveLogicalProps delegates to the support code.")
	e.p("func (m *Model) DeriveLogicalProps(op core.LogicalOp, inputs []core.LogicalProps) core.LogicalProps {")
	e.p("return m.s.DeriveLogicalProps(op, inputs)")
	e.p("}")
	e.p("")
	e.p("// TransformationRules returns the generated transformation rules.")
	e.p("func (m *Model) TransformationRules() []*core.TransformRule { return m.transforms }")
	e.p("")
	e.p("// ImplementationRules returns the generated implementation rules.")
	e.p("func (m *Model) ImplementationRules() []*core.ImplRule { return m.impls }")
	e.p("")
	e.p("// Enforcers returns the generated enforcers.")
	e.p("func (m *Model) Enforcers() []*core.Enforcer { return m.enforcers }")
	e.p("")
	e.p("// AnyProps delegates to the support code.")
	e.p("func (m *Model) AnyProps() core.PhysProps { return m.s.AnyProps() }")
	e.p("")
	e.p("// ZeroCost delegates to the support code.")
	e.p("func (m *Model) ZeroCost() core.Cost { return m.s.ZeroCost() }")
	e.p("")
	e.p("// InfiniteCost delegates to the support code.")
	e.p("func (m *Model) InfiniteCost() core.Cost { return m.s.InfiniteCost() }")
	e.p("")
	// The spec hash covers everything emitted so far — operator kinds,
	// rule wiring, and support signatures — so any regeneration that
	// changes the optimizer's behavior also changes the version token.
	specHash := fnv1a(e.b.String())
	e.p("var _ core.Versioned = (*Model)(nil)")
	e.p("")
	e.p("// Version returns the model's version token: a fingerprint of the")
	e.p("// generated rule set, mixed with the support code's own token when")
	e.p("// the Support implementation also implements core.Versioned (e.g. to")
	e.p("// reflect catalog or statistics changes). Plan caches key entries by")
	e.p("// this token, so regenerating the optimizer orphans cached plans.")
	e.p("func (m *Model) Version() uint64 {")
	e.p("const specHash = 0x%016x", specHash)
	e.p("if v, ok := m.s.(core.Versioned); ok {")
	e.p("return specHash ^ (v.Version() * 0x9E3779B185EBCA87)")
	e.p("}")
	e.p("return specHash")
	e.p("}")
	e.p("")
	e.p("// anyInputs builds one vacuous property requirement per input; it is")
	e.p("// the default applicability result for algorithms whose specification")
	e.p("// names no applicability function.")
	e.p("func anyInputs(s Support, n int) []core.InputReq {")
	e.p("req := make([]core.PhysProps, n)")
	e.p("for i := range req { req[i] = s.AnyProps() }")
	e.p("return []core.InputReq{{Required: req}}")
	e.p("}")
	return e.b.String()
}

func (e *emitter) emitDefaultOp(name, kind string) {
	typ := exportName(name) + "Op"
	e.p("// %s is the generated physical operator of %s %s.", typ, kind, name)
	e.p("type %s struct{}", typ)
	e.p("")
	e.p("// Name returns %q.", strings.ToLower(name))
	e.p("func (*%s) Name() string { return %q }", typ, strings.ToLower(name))
	e.p("")
	e.p("// String returns %q.", strings.ToLower(name))
	e.p("func (*%s) String() string { return %q }", typ, strings.ToLower(name))
	e.p("")
}

// fnv1a hashes a string with 64-bit FNV-1a, the spec-fingerprint hash
// emitted into generated Version methods.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// exportName turns SNAKE_CASE into CamelCase.
func exportName(s string) string {
	parts := strings.Split(strings.ToLower(s), "_")
	for i, p := range parts {
		if p != "" {
			parts[i] = strings.ToUpper(p[:1]) + p[1:]
		}
	}
	return strings.Join(parts, "")
}

// patternCode renders a pattern as a core.P/core.Leaf literal.
func patternCode(n *PatNode) string {
	if n.IsVar() {
		return "core.Leaf()"
	}
	if len(n.Children) == 0 {
		return fmt.Sprintf("core.P(Kind%s)", n.Op)
	}
	parts := make([]string, len(n.Children))
	for i, c := range n.Children {
		parts[i] = patternCode(c)
	}
	return fmt.Sprintf("core.P(Kind%s, %s)", n.Op, strings.Join(parts, ", "))
}

// bindingPaths maps labels and variables of a pattern to binding access
// expressions rooted at "b".
func bindingPaths(n *PatNode, path string, labels, vars map[string]string) {
	if n.IsVar() {
		vars[n.Var] = path
		return
	}
	if n.Label != "" {
		labels[n.Label] = path
	}
	for i, c := range n.Children {
		bindingPaths(c, fmt.Sprintf("%s.Children[%d]", path, i), labels, vars)
	}
}

// substCode renders a substitute as core.Node/core.ClassRef construction
// reusing matched operator instances through their binding paths.
func substCode(n *PatNode, labels, vars map[string]string) string {
	if n.IsVar() {
		return fmt.Sprintf("core.ClassRef(%s.Group)", vars[n.Var])
	}
	op := fmt.Sprintf("%s.Expr.Op", labels[n.Label])
	if len(n.Children) == 0 {
		return fmt.Sprintf("core.Node(%s)", op)
	}
	parts := make([]string, len(n.Children))
	for i, c := range n.Children {
		parts[i] = substCode(c, labels, vars)
	}
	return fmt.Sprintf("core.Node(%s, %s)", op, strings.Join(parts, ", "))
}

func (e *emitter) emitTransform(tr Transform) {
	labels, vars := map[string]string{}, map[string]string{}
	bindingPaths(tr.Pattern, "b", labels, vars)
	e.p("{")
	e.p("Name: %q,", tr.Name)
	e.p("Pattern: %s,", patternCode(tr.Pattern))
	if tr.Condition != "" {
		e.p("Condition: s.%s,", methodName(tr.Condition))
	}
	e.p("Apply: func(ctx *core.RuleContext, b *core.Binding) []*core.ExprTree {")
	unguarded := true
	for _, sub := range tr.Substs {
		if sub.Condition != "" {
			unguarded = false
		}
	}
	if len(tr.Substs) == 1 && unguarded {
		e.p("return []*core.ExprTree{%s}", substCode(tr.Substs[0].Node, labels, vars))
	} else {
		e.p("var out []*core.ExprTree")
		for _, sub := range tr.Substs {
			if sub.Condition != "" {
				e.p("if s.%s(ctx, b) {", methodName(sub.Condition))
				e.p("out = append(out, %s)", substCode(sub.Node, labels, vars))
				e.p("}")
			} else {
				e.p("out = append(out, %s)", substCode(sub.Node, labels, vars))
			}
		}
		e.p("return out")
	}
	e.p("},")
	e.p("Promise: %d,", tr.Promise)
	e.p("},")
}

// leafCount counts a pattern's variables: the algorithm's input count.
func leafCount(n *PatNode) int {
	if n.IsVar() {
		return 1
	}
	total := 0
	for _, c := range n.Children {
		total += leafCount(c)
	}
	return total
}

func (e *emitter) emitAlgorithm(alg Algorithm) {
	e.p("{")
	e.p("Name: %q,", alg.Name)
	e.p("Pattern: %s,", patternCode(alg.Pattern))
	if alg.Condition != "" {
		e.p("Condition: s.%s,", methodName(alg.Condition))
	}
	if alg.Applicability != "" {
		e.p("Applicability: s.%s,", methodName(alg.Applicability))
	} else {
		e.p("Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {")
		e.p("if !required.Equal(s.AnyProps()) { return nil, false }")
		e.p("return anyInputs(s, %d), true", leafCount(alg.Pattern))
		e.p("},")
	}
	e.p("Cost: s.%s,", methodName(alg.Cost))
	if alg.Delivered != "" {
		e.p("Delivered: s.%s,", methodName(alg.Delivered))
	}
	if alg.Build != "" {
		e.p("Build: s.%s,", methodName(alg.Build))
	} else {
		e.p("Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {")
		e.p("return &%sOp{}", exportName(alg.Name))
		e.p("},")
	}
	e.p("Promise: %d,", alg.Promise)
	e.p("},")
}

func (e *emitter) emitEnforcer(enf EnforcerDecl) {
	e.p("{")
	e.p("Name: %q,", enf.Name)
	e.p("Relax: s.%s,", methodName(enf.Relax))
	e.p("Cost: s.%s,", methodName(enf.Cost))
	if enf.Delivered != "" {
		e.p("Delivered: s.%s,", methodName(enf.Delivered))
	}
	if enf.Build != "" {
		e.p("Build: s.%s,", methodName(enf.Build))
	} else {
		e.p("Build: func(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) core.PhysicalOp {")
		e.p("return &%sOp{}", exportName(enf.Name))
		e.p("},")
	}
	e.p("Promise: %d,", enf.Promise)
	e.p("},")
}
