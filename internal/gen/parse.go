package gen

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a model specification. The grammar is line-oriented with
// ';'-terminated declarations and '//' comments:
//
//	model <name> ;
//	operator <NAME> <arity> ;
//	transform <name> : <pattern> -> <substitute> [when <fn>]
//	          { | <substitute> [when <fn>] } [promise <n>] ;
//	algorithm <NAME> implements <pattern> cost <fn> [applicability <fn>]
//	          [build <fn>] [delivered <fn>] [condition <fn>] [promise <n>] ;
//	enforcer <NAME> relax <fn> cost <fn> [build <fn>] [delivered <fn>] [promise <n>] ;
//
// Patterns are operator trees with optional :labels and ?variables:
//
//	JOIN:top(JOIN:inner(?a, ?b), ?c)
func Parse(input string) (*Spec, error) {
	spec := &Spec{}
	for _, decl := range splitDecls(input) {
		toks, err := tokenize(decl.text)
		if err != nil {
			return nil, fmt.Errorf("gen: line %d: %w", decl.line, err)
		}
		if len(toks) == 0 {
			continue
		}
		if err := spec.parseDecl(toks); err != nil {
			return nil, fmt.Errorf("gen: line %d: %w", decl.line, err)
		}
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

type decl struct {
	text string
	line int
}

// splitDecls removes comments and splits on ';'.
func splitDecls(input string) []decl {
	var out []decl
	var buf strings.Builder
	line, start := 1, 1
	for i := 0; i < len(input); i++ {
		c := input[i]
		if c == '/' && i+1 < len(input) && input[i+1] == '/' {
			for i < len(input) && input[i] != '\n' {
				i++
			}
			line++
			buf.WriteByte(' ')
			continue
		}
		if c == '\n' {
			line++
			buf.WriteByte(' ')
			continue
		}
		if c == ';' {
			out = append(out, decl{text: buf.String(), line: start})
			buf.Reset()
			start = line
			continue
		}
		buf.WriteByte(c)
	}
	if strings.TrimSpace(buf.String()) != "" {
		out = append(out, decl{text: buf.String(), line: start})
	}
	return out
}

// tokenize splits one declaration into words and punctuation.
func tokenize(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(s) && (unicode.IsLetter(rune(s[i])) || unicode.IsDigit(rune(s[i])) || s[i] == '_') {
				i++
			}
			toks = append(toks, s[start:i])
		case unicode.IsDigit(c):
			start := i
			for i < len(s) && unicode.IsDigit(rune(s[i])) {
				i++
			}
			toks = append(toks, s[start:i])
		case c == '-' && i+1 < len(s) && s[i+1] == '>':
			toks = append(toks, "->")
			i += 2
		case strings.ContainsRune("():,?|", c):
			toks = append(toks, string(c))
			i++
		default:
			return nil, fmt.Errorf("unexpected character %q", c)
		}
	}
	return toks, nil
}

// declParser walks one declaration's tokens.
type declParser struct {
	toks []string
	pos  int
}

func (p *declParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *declParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *declParser) accept(t string) bool {
	if p.peek() == t {
		p.pos++
		return true
	}
	return false
}

func (p *declParser) expect(t string) error {
	if !p.accept(t) {
		return fmt.Errorf("expected %q, got %q", t, p.peek())
	}
	return nil
}

func (p *declParser) ident() (string, error) {
	t := p.next()
	if t == "" || !identLike(t) {
		return "", fmt.Errorf("expected identifier, got %q", t)
	}
	return t, nil
}

func identLike(s string) bool {
	for i, r := range s {
		if !(unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r))) {
			return false
		}
	}
	return len(s) > 0
}

func (spec *Spec) parseDecl(toks []string) error {
	p := &declParser{toks: toks}
	switch kw := p.next(); kw {
	case "model":
		name, err := p.ident()
		if err != nil {
			return err
		}
		if spec.Model != "" {
			return fmt.Errorf("duplicate model declaration")
		}
		spec.Model = name
		return p.done()

	case "operator":
		name, err := p.ident()
		if err != nil {
			return err
		}
		arity, err := strconv.Atoi(p.next())
		if err != nil {
			return fmt.Errorf("operator %s: bad arity", name)
		}
		spec.Operators = append(spec.Operators, Operator{Name: name, Arity: arity})
		return p.done()

	case "transform":
		name, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect(":"); err != nil {
			return err
		}
		pattern, err := p.parsePattern()
		if err != nil {
			return err
		}
		if err := p.expect("->"); err != nil {
			return err
		}
		tr := Transform{Name: name, Pattern: pattern, Promise: 1}
		for {
			node, err := p.parsePattern()
			if err != nil {
				return err
			}
			sub := Subst{Node: node}
			if p.accept("when") {
				if sub.Condition, err = p.ident(); err != nil {
					return err
				}
			}
			tr.Substs = append(tr.Substs, sub)
			if !p.accept("|") {
				break
			}
		}
		for p.peek() != "" {
			switch p.next() {
			case "promise":
				if tr.Promise, err = strconv.Atoi(p.next()); err != nil {
					return fmt.Errorf("bad promise")
				}
			default:
				return fmt.Errorf("unexpected token %q", p.toks[p.pos-1])
			}
		}
		// A guard on a rule's only substitute is the rule's condition.
		if len(tr.Substs) == 1 && tr.Substs[0].Condition != "" {
			tr.Condition = tr.Substs[0].Condition
			tr.Substs[0].Condition = ""
		}
		spec.Transforms = append(spec.Transforms, tr)
		return nil

	case "algorithm":
		name, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect("implements"); err != nil {
			return err
		}
		pattern, err := p.parsePattern()
		if err != nil {
			return err
		}
		alg := Algorithm{Name: name, Pattern: pattern, Promise: 1}
		for p.peek() != "" {
			key := p.next()
			switch key {
			case "cost":
				alg.Cost, err = p.ident()
			case "applicability":
				alg.Applicability, err = p.ident()
			case "build":
				alg.Build, err = p.ident()
			case "delivered":
				alg.Delivered, err = p.ident()
			case "condition":
				alg.Condition, err = p.ident()
			case "promise":
				alg.Promise, err = strconv.Atoi(p.next())
			default:
				return fmt.Errorf("unexpected token %q", key)
			}
			if err != nil {
				return err
			}
		}
		spec.Algorithms = append(spec.Algorithms, alg)
		return nil

	case "enforcer":
		name, err := p.ident()
		if err != nil {
			return err
		}
		enf := EnforcerDecl{Name: name, Promise: 1}
		for p.peek() != "" {
			key := p.next()
			switch key {
			case "relax":
				enf.Relax, err = p.ident()
			case "cost":
				enf.Cost, err = p.ident()
			case "build":
				enf.Build, err = p.ident()
			case "delivered":
				enf.Delivered, err = p.ident()
			case "promise":
				enf.Promise, err = strconv.Atoi(p.next())
			default:
				return fmt.Errorf("unexpected token %q", key)
			}
			if err != nil {
				return err
			}
		}
		spec.Enforcers = append(spec.Enforcers, enf)
		return nil

	default:
		return fmt.Errorf("unknown declaration %q", kw)
	}
}

func (p *declParser) done() error {
	if p.peek() != "" {
		return fmt.Errorf("trailing tokens starting at %q", p.peek())
	}
	return nil
}

// parsePattern parses NAME[:label](sub, ...) or ?var.
func (p *declParser) parsePattern() (*PatNode, error) {
	if p.accept("?") {
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &PatNode{Var: v}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	n := &PatNode{Op: name}
	if p.accept(":") {
		if n.Label, err = p.ident(); err != nil {
			return nil, err
		}
	}
	if p.accept("(") {
		if !p.accept(")") {
			for {
				c, err := p.parsePattern()
				if err != nil {
					return nil, err
				}
				n.Children = append(n.Children, c)
				if p.accept(")") {
					break
				}
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
		}
	}
	return n, nil
}
