package minirel_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gen/minirel"
	"repro/internal/relopt"
)

// TestParallelSearchMatchesSequential: the intra-query task engine must
// find plans costing exactly what the sequential engine finds, for every
// worker count, across random select-join queries over the generated
// minirel model. Run under -race this also exercises the engine's
// locking on a production-shaped model.
func TestParallelSearchMatchesSequential(t *testing.T) {
	src := datagen.New(33)
	cat := src.Catalog(6)
	sup := minirel.NewSupport(cat)
	for n := 3; n <= 6; n++ {
		for trial := 0; trial < 4; trial++ {
			q := src.SelectJoinQuery(cat, n, datagen.ShapeRandom)
			required := relopt.SortedOn(q.OrderBy)

			seqOpt := core.NewOptimizer(minirel.New(sup), nil)
			seqPlan, err := seqOpt.Optimize(seqOpt.InsertQuery(q.Root), required)
			if err != nil || seqPlan == nil {
				t.Fatalf("n=%d trial=%d sequential: plan=%v err=%v", n, trial, seqPlan, err)
			}
			want := seqPlan.Cost.(relopt.Cost).Total()

			for _, workers := range []int{2, 4, 8} {
				opts := &core.Options{}
				opts.Search.Workers = workers
				parOpt := core.NewOptimizer(minirel.New(sup), opts)
				parPlan, err := parOpt.Optimize(parOpt.InsertQuery(q.Root), required)
				if err != nil || parPlan == nil {
					t.Fatalf("n=%d trial=%d workers=%d: plan=%v err=%v", n, trial, workers, parPlan, err)
				}
				got := parPlan.Cost.(relopt.Cost).Total()
				if math.Abs(got-want) > 1e-6*want {
					t.Errorf("n=%d trial=%d workers=%d: cost %.4f, sequential %.4f\nparallel:\n%s\nsequential:\n%s",
						n, trial, workers, got, want, parPlan.Format(), seqPlan.Format())
				}
				if parOpt.Stats().ConsistencyViolations != 0 {
					t.Errorf("n=%d trial=%d workers=%d: consistency violations", n, trial, workers)
				}
			}
		}
	}
}
