//go:generate go run repro/cmd/volcano-gen -spec ../testdata/minirel.model -o minirel.go

package minirel

import (
	"math"

	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// DefaultSupport is the optimizer implementor's code for the generated minirel
// optimizer: cost functions, applicability functions, condition code,
// and ADT glue, reusing the relational catalog, cost record, and
// physical property vector. Together with the generated wiring it forms
// a complete optimizer whose plans must price identically to the
// hand-maintained internal/relopt configuration.
type DefaultSupport struct {
	cat    *rel.Catalog
	params relopt.Params
}

// NewSupport binds the support code to a catalog with the default cost
// weights.
func NewSupport(cat *rel.Catalog) *DefaultSupport {
	return &DefaultSupport{cat: cat, params: relopt.DefaultParams()}
}

func (s *DefaultSupport) ZeroCost() core.Cost     { return relopt.Cost{} }
func (s *DefaultSupport) InfiniteCost() core.Cost { return relopt.Infinite }
func (s *DefaultSupport) AnyProps() core.PhysProps {
	return relopt.Any
}

func (s *DefaultSupport) DeriveLogicalProps(op core.LogicalOp, inputs []core.LogicalProps) core.LogicalProps {
	return rel.DeriveProps(s.cat, op, inputs)
}

func props(ctx *core.RuleContext, g core.GroupID) *rel.Props {
	return ctx.LogProps(g).(*rel.Props)
}

// AssocValid checks that the outer join predicate is evaluable in the
// rotated inner join.
func (s *DefaultSupport) AssocValid(ctx *core.RuleContext, b *core.Binding) bool {
	top := b.Expr.Op.(*rel.Join)
	bp := props(ctx, b.Children[0].Children[1].Group)
	cp := props(ctx, b.Children[1].Group)
	return (bp.HasCol(top.A) || cp.HasCol(top.A)) &&
		(bp.HasCol(top.B) || cp.HasCol(top.B))
}

func joinSides(ctx *core.RuleContext, b *core.Binding) (lc, rc rel.ColID, ok bool) {
	j := b.Expr.Op.(*rel.Join)
	lp := props(ctx, b.Children[0].Group)
	rp := props(ctx, b.Children[1].Group)
	switch {
	case lp.HasCol(j.A) && rp.HasCol(j.B):
		return j.A, j.B, true
	case lp.HasCol(j.B) && rp.HasCol(j.A):
		return j.B, j.A, true
	}
	return 0, 0, false
}

func (s *DefaultSupport) ScanApplic(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
	if !required.(*relopt.PhysProps).IsAny() {
		return nil, false
	}
	return []core.InputReq{{}}, true
}

func (s *DefaultSupport) ScanCost(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
	p := props(ctx, b.Group)
	return relopt.Cost{IO: p.Pages(s.params.PageBytes), CPU: p.Rows * s.params.CPUTuple}
}

func (s *DefaultSupport) BuildScan(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
	return &relopt.FileScan{Tab: b.Expr.Op.(*rel.Get).Tab}
}

func (s *DefaultSupport) FilterApplic(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
	return []core.InputReq{{Required: []core.PhysProps{required}}}, true
}

func (s *DefaultSupport) FilterCost(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
	in := props(ctx, b.Children[0].Group)
	return relopt.Cost{CPU: in.Rows * s.params.CPUPred}
}

func (s *DefaultSupport) FilterDelivered(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq, inputs []core.PhysProps) core.PhysProps {
	return inputs[0]
}

func (s *DefaultSupport) BuildFilter(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
	return &relopt.Filter{Preds: []rel.Pred{b.Expr.Op.(*rel.Select).Pred}}
}

func (s *DefaultSupport) HashJoinApplic(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
	if len(required.(*relopt.PhysProps).Sort) > 0 {
		return nil, false
	}
	if _, _, ok := joinSides(ctx, b); !ok {
		return nil, false
	}
	return []core.InputReq{{Required: []core.PhysProps{relopt.Any, relopt.Any}}}, true
}

func (s *DefaultSupport) HashJoinCost(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
	lp := props(ctx, b.Children[0].Group)
	rp := props(ctx, b.Children[1].Group)
	out := props(ctx, b.Group)
	return relopt.Cost{
		IO:  relopt.HashSpillIO(s.params, lp.Pages(s.params.PageBytes), rp.Pages(s.params.PageBytes)),
		CPU: (lp.Rows+rp.Rows)*s.params.CPUHash + out.Rows*s.params.CPUTuple,
	}
}

func (s *DefaultSupport) BuildHashJoin(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
	lc, rc, _ := joinSides(ctx, b)
	return &relopt.HashJoin{LeftCol: lc, RightCol: rc}
}

func (s *DefaultSupport) MergeJoinApplic(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
	lc, rc, ok := joinSides(ctx, b)
	if !ok {
		return nil, false
	}
	rp := required.(*relopt.PhysProps)
	switch {
	case len(rp.Sort) == 0:
	case len(rp.Sort) == 1 && !rp.Sort[0].Desc &&
		(rp.Sort[0].Col == lc || rp.Sort[0].Col == rc):
	default:
		return nil, false
	}
	return []core.InputReq{{Required: []core.PhysProps{
		relopt.SortedOn(lc), relopt.SortedOn(rc),
	}}}, true
}

func (s *DefaultSupport) MergeJoinCost(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
	lp := props(ctx, b.Children[0].Group)
	rp := props(ctx, b.Children[1].Group)
	out := props(ctx, b.Group)
	return relopt.Cost{CPU: (lp.Rows+rp.Rows)*s.params.CPUCompare + out.Rows*s.params.CPUTuple}
}

func (s *DefaultSupport) MergeJoinDelivered(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq, inputs []core.PhysProps) core.PhysProps {
	rp := required.(*relopt.PhysProps)
	if len(rp.Sort) > 0 {
		return required
	}
	lc, _, _ := joinSides(ctx, b)
	return relopt.SortedOn(lc)
}

func (s *DefaultSupport) BuildMergeJoin(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
	lc, rc, _ := joinSides(ctx, b)
	return &relopt.MergeJoin{LeftCol: lc, RightCol: rc}
}

func (s *DefaultSupport) SortRelax(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) (core.PhysProps, core.PhysProps, bool) {
	rp := required.(*relopt.PhysProps)
	if len(rp.Sort) == 0 {
		return nil, nil, false
	}
	return rp.WithoutSort(), required, true
}

func (s *DefaultSupport) SortEnfCost(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) core.Cost {
	p := lp.(*rel.Props)
	rows := p.Rows
	lg := 1.0
	if rows >= 2 {
		lg = math.Log2(rows)
	}
	return relopt.Cost{
		IO:  2 * p.Pages(s.params.PageBytes) * s.params.SpillIO,
		CPU: rows * lg * s.params.CPUCompare,
	}
}

func (s *DefaultSupport) BuildSort(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) core.PhysicalOp {
	return &relopt.Sort{Order: required.(*relopt.PhysProps).Sort}
}
