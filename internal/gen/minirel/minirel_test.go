package minirel_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gen/minirel"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// TestGeneratedOptimizerMatchesHandWritten: the generated minirel
// optimizer and the hand-maintained relopt configuration explore the
// same space with the same cost model for select-join queries, so their
// optimal plan costs must be identical.
func TestGeneratedOptimizerMatchesHandWritten(t *testing.T) {
	src := datagen.New(21)
	cat := src.Catalog(6)
	sup := minirel.NewSupport(cat)
	for n := 2; n <= 5; n++ {
		for trial := 0; trial < 8; trial++ {
			q := src.SelectJoinQuery(cat, n, datagen.ShapeRandom)

			genOpt := core.NewOptimizer(minirel.New(sup), nil)
			genRoot := genOpt.InsertQuery(q.Root)
			genPlan, err := genOpt.Optimize(genRoot, relopt.SortedOn(q.OrderBy))
			if err != nil || genPlan == nil {
				t.Fatalf("n=%d trial=%d generated optimizer: plan=%v err=%v", n, trial, genPlan, err)
			}

			handOpt := core.NewOptimizer(relopt.New(cat, relopt.DefaultConfig()), nil)
			handRoot := handOpt.InsertQuery(q.Root)
			handPlan, err := handOpt.Optimize(handRoot, relopt.SortedOn(q.OrderBy))
			if err != nil || handPlan == nil {
				t.Fatalf("n=%d trial=%d hand-written optimizer: plan=%v err=%v", n, trial, handPlan, err)
			}

			g := genPlan.Cost.(relopt.Cost).Total()
			h := handPlan.Cost.(relopt.Cost).Total()
			if math.Abs(g-h) > 1e-6*h {
				t.Errorf("n=%d trial=%d: generated cost %.4f != hand-written %.4f\ngenerated:\n%s\nhand-written:\n%s",
					n, trial, g, h, genPlan.Format(), handPlan.Format())
			}
			if genOpt.Stats().ConsistencyViolations != 0 {
				t.Errorf("n=%d trial=%d: consistency violations in generated optimizer", n, trial)
			}
		}
	}
}

// TestGeneratedOptimizerKinds: the generated kinds must agree with the
// hand-assigned kinds in internal/rel, since both optimizers consume the
// same logical operators.
func TestGeneratedOptimizerKinds(t *testing.T) {
	if minirel.KindGET != rel.KindGet || minirel.KindSELECT != rel.KindSelect || minirel.KindJOIN != rel.KindJoin {
		t.Fatalf("generated kinds (GET=%d SELECT=%d JOIN=%d) disagree with rel (GET=%d SELECT=%d JOIN=%d)",
			minirel.KindGET, minirel.KindSELECT, minirel.KindJOIN,
			rel.KindGet, rel.KindSelect, rel.KindJoin)
	}
}
